module adapt

go 1.22
