package conform

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"adapt/internal/core"
	"adapt/internal/faults"
	"adapt/internal/hwloc"
	"adapt/internal/netmodel"
	"adapt/internal/serve"
)

// Daemon-substrate conformance: every registered collective runs
// *through adaptd* — each rank is a client session holding the
// daemon-backed comm.Comm adapter (serve.RemoteComm), so every Isend,
// Irecv, and completion crosses the serving layer's wire protocol
// before touching a backend rank — and must still deliver the exact
// bytes the simulator's golden run produced. Gated behind -short
// because each cell stands up a daemon plus one TCP session per rank.

// TestConformanceGridDaemon walks sizes × segment counts on a 4-rank
// world. One proxy backend per cell (distinct tag spaces); the cases
// run back-to-back on it with advancing Seq, which doubles as a
// session-reuse check across collectives.
func TestConformanceGridDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon substrate grid skipped in -short")
	}
	srv, err := serve.New(serve.Config{DrainTimeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	defer srv.Close()

	topo := hwloc.New(2, 1, 2) // 4 ranks, two "nodes"
	n := topo.Size()
	p := netmodel.Cori(1).WithTopo(topo)
	cell := 0
	for _, unit := range units() {
		size := unit * 8 * n
		for segName, segSize := range segGrid() {
			cell++
			segSize, cell := segSize, cell
			t.Run(fmt.Sprintf("n%d/%dB/%s", n, size, segName), func(t *testing.T) {
				runDaemonGridCell(t, srv, p, topo, cell, size, segSize)
			})
		}
	}
}

func runDaemonGridCell(t *testing.T, srv *serve.Server, p *netmodel.Platform, topo *hwloc.Topology, cell, size, segSize int) {
	n := topo.Size()
	sessions := make([]*serve.Session, n)
	for r := 0; r < n; r++ {
		s, err := serve.Dial(srv.Addr(), serve.SessionOpts{
			World: n, Group: "conform", TagSpace: cell, ProxyRank: r,
		})
		if err != nil {
			t.Fatalf("Dial rank %d: %v", r, err)
		}
		defer s.Close()
		sessions[r] = s
	}
	for i, cs := range Cases(topo, size) {
		opt := core.DefaultOptions()
		if segSize > 0 {
			opt.SegSize = segSize
		}
		opt.Seq = i + 1
		golden := RunCase(p, cs, opt, nil, faults.Recovery{})
		if golden.Err != nil {
			t.Fatalf("%s: golden run failed: %v", cs.Name, golden.Err)
		}
		out := make([][]byte, n)
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				res := cs.Run(sessions[r].Comm(), cs.In(r), opt)
				if res.Data != nil {
					out[r] = append([]byte(nil), res.Data...)
				}
			}()
		}
		wg.Wait()
		for r := 0; r < n; r++ {
			if !bytes.Equal(golden.Out[r], out[r]) {
				t.Errorf("%s: rank %d diverges from simulator golden through the daemon (%d vs %d bytes, first delta at %d)",
					cs.Name, r, len(golden.Out[r]), len(out[r]), firstDelta(golden.Out[r], out[r]))
			}
		}
	}
}
