package conform

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"adapt/internal/core"
	"adapt/internal/faults"
	"adapt/internal/hwloc"
	"adapt/internal/netmodel"
	"adapt/internal/nettransport"
	"adapt/internal/perf"
)

// TCP-substrate conformance: every registered collective runs on real
// sockets (nettransport loopback) and must deliver the exact bytes the
// simulator's golden run produced. The simulator is the specification;
// the socket transport is an implementation under test. Gated behind
// -short because each cell stands up a live TCP mesh.

func netWorlds() []*hwloc.Topology {
	ws := []*hwloc.Topology{hwloc.New(2, 1, 2)} // 4 ranks, two "nodes"
	if full() {
		ws = append(ws, hwloc.New(7, 1, 1))
	}
	return ws
}

// TestConformanceGridTCP walks worlds × sizes × segment counts. One
// LocalWorld per cell; the cases run back-to-back on it with advancing
// Seq, which doubles as a live-reuse check (stale segments from case k
// must never FIFO-match case k+1's receives).
func TestConformanceGridTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP substrate grid skipped in -short")
	}
	before := perf.Read()
	for _, topo := range netWorlds() {
		n := topo.Size()
		p := netmodel.Cori(1).WithTopo(topo)
		for _, unit := range units() {
			size := unit * 8 * n
			for segName, segSize := range segGrid() {
				topo, segSize := topo, segSize
				t.Run(fmt.Sprintf("n%d/%dB/%s", n, size, segName), func(t *testing.T) {
					runNetGridCell(t, p, topo, size, segSize)
				})
			}
		}
	}
	// A clean loopback link must not move the fault-path counters: no
	// dial retries, no peer-down observations (scripts/bench.sh gates on
	// the same invariant).
	if d := perf.Read().NetTrouble() - before.NetTrouble(); d != 0 {
		t.Errorf("clean TCP grid moved net trouble counters by %d", d)
	}
}

func runNetGridCell(t *testing.T, p *netmodel.Platform, topo *hwloc.Topology, size, segSize int) {
	n := topo.Size()
	w, err := nettransport.NewLocalWorld(n)
	if err != nil {
		t.Fatalf("NewLocalWorld(%d): %v", n, err)
	}
	defer w.Close()
	w.WithRunTimeout(60 * time.Second)
	for i, cs := range Cases(topo, size) {
		opt := core.DefaultOptions()
		if segSize > 0 {
			opt.SegSize = segSize
		}
		opt.Seq = i + 1
		golden := RunCase(p, cs, opt, nil, faults.Recovery{})
		if golden.Err != nil {
			t.Fatalf("%s: golden run failed: %v", cs.Name, golden.Err)
		}
		out := make([][]byte, n)
		w.Run(func(c *nettransport.Comm) {
			res := cs.Run(c, cs.In(c.Rank()), opt)
			if res.Data != nil {
				out[c.Rank()] = append([]byte(nil), res.Data...)
			}
		})
		for r := 0; r < n; r++ {
			if !bytes.Equal(golden.Out[r], out[r]) {
				t.Errorf("%s: rank %d diverges from simulator golden (%d vs %d bytes, first delta at %d)",
					cs.Name, r, len(golden.Out[r]), len(out[r]), firstDelta(golden.Out[r], out[r]))
			}
		}
	}
}

// TestCrashGridTCP replays the fail-stop conformance cases on sockets: a
// mid-tree rank is killed (its process connections cut, no handshake)
// and the survivors must deliver the crash-free golden bytes — detection
// and repair may cost wall-clock time, never bytes. Each case needs a
// fresh mesh since the crash permanently kills one endpoint.
func TestCrashGridTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP crash grid skipped in -short")
	}
	const n = 4
	size := 16 * 8 * n
	p := netmodel.Cori(1).WithTopo(hwloc.New(2, 1, 2))
	crash := faults.Crash{Rank: 2, AfterSends: 1} // mid-tree forwarder in Binomial(4,0)
	for _, cs := range CrashCases(n, size) {
		cs := cs
		t.Run(cs.Name, func(t *testing.T) {
			opt := core.DefaultOptions()
			opt.SegSize = 256
			opt.Seq = 1
			golden := RunCrashCase(p, cs, opt, nil, faults.Recovery{})
			if golden.KernelErr != nil {
				t.Fatalf("golden run failed: %v", golden.KernelErr)
			}
			w, err := nettransport.NewLocalWorld(n,
				nettransport.WithCrashes([]faults.Crash{crash}))
			if err != nil {
				t.Fatalf("NewLocalWorld: %v", err)
			}
			defer w.Close()
			w.WithRunTimeout(60 * time.Second)
			out := make([][]byte, n)
			masks := make([][]bool, n)
			errs := make([]error, n)
			w.Run(func(c *nettransport.Comm) {
				res := cs.Run(c, cs.In(c.Rank()), opt)
				errs[c.Rank()] = res.Err
				if res.Survivors != nil {
					masks[c.Rank()] = append([]bool(nil), res.Survivors...)
				}
				if res.Err == nil && res.Msg.Data != nil {
					out[c.Rank()] = append([]byte(nil), res.Msg.Data...)
				}
			})
			if !w.Crashed()[crash.Rank] {
				t.Fatalf("rank %d did not crash", crash.Rank)
			}
			for r := 0; r < n; r++ {
				if r == crash.Rank {
					continue
				}
				if errs[r] != nil {
					t.Fatalf("survivor %d errored: %v", r, errs[r])
				}
				if masks[r] == nil || masks[r][crash.Rank] {
					t.Errorf("survivor %d: mask %v counts the dead rank", r, masks[r])
				}
			}
			if isReduceCase(cs) {
				// The fold ranges over the survivor set, so the reference is
				// the mask-restricted lattice sum, same as the simmpi grid.
				want := latticeSum(masks[0], size)
				if !bytes.Equal(out[0], want) {
					t.Errorf("root fold diverges from survivor-set sum (first delta at %d)",
						firstDelta(out[0], want))
				}
				return
			}
			for r := 0; r < n; r++ {
				if r == crash.Rank {
					continue
				}
				if !bytes.Equal(golden.Out[r], out[r]) {
					t.Errorf("survivor %d: diverges from crash-free golden (first delta at %d)",
						r, firstDelta(golden.Out[r], out[r]))
				}
			}
		})
	}
}
