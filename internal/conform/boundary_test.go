package conform

import (
	"bytes"
	"testing"

	"adapt/internal/comm"
	"adapt/internal/core"
	"adapt/internal/hwloc"
	"adapt/internal/netmodel"
	"adapt/internal/nettransport"
	"adapt/internal/noise"
	"adapt/internal/runtime"
	"adapt/internal/sim"
	"adapt/internal/simmpi"
	"adapt/internal/trees"
)

// Cross-substrate protocol-boundary parity. All three transports must
// classify a message of exactly the eager limit as EAGER: the send
// completes without any receiver action. One substrate flipping the
// boundary to `<` would deadlock this exchange — the sender's Wait would
// park in a rendezvous handshake while the receiver waits for the
// sender's follow-up flag before posting the payload receive.

const boundaryLimit = 8 * 1024 // pinned identically on every substrate

// boundaryExchange is the substrate-generic probe. Rank 0 must complete
// the boundary-sized send *before* rank 1 posts any receive (rank 1 is
// parked waiting for the flag that rank 0 only sends after the payload
// send's Wait returns). Delivery is then checked byte-for-byte.
func boundaryExchange(t *testing.T, c comm.Comm, payload []byte, label string) {
	tagBig := comm.MakeTag(comm.KindP2P, 1, 0)
	tagFlag := comm.MakeTag(comm.KindP2P, 1, 1)
	switch c.Rank() {
	case 0:
		st := c.Wait(c.Isend(1, tagBig, comm.Bytes(payload)))
		if st.Err != nil {
			t.Errorf("%s: boundary send: %v", label, st.Err)
		}
		c.Send(1, tagFlag, comm.Bytes([]byte{1}))
	case 1:
		// No receive for the payload exists until the flag arrives: an
		// eager boundary classification is the only way rank 0 gets here.
		c.Recv(0, tagFlag)
		st := c.Recv(0, tagBig)
		if st.Err != nil {
			t.Errorf("%s: boundary recv: %v", label, st.Err)
		} else if !bytes.Equal(st.Msg.Data, payload) {
			t.Errorf("%s: boundary payload corrupted (%d bytes)", label, len(st.Msg.Data))
		}
	}
}

func TestEagerBoundaryParity(t *testing.T) {
	payload := pattern(boundaryLimit, 0x0EA6E5)

	t.Run("simmpi", func(t *testing.T) {
		k := sim.New()
		p := netmodel.Cori(1).WithTopo(hwloc.New(2, 1, 1))
		p.EagerLimit = boundaryLimit
		w := simmpi.NewWorld(k, p, noise.None)
		w.Spawn(func(c *simmpi.Comm) { boundaryExchange(t, c, payload, "simmpi") })
		if _, err := k.Run(); err != nil {
			t.Fatalf("simmpi classifies the boundary as rendezvous (deadlock): %v", err)
		}
	})

	t.Run("runtime", func(t *testing.T) {
		w := runtime.NewWorld(2, runtime.WithEagerLimit(boundaryLimit))
		w.Run(func(c *runtime.Comm) { boundaryExchange(t, c, payload, "runtime") })
	})

	t.Run("nettransport", func(t *testing.T) {
		w, err := nettransport.NewLocalWorld(2, nettransport.WithEagerLimit(boundaryLimit))
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		w.Run(func(c *nettransport.Comm) { boundaryExchange(t, c, payload, "nettransport") })
	})
}

// TestEagerBoundaryPlusOneDelivery locks the other side of the boundary:
// one byte past the limit must still arrive intact on every substrate,
// whatever protocol carries it.
func TestEagerBoundaryPlusOneDelivery(t *testing.T) {
	payload := pattern(boundaryLimit+1, 0x0EA6E6)
	exchange := func(t *testing.T, c comm.Comm, label string) {
		tag := comm.MakeTag(comm.KindP2P, 2, 0)
		switch c.Rank() {
		case 0:
			c.Send(1, tag, comm.Bytes(payload))
		case 1:
			st := c.Recv(0, tag)
			if st.Err != nil || !bytes.Equal(st.Msg.Data, payload) {
				t.Errorf("%s: limit+1 delivery broken (err=%v, %d bytes)", label, st.Err, len(st.Msg.Data))
			}
		}
	}

	t.Run("simmpi", func(t *testing.T) {
		k := sim.New()
		p := netmodel.Cori(1).WithTopo(hwloc.New(2, 1, 1))
		p.EagerLimit = boundaryLimit
		w := simmpi.NewWorld(k, p, noise.None)
		w.Spawn(func(c *simmpi.Comm) { exchange(t, c, "simmpi") })
		if _, err := k.Run(); err != nil {
			t.Fatalf("kernel: %v", err)
		}
	})
	t.Run("runtime", func(t *testing.T) {
		w := runtime.NewWorld(2, runtime.WithEagerLimit(boundaryLimit))
		w.Run(func(c *runtime.Comm) { exchange(t, c, "runtime") })
	})
	t.Run("nettransport", func(t *testing.T) {
		w, err := nettransport.NewLocalWorld(2, nettransport.WithEagerLimit(boundaryLimit))
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		w.Run(func(c *nettransport.Comm) { exchange(t, c, "nettransport") })
	})
}

// Seq wraparound: the 24-bit sequence field wraps at comm.SeqWrap. Two
// back-to-back collectives straddling the wrap (raw Seq SeqWrap-1, then
// SeqWrap ≡ 0) must not cross-match in-flight segments: their normalized
// tags differ, and matching is exact, so each collective's bytes stay its
// own. Runs on all three substrates.
func TestSeqWraparoundStraddle(t *testing.T) {
	const n = 4
	topo := hwloc.New(n, 1, 1)
	size := 16 * 8 * n
	binom := trees.Binomial(n, 0)
	srcA := pattern(size, 0x5EA5A)
	srcB := pattern(size, 0x5EA5B)

	// straddle drives the two broadcasts back-to-back on one endpoint.
	// Distinct payloads per side of the wrap: a stale cross-match would
	// surface as the wrong bytes, not a hang.
	straddle := func(t *testing.T, c comm.Comm, label string) {
		for i, src := range [][]byte{srcA, srcB} {
			opt := core.DefaultOptions()
			opt.SegSize = 64 // many in-flight segments around the wrap
			opt.Seq = comm.SeqWrap - 1 + i
			in := comm.Sized(size)
			if c.Rank() == 0 {
				in = comm.Bytes(append([]byte(nil), src...))
			}
			out := core.Bcast(c, binom, in, opt)
			if !bytes.Equal(out.Data, src) {
				t.Errorf("%s: rank %d seq %d: bcast bytes crossed the wrap", label, c.Rank(), opt.Seq)
			}
		}
	}

	t.Run("simmpi", func(t *testing.T) {
		k := sim.New()
		p := netmodel.Cori(1).WithTopo(topo)
		w := simmpi.NewWorld(k, p, noise.None)
		w.Spawn(func(c *simmpi.Comm) { straddle(t, c, "simmpi") })
		if _, err := k.Run(); err != nil {
			t.Fatalf("kernel: %v", err)
		}
	})
	t.Run("runtime", func(t *testing.T) {
		w := runtime.NewWorld(n)
		w.Run(func(c *runtime.Comm) { straddle(t, c, "runtime") })
	})
	t.Run("nettransport", func(t *testing.T) {
		w, err := nettransport.NewLocalWorld(n)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		w.Run(func(c *nettransport.Comm) { straddle(t, c, "nettransport") })
	})
}

// TestSeqWrapTagNormalization pins the arithmetic: raw Seq values that
// alias modulo SeqWrap produce identical tags, and values on either side
// of the wrap produce distinct ones.
func TestSeqWrapTagNormalization(t *testing.T) {
	opt := core.DefaultOptions()
	tagOf := func(seq int) comm.Tag {
		o := opt
		o.Seq = seq
		return o.TagOf(comm.KindBcast, 3)
	}
	if tagOf(comm.SeqWrap) != tagOf(0) {
		t.Error("Seq=SeqWrap and Seq=0 should alias to the same tag")
	}
	if tagOf(comm.SeqWrap-1) == tagOf(comm.SeqWrap) {
		t.Error("seqs on either side of the wrap must produce distinct tags")
	}
	if tagOf(-1) != tagOf(comm.SeqWrap-1) {
		t.Error("negative seq must normalize into the wrap range")
	}
	for _, seq := range []int{0, 1, comm.SeqWrap - 1, comm.SeqWrap, 3 * comm.SeqWrap, -comm.SeqWrap} {
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Errorf("TagOf panicked at raw seq %d: %v", seq, p)
				}
			}()
			_ = tagOf(seq)
		}()
	}
}
