// Package conform is the cross-collective conformance harness: it runs
// every collective in internal/core and internal/coll on the simulator
// across a grid of world shapes, payload sizes, segment counts and fault
// plans, and checks each faulted run byte-for-byte against the golden
// no-fault run of the same case. A collective conforms when fault
// injection with recovery is invisible in its results — only the clock
// and the retry counters may move.
package conform

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"adapt/internal/comm"
	"adapt/internal/core"
	"adapt/internal/faults"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
	"adapt/internal/sim"
	"adapt/internal/simmpi"
)

// Case is one collective under test. In builds rank r's input; Run
// invokes the collective and returns its local result. Both are built by
// Cases/GPUCases with the world shape and payload size baked in. Run
// takes the abstract endpoint so the same registry drives every
// substrate — simulator, in-process runtime, TCP sockets; GPU cases
// assert comm.DeviceComm and skip substrates without a device path.
type Case struct {
	Name string
	In   func(rank int) comm.Msg
	Run  func(c comm.Comm, in comm.Msg, opt core.Options) comm.Msg
}

// Result is one simulated run of a case.
type Result struct {
	// Out is each rank's result payload (nil for size-only results).
	Out [][]byte
	// End is the virtual completion time.
	End time.Duration
	// Err is the kernel's verdict: nil, or a deadlock error naming the
	// ranks that could not finish (unrecoverable message loss).
	Err error
	// Failures are the transport's structured timeout errors.
	Failures []*faults.TimeoutError
	// Stats counts injected faults and recovery actions.
	Stats faults.Stats
}

// RunCase executes cs on platform p. A nil plan (or a plan that cannot
// inject anything) runs the fault-free fast path — the golden run.
func RunCase(p *netmodel.Platform, cs Case, opt core.Options, plan *faults.Plan, rec faults.Recovery) Result {
	k := sim.New()
	w := simmpi.NewWorld(k, p, noise.None)
	if plan != nil && plan.Enabled() {
		w.InstallFaults(*plan, rec)
	}
	out := make([][]byte, w.Size())
	w.Spawn(func(c *simmpi.Comm) {
		res := cs.Run(c, cs.In(c.Rank()), opt)
		if res.Data != nil {
			out[c.Rank()] = append([]byte(nil), res.Data...)
		}
	})
	end, err := k.Run()
	return Result{Out: out, End: end, Err: err, Failures: w.Failures(), Stats: w.FaultStats()}
}

// Diff compares a faulted run against the golden run and returns a
// description of the first divergence, or "" when byte-identical.
func Diff(golden, got Result) string {
	if got.Err != nil {
		return fmt.Sprintf("run failed: %v", got.Err)
	}
	if len(golden.Out) != len(got.Out) {
		return fmt.Sprintf("world size changed: %d vs %d ranks", len(golden.Out), len(got.Out))
	}
	for r := range golden.Out {
		if !bytes.Equal(golden.Out[r], got.Out[r]) {
			return fmt.Sprintf("rank %d: result diverges (%d vs %d bytes, first delta at %d)",
				r, len(golden.Out[r]), len(got.Out[r]), firstDelta(golden.Out[r], got.Out[r]))
		}
	}
	return ""
}

func firstDelta(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// pattern fills size bytes deterministically from a salt — distinct per
// (case, rank) so misrouted blocks cannot collide by luck.
func pattern(size int, salt int64) []byte {
	b := make([]byte, size)
	x := uint64(salt)*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3
	for i := range b {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		b[i] = byte(x)
	}
	return b
}

// lattice fills size bytes with float64 small integers unique to the
// rank. Small-integer sums are exact in float64 and addition is
// commutative, so reduction results are byte-identical no matter what
// order fault-delayed segments arrive and fold in.
func lattice(rank, size int) []byte {
	if size%8 != 0 {
		panic(fmt.Sprintf("conform: lattice size %d not a multiple of 8", size))
	}
	b := make([]byte, size)
	for i := 0; i < size/8; i++ {
		v := float64((rank*31 + i) % 17)
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
	return b
}
