package conform

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"adapt/internal/comm"
	"adapt/internal/core"
	"adapt/internal/faults"
	"adapt/internal/hwloc"
	"adapt/internal/netmodel"
	"adapt/internal/perf"
	"adapt/internal/trees"
)

// The grid: world shapes × payload sizes × segment counts × fault plans.
// ADAPT_CONFORM_FULL=1 widens every axis (make chaos).

func full() bool { return os.Getenv("ADAPT_CONFORM_FULL") != "" }

type world struct {
	name string
	p    *netmodel.Platform
}

func worlds() []world {
	ws := []world{
		{"n4", netmodel.Cori(1).WithTopo(hwloc.New(2, 1, 2))},
	}
	if full() {
		ws = append(ws, world{"n7", netmodel.Cori(1).WithTopo(hwloc.New(7, 1, 1))})
	}
	return ws
}

// units scale the payload: size = unit × 8 × ranks, so reductions and
// ring algorithms always divide evenly. 33 makes the last pipeline
// segment short (a distinct protocol path).
func units() []int {
	if full() {
		return []int{16, 33}
	}
	return []int{16}
}

var plans = []struct{ name, text string }{
	{"lossy", "seed=11; all: drop=0.15, dup=0.1, jitter=20us"},
	{"edge-degraded", "seed=23; link 0->1: drop=0.4, delay=40us@0.5; all: dup=0.05"},
}

func segGrid() map[string]int {
	return map[string]int{"1seg": 0, "seg256": 256}
}

// TestConformanceGrid is the tentpole check: for every collective, every
// faulted run must reproduce the golden no-fault bytes exactly — the
// recovery machinery may only cost time.
func TestConformanceGrid(t *testing.T) {
	for _, w := range worlds() {
		n := w.p.Topo.Size()
		for _, unit := range units() {
			size := unit * 8 * n
			for _, cs := range Cases(w.p.Topo, size) {
				for segName, segSize := range segGrid() {
					w, cs, segSize := w, cs, segSize
					t.Run(fmt.Sprintf("%s/%s/%dB/%s", w.name, cs.Name, size, segName), func(t *testing.T) {
						t.Parallel()
						runGridCell(t, w.p, cs, segSize)
					})
				}
			}
		}
	}
}

// TestConformanceGridGPU runs the device-path collectives on the PSG
// GPU machine shape.
func TestConformanceGridGPU(t *testing.T) {
	p := netmodel.PSG(1) // 1 node × 2 sockets × 2 GPUs = 4 ranks
	size := 16 * 8 * p.Topo.Size()
	for _, cs := range GPUCases(p.Topo, size) {
		for segName, segSize := range segGrid() {
			cs, segSize := cs, segSize
			t.Run(fmt.Sprintf("%s/%s", cs.Name, segName), func(t *testing.T) {
				t.Parallel()
				runGridCell(t, p, cs, segSize)
			})
		}
	}
}

func runGridCell(t *testing.T, p *netmodel.Platform, cs Case, segSize int) {
	opt := core.DefaultOptions()
	if segSize > 0 {
		opt.SegSize = segSize
	}
	golden := RunCase(p, cs, opt, nil, faults.Recovery{})
	if golden.Err != nil {
		t.Fatalf("golden run failed: %v", golden.Err)
	}
	if golden.Stats.Total() != 0 {
		t.Fatalf("golden run injected faults: %v", golden.Stats)
	}
	for _, pl := range plans {
		plan := faults.MustParsePlan(pl.text)
		got := RunCase(p, cs, opt, &plan, faults.DefaultRecovery())
		if d := Diff(golden, got); d != "" {
			t.Errorf("plan %s: %s (faults: %v)", pl.name, d, got.Stats)
		}
		if len(got.Failures) != 0 {
			t.Errorf("plan %s: unrecovered losses under DefaultRecovery: %v", pl.name, got.Failures[0])
		}
	}
}

// TestFaultScheduleDeterminism re-runs the same (case, plan) repeatedly —
// including from parallel goroutines, standing in for adaptbench -j N —
// and demands identical bytes, identical virtual end time, and identical
// fault schedules.
func TestFaultScheduleDeterminism(t *testing.T) {
	p := netmodel.Cori(1).WithTopo(hwloc.New(2, 1, 2))
	size := 16 * 8 * p.Topo.Size()
	plan := faults.MustParsePlan(plans[0].text)
	opt := core.DefaultOptions()
	opt.SegSize = 256
	for _, cs := range Cases(p.Topo, size)[:6] {
		cs := cs
		t.Run(cs.Name, func(t *testing.T) {
			t.Parallel()
			ref := RunCase(p, cs, opt, &plan, faults.DefaultRecovery())
			if ref.Err != nil {
				t.Fatalf("run failed: %v", ref.Err)
			}
			results := make(chan Result, 4)
			for i := 0; i < 4; i++ {
				go func() { results <- RunCase(p, cs, opt, &plan, faults.DefaultRecovery()) }()
			}
			for i := 0; i < 4; i++ {
				got := <-results
				if d := Diff(ref, got); d != "" {
					t.Fatalf("re-run diverged: %s", d)
				}
				if got.End != ref.End {
					t.Fatalf("virtual end time diverged: %v vs %v", got.End, ref.End)
				}
				if got.Stats != ref.Stats {
					t.Fatalf("fault schedule diverged: %v vs %v", got.Stats, ref.Stats)
				}
			}
			if ref.Stats.Total() == 0 {
				t.Logf("note: plan injected nothing for %s", cs.Name)
			}
		})
	}
}

// TestFaultsActuallyInjected guards against the whole harness silently
// testing the fault-free path: across the grid's cases, the lossy plan
// must inject a substantial number of faults and recover via retries.
func TestFaultsActuallyInjected(t *testing.T) {
	p := netmodel.Cori(1).WithTopo(hwloc.New(2, 1, 2))
	size := 16 * 8 * p.Topo.Size()
	plan := faults.MustParsePlan(plans[0].text)
	opt := core.DefaultOptions()
	opt.SegSize = 256
	var agg faults.Stats
	for _, cs := range Cases(p.Topo, size) {
		got := RunCase(p, cs, opt, &plan, faults.DefaultRecovery())
		if got.Err != nil {
			t.Fatalf("%s: %v", cs.Name, got.Err)
		}
		agg.Drops += got.Stats.Drops
		agg.Dups += got.Stats.Dups
		agg.Delays += got.Stats.Delays
		agg.Retries += got.Stats.Retries
		agg.Suppressed += got.Stats.Suppressed
	}
	if agg.Drops == 0 || agg.Dups == 0 || agg.Retries == 0 || agg.Suppressed == 0 {
		t.Fatalf("grid exercised too little of the fault machinery: %v", agg)
	}
}

// TestCleanRunFaultCountersZero is the no-regression gate scripts/bench.sh
// relies on: without an installed plan, the fault counters must not move.
func TestCleanRunFaultCountersZero(t *testing.T) {
	p := netmodel.Cori(1).WithTopo(hwloc.New(2, 1, 2))
	size := 16 * 8 * p.Topo.Size()
	perf.Reset()
	opt := core.DefaultOptions()
	opt.SegSize = 256
	for _, cs := range Cases(p.Topo, size) {
		if res := RunCase(p, cs, opt, nil, faults.Recovery{}); res.Err != nil {
			t.Fatalf("%s: %v", cs.Name, res.Err)
		}
	}
	if s := perf.Read(); s.FaultTotal() != 0 {
		t.Fatalf("clean runs moved fault counters: drops=%d dups=%d delays=%d retries=%d timeouts=%d suppressed=%d",
			s.FaultDrops, s.FaultDups, s.FaultDelays, s.FaultRetries, s.FaultTimeouts, s.FaultSuppressed)
	}
}

// TestDropAllEdgeFailsStructured is the bounded-failure acceptance test:
// a black-holed tree edge with retries disabled must produce a structured
// timeout naming (rank, peer, tag kind, segment) — and the simulation
// must terminate, not hang.
func TestDropAllEdgeFailsStructured(t *testing.T) {
	p := netmodel.Cori(1).WithTopo(hwloc.New(4, 1, 1))
	size := 16 * 8 * p.Topo.Size()
	chain := trees.Chain(4, 0) // edges 0→1→2→3; kill the first one
	cs := Case{
		Name: "bcast-chain-root0",
		In:   rootData("bcast-chain-root0", 0, size),
		Run: func(c comm.Comm, in comm.Msg, opt core.Options) comm.Msg {
			return core.Bcast(c, chain, in, opt)
		},
	}
	plan := faults.MustParsePlan("seed=3; link 0->1: drop=1")
	opt := core.DefaultOptions()
	opt.SegSize = 256
	start := time.Now()
	res := RunCase(p, cs, opt, &plan, faults.NoRecovery())
	if wall := time.Since(start); wall > 30*time.Second {
		t.Fatalf("failure case took %v wall time", wall)
	}
	if res.Err == nil {
		t.Fatal("black-holed edge completed successfully")
	}
	if !strings.Contains(res.Err.Error(), "rank-1") {
		t.Errorf("deadlock report does not name the starved rank: %v", res.Err)
	}
	if len(res.Failures) == 0 {
		t.Fatal("no structured failures recorded")
	}
	f := res.Failures[0]
	if f.Rank != 0 || f.Peer != 1 {
		t.Errorf("failure names edge %d->%d, want 0->1", f.Rank, f.Peer)
	}
	if f.Tag.Kind() != comm.KindBcast {
		t.Errorf("failure tag kind = %v, want bcast", f.Tag.Kind())
	}
	if f.Attempts != 1 {
		t.Errorf("attempts = %d with retries disabled", f.Attempts)
	}
	var te *faults.TimeoutError
	if !errors.As(error(f), &te) {
		t.Error("failure is not a *faults.TimeoutError")
	}
	msg := f.Error()
	for _, want := range []string{"rank 0 -> 1", "bcast", "segment"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	if res.Stats.Timeouts == 0 {
		t.Error("timeout counter did not move")
	}
}

// TestDropAllRecoveredByRetries: the same dead-edge scenario except the
// drop is probabilistic — DefaultRecovery's attempt budget must push the
// collective through with zero result corruption.
func TestDropAllRecoveredByRetries(t *testing.T) {
	p := netmodel.Cori(1).WithTopo(hwloc.New(4, 1, 1))
	size := 16 * 8 * p.Topo.Size()
	chain := trees.Chain(4, 0)
	cs := Case{
		Name: "bcast-chain-heavy-loss",
		In:   rootData("bcast-chain-heavy-loss", 0, size),
		Run: func(c comm.Comm, in comm.Msg, opt core.Options) comm.Msg {
			return core.Bcast(c, chain, in, opt)
		},
	}
	opt := core.DefaultOptions()
	opt.SegSize = 256
	golden := RunCase(p, cs, opt, nil, faults.Recovery{})
	if golden.Err != nil {
		t.Fatalf("golden: %v", golden.Err)
	}
	plan := faults.MustParsePlan("seed=5; link 0->1: drop=0.5")
	got := RunCase(p, cs, opt, &plan, faults.DefaultRecovery())
	if d := Diff(golden, got); d != "" {
		t.Fatalf("heavy loss corrupted results: %s", d)
	}
	if got.Stats.Retries == 0 {
		t.Fatal("50%% loss recovered without a single retry")
	}
	if len(got.Failures) != 0 {
		t.Fatalf("unrecovered loss under DefaultRecovery: %v", got.Failures[0])
	}
}
