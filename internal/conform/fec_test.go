package conform

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"adapt/internal/core"
	"adapt/internal/faults"
	"adapt/internal/fec"
	"adapt/internal/hwloc"
	"adapt/internal/netmodel"
	"adapt/internal/nettransport"
	"adapt/internal/noise"
	"adapt/internal/runtime"
	"adapt/internal/sim"
	"adapt/internal/simmpi"
)

// FEC conformance: erasure-coded eager streams must be invisible in the
// bytes on every substrate. A lossy link whose per-group erasures stay
// within the parity budget repairs from parity with zero retransmissions
// — the round trip the RTO machinery would have paid simply never
// happens. Losses beyond the budget fall back to that machinery and the
// run still reproduces the golden; only the counters tell the two paths
// apart. The invariant every grid cell asserts:
//
//	GroupsLost == 0  ⇒  Retries == 0
//
// (a group whose erasures outran its parity is the only legal reason to
// retransmit), plus a seed scan demanding at least one run where losses
// happened, reconstruction happened, and no retransmit fired — proof the
// zero-retransmit path is actually exercised, not vacuously true.

// fecGridCfg fixes parity at 2 per group of 4, so any double erasure per
// group repairs without a round trip.
func fecGridCfg() fec.Config { return fec.Config{K: 4, M: 2} }

// fecGridPlans degrade the root's fan-out links (root is rank 1 in the
// registry) in the forward direction only, so socket-substrate FEC acks
// riding the reverse direction stay clean. Drop and corrupt are
// equivalent detected losses: a corrupt rule flips payload bytes, the
// CRC catches it, and the frame dies exactly like a drop.
var fecGridPlans = []struct{ name, text string }{
	{"drop", "seed=%d; link 1->0: drop=0.15; link 1->2: drop=0.15"},
	{"corrupt", "seed=%d; link 1->0: corrupt=0.15; link 1->2: corrupt=0.15"},
}

// fecFanout marks the pure fan-out collectives (broadcast and scatter
// families): every data byte flows away from the root, so the degraded
// links in fecGridPlans carry data but never acknowledgements. Only
// there is the strict zero-retransmit invariant exact on the simulator:
// its chaos transport acks every message, acks for reverse-direction
// data ride the degraded links, and a lost ack forces a retransmission
// the FEC layer can never prevent (the payload already arrived). The
// byte-conformance and no-failure checks still run on every case.
var fecFanout = map[string]bool{
	"core/bcast-binomial":    true,
	"core/bcast-chain":       true,
	"core/bcast-binary":      true,
	"core/bcast-twotree":     true,
	"core/scatter":           true,
	"coll/bcast-blocking":    true,
	"coll/bcast-nonblocking": true,
	"coll/scatter":           true,
	"coll/scatterv":          true,
	"coll/bcast-multilevel":  true,
}

// runFECCase is RunCase with the world's FEC layer armed: same simulator,
// same plan machinery, plus the codec between the injector and the wire.
func runFECCase(p *netmodel.Platform, cs Case, opt core.Options, plan faults.Plan, rec faults.Recovery, cfg fec.Config) (Result, fec.Stats) {
	k := sim.New()
	w := simmpi.NewWorld(k, p, noise.None)
	w.InstallFaults(plan, rec)
	w.EnableFEC(cfg)
	out := make([][]byte, w.Size())
	w.Spawn(func(c *simmpi.Comm) {
		res := cs.Run(c, cs.In(c.Rank()), opt)
		if res.Data != nil {
			out[c.Rank()] = append([]byte(nil), res.Data...)
		}
	})
	end, err := k.Run()
	return Result{Out: out, End: end, Err: err, Failures: w.Failures(), Stats: w.FaultStats()}, w.FECStats()
}

// fecGridRec is the retransmit policy for the simulated FEC cells: the
// RTO must dominate the group-resolution latency (idle flush at RTO/4,
// parity transfer, repair-ack) or the retry timer races the repair and
// the zero-retransmit invariant turns probabilistic. Virtual time makes
// the generous value free.
func fecGridRec() faults.Recovery {
	return faults.Recovery{RTO: 10 * time.Millisecond}.Normalized()
}

// TestConformanceFECGrid walks every registered collective on the
// simulator with FEC armed under lossy and corrupting plans, three seeds
// each, and demands golden bytes plus the zero-retransmit invariant.
func TestConformanceFECGrid(t *testing.T) {
	p := netmodel.Cori(1).WithTopo(hwloc.New(2, 1, 2))
	n := p.Topo.Size()
	size := 16 * 8 * n
	opt := core.DefaultOptions()
	opt.SegSize = 256
	for _, pl := range fecGridPlans {
		pl := pl
		t.Run(pl.name, func(t *testing.T) {
			exercised := false
			for _, cs := range Cases(p.Topo, size) {
				golden := RunCase(p, cs, opt, nil, faults.Recovery{})
				if golden.Err != nil {
					t.Fatalf("%s: golden run failed: %v", cs.Name, golden.Err)
				}
				for seed := 1; seed <= 3; seed++ {
					plan := faults.MustParsePlan(fmt.Sprintf(pl.text, seed))
					got, fs := runFECCase(p, cs, opt, plan, fecGridRec(), fecGridCfg())
					if d := Diff(golden, got); d != "" {
						t.Errorf("%s seed %d: %s (faults %v, fec %+v)", cs.Name, seed, d, got.Stats, fs)
					}
					if len(got.Failures) != 0 {
						t.Errorf("%s seed %d: unrecovered loss: %v", cs.Name, seed, got.Failures[0])
					}
					if !fecFanout[cs.Name] {
						continue
					}
					if fs.GroupsLost == 0 && got.Stats.Retries != 0 {
						t.Errorf("%s seed %d: %d retries with every group repaired (faults %v, fec %+v)",
							cs.Name, seed, got.Stats.Retries, got.Stats, fs)
					}
					if got.Stats.Drops+got.Stats.Corrupts > 0 && fs.Reconstructed > 0 && got.Stats.Retries == 0 {
						exercised = true
					}
				}
			}
			if !exercised {
				t.Fatal("no (case, seed) exercised the zero-retransmit repair path")
			}
		})
	}
}

// TestConformanceFECBeyondParity pushes loss past the parity budget
// (m=1 under 60% drop): groups are lost, the RTO/retry machinery runs,
// and the bytes are still golden — FEC composes with ARQ, it does not
// replace it.
func TestConformanceFECBeyondParity(t *testing.T) {
	p := netmodel.Cori(1).WithTopo(hwloc.New(2, 1, 2))
	size := 16 * 8 * p.Topo.Size()
	opt := core.DefaultOptions()
	opt.SegSize = 256
	cs := Cases(p.Topo, size)[0] // core/bcast-binomial
	golden := RunCase(p, cs, opt, nil, faults.Recovery{})
	if golden.Err != nil {
		t.Fatalf("golden run failed: %v", golden.Err)
	}
	fellBack := false
	for seed := 1; seed <= 10; seed++ {
		plan := faults.MustParsePlan(fmt.Sprintf("seed=%d; all: drop=0.4", seed))
		rec := faults.Recovery{RTO: 10 * time.Millisecond, MaxAttempts: 30}.Normalized()
		got, fs := runFECCase(p, cs, opt, plan, rec, fec.Config{K: 4, M: 1})
		if d := Diff(golden, got); d != "" {
			t.Fatalf("seed %d: beyond-parity run diverged: %s (faults %v, fec %+v)", seed, d, got.Stats, fs)
		}
		if len(got.Failures) != 0 {
			t.Fatalf("seed %d: unrecovered loss: %v", seed, got.Failures[0])
		}
		if fs.GroupsLost > 0 && got.Stats.Retries > 0 {
			fellBack = true
		}
	}
	if !fellBack {
		t.Fatal("40% drop with m=1 never outran the parity into the retransmit path")
	}
}

// TestConformanceFECGridLive replays the FEC grid on the in-process live
// transport: real goroutines, wall-clock timers, same golden bytes.
func TestConformanceFECGridLive(t *testing.T) {
	p := netmodel.Cori(1).WithTopo(hwloc.New(2, 1, 2))
	n := p.Topo.Size()
	size := 16 * 8 * n
	rec := faults.Recovery{RTO: 50 * time.Millisecond}.Normalized()
	for _, pl := range fecGridPlans {
		pl := pl
		t.Run(pl.name, func(t *testing.T) {
			exercised := false
			for i, cs := range Cases(p.Topo, size) {
				opt := core.DefaultOptions()
				opt.SegSize = 256
				opt.Seq = i + 1
				golden := RunCase(p, cs, opt, nil, faults.Recovery{})
				if golden.Err != nil {
					t.Fatalf("%s: golden run failed: %v", cs.Name, golden.Err)
				}
				seed := i%3 + 1 // rotate seeds across cases; the scan needs one clean repair, not all
				plan := faults.MustParsePlan(fmt.Sprintf(pl.text, seed))
				w := runtime.NewWorld(n,
					runtime.WithFaults(plan, rec),
					runtime.WithFEC(fecGridCfg()),
					runtime.WithRunTimeout(60*time.Second))
				out := make([][]byte, n)
				w.Run(func(c *runtime.Comm) {
					res := cs.Run(c, cs.In(c.Rank()), opt)
					if res.Data != nil {
						out[c.Rank()] = append([]byte(nil), res.Data...)
					}
				})
				for r := 0; r < n; r++ {
					if !bytes.Equal(golden.Out[r], out[r]) {
						t.Errorf("%s: rank %d diverges from simulator golden (%d vs %d bytes, first delta at %d)",
							cs.Name, r, len(golden.Out[r]), len(out[r]), firstDelta(golden.Out[r], out[r]))
					}
				}
				st, fs := w.FaultStats(), w.FECStats()
				if len(w.Failures()) != 0 {
					t.Errorf("%s: unrecovered loss: %v", cs.Name, w.Failures()[0])
				}
				if fs.GroupsLost == 0 && st.Retries != 0 {
					t.Errorf("%s: %d retries with every group repaired (faults %v, fec %+v)",
						cs.Name, st.Retries, st, fs)
				}
				if st.Drops+st.Corrupts > 0 && fs.Reconstructed > 0 && st.Retries == 0 {
					exercised = true
				}
			}
			if !exercised {
				t.Fatal("no case exercised the zero-retransmit repair path")
			}
		})
	}
}

// TestConformanceFECGridTCP replays the FEC grid on real loopback
// sockets: frames actually fly, corrupt rules flip real payload bytes
// that die at the CRC, parity rides its own frame type, and the
// receiver's reconstruction must complete each recv with the exact bytes
// the simulator's golden produced. Gated behind -short like the other
// TCP grids.
func TestConformanceFECGridTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP FEC grid skipped in -short")
	}
	p := netmodel.Cori(1).WithTopo(hwloc.New(2, 1, 2))
	n := p.Topo.Size()
	size := 16 * 8 * n
	rec := faults.Recovery{RTO: 100 * time.Millisecond, MaxAttempts: 10}.Normalized()
	for _, pl := range fecGridPlans {
		pl := pl
		t.Run(pl.name, func(t *testing.T) {
			exercised := false
			for seed := 1; seed <= 4 && !exercised; seed++ {
				plan := faults.MustParsePlan(fmt.Sprintf(pl.text, seed))
				w, err := nettransport.NewLocalWorld(n,
					nettransport.WithChaos(plan, rec),
					nettransport.WithFEC(fecGridCfg()))
				if err != nil {
					t.Fatalf("NewLocalWorld(%d): %v", n, err)
				}
				w.WithRunTimeout(120 * time.Second)
				for i, cs := range Cases(p.Topo, size) {
					opt := core.DefaultOptions()
					opt.SegSize = 256
					opt.Seq = i + 1
					golden := RunCase(p, cs, opt, nil, faults.Recovery{})
					if golden.Err != nil {
						t.Fatalf("%s: golden run failed: %v", cs.Name, golden.Err)
					}
					out := make([][]byte, n)
					w.Run(func(c *nettransport.Comm) {
						res := cs.Run(c, cs.In(c.Rank()), opt)
						if res.Data != nil {
							out[c.Rank()] = append([]byte(nil), res.Data...)
						}
					})
					for r := 0; r < n; r++ {
						if !bytes.Equal(golden.Out[r], out[r]) {
							t.Errorf("seed %d %s: rank %d diverges from simulator golden (%d vs %d bytes, first delta at %d)",
								seed, cs.Name, r, len(golden.Out[r]), len(out[r]), firstDelta(golden.Out[r], out[r]))
						}
					}
				}
				st, fs := w.FaultStats(), w.FECStats()
				w.Close()
				if fs.GroupsLost == 0 && st.Retries != 0 {
					t.Errorf("seed %d: %d retries with every group repaired (faults %v, fec %+v)",
						seed, st.Retries, st, fs)
				}
				if st.Drops+st.Corrupts > 0 && fs.Reconstructed > 0 && st.Retries == 0 {
					exercised = true
				}
			}
			if !exercised {
				t.Fatal("no seed exercised the zero-retransmit repair path on sockets")
			}
		})
	}
}
