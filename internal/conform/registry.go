package conform

import (
	"fmt"

	"adapt/internal/coll"
	"adapt/internal/comm"
	"adapt/internal/core"
	"adapt/internal/hwloc"
	"adapt/internal/trees"
)

// caseSalt keeps each case's data patterns disjoint, so a block leaking
// between concurrently-tagged collectives could never pass the compare.
func caseSalt(name string, rank int) int64 {
	h := int64(1469598103934665603)
	for _, b := range []byte(name) {
		h = (h ^ int64(b)) * 1099511628211
	}
	return h ^ int64(rank)<<17
}

// rootData: rank root supplies the payload, everyone else declares size.
func rootData(name string, root, size int) func(rank int) comm.Msg {
	return func(rank int) comm.Msg {
		if rank == root {
			return comm.Bytes(pattern(size, caseSalt(name, root)))
		}
		return comm.Sized(size)
	}
}

// contribData: every rank supplies its own pattern block.
func contribData(name string, size int) func(rank int) comm.Msg {
	return func(rank int) comm.Msg {
		return comm.Bytes(pattern(size, caseSalt(name, rank)))
	}
}

// contribLattice: every rank supplies exact-arithmetic float64 integers —
// reduction inputs whose fold is order-independent at the byte level.
func contribLattice(size int) func(rank int) comm.Msg {
	return func(rank int) comm.Msg { return comm.Bytes(lattice(rank, size)) }
}

// Cases enumerates the CPU collectives for a world of topo's shape with
// the given payload size. size must be a multiple of 8×n so reductions
// (8-byte elements) and ring algorithms (n blocks) both divide evenly.
func Cases(topo *hwloc.Topology, size int) []Case {
	n := topo.Size()
	if size%(8*n) != 0 {
		panic(fmt.Sprintf("conform: size %d not a multiple of 8×%d ranks", size, n))
	}
	root := 0
	if n > 1 {
		root = 1 // a non-zero root exercises the virtual-rank shifts
	}
	binom := trees.Binomial(n, root)
	chain := trees.Chain(n, root)
	bin := trees.Binary(n, root)
	t0 := trees.Binomial(n, 0) // coll.Allreduce requires a rank-0 root
	ta, tb := trees.TwoTree(n, root)
	mlSpec := coll.MultiLevelSpec{
		InterNode:   trees.Builder{Name: "binomial", Build: trees.Binomial},
		InterSocket: trees.Builder{Name: "binomial", Build: trees.Binomial},
		IntraSocket: trees.Builder{Name: "chain", Build: trees.Chain},
		Alg:         coll.NonBlocking,
	}
	vcounts := make([]int, n)
	vtotal := 0
	for r := range vcounts {
		vcounts[r] = size/n + 8*(r%3) // uneven, 8-aligned blocks
		vtotal += vcounts[r]
	}
	layout := coll.NewLayout(vcounts)

	cases := []Case{
		{
			Name: "core/bcast-binomial",
			In:   rootData("core/bcast-binomial", root, size),
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) comm.Msg {
				return core.Bcast(c, binom, in, opt)
			},
		},
		{
			Name: "core/bcast-chain",
			In:   rootData("core/bcast-chain", root, size),
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) comm.Msg {
				return core.Bcast(c, chain, in, opt)
			},
		},
		{
			Name: "core/bcast-binary",
			In:   rootData("core/bcast-binary", root, size),
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) comm.Msg {
				return core.Bcast(c, bin, in, opt)
			},
		},
		{
			Name: "core/bcast-twotree",
			In:   rootData("core/bcast-twotree", root, size),
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) comm.Msg {
				return core.BcastTwoTree(c, ta, tb, in, opt)
			},
		},
		{
			Name: "core/reduce",
			In:   contribLattice(size),
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) comm.Msg {
				return core.Reduce(c, binom, in, opt)
			},
		},
		{
			Name: "core/allreduce",
			In:   contribLattice(size),
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) comm.Msg {
				return core.Allreduce(c, binom, in, opt)
			},
		},
		{
			Name: "core/allgather",
			In:   contribData("core/allgather", size),
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) comm.Msg {
				return core.Allgather(c, in, opt)
			},
		},
		{
			Name: "core/alltoall",
			In:   contribData("core/alltoall", size),
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) comm.Msg {
				return core.Alltoall(c, in, opt)
			},
		},
		{
			Name: "core/gather",
			In:   contribData("core/gather", size),
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) comm.Msg {
				return core.Gather(c, binom, in, opt)
			},
		},
		{
			Name: "core/scatter",
			In:   rootData("core/scatter", root, size),
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) comm.Msg {
				return core.Scatter(c, binom, in, opt)
			},
		},
		{
			Name: "coll/bcast-blocking",
			In:   rootData("coll/bcast-blocking", root, size),
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) comm.Msg {
				return coll.Bcast(c, binom, in, opt, coll.Blocking)
			},
		},
		{
			Name: "coll/bcast-nonblocking",
			In:   rootData("coll/bcast-nonblocking", root, size),
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) comm.Msg {
				return coll.Bcast(c, binom, in, opt, coll.NonBlocking)
			},
		},
		{
			Name: "coll/reduce-blocking",
			In:   contribLattice(size),
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) comm.Msg {
				return coll.Reduce(c, binom, in, opt, coll.Blocking)
			},
		},
		{
			Name: "coll/reduce-nonblocking",
			In:   contribLattice(size),
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) comm.Msg {
				return coll.Reduce(c, binom, in, opt, coll.NonBlocking)
			},
		},
		{
			Name: "coll/scatter",
			In:   rootData("coll/scatter", root, size),
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) comm.Msg {
				return coll.Scatter(c, root, in, opt)
			},
		},
		{
			Name: "coll/gather",
			In:   contribData("coll/gather", size),
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) comm.Msg {
				return coll.Gather(c, root, in, opt)
			},
		},
		{
			Name: "coll/allgather",
			In:   contribData("coll/allgather", size),
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) comm.Msg {
				return coll.Allgather(c, in, opt)
			},
		},
		{
			Name: "coll/bcast-scatter-allgather",
			In:   rootData("coll/bcast-scatter-allgather", root, size),
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) comm.Msg {
				return coll.BcastScatterAllgather(c, root, in, opt)
			},
		},
		{
			Name: "coll/allreduce-tree",
			In:   contribLattice(size),
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) comm.Msg {
				return coll.Allreduce(c, t0, in, opt)
			},
		},
		{
			Name: "coll/allreduce-ring",
			In:   contribLattice(size),
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) comm.Msg {
				return coll.AllreduceRing(c, in, opt)
			},
		},
		{
			Name: "coll/reduce-scatter-ring",
			In:   contribLattice(size),
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) comm.Msg {
				return coll.ReduceScatterRing(c, in, opt)
			},
		},
		{
			Name: "coll/allreduce-rabenseifner",
			In:   contribLattice(size),
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) comm.Msg {
				return coll.AllreduceRabenseifner(c, in, opt)
			},
		},
		{
			Name: "coll/bcast-multilevel",
			In:   rootData("coll/bcast-multilevel", root, size),
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) comm.Msg {
				return coll.BcastMultiLevel(c, topo, root, in, opt, mlSpec)
			},
		},
		{
			Name: "coll/reduce-multilevel",
			In:   contribLattice(size),
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) comm.Msg {
				return coll.ReduceMultiLevel(c, topo, root, in, opt, mlSpec)
			},
		},
		{
			Name: "coll/barrier",
			In:   func(int) comm.Msg { return comm.Msg{} },
			Run: func(c comm.Comm, _ comm.Msg, opt core.Options) comm.Msg {
				coll.Barrier(c, opt.Seq)
				return comm.Msg{}
			},
		},
		{
			Name: "coll/scatterv",
			In: func(rank int) comm.Msg {
				if rank == root {
					return comm.Bytes(pattern(vtotal, caseSalt("coll/scatterv", root)))
				}
				return comm.Sized(vtotal)
			},
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) comm.Msg {
				return coll.Scatterv(c, binom, layout, in, opt)
			},
		},
		{
			Name: "coll/gatherv",
			In: func(rank int) comm.Msg {
				return comm.Bytes(pattern(vcounts[rank], caseSalt("coll/gatherv", rank)))
			},
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) comm.Msg {
				return coll.Gatherv(c, binom, layout, in, opt)
			},
		},
	}
	return cases
}

// GPUCases enumerates the device-path collectives; topo must be a GPU
// topology (e.g. netmodel.PSG's).
func GPUCases(topo *hwloc.Topology, size int) []Case {
	n := topo.Size()
	if size%(8*n) != 0 {
		panic(fmt.Sprintf("conform: size %d not a multiple of 8×%d ranks", size, n))
	}
	root := 0
	if n > 1 {
		root = 1
	}
	binom := trees.Binomial(n, root)
	return []Case{
		{
			Name: "gpu/bcast-staged",
			In:   rootData("gpu/bcast-staged", root, size),
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) comm.Msg {
				return core.BcastStaged(c.(comm.DeviceComm), topo, binom, in, opt)
			},
		},
		{
			Name: "gpu/reduce-offload",
			In:   contribLattice(size),
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) comm.Msg {
				return core.ReduceOffload(c.(comm.DeviceComm), binom, in, opt)
			},
		},
	}
}
