package conform

import (
	"math/rand"
	"testing"

	"adapt/internal/core"
	"adapt/internal/faults"
	"adapt/internal/hwloc"
	"adapt/internal/netmodel"
)

// Property-based conformance: random seeded fault plans (bounded so
// DefaultRecovery converges) over the five headline collectives. The
// property is universal — any plan RandomPlan can produce must leave
// results byte-identical to the golden run. Plans derive from a fixed
// master seed, so a failure reproduces exactly.
func TestPropertyRandomPlans(t *testing.T) {
	p := netmodel.Cori(1).WithTopo(hwloc.New(2, 1, 2))
	n := p.Topo.Size()
	size := 16 * 8 * n
	names := map[string]bool{
		"core/bcast-binomial": true,
		"core/reduce":         true,
		"core/allreduce":      true,
		"core/allgather":      true,
		"core/alltoall":       true,
	}
	planCount := 4
	if full() {
		planCount = 12
	}
	for _, cs := range Cases(p.Topo, size) {
		if !names[cs.Name] {
			continue
		}
		cs := cs
		t.Run(cs.Name, func(t *testing.T) {
			t.Parallel()
			opt := core.DefaultOptions()
			opt.SegSize = 256
			golden := RunCase(p, cs, opt, nil, faults.Recovery{})
			if golden.Err != nil {
				t.Fatalf("golden: %v", golden.Err)
			}
			// One generator per collective, seeded by the case name, so
			// adding a case never shifts another case's plans.
			rng := rand.New(rand.NewSource(caseSalt(cs.Name, 0)))
			for i := 0; i < planCount; i++ {
				plan := faults.RandomPlan(rng, n)
				got := RunCase(p, cs, opt, &plan, faults.DefaultRecovery())
				if d := Diff(golden, got); d != "" {
					t.Errorf("plan %d {%s}: %s", i, plan, d)
				}
				if len(got.Failures) != 0 {
					t.Errorf("plan %d {%s}: unrecovered loss: %v", i, plan, got.Failures[0])
				}
			}
		})
	}
}

// The same plan must produce the same schedule on different world sizes
// independently — i.e. changing an unrelated axis (payload size) must not
// perturb which messages a rule hits on a fixed world. This pins the
// identity-hashing contract RandomPlan-based tests rely on.
func TestPropertyPlanStableAcrossReruns(t *testing.T) {
	p := netmodel.Cori(1).WithTopo(hwloc.New(2, 1, 2))
	size := 16 * 8 * p.Topo.Size()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3; i++ {
		plan := faults.RandomPlan(rng, p.Topo.Size())
		for _, cs := range Cases(p.Topo, size)[:3] {
			opt := core.DefaultOptions()
			opt.SegSize = 256
			a := RunCase(p, cs, opt, &plan, faults.DefaultRecovery())
			b := RunCase(p, cs, opt, &plan, faults.DefaultRecovery())
			if a.Stats != b.Stats || a.End != b.End {
				t.Fatalf("plan %d case %s: schedule not reproducible: %v/%v vs %v/%v",
					i, cs.Name, a.Stats, a.End, b.Stats, b.End)
			}
		}
	}
}
