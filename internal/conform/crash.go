package conform

import (
	"time"

	"adapt/internal/comm"
	"adapt/internal/core"
	"adapt/internal/faults"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
	"adapt/internal/sim"
	"adapt/internal/simmpi"
	"adapt/internal/trees"
)

// Fail-stop conformance: the survivor-set analogue of the lossy-plan
// grid. A crash case runs a fault-tolerant collective under a crash
// schedule and must (a) complete on every survivor, (b) report one
// identical survivor mask everywhere, and (c) deliver payloads that are
// byte-identical to the crash-free run restricted to the survivor set —
// the dead rank may cost detection and repair time, never bytes.

// CrashCase is one fault-tolerant collective under the fail-stop model.
// In builds rank r's input; Run invokes the FT engine and returns its
// structured per-rank outcome. Like Case, Run takes the abstract
// endpoint so crash cases replay on any fail-stop-capable substrate.
type CrashCase struct {
	Name string
	In   func(rank int) comm.Msg
	Run  func(c comm.Comm, in comm.Msg, opt core.Options) core.FTResult
}

// CrashResult is one simulated run of a crash case. Ranks that died
// mid-run never return from Run, so their slots keep zero values (nil
// Out, nil Mask, nil Err) — Crashed says which ones those are.
type CrashResult struct {
	// Out is each surviving rank's result payload (nil for size-only
	// results, dead ranks, and ranks that returned an error).
	Out [][]byte
	// Masks is each surviving rank's reported survivor set.
	Masks [][]bool
	// Errs is each surviving rank's structured error (nil on success; a
	// *faults.RankFailedError when the root died).
	Errs []error
	// Crashed is the per-rank death mask at the end of the run.
	Crashed []bool
	// End is the virtual completion time.
	End time.Duration
	// KernelErr is the kernel's verdict; a crash run conforms only when
	// the kernel still terminates cleanly (no deadlock).
	KernelErr error
	// Det counts detector activity: suspicions, confirmations, repairs.
	Det simmpi.DetectorStats
	// Stats counts message-level fault injection (zero for crash-only
	// plans: crashes kill ranks, they do not touch live traffic).
	Stats faults.Stats
}

// RunCrashCase executes cs on platform p under plan's crash schedule. A
// nil plan runs the crash-free golden path through the same FT engines.
func RunCrashCase(p *netmodel.Platform, cs CrashCase, opt core.Options, plan *faults.Plan, rec faults.Recovery) CrashResult {
	k := sim.New()
	w := simmpi.NewWorld(k, p, noise.None)
	if plan != nil && plan.Enabled() {
		w.InstallFaults(*plan, rec)
	}
	n := w.Size()
	out := make([][]byte, n)
	masks := make([][]bool, n)
	errs := make([]error, n)
	w.Spawn(func(c *simmpi.Comm) {
		res := cs.Run(c, cs.In(c.Rank()), opt)
		errs[c.Rank()] = res.Err
		if res.Survivors != nil {
			masks[c.Rank()] = append([]bool(nil), res.Survivors...)
		}
		if res.Err == nil && res.Msg.Data != nil {
			out[c.Rank()] = append([]byte(nil), res.Msg.Data...)
		}
	})
	end, err := k.Run()
	return CrashResult{
		Out: out, Masks: masks, Errs: errs, Crashed: w.Crashed(),
		End: end, KernelErr: err, Det: w.DetectorStats(), Stats: w.FaultStats(),
	}
}

// CrashCases enumerates the fault-tolerant collectives for an n-rank
// world with the given payload size. The root is fixed at 0: crash plans
// target non-root ranks, and the dead-root abort path gets its own
// dedicated cases in the tests.
func CrashCases(n, size int) []CrashCase {
	binom := trees.Binomial(n, 0)
	chain := trees.Chain(n, 0)
	return []CrashCase{
		{
			Name: "ft/bcast-binomial",
			In:   rootData("ft/bcast-binomial", 0, size),
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) core.FTResult {
				return core.BcastFT(c, binom, in, opt)
			},
		},
		{
			Name: "ft/bcast-chain",
			In:   rootData("ft/bcast-chain", 0, size),
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) core.FTResult {
				return core.BcastFT(c, chain, in, opt)
			},
		},
		{
			Name: "ft/reduce-binomial",
			In:   contribLattice(size),
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) core.FTResult {
				return core.ReduceFT(c, binom, in, opt)
			},
		},
		{
			Name: "ft/reduce-chain",
			In:   contribLattice(size),
			Run: func(c comm.Comm, in comm.Msg, opt core.Options) core.FTResult {
				return core.ReduceFT(c, chain, in, opt)
			},
		},
	}
}
