package conform

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"adapt/internal/core"
	"adapt/internal/faults"
	"adapt/internal/hwloc"
	"adapt/internal/netmodel"
	"adapt/internal/perf"
	"adapt/internal/simmpi"
	"adapt/internal/trees"
)

// Fail-stop survivor-set grid: worlds × payload sizes × FT collectives ×
// crash targets. Every cell must complete on the survivors with one
// agreed mask and bytes identical to the crash-free run.

func crashWorlds() []world {
	ws := []world{
		{"n8", netmodel.Cori(1).WithTopo(hwloc.New(8, 1, 1))},
	}
	if full() {
		ws = append(ws, world{"n12", netmodel.Cori(1).WithTopo(hwloc.New(12, 1, 1))})
	}
	return ws
}

// crashSegGrid keeps every rank's data phase at least four sends long, so
// the grid's afterK targets are guaranteed to fire before the root can
// commit (a post-commit crash is legal but tests nothing about repair).
func crashSegGrid() map[string]int {
	g := map[string]int{"seg256": 256}
	if full() {
		g["seg128"] = 128
	}
	return g
}

func treeFor(name string, n int) *trees.Tree {
	if strings.HasSuffix(name, "chain") {
		return trees.Chain(n, 0)
	}
	return trees.Binomial(n, 0)
}

// interiorRank picks the highest non-root rank with children — crashing
// it orphans a subtree, forcing re-parenting and segment re-drive.
func interiorRank(t *trees.Tree) int {
	for r := t.Size() - 1; r > 0; r-- {
		if !t.IsLeaf(r) {
			return r
		}
	}
	return t.Size() - 1 // two-rank tree: no interior, fall back to the leaf
}

// leafRank picks the highest leaf — crashing it exercises detection and
// commit without any tree repair traffic.
func leafRank(t *trees.Tree) int {
	for r := t.Size() - 1; r > 0; r-- {
		if t.IsLeaf(r) {
			return r
		}
	}
	panic("conform: tree has no non-root leaf")
}

// latticeSum is the analytic reduction of contribLattice restricted to
// the ranks mask marks live.
func latticeSum(mask []bool, size int) []byte {
	b := make([]byte, size)
	for i := 0; i < size/8; i++ {
		var v float64
		for r, live := range mask {
			if live {
				v += float64((r*31 + i) % 17)
			}
		}
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
	return b
}

func isReduceCase(cs CrashCase) bool { return strings.HasPrefix(cs.Name, "ft/reduce") }

// checkGoldenCrashRun validates the crash-free FT run: full mask, no
// errors, no detector activity.
func checkGoldenCrashRun(t *testing.T, golden CrashResult) {
	t.Helper()
	if golden.KernelErr != nil {
		t.Fatalf("golden run failed: %v", golden.KernelErr)
	}
	if golden.Det != (simmpi.DetectorStats{}) {
		t.Fatalf("golden run moved detector counters: %+v", golden.Det)
	}
	for r, m := range golden.Masks {
		for p, live := range m {
			if !live {
				t.Fatalf("golden run: rank %d reports rank %d dead", r, p)
			}
		}
		if golden.Errs[r] != nil {
			t.Fatalf("golden run: rank %d errored: %v", r, golden.Errs[r])
		}
	}
}

// checkSurvivorRun validates a crashed run against its golden twin: the
// survivors agree on a mask excluding exactly dead, bcast payloads stay
// byte-identical, and the reduce fold matches the survivor-set sum.
func checkSurvivorRun(t *testing.T, cs CrashCase, golden, got CrashResult, size int, dead ...int) {
	t.Helper()
	if got.KernelErr != nil {
		t.Fatalf("crash run did not terminate cleanly: %v", got.KernelErr)
	}
	n := len(got.Crashed)
	isDead := make([]bool, n)
	for _, d := range dead {
		isDead[d] = true
	}
	for r := 0; r < n; r++ {
		if got.Crashed[r] != isDead[r] {
			t.Fatalf("crash mask wrong at rank %d: crashed=%v want %v", r, got.Crashed[r], isDead[r])
		}
	}
	want := uint64(len(dead))
	if got.Det.Confirms != want || got.Det.Suspects != want || got.Det.Repairs != want {
		t.Fatalf("detector counters = %+v, want %d of each", got.Det, want)
	}
	for r := 0; r < n; r++ {
		if isDead[r] {
			continue
		}
		if got.Errs[r] != nil {
			t.Fatalf("survivor %d errored: %v", r, got.Errs[r])
		}
		if len(got.Masks[r]) != n {
			t.Fatalf("survivor %d mask has %d entries, want %d", r, len(got.Masks[r]), n)
		}
		for p, live := range got.Masks[r] {
			if live == isDead[p] {
				t.Fatalf("survivor %d mask[%d]=%v, want %v", r, p, live, !isDead[p])
			}
		}
	}
	if isReduceCase(cs) {
		wantSum := latticeSum(got.Masks[0], size)
		if !bytes.Equal(got.Out[0], wantSum) {
			t.Fatalf("root fold diverges from the survivor-set sum (first delta at %d)",
				firstDelta(got.Out[0], wantSum))
		}
		return
	}
	for r := 0; r < n; r++ {
		if isDead[r] {
			continue
		}
		if !bytes.Equal(got.Out[r], golden.Out[r]) {
			t.Fatalf("survivor %d payload diverges from golden (%d vs %d bytes, first delta at %d)",
				r, len(golden.Out[r]), len(got.Out[r]), firstDelta(golden.Out[r], got.Out[r]))
		}
	}
}

// TestCrashSurvivorGrid is the fail-stop tentpole check: across worlds,
// sizes, FT collectives, and crash targets (interior orphaning a
// subtree, leaf, and an interior killed at its very first send), the
// survivors must finish with golden bytes and one agreed mask.
func TestCrashSurvivorGrid(t *testing.T) {
	for _, w := range crashWorlds() {
		n := w.p.Topo.Size()
		for _, unit := range units() {
			size := unit * 8 * n
			for _, cs := range CrashCases(n, size) {
				tree := treeFor(cs.Name, n)
				targets := []struct {
					name        string
					rank, after int
				}{
					{"interior", interiorRank(tree), 1},
					{"leaf", leafRank(tree), 0},
					{"interior-first-send", interiorRank(tree), 0},
				}
				for segName, segSize := range crashSegGrid() {
					for _, tg := range targets {
						w, cs, segSize, tg := w, cs, segSize, tg
						name := fmt.Sprintf("%s/%s/%dB/%s/%s-crash@%d:after%d",
							w.name, cs.Name, size, segName, tg.name, tg.rank, tg.after)
						t.Run(name, func(t *testing.T) {
							t.Parallel()
							runCrashCell(t, w.p, cs, size, segSize, tg.rank, tg.after)
						})
					}
				}
			}
		}
	}
}

func runCrashCell(t *testing.T, p *netmodel.Platform, cs CrashCase, size, segSize, rank, after int) {
	opt := core.DefaultOptions()
	if segSize > 0 {
		opt.SegSize = segSize
	}
	golden := RunCrashCase(p, cs, opt, nil, faults.Recovery{})
	checkGoldenCrashRun(t, golden)
	plan := faults.MustParsePlan(fmt.Sprintf("seed=7; crash@%d:after%d", rank, after))
	got := RunCrashCase(p, cs, opt, &plan, faults.DefaultRecovery())
	checkSurvivorRun(t, cs, golden, got, size, rank)
	if got.Stats.Total() != 0 {
		t.Errorf("crash-only plan injected message faults: %v", got.Stats)
	}
}

// TestCrashRendezvousSized re-runs the interior crash with segments well
// past the eager limit, so re-driven traffic exercises the rendezvous
// protocol (and its cancel/annihilation edges) instead of eager copies.
func TestCrashRendezvousSized(t *testing.T) {
	p := netmodel.Cori(1).WithTopo(hwloc.New(4, 1, 1))
	n := p.Topo.Size()
	size := 2048 * 8 * n // 64 KB; two 32 KB segments, eager limit is 8 KB
	opt := core.DefaultOptions()
	opt.SegSize = 32 << 10
	for _, cs := range CrashCases(n, size) {
		cs := cs
		target := interiorRank(treeFor(cs.Name, n))
		t.Run(cs.Name, func(t *testing.T) {
			t.Parallel()
			golden := RunCrashCase(p, cs, opt, nil, faults.Recovery{})
			checkGoldenCrashRun(t, golden)
			plan := faults.MustParsePlan(fmt.Sprintf("seed=9; crash@%d", target))
			got := RunCrashCase(p, cs, opt, &plan, faults.DefaultRecovery())
			checkSurvivorRun(t, cs, golden, got, size, target)
		})
	}
}

// TestCrashRootAborts: a dead root is unrecoverable by design — every
// survivor must return a structured *faults.RankFailedError naming the
// root, and the kernel must still terminate (no hang, no leaked ops).
func TestCrashRootAborts(t *testing.T) {
	p := netmodel.Cori(1).WithTopo(hwloc.New(8, 1, 1))
	n := p.Topo.Size()
	size := 16 * 8 * n
	opt := core.DefaultOptions()
	opt.SegSize = 256
	for _, cs := range CrashCases(n, size) {
		cs := cs
		// The bcast root dies mid-fanout; the reduce root only initiates
		// sends at commit time, so after0 kills it there.
		after := 2
		if isReduceCase(cs) {
			after = 0
		}
		t.Run(cs.Name, func(t *testing.T) {
			t.Parallel()
			plan := faults.MustParsePlan(fmt.Sprintf("seed=5; crash@0:after%d", after))
			got := RunCrashCase(p, cs, opt, &plan, faults.DefaultRecovery())
			if got.KernelErr != nil {
				t.Fatalf("root-crash run did not terminate cleanly: %v", got.KernelErr)
			}
			if !got.Crashed[0] {
				t.Fatal("root did not crash")
			}
			for r := 1; r < n; r++ {
				var rf *faults.RankFailedError
				if !errors.As(got.Errs[r], &rf) {
					t.Fatalf("survivor %d: error = %v, want *faults.RankFailedError", r, got.Errs[r])
				}
				if rf.Rank != 0 {
					t.Fatalf("survivor %d blames rank %d, want root 0", r, rf.Rank)
				}
				if got.Out[r] != nil {
					t.Fatalf("survivor %d produced a payload despite the abort", r)
				}
			}
		})
	}
}

// TestCrashNeverFires: an armed crash rule whose send threshold is never
// reached must be invisible — full mask, golden bytes, zero detector
// counters.
func TestCrashNeverFires(t *testing.T) {
	p := netmodel.Cori(1).WithTopo(hwloc.New(8, 1, 1))
	n := p.Topo.Size()
	size := 16 * 8 * n
	opt := core.DefaultOptions()
	opt.SegSize = 256
	for _, cs := range CrashCases(n, size) {
		cs := cs
		t.Run(cs.Name, func(t *testing.T) {
			t.Parallel()
			golden := RunCrashCase(p, cs, opt, nil, faults.Recovery{})
			checkGoldenCrashRun(t, golden)
			plan := faults.MustParsePlan("seed=5; crash@4:after100000")
			got := RunCrashCase(p, cs, opt, &plan, faults.DefaultRecovery())
			checkGoldenCrashRun(t, got)
			checkSurvivorRun(t, cs, golden, got, size) // no dead ranks
		})
	}
}

// TestCrashScheduleDeterminism re-runs the same crash case from parallel
// goroutines — standing in for adaptbench -j N — and demands identical
// payloads, masks, detection counters, and virtual end time.
func TestCrashScheduleDeterminism(t *testing.T) {
	p := netmodel.Cori(1).WithTopo(hwloc.New(8, 1, 1))
	n := p.Topo.Size()
	size := 16 * 8 * n
	opt := core.DefaultOptions()
	opt.SegSize = 256
	for _, cs := range CrashCases(n, size) {
		cs := cs
		target := interiorRank(treeFor(cs.Name, n))
		t.Run(cs.Name, func(t *testing.T) {
			t.Parallel()
			plan := faults.MustParsePlan(fmt.Sprintf("seed=13; crash@%d:after1", target))
			ref := RunCrashCase(p, cs, opt, &plan, faults.DefaultRecovery())
			if ref.KernelErr != nil {
				t.Fatalf("reference run failed: %v", ref.KernelErr)
			}
			results := make(chan CrashResult, 4)
			for i := 0; i < 4; i++ {
				go func() { results <- RunCrashCase(p, cs, opt, &plan, faults.DefaultRecovery()) }()
			}
			for i := 0; i < 4; i++ {
				got := <-results
				if got.End != ref.End {
					t.Fatalf("virtual end time diverged: %v vs %v", got.End, ref.End)
				}
				if got.Det != ref.Det {
					t.Fatalf("detection schedule diverged: %+v vs %+v", got.Det, ref.Det)
				}
				for r := 0; r < n; r++ {
					if got.Crashed[r] != ref.Crashed[r] {
						t.Fatalf("crash schedule diverged at rank %d", r)
					}
					if !bytes.Equal(got.Out[r], ref.Out[r]) {
						t.Fatalf("rank %d payload diverged across re-runs", r)
					}
					if fmt.Sprint(got.Masks[r]) != fmt.Sprint(ref.Masks[r]) {
						t.Fatalf("rank %d mask diverged: %v vs %v", r, got.Masks[r], ref.Masks[r])
					}
				}
			}
		})
	}
}

// TestCleanRunDetectorCountersZero is the no-regression gate
// scripts/bench.sh relies on: without crash rules armed, neither the
// per-world detector counters nor the global perf counters may move.
func TestCleanRunDetectorCountersZero(t *testing.T) {
	p := netmodel.Cori(1).WithTopo(hwloc.New(8, 1, 1))
	n := p.Topo.Size()
	size := 16 * 8 * n
	perf.Reset()
	opt := core.DefaultOptions()
	opt.SegSize = 256
	for _, cs := range CrashCases(n, size) {
		golden := RunCrashCase(p, cs, opt, nil, faults.Recovery{})
		checkGoldenCrashRun(t, golden)
		// A message-fault plan with no crash rules must not arm the
		// detector either.
		plan := faults.MustParsePlan(plans[0].text)
		got := RunCrashCase(p, cs, opt, &plan, faults.DefaultRecovery())
		checkGoldenCrashRun(t, got)
	}
	if s := perf.Read(); s.DetectorTotal() != 0 {
		t.Fatalf("clean runs moved detector counters: suspects=%d confirms=%d repairs=%d",
			s.DetectorSuspects, s.DetectorConfirms, s.TreeRepairs)
	}
}
