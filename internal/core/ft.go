package core

import (
	"adapt/internal/comm"
	"adapt/internal/trees"
)

// Fail-stop fault-tolerant collectives (BcastFT, ReduceFT). This file
// holds the pieces both share; the per-collective state machines live in
// bcast_ft.go and reduce_ft.go.
//
// The FT collectives run on any comm.Comm; when the endpoint also
// implements comm.FailStop with crash rules armed, they survive fail-stop
// crashes of non-root ranks: the failure detector confirms a death, every
// survivor heals the spanning tree deterministically (trees.Heal), orphans
// re-attach to their grandparent and re-drive the segments they are
// missing, and the root commits a survivor mask once every live rank has
// accounted for the operation. A dead root is unrecoverable by design —
// the payload source (bcast) or fold destination (reduce) is gone — and
// every survivor returns a structured *faults.RankFailedError.
//
// Teardown uses a quiesce handshake so no rank exits with operations in
// flight: after its own data sends drain, a rank sends a FIN control
// message to each live peer it sent payload to; a peer holding posted
// receives from that rank cancels the leftovers only when the FIN proves
// nothing more is coming (cancelling earlier could strand a live sender's
// rendezvous announcement in the unexpected queue forever).

// FTResult is the outcome of a fault-tolerant collective on one rank.
type FTResult struct {
	// Msg is the collective's payload result: the delivered broadcast
	// message, or (at the root) the survivor-set reduction. Valid only
	// when Err is nil.
	Msg comm.Msg
	// Survivors marks the ranks the operation committed over: true =
	// participated, false = confirmed dead and excluded. On a committed
	// run every live rank reports an identical mask.
	Survivors []bool
	// Err is non-nil when the operation cannot complete on the survivor
	// set (the root died): a *faults.RankFailedError.
	Err error
}

// failStopOf returns the endpoint's fail-stop control plane when crash
// rules are armed; ok=false selects the plain (non-FT) engine.
func failStopOf(c comm.Comm) (comm.FailStop, bool) {
	fs, ok := c.(comm.FailStop)
	return fs, ok && fs.CrashesEnabled()
}

// allLive is the survivor mask of a crash-free run.
func allLive(n int) []bool {
	m := make([]bool, n)
	for i := range m {
		m[i] = true
	}
	return m
}

// liveMask inverts a death mask.
func liveMask(dead []bool) []bool {
	m := make([]bool, len(dead))
	for i, d := range dead {
		m[i] = !d
	}
	return m
}

// packBits encodes a segment bitmap for the wire (re-drive requests),
// little-endian within each byte. Always at least one byte so the message
// carries real data even when nothing is missing.
func packBits(bits []bool) []byte {
	out := make([]byte, (len(bits)+7)/8+1)
	for i, b := range bits {
		if b {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out
}

// unpackBits decodes a packBits payload back into n segment flags.
func unpackBits(data []byte, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		if i/8 < len(data) && data[i/8]&(1<<(i%8)) != 0 {
			out[i] = true
		}
	}
	return out
}

// finTag is the quiesce handshake tag for FINs sent by rank r in a world
// of n ranks. The segment space n+r keeps it disjoint from done
// notifications (KindDone, seg = sender rank < n) under the same seq.
func (o Options) finTag(n, r int) comm.Tag {
	return o.TagOf(comm.KindDone, n+r)
}

// healed returns t healed around the cumulative death mask, or t itself
// while nobody has died.
func healed(t *trees.Tree, dead []bool) *trees.Tree {
	for _, d := range dead {
		if d {
			return t.Heal(dead)
		}
	}
	return t
}
