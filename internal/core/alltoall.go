package core

import (
	"fmt"

	"adapt/internal/comm"
)

// alltoallState is the event-driven pairwise-exchange alltoall: round r
// sends this rank's block for (me+r) mod n and receives the block from
// (me−r) mod n. Instead of running the n−1 rounds in lock-step, a window
// of SendWindow rounds is kept in flight and each round's completion
// starts the next — one round stalling (a slow or noisy partner) does not
// stop the rounds behind it in the window.
type alltoallState struct {
	c   comm.Comm
	opt Options
	n   int
	blk int

	in  []byte // input: n rank-ordered blocks (may be nil)
	out []byte // output: n rank-ordered blocks (may be nil)

	nextRound   int
	sendPending int
	recvPending int
}

// Alltoall performs the personalized all-to-all exchange: input holds n
// equally sized blocks in rank order (block d goes to rank d); the result
// holds block s from every rank s. input.Size must be divisible by the
// communicator size.
func Alltoall(c comm.Comm, input comm.Msg, opt Options) comm.Msg {
	return StartAlltoall(c, input, opt).Wait()
}

// StartAlltoall begins a non-blocking event-driven alltoall.
func StartAlltoall(c comm.Comm, input comm.Msg, opt Options) *Op {
	opt = opt.validate()
	n := c.Size()
	if input.Size%n != 0 {
		panic(fmt.Sprintf("core: alltoall buffer %dB not divisible by %d ranks", input.Size, n))
	}
	end := traceStart(c, comm.KindAlltoall, opt, -1, input.Size)
	s := newAlltoallState(c, input, opt)
	return end(&Op{
		c:       c,
		pending: func() bool { return s.recvPending > 0 || s.sendPending > 0 },
		result: func() comm.Msg {
			return comm.Msg{Data: s.out, Size: s.blk * s.n, Space: input.Space}
		},
	})
}

func newAlltoallState(c comm.Comm, input comm.Msg, opt Options) *alltoallState {
	n := c.Size()
	me := c.Rank()
	s := &alltoallState{c: c, opt: opt, n: n, blk: input.Size / n, in: input.Data}
	if input.Data != nil {
		s.out = make([]byte, input.Size)
		copy(s.out[me*s.blk:], input.Data[me*s.blk:(me+1)*s.blk]) // self block
	}
	if n == 1 {
		return s
	}
	s.sendPending = n - 1
	s.recvPending = n - 1
	s.nextRound = 1
	for i := 0; i < opt.SendWindow && s.nextRound < n; i++ {
		s.startRound()
	}
	return s
}

// startRound posts one exchange round's send and receive. The next round
// launches when this round's receive completes (receives are what a slow
// partner delays; sends complete at buffer reuse).
func (s *alltoallState) startRound() {
	r := s.nextRound
	s.nextRound++
	me := s.c.Rank()
	to := (me + r) % s.n
	from := (me - r + s.n) % s.n

	var payload comm.Msg
	payload.Size = s.blk
	if s.in != nil {
		payload.Data = s.in[to*s.blk : (to+1)*s.blk]
	}
	sr := s.c.Isend(to, s.opt.TagOf(comm.KindAlltoall, r), payload)
	s.c.OnComplete(sr, func(comm.Status) { s.sendPending-- })

	rr := s.c.Irecv(from, s.opt.TagOf(comm.KindAlltoall, r))
	s.c.OnComplete(rr, func(st comm.Status) {
		s.recvPending--
		if st.Msg.Data != nil {
			if s.out == nil {
				s.out = make([]byte, s.blk*s.n)
			}
			copy(s.out[from*s.blk:], st.Msg.Data)
		}
		if s.nextRound < s.n {
			s.startRound()
		}
	})
}
