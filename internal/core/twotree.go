package core

import (
	"adapt/internal/comm"
	"adapt/internal/trees"
)

// BcastTwoTree is the two-tree full-bandwidth broadcast (paper §2.2.4's
// "advanced trees [31]") composed from two concurrent non-blocking ADAPT
// broadcasts: the message is split in half, each half streams down its
// own tree, and because a rank interior in tree A is (mostly) a leaf in
// tree B, each rank forwards only about half the payload per child slot —
// approaching full link bandwidth where a single binary tree sustains
// half.
//
// The two state machines share the rank's progress engine; their tags are
// separated by consecutive sequence numbers, so opt.Seq and opt.Seq+1 are
// both consumed.
func BcastTwoTree(c comm.Comm, a, b *trees.Tree, msg comm.Msg, opt Options) comm.Msg {
	opt = opt.validate()
	half := msg.Size / 2
	lo := comm.Msg{Size: half, Space: msg.Space}
	hi := comm.Msg{Size: msg.Size - half, Space: msg.Space}
	if msg.Data != nil && c.Rank() == a.Root {
		lo.Data = msg.Data[:half]
		hi.Data = msg.Data[half:]
	}
	optB := opt
	optB.Seq = opt.Seq + 1

	opA := StartBcast(c, a, lo, opt)
	opB := StartBcast(c, b, hi, optB)
	outA := opA.Wait()
	outB := opB.Wait()

	if c.Rank() == a.Root {
		return msg
	}
	out := comm.Msg{Size: msg.Size, Space: msg.Space}
	if outA.Data != nil || outB.Data != nil {
		buf := make([]byte, msg.Size)
		copy(buf, outA.Data)
		copy(buf[half:], outB.Data)
		out.Data = buf
	}
	return out
}
