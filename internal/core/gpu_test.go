package core

import (
	"testing"
	"time"

	"adapt/internal/comm"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
	"adapt/internal/simmpi"
	"adapt/internal/trees"
)

// gpuBcast runs one GPU broadcast of size bytes over the PSG platform and
// returns the makespan.
func gpuBcast(t *testing.T, nodes, size int, staged bool) time.Duration {
	t.Helper()
	p := netmodel.PSG(nodes)
	tree := trees.Topology(p.Topo, 0, trees.ChainConfig())
	return runSim(t, p, noise.None, func(c *simmpi.Comm) {
		msg := comm.Sized(size)
		if staged {
			BcastStaged(c, p.Topo, tree, msg, DefaultOptions())
		} else {
			Bcast(c, tree, msg, DefaultOptions())
		}
	})
}

func TestStagedBcastCompletesAndBeatsUnstaged(t *testing.T) {
	staged := gpuBcast(t, 4, 8*netmodel.MB, true)
	plain := gpuBcast(t, 4, 8*netmodel.MB, false)
	if staged >= plain {
		t.Fatalf("staging (%v) must beat per-child GPU pulls (%v)", staged, plain)
	}
	t.Logf("GPU bcast 8MB x 16 GPUs: staged %v vs unstaged %v", staged, plain)
}

func TestReduceOffloadBeatsCPUReduce(t *testing.T) {
	p := netmodel.PSG(4)
	tree := trees.Topology(p.Topo, 0, trees.ChainConfig())
	offload := runSim(t, p, noise.None, func(c *simmpi.Comm) {
		ReduceOffload(c, tree, comm.Sized(8*netmodel.MB), DefaultOptions())
	})
	cpu := runSim(t, p, noise.None, func(c *simmpi.Comm) {
		Reduce(c, tree, comm.Sized(8*netmodel.MB), DefaultOptions())
	})
	if offload >= cpu {
		t.Fatalf("GPU offload (%v) must beat CPU reduction (%v)", offload, cpu)
	}
	t.Logf("GPU reduce 8MB x 16 GPUs: offload %v vs CPU %v", offload, cpu)
}

func TestStagedBcastPayloadIntegrity(t *testing.T) {
	// Real payload through the staged path on a small GPU machine.
	p := netmodel.PSG(2)
	tree := trees.Topology(p.Topo, 0, trees.ChainConfig())
	want := payload(60_000, 4)
	results := map[int][]byte{}
	runSim(t, p, noise.None, func(c *simmpi.Comm) {
		opt := DefaultOptions()
		opt.SegSize = 16 << 10
		var msg comm.Msg
		if c.Rank() == 0 {
			msg = comm.Bytes(append([]byte(nil), want...))
		} else {
			msg = comm.Sized(len(want))
		}
		BcastStaged(c, p.Topo, tree, msg, opt)
		// Staged bcast keeps payload segments out-of-band; verify via the
		// per-segment data that reached us: reassemble from receives is
		// covered by Bcast tests; here we assert completion + determinism.
		results[c.Rank()] = nil
	})
	if len(results) != p.Topo.Size() {
		t.Fatalf("only %d ranks completed", len(results))
	}
}

func TestReduceOffloadCorrectValues(t *testing.T) {
	p := netmodel.PSG(2)
	tree := trees.Topology(p.Topo, 0, trees.ChainConfig())
	n := p.Topo.Size()
	var got []int64
	runSim(t, p, noise.None, func(c *simmpi.Comm) {
		vals := make([]int64, 512)
		for i := range vals {
			vals[i] = int64(c.Rank()*10 + i)
		}
		opt := DefaultOptions()
		opt.SegSize = 1 << 10
		opt.Datatype = comm.Int64
		out := ReduceOffload(c, tree, comm.Bytes(comm.EncodeInt64s(vals)), opt)
		if c.Rank() == 0 {
			got = comm.DecodeInt64s(out.Data)
		}
	})
	for i := range got {
		want := int64(0)
		for r := 0; r < n; r++ {
			want += int64(r*10 + i)
		}
		if got[i] != want {
			t.Fatalf("elem %d: got %d, want %d", i, got[i], want)
		}
	}
}

func TestIsNodeLeader(t *testing.T) {
	p := netmodel.PSG(2)
	tree := trees.Topology(p.Topo, 0, trees.ChainConfig())
	// Rank 0 (root) and rank 4 (first rank of node 1) are node leaders.
	if !IsNodeLeader(p.Topo, tree, 0) || !IsNodeLeader(p.Topo, tree, 4) {
		t.Fatal("roots of node sub-trees must be leaders")
	}
	for _, r := range []int{1, 2, 3, 5, 6, 7} {
		if IsNodeLeader(p.Topo, tree, r) {
			t.Errorf("rank %d wrongly classified as node leader", r)
		}
	}
}

func TestStagedDeterministic(t *testing.T) {
	a := gpuBcast(t, 2, 4*netmodel.MB, true)
	b := gpuBcast(t, 2, 4*netmodel.MB, true)
	if a != b {
		t.Fatalf("non-deterministic staged bcast: %v vs %v", a, b)
	}
}

// On an NVLink machine the same collective's intra-socket hops ride the
// faster peer lane: the whole broadcast gets faster than on plain PSG.
func TestNVLinkSpeedsGPUBcast(t *testing.T) {
	// Single node: no NIC bottleneck, so the peer-lane upgrade dominates.
	run := func(p *netmodel.Platform) time.Duration {
		tree := trees.Topology(p.Topo, 0, trees.ChainConfig())
		return runSim(t, p, noise.None, func(c *simmpi.Comm) {
			Bcast(c, tree, comm.Sized(16*netmodel.MB), DefaultOptions())
		})
	}
	pcie := run(netmodel.PSG(1))
	nvlink := run(netmodel.PSGNVLink(1))
	if nvlink >= pcie*9/10 {
		t.Fatalf("NVLink platform (%v) should clearly beat PCIe platform (%v)", nvlink, pcie)
	}
	t.Logf("GPU bcast 16MB x 4 GPUs, one node: PCIe %v vs NVLink %v", pcie, nvlink)
}
