package core

import (
	"bytes"
	"sync"
	"testing"

	"adapt/internal/comm"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
	"adapt/internal/runtime"
	"adapt/internal/simmpi"
	"adapt/internal/trees"
)

// Two collectives in flight at once on the live runtime: a non-blocking
// broadcast is started, a full reduce runs to completion while the
// broadcast is pending, then the broadcast is waited. Both must be
// correct — the §7 "asynchronous progress" property.
func TestOverlappedBcastAndReduceLive(t *testing.T) {
	const n = 10
	tree := trees.Binomial(n, 0)
	want := payload(60_000, 13)
	w := runtime.NewWorld(n)
	var mu sync.Mutex
	bres := map[int][]byte{}
	var rres []int64
	w.Run(func(c *runtime.Comm) {
		optB := DefaultOptions()
		optB.SegSize = 8 << 10
		var msg comm.Msg
		if c.Rank() == 0 {
			msg = comm.Bytes(append([]byte(nil), want...))
		} else {
			msg = comm.Sized(len(want))
		}
		op := StartBcast(c, tree, msg, optB)

		optR := DefaultOptions()
		optR.Seq = 1
		optR.Datatype = comm.Int64
		vals := []int64{int64(c.Rank()), 7}
		red := Reduce(c, tree, comm.Bytes(comm.EncodeInt64s(vals)), optR)

		out := op.Wait()
		mu.Lock()
		bres[c.Rank()] = out.Data
		if c.Rank() == 0 {
			rres = comm.DecodeInt64s(red.Data)
		}
		mu.Unlock()
	})
	for r := 0; r < n; r++ {
		if !bytes.Equal(bres[r], want) {
			t.Fatalf("rank %d: overlapped bcast corrupted", r)
		}
	}
	if rres[0] != int64(n*(n-1)/2) || rres[1] != 7*n {
		t.Fatalf("overlapped reduce wrong: %v", rres)
	}
}

// Done must eventually turn true without an explicit Wait when the rank
// progresses for other reasons.
func TestOpDoneViaForeignProgress(t *testing.T) {
	const n = 4
	tree := trees.Chain(n, 0)
	w := runtime.NewWorld(n)
	w.Run(func(c *runtime.Comm) {
		opt := DefaultOptions()
		var msg comm.Msg
		if c.Rank() == 0 {
			msg = comm.Bytes(payload(20_000, 1))
		} else {
			msg = comm.Sized(20_000)
		}
		op := StartBcast(c, tree, msg, opt)
		// Drive completion through point-to-point traffic on the side.
		// Every rank runs the same fixed ring schedule so nobody deadlocks
		// waiting for a peer that left early; the collective's callbacks
		// fire from inside these Waits.
		peer := (c.Rank() + 1) % n
		prev := (c.Rank() + n - 1) % n
		sawDone := false
		for i := 0; i < 40; i++ {
			tg := comm.MakeTag(comm.KindP2P, 100, i)
			r := c.Irecv(prev, tg)
			c.Send(peer, tg, comm.Bytes([]byte{1}))
			c.Wait(r)
			if op.Done() {
				sawDone = true
			}
		}
		out := op.Wait()
		if out.Size != 20_000 {
			t.Errorf("rank %d: bad size %d", c.Rank(), out.Size)
		}
		_ = sawDone // timing-dependent; completion itself is the assertion
	})
}

// Non-blocking GPU variants behave like their blocking counterparts.
func TestStartGPUVariantsSim(t *testing.T) {
	p := netmodel.PSG(2)
	tree := trees.Topology(p.Topo, 0, trees.ChainConfig())
	blocking := runSim(t, p, noise.None, func(c *simmpi.Comm) {
		BcastStaged(c, p.Topo, tree, comm.Sized(4*netmodel.MB), DefaultOptions())
		opt := DefaultOptions()
		opt.Seq = 1
		ReduceOffload(c, tree, comm.Sized(4*netmodel.MB), opt)
	})
	nonblocking := runSim(t, p, noise.None, func(c *simmpi.Comm) {
		op1 := StartBcastStaged(c, p.Topo, tree, comm.Sized(4*netmodel.MB), DefaultOptions())
		op1.Wait()
		opt := DefaultOptions()
		opt.Seq = 1
		op2 := StartReduceOffload(c, tree, comm.Sized(4*netmodel.MB), opt)
		op2.Wait()
	})
	if blocking != nonblocking {
		t.Fatalf("Start+Wait (%v) must equal blocking call (%v)", nonblocking, blocking)
	}
}

// Overlapping a staged broadcast and an offloaded reduce on the simulator
// must beat running them back to back (the overlap actually buys time).
func TestOverlapBuysTimeSim(t *testing.T) {
	p := netmodel.PSG(2)
	tree := trees.Topology(p.Topo, 0, trees.ChainConfig())
	serial := runSim(t, p, noise.None, func(c *simmpi.Comm) {
		BcastStaged(c, p.Topo, tree, comm.Sized(8*netmodel.MB), DefaultOptions())
		opt := DefaultOptions()
		opt.Seq = 1
		ReduceOffload(c, tree, comm.Sized(8*netmodel.MB), opt)
	})
	overlapped := runSim(t, p, noise.None, func(c *simmpi.Comm) {
		op1 := StartBcastStaged(c, p.Topo, tree, comm.Sized(8*netmodel.MB), DefaultOptions())
		opt := DefaultOptions()
		opt.Seq = 1
		op2 := StartReduceOffload(c, tree, comm.Sized(8*netmodel.MB), opt)
		op1.Wait()
		op2.Wait()
	})
	if overlapped >= serial {
		t.Fatalf("overlap (%v) should beat serial (%v)", overlapped, serial)
	}
	t.Logf("serial %v vs overlapped %v", serial, overlapped)
}
