package core

import (
	"adapt/internal/comm"
	"adapt/internal/faults"
	"adapt/internal/trace"
	"adapt/internal/trees"
)

// ReduceFT is the fail-stop fault-tolerant ADAPT reduction. Without
// crash rules armed it is exactly Reduce (on a private copy of the
// contribution, plus an all-true survivor mask); with them, the root's
// result folds exactly the survivor set's contributions and every live
// rank reports the committed mask. A dead root aborts with
// *faults.RankFailedError on every survivor.
//
// Unlike the broadcast, a reduction cannot repair in place: an interior
// rank's accumulator already mixes contributions from subtrees that a
// healed tree reassigns, so partial folds cannot be reused without
// double-counting. Instead every confirmed death restarts the operation
// as a new epoch over the healed tree: each rank refolds from a pristine
// copy of its own contribution, and epoch-tagged segments keep late
// traffic from a previous epoch out of the new fold (stale receives
// drain as sponges). Processing one death per restart keeps every rank's
// epoch count identical — masks, tags, and trees stay in agreement.
func ReduceFT(c comm.Comm, t *trees.Tree, contrib comm.Msg, opt Options) FTResult {
	fs, ok := failStopOf(c)
	if !ok {
		priv := contrib
		if contrib.Data != nil {
			// Reduce folds in place; keep the caller's buffer pristine.
			priv.Data = append([]byte(nil), contrib.Data...)
		}
		return FTResult{Msg: Reduce(c, t, priv, opt), Survivors: allLive(c.Size())}
	}
	opt = opt.validate()
	startID := trace.Emit(c, trace.Record{Kind: trace.CollStart, Peer: t.Root,
		Tag: opt.TagOf(comm.KindReduce, 0), Size: contrib.Size})
	prev := trace.SetCause(c, startID)
	s := newReduceFT(c, fs, t, contrib, opt)
	trace.SetCause(c, prev)
	res := s.run()
	trace.Emit(c, trace.Record{Kind: trace.CollEnd, Peer: t.Root,
		Tag: opt.TagOf(comm.KindReduce, 0), Size: contrib.Size, Link: startID})
	return res
}

// reduceFT is the per-rank fault-tolerant reduce state machine. All
// mutation happens on the owner goroutine.
type reduceFT struct {
	c    comm.Comm
	fs   comm.FailStop
	t    *trees.Tree
	opt  Options
	n    int
	ns   int
	rank int

	base  []byte // pristine private copy of the local contribution
	total int
	space comm.MemSpace

	dead  []bool
	epoch int

	// Current-epoch state (rebuilt by startEpoch).
	cur      *trees.Tree
	working  []byte // fold accumulator; stale epochs leak theirs (sends alias it)
	segs     []comm.Segment
	needed   []int
	children []int
	nextPost []int
	parent   int
	upReady  map[int]comm.Msg
	upNext   int
	upFlight int
	ready    int

	// openRecvs spans epochs: stale receives stay posted as sponges for a
	// live child's old in-flight sends, keyed by child for FIN cancel.
	openRecvs map[int]map[comm.Request]bool

	sentTo   map[int]bool // live parents sent to across epochs (FIN targets)
	finRecvs map[int]comm.Request

	sendsOut   int
	dataOut    int
	finSent    bool
	finishing  bool
	committed  bool
	commitMask []bool
	abortErr   error
}

func newReduceFT(c comm.Comm, fs comm.FailStop, t *trees.Tree, contrib comm.Msg, opt Options) *reduceFT {
	s := &reduceFT{
		c: c, fs: fs, t: t, opt: opt,
		n: c.Size(), rank: c.Rank(),
		total: contrib.Size, space: contrib.Space,
		dead:      make([]bool, c.Size()),
		openRecvs: make(map[int]map[comm.Request]bool),
		sentTo:    make(map[int]bool),
		finRecvs:  make(map[int]comm.Request),
	}
	if contrib.Data != nil {
		s.base = append([]byte(nil), contrib.Data...)
	}
	s.ns = len(comm.Segments(comm.Msg{Size: s.total, Space: s.space}, opt.SegSize))
	s.startEpoch()
	return s
}

// epochOpt carries the epoch in the tag sequence so stale segments can
// never fold into the wrong epoch.
func (s *reduceFT) epochOpt() Options {
	o := s.opt
	o.Seq = s.opt.Seq + s.epoch
	return o
}

// startEpoch (re)builds the fold over the current healed tree from the
// pristine contribution.
func (s *reduceFT) startEpoch() {
	trace.Emit(s.c, trace.Record{Kind: trace.Epoch, Peer: -1,
		Tag: s.epochOpt().TagOf(comm.KindReduce, 0), Size: s.epoch})
	s.cur = healed(s.t, s.dead)
	s.working = nil
	if s.base != nil {
		s.working = comm.GetBuf(s.total)
		copy(s.working, s.base)
	}
	s.segs = comm.Segments(comm.Msg{Data: s.working, Size: s.total, Space: s.space}, s.opt.SegSize)
	s.children = s.cur.Children[s.rank]
	s.parent = s.cur.Parent[s.rank]
	s.needed = make([]int, s.ns)
	for i := range s.needed {
		s.needed[i] = len(s.children)
	}
	s.nextPost = make([]int, len(s.children))
	// The parent posts its receive window from us the moment this epoch's
	// tree names it, even if we never send a byte before the next restart:
	// it will wait for our FIN, so it must be a FIN target regardless.
	if s.parent != -1 {
		s.sentTo[s.parent] = true
	}
	s.upReady = make(map[int]comm.Msg)
	s.upNext = 0
	s.upFlight = 0
	s.ready = 0
	for ci := range s.children {
		for i := 0; i < s.opt.RecvWindow && s.nextPost[ci] < s.ns; i++ {
			s.postRecv(ci)
		}
	}
	for seg := range s.needed {
		if s.needed[seg] == 0 {
			s.segReady(seg)
		}
	}
}

func (s *reduceFT) run() FTResult {
	// Replay deaths confirmed before this collective began (their notices
	// went to an earlier operation); see bcastFT.run.
	for r, d := range s.fs.ConfirmedDead() {
		if d {
			s.onDeath(r)
		}
	}
	for {
		for _, nt := range s.fs.TakeNotices() {
			s.onNotice(nt)
		}
		if s.finishing && !s.finSent && s.dataOut == 0 {
			s.sendFins()
		}
		if s.finished() {
			break
		}
		s.fs.WaitEvent()
	}
	if s.abortErr != nil {
		return FTResult{Survivors: liveMask(s.dead), Err: s.abortErr}
	}
	out := comm.Msg{Size: s.total, Space: s.space}
	if s.rank == s.t.Root {
		out.Data = s.working
	}
	return FTResult{Msg: out, Survivors: s.commitMask}
}

// ---- receive side ----

func (s *reduceFT) trackRecv(child int, req comm.Request) {
	set := s.openRecvs[child]
	if set == nil {
		set = make(map[comm.Request]bool)
		s.openRecvs[child] = set
	}
	set[req] = true
}

func (s *reduceFT) untrackRecv(child int, req comm.Request) {
	if set, ok := s.openRecvs[child]; ok {
		delete(set, req)
		if len(set) == 0 {
			delete(s.openRecvs, child)
		}
	}
}

func (s *reduceFT) postRecv(ci int) {
	seg := s.nextPost[ci]
	s.nextPost[ci]++
	child := s.children[ci]
	epoch := s.epoch
	req := s.c.Irecv(child, s.epochOpt().TagOf(comm.KindReduce, seg))
	s.trackRecv(child, req)
	s.c.OnComplete(req, func(st comm.Status) {
		s.untrackRecv(child, req)
		s.onContribution(epoch, ci, seg, st)
	})
}

func (s *reduceFT) onContribution(epoch, ci, seg int, st comm.Status) {
	if epoch != s.epoch || s.finishing {
		// Sponge: a straggler from a restarted epoch (or post-commit). Its
		// payload is discarded — the new epoch refolds from scratch.
		if st.Msg.Data != nil {
			comm.PutBuf(st.Msg.Data)
		}
		return
	}
	if st.Err != nil {
		// The sender died mid-transfer; its confirmation restarts the epoch.
		return
	}
	if st.Msg.Data != nil {
		if s.segs[seg].Msg.Data != nil {
			s.opt.Op.Apply(s.segs[seg].Msg.Data, st.Msg.Data, s.opt.Datatype)
		}
		comm.PutBuf(st.Msg.Data)
	}
	s.c.Compute(s.opt.ReduceCost(st.Msg.Size), comm.ComputeReduce)
	if s.nextPost[ci] < s.ns {
		s.postRecv(ci)
	}
	s.needed[seg]--
	if s.needed[seg] == 0 {
		s.segReady(seg)
	}
}

// ---- send side ----

// segReady forwards a fully folded segment toward the root, or counts it
// at the root — where the last one commits the epoch.
func (s *reduceFT) segReady(seg int) {
	s.ready++
	if s.parent == -1 {
		if s.ready == s.ns {
			s.commitMask = liveMask(s.dead)
			s.committed = true
			// Counts as a send initiation: a root crashed at its commit
			// point dies here and the survivors abort.
			s.fs.Commit(s.opt.Seq, s.commitMask)
			s.teardown()
		}
		return
	}
	s.upReady[seg] = s.segs[seg].Msg
	s.pumpUp()
}

// pumpUp issues folded segments to the current parent in strict index
// order within the send window, epoch-gated so a completion from a
// restarted epoch never re-drives a stale pipeline.
func (s *reduceFT) pumpUp() {
	if s.finishing {
		return
	}
	epoch := s.epoch
	for s.upFlight < s.opt.SendWindow {
		msg, ok := s.upReady[s.upNext]
		if !ok {
			return
		}
		delete(s.upReady, s.upNext)
		seg := s.upNext
		s.upNext++
		s.upFlight++
		s.sendsOut++
		s.dataOut++
		s.sentTo[s.parent] = true
		r := s.c.Isend(s.parent, s.epochOpt().TagOf(comm.KindReduce, seg), msg)
		s.c.OnComplete(r, func(comm.Status) {
			s.sendsOut--
			s.dataOut--
			if epoch == s.epoch {
				s.upFlight--
				s.pumpUp()
			}
		})
	}
}

// ---- failure handling ----

func (s *reduceFT) onNotice(nt comm.Notice) {
	switch nt.Kind {
	case comm.NoticeCommit:
		if nt.Seq != s.opt.Seq || s.finishing {
			return
		}
		s.committed = true
		s.commitMask = nt.Survivors
		s.teardown()
	case comm.NoticeDeath:
		s.onDeath(nt.Rank)
	}
}

func (s *reduceFT) onDeath(r int) {
	if s.dead[r] {
		return
	}
	s.dead[r] = true
	// Receives from the dead rank can never match again, and annihilation
	// guarantees no announcement of its is parked here: cancel them all.
	for req := range s.openRecvs[r] {
		s.fs.CancelRecv(req)
	}
	delete(s.openRecvs, r)
	if req, ok := s.finRecvs[r]; ok {
		s.fs.CancelRecv(req)
		delete(s.finRecvs, r)
	}
	delete(s.sentTo, r)
	if r == s.t.Root {
		s.abortErr = &faults.RankFailedError{Rank: r, Kind: comm.KindReduce, Seq: s.opt.Seq}
		s.teardown()
		return
	}
	if s.finishing {
		return
	}
	// Restart: one death per epoch keeps every rank's epoch count — and
	// therefore tags, trees, and masks — in agreement.
	s.epoch++
	s.startEpoch()
}

// ---- teardown (quiesce handshake) ----

func (s *reduceFT) teardown() {
	s.finishing = true
	// Current-epoch receives from live children all matched by commit time
	// (the root's fold transitively required them); what remains are stale
	// sponges for old in-flight sends. Each live child FINs us when its
	// sends have drained; only then is cancelling its leftovers safe.
	for child := 0; child < s.n; child++ { // rank order: posting receives is schedule-visible
		if s.openRecvs[child] == nil {
			continue
		}
		if s.dead[child] {
			for req := range s.openRecvs[child] {
				s.fs.CancelRecv(req)
			}
			delete(s.openRecvs, child)
			continue
		}
		if _, posted := s.finRecvs[child]; posted {
			continue
		}
		ch := child
		req := s.c.Irecv(ch, s.opt.finTag(s.n, ch))
		s.finRecvs[ch] = req
		s.c.OnComplete(req, func(st comm.Status) {
			delete(s.finRecvs, ch)
			if st.Msg.Data != nil {
				comm.PutBuf(st.Msg.Data)
			}
			for r := range s.openRecvs[ch] {
				s.fs.CancelRecv(r)
			}
			delete(s.openRecvs, ch)
		})
	}
}

func (s *reduceFT) sendFins() {
	s.finSent = true
	for p := 0; p < s.n; p++ { // rank order keeps the send schedule deterministic
		if !s.sentTo[p] || s.dead[p] {
			continue
		}
		s.sendsOut++
		r := s.c.Isend(p, s.opt.finTag(s.n, s.rank), comm.Sized(1))
		s.c.OnComplete(r, func(comm.Status) { s.sendsOut-- })
	}
}

func (s *reduceFT) finished() bool {
	if !s.finishing || !s.finSent || s.sendsOut != 0 || len(s.openRecvs) != 0 {
		return false
	}
	for r, req := range s.finRecvs {
		s.fs.CancelRecv(req)
		delete(s.finRecvs, r)
	}
	return true
}
