package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"adapt/internal/comm"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
	"adapt/internal/runtime"
	"adapt/internal/sim"
	"adapt/internal/simmpi"
	"adapt/internal/trees"
)

func payload(n int, seed int64) []byte {
	b := make([]byte, n)
	rng := rand.New(rand.NewSource(seed))
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

// TestBcastLiveMatrix checks payload delivery across tree shapes, rank
// counts, sizes and roots on the live runtime.
func TestBcastLiveMatrix(t *testing.T) {
	sizes := []int{0, 1, 1000, 40_000, 300_000}
	ranks := []int{1, 2, 5, 8, 16}
	for _, b := range trees.Builders() {
		for _, n := range ranks {
			for _, sz := range sizes {
				b, n, sz := b, n, sz
				t.Run(fmt.Sprintf("%s/p%d/%dB", b.Name, n, sz), func(t *testing.T) {
					t.Parallel()
					root := (n - 1) / 2
					tree := b.Build(n, root)
					want := payload(sz, int64(sz+n))
					w := runtime.NewWorld(n)
					var mu sync.Mutex
					results := map[int][]byte{}
					w.Run(func(c *runtime.Comm) {
						opt := DefaultOptions()
						opt.SegSize = 16 << 10 // force multiple segments + both protocols
						var msg comm.Msg
						if c.Rank() == root {
							msg = comm.Bytes(append([]byte(nil), want...))
						} else {
							msg = comm.Sized(sz)
						}
						out := Bcast(c, tree, msg, opt)
						mu.Lock()
						results[c.Rank()] = out.Data
						mu.Unlock()
					})
					for r := 0; r < n; r++ {
						got := results[r]
						if sz == 0 {
							if len(got) != 0 {
								t.Errorf("rank %d: got %d bytes for empty bcast", r, len(got))
							}
							continue
						}
						if !bytes.Equal(got, want) {
							t.Errorf("rank %d: payload mismatch (%d vs %d bytes)", r, len(got), len(want))
						}
					}
				})
			}
		}
	}
}

// TestReduceLiveMatrix checks int64 sum reduction correctness.
func TestReduceLiveMatrix(t *testing.T) {
	ranks := []int{1, 2, 5, 8, 16}
	elems := []int{1, 100, 5000}
	for _, b := range trees.Builders() {
		for _, n := range ranks {
			for _, ne := range elems {
				b, n, ne := b, n, ne
				t.Run(fmt.Sprintf("%s/p%d/%de", b.Name, n, ne), func(t *testing.T) {
					t.Parallel()
					tree := b.Build(n, 0)
					w := runtime.NewWorld(n)
					var mu sync.Mutex
					var rootResult []int64
					w.Run(func(c *runtime.Comm) {
						vals := make([]int64, ne)
						for i := range vals {
							vals[i] = int64(c.Rank()*1000 + i)
						}
						opt := DefaultOptions()
						opt.SegSize = 4 << 10
						opt.Op = comm.OpSum
						opt.Datatype = comm.Int64
						out := Reduce(c, tree, comm.Bytes(comm.EncodeInt64s(vals)), opt)
						if c.Rank() == 0 {
							mu.Lock()
							rootResult = comm.DecodeInt64s(out.Data)
							mu.Unlock()
						}
					})
					for i := 0; i < ne; i++ {
						var want int64
						for r := 0; r < n; r++ {
							want += int64(r*1000 + i)
						}
						if rootResult[i] != want {
							t.Fatalf("elem %d: got %d, want %d", i, rootResult[i], want)
						}
					}
				})
			}
		}
	}
}

func TestReduceOpsLive(t *testing.T) {
	for _, op := range []comm.Op{comm.OpMax, comm.OpMin, comm.OpBXor} {
		op := op
		t.Run(op.String(), func(t *testing.T) {
			const n = 7
			tree := trees.Binomial(n, 0)
			w := runtime.NewWorld(n)
			var got []int64
			var mu sync.Mutex
			w.Run(func(c *runtime.Comm) {
				vals := []int64{int64(c.Rank()) - 3, int64(c.Rank() * c.Rank()), 7}
				opt := DefaultOptions()
				opt.Op = op
				opt.Datatype = comm.Int64
				out := Reduce(c, tree, comm.Bytes(comm.EncodeInt64s(vals)), opt)
				if c.Rank() == 0 {
					mu.Lock()
					got = comm.DecodeInt64s(out.Data)
					mu.Unlock()
				}
			})
			want := []int64{-3, 0, 7}
			for r := 1; r < n; r++ {
				vals := []int64{int64(r) - 3, int64(r * r), 7}
				for i := range want {
					a := comm.EncodeInt64s([]int64{want[i]})
					op.Apply(a, comm.EncodeInt64s([]int64{vals[i]}), comm.Int64)
					want[i] = comm.DecodeInt64s(a)[0]
				}
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s elem %d: got %d, want %d", op, i, got[i], want[i])
				}
			}
		})
	}
}

// runSim executes body on every simulated rank and returns the makespan.
func runSim(t *testing.T, p *netmodel.Platform, spec noise.Spec, body func(c *simmpi.Comm)) time.Duration {
	t.Helper()
	k := sim.New()
	w := simmpi.NewWorld(k, p, spec)
	w.Spawn(body)
	end, err := k.Run()
	if err != nil {
		t.Fatalf("deadlock: %v", err)
	}
	return end
}

// TestBcastSimCorrectness pushes real bytes through the simulator.
func TestBcastSimCorrectness(t *testing.T) {
	p := netmodel.Cori(1) // 32 ranks
	tree := trees.Topology(p.Topo, 0, trees.ChainConfig())
	want := payload(100_000, 42)
	var mu sync.Mutex
	results := map[int][]byte{}
	runSim(t, p, noise.None, func(c *simmpi.Comm) {
		opt := DefaultOptions()
		opt.SegSize = 16 << 10
		var msg comm.Msg
		if c.Rank() == 0 {
			msg = comm.Bytes(append([]byte(nil), want...))
		} else {
			msg = comm.Sized(len(want))
		}
		out := Bcast(c, tree, msg, opt)
		mu.Lock()
		results[c.Rank()] = out.Data
		mu.Unlock()
	})
	for r := 0; r < p.Topo.Size(); r++ {
		if !bytes.Equal(results[r], want) {
			t.Fatalf("rank %d: corrupted payload", r)
		}
	}
}

// TestReduceSimCorrectness folds real int64s through the simulator.
func TestReduceSimCorrectness(t *testing.T) {
	p := netmodel.Cori(1)
	n := p.Topo.Size()
	tree := trees.Topology(p.Topo, 0, trees.ChainConfig())
	var got []int64
	runSim(t, p, noise.None, func(c *simmpi.Comm) {
		vals := make([]int64, 2000)
		for i := range vals {
			vals[i] = int64(c.Rank() + i)
		}
		opt := DefaultOptions()
		opt.SegSize = 4 << 10
		opt.Datatype = comm.Int64
		out := Reduce(c, tree, comm.Bytes(comm.EncodeInt64s(vals)), opt)
		if c.Rank() == 0 {
			got = comm.DecodeInt64s(out.Data)
		}
	})
	for i := range got {
		want := int64(n*i) + int64(n*(n-1)/2)
		if got[i] != want {
			t.Fatalf("elem %d: got %d, want %d", i, got[i], want)
		}
	}
}

// TestBcastSimElidedScale runs the paper-scale configuration: 4 MB over
// 1024 ranks on the Cori profile with payloads elided.
func TestBcastSimElidedScale(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-rank simulation")
	}
	p := netmodel.Cori(32)
	tree := trees.Topology(p.Topo, 0, trees.ChainConfig())
	end := runSim(t, p, noise.None, func(c *simmpi.Comm) {
		var msg comm.Msg
		if c.Rank() == 0 {
			msg = comm.Sized(4 * netmodel.MB)
		} else {
			msg = comm.Sized(4 * netmodel.MB)
		}
		Bcast(c, tree, msg, DefaultOptions())
	})
	if end <= 0 || end > 500*time.Millisecond {
		t.Fatalf("implausible 4MB/1024-rank broadcast time %v", end)
	}
	t.Logf("ADAPT topo bcast 4MB x 1024 ranks: %v", end)
}

// TestWindowInvariant: M >= N is enforced.
func TestWindowInvariant(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for M < N")
		}
	}()
	opt := Options{SegSize: 1024, SendWindow: 4, RecvWindow: 2}
	opt.validate()
}

// TestBcastDeterministicSim: identical runs give identical makespans.
func TestBcastDeterministicSim(t *testing.T) {
	run := func() time.Duration {
		p := netmodel.Cori(2)
		tree := trees.Topology(p.Topo, 0, trees.ChainConfig())
		return runSim(t, p, noise.Percent(5), func(c *simmpi.Comm) {
			Bcast(c, tree, comm.Sized(1*netmodel.MB), DefaultOptions())
		})
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}
