package core

import (
	"adapt/internal/comm"
	"adapt/internal/trace"
)

// Collective-level tracing. Each Start* entry point brackets itself with
// a CollStart/CollEnd span:
//
//   - CollStart is emitted before the state machine is built and becomes
//     the rank's causal context while the initial operation wave is
//     posted, so the trace's first posts parent to the collective entry.
//   - CollEnd is emitted the first time the handle observes completion
//     (Link = the CollStart record), closing the span at the completion
//     time of the rank's last operation.
//
// When the substrate does not trace (or has no buffer attached) the
// helper costs one interface probe per collective and nothing per event.

// traceStart emits CollStart for a collective entered now and returns the
// finish hook to pass the built Op through. The hook restores the rank's
// previous causal context and arms the CollEnd emission.
func traceStart(c comm.Comm, kind comm.CollKind, opt Options, root, size int) func(*Op) *Op {
	tag := opt.TagOf(kind, 0)
	id := trace.Emit(c, trace.Record{Kind: trace.CollStart, Peer: root, Tag: tag, Size: size})
	if id == 0 {
		return func(op *Op) *Op { return op }
	}
	prev := trace.SetCause(c, id)
	return func(op *Op) *Op {
		trace.SetCause(c, prev)
		inner := op.pending
		ended := false
		op.pending = func() bool {
			p := inner()
			if !p && !ended {
				ended = true
				trace.Emit(c, trace.Record{Kind: trace.CollEnd, Peer: root, Tag: tag,
					Size: size, Link: id})
			}
			return p
		}
		return op
	}
}
