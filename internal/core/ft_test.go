package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"adapt/internal/comm"
	"adapt/internal/faults"
	"adapt/internal/hwloc"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
	"adapt/internal/runtime"
	"adapt/internal/sim"
	"adapt/internal/simmpi"
	"adapt/internal/trees"
)

// runCrashSim runs body on an n-rank simulated world with the given
// crash plan armed and returns the world (for detector inspection).
func runCrashSim(t *testing.T, n int, plan faults.Plan, body func(c *simmpi.Comm)) *simmpi.World {
	t.Helper()
	k := sim.New()
	w := simmpi.NewWorld(k, netmodel.Cori(1).WithTopo(hwloc.New(n, 1, 1)), noise.None)
	w.InstallFaults(plan, faults.Recovery{})
	w.Spawn(body)
	if _, err := k.Run(); err != nil {
		t.Fatalf("kernel: %v", err)
	}
	return w
}

func crashPlan(rules ...faults.Crash) faults.Plan {
	return faults.Plan{Crashes: rules}
}

// ftPayload builds the broadcast payload used across FT tests.
func ftPayload(n int) []byte { return payload(n, 1234) }

// checkSurvivorBcast asserts every survivor holds want, reports an
// identical mask excluding exactly deadRanks, and returned no error.
func checkSurvivorBcast(t *testing.T, n int, results map[int]FTResult, want []byte, deadRanks ...int) {
	t.Helper()
	dead := make(map[int]bool)
	for _, r := range deadRanks {
		dead[r] = true
	}
	for r := 0; r < n; r++ {
		res, ok := results[r]
		if dead[r] {
			if ok {
				t.Errorf("rank %d crashed but returned a result", r)
			}
			continue
		}
		if !ok {
			t.Fatalf("rank %d returned no result", r)
		}
		if res.Err != nil {
			t.Fatalf("rank %d: %v", r, res.Err)
		}
		if !bytes.Equal(res.Msg.Data, want) && len(want) > 0 {
			t.Errorf("rank %d: payload diverges (%d vs %d bytes)", r, len(res.Msg.Data), len(want))
		}
		for q := 0; q < n; q++ {
			if res.Survivors[q] == dead[q] {
				t.Errorf("rank %d: survivor mask[%d] = %v with dead=%v", r, q, res.Survivors[q], dead[q])
			}
		}
	}
}

func bcastFTBody(tree *trees.Tree, want []byte, results map[int]FTResult, mu *sync.Mutex) func(c *simmpi.Comm) {
	return func(c *simmpi.Comm) {
		opt := DefaultOptions()
		opt.SegSize = 8 << 10 // several segments; rendezvous above eager limit
		var msg comm.Msg
		if c.Rank() == tree.Root {
			msg = comm.Bytes(append([]byte(nil), want...))
		} else {
			msg = comm.Sized(len(want))
		}
		res := BcastFT(c, tree, msg, opt)
		mu.Lock()
		results[c.Rank()] = res
		mu.Unlock()
	}
}

func TestBcastFTCrashInterior(t *testing.T) {
	// Binomial(8, 0): 4 is interior with children {5, 6}; killing it
	// re-parents both to the root and re-drives their missing segments.
	for _, after := range []int{0, 1, 3} {
		t.Run(fmt.Sprintf("after%d", after), func(t *testing.T) {
			tree := trees.Binomial(8, 0)
			want := ftPayload(100_000)
			results := map[int]FTResult{}
			var mu sync.Mutex
			w := runCrashSim(t, 8, crashPlan(faults.Crash{Rank: 4, AfterSends: after}),
				bcastFTBody(tree, want, results, &mu))
			checkSurvivorBcast(t, 8, results, want, 4)
			det := w.DetectorStats()
			if det.Confirms != 1 || det.Repairs != 1 {
				t.Errorf("detector: %+v, want 1 confirm / 1 repair", det)
			}
			if crashed := w.Crashed(); !crashed[4] {
				t.Error("rank 4 not marked crashed")
			}
		})
	}
}

func TestBcastFTCrashLeaf(t *testing.T) {
	// Leaf 7's first send initiation is its done report: it holds the
	// full payload but dies before telling the root.
	tree := trees.Binomial(8, 0)
	want := ftPayload(50_000)
	results := map[int]FTResult{}
	var mu sync.Mutex
	runCrashSim(t, 8, crashPlan(faults.Crash{Rank: 7}),
		bcastFTBody(tree, want, results, &mu))
	checkSurvivorBcast(t, 8, results, want, 7)
}

func TestBcastFTCrashRootAborts(t *testing.T) {
	tree := trees.Binomial(8, 0)
	want := ftPayload(64_000)
	results := map[int]FTResult{}
	var mu sync.Mutex
	runCrashSim(t, 8, crashPlan(faults.Crash{Rank: 0, AfterSends: 2}),
		bcastFTBody(tree, want, results, &mu))
	for r := 1; r < 8; r++ {
		res, ok := results[r]
		if !ok {
			t.Fatalf("rank %d returned no result", r)
		}
		var rf *faults.RankFailedError
		if !errors.As(res.Err, &rf) {
			t.Fatalf("rank %d: err = %v, want RankFailedError", r, res.Err)
		}
		if rf.Rank != 0 || rf.Kind != comm.KindBcast {
			t.Errorf("rank %d: %+v", r, rf)
		}
	}
}

func TestBcastFTCrashNeverFires(t *testing.T) {
	// A schedule the rank never reaches: clean completion, full mask,
	// zero detector activity.
	tree := trees.Binomial(8, 0)
	want := ftPayload(30_000)
	results := map[int]FTResult{}
	var mu sync.Mutex
	w := runCrashSim(t, 8, crashPlan(faults.Crash{Rank: 7, AfterSends: 99}),
		bcastFTBody(tree, want, results, &mu))
	checkSurvivorBcast(t, 8, results, want)
	if det := w.DetectorStats(); det != (simmpi.DetectorStats{}) {
		t.Errorf("detector moved on a crash that never fired: %+v", det)
	}
}

func TestBcastFTChainOfDeaths(t *testing.T) {
	// Two interior deaths on a chain: 3 must re-parent twice (2 dies,
	// then 1) and still deliver.
	tree := trees.Chain(6, 0)
	want := ftPayload(40_000)
	results := map[int]FTResult{}
	var mu sync.Mutex
	runCrashSim(t, 6,
		crashPlan(faults.Crash{Rank: 2, AfterSends: 1}, faults.Crash{Rank: 1, AfterSends: 6}),
		bcastFTBody(tree, want, results, &mu))
	checkSurvivorBcast(t, 6, results, want, 1, 2)
}

// sumLattice computes the expected float64 sum over a survivor set.
func sumLattice(ranks []int, size int) []byte {
	out := make([]byte, size)
	for i := 0; i < size/8; i++ {
		var v float64
		for _, r := range ranks {
			v += float64((r*31 + i) % 17)
		}
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

func latticeFor(rank, size int) []byte {
	b := make([]byte, size)
	for i := 0; i < size/8; i++ {
		v := float64((rank*31 + i) % 17)
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
	return b
}

func reduceFTBody(tree *trees.Tree, size int, results map[int]FTResult, mu *sync.Mutex) func(c *simmpi.Comm) {
	return func(c *simmpi.Comm) {
		opt := DefaultOptions()
		opt.SegSize = 8 << 10
		res := ReduceFT(c, tree, comm.Bytes(latticeFor(c.Rank(), size)), opt)
		mu.Lock()
		results[c.Rank()] = res
		mu.Unlock()
	}
}

func TestReduceFTCrashInterior(t *testing.T) {
	tree := trees.Binomial(8, 0)
	const size = 32_000
	results := map[int]FTResult{}
	var mu sync.Mutex
	runCrashSim(t, 8, crashPlan(faults.Crash{Rank: 4, AfterSends: 1}),
		reduceFTBody(tree, size, results, &mu))

	root := results[0]
	if root.Err != nil {
		t.Fatalf("root: %v", root.Err)
	}
	// The root's fold must equal the analytic sum over exactly the mask
	// it reported (race-free even if a rank died after contributing).
	var folded []int
	for r, live := range root.Survivors {
		if live {
			folded = append(folded, r)
		}
	}
	if want := sumLattice(folded, size); !bytes.Equal(root.Msg.Data, want) {
		t.Errorf("root result does not equal the fold over its reported mask %v", root.Survivors)
	}
	for r := 1; r < 8; r++ {
		if r == 4 {
			continue
		}
		res := results[r]
		if res.Err != nil {
			t.Fatalf("rank %d: %v", r, res.Err)
		}
		for q := range res.Survivors {
			if res.Survivors[q] != root.Survivors[q] {
				t.Errorf("rank %d mask diverges from root at %d", r, q)
			}
		}
	}
	if root.Survivors[4] {
		t.Error("dead rank 4 reported as survivor")
	}
}

func TestReduceFTCrashLeafAndRoot(t *testing.T) {
	const size = 16_000
	t.Run("leaf", func(t *testing.T) {
		tree := trees.Binomial(8, 0)
		results := map[int]FTResult{}
		var mu sync.Mutex
		runCrashSim(t, 8, crashPlan(faults.Crash{Rank: 7}),
			reduceFTBody(tree, size, results, &mu))
		root := results[0]
		if root.Err != nil || root.Survivors[7] {
			t.Fatalf("root: err=%v mask=%v", root.Err, root.Survivors)
		}
		if want := sumLattice([]int{0, 1, 2, 3, 4, 5, 6}, size); !bytes.Equal(root.Msg.Data, want) {
			t.Error("root fold does not match the 7-survivor sum")
		}
	})
	t.Run("root", func(t *testing.T) {
		tree := trees.Binomial(8, 0)
		results := map[int]FTResult{}
		var mu sync.Mutex
		runCrashSim(t, 8, crashPlan(faults.Crash{Rank: 0, AfterSends: 0}),
			reduceFTBody(tree, size, results, &mu))
		for r := 1; r < 8; r++ {
			var rf *faults.RankFailedError
			if !errors.As(results[r].Err, &rf) || rf.Rank != 0 || rf.Kind != comm.KindReduce {
				t.Fatalf("rank %d: err = %v", r, results[r].Err)
			}
		}
	})
}

// TestFTDeterministicSchedule: the same seed/plan yields the same end
// time, detector schedule and masks on every run.
func TestFTDeterministicSchedule(t *testing.T) {
	run := func() (time.Duration, simmpi.DetectorStats, map[int]FTResult) {
		tree := trees.Binomial(8, 0)
		want := ftPayload(64_000)
		results := map[int]FTResult{}
		var mu sync.Mutex
		k := sim.New()
		w := simmpi.NewWorld(k, netmodel.Cori(1).WithTopo(hwloc.New(8, 1, 1)), noise.None)
		w.InstallFaults(crashPlan(faults.Crash{Rank: 4, AfterSends: 2}), faults.Recovery{})
		w.Spawn(bcastFTBody(tree, want, results, &mu))
		end, err := k.Run()
		if err != nil {
			t.Fatalf("kernel: %v", err)
		}
		return end, w.DetectorStats(), results
	}
	end0, det0, res0 := run()
	for i := 0; i < 3; i++ {
		end, det, res := run()
		if end != end0 || det != det0 {
			t.Fatalf("run %d: schedule diverged (%v/%v vs %v/%v)", i, end, det, end0, det0)
		}
		for r, a := range res0 {
			b := res[r]
			if !bytes.Equal(a.Msg.Data, b.Msg.Data) {
				t.Fatalf("run %d rank %d: payload diverged", i, r)
			}
		}
	}
}

// TestBcastFTFallbackLive: without crash rules the FT wrappers are the
// plain collectives plus an all-true mask — on both substrates.
func TestBcastFTFallbackLive(t *testing.T) {
	const n, size = 5, 40_000
	tree := trees.Binary(n, 0)
	want := ftPayload(size)
	w := runtime.NewWorld(n)
	results := map[int]FTResult{}
	var mu sync.Mutex
	w.Run(func(c *runtime.Comm) {
		var msg comm.Msg
		if c.Rank() == 0 {
			msg = comm.Bytes(append([]byte(nil), want...))
		} else {
			msg = comm.Sized(size)
		}
		res := BcastFT(c, tree, msg, DefaultOptions())
		mu.Lock()
		results[c.Rank()] = res
		mu.Unlock()
	})
	for r := 0; r < n; r++ {
		res := results[r]
		if res.Err != nil || !bytes.Equal(res.Msg.Data, want) {
			t.Fatalf("rank %d: err=%v, %d bytes", r, res.Err, len(res.Msg.Data))
		}
		for q, live := range res.Survivors {
			if !live {
				t.Errorf("rank %d: mask[%d] false in a clean run", r, q)
			}
		}
	}
}

// TestReduceFTCrashLive exercises the crash machinery on the live
// goroutine substrate end to end.
func TestReduceFTCrashLive(t *testing.T) {
	const n, size = 6, 8_000
	tree := trees.Binomial(n, 0)
	plan := crashPlan(faults.Crash{Rank: 2, AfterSends: 0})
	rec := faults.Recovery{RTO: 200 * time.Microsecond}
	w := runtime.NewWorld(n, runtime.WithFaults(plan, rec), runtime.WithRunTimeout(20*time.Second))
	results := map[int]FTResult{}
	var mu sync.Mutex
	w.Run(func(c *runtime.Comm) {
		res := ReduceFT(c, tree, comm.Bytes(latticeFor(c.Rank(), size)), DefaultOptions())
		mu.Lock()
		results[c.Rank()] = res
		mu.Unlock()
	})
	root, ok := results[0]
	if !ok {
		t.Fatal("root returned no result")
	}
	if root.Err != nil {
		t.Fatalf("root: %v", root.Err)
	}
	var folded []int
	for r, live := range root.Survivors {
		if live {
			folded = append(folded, r)
		}
	}
	if want := sumLattice(folded, size); !bytes.Equal(root.Msg.Data, want) {
		t.Errorf("root result does not match fold over reported mask %v", root.Survivors)
	}
	if det := w.DetectorStats(); det.Confirms != 1 {
		t.Errorf("detector confirms = %d, want 1", det.Confirms)
	}
}
