package core

import (
	"adapt/internal/comm"
	"adapt/internal/trees"
)

// childStream is one peer's independent send pipeline: segments become
// ready in any order (the segment pool), but are *issued* in strict index
// order within a window of SendWindow in-flight sends. Ordered issuance
// matters for correctness, not just performance: the receiver keeps M
// in-order receives posted, so an out-of-order rendezvous send could fill
// the window with transfers the receiver will not match yet while the
// sends it waits for sit behind them — a head-of-line deadlock. With a
// strictly ordered in-flight prefix the receiver's window always matches.
type childStream struct {
	rank     int
	ready    map[int]comm.Msg // segment index → payload ready to issue
	next     int              // next index to issue
	inflight int
	sent     int // total issued
}

func newChildStream(rank int) *childStream {
	return &childStream{rank: rank, ready: make(map[int]comm.Msg)}
}

// offer marks segment idx ready for issue.
func (cs *childStream) offer(idx int, msg comm.Msg) {
	cs.ready[idx] = msg
}

// pump issues ready segments in index order while the window has room.
// tagf maps a stream index to its wire tag; onDone runs per completion.
func (cs *childStream) pump(c comm.Comm, window int, tagf func(int) comm.Tag, onDone func()) {
	for cs.inflight < window {
		msg, ok := cs.ready[cs.next]
		if !ok {
			return
		}
		delete(cs.ready, cs.next)
		idx := cs.next
		cs.next++
		cs.inflight++
		cs.sent++
		r := c.Isend(cs.rank, tagf(idx), msg)
		c.OnComplete(r, func(comm.Status) {
			cs.inflight--
			onDone()
			cs.pump(c, window, tagf, onDone)
		})
	}
}

// bcastState is the per-rank ADAPT broadcast state machine.
type bcastState struct {
	c    comm.Comm
	t    *trees.Tree
	opt  Options
	segs []comm.Segment
	kind comm.CollKind

	children []*childStream
	// receive side (non-root)
	parent      int
	nextPost    int // next segment index to post an Irecv for
	recvPending int // segments not yet received
	sendPending int // (child, segment) transfers not yet completed
	// assembled payload (allocated lazily, only for real data)
	total   int
	space   comm.MemSpace
	outData []byte
}

// Bcast performs the ADAPT event-driven broadcast (paper §2.2.1, Figure 4)
// of msg from t.Root over tree t. At the root, msg is the payload; at
// other ranks msg.Size declares the expected byte count (msg.Data is
// ignored). It returns the full message as received (with Data set only
// if the root sent real bytes).
func Bcast(c comm.Comm, t *trees.Tree, msg comm.Msg, opt Options) comm.Msg {
	return StartBcast(c, t, msg, opt).Wait()
}

// newBcastState wires up the state machine and posts the initial window.
// opt must already be validated.
func newBcastState(c comm.Comm, t *trees.Tree, msg comm.Msg, opt Options) *bcastState {
	s := &bcastState{
		c: c, t: t, opt: opt, kind: comm.KindBcast,
		parent: t.Parent[c.Rank()], total: msg.Size, space: msg.Space,
	}
	for _, ch := range t.Children[c.Rank()] {
		s.children = append(s.children, newChildStream(ch))
	}

	if c.Rank() == t.Root {
		s.segs = comm.Segments(msg, opt.SegSize)
		s.outData = msg.Data
		// Root: the whole segment pool is ready for every child at once.
		for _, cs := range s.children {
			for _, sg := range s.segs {
				cs.offer(sg.Index, sg.Msg)
			}
			s.sendPending += len(s.segs)
			s.pump(cs)
		}
	} else {
		// Non-root: pre-build the segment table from the declared size so
		// tags and offsets line up with the root's segmentation.
		s.segs = comm.Segments(comm.Msg{Size: msg.Size, Space: msg.Space}, opt.SegSize)
		s.recvPending = len(s.segs)
		s.sendPending = len(s.segs) * len(s.children)
		// Post the first M receives (the paper posts M > N to make sure a
		// receive is always waiting when a segment arrives).
		for i := 0; i < opt.RecvWindow && s.nextPost < len(s.segs); i++ {
			s.postRecv()
		}
	}
	return s
}

// postRecv posts the next receive in the window and arms its callback.
func (s *bcastState) postRecv() {
	seg := s.nextPost
	s.nextPost++
	r := s.c.Irecv(s.parent, s.opt.TagOf(s.kind, seg))
	s.c.OnComplete(r, func(st comm.Status) { s.onSegment(seg, st) })
}

// onSegment handles the arrival of one segment from the parent: keep the
// receive window full, record the payload, and hand the segment to every
// child's independent stream.
func (s *bcastState) onSegment(seg int, st comm.Status) {
	s.recvPending--
	if s.nextPost < len(s.segs) {
		s.postRecv()
	}
	sg := s.segs[seg]
	fwd := comm.Msg{Size: st.Msg.Size, Space: sg.Msg.Space}
	if st.Msg.Data != nil {
		if s.outData == nil {
			// Every byte is overwritten by some segment before the result
			// is read, so a dirty pooled buffer is fine.
			s.outData = comm.GetBuf(s.total)
		}
		copy(s.outData[sg.Offset:], st.Msg.Data)
		// Children are fed aliases of the assembled result, so the
		// receiver-owned segment buffer is dead: recycle it.
		comm.PutBuf(st.Msg.Data)
		fwd.Data = s.outData[sg.Offset : sg.Offset+st.Msg.Size]
	}
	sg.Msg = fwd
	for _, cs := range s.children {
		cs.offer(sg.Index, sg.Msg)
		s.pump(cs)
	}
}

// pump advances one child's stream while its window has room — each Isend
// completion re-enters pump via its callback, never touching siblings.
func (s *bcastState) pump(cs *childStream) {
	cs.pump(s.c, s.opt.SendWindow,
		func(idx int) comm.Tag { return s.opt.TagOf(s.kind, idx) },
		func() { s.sendPending-- })
}
