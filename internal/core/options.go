// Package core implements the ADAPT collective engine — the paper's
// primary contribution (§2.2): tree-based collectives expressed as
// event-driven state machines over non-blocking point-to-point operations.
//
// Instead of Wait/Waitall barriers between pipeline steps, the completion
// of each low-level operation triggers a callback that posts the next
// dependent operation and nothing else. Two structural properties follow:
//
//   - Segment independence: every rank keeps a window of N concurrent
//     in-flight sends per child, drawing the next segment from a shared
//     pool as each completes, so one delayed segment never stalls others.
//   - Child independence: each child's window advances on its own, so a
//     slow child never delays its siblings — noise cannot reach them.
//
// Receives keep a deeper window of M > N posted operations per parent so
// arriving segments always find a matching receive and never pay the
// unexpected-message penalty (§2.2.1).
//
// The engine is generic over comm.Comm and therefore runs identically on
// the live goroutine runtime and on the discrete-event simulator.
package core

import (
	"fmt"

	"adapt/internal/comm"
)

// Default window and segmentation parameters. The paper sets M > N; the
// defaults follow Open MPI's ADAPT module scale (a few concurrent
// operations per peer, 128 KB pipeline segments).
const (
	DefaultSegSize    = 128 << 10
	DefaultSendWindow = 2
	DefaultRecvWindow = 4
)

// Options tunes one ADAPT collective invocation.
type Options struct {
	// SegSize is the pipeline segment size in bytes.
	SegSize int
	// SendWindow (the paper's N) is the number of concurrent in-flight
	// sends kept per child.
	SendWindow int
	// RecvWindow (the paper's M) is the number of concurrent posted
	// receives kept per parent. Should exceed SendWindow.
	RecvWindow int
	// Seq disambiguates concurrent/back-to-back collectives in tags.
	Seq int
	// Op and Datatype apply to reductions only.
	Op       comm.Op
	Datatype comm.Datatype
	// VecWidth divides the charged reduction cost: 1 (default) models the
	// scalar fold ADAPT ships (the paper notes its reductions "do not have
	// any vectorization optimizations", §5.1.2); 2+ models a vectorized
	// library fold. Live runs are unaffected (real arithmetic either way).
	VecWidth int
}

// DefaultOptions returns the standard tuning.
func DefaultOptions() Options {
	return Options{
		SegSize:    DefaultSegSize,
		SendWindow: DefaultSendWindow,
		RecvWindow: DefaultRecvWindow,
		Op:         comm.OpSum,
		Datatype:   comm.Float64,
	}
}

func (o Options) validate() Options {
	if o.SegSize <= 0 {
		o.SegSize = DefaultSegSize
	}
	if o.SendWindow <= 0 {
		o.SendWindow = DefaultSendWindow
	}
	if o.RecvWindow <= 0 {
		o.RecvWindow = DefaultRecvWindow
	}
	if o.RecvWindow < o.SendWindow {
		panic(fmt.Sprintf("core: recv window M=%d below send window N=%d breaks the unexpected-message guarantee",
			o.RecvWindow, o.SendWindow))
	}
	if o.VecWidth <= 0 {
		o.VecWidth = 1
	}
	return o
}

// ReduceCost returns the byte count charged for folding n payload bytes,
// after vectorization scaling.
func (o Options) ReduceCost(n int) int {
	if o.VecWidth > 1 {
		return n / o.VecWidth
	}
	return n
}

// TagOf builds the wire tag for segment seg of a collective of the given
// kind under this option set's sequence number.
func (o Options) TagOf(kind comm.CollKind, seg int) comm.Tag {
	return comm.MakeTag(kind, ((o.Seq%comm.SeqWrap)+comm.SeqWrap)%comm.SeqWrap, seg)
}
