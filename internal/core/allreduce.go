package core

import (
	"fmt"

	"adapt/internal/comm"
	"adapt/internal/trees"
)

// Allreduce is the event-driven fused allreduce (§2.2.3 extended): a
// reduction and a broadcast over the same tree whose pipelines overlap
// per segment. The moment a segment's fold completes at the root it
// starts travelling back down, while later segments are still being
// reduced — no barrier between the two phases. Both directions use the
// standard (N, M) windows.
//
// Contrast with coll.Allreduce (reduce, then broadcast, sequentially) and
// coll.AllreduceRing (the bandwidth-optimal ring). The fused tree version
// wins when segment counts are large enough to overlap the two phases.
type allreduceState struct {
	c   comm.Comm
	t   *trees.Tree
	opt Options

	segs []comm.Segment

	// Up (reduce) direction.
	needed   []int // child contributions outstanding per segment
	children []int
	upPost   []int // per-child next segment to post a receive for
	up       *childStream

	// Down (broadcast) direction.
	downStreams []*childStream
	downPost    int // next segment to post a down-receive for (non-root)

	upRecvPending   int
	upSendPending   int
	downRecvPending int
	downSendPending int

	outData []byte
	total   int
	space   comm.MemSpace
}

// Allreduce folds every rank's contribution under opt.Op and delivers the
// result to all ranks, as one fused pipeline over tree t. contrib.Data,
// when present, is folded in place at intermediate ranks — pass a private
// copy. Returns the full result on every rank.
func Allreduce(c comm.Comm, t *trees.Tree, contrib comm.Msg, opt Options) comm.Msg {
	return StartAllreduce(c, t, contrib, opt).Wait()
}

// StartAllreduce begins a non-blocking fused allreduce.
func StartAllreduce(c comm.Comm, t *trees.Tree, contrib comm.Msg, opt Options) *Op {
	opt = opt.validate()
	if t.Size() != c.Size() {
		panic(fmt.Sprintf("core: tree size %d != communicator size %d", t.Size(), c.Size()))
	}
	end := traceStart(c, comm.KindAllreduce, opt, t.Root, contrib.Size)
	s := newAllreduceState(c, t, contrib, opt)
	return end(&Op{
		c: c,
		pending: func() bool {
			return s.upRecvPending > 0 || s.upSendPending > 0 ||
				s.downRecvPending > 0 || s.downSendPending > 0
		},
		result: func() comm.Msg {
			return comm.Msg{Data: s.outData, Size: s.total, Space: s.space}
		},
	})
}

func newAllreduceState(c comm.Comm, t *trees.Tree, contrib comm.Msg, opt Options) *allreduceState {
	me := c.Rank()
	s := &allreduceState{
		c: c, t: t, opt: opt,
		segs:     comm.Segments(contrib, opt.SegSize),
		children: t.Children[me],
		total:    contrib.Size,
		space:    contrib.Space,
	}
	ns := len(s.segs)
	s.needed = make([]int, ns)
	for i := range s.needed {
		s.needed[i] = len(s.children)
	}
	s.upPost = make([]int, len(s.children))
	s.upRecvPending = ns * len(s.children)
	s.downSendPending = ns * len(s.children)
	for _, ch := range s.children {
		s.downStreams = append(s.downStreams, newChildStream(ch))
	}
	if p := t.Parent[me]; p != -1 {
		s.up = newChildStream(p)
		s.upSendPending = ns
		s.downRecvPending = ns
		// Post the down-direction receive window immediately: the root may
		// start broadcasting early segments while we are still reducing.
		for i := 0; i < opt.RecvWindow && s.downPost < ns; i++ {
			s.postDownRecv()
		}
	}
	// At the root the final data is the in-place folded contribution.
	if me == t.Root {
		s.outData = contrib.Data
	}

	// Up-direction receive windows.
	for ci := range s.children {
		for i := 0; i < opt.RecvWindow && s.upPost[ci] < ns; i++ {
			s.postUpRecv(ci)
		}
	}
	// Leaf segments are immediately ready to travel up.
	for seg := range s.needed {
		if s.needed[seg] == 0 {
			s.segFolded(seg)
		}
	}
	return s
}

func (s *allreduceState) postUpRecv(ci int) {
	seg := s.upPost[ci]
	s.upPost[ci]++
	r := s.c.Irecv(s.children[ci], s.opt.TagOf(comm.KindReduce, seg))
	s.c.OnComplete(r, func(st comm.Status) { s.onContribution(ci, seg, st) })
}

func (s *allreduceState) onContribution(ci, seg int, st comm.Status) {
	s.upRecvPending--
	if s.upPost[ci] < len(s.segs) {
		s.postUpRecv(ci)
	}
	if st.Msg.Data != nil && s.segs[seg].Msg.Data != nil {
		s.opt.Op.Apply(s.segs[seg].Msg.Data, st.Msg.Data, s.opt.Datatype)
	}
	s.c.Compute(s.opt.ReduceCost(st.Msg.Size), comm.ComputeReduce)
	s.needed[seg]--
	if s.needed[seg] == 0 {
		s.segFolded(seg)
	}
}

// segFolded: this rank's fold of the segment is complete. Non-roots ship
// it to the parent; the root turns it around immediately — the fusion.
func (s *allreduceState) segFolded(seg int) {
	if s.up != nil {
		s.up.offer(seg, s.segs[seg].Msg)
		s.pumpUp()
		return
	}
	s.turnaround(seg, s.segs[seg].Msg)
}

func (s *allreduceState) pumpUp() {
	s.up.pump(s.c, s.opt.SendWindow,
		func(idx int) comm.Tag { return s.opt.TagOf(comm.KindReduce, idx) },
		func() { s.upSendPending-- })
}

func (s *allreduceState) postDownRecv() {
	seg := s.downPost
	s.downPost++
	r := s.c.Irecv(s.t.Parent[s.c.Rank()], s.opt.TagOf(comm.KindAllreduce, seg))
	s.c.OnComplete(r, func(st comm.Status) { s.onDownSegment(seg, st) })
}

func (s *allreduceState) onDownSegment(seg int, st comm.Status) {
	s.downRecvPending--
	if s.downPost < len(s.segs) {
		s.postDownRecv()
	}
	if st.Msg.Data != nil {
		if s.outData == nil {
			s.outData = make([]byte, s.total)
		}
		copy(s.outData[s.segs[seg].Offset:], st.Msg.Data)
	}
	s.turnaround(seg, comm.Msg{Data: st.Msg.Data, Size: st.Msg.Size, Space: s.segs[seg].Msg.Space})
}

// turnaround hands a fully reduced segment to the down-direction streams.
func (s *allreduceState) turnaround(seg int, msg comm.Msg) {
	for _, cs := range s.downStreams {
		cs.offer(seg, msg)
		s.pumpDown(cs)
	}
}

func (s *allreduceState) pumpDown(cs *childStream) {
	cs.pump(s.c, s.opt.SendWindow,
		func(idx int) comm.Tag { return s.opt.TagOf(comm.KindAllreduce, idx) },
		func() { s.downSendPending-- })
}
