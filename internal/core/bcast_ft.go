package core

import (
	"adapt/internal/comm"
	"adapt/internal/faults"
	"adapt/internal/trace"
	"adapt/internal/trees"
)

// BcastFT is the fail-stop fault-tolerant ADAPT broadcast. Without crash
// rules armed it is exactly Bcast (plus an all-true survivor mask); with
// them, it delivers a byte-identical payload to every survivor even when
// non-root ranks crash mid-flight, and reports the committed survivor
// mask. A dead root aborts with *faults.RankFailedError on every
// survivor.
//
// The protocol keeps the plain broadcast's stable data tags — segment
// seg always travels as TagOf(KindBcast, seg), whoever the parent is —
// so repair needs no epoch restart: an orphan cancels its receives from
// the dead parent, re-attaches to the healed tree's parent, sends it a
// bit-packed re-drive request naming the segments it is still missing,
// and reposts receives for exactly those. The new parent serves the
// request from its own staging buffer. Completion is explicit: every
// live non-root tells the root when it holds the full payload (a done
// message), and the root commits the survivor mask over the control
// plane once every live rank has reported.
func BcastFT(c comm.Comm, t *trees.Tree, msg comm.Msg, opt Options) FTResult {
	fs, ok := failStopOf(c)
	if !ok {
		return FTResult{Msg: Bcast(c, t, msg, opt), Survivors: allLive(c.Size())}
	}
	opt = opt.validate()
	startID := trace.Emit(c, trace.Record{Kind: trace.CollStart, Peer: t.Root,
		Tag: opt.TagOf(comm.KindBcast, 0), Size: msg.Size})
	prev := trace.SetCause(c, startID)
	s := newBcastFT(c, fs, t, msg, opt)
	trace.SetCause(c, prev)
	res := s.run(msg)
	trace.Emit(c, trace.Record{Kind: trace.CollEnd, Peer: t.Root,
		Tag: opt.TagOf(comm.KindBcast, 0), Size: msg.Size, Link: startID})
	return res
}

// ftStream is one child's send pipeline in the FT broadcast: like
// childStream, it issues in strict index order within the send window,
// but only the segments the child declared it needs.
type ftStream struct {
	rank     int
	need     []bool
	next     int
	inflight int
}

// bcastFT is the per-rank fault-tolerant broadcast state machine. All
// mutation happens on the owner goroutine (callbacks and the main loop).
type bcastFT struct {
	c    comm.Comm
	fs   comm.FailStop
	t    *trees.Tree // original tree; healing always restarts from it
	opt  Options
	n    int
	ns   int
	rank int

	segs    []comm.Segment // geometry over the declared size
	total   int
	space   comm.MemSpace
	outData []byte // staging: assembled payload (root: the source)

	dead []bool // cumulative confirmed deaths processed so far
	cur  *trees.Tree

	have      []bool
	haveCount int

	// Receive side (toward the current parent).
	parent      int
	expected    []bool // segments the current parent will send us
	recvd       []bool // expectations already consumed
	pendingRecv map[int]comm.Request
	scan        int // posting cursor; reset when the parent changes

	// Send side.
	streams  map[int]*ftStream
	reqRecvs map[int]comm.Request // expected new child → redrive request recv
	sentTo   map[int]bool         // live peers we sent payload to (FIN targets)

	// Root bookkeeping.
	doneRecvs map[int]comm.Request
	doneFrom  []bool

	// Teardown.
	finRecvs   map[int]comm.Request
	sendsOut   int // every in-flight send
	dataOut    int // in-flight payload sends only (gates FIN emission)
	doneSent   bool
	finSent    bool
	finishing  bool
	committed  bool
	commitMask []bool
	abortErr   error
}

func newBcastFT(c comm.Comm, fs comm.FailStop, t *trees.Tree, msg comm.Msg, opt Options) *bcastFT {
	s := &bcastFT{
		c: c, fs: fs, t: t, opt: opt,
		n: c.Size(), rank: c.Rank(),
		total: msg.Size, space: msg.Space,
		segs:        comm.Segments(comm.Msg{Size: msg.Size, Space: msg.Space}, opt.SegSize),
		pendingRecv: make(map[int]comm.Request),
		streams:     make(map[int]*ftStream),
		reqRecvs:    make(map[int]comm.Request),
		sentTo:      make(map[int]bool),
		finRecvs:    make(map[int]comm.Request),
		dead:        make([]bool, c.Size()),
		cur:         t,
	}
	s.ns = len(s.segs)
	s.have = make([]bool, s.ns)
	s.parent = t.Parent[s.rank]

	if s.rank == t.Root {
		s.outData = msg.Data
		for i := range s.have {
			s.have[i] = true
		}
		s.haveCount = s.ns
		s.doneFrom = make([]bool, s.n)
		s.doneRecvs = make(map[int]comm.Request)
		for r := 0; r < s.n; r++ {
			if r != s.rank {
				s.postDoneRecv(r)
			}
		}
	} else {
		s.expected = make([]bool, s.ns)
		s.recvd = make([]bool, s.ns)
		for i := range s.expected {
			s.expected[i] = true
		}
		s.postWindow()
	}
	// Original children want everything.
	for _, ch := range t.Children[s.rank] {
		cs := &ftStream{rank: ch, need: make([]bool, s.ns)}
		for i := range cs.need {
			cs.need[i] = true
		}
		s.streams[ch] = cs
		s.pumpChild(cs)
	}
	return s
}

// run is the owner-goroutine main loop: notices are processed here, one
// at a time, never inside completion callbacks.
func (s *bcastFT) run(msg comm.Msg) FTResult {
	// Deaths confirmed before this collective began were announced as
	// notices to an earlier operation (or to nobody); replay them from the
	// detector's cumulative mask so a back-to-back collective starts from
	// the healed tree instead of waiting forever on a dead rank.
	for r, d := range s.fs.ConfirmedDead() {
		if d {
			s.onDeath(r)
		}
	}
	s.maybeDone()
	s.maybeCommit()
	for {
		for _, nt := range s.fs.TakeNotices() {
			s.onNotice(nt)
		}
		if s.finishing && !s.finSent && s.dataOut == 0 {
			s.sendFins()
		}
		if s.finished() {
			break
		}
		s.fs.WaitEvent()
	}
	if s.abortErr != nil {
		return FTResult{Survivors: liveMask(s.dead), Err: s.abortErr}
	}
	out := comm.Msg{Size: s.total, Space: s.space}
	if s.rank == s.t.Root {
		out = msg
	} else {
		out.Data = s.outData
	}
	return FTResult{Msg: out, Survivors: s.commitMask}
}

// ---- receive side ----

// postWindow keeps RecvWindow receives posted toward the current parent,
// in index order over the outstanding expected segments.
func (s *bcastFT) postWindow() {
	if s.parent < 0 || s.finishing {
		return
	}
	for len(s.pendingRecv) < s.opt.RecvWindow && s.scan < s.ns {
		seg := s.scan
		s.scan++
		if !s.expected[seg] || s.recvd[seg] {
			continue
		}
		req := s.c.Irecv(s.parent, s.opt.TagOf(comm.KindBcast, seg))
		s.pendingRecv[seg] = req
		from := s.parent
		s.c.OnComplete(req, func(st comm.Status) { s.onSeg(req, from, seg, st) })
	}
}

// onSeg handles one segment arrival — possibly a stale one from a dead
// former parent (a receive that matched before it could be cancelled), or
// a duplicate of a segment the old parent already delivered.
func (s *bcastFT) onSeg(req comm.Request, from, seg int, st comm.Status) {
	if cur, ok := s.pendingRecv[seg]; ok && cur == req {
		delete(s.pendingRecv, seg)
	}
	if st.Err != nil {
		// The transfer died with its sender; the death notice re-drives it.
		s.postWindow()
		return
	}
	if from == s.parent {
		s.recvd[seg] = true
	}
	if st.Msg.Data != nil {
		if !s.have[seg] {
			if s.outData == nil {
				// Every byte is overwritten before the result is read.
				s.outData = comm.GetBuf(s.total)
			}
			copy(s.outData[s.segs[seg].Offset:], st.Msg.Data)
		}
		comm.PutBuf(st.Msg.Data)
	}
	if !s.have[seg] {
		s.have[seg] = true
		s.haveCount++
		// Rank order, not map order: pumping issues sends, and the event
		// schedule must not depend on map iteration.
		for r := 0; r < s.n; r++ {
			if cs, ok := s.streams[r]; ok {
				s.pumpChild(cs)
			}
		}
	}
	s.postWindow()
	s.maybeDone()
}

// ---- send side ----

func (s *bcastFT) segMsg(seg int) comm.Msg {
	sg := s.segs[seg]
	m := comm.Msg{Size: sg.Msg.Size, Space: s.space}
	if s.outData != nil {
		m.Data = s.outData[sg.Offset : sg.Offset+sg.Msg.Size]
	}
	return m
}

// pumpChild issues needed, available segments to one child in strict
// index order within the send window.
func (s *bcastFT) pumpChild(cs *ftStream) {
	if s.finishing || s.dead[cs.rank] {
		return
	}
	for cs.inflight < s.opt.SendWindow {
		for cs.next < s.ns && !cs.need[cs.next] {
			cs.next++
		}
		if cs.next >= s.ns || !s.have[cs.next] {
			return
		}
		seg := cs.next
		cs.next++
		cs.inflight++
		s.sendsOut++
		s.dataOut++
		s.sentTo[cs.rank] = true
		r := s.c.Isend(cs.rank, s.opt.TagOf(comm.KindBcast, seg), s.segMsg(seg))
		s.c.OnComplete(r, func(comm.Status) {
			cs.inflight--
			s.sendsOut--
			s.dataOut--
			s.pumpChild(cs)
		})
	}
}

// ---- completion plumbing (done / commit) ----

func (s *bcastFT) postDoneRecv(r int) {
	req := s.c.Irecv(r, s.opt.TagOf(comm.KindDone, r))
	s.doneRecvs[r] = req
	s.c.OnComplete(req, func(st comm.Status) {
		delete(s.doneRecvs, r)
		if st.Msg.Data != nil {
			comm.PutBuf(st.Msg.Data)
		}
		s.doneFrom[r] = true
		s.maybeCommit()
	})
}

// maybeDone tells the root this rank holds the full payload.
func (s *bcastFT) maybeDone() {
	if s.rank == s.t.Root || s.doneSent || s.finishing || s.haveCount != s.ns {
		return
	}
	s.doneSent = true
	s.sendsOut++
	r := s.c.Isend(s.t.Root, s.opt.TagOf(comm.KindDone, s.rank), comm.Sized(1))
	s.c.OnComplete(r, func(comm.Status) { s.sendsOut-- })
}

// maybeCommit (root only) commits once every live non-root rank has
// reported done. A rank that dies after reporting stays in the mask: its
// payload was delivered, so the mask remains consistent with the data.
func (s *bcastFT) maybeCommit() {
	if s.rank != s.t.Root || s.finishing {
		return
	}
	for r := 0; r < s.n; r++ {
		if r != s.rank && !s.dead[r] && !s.doneFrom[r] {
			return
		}
	}
	s.commitMask = liveMask(s.dead)
	s.committed = true
	// The fan-out counts as a send initiation: a root crashed exactly at
	// its commit point dies here and the survivors abort.
	s.fs.Commit(s.opt.Seq, s.commitMask)
	s.teardown()
}

// ---- failure handling ----

func (s *bcastFT) onNotice(nt comm.Notice) {
	switch nt.Kind {
	case comm.NoticeCommit:
		if nt.Seq != s.opt.Seq || s.finishing {
			return
		}
		s.committed = true
		s.commitMask = nt.Survivors
		s.teardown()
	case comm.NoticeDeath:
		s.onDeath(nt.Rank)
	}
}

// onDeath processes one confirmed death: heal the tree, re-parent if
// orphaned, adopt re-driven grandchildren.
func (s *bcastFT) onDeath(r int) {
	if s.dead[r] {
		return
	}
	if r == s.t.Root {
		// The payload source is gone: unrecoverable by design.
		s.dead[r] = true
		s.abortErr = &faults.RankFailedError{Rank: r, Kind: comm.KindBcast, Seq: s.opt.Seq}
		s.teardown()
		return
	}
	s.dead[r] = true
	if req, ok := s.reqRecvs[r]; ok { // re-drive requests are eager: cancel-safe
		s.fs.CancelRecv(req)
		delete(s.reqRecvs, r)
	}
	if req, ok := s.doneRecvs[r]; ok {
		s.fs.CancelRecv(req)
		delete(s.doneRecvs, r)
	}
	if req, ok := s.finRecvs[r]; ok {
		s.fs.CancelRecv(req)
		delete(s.finRecvs, r)
	}
	delete(s.streams, r) // in-flight sends to it fail fast and drain
	delete(s.sentTo, r)
	if s.finishing {
		if r == s.parent {
			s.cancelParentRecvs()
		}
		return
	}
	s.cur = s.t.Heal(s.dead)
	if r == s.parent {
		s.reparent(s.cur.Parent[s.rank])
	}
	// Ranks whose healed parent is now us will announce themselves with a
	// re-drive request; post its receive (idempotent across deaths).
	for _, ch := range s.cur.Children[s.rank] {
		if _, have := s.streams[ch]; have {
			continue
		}
		if _, posted := s.reqRecvs[ch]; posted {
			continue
		}
		s.postReqRecv(ch)
	}
	s.maybeCommit() // one fewer done may be needed now
}

// reparent attaches this orphan to the healed tree's parent: cancel the
// dead parent's receives, declare the still-missing segments, repost.
func (s *bcastFT) reparent(np int) {
	s.cancelParentRecvs()
	s.parent = np
	for i := range s.expected {
		// A receive that matched before cancellation counts as missing: if
		// its payload still lands we absorb the new parent's copy as a dup.
		s.expected[i] = !s.have[i]
		s.recvd[i] = false
	}
	s.scan = 0
	// Announce: always send the request, even with nothing missing — the
	// new parent learns of its child from this message alone.
	missing := 0
	for _, m := range s.expected {
		if m {
			missing++
		}
	}
	trace.Emit(s.c, trace.Record{Kind: trace.Redrive, Peer: np,
		Tag: s.opt.TagOf(comm.KindRedrive, s.rank), Size: missing})
	bits := packBits(s.expected)
	s.sendsOut++
	r := s.c.Isend(np, s.opt.TagOf(comm.KindRedrive, s.rank), comm.Bytes(bits))
	s.c.OnComplete(r, func(comm.Status) { s.sendsOut-- })
	s.postWindow()
}

func (s *bcastFT) cancelParentRecvs() {
	for seg, req := range s.pendingRecv {
		// false = already matched; its callback still lands (data or error).
		s.fs.CancelRecv(req)
		delete(s.pendingRecv, seg)
	}
}

// postReqRecv waits for an orphan's re-drive request.
func (s *bcastFT) postReqRecv(ch int) {
	req := s.c.Irecv(ch, s.opt.TagOf(comm.KindRedrive, ch))
	s.reqRecvs[ch] = req
	s.c.OnComplete(req, func(st comm.Status) {
		delete(s.reqRecvs, ch)
		need := unpackBits(st.Msg.Data, s.ns)
		if st.Msg.Data != nil {
			comm.PutBuf(st.Msg.Data)
		}
		cs := &ftStream{rank: ch, need: need}
		s.streams[ch] = cs
		s.pumpChild(cs)
	})
}

// ---- teardown (quiesce handshake) ----

func (s *bcastFT) teardown() {
	s.finishing = true
	// FIN every live rank that may hold posted receives from us: a child
	// posts its window toward its parent as soon as the (healed) tree
	// names us, even before any payload flows — so data-send history alone
	// under-counts the peers waiting on our FIN.
	for ch := range s.streams {
		s.sentTo[ch] = true
	}
	for ch := range s.reqRecvs {
		s.sentTo[ch] = true
	}
	for ch, req := range s.reqRecvs { // eager senders: cancel-safe
		s.fs.CancelRecv(req)
		delete(s.reqRecvs, ch)
	}
	for r, req := range s.doneRecvs {
		s.fs.CancelRecv(req)
		delete(s.doneRecvs, r)
	}
	if len(s.pendingRecv) > 0 {
		if s.parent < 0 || s.dead[s.parent] {
			s.cancelParentRecvs() // dead sender: annihilation makes this safe
		} else if _, posted := s.finRecvs[s.parent]; !posted {
			// A live parent may still have payload in flight; wait for its
			// FIN before cancelling, or a stranded rendezvous announcement
			// would hang the parent's drain.
			p := s.parent
			req := s.c.Irecv(p, s.opt.finTag(s.n, p))
			s.finRecvs[p] = req
			s.c.OnComplete(req, func(st comm.Status) {
				delete(s.finRecvs, p)
				if st.Msg.Data != nil {
					comm.PutBuf(st.Msg.Data)
				}
				s.cancelParentRecvs()
			})
		}
	}
}

// sendFins tells every live peer we sent payload to that nothing more is
// coming, releasing their leftover posted receives.
func (s *bcastFT) sendFins() {
	s.finSent = true
	for ch := 0; ch < s.n; ch++ { // rank order keeps the send schedule deterministic
		if !s.sentTo[ch] || s.dead[ch] {
			continue
		}
		s.sendsOut++
		r := s.c.Isend(ch, s.opt.finTag(s.n, s.rank), comm.Sized(1))
		s.c.OnComplete(r, func(comm.Status) { s.sendsOut-- })
	}
}

// finished reports whether the rank may return: teardown entered, all
// sends drained, no data receives outstanding. Leftover FIN receives are
// cancelled here (FIN senders are eager, so cancelling is safe).
func (s *bcastFT) finished() bool {
	if !s.finishing || s.sendsOut != 0 || !s.finSent || len(s.pendingRecv) != 0 {
		return false
	}
	for r, req := range s.finRecvs {
		s.fs.CancelRecv(req)
		delete(s.finRecvs, r)
	}
	return true
}
