package core

import (
	"fmt"

	"adapt/internal/comm"
	"adapt/internal/hwloc"
	"adapt/internal/trees"
)

// This file provides the non-blocking (MPI_Ibcast/MPI_Ireduce-style)
// entry points to the ADAPT engine — the paper's §7 future work
// ("enabling non-blocking collective communications with asynchronous
// progress"). Because the engine is already a pure event-driven state
// machine, starting a collective just posts its initial operations and
// returns a handle; the state machine advances whenever the rank drives
// its progress engine for any reason (waiting on point-to-point traffic,
// another collective, or the handle itself). Several collectives may be
// in flight concurrently as long as their Options.Seq differ.

// Op is a handle to an in-flight non-blocking collective on one rank.
type Op struct {
	c       comm.Comm
	pending func() bool
	result  func() comm.Msg
}

// Done reports whether the rank's share of the collective has completed.
// It fires ready callbacks opportunistically but never blocks.
func (o *Op) Done() bool { return !o.pending() }

// Wait drives the progress engine until the collective completes and
// returns its result (the received message for a broadcast, the folded
// message at the root for a reduction).
func (o *Op) Wait() comm.Msg {
	for o.pending() {
		o.c.Progress()
	}
	return o.result()
}

// StartBcast begins a non-blocking ADAPT broadcast. The returned handle's
// Wait yields what Bcast would return.
func StartBcast(c comm.Comm, t *trees.Tree, msg comm.Msg, opt Options) *Op {
	opt = opt.validate()
	if t.Size() != c.Size() {
		panic(fmt.Sprintf("core: tree size %d != communicator size %d", t.Size(), c.Size()))
	}
	end := traceStart(c, comm.KindBcast, opt, t.Root, msg.Size)
	s := newBcastState(c, t, msg, opt)
	return end(&Op{
		c:       c,
		pending: func() bool { return s.recvPending > 0 || s.sendPending > 0 },
		result: func() comm.Msg {
			return comm.Msg{Data: s.outData, Size: s.total, Space: s.space}
		},
	})
}

// StartReduce begins a non-blocking ADAPT reduction. contrib.Data, when
// present, is folded in place — pass a private copy.
func StartReduce(c comm.Comm, t *trees.Tree, contrib comm.Msg, opt Options) *Op {
	opt = opt.validate()
	if t.Size() != c.Size() {
		panic(fmt.Sprintf("core: tree size %d != communicator size %d", t.Size(), c.Size()))
	}
	end := traceStart(c, comm.KindReduce, opt, t.Root, contrib.Size)
	s := newReduceState(c, t, contrib, opt)
	return end(&Op{
		c:       c,
		pending: func() bool { return s.recvPending > 0 || s.sendPending > 0 },
		result: func() comm.Msg {
			if c.Rank() == t.Root {
				return s.result(contrib)
			}
			return comm.Msg{Size: contrib.Size, Space: contrib.Space}
		},
	})
}

// StartBcastStaged begins a non-blocking staged GPU broadcast (§4.1).
func StartBcastStaged(dc comm.DeviceComm, topo *hwloc.Topology, t *trees.Tree, msg comm.Msg, opt Options) *Op {
	opt = opt.validate()
	if t.Size() != dc.Size() {
		panic(fmt.Sprintf("core: tree size %d != communicator size %d", t.Size(), dc.Size()))
	}
	end := traceStart(dc, comm.KindBcast, opt, t.Root, msg.Size)
	s := newStagedBcastState(dc, topo, t, msg, opt)
	return end(&Op{
		c: dc,
		pending: func() bool {
			return s.recvPending > 0 || s.sendPending > 0 || s.flushPending > 0
		},
		result: func() comm.Msg {
			return comm.Msg{Data: msg.Data, Size: msg.Size, Space: comm.MemDevice}
		},
	})
}

// StartReduceOffload begins a non-blocking GPU-offloaded reduction (§4.2).
func StartReduceOffload(dc comm.DeviceComm, t *trees.Tree, contrib comm.Msg, opt Options) *Op {
	opt = opt.validate()
	if t.Size() != dc.Size() {
		panic(fmt.Sprintf("core: tree size %d != communicator size %d", t.Size(), dc.Size()))
	}
	end := traceStart(dc, comm.KindReduce, opt, t.Root, contrib.Size)
	s := newReduceOffloadState(dc, t, contrib, opt)
	return end(&Op{
		c: dc,
		pending: func() bool {
			return s.recvPending > 0 || s.sendPending > 0 || s.kernelPending > 0
		},
		result: func() comm.Msg {
			return comm.Msg{Data: contrib.Data, Size: contrib.Size, Space: comm.MemDevice}
		},
	})
}
