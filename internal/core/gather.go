package core

import (
	"fmt"

	"adapt/internal/comm"
	"adapt/internal/trees"
)

// gatherState is the event-driven gather: the reverse of scatter. Each
// rank assembles its subtree blob ([own block][child0 blob][child1 blob]…
// in DFS order) and streams outbound segments to its parent as soon as
// the inbound child segments covering them have arrived — no waiting for
// whole subtree blobs.
type gatherState struct {
	c        comm.Comm
	t        *trees.Tree
	opt      Options
	blk      int
	blob     []byte
	blobSize int
	order    []int

	children    []*gatherChild
	recvPending int

	// Outbound segments over the blob grid.
	up          *childStream
	outSegs     []comm.Segment
	outDeps     []int
	sendPending int

	space comm.MemSpace
}

type gatherChild struct {
	rank     int
	start    int // child blob range start within my blob
	span     int
	segs     int // inbound segment count (child blob grid)
	nextPost int
}

// Gather collects every rank's equally sized block to t.Root in rank
// order. contrib is this rank's block (the same Size on every rank).
// Returns the concatenated, rank-ordered buffer at the root.
func Gather(c comm.Comm, t *trees.Tree, contrib comm.Msg, opt Options) comm.Msg {
	return StartGather(c, t, contrib, opt).Wait()
}

// StartGather begins a non-blocking event-driven gather.
func StartGather(c comm.Comm, t *trees.Tree, contrib comm.Msg, opt Options) *Op {
	opt = opt.validate()
	if t.Size() != c.Size() {
		panic(fmt.Sprintf("core: tree size %d != communicator size %d", t.Size(), c.Size()))
	}
	end := traceStart(c, comm.KindGather, opt, t.Root, contrib.Size)
	s := newGatherState(c, t, contrib, opt)
	return end(&Op{
		c:       c,
		pending: func() bool { return s.recvPending > 0 || s.sendPending > 0 },
		result:  func() comm.Msg { return s.finish(contrib) },
	})
}

func newGatherState(c comm.Comm, t *trees.Tree, contrib comm.Msg, opt Options) *gatherState {
	me := c.Rank()
	blk := contrib.Size
	order := subtreeOrder(t, me)
	s := &gatherState{
		c: c, t: t, opt: opt, blk: blk,
		blobSize: blk * len(order), order: order, space: contrib.Space,
	}
	if contrib.Data != nil {
		s.blob = make([]byte, s.blobSize)
		copy(s.blob, contrib.Data)
	}

	// Children layout mirrors scatter's.
	off := blk
	for _, ch := range t.Children[me] {
		span := blk * len(subtreeOrder(t, ch))
		gc := &gatherChild{rank: ch, start: off, span: span,
			segs: comm.NumSegments(span, opt.SegSize)}
		s.children = append(s.children, gc)
		s.recvPending += gc.segs
		off += span
	}

	if p := t.Parent[me]; p != -1 {
		s.up = newChildStream(p)
		s.outSegs = comm.Segments(comm.Msg{Size: s.blobSize, Space: contrib.Space}, opt.SegSize)
		s.outDeps = make([]int, len(s.outSegs))
		s.sendPending = len(s.outSegs)
		// Each outbound segment depends on the inbound child segments that
		// overlap it; the own-block bytes are present from the start.
		for i, sg := range s.outSegs {
			a, b := sg.Offset, sg.Offset+sg.Msg.Size
			deps := 0
			for _, gc := range s.children {
				ca, cb := intersect(a, b, gc.start, gc.start+gc.span)
				if cb > ca {
					lo, hi := segRange(ca-gc.start, cb-gc.start, opt.SegSize)
					deps += hi - lo
				}
			}
			s.outDeps[i] = deps
			if deps == 0 {
				s.releaseOut(i)
			}
		}
	}

	for ci := range s.children {
		for i := 0; i < opt.RecvWindow && s.children[ci].nextPost < s.children[ci].segs; i++ {
			s.postRecv(ci)
		}
	}
	return s
}

func intersect(a, b, c, d int) (int, int) {
	if c > a {
		a = c
	}
	if d < b {
		b = d
	}
	return a, b
}

func (s *gatherState) postRecv(ci int) {
	gc := s.children[ci]
	seg := gc.nextPost
	gc.nextPost++
	r := s.c.Irecv(gc.rank, s.opt.TagOf(comm.KindGather, seg))
	s.c.OnComplete(r, func(st comm.Status) { s.onInbound(ci, seg, st) })
}

func (s *gatherState) onInbound(ci, seg int, st comm.Status) {
	gc := s.children[ci]
	s.recvPending--
	if gc.nextPost < gc.segs {
		s.postRecv(ci)
	}
	if st.Msg.Data != nil && s.blob != nil {
		copy(s.blob[gc.start+seg*s.opt.SegSize:], st.Msg.Data)
	}
	if s.up == nil {
		return
	}
	// This inbound segment covers absolute bytes [abs0, abs1); release any
	// outbound segment whose dependencies are exhausted.
	abs0 := gc.start + seg*s.opt.SegSize
	abs1 := abs0 + st.Msg.Size
	lo, hi := segRange(abs0, abs1, s.opt.SegSize)
	for i := lo; i < hi && i < len(s.outSegs); i++ {
		if s.outDeps[i] > 0 {
			s.outDeps[i]--
			if s.outDeps[i] == 0 {
				s.releaseOut(i)
			}
		}
	}
}

func (s *gatherState) releaseOut(i int) {
	sg := s.outSegs[i]
	if s.blob != nil {
		sg.Msg.Data = s.blob[sg.Offset : sg.Offset+sg.Msg.Size]
	}
	s.up.offer(i, sg.Msg)
	s.pumpUp()
}

func (s *gatherState) pumpUp() {
	s.up.pump(s.c, s.opt.SendWindow,
		func(idx int) comm.Tag { return s.opt.TagOf(comm.KindGather, idx) },
		func() { s.sendPending-- })
}

// finish produces the result: at the root, the subtree-ordered blob
// permuted back to rank order; elsewhere, an empty descriptor.
func (s *gatherState) finish(contrib comm.Msg) comm.Msg {
	if s.c.Rank() != s.t.Root {
		return comm.Msg{Size: contrib.Size, Space: s.space}
	}
	out := comm.Msg{Size: s.blobSize, Space: s.space}
	if s.blob != nil {
		ordered := make([]byte, s.blobSize)
		for i, r := range s.order {
			copy(ordered[r*s.blk:(r+1)*s.blk], s.blob[i*s.blk:(i+1)*s.blk])
		}
		out.Data = ordered
	}
	return out
}
