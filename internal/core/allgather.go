package core

import (
	"fmt"

	"adapt/internal/comm"
)

// allgatherState is the event-driven ring allgather: every rank's block
// circulates around the ring, segmented; each (block, segment) parcel is
// forwarded to the right neighbour the moment it arrives from the left,
// independent of every other parcel. This is n−1 overlapping chain
// broadcasts sharing one send stream, with M wildcard receives posted
// ahead so parcels never arrive unexpected.
type allgatherState struct {
	c     comm.Comm
	opt   Options
	n     int
	blk   int
	nseg  int // segments per block
	left  int
	right int

	blob []byte // rank-ordered result (nil when elided)

	recvPending int
	sendPending int
	expect      []int // expected parcel ids in predicted arrival order
	nextPost    int

	me  int
	out *childStream // single ordered stream to the right neighbour
}

// Allgather shares every rank's equally sized block with all ranks using
// the event-driven ring. Returns the rank-ordered concatenation on every
// rank.
func Allgather(c comm.Comm, contrib comm.Msg, opt Options) comm.Msg {
	return StartAllgather(c, contrib, opt).Wait()
}

// StartAllgather begins a non-blocking event-driven ring allgather.
func StartAllgather(c comm.Comm, contrib comm.Msg, opt Options) *Op {
	opt = opt.validate()
	end := traceStart(c, comm.KindAllgather, opt, -1, contrib.Size)
	s := newAllgatherState(c, contrib, opt)
	return end(&Op{
		c:       c,
		pending: func() bool { return s.recvPending > 0 || s.sendPending > 0 },
		result: func() comm.Msg {
			return comm.Msg{Data: s.blob, Size: s.blk * s.n, Space: contrib.Space}
		},
	})
}

func newAllgatherState(c comm.Comm, contrib comm.Msg, opt Options) *allgatherState {
	n := c.Size()
	me := c.Rank()
	s := &allgatherState{
		c: c, opt: opt, n: n, blk: contrib.Size,
		nseg:  comm.NumSegments(contrib.Size, opt.SegSize),
		left:  (me - 1 + n) % n,
		right: (me + 1) % n,
		me:    me,
	}
	s.out = newChildStream(s.right)
	if s.nseg*n > 1<<tagSegBitsBudget {
		panic(fmt.Sprintf("core: allgather parcel space %d×%d exceeds tag budget", n, s.nseg))
	}
	if contrib.Data != nil {
		// Own block is copied now, every foreign block by its parcels, so
		// the pooled buffer is fully overwritten before the result is read.
		s.blob = comm.GetBuf(s.blk * n)
		copy(s.blob[me*s.blk:], contrib.Data)
	}
	if n == 1 {
		return s
	}
	// Inbound: every foreign block's segments arrive from the left, in
	// roughly hop-distance order: block me−1 first, then me−2, … Post
	// exact-tag receives in that order, M ahead, so parcels almost always
	// find a posted receive (and merely pay the unexpected-copy cost, not
	// a correctness penalty, when they race ahead).
	s.recvPending = (n - 1) * s.nseg
	for d := 1; d < n; d++ {
		block := (me - d + n) % n
		for seg := 0; seg < s.nseg; seg++ {
			s.expect = append(s.expect, block*s.nseg+seg)
		}
	}
	// Outbound: every block except the right neighbour's own is forwarded
	// right exactly once: our own block + (n−2) foreign blocks.
	s.sendPending = (n - 1) * s.nseg

	// Seed: our own block enters the ring.
	for _, sg := range comm.Segments(contrib, opt.SegSize) {
		s.enqueue(me, sg)
	}
	for i := 0; i < opt.RecvWindow && s.nextPost < len(s.expect); i++ {
		s.postRecv()
	}
	return s
}

// tagSegBitsBudget bounds block×segment parcel ids to the tag field.
const tagSegBitsBudget = 24

func (s *allgatherState) postRecv() {
	id := s.expect[s.nextPost]
	s.nextPost++
	r := s.c.Irecv(s.left, s.opt.TagOf(comm.KindAllgather, id))
	s.c.OnComplete(r, func(st comm.Status) { s.onParcel(id, st) })
}

func (s *allgatherState) onParcel(id int, st comm.Status) {
	s.recvPending--
	if s.nextPost < len(s.expect) {
		s.postRecv()
	}
	block, seg := id/s.nseg, id%s.nseg
	off := block*s.blk + seg*s.opt.SegSize
	fwd := comm.Msg{Size: st.Msg.Size, Space: st.Msg.Space}
	if st.Msg.Data != nil {
		if s.blob == nil {
			// Lazy path (our own contribution was elided): our block's
			// region is never written, so it must read as zeros.
			s.blob = comm.GetBufZero(s.blk * s.n)
		}
		copy(s.blob[off:], st.Msg.Data)
		// Forwarding happens from the assembled blob; the receiver-owned
		// parcel buffer is dead.
		comm.PutBuf(st.Msg.Data)
		fwd.Data = s.blob[off : off+st.Msg.Size]
	}
	// Forward unless the right neighbour originated this block.
	if block != s.right {
		s.enqueue(block, comm.Segment{Index: seg, Msg: fwd})
	}
}

// enqueue offers a parcel to the outbound stream at its hop-distance
// position. Position order is what the right neighbour posts its receive
// window in, so issuing positions in order keeps the ring deadlock-free
// (see childStream).
func (s *allgatherState) enqueue(block int, sg comm.Segment) {
	d := (s.me - block + s.n) % s.n
	s.out.offer(d*s.nseg+sg.Index, sg.Msg)
	s.pump()
}

func (s *allgatherState) pump() {
	s.out.pump(s.c, s.opt.SendWindow,
		func(pos int) comm.Tag {
			block := (s.me - pos/s.nseg + s.n) % s.n
			return s.opt.TagOf(comm.KindAllgather, block*s.nseg+pos%s.nseg)
		},
		func() { s.sendPending-- })
}
