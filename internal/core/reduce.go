package core

import (
	"adapt/internal/comm"
	"adapt/internal/trees"
)

// reduceState is the per-rank ADAPT reduce state machine. Data flows
// leaves → root over the same tree shape as the broadcast, reversed. Per
// segment and per child, receives advance independently (window M);
// a segment travels to the parent as soon as all children contributed to
// it, regardless of other segments (window N) — segment independence for
// the reduction.
type reduceState struct {
	c   comm.Comm
	t   *trees.Tree
	opt Options

	segs []comm.Segment // local contribution, folded in place
	// needed[seg] counts child contributions still missing.
	needed []int
	// per-child next segment index to post a receive for.
	children []int
	nextPost []int

	up          *childStream // stream to parent (nil at root)
	recvPending int
	sendPending int
	readySegs   int
}

// Reduce performs the ADAPT event-driven reduction over tree t: every
// rank contributes contrib, and the element-wise fold under opt.Op lands
// at t.Root. The returned Msg is meaningful at the root only (Data set
// only if contributions carry real bytes). contrib.Data, when present, is
// folded in place at intermediate ranks — pass a private copy.
func Reduce(c comm.Comm, t *trees.Tree, contrib comm.Msg, opt Options) comm.Msg {
	return StartReduce(c, t, contrib, opt).Wait()
}

// newReduceState wires up the state machine and posts the initial
// windows. opt must already be validated.
func newReduceState(c comm.Comm, t *trees.Tree, contrib comm.Msg, opt Options) *reduceState {
	s := &reduceState{
		c: c, t: t, opt: opt,
		segs:     comm.Segments(contrib, opt.SegSize),
		children: t.Children[c.Rank()],
	}
	ns := len(s.segs)
	s.needed = make([]int, ns)
	for i := range s.needed {
		s.needed[i] = len(s.children)
	}
	s.nextPost = make([]int, len(s.children))
	s.recvPending = ns * len(s.children)
	if p := t.Parent[c.Rank()]; p != -1 {
		s.up = newChildStream(p)
		s.sendPending = ns
	}

	// Post the first M receives per child.
	for ci := range s.children {
		for i := 0; i < opt.RecvWindow && s.nextPost[ci] < ns; i++ {
			s.postRecv(ci)
		}
	}
	// Segments with no pending children (leaves: all of them) are ready.
	for seg := range s.needed {
		if s.needed[seg] == 0 {
			s.segReady(seg)
		}
	}
	return s
}

func (s *reduceState) postRecv(ci int) {
	seg := s.nextPost[ci]
	s.nextPost[ci]++
	r := s.c.Irecv(s.children[ci], s.opt.TagOf(comm.KindReduce, seg))
	s.c.OnComplete(r, func(st comm.Status) { s.onContribution(ci, seg, st) })
}

// onContribution folds one child's segment into the local accumulator.
func (s *reduceState) onContribution(ci, seg int, st comm.Status) {
	s.recvPending--
	if s.nextPost[ci] < len(s.segs) {
		s.postRecv(ci)
	}
	if st.Msg.Data != nil {
		if s.segs[seg].Msg.Data != nil {
			s.opt.Op.Apply(s.segs[seg].Msg.Data, st.Msg.Data, s.opt.Datatype)
		}
		// The contribution was folded into the local accumulator (or
		// dropped); the receiver-owned buffer is dead either way.
		comm.PutBuf(st.Msg.Data)
	}
	// Charge the reduction arithmetic (the live runtime performed it for
	// real above and charges nothing; the simulator charges γ·m).
	s.c.Compute(s.opt.ReduceCost(st.Msg.Size), comm.ComputeReduce)
	s.needed[seg]--
	if s.needed[seg] == 0 {
		s.segReady(seg)
	}
}

// segReady forwards a fully reduced segment toward the root.
func (s *reduceState) segReady(seg int) {
	s.readySegs++
	if s.up == nil {
		return
	}
	s.up.offer(seg, s.segs[seg].Msg)
	s.pumpUp()
}

func (s *reduceState) pumpUp() {
	s.up.pump(s.c, s.opt.SendWindow,
		func(idx int) comm.Tag { return s.opt.TagOf(comm.KindReduce, idx) },
		func() { s.sendPending-- })
}

// result reassembles the root's folded segments into one message.
func (s *reduceState) result(contrib comm.Msg) comm.Msg {
	if contrib.Data == nil {
		return comm.Msg{Size: contrib.Size, Space: contrib.Space}
	}
	// Segments alias contrib.Data and were folded in place.
	return comm.Msg{Data: contrib.Data, Size: contrib.Size, Space: contrib.Space}
}
