package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"adapt/internal/comm"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
	"adapt/internal/runtime"
	"adapt/internal/simmpi"
	"adapt/internal/trees"
)

func TestBcastTwoTreeLive(t *testing.T) {
	for _, n := range []int{1, 2, 3, 9, 16} {
		for _, sz := range []int{0, 1, 4095, 100_000} {
			n, sz := n, sz
			t.Run(fmt.Sprintf("p%d/%dB", n, sz), func(t *testing.T) {
				t.Parallel()
				root := n / 3
				a, b := trees.TwoTree(n, root)
				want := payload(sz, int64(n*sz+1))
				w := runtime.NewWorld(n)
				var mu sync.Mutex
				results := map[int][]byte{}
				w.Run(func(c *runtime.Comm) {
					opt := DefaultOptions()
					opt.SegSize = 8 << 10
					var msg comm.Msg
					if c.Rank() == root {
						msg = comm.Bytes(append([]byte(nil), want...))
					} else {
						msg = comm.Sized(sz)
					}
					out := BcastTwoTree(c, a, b, msg, opt)
					mu.Lock()
					results[c.Rank()] = out.Data
					mu.Unlock()
				})
				for r := 0; r < n; r++ {
					if sz == 0 {
						continue
					}
					if !bytes.Equal(results[r], want) {
						t.Errorf("rank %d: two-tree payload mismatch", r)
					}
				}
			})
		}
	}
}

// The two-tree broadcast must beat a single binary tree for large
// messages on the simulator: interiors forward half the bytes.
func TestTwoTreeBeatsSingleBinary(t *testing.T) {
	p := netmodel.Cori(1) // one node: homogeneous lanes, pure tree effect
	const size = 8 * netmodel.MB
	single := runSim(t, p, noise.None, func(c *simmpi.Comm) {
		Bcast(c, trees.Binary(c.Size(), 0), comm.Sized(size), DefaultOptions())
	})
	a, b := trees.TwoTree(p.Topo.Size(), 0)
	double := runSim(t, p, noise.None, func(c *simmpi.Comm) {
		BcastTwoTree(c, a, b, comm.Sized(size), DefaultOptions())
	})
	if double >= single {
		t.Fatalf("two-tree (%v) should beat single binary (%v)", double, single)
	}
	t.Logf("binary %v vs two-tree %v (%.2fx)", single, double, float64(single)/float64(double))
}

func TestTwoTreeOddHalves(t *testing.T) {
	// Odd sizes split 1 byte unevenly; both halves must reassemble.
	const n = 6
	a, b := trees.TwoTree(n, 0)
	want := payload(12345, 9)
	w := runtime.NewWorld(n)
	var mu sync.Mutex
	results := map[int][]byte{}
	w.Run(func(c *runtime.Comm) {
		var msg comm.Msg
		if c.Rank() == 0 {
			msg = comm.Bytes(append([]byte(nil), want...))
		} else {
			msg = comm.Sized(len(want))
		}
		opt := DefaultOptions()
		opt.SegSize = 1 << 10
		out := BcastTwoTree(c, a, b, msg, opt)
		mu.Lock()
		results[c.Rank()] = out.Data
		mu.Unlock()
	})
	for r := 1; r < n; r++ {
		if !bytes.Equal(results[r], want) {
			t.Fatalf("rank %d: odd-size reassembly failed", r)
		}
	}
}
