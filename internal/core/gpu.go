package core

import (
	"adapt/internal/comm"
	"adapt/internal/hwloc"
	"adapt/internal/trees"
)

// This file implements the paper's §4 heterogeneous extensions on top of
// the event-driven engine:
//
//   - BcastStaged (§4.1): node leaders receive inter-node traffic into an
//     explicit CPU staging buffer and serve inter-node and inter-socket
//     children straight from it, so the segment crosses the leader GPU's
//     PCIe link exactly once (the asynchronous flush) instead of once per
//     child — Figure 6c's lane separation.
//   - ReduceOffload (§4.2): reduction arithmetic runs on the GPU on
//     asynchronous streams; the CPU rank keeps progressing communication
//     while kernels execute.

// stagedChild wraps a child stream with the memory space its sends read
// from: host (staged) for slow-lane children, device for same-socket
// peers.
type stagedChild struct {
	childStream
	space comm.MemSpace
}

type stagedBcastState struct {
	dc   comm.DeviceComm
	t    *trees.Tree
	opt  Options
	segs []comm.Segment

	children []*stagedChild
	leader   bool // receives into / serves from the CPU staging buffer
	parent   int

	nextPost     int
	recvPending  int
	sendPending  int
	flushPending int
}

// IsNodeLeader reports whether rank heads its node in tree t: it is the
// root or its parent lives on a different node. These are the ranks the
// paper gives an explicit CPU staging buffer.
func IsNodeLeader(topo *hwloc.Topology, t *trees.Tree, rank int) bool {
	p := t.Parent[rank]
	return p == -1 || topo.LevelBetween(rank, p) == hwloc.LevelNode
}

// BcastStaged performs the ADAPT broadcast on a GPU platform with the
// explicit-CPU-buffer optimization. topo must be the platform topology
// behind tree t. The payload logically lives in device memory; Data, when
// real, travels as with Bcast.
func BcastStaged(dc comm.DeviceComm, topo *hwloc.Topology, t *trees.Tree, msg comm.Msg, opt Options) comm.Msg {
	return StartBcastStaged(dc, topo, t, msg, opt).Wait()
}

// newStagedBcastState wires up the staged state machine and posts the
// initial window. opt must already be validated.
func newStagedBcastState(dc comm.DeviceComm, topo *hwloc.Topology, t *trees.Tree, msg comm.Msg, opt Options) *stagedBcastState {
	me := dc.Rank()
	s := &stagedBcastState{
		dc: dc, t: t, opt: opt,
		parent: t.Parent[me],
		leader: IsNodeLeader(topo, t, me),
	}
	for _, ch := range t.Children[me] {
		space := comm.MemDevice
		if s.leader && topo.LevelBetween(me, ch) != hwloc.LevelCore {
			// Slow-lane children are served from the staging buffer.
			space = comm.MemHost
		}
		s.children = append(s.children, &stagedChild{childStream: *newChildStream(ch), space: space})
	}

	s.segs = comm.Segments(comm.Msg{Data: msg.Data, Size: msg.Size, Space: comm.MemDevice}, opt.SegSize)
	ns := len(s.segs)
	s.sendPending = ns * len(s.children)

	if me == t.Root {
		if s.leader {
			// Root caches each segment in CPU memory (one D2H crossing),
			// then serves slow-lane children from the cache; same-socket
			// children are served from device memory immediately.
			s.flushPending = ns
			for _, sg := range s.segs {
				sg := sg
				for _, cs := range s.children {
					if cs.space == comm.MemDevice {
						s.enqueue(cs, sg)
					}
				}
				r := dc.AsyncCopy(sg.Msg.Size, comm.MemDevice, comm.MemHost)
				dc.OnComplete(r, func(comm.Status) {
					s.flushPending--
					for _, cs := range s.children {
						if cs.space == comm.MemHost {
							s.enqueue(cs, sg)
						}
					}
				})
			}
		} else {
			for _, sg := range s.segs {
				for _, cs := range s.children {
					s.enqueue(cs, sg)
				}
			}
		}
	} else {
		s.recvPending = ns
		recvSpace := comm.MemDevice
		if s.leader {
			recvSpace = comm.MemHost
			// Each received segment is flushed host→device once.
			s.flushPending = ns
		}
		for i := 0; i < opt.RecvWindow && s.nextPost < ns; i++ {
			s.postRecv(recvSpace)
		}
	}
	return s
}

func (s *stagedBcastState) postRecv(space comm.MemSpace) {
	seg := s.nextPost
	s.nextPost++
	r := s.dc.IrecvIn(s.parent, s.opt.TagOf(comm.KindBcast, seg), space)
	s.dc.OnComplete(r, func(st comm.Status) { s.onSegment(seg, space, st) })
}

func (s *stagedBcastState) onSegment(seg int, space comm.MemSpace, st comm.Status) {
	s.recvPending--
	if s.nextPost < len(s.segs) {
		s.postRecv(space)
	}
	sg := s.segs[seg]
	sg.Msg = comm.Msg{Data: st.Msg.Data, Size: st.Msg.Size, Space: sg.Msg.Space}
	if !s.leader {
		for _, cs := range s.children {
			s.enqueue(cs, sg)
		}
		return
	}
	// Leader: slow-lane children are served straight from the staging
	// buffer; the flush releases same-socket (device-sourced) children.
	for _, cs := range s.children {
		if cs.space == comm.MemHost {
			s.enqueue(cs, sg)
		}
	}
	r := s.dc.AsyncCopy(sg.Msg.Size, comm.MemHost, comm.MemDevice)
	s.dc.OnComplete(r, func(comm.Status) {
		s.flushPending--
		for _, cs := range s.children {
			if cs.space == comm.MemDevice {
				s.enqueue(cs, sg)
			}
		}
	})
}

func (s *stagedBcastState) enqueue(cs *stagedChild, sg comm.Segment) {
	sg.Msg.Space = cs.space
	cs.offer(sg.Index, sg.Msg)
	s.pump(cs)
}

func (s *stagedBcastState) pump(cs *stagedChild) {
	cs.childStream.pump(s.dc, s.opt.SendWindow,
		func(idx int) comm.Tag { return s.opt.TagOf(comm.KindBcast, idx) },
		func() { s.sendPending-- })
}

// reduceOffloadState extends the ADAPT reduce with GPU-offloaded folds.
type reduceOffloadState struct {
	dc  comm.DeviceComm
	t   *trees.Tree
	opt Options

	segs     []comm.Segment
	needed   []int // contributions + kernels outstanding per segment
	children []int
	nextPost []int

	up            *childStream
	recvPending   int
	sendPending   int
	kernelPending int
}

// ReduceOffload performs the ADAPT reduction with the fold executed by
// asynchronous GPU kernels (§4.2): a segment travels to the parent once
// every child contributed and every kernel for it retired; the CPU rank
// is never blocked on arithmetic.
func ReduceOffload(dc comm.DeviceComm, t *trees.Tree, contrib comm.Msg, opt Options) comm.Msg {
	return StartReduceOffload(dc, t, contrib, opt).Wait()
}

// newReduceOffloadState wires up the offloaded state machine and posts
// the initial windows. opt must already be validated.
func newReduceOffloadState(dc comm.DeviceComm, t *trees.Tree, contrib comm.Msg, opt Options) *reduceOffloadState {
	me := dc.Rank()
	s := &reduceOffloadState{
		dc: dc, t: t, opt: opt,
		segs:     comm.Segments(comm.Msg{Data: contrib.Data, Size: contrib.Size, Space: comm.MemDevice}, opt.SegSize),
		children: t.Children[me],
	}
	ns := len(s.segs)
	s.needed = make([]int, ns)
	for i := range s.needed {
		s.needed[i] = len(s.children)
	}
	s.nextPost = make([]int, len(s.children))
	s.recvPending = ns * len(s.children)
	if p := t.Parent[me]; p != -1 {
		s.up = newChildStream(p)
		s.sendPending = ns
	}
	for ci := range s.children {
		for i := 0; i < opt.RecvWindow && s.nextPost[ci] < ns; i++ {
			s.postRecv(ci)
		}
	}
	for seg := range s.needed {
		if s.needed[seg] == 0 {
			s.segReady(seg)
		}
	}
	return s
}

func (s *reduceOffloadState) postRecv(ci int) {
	seg := s.nextPost[ci]
	s.nextPost[ci]++
	r := s.dc.Irecv(s.children[ci], s.opt.TagOf(comm.KindReduce, seg))
	s.dc.OnComplete(r, func(st comm.Status) { s.onContribution(ci, seg, st) })
}

func (s *reduceOffloadState) onContribution(ci, seg int, st comm.Status) {
	s.recvPending--
	if s.nextPost[ci] < len(s.segs) {
		s.postRecv(ci)
	}
	if st.Msg.Data != nil && s.segs[seg].Msg.Data != nil {
		// Perform the fold for real (the GPU kernel in spirit).
		s.opt.Op.Apply(s.segs[seg].Msg.Data, st.Msg.Data, s.opt.Datatype)
	}
	s.kernelPending++
	kr := s.dc.DeviceReduce(st.Msg.Size)
	s.dc.OnComplete(kr, func(comm.Status) {
		s.kernelPending--
		s.needed[seg]--
		if s.needed[seg] == 0 {
			s.segReady(seg)
		}
	})
}

func (s *reduceOffloadState) segReady(seg int) {
	if s.up == nil {
		return
	}
	s.up.offer(seg, s.segs[seg].Msg)
	s.pumpUp()
}

func (s *reduceOffloadState) pumpUp() {
	s.up.pump(s.dc, s.opt.SendWindow,
		func(idx int) comm.Tag { return s.opt.TagOf(comm.KindReduce, idx) },
		func() { s.sendPending-- })
}
