package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"adapt/internal/comm"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
	"adapt/internal/runtime"
	"adapt/internal/simmpi"
	"adapt/internal/trees"
)

// TestFusedAllreduceLive: every rank must end up with the exact global
// sum, across tree shapes and rank counts, on the live runtime.
func TestFusedAllreduceLive(t *testing.T) {
	for _, b := range trees.Builders() {
		for _, n := range []int{1, 2, 6, 13} {
			b, n := b, n
			t.Run(fmt.Sprintf("%s/p%d", b.Name, n), func(t *testing.T) {
				t.Parallel()
				const ne = 700
				tree := b.Build(n, 0)
				w := runtime.NewWorld(n)
				var mu sync.Mutex
				results := map[int][]int64{}
				w.Run(func(c *runtime.Comm) {
					vals := make([]int64, ne)
					for i := range vals {
						vals[i] = int64((c.Rank() + 2) * (i + 1))
					}
					opt := DefaultOptions()
					opt.SegSize = 2 << 10
					opt.Datatype = comm.Int64
					out := Allreduce(c, tree, comm.Bytes(comm.EncodeInt64s(vals)), opt)
					mu.Lock()
					results[c.Rank()] = comm.DecodeInt64s(out.Data)
					mu.Unlock()
				})
				for i := 0; i < ne; i++ {
					want := int64(0)
					for r := 0; r < n; r++ {
						want += int64((r + 2) * (i + 1))
					}
					for r := 0; r < n; r++ {
						if results[r][i] != want {
							t.Fatalf("rank %d elem %d: got %d, want %d", r, i, results[r][i], want)
						}
					}
				}
			})
		}
	}
}

// The fused allreduce must beat sequential reduce-then-bcast on the
// simulator: the down pipeline starts while the up pipeline still runs.
func TestFusedAllreduceOverlapsPhases(t *testing.T) {
	p := netmodel.Cori(2)
	tree := trees.Topology(p.Topo, 0, trees.ChainConfig())
	fused := runSim(t, p, noise.None, func(c *simmpi.Comm) {
		Allreduce(c, tree, comm.Sized(4*netmodel.MB), DefaultOptions())
	})
	sequential := runSim(t, p, noise.None, func(c *simmpi.Comm) {
		opt := DefaultOptions()
		red := Reduce(c, tree, comm.Sized(4*netmodel.MB), opt)
		opt.Seq = 1
		var msg comm.Msg
		if c.Rank() == 0 {
			msg = red
		} else {
			msg = comm.Sized(4 * netmodel.MB)
		}
		Bcast(c, tree, msg, opt)
	})
	if fused >= sequential {
		t.Fatalf("fused allreduce (%v) should beat reduce+bcast (%v)", fused, sequential)
	}
	t.Logf("fused %v vs sequential %v", fused, sequential)
}

// TestEventScatterLive: block delivery correctness for the event-driven
// scatter across trees and roots.
func TestEventScatterLive(t *testing.T) {
	for _, n := range []int{1, 2, 5, 12} {
		for _, root := range []int{0, n / 2} {
			n, root := n, root
			t.Run(fmt.Sprintf("p%d/root%d", n, root), func(t *testing.T) {
				t.Parallel()
				blk := 5000
				full := payload(blk*n, int64(n+root))
				tree := trees.Binomial(n, root)
				w := runtime.NewWorld(n)
				var mu sync.Mutex
				chunks := map[int][]byte{}
				w.Run(func(c *runtime.Comm) {
					opt := DefaultOptions()
					opt.SegSize = 1 << 10 // force multi-segment forwarding
					var msg comm.Msg
					if c.Rank() == root {
						msg = comm.Bytes(append([]byte(nil), full...))
					} else {
						msg = comm.Sized(len(full))
					}
					mine := Scatter(c, tree, msg, opt)
					mu.Lock()
					chunks[c.Rank()] = append([]byte(nil), mine.Data...)
					mu.Unlock()
				})
				for r := 0; r < n; r++ {
					if !bytes.Equal(chunks[r], full[r*blk:(r+1)*blk]) {
						t.Fatalf("rank %d received the wrong block", r)
					}
				}
			})
		}
	}
}

// TestEventGatherLive: the gather reassembles rank-ordered data at the
// root for various trees.
func TestEventGatherLive(t *testing.T) {
	for _, b := range trees.Builders() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			const n, blk = 9, 3000
			tree := b.Build(n, 2)
			w := runtime.NewWorld(n)
			var got []byte
			var mu sync.Mutex
			w.Run(func(c *runtime.Comm) {
				opt := DefaultOptions()
				opt.SegSize = 1 << 10
				mine := payload(blk, int64(c.Rank()*11))
				out := Gather(c, tree, comm.Bytes(mine), opt)
				if c.Rank() == 2 {
					mu.Lock()
					got = out.Data
					mu.Unlock()
				}
			})
			var want []byte
			for r := 0; r < n; r++ {
				want = append(want, payload(blk, int64(r*11))...)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("gathered buffer is not rank-ordered input")
			}
		})
	}
}

// Scatter then gather over the same tree is the identity.
func TestEventScatterGatherRoundTrip(t *testing.T) {
	const n, blk = 7, 2048
	tree := trees.Kary(3)(n, 0)
	full := payload(blk*n, 99)
	w := runtime.NewWorld(n)
	var got []byte
	var mu sync.Mutex
	w.Run(func(c *runtime.Comm) {
		opt := DefaultOptions()
		opt.SegSize = 512
		var msg comm.Msg
		if c.Rank() == 0 {
			msg = comm.Bytes(append([]byte(nil), full...))
		} else {
			msg = comm.Sized(len(full))
		}
		mine := Scatter(c, tree, msg, opt)
		opt2 := opt
		opt2.Seq = 1
		out := Gather(c, tree, mine, opt2)
		if c.Rank() == 0 {
			mu.Lock()
			got = out.Data
			mu.Unlock()
		}
	})
	if !bytes.Equal(got, full) {
		t.Fatal("gather(scatter(x)) != x")
	}
}

// TestEventAllgatherLive: every rank assembles the rank-ordered blocks.
func TestEventAllgatherLive(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8} {
		n := n
		t.Run(fmt.Sprintf("p%d", n), func(t *testing.T) {
			t.Parallel()
			const blk = 4096
			w := runtime.NewWorld(n)
			var mu sync.Mutex
			results := map[int][]byte{}
			w.Run(func(c *runtime.Comm) {
				opt := DefaultOptions()
				opt.SegSize = 1 << 10
				mine := payload(blk, int64(c.Rank()*7+1))
				out := Allgather(c, comm.Bytes(mine), opt)
				mu.Lock()
				results[c.Rank()] = out.Data
				mu.Unlock()
			})
			var want []byte
			for r := 0; r < n; r++ {
				want = append(want, payload(blk, int64(r*7+1))...)
			}
			for r := 0; r < n; r++ {
				if !bytes.Equal(results[r], want) {
					t.Fatalf("rank %d allgather mismatch", r)
				}
			}
		})
	}
}

// TestEventAlltoallLive: rank r's output block s equals rank s's input
// block r.
func TestEventAlltoallLive(t *testing.T) {
	for _, n := range []int{1, 2, 5, 10} {
		n := n
		t.Run(fmt.Sprintf("p%d", n), func(t *testing.T) {
			t.Parallel()
			const blk = 1000
			mkInput := func(rank int) []byte {
				buf := make([]byte, blk*n)
				for d := 0; d < n; d++ {
					copy(buf[d*blk:], payload(blk, int64(rank*1000+d)))
				}
				return buf
			}
			w := runtime.NewWorld(n)
			var mu sync.Mutex
			results := map[int][]byte{}
			w.Run(func(c *runtime.Comm) {
				out := Alltoall(c, comm.Bytes(mkInput(c.Rank())), DefaultOptions())
				mu.Lock()
				results[c.Rank()] = out.Data
				mu.Unlock()
			})
			for r := 0; r < n; r++ {
				for s := 0; s < n; s++ {
					want := payload(blk, int64(s*1000+r))
					if !bytes.Equal(results[r][s*blk:(s+1)*blk], want) {
						t.Fatalf("rank %d block %d wrong", r, s)
					}
				}
			}
		})
	}
}

// The extended collectives also run elided at simulator scale.
func TestExtendedCollectivesSimScale(t *testing.T) {
	p := netmodel.Cori(2) // 64 ranks
	n := p.Topo.Size()
	tree := trees.Topology(p.Topo, 0, trees.ChainConfig())
	end := runSim(t, p, noise.None, func(c *simmpi.Comm) {
		opt := DefaultOptions()
		Scatter(c, tree, comm.Sized(64*n*netmodel.KB), opt)
		opt.Seq = 1
		Gather(c, tree, comm.Sized(64*netmodel.KB), opt)
		opt.Seq = 2
		Allgather(c, comm.Sized(64*netmodel.KB), opt)
		opt.Seq = 3
		Alltoall(c, comm.Sized(int(n)*8*netmodel.KB), opt)
		opt.Seq = 4
		Allreduce(c, tree, comm.Sized(1*netmodel.MB), opt)
	})
	if end <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	t.Logf("five extended collectives over %d simulated ranks: %v", n, end)
}

// Determinism of the extended collectives on the simulator.
func TestExtendedCollectivesDeterministic(t *testing.T) {
	p := netmodel.Cori(1)
	run := func() int64 {
		return int64(runSim(t, p, noise.Percent(5), func(c *simmpi.Comm) {
			opt := DefaultOptions()
			Allreduce(c, trees.Topology(p.Topo, 0, trees.ChainConfig()), comm.Sized(2*netmodel.MB), opt)
			opt.Seq = 1
			Alltoall(c, comm.Sized(c.Size()*32*netmodel.KB), opt)
		}))
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %d vs %d", a, b)
	}
}
