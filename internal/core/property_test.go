package core

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"adapt/internal/comm"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
	"adapt/internal/runtime"
	"adapt/internal/simmpi"
	"adapt/internal/trees"
)

// Property: for ANY tree shape, rank count, root, payload, segment size
// and window pair, the event-driven broadcast delivers the exact payload
// to every rank on the live runtime.
func TestBcastPropertyLive(t *testing.T) {
	builders := trees.Builders()
	f := func(sizeSeed, rootSeed, builderSeed uint8, segSeed uint16, winSeed uint8, payloadSeed int64) bool {
		n := int(sizeSeed)%14 + 1
		root := int(rootSeed) % n
		b := builders[int(builderSeed)%len(builders)]
		segSize := int(segSeed)%8192 + 1
		N := int(winSeed)%3 + 1
		M := N + int(winSeed/16)%3
		want := payload(int(segSeed)%20000, payloadSeed)

		tree := b.Build(n, root)
		w := runtime.NewWorld(n)
		var mu sync.Mutex
		ok := true
		w.Run(func(c *runtime.Comm) {
			opt := Options{SegSize: segSize, SendWindow: N, RecvWindow: M}
			var msg comm.Msg
			if c.Rank() == root {
				msg = comm.Bytes(append([]byte(nil), want...))
			} else {
				msg = comm.Sized(len(want))
			}
			out := Bcast(c, tree, msg, opt)
			mu.Lock()
			if len(want) > 0 && !bytes.Equal(out.Data, want) {
				ok = false
			}
			mu.Unlock()
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(21))}); err != nil {
		t.Fatal(err)
	}
}

// Property: reduce computes the exact int64 sum for any tree and
// segmentation on the live runtime.
func TestReducePropertyLive(t *testing.T) {
	builders := trees.Builders()
	f := func(sizeSeed, builderSeed uint8, segSeed uint16, elemSeed uint8) bool {
		n := int(sizeSeed)%12 + 1
		b := builders[int(builderSeed)%len(builders)]
		segSize := (int(segSeed)%512 + 1) * 8 // multiple of element size
		ne := int(elemSeed)%300 + 1

		tree := b.Build(n, 0)
		w := runtime.NewWorld(n)
		var mu sync.Mutex
		var got []int64
		w.Run(func(c *runtime.Comm) {
			vals := make([]int64, ne)
			for i := range vals {
				vals[i] = int64((c.Rank() + 1) * (i + 3))
			}
			opt := Options{SegSize: segSize, SendWindow: 2, RecvWindow: 4,
				Op: comm.OpSum, Datatype: comm.Int64}
			out := Reduce(c, tree, comm.Bytes(comm.EncodeInt64s(vals)), opt)
			if c.Rank() == 0 {
				mu.Lock()
				got = comm.DecodeInt64s(out.Data)
				mu.Unlock()
			}
		})
		for i := 0; i < ne; i++ {
			want := int64(0)
			for r := 0; r < n; r++ {
				want += int64((r + 1) * (i + 3))
			}
			if got[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(22))}); err != nil {
		t.Fatal(err)
	}
}

// Failure injection: a rank that stalls mid-collective (simulated compute
// burst) must not change the delivered bytes, only the timing.
func TestBcastDelayedRankStillCorrect(t *testing.T) {
	p := netmodel.Cori(1)
	tree := trees.Topology(p.Topo, 0, trees.ChainConfig())
	want := payload(80_000, 5)
	results := map[int][]byte{}
	quietEnd := runSim(t, p, noise.None, func(c *simmpi.Comm) {
		bcastWithStall(c, tree, want, results, -1)
	})
	resultsStall := map[int][]byte{}
	stallEnd := runSim(t, p, noise.None, func(c *simmpi.Comm) {
		bcastWithStall(c, tree, want, resultsStall, 7)
	})
	for r := 0; r < p.Topo.Size(); r++ {
		if !bytes.Equal(results[r], want) || !bytes.Equal(resultsStall[r], want) {
			t.Fatalf("rank %d corrupted", r)
		}
	}
	if stallEnd <= quietEnd {
		t.Fatalf("stall did not cost time: %v vs %v", stallEnd, quietEnd)
	}
}

func bcastWithStall(c *simmpi.Comm, tree *trees.Tree, want []byte, results map[int][]byte, stallRank int) {
	if c.Rank() == stallRank {
		c.ComputeFor(3 * time.Millisecond)
	}
	opt := DefaultOptions()
	opt.SegSize = 16 << 10
	var msg comm.Msg
	if c.Rank() == 0 {
		msg = comm.Bytes(append([]byte(nil), want...))
	} else {
		msg = comm.Sized(len(want))
	}
	out := Bcast(c, tree, msg, opt)
	results[c.Rank()] = out.Data
}

// Failure injection: an unexpected-message flood (receiver posts its
// receives long after dozens of eager messages landed) must still match
// every message to the right tag.
func TestUnexpectedFloodStillMatches(t *testing.T) {
	p := netmodel.Cori(1)
	const msgs = 64
	ok := true
	runSim(t, p, noise.None, func(c *simmpi.Comm) {
		switch c.Rank() {
		case 0:
			for i := 0; i < msgs; i++ {
				c.Send(1, comm.MakeTag(comm.KindP2P, 0, i), comm.Bytes([]byte{byte(i)}))
			}
		case 1:
			c.ComputeFor(2 * time.Millisecond) // everything lands unexpected
			for i := msgs - 1; i >= 0; i-- {   // match in reverse order
				st := c.Recv(0, comm.MakeTag(comm.KindP2P, 0, i))
				if st.Msg.Data[0] != byte(i) {
					ok = false
				}
			}
		}
	})
	if !ok {
		t.Fatal("unexpected-queue matching returned wrong payloads")
	}
}

// Property: noise injection never changes results, only timing — the
// simulator invariant behind every noise experiment.
func TestNoiseChangesTimingNotBytes(t *testing.T) {
	p := netmodel.Cori(1)
	tree := trees.Topology(p.Topo, 0, trees.ChainConfig())
	want := payload(120_000, 6)
	run := func(spec noise.Spec) (map[int][]byte, time.Duration) {
		results := map[int][]byte{}
		end := runSim(t, p, spec, func(c *simmpi.Comm) {
			opt := DefaultOptions()
			opt.SegSize = 16 << 10
			var msg comm.Msg
			if c.Rank() == 0 {
				msg = comm.Bytes(append([]byte(nil), want...))
			} else {
				msg = comm.Sized(len(want))
			}
			out := Bcast(c, tree, msg, opt)
			results[c.Rank()] = out.Data
		})
		return results, end
	}
	quiet, tq := run(noise.None)
	noisy, tn := run(noise.Uniform(2000, 500*time.Microsecond))
	if tn <= tq {
		t.Fatalf("noise did not slow the run: %v vs %v", tn, tq)
	}
	for r := 0; r < p.Topo.Size(); r++ {
		if !bytes.Equal(quiet[r], noisy[r]) || !bytes.Equal(quiet[r], want) {
			t.Fatalf("rank %d: noise changed payload bytes", r)
		}
	}
}
