package core

import (
	"fmt"

	"adapt/internal/comm"
	"adapt/internal/trees"
)

// Event-driven scatter and gather (§2.2.3: "In the scatter phase, a
// process may send data to multiple other processes which is similar to
// the MPI_Bcast discussed above and the same technique can be applied").
//
// Both operations move per-rank blocks of equal size along a tree in
// subtree (DFS) order. The pipelines are fine-grained: a rank forwards a
// child's byte range the moment the inbound segments covering it have
// arrived, rather than waiting for its whole subtree blob — the scatter
// analogue of ADAPT's segment independence. The dependency bookkeeping is
// interval arithmetic over segment grids (segRange/coverage below).

// segRange returns the half-open range [lo, hi) of segment indexes (grid
// step segSize) that overlap the byte interval [a, b).
func segRange(a, b, segSize int) (lo, hi int) {
	if b <= a {
		return 0, 0
	}
	return a / segSize, (b + segSize - 1) / segSize
}

// subtreeOrder returns the DFS listing of rank r's subtree in t.
func subtreeOrder(t *trees.Tree, r int) []int {
	out := []int{r}
	for _, c := range t.Children[r] {
		out = append(out, subtreeOrder(t, c)...)
	}
	return out
}

type scatterState struct {
	c        comm.Comm
	t        *trees.Tree
	opt      Options
	blk      int    // bytes per rank block
	blob     []byte // subtree blob (nil when payloads elided)
	blobSize int

	// Inbound (from parent): segment grid over the subtree blob.
	inSegs      int
	inNextPost  int
	recvPending int

	// Outbound: per child, the child's byte range and its send segments.
	children    []*scatterChild
	sendPending int

	mine comm.Msg
}

type scatterChild struct {
	childStream
	start int            // child range start within my blob
	segs  []comm.Segment // child-relative segments (offsets child-local)
	deps  []int          // outstanding inbound segments per child segment
}

// Scatter distributes root's rank-ordered buffer of Size = blockSize ×
// P bytes so that rank r ends up with block r. At the root msg is the
// full buffer; elsewhere msg.Size must equal the full buffer size.
// Returns this rank's block.
func Scatter(c comm.Comm, t *trees.Tree, msg comm.Msg, opt Options) comm.Msg {
	return StartScatter(c, t, msg, opt).Wait()
}

// StartScatter begins a non-blocking event-driven scatter.
func StartScatter(c comm.Comm, t *trees.Tree, msg comm.Msg, opt Options) *Op {
	opt = opt.validate()
	n := c.Size()
	if t.Size() != n {
		panic(fmt.Sprintf("core: tree size %d != communicator size %d", t.Size(), n))
	}
	if msg.Size%n != 0 {
		panic(fmt.Sprintf("core: scatter buffer %dB not divisible by %d ranks", msg.Size, n))
	}
	end := traceStart(c, comm.KindScatter, opt, t.Root, msg.Size)
	s := newScatterState(c, t, msg, opt)
	return end(&Op{
		c:       c,
		pending: func() bool { return s.recvPending > 0 || s.sendPending > 0 },
		result:  func() comm.Msg { return s.mine },
	})
}

func newScatterState(c comm.Comm, t *trees.Tree, msg comm.Msg, opt Options) *scatterState {
	me := c.Rank()
	n := c.Size()
	blk := msg.Size / n
	order := subtreeOrder(t, me)
	s := &scatterState{c: c, t: t, opt: opt, blk: blk, blobSize: blk * len(order)}

	// Lay out children ranges: [my block][child0 subtree][child1 subtree]…
	off := blk
	for _, ch := range t.Children[me] {
		span := blk * len(subtreeOrder(t, ch))
		sc := &scatterChild{childStream: *newChildStream(ch), start: off}
		sc.segs = comm.Segments(comm.Msg{Size: span, Space: msg.Space}, opt.SegSize)
		sc.deps = make([]int, len(sc.segs))
		s.children = append(s.children, sc)
		s.sendPending += len(sc.segs)
		off += span
	}

	s.inSegs = comm.NumSegments(s.blobSize, opt.SegSize)
	if me == t.Root {
		// Permute the rank-ordered input into subtree order, once.
		if msg.Data != nil {
			s.blob = make([]byte, s.blobSize)
			for i, r := range order {
				copy(s.blob[i*blk:(i+1)*blk], msg.Data[r*blk:(r+1)*blk])
			}
		}
		// Everything is present: all child segments are ready.
		for _, sc := range s.children {
			for i := range sc.segs {
				s.releaseChildSeg(sc, i)
			}
		}
	} else {
		s.recvPending = s.inSegs
		// Dependency counts: child segment [a,b) needs inbound grid segs.
		for _, sc := range s.children {
			for i, sg := range sc.segs {
				lo, hi := segRange(sc.start+sg.Offset, sc.start+sg.Offset+sg.Msg.Size, opt.SegSize)
				sc.deps[i] = hi - lo
			}
		}
		for i := 0; i < opt.RecvWindow && s.inNextPost < s.inSegs; i++ {
			s.postRecv()
		}
	}
	s.finishMine(msg.Space)
	return s
}

// finishMine materializes this rank's own block descriptor (for the root
// it is immediately available; for others it fills in as data arrives —
// the block bytes live at blob[0:blk]).
func (s *scatterState) finishMine(space comm.MemSpace) {
	s.mine = comm.Msg{Size: s.blk, Space: space}
	if s.blob != nil {
		s.mine.Data = s.blob[:s.blk]
	}
}

func (s *scatterState) postRecv() {
	seg := s.inNextPost
	s.inNextPost++
	r := s.c.Irecv(s.t.Parent[s.c.Rank()], s.opt.TagOf(comm.KindScatter, seg))
	s.c.OnComplete(r, func(st comm.Status) { s.onInbound(seg, st) })
}

func (s *scatterState) onInbound(seg int, st comm.Status) {
	s.recvPending--
	if s.inNextPost < s.inSegs {
		s.postRecv()
	}
	if st.Msg.Data != nil {
		if s.blob == nil {
			s.blob = make([]byte, s.blobSize)
			s.finishMine(st.Msg.Space)
		}
		copy(s.blob[seg*s.opt.SegSize:], st.Msg.Data)
	}
	// Release child segments whose coverage is now complete.
	for _, sc := range s.children {
		for i, sg := range sc.segs {
			if sc.deps[i] == 0 {
				continue
			}
			gl, gh := segRange(sc.start+sg.Offset, sc.start+sg.Offset+sg.Msg.Size, s.opt.SegSize)
			if seg >= gl && seg < gh {
				sc.deps[i]--
				if sc.deps[i] == 0 {
					s.releaseChildSeg(sc, i)
				}
			}
		}
	}
}

// releaseChildSeg marks one child segment ready in its stream.
func (s *scatterState) releaseChildSeg(sc *scatterChild, i int) {
	sg := sc.segs[i]
	if s.blob != nil {
		sg.Msg.Data = s.blob[sc.start+sg.Offset : sc.start+sg.Offset+sg.Msg.Size]
	}
	sc.offer(i, sg.Msg)
	s.pump(sc)
}

func (s *scatterState) pump(sc *scatterChild) {
	sc.pump(s.c, s.opt.SendWindow,
		func(idx int) comm.Tag { return s.opt.TagOf(comm.KindScatter, idx) },
		func() { s.sendPending-- })
}
