// Package imb is an Intel-MPI-Benchmarks-style measurement driver for the
// simulated substrate: warm-up repetitions, a barrier-fenced timed region,
// and the average per-operation time across repetitions — the protocol
// behind every number in the paper's §5.
package imb

import (
	"fmt"
	"time"

	"adapt/internal/coll"
	"adapt/internal/comm"
	"adapt/internal/libmodel"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
	"adapt/internal/sim"
	"adapt/internal/simmpi"
	"adapt/internal/trace"
)

// Op selects the measured collective.
type Op int

const (
	Bcast Op = iota
	Reduce
)

func (o Op) String() string {
	if o == Bcast {
		return "Broadcast"
	}
	return "Reduce"
}

// Config is one measurement cell.
type Config struct {
	Platform *netmodel.Platform
	Noise    noise.Spec
	Library  libmodel.Library
	Op       Op
	Size     int // message bytes
	Root     int
	Warmup   int
	Reps     int
	// Trace, when non-nil, captures the cell's causal event trace
	// (attached to the simulated world before Spawn).
	Trace *trace.Buffer
}

// DefaultReps picks repetition counts that keep the event count sane for
// big simulations while still averaging out noise phase effects.
func DefaultReps(size int) (warmup, reps int) {
	switch {
	case size >= 8<<20:
		return 1, 3
	case size >= 1<<20:
		return 1, 4
	default:
		return 2, 6
	}
}

// Measure runs the cell on a fresh simulated world and returns the
// average per-operation time.
func Measure(cfg Config) time.Duration {
	if cfg.Reps <= 0 {
		cfg.Warmup, cfg.Reps = DefaultReps(cfg.Size)
	}
	k := sim.New()
	w := simmpi.NewWorld(k, cfg.Platform, cfg.Noise)
	w.Trace = cfg.Trace
	var t0, t1 time.Duration
	w.Spawn(func(c *simmpi.Comm) {
		seq := 0
		one := func() {
			msg := comm.Sized(cfg.Size)
			switch cfg.Op {
			case Bcast:
				cfg.Library.Bcast(c, cfg.Root, msg, seq)
			case Reduce:
				cfg.Library.Reduce(c, cfg.Root, msg, seq)
			}
			seq++
		}
		for i := 0; i < cfg.Warmup; i++ {
			one()
		}
		coll.Barrier(c, 1000)
		if c.Rank() == 0 {
			t0 = c.Now()
		}
		for i := 0; i < cfg.Reps; i++ {
			one()
		}
		coll.Barrier(c, 1001)
		if c.Rank() == 0 {
			t1 = c.Now()
		}
	})
	if _, err := k.Run(); err != nil {
		panic(fmt.Sprintf("imb: %s/%s/%dB on %s: %v",
			cfg.Library.Name, cfg.Op, cfg.Size, cfg.Platform.Name, err))
	}
	return (t1 - t0) / time.Duration(cfg.Reps)
}

// MeasureSet measures one (op, size) across a set of libraries.
func MeasureSet(p *netmodel.Platform, spec noise.Spec, libs []libmodel.Library, op Op, size int) []time.Duration {
	out := make([]time.Duration, len(libs))
	for i, lib := range libs {
		out[i] = Measure(Config{Platform: p, Noise: spec, Library: lib, Op: op, Size: size})
	}
	return out
}
