package imb

import (
	"testing"
	"time"

	"adapt/internal/libmodel"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
)

func TestMeasureBasic(t *testing.T) {
	p := netmodel.Cori(2) // 64 ranks
	lib := libmodel.OMPIAdapt(p)
	got := Measure(Config{Platform: p, Noise: noise.None, Library: lib, Op: Bcast, Size: 1 * netmodel.MB})
	if got <= 0 || got > 100*time.Millisecond {
		t.Fatalf("implausible average %v", got)
	}
}

func TestMeasureDeterministic(t *testing.T) {
	p := netmodel.Cori(2)
	cfg := Config{Platform: p, Noise: noise.Percent(5), Library: libmodel.OMPIAdapt(p), Op: Reduce, Size: 512 * netmodel.KB}
	if a, b := Measure(cfg), Measure(cfg); a != b {
		t.Fatalf("non-deterministic measurement: %v vs %v", a, b)
	}
}

func TestMeasureSetOrdering(t *testing.T) {
	p := netmodel.Cori(2)
	libs := []libmodel.Library{libmodel.OMPIAdapt(p), libmodel.MVAPICH(p)}
	ts := MeasureSet(p, noise.None, libs, Bcast, 2*netmodel.MB)
	if len(ts) != 2 {
		t.Fatalf("got %d results", len(ts))
	}
	// ADAPT's topology-aware pipeline must beat the blocking binomial for
	// large messages — the paper's headline.
	if ts[0] >= ts[1] {
		t.Fatalf("ADAPT (%v) should beat blocking MVAPICH proxy (%v) at 2MB", ts[0], ts[1])
	}
}

func TestDefaultReps(t *testing.T) {
	for _, c := range []struct {
		size         int
		wantW, wantR int
	}{{64 * netmodel.KB, 2, 6}, {4 * netmodel.MB, 1, 4}, {32 * netmodel.MB, 1, 3}} {
		w, r := DefaultReps(c.size)
		if w != c.wantW || r != c.wantR {
			t.Errorf("DefaultReps(%d) = (%d,%d), want (%d,%d)", c.size, w, r, c.wantW, c.wantR)
		}
	}
}

func TestReduceMeasureRuns(t *testing.T) {
	p := netmodel.Stampede2(1) // 48 ranks
	for _, lib := range libmodel.CPULibraries(p) {
		got := Measure(Config{Platform: p, Noise: noise.None, Library: lib, Op: Reduce, Size: 256 * netmodel.KB})
		if got <= 0 || got > time.Second {
			t.Errorf("%s: implausible %v", lib.Name, got)
		}
	}
}

func TestMeasureStats(t *testing.T) {
	p := netmodel.Cori(1)
	cfg := Config{Platform: p, Noise: noise.None, Library: libmodel.OMPIAdapt(p),
		Op: Bcast, Size: 256 * netmodel.KB, Warmup: 1, Reps: 4}
	st := MeasureStats(cfg)
	if len(st.PerRep) != 4 {
		t.Fatalf("got %d reps, want 4", len(st.PerRep))
	}
	if st.Min <= 0 || st.Min > st.Avg || st.Avg > st.Max {
		t.Fatalf("stats out of order: %s", st)
	}
	if s := st.String(); s == "" {
		t.Fatal("empty stats string")
	}
	// With noise the spread must widen (max/min ratio grows).
	spec := noise.Uniform(2000, 500*time.Microsecond)
	cfgN := cfg
	cfgN.Noise = spec
	stN := MeasureStats(cfgN)
	if stN.Max <= st.Max {
		t.Fatalf("noise did not widen the per-rep max: %v vs %v", stN.Max, st.Max)
	}
	if Bcast.String() != "Broadcast" || Reduce.String() != "Reduce" {
		t.Fatal("op names wrong")
	}
}
