package imb

import (
	"fmt"
	"time"

	"adapt/internal/coll"
	"adapt/internal/comm"
	"adapt/internal/sim"
	"adapt/internal/simmpi"
)

// Stats is the IMB-style per-cell summary: each repetition is fenced by
// barriers and timed separately, then min/avg/max are reported (the
// t_min/t_avg/t_max columns of the real Intel MPI Benchmarks). Unlike
// Measure — which times an unfenced repetition train, amortizing noise
// the way the paper's figures do — MeasureStats exposes the per-operation
// spread, which is what noise widens.
type Stats struct {
	Min, Avg, Max time.Duration
	PerRep        []time.Duration
}

func (s Stats) String() string {
	return fmt.Sprintf("min %v / avg %v / max %v over %d reps",
		s.Min.Round(time.Microsecond), s.Avg.Round(time.Microsecond),
		s.Max.Round(time.Microsecond), len(s.PerRep))
}

// MeasureStats runs the cell with a barrier between repetitions and
// returns the per-repetition timing distribution.
func MeasureStats(cfg Config) Stats {
	if cfg.Reps <= 0 {
		cfg.Warmup, cfg.Reps = DefaultReps(cfg.Size)
	}
	k := sim.New()
	w := simmpi.NewWorld(k, cfg.Platform, cfg.Noise)
	marks := make([]time.Duration, 0, cfg.Reps+1)
	w.Spawn(func(c *simmpi.Comm) {
		seq := 0
		one := func() {
			msg := comm.Sized(cfg.Size)
			switch cfg.Op {
			case Bcast:
				cfg.Library.Bcast(c, cfg.Root, msg, seq)
			case Reduce:
				cfg.Library.Reduce(c, cfg.Root, msg, seq)
			}
			seq++
		}
		for i := 0; i < cfg.Warmup; i++ {
			one()
		}
		coll.Barrier(c, 2000)
		if c.Rank() == 0 {
			marks = append(marks, c.Now())
		}
		for i := 0; i < cfg.Reps; i++ {
			one()
			coll.Barrier(c, 2001+i)
			if c.Rank() == 0 {
				marks = append(marks, c.Now())
			}
		}
	})
	if _, err := k.Run(); err != nil {
		panic(fmt.Sprintf("imb: %s/%s/%dB stats on %s: %v",
			cfg.Library.Name, cfg.Op, cfg.Size, cfg.Platform.Name, err))
	}
	st := Stats{Min: 1<<63 - 1}
	var total time.Duration
	for i := 1; i < len(marks); i++ {
		d := marks[i] - marks[i-1]
		st.PerRep = append(st.PerRep, d)
		total += d
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
	}
	if len(st.PerRep) > 0 {
		st.Avg = total / time.Duration(len(st.PerRep))
	} else {
		st.Min = 0
	}
	return st
}
