package faults

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"adapt/internal/comm"
)

func TestScopeMatches(t *testing.T) {
	cases := []struct {
		s        Scope
		src, dst int
		want     bool
	}{
		{All(), 0, 1, true},
		{All(), 5, 5, true},
		{Rank(2), 2, 7, true},
		{Rank(2), 7, 2, true},
		{Rank(2), 3, 4, false},
		{Link(0, 1), 0, 1, true},
		{Link(0, 1), 1, 0, false},
		{Link(0, 1), 0, 2, false},
	}
	for _, tc := range cases {
		if got := tc.s.Matches(tc.src, tc.dst); got != tc.want {
			t.Errorf("%s.Matches(%d,%d) = %v, want %v", tc.s, tc.src, tc.dst, got, tc.want)
		}
	}
}

// Verdicts must be a pure function of (plan, identity): two injectors over
// the same plan agree on every decision, and the decision ignores "now"
// except for After gating.
func TestVerdictDeterminism(t *testing.T) {
	plan := Plan{Seed: 42, Rules: []Rule{
		{Scope: All(), DropProb: 0.3, DupProb: 0.2, Jitter: 40 * time.Microsecond},
		{Scope: Link(1, 2), DropProb: 0.5},
	}}
	a, b := NewInjector(plan), NewInjector(plan)
	for id := uint64(1); id < 200; id++ {
		src, dst := int(id%4), int((id+1)%4)
		tag := comm.MakeTag(comm.KindBcast, int(id%7), int(id%5))
		for attempt := 0; attempt < 3; attempt++ {
			va := a.Message(src, dst, tag, id, attempt, time.Microsecond, 100)
			vb := b.Message(src, dst, tag, id, attempt, 999*time.Millisecond, 100)
			if va != vb {
				t.Fatalf("id %d attempt %d: verdicts diverge: %+v vs %+v", id, attempt, va, vb)
			}
			if a.AckDrop(dst, src, tag, id, attempt, 0) != b.AckDrop(dst, src, tag, id, attempt, time.Second) {
				t.Fatalf("id %d attempt %d: ack verdicts diverge", id, attempt)
			}
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverge: %v vs %v", a.Stats(), b.Stats())
	}
	if a.Stats().Total() == 0 {
		t.Fatal("plan with drop=0.3 injected nothing over 600 attempts")
	}
}

// Different attempts of the same message must draw fresh verdicts, or
// retransmission could never recover from a probabilistic drop.
func TestVerdictVariesByAttempt(t *testing.T) {
	in := NewInjector(Plan{Seed: 7, Rules: []Rule{{Scope: All(), DropProb: 0.5}}})
	tag := comm.MakeTag(comm.KindReduce, 0, 0)
	varied := false
	for id := uint64(1); id < 50 && !varied; id++ {
		v0 := in.Message(0, 1, tag, id, 0, 0, 10)
		v1 := in.Message(0, 1, tag, id, 1, 0, 10)
		varied = v0.Drop != v1.Drop
	}
	if !varied {
		t.Fatal("50 messages, attempts 0 and 1 always agreed on drop at p=0.5")
	}
}

func TestAfterGatesRule(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, Rules: []Rule{
		{Scope: All(), Delay: 50 * time.Microsecond, After: time.Millisecond},
	}})
	tag := comm.MakeTag(comm.KindBcast, 0, 0)
	if v := in.Message(0, 1, tag, 1, 0, 0, 10); v.Extra != 0 {
		t.Fatalf("rule applied before After: %+v", v)
	}
	if v := in.Message(0, 1, tag, 1, 0, 2*time.Millisecond, 10); v.Extra != 50*time.Microsecond {
		t.Fatalf("rule not applied after After: %+v", v)
	}
}

func TestDropSubsumesOtherEffects(t *testing.T) {
	in := NewInjector(Plan{Seed: 3, Rules: []Rule{
		{Scope: All(), DropProb: 1, DupProb: 1, Delay: time.Millisecond},
	}})
	v := in.Message(0, 1, comm.MakeTag(comm.KindBcast, 0, 0), 1, 0, 0, 10)
	if !v.Drop || v.Dup || v.Extra != 0 {
		t.Fatalf("dropped attempt should carry no dup/delay: %+v", v)
	}
	st := in.Stats()
	if st.Drops != 1 || st.Dups != 0 || st.Delays != 0 {
		t.Fatalf("stats: %v", st)
	}
}

func TestSlowBwChargesBySize(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, Rules: []Rule{{Scope: All(), SlowBw: 1e6}}}) // 1 MB/s
	tag := comm.MakeTag(comm.KindBcast, 0, 0)
	v := in.Message(0, 1, tag, 1, 0, 0, 1000) // 1000 B at 1 MB/s = 1ms
	if v.Extra != time.Millisecond {
		t.Fatalf("slow-bandwidth charge = %v, want 1ms", v.Extra)
	}
}

func TestRecoveryTimeout(t *testing.T) {
	r := Recovery{RTO: 100 * time.Microsecond, Backoff: 2, MaxAttempts: 20}
	want := []time.Duration{
		100 * time.Microsecond, 200 * time.Microsecond, 400 * time.Microsecond,
		800 * time.Microsecond, 1600 * time.Microsecond,
	}
	for i, w := range want {
		if got := r.Timeout(i); got != w {
			t.Errorf("Timeout(%d) = %v, want %v", i, got, w)
		}
	}
	if got := r.Timeout(50); got != 64*r.RTO {
		t.Errorf("deep retry timeout = %v, want cap %v", got, 64*r.RTO)
	}
}

func TestRecoveryNormalized(t *testing.T) {
	n := Recovery{}.Normalized()
	if n != DefaultRecovery() {
		t.Fatalf("zero Recovery normalized to %+v, want defaults", n)
	}
	keep := Recovery{RTO: time.Millisecond, Backoff: 3, MaxAttempts: 2,
		SuspectAfter: 4 * time.Millisecond, ConfirmAfter: 9 * time.Millisecond}
	if keep.Normalized() != keep {
		t.Fatal("explicit Recovery fields were overwritten")
	}
	// Detector leases left zero scale with an overridden RTO.
	scaled := Recovery{RTO: time.Millisecond}.Normalized()
	if scaled.SuspectAfter != 8*time.Millisecond || scaled.ConfirmAfter != 16*time.Millisecond {
		t.Fatalf("scaled leases = %v/%v, want 8ms/16ms", scaled.SuspectAfter, scaled.ConfirmAfter)
	}
}

// TestRecoveryTimeoutCapBoundary pins the backoff behaviour at the 64×RTO
// ceiling: the last uncapped attempt, the attempt whose walk lands exactly
// on the cap, and the attempt one past it must all be distinguishable.
func TestRecoveryTimeoutCapBoundary(t *testing.T) {
	r := Recovery{RTO: 100 * time.Microsecond, Backoff: 2, MaxAttempts: 10}
	if got := r.Timeout(5); got != 32*r.RTO {
		t.Errorf("last uncapped attempt: Timeout(5) = %v, want %v", got, 32*r.RTO)
	}
	// 2^6 = 64: the doubling walk exhausts the budget exactly at the cap.
	if got := r.Timeout(6); got != 64*r.RTO {
		t.Errorf("exact-cap attempt: Timeout(6) = %v, want %v", got, 64*r.RTO)
	}
	// One attempt past the boundary stays pinned at the cap.
	if got := r.Timeout(7); got != 64*r.RTO {
		t.Errorf("past-cap attempt: Timeout(7) = %v, want %v", got, 64*r.RTO)
	}
	// A walk that overshoots the cap mid-step (3^4 = 81 > 64) must clamp
	// to exactly 64×RTO, not carry the overshoot.
	over := Recovery{RTO: 100 * time.Microsecond, Backoff: 3, MaxAttempts: 10}
	if got := over.Timeout(4); got != 64*over.RTO {
		t.Errorf("overshooting walk: Timeout(4) = %v, want clamp to %v", got, 64*over.RTO)
	}
}

func TestTimeoutErrorNamesEdgeAndSegment(t *testing.T) {
	err := &TimeoutError{
		Rank: 3, Peer: 5, Tag: comm.MakeTag(comm.KindAllreduce, 12, 4),
		Attempts: 10, Elapsed: 3 * time.Millisecond,
	}
	if err.Segment() != 4 {
		t.Fatalf("Segment() = %d", err.Segment())
	}
	msg := err.Error()
	for _, want := range []string{"rank 3 -> 5", "allreduce", "seq 12", "segment 4", "10 attempts"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	bad := []Plan{
		{Rules: []Rule{{Scope: All(), DropProb: 1.5}}},
		{Rules: []Rule{{Scope: All(), DupProb: -0.1}}},
		{Rules: []Rule{{Scope: All(), Delay: -time.Second}}},
		{Rules: []Rule{{Scope: All(), SlowBw: -1}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d validated", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("NewInjector accepted an invalid plan")
		}
	}()
	NewInjector(bad[0])
}

func TestEnabled(t *testing.T) {
	if (Plan{Seed: 9}).Enabled() {
		t.Error("empty plan enabled")
	}
	if (Plan{Rules: []Rule{{Scope: All()}}}).Enabled() {
		t.Error("no-effect rule enabled")
	}
	if !(Plan{Rules: []Rule{{Scope: All(), DropProb: 0.1}}}).Enabled() {
		t.Error("drop rule not enabled")
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"seed=42",
		"seed=42; all: drop=0.1, jitter=30µs",
		"seed=5; all: corrupt=0.2; link 1->2: drop=0.1, corrupt=0.05, jitter=10µs",
		"seed=-7; link 0->1: drop=1, after=1ms; rank 2: delay=100µs@0.25, slow=1e+09",
		"seed=0; all: dup=0.5; link 3->0: drop=0.25, delay=1ms",
	}
	for _, s := range cases {
		p, err := ParsePlan(s)
		if err != nil {
			t.Errorf("ParsePlan(%q): %v", s, err)
			continue
		}
		if got := p.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

// Canonical form is a fixed point: parse(render(p)).render == render(p)
// for arbitrary generated plans.
func TestStringCanonicalFixedPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		p := RandomPlan(rng, 8)
		s := p.String()
		q, err := ParsePlan(s)
		if err != nil {
			t.Fatalf("plan %d: rendered form %q does not parse: %v", i, s, err)
		}
		if again := q.String(); again != s {
			t.Fatalf("plan %d: canonical form unstable:\n%q\n%q", i, s, again)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"seed=x",
		"nonsense",
		"moon 3: drop=1",
		"all: drip=1",
		"all: drop=2",
		"all: delay=fast",
		"link 0: drop=1",
		"rank two: drop=1",
		"all: drop",
	}
	for _, s := range bad {
		if _, err := ParsePlan(s); err == nil {
			t.Errorf("ParsePlan(%q) accepted", s)
		}
	}
}

func TestCrashParseRoundTrip(t *testing.T) {
	cases := []string{
		"seed=1; crash@3",
		"seed=7; crash@2:after5",
		"seed=11; all: drop=0.1; crash@0; crash@4:after12",
	}
	for _, s := range cases {
		p, err := ParsePlan(s)
		if err != nil {
			t.Errorf("ParsePlan(%q): %v", s, err)
			continue
		}
		if got := p.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestCrashParseAndValidateErrors(t *testing.T) {
	bad := []string{
		"crash@",
		"crash@x",
		"crash@2:later5",
		"crash@2:afterK",
		"crash@-1",            // negative rank
		"crash@2:after-3",     // negative send count
		"crash@2; crash@2",    // duplicate target rank
		"crash@5; crash@5:after3",
	}
	for _, s := range bad {
		if _, err := ParsePlan(s); err == nil {
			t.Errorf("ParsePlan(%q) accepted", s)
		}
	}
}

func TestCrashPlanSemantics(t *testing.T) {
	p := MustParsePlan("seed=1; crash@2:after4; crash@5")
	if !p.Enabled() {
		t.Error("crash-only plan not enabled")
	}
	if len(p.Rules) != 0 {
		t.Errorf("crash statements produced %d message rules", len(p.Rules))
	}
	if k, ok := p.CrashAt(2); !ok || k != 4 {
		t.Errorf("CrashAt(2) = %d,%v, want 4,true", k, ok)
	}
	if k, ok := p.CrashAt(5); !ok || k != 0 {
		t.Errorf("CrashAt(5) = %d,%v, want 0,true", k, ok)
	}
	if _, ok := p.CrashAt(0); ok {
		t.Error("CrashAt(0) reported a schedule for an untargeted rank")
	}
}

func TestRandomPlanConvergesUnderDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		p := RandomPlan(rng, 6)
		if err := p.Validate(); err != nil {
			t.Fatalf("RandomPlan produced invalid plan: %v", err)
		}
		for _, r := range p.Rules {
			if r.DropProb > 0.35 {
				t.Fatalf("RandomPlan drop %g exceeds recovery budget", r.DropProb)
			}
		}
	}
}

// Corrupt verdicts are a distinct, counted flavor of loss: deterministic
// per identity, suppressing dup on the same attempt, never co-occurring
// with a drop verdict (the drop wins), and treated as ack loss on the
// reverse link.
func TestCorruptVerdicts(t *testing.T) {
	p := MustParsePlan("seed=17; all: corrupt=0.5")
	in := NewInjector(p)
	sawCorrupt, sawClean := false, false
	for id := uint64(1); id <= 64; id++ {
		v := in.Message(0, 1, comm.MakeTag(comm.KindBcast, 1, int(id)), id, 0, 0, 256)
		if v.Drop {
			t.Fatal("corrupt-only plan produced a drop verdict")
		}
		if v.Corrupt {
			sawCorrupt = true
			if v.Dup {
				t.Fatal("corrupt verdict kept its dup")
			}
		} else {
			sawClean = true
		}
		again := in.Message(0, 1, comm.MakeTag(comm.KindBcast, 1, int(id)), id, 0, 0, 256)
		if again.Corrupt != v.Corrupt {
			t.Fatal("corrupt verdict not deterministic per identity")
		}
	}
	if !sawCorrupt || !sawClean {
		t.Fatalf("corrupt=0.5 over 64 draws: corrupt=%v clean=%v", sawCorrupt, sawClean)
	}
	if st := in.Stats(); st.Corrupts == 0 || st.Total() == 0 {
		t.Fatalf("stats did not count corrupts: %+v", st)
	}
	// A corrupted ack is a lost ack.
	ackLost := false
	for id := uint64(1); id <= 64; id++ {
		if in.AckDrop(1, 0, comm.MakeTag(comm.KindBcast, 1, 0), id, 0, 0) {
			ackLost = true
		}
	}
	if !ackLost {
		t.Fatal("corrupt rule never lost an ack on the reverse link")
	}
}

// Full jitter: two senders that timed out together draw different
// backoff waits (desynchronizing the retransmit storm), each wait stays
// inside [RTO, Timeout(attempt)], attempt 0 is untouched, and the whole
// schedule is reproducible from the seed.
func TestFullJitterDesynchronizesSenders(t *testing.T) {
	rec := Recovery{FullJitter: true, JitterSeed: 42}.Normalized()
	if got := rec.RetryDelay(0, 1); got != rec.RTO {
		t.Fatalf("attempt 0 delay %v, want plain RTO %v", got, rec.RTO)
	}
	// Two senders = two transmission ids, timed out on the same attempt.
	diverged := false
	for attempt := 1; attempt < 6; attempt++ {
		a := rec.RetryDelay(attempt, 101)
		b := rec.RetryDelay(attempt, 202)
		hi := rec.Timeout(attempt)
		for _, d := range []time.Duration{a, b} {
			if d < rec.RTO || d > hi {
				t.Fatalf("attempt %d: jittered delay %v outside [%v, %v]", attempt, d, rec.RTO, hi)
			}
		}
		if a != b {
			diverged = true
		}
		if again := rec.RetryDelay(attempt, 101); again != a {
			t.Fatalf("attempt %d: jittered delay not reproducible", attempt)
		}
	}
	if !diverged {
		t.Fatal("two timed-out senders never desynchronized across 5 attempts")
	}
	// Different seeds give different schedules; jitter off is the old law.
	other := rec
	other.JitterSeed = 43
	if rec.RetryDelay(3, 101) == other.RetryDelay(3, 101) {
		t.Fatal("jitter schedule ignores the seed")
	}
	plain := Recovery{}.Normalized()
	for attempt := 0; attempt < 6; attempt++ {
		if plain.RetryDelay(attempt, 7) != plain.Timeout(attempt) {
			t.Fatalf("FullJitter off: RetryDelay differs from Timeout at attempt %d", attempt)
		}
	}
}
