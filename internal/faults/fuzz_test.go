package faults

import "testing"

// FuzzParsePlan drives the plan DSL parser with arbitrary input. Accepted
// plans must validate, render canonically, and reparse to the same
// canonical form (parser/renderer agreement); everything else must be a
// clean error, never a panic.
func FuzzParsePlan(f *testing.F) {
	seeds := []string{
		"",
		"seed=42",
		"seed=42; all: drop=0.1, jitter=30us",
		"link 0->1: drop=1, after=1ms",
		"rank 2: delay=100us@0.25, slow=1e9",
		"all: dup=0.5; all: drop=0.05",
		"seed=-1; link 10->0: jitter=1ms",
		"all: drop=2",
		"moon 3: drop=1",
		"seed=9223372036854775807",
		"seed=9; crash@3",
		"crash@2:after5; crash@0",
		"crash@-1",
		"crash@2; crash@2",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePlan(s)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("accepted plan fails validation: %v (input %q)", verr, s)
		}
		canon := p.String()
		q, err := ParsePlan(canon)
		if err != nil {
			t.Fatalf("canonical form %q does not reparse: %v (input %q)", canon, err, s)
		}
		if again := q.String(); again != canon {
			t.Fatalf("canonical form unstable: %q -> %q (input %q)", canon, again, s)
		}
	})
}
