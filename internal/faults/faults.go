// Package faults is the deterministic fault-injection layer for the
// message transports. A Plan is a seeded set of per-link / per-rank /
// global rules — drop, duplicate, delay spike, reorder jitter, and
// permanent link degradation — and an Injector turns the plan into
// per-message Verdicts.
//
// Determinism: a verdict is a pure function of (seed, rule, src, dst,
// tag, message id, attempt). It does not depend on wall time, event
// interleaving, or how many other links are faulted, so the same seed
// reproduces the same fault schedule whether worlds run serially or on
// parallel workers (adaptbench -j N), and a retransmitted message draws
// a fresh, but reproducible, verdict per attempt.
//
// Recovery describes the ack/retry machinery the transports use to
// survive a plan: per-message retransmit timeouts with exponential
// backoff, bounded by a maximum attempt count. When attempts run out the
// transport fails the operation with a structured *TimeoutError naming
// the edge (rank, peer), the wire tag, and therefore the collective
// kind, sequence and lost segment.
package faults

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync/atomic"
	"time"

	"adapt/internal/comm"
	"adapt/internal/metrics"
	"adapt/internal/perf"
)

// ScopeKind selects which traffic a rule applies to.
type ScopeKind uint8

const (
	// ScopeAll matches every message.
	ScopeAll ScopeKind = iota
	// ScopeRank matches messages sent or received by rank A.
	ScopeRank
	// ScopeLink matches messages on the directed link A→B.
	ScopeLink
)

// Scope is a rule's traffic selector.
type Scope struct {
	Kind ScopeKind
	A, B int
}

// All selects every message.
func All() Scope { return Scope{Kind: ScopeAll} }

// Rank selects messages touching rank r (as sender or receiver).
func Rank(r int) Scope { return Scope{Kind: ScopeRank, A: r} }

// Link selects messages on the directed link src→dst.
func Link(src, dst int) Scope { return Scope{Kind: ScopeLink, A: src, B: dst} }

// Matches reports whether a src→dst message falls under the scope.
func (s Scope) Matches(src, dst int) bool {
	switch s.Kind {
	case ScopeAll:
		return true
	case ScopeRank:
		return src == s.A || dst == s.A
	case ScopeLink:
		return src == s.A && dst == s.B
	}
	return false
}

func (s Scope) String() string {
	switch s.Kind {
	case ScopeAll:
		return "all"
	case ScopeRank:
		return fmt.Sprintf("rank %d", s.A)
	case ScopeLink:
		return fmt.Sprintf("link %d->%d", s.A, s.B)
	}
	return fmt.Sprintf("scope(%d)", uint8(s.Kind))
}

// Rule is one fault law over the traffic its Scope selects. All matching
// rules apply to a message: drops and duplicates OR together, delays
// add. The zero effects are a no-op rule.
type Rule struct {
	Scope Scope

	// DropProb is the per-attempt probability the message is lost in
	// flight (1 = black hole; retransmissions draw fresh verdicts).
	DropProb float64
	// DupProb is the probability a second copy of the message is
	// injected (the receiver's dedup layer must suppress it).
	DupProb float64
	// CorruptProb is the per-attempt probability the payload is damaged
	// in flight (seeded bit-flips). The wire transport detects this via
	// the frame CRC and treats the frame as a drop — feeding FEC
	// reconstruction — instead of delivering garbage; the in-process
	// substrates model detection directly, so a corrupted attempt is a
	// counted, distinguishable flavor of loss.
	CorruptProb float64
	// DelayProb gates a fixed Delay spike added to the message's flight
	// time. A Delay with zero DelayProb is treated as always-on.
	DelayProb float64
	Delay     time.Duration
	// Jitter adds a uniform extra delay in [0, Jitter) to every matching
	// message — the reordering knob: two back-to-back segments on the
	// same link draw different jitters and can arrive swapped.
	Jitter time.Duration
	// After activates the rule only from this virtual time on; combined
	// with Delay/Jitter/SlowBw it models permanent link degradation that
	// sets in mid-run. Zero means always active.
	After time.Duration
	// SlowBw, when positive, charges an extra size/SlowBw serialization
	// per message — a degraded link's lost bandwidth (bytes/second).
	SlowBw float64
}

// Crash is a fail-stop rank failure: the rank halts forever the moment
// it initiates its (AfterSends+1)-th point-to-point send (Isend, Ssend
// or a commit fan-out all count as initiations). Counting send
// initiations rather than virtual time makes the crash point a pure
// function of the rank's own program order, so the same plan kills the
// rank at the same protocol step on both substrates and at any -j.
type Crash struct {
	Rank       int
	AfterSends int
}

// Plan is a seeded fault schedule: the rule set plus the seed that fixes
// every probabilistic decision, plus the deterministic crash schedule.
type Plan struct {
	Seed    int64
	Rules   []Rule
	Crashes []Crash
}

// Enabled reports whether the plan can inject anything at all.
func (p Plan) Enabled() bool {
	if len(p.Crashes) > 0 {
		return true
	}
	for _, r := range p.Rules {
		if r.DropProb > 0 || r.DupProb > 0 || r.CorruptProb > 0 || r.Delay > 0 || r.Jitter > 0 || r.SlowBw > 0 {
			return true
		}
	}
	return false
}

// CrashAt returns the crash schedule for rank r, if any.
func (p Plan) CrashAt(r int) (afterSends int, ok bool) {
	for _, cr := range p.Crashes {
		if cr.Rank == r {
			return cr.AfterSends, true
		}
	}
	return 0, false
}

// Validate rejects out-of-range probabilities and negative durations.
func (p Plan) Validate() error {
	seenCrash := map[int]bool{}
	for i, cr := range p.Crashes {
		if cr.Rank < 0 {
			return fmt.Errorf("faults: crash %d: negative rank %d", i, cr.Rank)
		}
		if cr.AfterSends < 0 {
			return fmt.Errorf("faults: crash %d (rank %d): negative send count %d", i, cr.Rank, cr.AfterSends)
		}
		if seenCrash[cr.Rank] {
			return fmt.Errorf("faults: rank %d crashed twice (duplicate crash rule)", cr.Rank)
		}
		seenCrash[cr.Rank] = true
	}
	for i, r := range p.Rules {
		for _, pr := range []struct {
			name string
			v    float64
		}{{"drop", r.DropProb}, {"dup", r.DupProb}, {"corrupt", r.CorruptProb}, {"delay", r.DelayProb}} {
			if pr.v < 0 || pr.v > 1 {
				return fmt.Errorf("faults: rule %d (%s): %s probability %g outside [0,1]", i, r.Scope, pr.name, pr.v)
			}
		}
		if r.Delay < 0 || r.Jitter < 0 || r.After < 0 {
			return fmt.Errorf("faults: rule %d (%s): negative duration", i, r.Scope)
		}
		if r.SlowBw < 0 {
			return fmt.Errorf("faults: rule %d (%s): negative slow bandwidth", i, r.Scope)
		}
	}
	return nil
}

// Recovery tunes the transports' ack/retry machinery.
type Recovery struct {
	// RTO is the base retransmit timeout: how long the sender waits for
	// an acknowledgement before re-sending (or, out of attempts, failing).
	RTO time.Duration
	// Backoff multiplies the timeout per retry (exponential backoff).
	Backoff float64
	// MaxAttempts is the total number of transmission attempts per
	// message; 1 disables retries (first unacknowledged loss fails).
	MaxAttempts int

	// SuspectAfter is the failure detector's suspicion lease: how long a
	// rank may be silent past its crash before the detector suspects it.
	// Suspicion is observable only in the detector counters — it commits
	// nothing.
	SuspectAfter time.Duration
	// ConfirmAfter is the confirmation lease: once it expires the death
	// is final, the repaired tree takes effect, and every surviving rank
	// receives a death notice. Must exceed SuspectAfter.
	ConfirmAfter time.Duration

	// FullJitter spreads the retransmit backoff: instead of the fixed
	// Timeout(attempt), each armed retry timer draws uniformly from
	// [RTO, Timeout(attempt)] — the full-jitter strategy floored at one
	// base RTO so a sender never retransmits before an ack could
	// possibly have returned. After a burst drop hits many senders at
	// once, their retransmissions desynchronize instead of re-colliding
	// every backoff epoch. Deterministic: the draw is a pure function of
	// (JitterSeed, transmission id, attempt), so the simulator replays
	// the same schedule for a given seed.
	FullJitter bool
	// JitterSeed seeds the full-jitter draws (0 is a valid seed).
	JitterSeed int64
}

// DefaultRecovery is the standard tuning: 200µs base timeout, doubling
// per retry, up to 10 attempts — enough to push per-message failure
// probability into the noise for any loss rate below ~50%. The detector
// leases are 8×/16× the base timeout: long enough that retransmission
// absorbs ordinary loss without a false suspicion, short enough that a
// crash is confirmed well before any retry budget runs dry.
func DefaultRecovery() Recovery {
	rto := 200 * time.Microsecond
	return Recovery{RTO: rto, Backoff: 2, MaxAttempts: 10,
		SuspectAfter: 8 * rto, ConfirmAfter: 16 * rto}
}

// NoRecovery disables retries: a single unacknowledged attempt produces
// a TimeoutError after one RTO. Used to prove failures are structured
// and bounded rather than hangs.
func NoRecovery() Recovery {
	r := DefaultRecovery()
	r.MaxAttempts = 1
	return r
}

// Normalized fills zero fields with the defaults. The detector leases
// scale with the (possibly overridden) RTO when left zero.
func (r Recovery) Normalized() Recovery {
	d := DefaultRecovery()
	if r.RTO <= 0 {
		r.RTO = d.RTO
	}
	if r.Backoff < 1 {
		r.Backoff = d.Backoff
	}
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = d.MaxAttempts
	}
	if r.SuspectAfter <= 0 {
		r.SuspectAfter = 8 * r.RTO
	}
	if r.ConfirmAfter <= r.SuspectAfter {
		r.ConfirmAfter = 2 * r.SuspectAfter
	}
	return r
}

// Timeout returns the retransmit timeout armed after the given attempt
// (0-based), with the backoff applied and capped at 64× the base so a
// deep retry chain stays inside bounded sim time.
func (r Recovery) Timeout(attempt int) time.Duration {
	t := float64(r.RTO)
	for i := 0; i < attempt; i++ {
		t *= r.Backoff
		if t >= 64*float64(r.RTO) {
			return 64 * r.RTO
		}
	}
	return time.Duration(t)
}

// RetryDelay returns the wait armed after the given attempt for the
// transmission with the given id: the plain capped-exponential
// Timeout(attempt) normally, or a seeded full-jitter draw from
// [RTO, Timeout(attempt)] when FullJitter is on. Attempt 0's window is
// degenerate ([RTO, RTO]), so the initial ack wait is never shortened.
func (r Recovery) RetryDelay(attempt int, id uint64) time.Duration {
	t := r.Timeout(attempt)
	if r.FullJitter && t > r.RTO {
		u := jitterUniform(r.JitterSeed, id, attempt)
		t = r.RTO + time.Duration(u*float64(t-r.RTO))
	}
	// Attempt 0 is the initial ack wait; attempt > 0 means the recovery
	// machinery is actually retransmitting — the live-telemetry signal
	// for "how hard is ARQ working right now". Determinism is untouched:
	// the delay itself never depends on the telemetry gate.
	if attempt > 0 {
		mRetryAttempt.Observe(uint64(attempt))
		mRetryDelay.ObserveDuration(t)
	}
	return t
}

// RTO/retry telemetry (DESIGN.md §15): the per-window rate and attempt
// distribution of armed retransmissions, across every substrate that
// drives recovery through RetryDelay.
var (
	mRetryAttempt = metrics.NewHistogram("adapt_fault_retry_attempt",
		"attempt number at each armed retransmission (1 = first retry)")
	mRetryDelay = metrics.NewHistogram("adapt_fault_retry_delay_ns",
		"backoff delay armed before each retransmission")
)

// jitterUniform draws a deterministic value in [0,1) from the retry's
// identity — same construction as Injector.uniform, distinct domain.
func jitterUniform(seed int64, id uint64, attempt int) float64 {
	h := fnv.New64a()
	var buf [25]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(seed) >> (8 * i))
		buf[8+i] = byte(id >> (8 * i))
		buf[16+i] = byte(uint64(attempt) >> (8 * i))
	}
	buf[24] = 'J'
	h.Write(buf[:])
	return float64(h.Sum64()&((1<<53)-1)) / (1 << 53)
}

// TimeoutError reports an unrecoverable message loss: every attempt went
// unacknowledged. It names the tree edge (Rank→Peer), the wire tag —
// and through it the collective kind, operation sequence, and segment —
// plus how long and how hard the transport tried.
type TimeoutError struct {
	Rank, Peer int
	Tag        comm.Tag
	Attempts   int
	Elapsed    time.Duration
}

// Segment returns the lost pipeline segment index.
func (e *TimeoutError) Segment() int { return e.Tag.Seg() }

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("faults: rank %d -> %d: %s seq %d segment %d lost: %d attempts unacknowledged over %v",
		e.Rank, e.Peer, e.Tag.Kind(), e.Tag.Seq(), e.Tag.Seg(), e.Attempts, e.Elapsed)
}

// RankFailedError reports that a collective cannot complete on the
// survivor set because a rank whose role is irreplaceable — the root —
// was confirmed dead. Survivors return it instead of hanging.
type RankFailedError struct {
	Rank int           // the confirmed-dead rank
	Kind comm.CollKind // the collective that depended on it
	Seq  int           // its operation sequence number
}

func (e *RankFailedError) Error() string {
	return fmt.Sprintf("faults: rank %d confirmed dead: %s seq %d cannot complete on the survivor set",
		e.Rank, e.Kind, e.Seq)
}

// Verdict is the injector's decision for one transmission attempt.
type Verdict struct {
	// Drop: the attempt vanishes in flight.
	Drop bool
	// Dup: a second copy is injected alongside the first.
	Dup bool
	// Corrupt: the attempt arrives with flipped payload bits. The wire
	// transport delivers the damaged frame and lets the CRC catch it;
	// the in-process substrates treat it as a detected loss directly.
	Corrupt bool
	// Extra is added latency (spikes, jitter, degradation).
	Extra time.Duration
}

// Stats counts what an injector (and the recovery machinery feeding it)
// did. Deterministic per world for a given seed.
type Stats struct {
	Drops      uint64 // attempts lost in flight (incl. lost acks)
	Dups       uint64 // duplicate copies injected
	Corrupts   uint64 // attempts damaged in flight (detected, not delivered)
	Delays     uint64 // messages that drew extra latency
	Retries    uint64 // retransmissions performed
	Timeouts   uint64 // messages failed after exhausting attempts
	Suppressed uint64 // duplicate arrivals discarded by the receiver
}

// Total returns the number of injected faults (not counting recovery
// actions).
func (s Stats) Total() uint64 { return s.Drops + s.Dups + s.Corrupts + s.Delays }

func (s Stats) String() string {
	return fmt.Sprintf("drops %d, dups %d, corrupts %d, delays %d, retries %d, timeouts %d, suppressed %d",
		s.Drops, s.Dups, s.Corrupts, s.Delays, s.Retries, s.Timeouts, s.Suppressed)
}

// Injector evaluates a Plan. Safe for concurrent use (the live runtime
// calls it from many rank goroutines); verdicts are pure functions, only
// the stats counters are shared state.
type Injector struct {
	plan Plan

	drops      atomic.Uint64
	dups       atomic.Uint64
	corrupts   atomic.Uint64
	delays     atomic.Uint64
	retries    atomic.Uint64
	timeouts   atomic.Uint64
	suppressed atomic.Uint64
}

// NewInjector builds an injector for the plan. The plan must Validate.
func NewInjector(p Plan) *Injector {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Injector{plan: p}
}

// Plan returns the installed plan.
func (in *Injector) Plan() Plan { return in.plan }

// uniform draws a deterministic value in [0,1) from the decision's
// identity: seed, rule index, decision salt, and message coordinates.
func (in *Injector) uniform(rule int, salt byte, src, dst int, tag comm.Tag, id uint64, attempt int) float64 {
	h := fnv.New64a()
	var buf [41]byte
	le := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			buf[off+i] = byte(v >> (8 * i))
		}
	}
	le(0, uint64(in.plan.Seed))
	le(8, uint64(src))
	le(16, uint64(dst))
	le(24, uint64(tag))
	le(32, id)
	buf[40] = salt
	h.Write(buf[:])
	var tail [9]byte
	le2 := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			tail[off+i] = byte(v >> (8 * i))
		}
	}
	le2(0, uint64(attempt))
	tail[8] = byte(rule)
	h.Write(tail[:])
	return float64(h.Sum64()&((1<<53)-1)) / (1 << 53)
}

// Message returns the verdict for one transmission attempt of a src→dst
// message. now is the current virtual (or wall) time, used only for
// After-gated rules; size feeds degraded-bandwidth charges.
func (in *Injector) Message(src, dst int, tag comm.Tag, id uint64, attempt int, now time.Duration, size int) Verdict {
	var v Verdict
	for i, r := range in.plan.Rules {
		if !r.Scope.Matches(src, dst) || now < r.After {
			continue
		}
		if r.DropProb > 0 && in.uniform(i, 'd', src, dst, tag, id, attempt) < r.DropProb {
			v.Drop = true
		}
		if r.DupProb > 0 && in.uniform(i, '2', src, dst, tag, id, attempt) < r.DupProb {
			v.Dup = true
		}
		if r.CorruptProb > 0 && in.uniform(i, 'c', src, dst, tag, id, attempt) < r.CorruptProb {
			v.Corrupt = true
		}
		if r.Delay > 0 && (r.DelayProb == 0 || in.uniform(i, 's', src, dst, tag, id, attempt) < r.DelayProb) {
			v.Extra += r.Delay
		}
		if r.Jitter > 0 {
			v.Extra += time.Duration(in.uniform(i, 'j', src, dst, tag, id, attempt) * float64(r.Jitter))
		}
		if r.SlowBw > 0 {
			v.Extra += time.Duration(float64(size) / r.SlowBw * float64(time.Second))
		}
	}
	if v.Drop {
		in.drops.Add(1)
		perf.RecordFaultDrop()
		// A dropped attempt never materializes, so its dup/delay are moot.
		v.Dup = false
		v.Corrupt = false
		v.Extra = 0
		return v
	}
	if v.Corrupt {
		in.corrupts.Add(1)
		perf.RecordFaultCorrupt()
		// The damaged copy still flies (keeping Extra) but is discarded
		// on arrival; duplicating it would just be a second discard.
		v.Dup = false
	}
	if v.Dup {
		in.dups.Add(1)
		perf.RecordFaultDup()
	}
	if v.Extra > 0 {
		in.delays.Add(1)
		perf.RecordFaultDelay()
	}
	return v
}

// AckDrop decides whether the acknowledgement travelling src→dst (the
// reverse of the data link) is lost. Drop rules apply directly; corrupt
// rules apply too — a damaged ack fails its checksum and is discarded,
// which is indistinguishable from loss to the waiting sender.
func (in *Injector) AckDrop(src, dst int, tag comm.Tag, id uint64, attempt int, now time.Duration) bool {
	for i, r := range in.plan.Rules {
		if !r.Scope.Matches(src, dst) || now < r.After {
			continue
		}
		if r.DropProb > 0 && in.uniform(i, 'a', src, dst, tag, id, attempt) < r.DropProb {
			in.drops.Add(1)
			perf.RecordFaultDrop()
			return true
		}
		if r.CorruptProb > 0 && in.uniform(i, 'k', src, dst, tag, id, attempt) < r.CorruptProb {
			in.corrupts.Add(1)
			perf.RecordFaultCorrupt()
			return true
		}
	}
	return false
}

// NoteRetry records one retransmission.
func (in *Injector) NoteRetry() {
	in.retries.Add(1)
	perf.RecordFaultRetry()
}

// NoteTimeout records one message failed after exhausting its attempts.
func (in *Injector) NoteTimeout() {
	in.timeouts.Add(1)
	perf.RecordFaultTimeout()
}

// NoteSuppressed records one duplicate arrival discarded by dedup.
func (in *Injector) NoteSuppressed() {
	in.suppressed.Add(1)
	perf.RecordFaultSuppressed()
}

// Stats returns the injector's counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Drops:      in.drops.Load(),
		Dups:       in.dups.Load(),
		Corrupts:   in.corrupts.Load(),
		Delays:     in.delays.Load(),
		Retries:    in.retries.Load(),
		Timeouts:   in.timeouts.Load(),
		Suppressed: in.suppressed.Load(),
	}
}

// RandomPlan generates a seeded random plan for property-based testing:
// a handful of rules over a world of n ranks with probabilities bounded
// so that DefaultRecovery still converges (drop ≤ 0.35 per attempt).
// The plan's Seed is drawn from rng too, so the whole schedule is a
// function of the generator's state.
func RandomPlan(rng *rand.Rand, n int) Plan {
	p := Plan{Seed: rng.Int63()}
	rules := 1 + rng.Intn(4)
	for i := 0; i < rules; i++ {
		var sc Scope
		switch rng.Intn(3) {
		case 0:
			sc = All()
		case 1:
			sc = Rank(rng.Intn(n))
		default:
			sc = Link(rng.Intn(n), rng.Intn(n))
		}
		r := Rule{Scope: sc}
		if rng.Intn(2) == 0 {
			r.DropProb = 0.35 * rng.Float64()
		}
		if rng.Intn(2) == 0 {
			r.DupProb = 0.4 * rng.Float64()
		}
		if rng.Intn(3) == 0 {
			// Corruption is loss too: bound drop+corrupt together so the
			// default retry budget still converges.
			r.CorruptProb = (0.35 - r.DropProb) * rng.Float64()
		}
		if rng.Intn(2) == 0 {
			r.Delay = time.Duration(rng.Intn(120)) * time.Microsecond
			r.DelayProb = rng.Float64()
		}
		if rng.Intn(2) == 0 {
			r.Jitter = time.Duration(1+rng.Intn(60)) * time.Microsecond
		}
		p.Rules = append(p.Rules, r)
	}
	return p
}
