package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Plan text format — semicolon-separated statements:
//
//	seed=42; all: drop=0.1, jitter=30us; link 0->1: drop=1, after=1ms; rank 2: delay=100us@0.25, slow=1e9
//
// Statements are `seed=N`, `<scope>: <effect>(, <effect>)*`, or a
// fail-stop crash rule `crash@R[:afterK]` (rank R halts forever when it
// initiates its (K+1)-th send; K defaults to 0 — the very first send).
// Scopes: `all`, `rank R`, `link A->B`. Effects: `drop=P`, `dup=P`,
// `corrupt=P` (seeded bit-flips, detected by the frame CRC and treated
// as a drop), `delay=DUR[@P]` (P defaults to always), `jitter=DUR`,
// `after=DUR`, `slow=BYTES_PER_SEC`. ParsePlan and Plan.String
// round-trip.

// ParsePlan parses the textual plan format.
func ParsePlan(s string) (Plan, error) {
	var p Plan
	for _, stmt := range strings.Split(s, ";") {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		if v, ok := strings.CutPrefix(stmt, "seed="); ok {
			seed, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("faults: bad seed %q", v)
			}
			p.Seed = seed
			continue
		}
		// Crash statements must be cut out before the scope split: the
		// optional `:afterK` suffix contains the scope separator.
		if v, ok := strings.CutPrefix(stmt, "crash@"); ok {
			cr, err := parseCrash(v)
			if err != nil {
				return Plan{}, err
			}
			p.Crashes = append(p.Crashes, cr)
			continue
		}
		scopeTxt, effTxt, ok := strings.Cut(stmt, ":")
		if !ok {
			return Plan{}, fmt.Errorf("faults: statement %q needs '<scope>: <effects>'", stmt)
		}
		scope, err := parseScope(strings.TrimSpace(scopeTxt))
		if err != nil {
			return Plan{}, err
		}
		rule := Rule{Scope: scope}
		for _, eff := range strings.Split(effTxt, ",") {
			eff = strings.TrimSpace(eff)
			if eff == "" {
				continue
			}
			if err := parseEffect(&rule, eff); err != nil {
				return Plan{}, err
			}
		}
		p.Rules = append(p.Rules, rule)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// MustParsePlan is ParsePlan for trusted literals (bench exhibits, docs).
func MustParsePlan(s string) Plan {
	p, err := ParsePlan(s)
	if err != nil {
		panic(err)
	}
	return p
}

// parseCrash parses the body of a `crash@R[:afterK]` statement.
func parseCrash(s string) (Crash, error) {
	rankTxt, afterTxt, hasAfter := strings.Cut(s, ":")
	r, err := strconv.Atoi(strings.TrimSpace(rankTxt))
	if err != nil {
		return Crash{}, fmt.Errorf("faults: bad crash rank %q", rankTxt)
	}
	cr := Crash{Rank: r}
	if hasAfter {
		kTxt, ok := strings.CutPrefix(strings.TrimSpace(afterTxt), "after")
		if !ok {
			return Crash{}, fmt.Errorf("faults: crash modifier %q (want crash@R:afterK)", afterTxt)
		}
		k, err := strconv.Atoi(kTxt)
		if err != nil {
			return Crash{}, fmt.Errorf("faults: bad crash send count %q", kTxt)
		}
		cr.AfterSends = k
	}
	return cr, nil
}

func parseScope(s string) (Scope, error) {
	switch {
	case s == "all":
		return All(), nil
	case strings.HasPrefix(s, "rank "):
		r, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(s, "rank ")))
		if err != nil {
			return Scope{}, fmt.Errorf("faults: bad rank scope %q", s)
		}
		return Rank(r), nil
	case strings.HasPrefix(s, "link "):
		a, b, ok := strings.Cut(strings.TrimPrefix(s, "link "), "->")
		if !ok {
			return Scope{}, fmt.Errorf("faults: link scope %q needs 'link A->B'", s)
		}
		src, err1 := strconv.Atoi(strings.TrimSpace(a))
		dst, err2 := strconv.Atoi(strings.TrimSpace(b))
		if err1 != nil || err2 != nil {
			return Scope{}, fmt.Errorf("faults: bad link scope %q", s)
		}
		return Link(src, dst), nil
	}
	return Scope{}, fmt.Errorf("faults: unknown scope %q (want all, rank R, link A->B)", s)
}

func parseEffect(r *Rule, eff string) error {
	key, val, ok := strings.Cut(eff, "=")
	if !ok {
		return fmt.Errorf("faults: effect %q needs key=value", eff)
	}
	key, val = strings.TrimSpace(key), strings.TrimSpace(val)
	switch key {
	case "drop":
		return parseProb(val, &r.DropProb, "drop")
	case "dup":
		return parseProb(val, &r.DupProb, "dup")
	case "corrupt":
		return parseProb(val, &r.CorruptProb, "corrupt")
	case "delay":
		durTxt, probTxt, hasProb := strings.Cut(val, "@")
		d, err := time.ParseDuration(durTxt)
		if err != nil || d < 0 {
			return fmt.Errorf("faults: bad delay %q", val)
		}
		r.Delay = d
		if hasProb {
			return parseProb(probTxt, &r.DelayProb, "delay")
		}
		r.DelayProb = 0 // always-on spike
		return nil
	case "jitter":
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 {
			return fmt.Errorf("faults: bad jitter %q", val)
		}
		r.Jitter = d
		return nil
	case "after":
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 {
			return fmt.Errorf("faults: bad after %q", val)
		}
		r.After = d
		return nil
	case "slow":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 {
			return fmt.Errorf("faults: bad slow bandwidth %q", val)
		}
		r.SlowBw = f
		return nil
	}
	return fmt.Errorf("faults: unknown effect %q (want drop, dup, corrupt, delay, jitter, after, slow)", key)
}

func parseProb(val string, dst *float64, what string) error {
	f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
	if err != nil || f < 0 || f > 1 {
		return fmt.Errorf("faults: bad %s probability %q", what, val)
	}
	*dst = f
	return nil
}

// String renders the plan in the canonical parseable form.
func (p Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "seed=%d", p.Seed)
	for _, r := range p.Rules {
		sb.WriteString("; ")
		sb.WriteString(r.Scope.String())
		sb.WriteString(":")
		first := true
		eff := func(format string, args ...any) {
			if first {
				sb.WriteString(" ")
				first = false
			} else {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, format, args...)
		}
		if r.DropProb > 0 {
			eff("drop=%s", strconv.FormatFloat(r.DropProb, 'g', -1, 64))
		}
		if r.DupProb > 0 {
			eff("dup=%s", strconv.FormatFloat(r.DupProb, 'g', -1, 64))
		}
		if r.CorruptProb > 0 {
			eff("corrupt=%s", strconv.FormatFloat(r.CorruptProb, 'g', -1, 64))
		}
		if r.Delay > 0 {
			if r.DelayProb > 0 {
				eff("delay=%v@%s", r.Delay, strconv.FormatFloat(r.DelayProb, 'g', -1, 64))
			} else {
				eff("delay=%v", r.Delay)
			}
		}
		if r.Jitter > 0 {
			eff("jitter=%v", r.Jitter)
		}
		if r.After > 0 {
			eff("after=%v", r.After)
		}
		if r.SlowBw > 0 {
			eff("slow=%s", strconv.FormatFloat(r.SlowBw, 'g', -1, 64))
		}
		if first {
			sb.WriteString(" drop=0")
		}
	}
	for _, cr := range p.Crashes {
		if cr.AfterSends > 0 {
			fmt.Fprintf(&sb, "; crash@%d:after%d", cr.Rank, cr.AfterSends)
		} else {
			fmt.Fprintf(&sb, "; crash@%d", cr.Rank)
		}
	}
	return sb.String()
}
