// Package perf is the observability substrate for the hot paths: cheap
// process-wide counters fed by the simulation kernel (events dispatched,
// heap peak) and the segment-buffer pool (gets, reuse hits, recycles),
// plus opt-in pprof/trace hooks for profiling whole experiment runs.
//
// Counter updates are a handful of atomic adds per *kernel run* or per
// *buffer operation*, never per event, so instrumentation cannot distort
// the measurements it reports. Everything here is aggregate: determinism
// of simulation results is unaffected by who reads or resets the
// counters, including under parallel experiment sweeps.
package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"runtime/pprof"
	"runtime/trace"
	"sync/atomic"
)

var (
	kernelRuns       atomic.Uint64
	eventsDispatched atomic.Uint64
	eventsScheduled  atomic.Uint64
	heapPeak         atomic.Int64 // max event-queue length seen by any kernel

	bufGets    atomic.Uint64 // pool Get calls
	bufHits    atomic.Uint64 // Gets satisfied from the pool (no allocation)
	bufPuts    atomic.Uint64 // pool Put calls
	bufRecycle atomic.Uint64 // Puts retained for reuse (size-class match)

	// Fault-injection / recovery path (internal/faults). All zero in a
	// clean run — scripts/bench.sh enforces that as a no-regression gate.
	faultDrops      atomic.Uint64 // messages (or acks) lost in flight
	faultDups       atomic.Uint64 // duplicate copies injected
	faultCorrupts   atomic.Uint64 // payloads damaged in flight (detected, discarded)
	faultDelays     atomic.Uint64 // messages charged extra latency
	faultRetries    atomic.Uint64 // retransmissions performed
	faultTimeouts   atomic.Uint64 // operations failed after all attempts
	faultSuppressed atomic.Uint64 // duplicate arrivals deduplicated

	// Erasure-coded segment stream (internal/fec + the transports' group
	// framers). Encoded/reconstructed move only when FEC is enabled;
	// group-lost counts the groups that fell past the parity budget and
	// went back to the ARQ retransmit path. scripts/bench.sh asserts the
	// loss-sweep exhibit moves the first two and that reconstructable
	// loss leaves the retransmit counter at zero.
	fecEncoded       atomic.Uint64 // parity shards encoded and sent
	fecReconstructed atomic.Uint64 // data segments rebuilt from parity
	fecGroupLost     atomic.Uint64 // groups with more erasures than parity

	// Fail-stop failure detection / tree repair. All zero in a clean run —
	// scripts/bench.sh enforces zero detector false-positives as a gate.
	detectorSuspects atomic.Uint64 // suspicion leases expired
	detectorConfirms atomic.Uint64 // deaths confirmed by the detector
	treeRepairs      atomic.Uint64 // tree self-healing passes triggered

	// TCP transport (internal/nettransport). Frame/byte counters move on
	// every socket run; dial retries and peer-downs stay zero on a clean
	// loopback link — scripts/bench.sh gates on that.
	netFramesOut   atomic.Uint64 // frames written to peer sockets
	netBytesOut    atomic.Uint64 // bytes written (headers + payload)
	netFramesIn    atomic.Uint64 // frames read from peer sockets
	netBytesIn     atomic.Uint64 // bytes read
	netDialRetries atomic.Uint64 // mesh dials that needed a backoff retry
	netPeerDowns   atomic.Uint64 // connections lost without a Bye handshake

	// Serving layer (internal/serve). Sessions/requests/fusing move on
	// every daemon run; overloads, rank failures, and rank deaths stay
	// zero on a clean unsaturated run — scripts/bench.sh gates on that.
	serveSessions   atomic.Uint64 // client sessions accepted
	serveRequests   atomic.Uint64 // collective requests admitted
	serveFusedBatch atomic.Uint64 // fused batches executed (>1 request)
	serveFusedReqs  atomic.Uint64 // requests that rode in a fused batch
	serveOverloads  atomic.Uint64 // typed Overloaded rejections
	serveRankFails  atomic.Uint64 // requests failed with RankFailed
	serveRankDeaths atomic.Uint64 // backend ranks observed dead
)

// RecordKernelRun publishes one kernel's counter deltas after a Run.
func RecordKernelRun(dispatched, scheduled uint64, queuePeak int) {
	kernelRuns.Add(1)
	eventsDispatched.Add(dispatched)
	eventsScheduled.Add(scheduled)
	for {
		cur := heapPeak.Load()
		if int64(queuePeak) <= cur || heapPeak.CompareAndSwap(cur, int64(queuePeak)) {
			return
		}
	}
}

// RecordBufGet counts one pool Get; hit reports whether it was satisfied
// without allocating.
func RecordBufGet(hit bool) {
	bufGets.Add(1)
	if hit {
		bufHits.Add(1)
	}
}

// RecordBufPut counts one pool Put; retained reports whether the buffer
// matched a size class and was kept for reuse.
func RecordBufPut(retained bool) {
	bufPuts.Add(1)
	if retained {
		bufRecycle.Add(1)
	}
}

// RecordFaultDrop counts one injected message (or ack) loss.
func RecordFaultDrop() { faultDrops.Add(1) }

// RecordFaultDup counts one injected duplicate copy.
func RecordFaultDup() { faultDups.Add(1) }

// RecordFaultCorrupt counts one payload damaged in flight (and detected
// — by the frame CRC on the wire, or modeled directly in-process).
func RecordFaultCorrupt() { faultCorrupts.Add(1) }

// RecordFecEncoded counts m parity shards encoded for one group.
func RecordFecEncoded(m int) { fecEncoded.Add(uint64(m)) }

// RecordFecReconstructed counts one data segment rebuilt from parity.
func RecordFecReconstructed() { fecReconstructed.Add(1) }

// RecordFecGroupLost counts one group whose erasures exceeded its
// parity — recovery falls back to the ARQ retransmit path.
func RecordFecGroupLost() { fecGroupLost.Add(1) }

// RecordFaultDelay counts one message charged extra latency.
func RecordFaultDelay() { faultDelays.Add(1) }

// RecordFaultRetry counts one retransmission.
func RecordFaultRetry() { faultRetries.Add(1) }

// RecordFaultTimeout counts one operation failed after all attempts.
func RecordFaultTimeout() { faultTimeouts.Add(1) }

// RecordFaultSuppressed counts one deduplicated duplicate arrival.
func RecordFaultSuppressed() { faultSuppressed.Add(1) }

// RecordDetectorSuspect counts one expired suspicion lease.
func RecordDetectorSuspect() { detectorSuspects.Add(1) }

// RecordDetectorConfirm counts one detector-confirmed rank death.
func RecordDetectorConfirm() { detectorConfirms.Add(1) }

// RecordTreeRepair counts one tree self-healing pass.
func RecordTreeRepair() { treeRepairs.Add(1) }

// RecordNetFrameOut counts one frame of n wire bytes written to a socket.
func RecordNetFrameOut(n int) {
	netFramesOut.Add(1)
	netBytesOut.Add(uint64(n))
}

// RecordNetFrameIn counts one frame of n wire bytes read from a socket.
func RecordNetFrameIn(n int) {
	netFramesIn.Add(1)
	netBytesIn.Add(uint64(n))
}

// RecordNetDialRetry counts one mesh dial attempt that failed and backed
// off before retrying.
func RecordNetDialRetry() { netDialRetries.Add(1) }

// RecordNetPeerDown counts one peer connection lost without the clean
// shutdown handshake (the failure detector's trigger).
func RecordNetPeerDown() { netPeerDowns.Add(1) }

// RecordServeSession counts one accepted client session.
func RecordServeSession() { serveSessions.Add(1) }

// RecordServeRequest counts one admitted collective request.
func RecordServeRequest() { serveRequests.Add(1) }

// RecordServeFused counts one fused batch carrying k (>1) requests.
func RecordServeFused(k int) {
	serveFusedBatch.Add(1)
	serveFusedReqs.Add(uint64(k))
}

// RecordServeOverload counts one typed Overloaded admission rejection.
func RecordServeOverload() { serveOverloads.Add(1) }

// RecordServeRankFail counts one request failed with RankFailed.
func RecordServeRankFail() { serveRankFails.Add(1) }

// RecordServeRankDeath counts one backend rank observed dead.
func RecordServeRankDeath() { serveRankDeaths.Add(1) }

// Snapshot is a point-in-time view of the counters.
type Snapshot struct {
	KernelRuns       uint64
	EventsDispatched uint64
	EventsScheduled  uint64
	HeapPeak         int64

	BufGets     uint64
	BufHits     uint64
	BufPuts     uint64
	BufRecycled uint64

	FaultDrops      uint64
	FaultDups       uint64
	FaultCorrupts   uint64
	FaultDelays     uint64
	FaultRetries    uint64
	FaultTimeouts   uint64
	FaultSuppressed uint64

	FecEncoded       uint64
	FecReconstructed uint64
	FecGroupLost     uint64

	DetectorSuspects uint64
	DetectorConfirms uint64
	TreeRepairs      uint64

	NetFramesOut   uint64
	NetBytesOut    uint64
	NetFramesIn    uint64
	NetBytesIn     uint64
	NetDialRetries uint64
	NetPeerDowns   uint64

	ServeSessions   uint64
	ServeRequests   uint64
	ServeFusedBatch uint64
	ServeFusedReqs  uint64
	ServeOverloads  uint64
	ServeRankFails  uint64
	ServeRankDeaths uint64
}

// FaultTotal sums every fault-path counter; non-zero means the fault
// injection or recovery machinery ran.
func (s Snapshot) FaultTotal() uint64 {
	return s.FaultDrops + s.FaultDups + s.FaultCorrupts + s.FaultDelays +
		s.FaultRetries + s.FaultTimeouts + s.FaultSuppressed
}

// FecTotal sums the erasure-coding counters; non-zero means the FEC
// layer encoded, repaired, or abandoned at least one group.
func (s Snapshot) FecTotal() uint64 {
	return s.FecEncoded + s.FecReconstructed + s.FecGroupLost
}

// DetectorTotal sums the failure-detection counters; non-zero means a
// rank crash was suspected, confirmed, or repaired around.
func (s Snapshot) DetectorTotal() uint64 {
	return s.DetectorSuspects + s.DetectorConfirms + s.TreeRepairs
}

// NetTrouble sums the TCP transport's trouble counters: dial retries and
// unclean connection losses. Zero on a healthy loopback run — the
// bench.sh nettransport gate asserts exactly that.
func (s Snapshot) NetTrouble() uint64 {
	return s.NetDialRetries + s.NetPeerDowns
}

// ServeTrouble sums the serving layer's trouble counters: admission
// rejections, rank-failed requests, and rank deaths. Zero on a clean
// unsaturated daemon run — the bench.sh serve gate asserts exactly that.
func (s Snapshot) ServeTrouble() uint64 {
	return s.ServeOverloads + s.ServeRankFails + s.ServeRankDeaths
}

// Read returns the current counter values.
func Read() Snapshot {
	return Snapshot{
		KernelRuns:       kernelRuns.Load(),
		EventsDispatched: eventsDispatched.Load(),
		EventsScheduled:  eventsScheduled.Load(),
		HeapPeak:         heapPeak.Load(),
		BufGets:          bufGets.Load(),
		BufHits:          bufHits.Load(),
		BufPuts:          bufPuts.Load(),
		BufRecycled:      bufRecycle.Load(),
		FaultDrops:       faultDrops.Load(),
		FaultDups:        faultDups.Load(),
		FaultCorrupts:    faultCorrupts.Load(),
		FaultDelays:      faultDelays.Load(),
		FaultRetries:     faultRetries.Load(),
		FaultTimeouts:    faultTimeouts.Load(),
		FaultSuppressed:  faultSuppressed.Load(),
		FecEncoded:       fecEncoded.Load(),
		FecReconstructed: fecReconstructed.Load(),
		FecGroupLost:     fecGroupLost.Load(),
		DetectorSuspects: detectorSuspects.Load(),
		DetectorConfirms: detectorConfirms.Load(),
		TreeRepairs:      treeRepairs.Load(),
		NetFramesOut:     netFramesOut.Load(),
		NetBytesOut:      netBytesOut.Load(),
		NetFramesIn:      netFramesIn.Load(),
		NetBytesIn:       netBytesIn.Load(),
		NetDialRetries:   netDialRetries.Load(),
		NetPeerDowns:     netPeerDowns.Load(),
		ServeSessions:    serveSessions.Load(),
		ServeRequests:    serveRequests.Load(),
		ServeFusedBatch:  serveFusedBatch.Load(),
		ServeFusedReqs:   serveFusedReqs.Load(),
		ServeOverloads:   serveOverloads.Load(),
		ServeRankFails:   serveRankFails.Load(),
		ServeRankDeaths:  serveRankDeaths.Load(),
	}
}

// Reset zeroes all counters (tests, per-phase accounting).
func Reset() {
	kernelRuns.Store(0)
	eventsDispatched.Store(0)
	eventsScheduled.Store(0)
	heapPeak.Store(0)
	bufGets.Store(0)
	bufHits.Store(0)
	bufPuts.Store(0)
	bufRecycle.Store(0)
	faultDrops.Store(0)
	faultDups.Store(0)
	faultCorrupts.Store(0)
	faultDelays.Store(0)
	faultRetries.Store(0)
	faultTimeouts.Store(0)
	faultSuppressed.Store(0)
	fecEncoded.Store(0)
	fecReconstructed.Store(0)
	fecGroupLost.Store(0)
	detectorSuspects.Store(0)
	detectorConfirms.Store(0)
	treeRepairs.Store(0)
	netFramesOut.Store(0)
	netBytesOut.Store(0)
	netFramesIn.Store(0)
	netBytesIn.Store(0)
	netDialRetries.Store(0)
	netPeerDowns.Store(0)
	serveSessions.Store(0)
	serveRequests.Store(0)
	serveFusedBatch.Store(0)
	serveFusedReqs.Store(0)
	serveOverloads.Store(0)
	serveRankFails.Store(0)
	serveRankDeaths.Store(0)
}

// Delta returns the per-window counter movement between prev and s:
// every monotonic counter field becomes s.field - prev.field, so a
// periodic scraper (the admin /statusz window, adaptbench -serve
// points) reports rates instead of process-lifetime totals. HeapPeak
// is a high-water mark, not a counter — the current value carries
// over. A counter that went backwards (perf.Reset between snapshots)
// reports the current value rather than a wrapped difference.
//
// Implemented by reflection over the Snapshot fields so a counter
// added to the struct is in the delta automatically — the same
// future-proofing contract the export-coverage test enforces on
// Fprint and JSON.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := s
	ov := reflect.ValueOf(&out).Elem()
	pv := reflect.ValueOf(prev)
	for i := 0; i < ov.NumField(); i++ {
		f := ov.Field(i)
		if f.Kind() != reflect.Uint64 {
			continue // HeapPeak (int64 high-water mark) carries over
		}
		cur, old := f.Uint(), pv.Field(i).Uint()
		if old > cur {
			continue // reset between snapshots: report the current value
		}
		f.SetUint(cur - old)
	}
	return out
}

// JSON renders the snapshot as indented JSON (adaptbench -perf-json),
// one stable machine-readable document per run for scripts and CI.
func (s Snapshot) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Fprint renders the snapshot as a small human-readable report.
func (s Snapshot) Fprint(w io.Writer) {
	fmt.Fprintf(w, "perf: %d kernel runs, %d events dispatched (%d scheduled), heap peak %d\n",
		s.KernelRuns, s.EventsDispatched, s.EventsScheduled, s.HeapPeak)
	hitRate, recRate := 0.0, 0.0
	if s.BufGets > 0 {
		hitRate = 100 * float64(s.BufHits) / float64(s.BufGets)
	}
	if s.BufPuts > 0 {
		recRate = 100 * float64(s.BufRecycled) / float64(s.BufPuts)
	}
	fmt.Fprintf(w, "perf: buffer pool %d gets (%d hits, %.0f%% reuse), %d puts (%d recycled, %.0f%%)\n",
		s.BufGets, s.BufHits, hitRate, s.BufPuts, s.BufRecycled, recRate)
	if s.FaultTotal() > 0 {
		fmt.Fprintf(w, "perf: faults %d drops, %d dups, %d corrupts, %d delays; recovery %d retries, %d timeouts, %d suppressed\n",
			s.FaultDrops, s.FaultDups, s.FaultCorrupts, s.FaultDelays, s.FaultRetries, s.FaultTimeouts, s.FaultSuppressed)
	}
	if s.FecTotal() > 0 {
		fmt.Fprintf(w, "perf: fec %d parity encoded, %d segments reconstructed, %d groups lost to ARQ\n",
			s.FecEncoded, s.FecReconstructed, s.FecGroupLost)
	}
	if s.DetectorTotal() > 0 {
		fmt.Fprintf(w, "perf: detector %d suspects, %d confirms; %d tree repairs\n",
			s.DetectorSuspects, s.DetectorConfirms, s.TreeRepairs)
	}
	if s.NetFramesOut+s.NetFramesIn > 0 {
		fmt.Fprintf(w, "perf: net %d frames out (%d B), %d frames in (%d B); %d dial retries, %d peer downs\n",
			s.NetFramesOut, s.NetBytesOut, s.NetFramesIn, s.NetBytesIn, s.NetDialRetries, s.NetPeerDowns)
	}
	if s.ServeSessions > 0 {
		fmt.Fprintf(w, "perf: serve %d sessions, %d requests (%d fused into %d batches); trouble %d (%d overloads, %d rank fails, %d rank deaths)\n",
			s.ServeSessions, s.ServeRequests, s.ServeFusedReqs, s.ServeFusedBatch,
			s.ServeTrouble(), s.ServeOverloads, s.ServeRankFails, s.ServeRankDeaths)
	}
}

// StartCPUProfile begins a CPU profile written to path and returns a stop
// function. Opt-in: nothing is profiled unless a caller asks.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile dumps the current heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return pprof.WriteHeapProfile(f)
}

// StartTrace begins a Go execution trace written to path and returns a
// stop function.
func StartTrace(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := trace.Start(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() error {
		trace.Stop()
		return f.Close()
	}, nil
}
