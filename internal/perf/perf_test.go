package perf

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// The counters are process-global, so every test starts from Reset and
// none may run in parallel with another perf test.

func TestRecordKernelRunAggregates(t *testing.T) {
	Reset()
	RecordKernelRun(100, 120, 7)
	RecordKernelRun(50, 60, 3) // lower peak must not regress the max
	s := Read()
	if s.KernelRuns != 2 {
		t.Errorf("KernelRuns = %d, want 2", s.KernelRuns)
	}
	if s.EventsDispatched != 150 || s.EventsScheduled != 180 {
		t.Errorf("events = %d/%d, want 150/180", s.EventsDispatched, s.EventsScheduled)
	}
	if s.HeapPeak != 7 {
		t.Errorf("HeapPeak = %d, want 7", s.HeapPeak)
	}
	RecordKernelRun(1, 1, 11)
	if got := Read().HeapPeak; got != 11 {
		t.Errorf("HeapPeak after larger run = %d, want 11", got)
	}
}

func TestRecordBufCounters(t *testing.T) {
	Reset()
	RecordBufGet(true)
	RecordBufGet(false)
	RecordBufGet(true)
	RecordBufPut(false)
	RecordBufPut(true)
	s := Read()
	if s.BufGets != 3 || s.BufHits != 2 {
		t.Errorf("gets/hits = %d/%d, want 3/2", s.BufGets, s.BufHits)
	}
	if s.BufPuts != 2 || s.BufRecycled != 1 {
		t.Errorf("puts/recycled = %d/%d, want 2/1", s.BufPuts, s.BufRecycled)
	}
}

func TestFaultCountersAndTotal(t *testing.T) {
	Reset()
	if got := Read().FaultTotal(); got != 0 {
		t.Fatalf("FaultTotal after Reset = %d", got)
	}
	RecordFaultDrop()
	RecordFaultDrop()
	RecordFaultDup()
	RecordFaultDelay()
	RecordFaultRetry()
	RecordFaultTimeout()
	RecordFaultSuppressed()
	s := Read()
	want := Snapshot{
		FaultDrops: 2, FaultDups: 1, FaultDelays: 1,
		FaultRetries: 1, FaultTimeouts: 1, FaultSuppressed: 1,
	}
	if s.FaultDrops != want.FaultDrops || s.FaultDups != want.FaultDups ||
		s.FaultDelays != want.FaultDelays || s.FaultRetries != want.FaultRetries ||
		s.FaultTimeouts != want.FaultTimeouts || s.FaultSuppressed != want.FaultSuppressed {
		t.Errorf("fault counters = %+v, want %+v", s, want)
	}
	if got := s.FaultTotal(); got != 7 {
		t.Errorf("FaultTotal = %d, want 7", got)
	}
}

func TestResetZeroesEverything(t *testing.T) {
	Reset()
	RecordKernelRun(5, 5, 5)
	RecordBufGet(true)
	RecordBufPut(true)
	RecordFaultDrop()
	Reset()
	s := Read()
	if s != (Snapshot{}) {
		t.Errorf("snapshot after Reset = %+v, want zero", s)
	}
}

func TestFprintGatesFaultLine(t *testing.T) {
	Reset()
	RecordKernelRun(1, 2, 3)
	var clean strings.Builder
	Read().Fprint(&clean)
	if strings.Contains(clean.String(), "faults") {
		t.Errorf("clean report mentions faults:\n%s", clean.String())
	}
	RecordFaultDrop()
	RecordFaultRetry()
	var faulty strings.Builder
	Read().Fprint(&faulty)
	out := faulty.String()
	for _, want := range []string{"faults 1 drops", "1 retries"} {
		if !strings.Contains(out, want) {
			t.Errorf("faulty report missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentIncrements hammers every Record* path from many
// goroutines; run with -race this doubles as the data-race check, and the
// final tallies must be exact (no lost updates).
func TestConcurrentIncrements(t *testing.T) {
	Reset()
	const workers = 16
	const rounds = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				RecordKernelRun(1, 2, w*rounds+i)
				RecordBufGet(i%2 == 0)
				RecordBufPut(i%4 == 0)
				RecordFaultDrop()
				RecordFaultDup()
				RecordFaultRetry()
				RecordFaultSuppressed()
				if i%10 == 0 {
					Read() // concurrent readers must also be race-free
				}
			}
		}()
	}
	wg.Wait()
	s := Read()
	total := uint64(workers * rounds)
	if s.KernelRuns != total {
		t.Errorf("KernelRuns = %d, want %d", s.KernelRuns, total)
	}
	if s.EventsDispatched != total || s.EventsScheduled != 2*total {
		t.Errorf("events = %d/%d, want %d/%d", s.EventsDispatched, s.EventsScheduled, total, 2*total)
	}
	if want := int64(workers*rounds - 1); s.HeapPeak != want {
		t.Errorf("HeapPeak = %d, want %d", s.HeapPeak, want)
	}
	if s.BufGets != total || s.BufHits != total/2 {
		t.Errorf("gets/hits = %d/%d, want %d/%d", s.BufGets, s.BufHits, total, total/2)
	}
	if s.FaultDrops != total || s.FaultDups != total || s.FaultRetries != total || s.FaultSuppressed != total {
		t.Errorf("fault counters lost updates: %+v", s)
	}
}

func TestSnapshotJSON(t *testing.T) {
	s := Snapshot{KernelRuns: 3, EventsDispatched: 42, HeapPeak: 7, BufGets: 5, BufHits: 4}
	b, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b)
	}
	if back != s {
		t.Fatalf("round trip mismatch: %+v != %+v", back, s)
	}
	if b[len(b)-1] != '\n' {
		t.Fatal("JSON output not newline-terminated")
	}
}
