package perf

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// sentinelSnapshot fills every Snapshot field with a distinct 7-digit
// sentinel via reflection, so a counter added to the struct is covered
// by these tests automatically — and a counter whose value never
// reaches the export surfaces fails them.
func sentinelSnapshot(t *testing.T) (Snapshot, map[string]uint64) {
	t.Helper()
	var s Snapshot
	want := map[string]uint64{}
	v := reflect.ValueOf(&s).Elem()
	ty := v.Type()
	for i := 0; i < v.NumField(); i++ {
		sentinel := uint64(9000001 + 7*i)
		switch v.Field(i).Kind() {
		case reflect.Uint64:
			v.Field(i).SetUint(sentinel)
		case reflect.Int64:
			v.Field(i).SetInt(int64(sentinel))
		default:
			t.Fatalf("Snapshot field %s has unsupported kind %s", ty.Field(i).Name, v.Field(i).Kind())
		}
		want[ty.Field(i).Name] = sentinel
	}
	return s, want
}

// TestSnapshotJSONCoversAllCounters fails when a counter field is
// added to Snapshot but hidden from the JSON export (a json:"-" tag or
// an unexported rename).
func TestSnapshotJSONCoversAllCounters(t *testing.T) {
	s, want := sentinelSnapshot(t)
	b, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	for name, sentinel := range want {
		raw, ok := got[name]
		if !ok {
			t.Errorf("Snapshot field %s missing from JSON export", name)
			continue
		}
		if f, ok := raw.(float64); !ok || uint64(f) != sentinel {
			t.Errorf("Snapshot field %s: JSON export has %v, want %d", name, raw, sentinel)
		}
	}
}

// TestFprintCoversAllCounters fails when a counter is added to
// Snapshot but left out of the gated human-readable print line: every
// field's raw sentinel value must appear somewhere in the report.
func TestFprintCoversAllCounters(t *testing.T) {
	s, want := sentinelSnapshot(t)
	var buf bytes.Buffer
	s.Fprint(&buf)
	out := buf.String()
	for name, sentinel := range want {
		if !strings.Contains(out, fmt.Sprint(sentinel)) {
			t.Errorf("Snapshot field %s (sentinel %d) does not appear in Fprint output:\n%s",
				name, sentinel, out)
		}
	}
}

func TestSnapshotDelta(t *testing.T) {
	prev := Snapshot{KernelRuns: 10, BufGets: 100, ServeRequests: 7, HeapPeak: 40}
	cur := Snapshot{KernelRuns: 15, BufGets: 160, ServeRequests: 7, HeapPeak: 55}
	d := cur.Delta(prev)
	if d.KernelRuns != 5 || d.BufGets != 60 || d.ServeRequests != 0 {
		t.Fatalf("counter deltas wrong: %+v", d)
	}
	if d.HeapPeak != 55 {
		t.Fatalf("HeapPeak must carry the current high-water mark, got %d", d.HeapPeak)
	}
	// A reset between snapshots must not wrap: report the current value.
	back := Snapshot{KernelRuns: 3}
	d = back.Delta(prev)
	if d.KernelRuns != 3 {
		t.Fatalf("backwards counter should report current value, got %d", d.KernelRuns)
	}
}

// TestDeltaCoversAllCounters pins that every uint64 field participates
// in Delta (a field skipped by the reflection walk would silently
// report lifetime totals as window rates).
func TestDeltaCoversAllCounters(t *testing.T) {
	s, _ := sentinelSnapshot(t)
	d := s.Delta(s)
	v := reflect.ValueOf(d)
	ty := v.Type()
	for i := 0; i < v.NumField(); i++ {
		if v.Field(i).Kind() != reflect.Uint64 {
			continue
		}
		if v.Field(i).Uint() != 0 {
			t.Errorf("field %s: Delta(self) = %d, want 0", ty.Field(i).Name, v.Field(i).Uint())
		}
	}
}
