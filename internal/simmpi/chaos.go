package simmpi

import (
	"time"

	"adapt/internal/comm"
	"adapt/internal/faults"
	"adapt/internal/progress"
	"adapt/internal/trace"
)

// This file is the chaos transport: the delivery paths used when a fault
// plan is installed on the world (World.InstallFaults). Every logical
// point-to-point unit — eager payload, rendezvous RTS, CTS grant, bulk
// data — becomes a reliably-transmitted message: each attempt draws a
// Verdict from the injector (drop / duplicate / extra delay), arrivals
// are acknowledged, duplicates are suppressed by message identity, and
// an unacknowledged sender retransmits with exponential backoff until
// the Recovery policy's attempt budget runs out, at which point the
// operation completes with a structured *faults.TimeoutError.
//
// With no plan installed none of this code runs and the fault-free
// protocol engine in simmpi.go is byte-for-byte unchanged.
//
// Modeling note: the simulator is one address space, so "acks" are
// events, not payloads. The eager and control paths model the full ack
// cycle — including ack loss on the reverse link, which causes spurious
// retransmission that the receiver's dedup absorbs. Failure detection is
// therefore realistic: a sender can time out even though its message was
// delivered, exactly the ambiguity a real transport faces.

// xmitState tracks one reliable transmission.
type xmitState struct {
	attempts  int
	delivered bool
	acked     bool
	failed    bool
}

// xmit is a handle on one reliable transmission: the FEC layer uses it
// to observe a message's fate (first-attempt loss, delivery, failure)
// and to complete it out-of-band when a parity reconstruction repairs a
// dropped copy (see fec.go).
type xmit struct {
	w        *World
	src, dst int
	tag      comm.Tag
	id       uint64
	st       *xmitState
	onAck    func()
	// firstLost records whether attempt 0 drew a drop or corrupt verdict
	// — i.e. whether the first copy will never deliver. Known as soon as
	// chaosSend returns (the first attempt draws its verdict inline).
	firstLost bool
}

// repair completes the transmission out-of-band: an erasure-coded group
// reconstructed the payload at the receiver, so the message is delivered
// (via deliver, unless a wire copy arrived first — dedup holds) and a
// repair-ack travels back to stop the retransmit chain. The repair-ack
// is group control traffic and is not subject to per-message ack-loss
// verdicts; the per-attempt ack path keeps its own loss draws.
func (x *xmit) repair(deliver func()) {
	if x.st.failed || x.w.deadRank(x.src) || x.w.deadRank(x.dst) {
		return
	}
	if x.st.delivered {
		x.w.inj.NoteSuppressed()
	} else {
		x.st.delivered = true
		deliver()
	}
	x.w.K.Schedule(x.w.Net.ControlLatency(x.dst, x.src), func() {
		if x.st.acked || x.st.failed {
			return
		}
		x.st.acked = true
		if x.onAck != nil {
			x.onAck()
		}
	})
}

// chaosSend reliably moves one logical message from c to dst.
//
//	transmit(extra, arrive) models one attempt's transport cost and calls
//	                        arrive when that copy reaches dst (or never,
//	                        if the attempt was dropped upstream of it).
//	deliver                 runs exactly once, on the first arrival.
//	onAck                   runs once when the sender learns of delivery.
//	onFail                  runs once if every attempt goes unacknowledged.
//
// The returned handle lets the FEC layer repair the transmission; most
// callers discard it.
func (c *Comm) chaosSend(dst int, tag comm.Tag, size int,
	transmit func(extra time.Duration, arrive func()),
	deliver func(), onAck func(), onFail func(err *faults.TimeoutError)) *xmit {

	w := c.w
	w.xmitSeq++
	id := w.xmitSeq
	start := w.K.Now()
	st := &xmitState{}
	x := &xmit{w: w, src: c.rank, dst: dst, tag: tag, id: id, st: st, onAck: onAck}

	var try func()
	try = func() {
		if w.deadRank(c.rank) {
			// The sender crashed: its retry chain is abandoned silently
			// (fail-stop teardown, nobody is waiting on this request).
			return
		}
		attempt := st.attempts
		st.attempts++
		v := w.inj.Message(c.rank, dst, tag, id, attempt, w.K.Now(), size)
		if v.Drop {
			w.traceFault(trace.FaultDrop, c.rank, dst, tag, size, id)
		}
		if attempt == 0 {
			x.firstLost = v.Drop || v.Corrupt
		}
		send := func(extra time.Duration, corrupt bool) {
			transmit(extra, func() {
				if w.deadRank(c.rank) || w.deadRank(dst) {
					// Annihilation: a copy in flight from or to a crashed
					// rank vanishes at arrival — no delivery, no ack. The
					// sender (if alive) keeps retrying into its timeout
					// budget, exactly as with a black-holed link.
					return
				}
				if corrupt {
					// The damaged copy reached the receiver but fails its
					// checksum: a detected loss — no delivery, no ack, the
					// sender stays in its retransmit cycle (or FEC repairs).
					return
				}
				if st.delivered {
					w.inj.NoteSuppressed()
				} else {
					st.delivered = true
					deliver()
				}
				// Acknowledge this arrival back toward the sender. A lost
				// ack leaves the sender retransmitting; dedup absorbs it.
				if w.inj.AckDrop(dst, c.rank, tag, id, attempt, w.K.Now()) {
					return
				}
				w.K.Schedule(w.Net.ControlLatency(dst, c.rank), func() {
					if st.acked || st.failed {
						return
					}
					st.acked = true
					if onAck != nil {
						onAck()
					}
				})
			})
		}
		if !v.Drop {
			send(v.Extra, v.Corrupt)
			if v.Dup {
				// The duplicate trails the original by its own jitter draw.
				send(v.Extra+w.Net.ControlLatency(c.rank, dst), false)
			}
		}
		w.K.Schedule(w.rec.RetryDelay(attempt, id), func() {
			if st.acked || st.failed {
				return
			}
			if w.deadRank(c.rank) {
				return // dead sender: abandoned, not failed
			}
			if w.confirmedDead(dst) {
				// Fast-fail: the detector confirmed the peer dead, so
				// further retries cannot succeed — fail the operation now
				// with the attempts spent so far.
				st.failed = true
				err := &faults.TimeoutError{
					Rank: c.rank, Peer: dst, Tag: tag,
					Attempts: st.attempts, Elapsed: w.K.Now() - start,
				}
				w.inj.NoteTimeout()
				w.traceFault(trace.FaultTimeout, c.rank, dst, tag, size, id)
				w.failures = append(w.failures, err)
				if onFail != nil {
					onFail(err)
				}
				return
			}
			if st.attempts >= w.rec.MaxAttempts {
				st.failed = true
				err := &faults.TimeoutError{
					Rank: c.rank, Peer: dst, Tag: tag,
					Attempts: st.attempts, Elapsed: w.K.Now() - start,
				}
				w.inj.NoteTimeout()
				w.traceFault(trace.FaultTimeout, c.rank, dst, tag, size, id)
				w.failures = append(w.failures, err)
				if onFail != nil {
					onFail(err)
				}
				return
			}
			w.inj.NoteRetry()
			w.traceFault(trace.FaultRetry, c.rank, dst, tag, size, id)
			try()
		})
	}
	try()
	return x
}

// traceFault records one fault-path event (drop / retry / timeout) with
// the reliable-transmission id so a Perfetto view can group every attempt
// of the same logical message. No-op when tracing is off.
func (w *World) traceFault(kind trace.Kind, rank, peer int, tag comm.Tag, size int, xid uint64) {
	if tb := w.Trace; tb != nil {
		tb.Add(trace.Record{At: w.K.Now(), Rank: rank, Kind: kind,
			Peer: peer, Tag: tag, Size: size, Xid: xid})
	}
}

// chaosEager is the eager protocol under a fault plan. The payload is
// snapshotted once into a transmission buffer that feeds every
// (re)transmission; the receiver gets its own pooled copy on first
// arrival. The send completes on acknowledgement — not at first-hop end
// as in the fault-free engine — or with a TimeoutError.
func (c *Comm) chaosEager(d *Comm, req *progress.Req, tag comm.Tag, msg comm.Msg, st comm.Status) {
	send := msg
	var retained []byte
	if msg.Data != nil {
		retained = comm.GetBuf(len(msg.Data))
		copy(retained, msg.Data)
		send.Data = retained
	}
	release := func() {
		if retained != nil {
			comm.PutBuf(retained)
			retained = nil
		}
	}
	// When FEC is armed the framer shadows this transmission: it keeps its
	// own shard copy and, if the wire copy is lost but the group's parity
	// survives, re-delivers the reconstructed payload through mem.repair.
	var mem *fecMember
	if c.w.fec != nil && tag.Kind() != comm.KindFec {
		mem = c.w.fec.newMember(c, d, tag, msg, req.PostID, retained)
	}
	x := c.chaosSend(d.rank, tag, msg.Size,
		func(extra time.Duration, arrive func()) {
			c.w.K.Schedule(extra, func() {
				c.w.Net.StartTransfer(c.rank, d.rank, msg.Size, msg.Space, nil, arrive)
			})
		},
		func() {
			del := send
			if retained != nil {
				buf := comm.GetBuf(len(retained))
				copy(buf, retained)
				del.Data = buf
			}
			env := d.eng.NewEnv(c.rank, tag, del, nil)
			env.PostID = req.PostID
			d.arrive(env)
			if mem != nil {
				mem.arrived()
			}
		},
		func() {
			release()
			req.CompleteIfLive(st)
		},
		func(err *faults.TimeoutError) {
			release()
			fst := st
			fst.Err = err
			req.CompleteIfLive(fst)
		})
	if mem != nil {
		c.w.fec.enroll(mem, x)
	}
}

// chaosRendezvous announces a rendezvous send under a fault plan: the RTS
// control message is transmitted reliably; the data flies after the CTS
// (see chaosGrant). An undeliverable RTS fails the send request.
func (c *Comm) chaosRendezvous(d *Comm, req *progress.Req, tag comm.Tag, msg comm.Msg) {
	env := d.eng.NewEnv(c.rank, tag, msg, req)
	env.PostID = req.PostID
	rtsDelay := c.w.Net.ControlLatency(c.rank, d.rank) + c.w.Net.P.RndvAlpha
	c.chaosSend(d.rank, tag, 0,
		func(extra time.Duration, arrive func()) {
			c.w.K.Schedule(rtsDelay+extra, arrive)
		},
		func() { d.arrive(env) },
		nil, // the ack only stops retransmission; completion rides the data
		func(err *faults.TimeoutError) {
			req.CompleteIfLive(comm.Status{Source: c.rank, Tag: tag, Msg: msg, Err: err})
		})
}

// chaosGrant is the matched-rendezvous exchange under a fault plan: the
// CTS grant travels back reliably, then the bulk data crosses the fabric
// reliably; sender and receiver complete when the data lands. A dead
// reverse link fails the receive; a dead forward link fails both ends.
func (c *Comm) chaosGrant(req *progress.Req, src int, tag comm.Tag, msg comm.Msg, sender *progress.Req) {
	net := c.w.Net
	ctsDelay := net.ControlLatency(c.rank, src) + net.P.RndvAlpha
	sc := c.w.ranks[src]
	c.chaosSend(src, tag, 0,
		func(extra time.Duration, arrive func()) {
			c.w.K.Schedule(ctsDelay+extra, arrive)
		},
		func() {
			// CTS reached the sender: the data now crosses reliably.
			sc.chaosSend(c.rank, tag, msg.Size,
				func(extra time.Duration, arrive func()) {
					c.w.K.Schedule(extra, func() {
						net.StartTransfer(src, c.rank, msg.Size, msg.Space, nil, arrive)
					})
				},
				func() {
					// The sender keeps its buffer until its request completes;
					// snapshot into a pooled, receiver-owned copy first.
					recv := msg
					if msg.Data != nil {
						buf := comm.GetBuf(len(msg.Data))
						copy(buf, msg.Data)
						recv.Data = buf
					}
					sender.CompleteIfLive(comm.Status{Source: src, Tag: tag, Msg: msg})
					net.DeliverFrom(src, c.rank, msg.Size, req.Space, func() {
						req.CompleteIfLive(comm.Status{Source: src, Tag: tag, Msg: recv})
					})
				},
				nil,
				func(err *faults.TimeoutError) {
					sender.CompleteIfLive(comm.Status{Source: src, Tag: tag, Msg: msg, Err: err})
					req.CompleteIfLive(comm.Status{Source: src, Tag: tag, Err: err})
				})
		},
		nil,
		func(err *faults.TimeoutError) {
			req.CompleteIfLive(comm.Status{Source: src, Tag: tag, Err: err})
		})
}
