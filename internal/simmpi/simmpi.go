// Package simmpi implements comm.Comm on top of the discrete-event
// simulator, so the collective algorithms in internal/coll and
// internal/core run unmodified at 1000+-rank scale.
//
// The matching engine — posted/unexpected queues, tag matching,
// completion callbacks, wait loops — is the shared core in
// internal/progress; this package supplies the simulated substrate
// around it:
//
//   - Eager protocol for messages up to Params.EagerLimit: the payload is
//     pushed immediately; if it arrives before the matching receive is
//     posted it sits in the unexpected queue and the receiver pays an
//     extra buffering copy at match time — the cost ADAPT's M > N
//     in-flight receive window is designed to avoid (paper §2.2.1).
//   - Rendezvous protocol for larger messages: the sender posts an RTS
//     control message and the data transfer starts only once the receiver
//     has matched it, coupling the two ranks — the hidden synchronization
//     that propagates noise through blocking collectives (paper §2.1.1).
//
// Noise (internal/noise) freezes a rank's progress engine: whenever the
// rank resumes from a wait, its continuation is pushed to the noise
// availability horizon.
package simmpi

import (
	"fmt"
	"time"

	"adapt/internal/comm"
	"adapt/internal/faults"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
	"adapt/internal/progress"
	"adapt/internal/sim"
	"adapt/internal/trace"
)

// World is a simulated communicator spanning all ranks of a platform.
type World struct {
	K    *sim.Kernel
	Net  *netmodel.Net
	Spec noise.Spec
	// Trace, when non-nil, receives every point-to-point and compute
	// event (see internal/trace).
	Trace *trace.Buffer
	ranks []*Comm

	// Fault injection (nil inj = fault-free fast paths; see chaos.go).
	inj      *faults.Injector
	rec      faults.Recovery
	xmitSeq  uint64 // world-unique reliable-transmission ids
	failures []*faults.TimeoutError
	// Erasure coding over the eager segment stream (nil = off; see fec.go).
	fec *fecCtl
	// Fail-stop crash schedule and detector (nil = no crash rules armed;
	// see crash.go).
	crash *crashCtl
}

// NewWorld builds the per-rank endpoints for platform p with the given
// noise law on kernel k.
func NewWorld(k *sim.Kernel, p *netmodel.Platform, spec noise.Spec) *World {
	w := &World{K: k, Net: netmodel.NewNet(k, p), Spec: spec}
	n := p.Topo.Size()
	w.ranks = make([]*Comm, n)
	for r := 0; r < n; r++ {
		c := &Comm{w: w, rank: r, noiseSrc: spec.NewSource(r)}
		c.eng = progress.New(progress.Backend{
			Prefix: "simmpi",
			Rank:   r,
			Now:    k.Now,
			Trace:  func() *trace.Buffer { return w.Trace },
			Wake: func() {
				if c.flat {
					c.armDrain()
					return
				}
				if c.proc != nil {
					c.proc.Unpark()
				}
			},
			Block: func() {
				if c.flat {
					panic(fmt.Sprintf("simmpi: flat rank %d blocked — flat-mode drivers must stay nonblocking (use Start*/OnComplete/OnIdle)", c.rank))
				}
				c.proc.Park()
				c.noiseResume()
			},
			OnMatch:         c.onMatch,
			CauseOnComplete: true,
		})
		w.ranks[r] = c
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Spawn starts one simulated process per rank running body. Call
// Kernel.Run afterwards to execute the simulation.
func (w *World) Spawn(body func(c *Comm)) {
	for _, c := range w.ranks {
		c := c
		c.proc = w.K.Go(fmt.Sprintf("rank-%d", c.rank), func(p *sim.Proc) {
			body(c)
			if n := c.eng.Pending(); n != 0 {
				panic(fmt.Sprintf("simmpi: rank %d finished with %d operations in flight", c.rank, n))
			}
		})
	}
}

// Rank returns rank r's endpoint (for callers that need targeted setup).
func (w *World) Rank(r int) *Comm { return w.ranks[r] }

// InstallFaults arms the chaos transport: every point-to-point unit is
// subjected to the plan's verdicts and carried by the ack/retry machinery
// tuned by rec (zero fields take defaults). Must be called before Spawn.
func (w *World) InstallFaults(p faults.Plan, rec faults.Recovery) {
	w.inj = faults.NewInjector(p)
	w.rec = rec.Normalized()
	w.armCrashes(p)
}

// FaultStats returns what the injector did; zero when no plan installed.
func (w *World) FaultStats() faults.Stats {
	if w.inj == nil {
		return faults.Stats{}
	}
	return w.inj.Stats()
}

// Failures lists the operations that exhausted their attempt budget, in
// virtual-time order. Empty when every message was recovered.
func (w *World) Failures() []*faults.TimeoutError { return w.failures }

// Comm is one simulated rank's endpoint. It implements comm.Comm and, on
// GPU platforms, comm.DeviceComm. Matching and wait loops live in the
// shared engine; this type supplies the simulated transport.
type Comm struct {
	w    *World
	rank int
	proc *sim.Proc
	eng  *progress.Engine

	busyUntil time.Duration
	noiseSrc  *noise.Source

	// Flat rank-scheduling mode (see flat.go): the rank is this struct,
	// not a goroutine. busyUntil doubles as the rank's forward clock —
	// Compute advances it without blocking, sends launch lagged to it,
	// and completion callbacks run from deduplicated kernel drain events.
	flat       bool
	drainArmed bool
	drainFn    func()
	onIdle     func()
}

var _ comm.Comm = (*Comm)(nil)
var _ comm.DeviceComm = (*Comm)(nil)

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return len(c.w.ranks) }

// Now returns the rank's virtual clock.
func (c *Comm) Now() time.Duration { return c.w.K.Now() }

// AttachProgressNotifier wires a scheduler notifier to this endpoint's
// engine (see progress.Scheduler).
func (c *Comm) AttachProgressNotifier(n *progress.Notifier) { c.eng.AttachNotifier(n) }

// noiseResume delays the rank to its noise availability horizon. Called
// whenever the rank is about to continue executing after a wake-up.
func (c *Comm) noiseResume() {
	avail := c.noiseSrc.AvailableAt(c.proc.Now(), c.busyUntil)
	c.busyUntil = avail
	c.proc.SleepUntil(avail)
}

// resolveSpace maps MemDefault to the platform's payload home.
func (c *Comm) resolveSpace(s comm.MemSpace) comm.MemSpace { return c.w.Net.ResolveSpace(s) }

// Isend starts a non-blocking send of msg to dst.
func (c *Comm) Isend(dst int, tag comm.Tag, msg comm.Msg) comm.Request {
	if dst < 0 || dst >= c.Size() {
		panic(fmt.Sprintf("simmpi: send to rank %d of %d", dst, c.Size()))
	}
	c.w.noteSend(c) // crash point: the rank may die initiating this send
	req := c.eng.StartSend(dst, tag, msg.Size)
	if lag := c.sendLag(); lag > 0 {
		// Flat mode with the rank's busy clock ahead of virtual time: the
		// protocol launches when the rank would actually have issued it.
		c.w.K.Schedule(lag, func() { c.launchSend(req, dst, tag, msg) })
	} else {
		c.launchSend(req, dst, tag, msg)
	}
	return req
}

// sendLag returns how far this rank's busy clock runs ahead of virtual
// time. Always zero in proc mode (the goroutine slept through its
// compute, so its clock IS virtual time); in flat mode Compute advances
// busyUntil without blocking and sends must launch lagged to it.
func (c *Comm) sendLag() time.Duration {
	if !c.flat {
		return 0
	}
	if now := c.w.K.Now(); c.busyUntil > now {
		return c.busyUntil - now
	}
	return 0
}

// launchSend runs the send protocol for an already-registered request:
// eager push or rendezvous announcement. Runs at the rank's issue time.
func (c *Comm) launchSend(req *progress.Req, dst int, tag comm.Tag, msg comm.Msg) {
	d := c.w.ranks[dst]
	st := comm.Status{Source: c.rank, Tag: tag, Msg: msg}
	if msg.Size <= c.w.Net.P.EagerLimit {
		if c.w.inj != nil {
			c.chaosEager(d, req, tag, msg, st)
			return
		}
		// Eager: ship the payload now; sender completes at first-hop end.
		// Real payloads are snapshotted into a pooled buffer — the sender
		// may reuse its buffer the moment the send completes, which is
		// before the match — and the receiver owns the copy from here on.
		send := msg
		if msg.Data != nil {
			buf := comm.GetBuf(len(msg.Data))
			copy(buf, msg.Data)
			send.Data = buf
		}
		c.w.Net.StartTransfer(c.rank, dst, msg.Size, msg.Space,
			func() { req.Complete(st) },
			func() {
				env := d.eng.NewEnv(c.rank, tag, send, nil)
				env.PostID = req.PostID
				d.arrive(env)
			})
		return
	}
	// Rendezvous: announce via RTS; data moves once the receiver matches.
	if c.w.inj != nil {
		c.chaosRendezvous(d, req, tag, msg)
		return
	}
	rtsDelay := c.w.Net.ControlLatency(c.rank, dst) + c.w.Net.P.RndvAlpha
	c.w.K.Schedule(rtsDelay, func() {
		env := d.eng.NewEnv(c.rank, tag, msg, req)
		env.PostID = req.PostID
		d.arrive(env)
	})
}

// Irecv posts a non-blocking receive matching (src, tag) into the rank's
// default memory space.
func (c *Comm) Irecv(src int, tag comm.Tag) comm.Request {
	return c.IrecvIn(src, tag, comm.MemDefault)
}

// IrecvIn posts a non-blocking receive whose buffer lives in the given
// memory space (the §4.1 staging optimization receives GPU-bound traffic
// into an explicit host buffer).
func (c *Comm) IrecvIn(src int, tag comm.Tag, space comm.MemSpace) comm.Request {
	return c.eng.PostRecv(src, tag, space)
}

// arrive processes a payload or RTS reaching this rank's host boundary.
// Runs in kernel event context.
func (c *Comm) arrive(env *progress.Env) {
	switch c.eng.Arrive(env) {
	case progress.ArriveHalted:
		// The rank crashed after this copy left its sender (the chaos
		// transport normally annihilates such copies before arrival, so
		// this is a defensive path): fail a live rendezvous sender, swallow
		// an eager payload.
		if env.Rts != nil {
			err := &faults.TimeoutError{Rank: env.Src, Peer: c.rank, Tag: env.Tag, Attempts: 1}
			if c.w.inj != nil {
				c.w.inj.NoteTimeout()
			}
			c.w.failures = append(c.w.failures, err)
			env.Rts.CompleteIfLive(comm.Status{Source: env.Src, Tag: env.Tag, Err: err})
		} else if env.Msg.Data != nil {
			comm.PutBuf(env.Msg.Data)
		}
	default:
		// Matched (consumed via onMatch) or parked unexpected.
	}
}

// onMatch completes the (req, env) match. wasUnexpected indicates the
// payload sat in the unexpected queue and must be copied out. The
// envelope is recycled here; every field still needed below is copied
// into locals first.
func (c *Comm) onMatch(req *progress.Req, env *progress.Env, wasUnexpected bool) {
	net := c.w.Net
	src, tag, msg, sender := env.Src, env.Tag, env.Msg, env.Rts
	if sender != nil {
		req.MatchID = sender.PostID // causal Link: this receive consumed that send
	}
	c.eng.FreeEnv(env)
	if sender != nil {
		if c.w.inj != nil {
			c.chaosGrant(req, src, tag, msg, sender)
			return
		}
		// Rendezvous: grant (CTS) travels back, then the data flies. The
		// sender keeps its buffer until its request completes; the transfer
		// snapshots it into a pooled, receiver-owned copy at start time.
		ctsDelay := net.ControlLatency(c.rank, src) + net.P.RndvAlpha
		c.w.K.Schedule(ctsDelay, func() {
			recv := msg
			if msg.Data != nil {
				buf := comm.GetBuf(len(msg.Data))
				copy(buf, msg.Data)
				recv.Data = buf
			}
			st := comm.Status{Source: src, Tag: tag, Msg: recv}
			net.StartTransfer(src, c.rank, msg.Size, msg.Space,
				func() { sender.Complete(comm.Status{Source: src, Tag: tag, Msg: msg}) },
				func() {
					net.DeliverFrom(src, c.rank, msg.Size, req.Space, func() { req.Complete(st) })
				})
		})
		return
	}
	// Eager payload already at the host boundary (and, when real, already a
	// pooled copy owned by this rank — see Isend).
	st := comm.Status{Source: src, Tag: tag, Msg: msg}
	finish := func() {
		net.DeliverFrom(src, c.rank, msg.Size, req.Space, func() { req.Complete(st) })
	}
	if wasUnexpected {
		// Buffered copy-out penalty (paper §2.2.1: "memory allocation and
		// data copying ... significant latency").
		penalty := net.P.UnexpectedAlpha + net.P.CopyBw.Over(msg.Size)
		c.w.K.Schedule(penalty, finish)
		return
	}
	finish()
}

// Send performs a blocking send (Isend + Wait): for rendezvous sizes it
// returns only after the receiver matched, the handshake that couples
// blocking ranks together.
func (c *Comm) Send(dst int, tag comm.Tag, msg comm.Msg) {
	c.Wait(c.Isend(dst, tag, msg))
}

// Ssend performs a synchronous-mode send (MPI_Ssend): the rendezvous
// handshake is forced regardless of size, so it returns only once the
// receiver has matched.
func (c *Comm) Ssend(dst int, tag comm.Tag, msg comm.Msg) {
	if dst < 0 || dst >= c.Size() {
		panic(fmt.Sprintf("simmpi: ssend to rank %d of %d", dst, c.Size()))
	}
	c.w.noteSend(c) // crash point: the rank may die initiating this send
	req := c.eng.StartSend(dst, tag, msg.Size)
	d := c.w.ranks[dst]
	if c.w.inj != nil {
		c.chaosRendezvous(d, req, tag, msg)
	} else {
		rtsDelay := c.w.Net.ControlLatency(c.rank, dst) + c.w.Net.P.RndvAlpha
		c.w.K.Schedule(rtsDelay, func() {
			d.arrive(d.eng.NewEnv(c.rank, tag, msg, req))
		})
	}
	c.Wait(req)
}

// Iprobe reports whether a matching message (or rendezvous announcement)
// has arrived without consuming it.
func (c *Comm) Iprobe(src int, tag comm.Tag) (comm.Status, bool) {
	return c.eng.Iprobe(src, tag)
}

// Probe blocks until a matching message is available, leaving it queued.
func (c *Comm) Probe(src int, tag comm.Tag) comm.Status {
	return c.eng.Probe(src, tag)
}

// Recv performs a blocking receive.
func (c *Comm) Recv(src int, tag comm.Tag) comm.Status {
	return c.Wait(c.Irecv(src, tag))
}

// Wait blocks until r completes, firing ready callbacks meanwhile.
func (c *Comm) Wait(r comm.Request) comm.Status { return c.eng.Wait(r) }

// WaitAll blocks until every request completes. nil entries (inactive
// handles, as with MPI_REQUEST_NULL) are skipped.
func (c *Comm) WaitAll(rs []comm.Request) { c.eng.WaitAll(rs) }

// WaitAny blocks until some request completes and returns its index.
// nil entries are inactive and skipped; at least one entry must be live.
func (c *Comm) WaitAny(rs []comm.Request) (int, comm.Status) { return c.eng.WaitAny(rs) }

// OnComplete attaches fn to r; it fires from Progress/Wait on this rank.
func (c *Comm) OnComplete(r comm.Request, fn func(comm.Status)) { c.eng.OnComplete(r, fn) }

// Progress blocks until at least one completion is processed, fires ready
// callbacks, and returns.
func (c *Comm) Progress() { c.eng.Progress() }

// TryProgress fires ready callbacks without blocking.
func (c *Comm) TryProgress() bool { return c.eng.TryProgress() }

// Compute charges n bytes of blocking local work to this rank.
func (c *Comm) Compute(n int, kind comm.ComputeKind) {
	c.ComputeFor(c.w.Net.CPUCost(n, kind))
}

// ComputeFor charges an explicit blocking local-work duration. The
// compute span becomes the rank's causal context: whatever the handler
// posts next depends on this work having finished.
func (c *Comm) ComputeFor(d time.Duration) {
	if tb := c.w.Trace; tb != nil {
		if id := tb.Add(trace.Record{At: c.w.K.Now(), Rank: c.rank, Kind: trace.Compute,
			Peer: -1, Dur: d, Parent: c.eng.TraceSetCause(0)}); id != 0 {
			c.eng.TraceSetCause(id)
		}
	}
	if c.flat {
		// Flat rank: charge the work to the busy clock without blocking.
		// Sends issued after this charge launch lagged to the new clock
		// (sendLag), and queued completion callbacks wait for it (the
		// DrainWhile gate) — the same virtual-time trajectory the proc
		// mode produces by sleeping here.
		c.busyUntil = c.noiseSrc.AvailableAt(c.w.K.Now(), c.busyUntil) + d
		c.armDrain() // realize the clock as a kernel event (makespan parity)
		return
	}
	c.noiseResume()
	c.proc.Sleep(d)
	c.busyUntil = c.proc.Now()
}

// TraceEmit implements trace.Emitter: it stamps the record with this
// rank's identity and virtual clock, defaults its Parent to the current
// causal context, and appends it. Returns 0 (and stays allocation-free)
// when tracing is off.
func (c *Comm) TraceEmit(r trace.Record) uint64 { return c.eng.TraceEmit(r) }

// TraceSetCause installs id as the rank's causal context and returns the
// previous one; collectives bracket their entry with it so the initial
// wave of posts links back to the CollStart record.
func (c *Comm) TraceSetCause(id uint64) uint64 { return c.eng.TraceSetCause(id) }

// DeviceReduce offloads an n-byte reduction to this rank's GPU (§4.2).
func (c *Comm) DeviceReduce(n int) comm.Request {
	req := c.eng.StartOp()
	c.w.Net.GPUReduce(c.rank, n, func() { req.Complete(comm.Status{Source: c.rank}) })
	return req
}

// AsyncCopy starts an asynchronous host↔device copy (§4.1 staging flush).
func (c *Comm) AsyncCopy(n int, from, to comm.MemSpace) comm.Request {
	req := c.eng.StartOp()
	c.w.Net.AsyncCopy(c.rank, n, from, to, func() { req.Complete(comm.Status{Source: c.rank}) })
	return req
}

// DefaultSpace reports where this rank's payloads live.
func (c *Comm) DefaultSpace() comm.MemSpace { return c.resolveSpace(comm.MemDefault) }
