// Package simmpi implements comm.Comm on top of the discrete-event
// simulator, so the collective algorithms in internal/coll and
// internal/core run unmodified at 1000+-rank scale.
//
// The protocol engine mirrors a real MPI point-to-point layer:
//
//   - Eager protocol for messages up to Params.EagerLimit: the payload is
//     pushed immediately; if it arrives before the matching receive is
//     posted it sits in the unexpected queue and the receiver pays an
//     extra buffering copy at match time — the cost ADAPT's M > N
//     in-flight receive window is designed to avoid (paper §2.2.1).
//   - Rendezvous protocol for larger messages: the sender posts an RTS
//     control message and the data transfer starts only once the receiver
//     has matched it, coupling the two ranks — the hidden synchronization
//     that propagates noise through blocking collectives (paper §2.1.1).
//
// Noise (internal/noise) freezes a rank's progress engine: whenever the
// rank resumes from a wait, its continuation is pushed to the noise
// availability horizon.
package simmpi

import (
	"fmt"
	"time"

	"adapt/internal/comm"
	"adapt/internal/faults"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
	"adapt/internal/sim"
	"adapt/internal/trace"
)

// World is a simulated communicator spanning all ranks of a platform.
type World struct {
	K    *sim.Kernel
	Net  *netmodel.Net
	Spec noise.Spec
	// Trace, when non-nil, receives every point-to-point and compute
	// event (see internal/trace).
	Trace *trace.Buffer
	ranks []*Comm

	// Fault injection (nil inj = fault-free fast paths; see chaos.go).
	inj      *faults.Injector
	rec      faults.Recovery
	xmitSeq  uint64 // world-unique reliable-transmission ids
	failures []*faults.TimeoutError
	// Fail-stop crash schedule and detector (nil = no crash rules armed;
	// see crash.go).
	crash *crashCtl
}

// NewWorld builds the per-rank endpoints for platform p with the given
// noise law on kernel k.
func NewWorld(k *sim.Kernel, p *netmodel.Platform, spec noise.Spec) *World {
	w := &World{K: k, Net: netmodel.NewNet(k, p), Spec: spec}
	n := p.Topo.Size()
	w.ranks = make([]*Comm, n)
	for r := 0; r < n; r++ {
		w.ranks[r] = &Comm{w: w, rank: r, noiseSrc: spec.NewSource(r)}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Spawn starts one simulated process per rank running body. Call
// Kernel.Run afterwards to execute the simulation.
func (w *World) Spawn(body func(c *Comm)) {
	for _, c := range w.ranks {
		c := c
		c.proc = w.K.Go(fmt.Sprintf("rank-%d", c.rank), func(p *sim.Proc) {
			body(c)
			if c.pendingOps != 0 {
				panic(fmt.Sprintf("simmpi: rank %d finished with %d operations in flight", c.rank, c.pendingOps))
			}
		})
	}
}

// Rank returns rank r's endpoint (for callers that need targeted setup).
func (w *World) Rank(r int) *Comm { return w.ranks[r] }

// InstallFaults arms the chaos transport: every point-to-point unit is
// subjected to the plan's verdicts and carried by the ack/retry machinery
// tuned by rec (zero fields take defaults). Must be called before Spawn.
func (w *World) InstallFaults(p faults.Plan, rec faults.Recovery) {
	w.inj = faults.NewInjector(p)
	w.rec = rec.Normalized()
	w.armCrashes(p)
}

// FaultStats returns what the injector did; zero when no plan installed.
func (w *World) FaultStats() faults.Stats {
	if w.inj == nil {
		return faults.Stats{}
	}
	return w.inj.Stats()
}

// Failures lists the operations that exhausted their attempt budget, in
// virtual-time order. Empty when every message was recovered.
func (w *World) Failures() []*faults.TimeoutError { return w.failures }

// envelope is a message (or its rendezvous RTS) at the receiver side.
type envelope struct {
	src    int
	tag    comm.Tag
	msg    comm.Msg
	rts    *request // non-nil: rendezvous announcement; data not yet sent
	seq    uint64   // arrival order, for deterministic diagnostics
	postID uint64   // sender's SendPost trace id, carried for the Link edge
}

// request implements comm.Request.
type request struct {
	c      *Comm
	isSend bool
	done   bool
	status comm.Status
	cb     func(comm.Status)

	// receive-side matching state
	src   int
	tag   comm.Tag
	space comm.MemSpace

	// causal trace ids (0 when tracing is off)
	postID  uint64 // this operation's post record
	matchID uint64 // receives: the matched sender's SendPost record
	doneID  uint64 // this operation's completion record
}

func (r *request) Test() (comm.Status, bool) { return r.status, r.done }
func (r *request) IsSend() bool              { return r.isSend }

// Comm is one simulated rank's endpoint. It implements comm.Comm and, on
// GPU platforms, comm.DeviceComm.
type Comm struct {
	w    *World
	rank int
	proc *sim.Proc

	posted     []*request  // receive queue, post order
	unexpected []*envelope // arrived-unmatched queue, arrival order
	arrivalSeq uint64

	cbQueue        []*request // completed requests with callbacks to fire
	completedCount uint64
	pendingOps     int

	busyUntil time.Duration
	noiseSrc  *noise.Source

	// Control-plane notice queue (fail-stop model; see crash.go).
	notices   []comm.Notice
	noticeSeq uint64

	// curCause is the rank's causal context: the record id of the latest
	// event the rank has observed — the completion whose callback is
	// running, the last completion that released a Wait, a finished
	// compute, or a collective entry. Operations posted afterwards get it
	// as their causal Parent. Inside a callback it is that callback's
	// completion (the paper's callback → posted-op chain); between
	// callbacks it persists as the last completion, so straight-line code
	// after a Wait (program order) stays on the causal chain too. 0
	// whenever tracing is off, so the fast paths never branch.
	curCause uint64

	// envFree recycles envelope structs: a collective pushes one envelope
	// per segment per hop through this rank, and each lives only from
	// arrival to match. The kernel is single-threaded, so a plain slice
	// free-list (no locking) is safe.
	envFree []*envelope
}

// newEnvelope draws an envelope from the rank's free-list.
func (c *Comm) newEnvelope(src int, tag comm.Tag, msg comm.Msg, rts *request) *envelope {
	if n := len(c.envFree); n > 0 {
		env := c.envFree[n-1]
		c.envFree = c.envFree[:n-1]
		*env = envelope{src: src, tag: tag, msg: msg, rts: rts}
		return env
	}
	return &envelope{src: src, tag: tag, msg: msg, rts: rts}
}

// freeEnvelope returns a matched envelope to the free-list. Callers must
// have copied out every field they still need.
func (c *Comm) freeEnvelope(env *envelope) {
	*env = envelope{}
	c.envFree = append(c.envFree, env)
}

var _ comm.Comm = (*Comm)(nil)
var _ comm.DeviceComm = (*Comm)(nil)

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return len(c.w.ranks) }

// Now returns the rank's virtual clock.
func (c *Comm) Now() time.Duration { return c.w.K.Now() }

// noiseResume delays the rank to its noise availability horizon. Called
// whenever the rank is about to continue executing after a wake-up.
func (c *Comm) noiseResume() {
	avail := c.noiseSrc.AvailableAt(c.proc.Now(), c.busyUntil)
	c.busyUntil = avail
	c.proc.SleepUntil(avail)
}

// complete marks req done and queues its callback on the owning rank.
func (req *request) complete(st comm.Status) {
	if req.done {
		panic("simmpi: request completed twice")
	}
	req.done = true
	req.status = st
	c := req.c
	if tb := c.w.Trace; tb != nil {
		kind := trace.RecvDone
		peer := st.Source
		if req.isSend {
			kind = trace.SendDone
		}
		req.doneID = tb.Add(trace.Record{At: c.w.K.Now(), Rank: c.rank, Kind: kind,
			Peer: peer, Tag: st.Tag, Size: st.Msg.Size,
			Parent: req.postID, Link: req.matchID})
		if req.doneID != 0 {
			// The rank cannot act on anything older once this completion
			// lands: it becomes the causal context for whatever the rank
			// posts next (callback or post-Wait straight-line code).
			c.curCause = req.doneID
		}
	}
	c.completedCount++
	c.pendingOps--
	if req.cb != nil {
		c.cbQueue = append(c.cbQueue, req)
	}
	c.proc.Unpark()
}

// drainCallbacks fires all queued callbacks on the caller's goroutine.
// While a callback runs, the completion record it reacts to is the rank's
// causal context: anything the callback posts links back to it.
func (c *Comm) drainCallbacks() int {
	n := 0
	for len(c.cbQueue) > 0 {
		req := c.cbQueue[0]
		c.cbQueue = c.cbQueue[1:]
		cb := req.cb
		req.cb = nil
		if req.doneID != 0 {
			c.curCause = req.doneID
		}
		cb(req.status)
		n++
	}
	return n
}

// resolveSpace maps MemDefault to the platform's payload home.
func (c *Comm) resolveSpace(s comm.MemSpace) comm.MemSpace { return c.w.Net.ResolveSpace(s) }

// Isend starts a non-blocking send of msg to dst.
func (c *Comm) Isend(dst int, tag comm.Tag, msg comm.Msg) comm.Request {
	if dst < 0 || dst >= c.Size() {
		panic(fmt.Sprintf("simmpi: send to rank %d of %d", dst, c.Size()))
	}
	c.w.noteSend(c) // crash point: the rank may die initiating this send
	req := &request{c: c, isSend: true}
	c.pendingOps++
	d := c.w.ranks[dst]
	st := comm.Status{Source: c.rank, Tag: tag, Msg: msg}
	if tb := c.w.Trace; tb != nil {
		req.postID = tb.Add(trace.Record{At: c.w.K.Now(), Rank: c.rank, Kind: trace.SendPost,
			Peer: dst, Tag: tag, Size: msg.Size, Parent: c.curCause})
	}
	if msg.Size <= c.w.Net.P.EagerLimit {
		if c.w.inj != nil {
			c.chaosEager(d, req, tag, msg, st)
			return req
		}
		// Eager: ship the payload now; sender completes at first-hop end.
		// Real payloads are snapshotted into a pooled buffer — the sender
		// may reuse its buffer the moment the send completes, which is
		// before the match — and the receiver owns the copy from here on.
		send := msg
		if msg.Data != nil {
			buf := comm.GetBuf(len(msg.Data))
			copy(buf, msg.Data)
			send.Data = buf
		}
		c.w.Net.StartTransfer(c.rank, dst, msg.Size, msg.Space,
			func() { req.complete(st) },
			func() {
				env := d.newEnvelope(c.rank, tag, send, nil)
				env.postID = req.postID
				d.arrive(env)
			})
		return req
	}
	// Rendezvous: announce via RTS; data moves once the receiver matches.
	if c.w.inj != nil {
		c.chaosRendezvous(d, req, tag, msg)
		return req
	}
	rtsDelay := c.w.Net.ControlLatency(c.rank, dst) + c.w.Net.P.RndvAlpha
	c.w.K.Schedule(rtsDelay, func() {
		env := d.newEnvelope(c.rank, tag, msg, req)
		env.postID = req.postID
		d.arrive(env)
	})
	return req
}

// Irecv posts a non-blocking receive matching (src, tag) into the rank's
// default memory space.
func (c *Comm) Irecv(src int, tag comm.Tag) comm.Request {
	return c.IrecvIn(src, tag, comm.MemDefault)
}

// IrecvIn posts a non-blocking receive whose buffer lives in the given
// memory space (the §4.1 staging optimization receives GPU-bound traffic
// into an explicit host buffer).
func (c *Comm) IrecvIn(src int, tag comm.Tag, space comm.MemSpace) comm.Request {
	req := &request{c: c, src: src, tag: tag, space: space}
	c.pendingOps++
	if tb := c.w.Trace; tb != nil {
		req.postID = tb.Add(trace.Record{At: c.w.K.Now(), Rank: c.rank, Kind: trace.RecvPost,
			Peer: src, Tag: tag, Parent: c.curCause})
	}
	// Unexpected queue first (MPI matching order).
	for i, env := range c.unexpected {
		if req.matches(env) {
			c.unexpected = append(c.unexpected[:i:i], c.unexpected[i+1:]...)
			c.deliverMatched(req, env, true)
			return req
		}
	}
	c.posted = append(c.posted, req)
	return req
}

func (req *request) matches(env *envelope) bool {
	return (req.src == comm.AnySource || req.src == env.src) && req.tag.Matches(env.tag)
}

// arrive processes a payload or RTS reaching this rank's host boundary.
// Runs in kernel event context.
func (c *Comm) arrive(env *envelope) {
	c.arrivalSeq++
	env.seq = c.arrivalSeq
	for i, req := range c.posted {
		if req.matches(env) {
			c.posted = append(c.posted[:i:i], c.posted[i+1:]...)
			c.deliverMatched(req, env, false)
			return
		}
	}
	c.unexpected = append(c.unexpected, env)
	c.proc.Unpark() // wake a blocked Probe
}

// deliverMatched completes the (req, env) match. wasUnexpected indicates
// the payload sat in the unexpected queue and must be copied out. The
// envelope is recycled here; every field still needed below is copied
// into locals first.
func (c *Comm) deliverMatched(req *request, env *envelope, wasUnexpected bool) {
	net := c.w.Net
	src, tag, msg, sender := env.src, env.tag, env.msg, env.rts
	req.matchID = env.postID // causal Link: this receive consumed that send
	if sender != nil {
		req.matchID = sender.postID
	}
	c.freeEnvelope(env)
	if sender != nil {
		if c.w.inj != nil {
			c.chaosGrant(req, src, tag, msg, sender)
			return
		}
		// Rendezvous: grant (CTS) travels back, then the data flies. The
		// sender keeps its buffer until its request completes; the transfer
		// snapshots it into a pooled, receiver-owned copy at start time.
		ctsDelay := net.ControlLatency(c.rank, src) + net.P.RndvAlpha
		c.w.K.Schedule(ctsDelay, func() {
			recv := msg
			if msg.Data != nil {
				buf := comm.GetBuf(len(msg.Data))
				copy(buf, msg.Data)
				recv.Data = buf
			}
			st := comm.Status{Source: src, Tag: tag, Msg: recv}
			net.StartTransfer(src, c.rank, msg.Size, msg.Space,
				func() { sender.complete(comm.Status{Source: src, Tag: tag, Msg: msg}) },
				func() {
					net.DeliverFrom(src, c.rank, msg.Size, req.space, func() { req.complete(st) })
				})
		})
		return
	}
	// Eager payload already at the host boundary (and, when real, already a
	// pooled copy owned by this rank — see Isend).
	st := comm.Status{Source: src, Tag: tag, Msg: msg}
	finish := func() {
		net.DeliverFrom(src, c.rank, msg.Size, req.space, func() { req.complete(st) })
	}
	if wasUnexpected {
		// Buffered copy-out penalty (paper §2.2.1: "memory allocation and
		// data copying ... significant latency").
		penalty := net.P.UnexpectedAlpha + net.P.CopyBw.Over(msg.Size)
		c.w.K.Schedule(penalty, finish)
		return
	}
	finish()
}

// Send performs a blocking send (Isend + Wait): for rendezvous sizes it
// returns only after the receiver matched, the handshake that couples
// blocking ranks together.
func (c *Comm) Send(dst int, tag comm.Tag, msg comm.Msg) {
	c.Wait(c.Isend(dst, tag, msg))
}

// Ssend performs a synchronous-mode send (MPI_Ssend): the rendezvous
// handshake is forced regardless of size, so it returns only once the
// receiver has matched.
func (c *Comm) Ssend(dst int, tag comm.Tag, msg comm.Msg) {
	if dst < 0 || dst >= c.Size() {
		panic(fmt.Sprintf("simmpi: ssend to rank %d of %d", dst, c.Size()))
	}
	c.w.noteSend(c) // crash point: the rank may die initiating this send
	req := &request{c: c, isSend: true}
	c.pendingOps++
	d := c.w.ranks[dst]
	if tb := c.w.Trace; tb != nil {
		req.postID = tb.Add(trace.Record{At: c.w.K.Now(), Rank: c.rank, Kind: trace.SendPost,
			Peer: dst, Tag: tag, Size: msg.Size, Parent: c.curCause})
	}
	if c.w.inj != nil {
		c.chaosRendezvous(d, req, tag, msg)
	} else {
		rtsDelay := c.w.Net.ControlLatency(c.rank, dst) + c.w.Net.P.RndvAlpha
		c.w.K.Schedule(rtsDelay, func() {
			d.arrive(d.newEnvelope(c.rank, tag, msg, req))
		})
	}
	c.Wait(req)
}

// Iprobe reports whether a matching message (or rendezvous announcement)
// has arrived without consuming it.
func (c *Comm) Iprobe(src int, tag comm.Tag) (comm.Status, bool) {
	probe := &request{c: c, src: src, tag: tag}
	for _, env := range c.unexpected {
		if probe.matches(env) {
			return comm.Status{Source: env.src, Tag: env.tag,
				Msg: comm.Msg{Size: env.msg.Size, Space: env.msg.Space}}, true
		}
	}
	return comm.Status{}, false
}

// Probe blocks until a matching message is available, leaving it queued.
func (c *Comm) Probe(src int, tag comm.Tag) comm.Status {
	for {
		if st, ok := c.Iprobe(src, tag); ok {
			return st
		}
		c.proc.Park()
		c.noiseResume()
	}
}

// Recv performs a blocking receive.
func (c *Comm) Recv(src int, tag comm.Tag) comm.Status {
	return c.Wait(c.Irecv(src, tag))
}

// Wait blocks until r completes, firing ready callbacks meanwhile.
func (c *Comm) Wait(r comm.Request) comm.Status {
	req := r.(*request)
	for {
		c.drainCallbacks()
		if req.done {
			return req.status
		}
		c.proc.Park()
		c.noiseResume()
	}
}

// WaitAll blocks until every request completes. nil entries (inactive
// handles, as with MPI_REQUEST_NULL) are skipped.
func (c *Comm) WaitAll(rs []comm.Request) {
	for {
		c.drainCallbacks()
		alldone := true
		for _, r := range rs {
			if r == nil {
				continue
			}
			if _, ok := r.Test(); !ok {
				alldone = false
				break
			}
		}
		if alldone {
			return
		}
		c.proc.Park()
		c.noiseResume()
	}
}

// WaitAny blocks until some request completes and returns its index.
// nil entries are inactive and skipped; at least one entry must be live.
func (c *Comm) WaitAny(rs []comm.Request) (int, comm.Status) {
	live := false
	for _, r := range rs {
		if r != nil {
			live = true
			break
		}
	}
	if !live {
		panic("simmpi: WaitAny with no live request")
	}
	for {
		c.drainCallbacks()
		for i, r := range rs {
			if r == nil {
				continue
			}
			if st, ok := r.Test(); ok {
				return i, st
			}
		}
		c.proc.Park()
		c.noiseResume()
	}
}

// OnComplete attaches fn to r; it fires from Progress/Wait on this rank.
func (c *Comm) OnComplete(r comm.Request, fn func(comm.Status)) {
	req := r.(*request)
	if req.c != c {
		panic("simmpi: OnComplete on foreign request")
	}
	if req.cb != nil {
		panic("simmpi: request already has a callback")
	}
	if req.done {
		req.cb = fn
		c.cbQueue = append(c.cbQueue, req)
		return
	}
	req.cb = fn
}

// Progress blocks until at least one completion is processed, fires ready
// callbacks, and returns.
func (c *Comm) Progress() {
	start := c.completedCount
	for {
		if c.drainCallbacks() > 0 || c.completedCount > start {
			return
		}
		if c.pendingOps == 0 {
			panic(fmt.Sprintf("simmpi: rank %d progressing with no operation in flight", c.rank))
		}
		c.proc.Park()
		c.noiseResume()
	}
}

// TryProgress fires ready callbacks without blocking.
func (c *Comm) TryProgress() bool {
	return c.drainCallbacks() > 0
}

// Compute charges n bytes of blocking local work to this rank.
func (c *Comm) Compute(n int, kind comm.ComputeKind) {
	c.ComputeFor(c.w.Net.CPUCost(n, kind))
}

// ComputeFor charges an explicit blocking local-work duration. The
// compute span becomes the rank's causal context: whatever the handler
// posts next depends on this work having finished.
func (c *Comm) ComputeFor(d time.Duration) {
	if tb := c.w.Trace; tb != nil {
		if id := tb.Add(trace.Record{At: c.w.K.Now(), Rank: c.rank, Kind: trace.Compute,
			Peer: -1, Dur: d, Parent: c.curCause}); id != 0 {
			c.curCause = id
		}
	}
	c.noiseResume()
	c.proc.Sleep(d)
	c.busyUntil = c.proc.Now()
}

// TraceEmit implements trace.Emitter: it stamps the record with this
// rank's identity and virtual clock, defaults its Parent to the current
// causal context, and appends it. Returns 0 (and stays allocation-free)
// when tracing is off.
func (c *Comm) TraceEmit(r trace.Record) uint64 {
	tb := c.w.Trace
	if tb == nil {
		return 0
	}
	r.At = c.w.K.Now()
	r.Rank = c.rank
	if r.Parent == 0 {
		r.Parent = c.curCause
	}
	return tb.Add(r)
}

// TraceSetCause installs id as the rank's causal context and returns the
// previous one; collectives bracket their entry with it so the initial
// wave of posts links back to the CollStart record.
func (c *Comm) TraceSetCause(id uint64) uint64 {
	prev := c.curCause
	c.curCause = id
	return prev
}

// DeviceReduce offloads an n-byte reduction to this rank's GPU (§4.2).
func (c *Comm) DeviceReduce(n int) comm.Request {
	req := &request{c: c, isSend: true}
	c.pendingOps++
	c.w.Net.GPUReduce(c.rank, n, func() { req.complete(comm.Status{Source: c.rank}) })
	return req
}

// AsyncCopy starts an asynchronous host↔device copy (§4.1 staging flush).
func (c *Comm) AsyncCopy(n int, from, to comm.MemSpace) comm.Request {
	req := &request{c: c, isSend: true}
	c.pendingOps++
	c.w.Net.AsyncCopy(c.rank, n, from, to, func() { req.complete(comm.Status{Source: c.rank}) })
	return req
}

// DefaultSpace reports where this rank's payloads live.
func (c *Comm) DefaultSpace() comm.MemSpace { return c.resolveSpace(comm.MemDefault) }
