package simmpi

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"adapt/internal/comm"
	"adapt/internal/faults"
	"adapt/internal/fec"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
	"adapt/internal/sim"
)

// runFec spins up a 2-node world with the plan and FEC config installed.
func runFec(t *testing.T, plan string, rec faults.Recovery, cfg fec.Config, body func(c *Comm)) *World {
	t.Helper()
	k := sim.New()
	w := NewWorld(k, netmodel.Cori(2), noise.None)
	w.InstallFaults(faults.MustParsePlan(plan), rec)
	w.EnableFEC(cfg)
	w.Spawn(body)
	if _, err := k.Run(); err != nil {
		t.Fatalf("simulation failed: %v", err)
	}
	return w
}

// generousRec gives the repair path lots of headroom before the first
// retransmit timer fires: the group flush runs at RTO/4, so parity plus
// the repair-ack resolve well inside one RTO.
func generousRec() faults.Recovery {
	return faults.Recovery{RTO: 10 * time.Millisecond}.Normalized()
}

// fecPayload gives each segment distinct bytes so a mis-reconstruction
// cannot masquerade as a clean delivery.
func fecPayload(i int) []byte {
	b := make([]byte, 64+i%7)
	for j := range b {
		b[j] = byte(i*31 + j)
	}
	return b
}

// The tentpole claim: on a forward-lossy link, every loss that stays
// within the group's parity is repaired by reconstruction — bit-exact
// payloads, zero retransmissions. Scanned across seeds both for the
// invariant (no group lost ⇒ no retries) and for at least one seed that
// actually exercised the repair path.
func TestFECZeroRetransmitWithinParity(t *testing.T) {
	for _, tc := range []struct {
		name, plan string
	}{
		// Forward-only loss: rank-/all-scoped plans would hit acks too and
		// trigger spurious retransmits FEC cannot (and must not) prevent.
		{"drop", "seed=%d; link 0->1: drop=0.12"},
		// A corrupt copy flies, fails its checksum on arrival, and is a
		// detected loss — reconstruction covers it identically.
		{"corrupt", "seed=%d; link 0->1: corrupt=0.12"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			exercised := false
			for seed := 1; seed <= 30; seed++ {
				plan := fmt.Sprintf(tc.plan, seed)
				w := runFec(t, plan, generousRec(), fec.Config{K: 4, M: 2}, func(c *Comm) {
					switch c.Rank() {
					case 0:
						for i := 0; i < 40; i++ {
							c.Send(1, tag(i), comm.Bytes(fecPayload(i)))
						}
					case 1:
						for i := 0; i < 40; i++ {
							st := c.Recv(0, tag(i))
							if !bytes.Equal(st.Msg.Data, fecPayload(i)) {
								t.Errorf("seed %d segment %d corrupted: %q", seed, i, st.Msg.Data)
							}
						}
					}
				})
				st, fs := w.FaultStats(), w.FECStats()
				if fs.GroupsLost == 0 && st.Retries != 0 {
					t.Fatalf("seed %d: %d retries with every group repaired (faults %v, fec %+v)",
						seed, st.Retries, st, fs)
				}
				if len(w.Failures()) != 0 {
					t.Fatalf("seed %d: unrecovered loss: %v", seed, w.Failures()[0])
				}
				if st.Drops+st.Corrupts > 0 && fs.Reconstructed > 0 && st.Retries == 0 {
					exercised = true
				}
			}
			if !exercised {
				t.Fatal("no seed exercised the zero-retransmit repair path")
			}
		})
	}
}

// Loss beyond the parity budget must fall back to the ARQ machinery the
// FEC layer shadows: the retransmit timers were armed all along, so the
// stream still completes — it just pays the round trips.
func TestFECLossBeyondParityFallsBackToARQ(t *testing.T) {
	received := 0
	w := runFec(t, "seed=3; link 0->1: drop=0.7", generousRec(), fec.Config{K: 4, M: 1}, func(c *Comm) {
		switch c.Rank() {
		case 0:
			for i := 0; i < 20; i++ {
				c.Send(1, tag(i), comm.Bytes(fecPayload(i)))
			}
		case 1:
			for i := 0; i < 20; i++ {
				st := c.Recv(0, tag(i))
				if !bytes.Equal(st.Msg.Data, fecPayload(i)) {
					t.Errorf("segment %d corrupted", i)
				}
				received++
			}
		}
	})
	if received != 20 {
		t.Fatalf("received %d of 20", received)
	}
	st, fs := w.FaultStats(), w.FECStats()
	if fs.GroupsLost == 0 {
		t.Fatalf("70%% drop with m=1 never outran the parity: %+v", fs)
	}
	if st.Retries == 0 {
		t.Fatalf("lost groups never retransmitted: faults %v, fec %+v", st, fs)
	}
	if len(w.Failures()) != 0 {
		t.Fatalf("ARQ backstop failed to recover: %v", w.Failures()[0])
	}
}

// Past the attempt budget the structured-failure path must survive FEC:
// a black-holed link with no retries reports a *faults.TimeoutError.
func TestFECExhaustedAttemptsFailStructured(t *testing.T) {
	var sendStatus comm.Status
	w := runFec(t, "seed=1; link 0->1: drop=1", faults.NoRecovery(), fec.Config{K: 2, M: 1}, func(c *Comm) {
		if c.Rank() == 0 {
			r1 := c.Isend(1, tag(0), comm.Bytes(fecPayload(0)))
			r2 := c.Isend(1, tag(1), comm.Bytes(fecPayload(1)))
			sendStatus = c.Wait(r1)
			c.Wait(r2)
		}
	})
	if sendStatus.Err == nil {
		t.Fatal("black-holed send completed without error")
	}
	if fs := w.FECStats(); fs.GroupsLost == 0 {
		t.Fatalf("total loss never recorded a lost group: %+v", fs)
	}
	if len(w.Failures()) == 0 {
		t.Fatal("no structured failures recorded")
	}
}

// Elided payloads (Sized messages carry no bytes) still enroll in
// groups — their shards are empty — and losses still repair: the
// reconstruction path must re-deliver the zero-byte envelope.
func TestFECElidedPayloads(t *testing.T) {
	const n = 24
	received := 0
	w := runFec(t, "seed=8; link 0->1: drop=0.25", generousRec(), fec.Config{K: 4, M: 2}, func(c *Comm) {
		switch c.Rank() {
		case 0:
			for i := 0; i < n; i++ {
				c.Send(1, tag(i), comm.Sized(256))
			}
		case 1:
			for i := 0; i < n; i++ {
				st := c.Recv(0, tag(i))
				if st.Msg.Size != 256 {
					t.Errorf("segment %d size %d", i, st.Msg.Size)
				}
				received++
			}
		}
	})
	if received != n {
		t.Fatalf("received %d of %d", received, n)
	}
	if len(w.Failures()) != 0 {
		t.Fatalf("unrecovered loss: %v", w.Failures()[0])
	}
}

// Duplicated wire copies must stay invisible under FEC: dedup absorbs
// the extras and the framer never double-enrolls.
func TestFECWithDuplication(t *testing.T) {
	w := runFec(t, "seed=5; link 0->1: drop=0.2, dup=0.5", generousRec(), fec.Config{K: 4, M: 2}, func(c *Comm) {
		switch c.Rank() {
		case 0:
			for i := 0; i < 30; i++ {
				c.Send(1, tag(i), comm.Bytes(fecPayload(i)))
			}
		case 1:
			for i := 0; i < 30; i++ {
				st := c.Recv(0, tag(i))
				if !bytes.Equal(st.Msg.Data, fecPayload(i)) {
					t.Errorf("segment %d corrupted", i)
				}
			}
			if _, leaked := c.Iprobe(comm.AnySource, comm.AnyTag); leaked {
				t.Error("duplicate copy leaked into the unexpected queue")
			}
		}
	})
	if w.FaultStats().Dups == 0 {
		t.Fatal("dup rule never fired")
	}
	if len(w.Failures()) != 0 {
		t.Fatalf("unrecovered loss: %v", w.Failures()[0])
	}
}
