package simmpi

// Flat rank-scheduling mode: a rank is a struct, not a goroutine.
//
// The goroutine-per-rank Proc costs an 8KiB+ stack and two channel
// handoffs per context switch — the real ceiling on simulated scale
// (~1.5k ranks comfortably, 100k painfully, 1M not at all). But the
// collective state machines in internal/core are already event-driven:
// they post operations and react to completions via OnComplete
// callbacks. The only reason a rank needed a goroutine was the blocking
// surface (Wait/Progress/Compute-as-Sleep). Flat mode removes it:
//
//   - The rank body runs once, in kernel event context, and must only
//     INITIATE work (Start* collectives, Isend/Irecv, OnComplete). Any
//     blocking call panics via the engine's Block hook.
//   - Completion callbacks run from deduplicated kernel "drain" events:
//     every engine wake arms (at most) one drain at the rank's
//     availability horizon, which fires callbacks through
//     progress.DrainWhile gated on the rank's busy clock.
//   - Compute advances the busy clock (Comm.busyUntil) without
//     blocking. Sends issued while the clock runs ahead of virtual time
//     launch lagged to it (Comm.sendLag), and callbacks queued behind a
//     compute charge wait for it — reproducing the proc mode's
//     virtual-time trajectory, byte for byte on the collectives'
//     results and makespans (TestFlatMatchesProcMode).
//
// Scale: a flat rank is ~300 bytes of structs instead of a goroutine
// stack, and dispatching its events costs no context switch — the
// difference between 100k ranks thrashing the scheduler and 1M ranks in
// one flat event loop (adaptbench -ranks; BENCH_kernel.json).
//
// Fault injection (chaos/crash) keeps the proc-mode requirement: the
// crash machinery kills a rank by panicking its goroutine, which flat
// ranks do not have. SpawnFlat refuses a world with faults armed.

// SpawnFlat registers one flat (goroutine-free) rank driver per rank.
// body runs once per rank at virtual time zero, in kernel event
// context, and must only initiate nonblocking work: Start* collectives,
// Isend/Irecv, OnComplete, OnIdle. Blocking calls (Wait, Progress,
// Recv, blocking collectives, Ssend) panic. Call Kernel.Run afterwards
// to execute the simulation; use OnIdle to observe per-rank completion
// and chain phases.
func (w *World) SpawnFlat(body func(c *Comm)) {
	if w.inj != nil || w.crash != nil {
		panic("simmpi: flat mode does not support fault injection (crash/chaos kill rank goroutines; flat ranks have none)")
	}
	for _, c := range w.ranks {
		c := c
		c.flat = true
		c.drainFn = c.drainFlat
		w.K.Schedule(0, func() { body(c) })
	}
}

// OnIdle registers fn to fire, in kernel event context, whenever this
// flat rank drains to zero operations in flight. It is level-triggered
// and may fire more than once (every drain that ends idle re-fires it),
// so fn must check its own phase state; typical drivers use it to
// harvest a finished collective's result and start the next phase.
func (c *Comm) OnIdle(fn func()) {
	if !c.flat {
		panic("simmpi: OnIdle on a proc-mode rank")
	}
	c.onIdle = fn
}

// armDrain schedules this rank's completion-callback drain at its
// availability horizon, deduplicating: while one drain event is in
// flight no second one is scheduled. Called from the engine's Wake hook
// (kernel event context — completions, parked arrivals, notices).
func (c *Comm) armDrain() {
	if c.drainArmed {
		return
	}
	c.drainArmed = true
	now := c.w.K.Now()
	// Fold noise and the busy clock into the wake-up time, exactly as
	// the proc mode's Block hook does via noiseResume.
	avail := c.noiseSrc.AvailableAt(now, c.busyUntil)
	c.busyUntil = avail
	c.w.K.Schedule(avail-now, c.drainFn)
}

// drainFlat is the rank's drain event: fire queued completion callbacks
// while the rank's busy clock permits, re-arm if a callback pushed the
// clock past now with work still queued, and report idleness.
func (c *Comm) drainFlat() {
	c.drainArmed = false
	c.eng.DrainWhile(func() bool { return c.busyUntil <= c.w.K.Now() })
	if c.eng.PendingCallbacks() > 0 || c.busyUntil > c.w.K.Now() {
		// A callback's compute charge advanced the clock mid-drain: the
		// remaining callbacks belong at the new horizon — and even with
		// none queued, the busy clock must be realized as a kernel event
		// so a trailing compute extends the makespan exactly as the proc
		// mode's sleep does.
		c.armDrain()
		return
	}
	if c.onIdle != nil && c.eng.Pending() == 0 {
		c.onIdle()
	}
}
