package simmpi

import (
	"fmt"

	"adapt/internal/comm"
	"adapt/internal/faults"
	"adapt/internal/perf"
	"adapt/internal/sim"
	"adapt/internal/trace"
)

// Fail-stop crash model on the simulated substrate.
//
// A crash@rank[:afterK] rule kills the rank at the instant it initiates
// its (K+1)-th send (Isend, Ssend, or a Commit fan-out): the proc
// unwinds via sim.ErrKilled and retires, its unexpected queue is swept
// so live rendezvous senders parked there fail with a TimeoutError
// instead of hanging, and from that instant the rank's traffic is
// annihilated — copies in flight from it vanish at arrival, copies sent
// to it are swallowed (no delivery, no ack), so their senders' retry
// chains run into the timeout budget or, once the death is confirmed,
// fail fast.
//
// Failure detection is a world-level lease: the detector suspects the
// rank SuspectAfter past the crash (counter only) and confirms it at
// ConfirmAfter, at which point one tree-repair is counted and every
// surviving rank gets a NoticeDeath on its control-plane queue. Both
// events ride the deterministic kernel, so the same seed reproduces the
// same detection schedule at any -j.

// crashCtl is the world's crash schedule and detector state. The kernel
// is single-threaded, so plain fields suffice.
type crashCtl struct {
	after     map[int]int // rank → send initiations allowed before dying
	sends     []int       // per-rank send initiations so far
	dead      []bool      // rank has halted
	confirmed []bool      // detector has confirmed the death
	suspects  uint64
	confirms  uint64
	repairs   uint64
}

// DetectorStats is the world's failure-detection activity.
type DetectorStats struct {
	Suspects uint64 // suspicion leases expired
	Confirms uint64 // deaths confirmed
	Repairs  uint64 // tree repairs triggered by confirmations
}

// DetectorStats returns the detector counters; zero when no crash rules
// are armed (clean runs must keep them zero).
func (w *World) DetectorStats() DetectorStats {
	if w.crash == nil {
		return DetectorStats{}
	}
	return DetectorStats{Suspects: w.crash.suspects, Confirms: w.crash.confirms, Repairs: w.crash.repairs}
}

// Crashed returns the per-rank death mask (all false when no crash rules
// are armed or nothing has died yet).
func (w *World) Crashed() []bool {
	out := make([]bool, w.Size())
	if w.crash != nil {
		copy(out, w.crash.dead)
	}
	return out
}

// armCrashes installs the plan's crash schedule (InstallFaults).
func (w *World) armCrashes(p faults.Plan) {
	if len(p.Crashes) == 0 {
		return
	}
	n := w.Size()
	ct := &crashCtl{
		after:     make(map[int]int, len(p.Crashes)),
		sends:     make([]int, n),
		dead:      make([]bool, n),
		confirmed: make([]bool, n),
	}
	for _, cr := range p.Crashes {
		if cr.Rank >= n {
			panic(fmt.Sprintf("simmpi: crash rule for rank %d in a %d-rank world", cr.Rank, n))
		}
		ct.after[cr.Rank] = cr.AfterSends
	}
	w.crash = ct
}

// deadRank reports whether r has halted.
func (w *World) deadRank(r int) bool { return w.crash != nil && w.crash.dead[r] }

// confirmedDead reports whether the detector has confirmed r's death.
func (w *World) confirmedDead(r int) bool { return w.crash != nil && w.crash.confirmed[r] }

// noteSend counts one send initiation by c and, when the rank's crash
// point is reached, kills it: the rank's state is torn down and the
// calling goroutine unwinds with sim.ErrKilled (recovered by the proc
// wrapper). Must be the first action of every send path.
func (w *World) noteSend(c *Comm) {
	ct := w.crash
	if ct == nil {
		return
	}
	k, scheduled := ct.after[c.rank]
	if !scheduled || ct.dead[c.rank] {
		return
	}
	n := ct.sends[c.rank]
	ct.sends[c.rank]++
	if n < k {
		return
	}
	w.crashRank(c.rank)
	panic(sim.ErrKilled)
}

// crashRank halts rank r now: annihilation begins, parked rendezvous
// senders are released with a structured failure, and the detector
// leases are armed.
func (w *World) crashRank(r int) {
	ct := w.crash
	ct.dead[r] = true
	c := w.ranks[r]
	if tb := w.Trace; tb != nil {
		tb.Add(trace.Record{At: w.K.Now(), Rank: r, Kind: trace.Crash, Peer: -1})
	}
	// Halt the matching engine (posted receives die with the rank, queued
	// callbacks never fire, later arrivals are refused) and sweep the
	// unexpected queue: an RTS parked there belongs to a LIVE sender that
	// would otherwise wait forever for a grant. Fail it with the same
	// structured error an exhausted retry chain produces. Eager payloads
	// parked there are simply swallowed.
	_, unexpected := c.eng.Halt()
	for _, env := range unexpected {
		if env.Rts != nil {
			err := &faults.TimeoutError{Rank: env.Src, Peer: r, Tag: env.Tag, Attempts: 1}
			w.inj.NoteTimeout()
			w.failures = append(w.failures, err)
			env.Rts.CompleteIfLive(comm.Status{Source: env.Src, Tag: env.Tag, Err: err})
		} else if env.Msg.Data != nil {
			comm.PutBuf(env.Msg.Data)
		}
	}
	// Detector leases, on the deterministic kernel. Detector events are
	// world-level, not rank-level: they trace on pseudo-rank -1 ("the
	// detector") with Peer = the dead rank.
	w.K.Schedule(w.rec.SuspectAfter, func() {
		ct.suspects++
		perf.RecordDetectorSuspect()
		if tb := w.Trace; tb != nil {
			tb.Add(trace.Record{At: w.K.Now(), Rank: -1, Kind: trace.Suspect, Peer: r})
		}
	})
	w.K.Schedule(w.rec.ConfirmAfter, func() {
		ct.confirmed[r] = true
		ct.confirms++
		perf.RecordDetectorConfirm()
		// One repaired tree takes effect per confirmed death.
		ct.repairs++
		perf.RecordTreeRepair()
		if tb := w.Trace; tb != nil {
			tb.Add(trace.Record{At: w.K.Now(), Rank: -1, Kind: trace.Confirm, Peer: r})
			tb.Add(trace.Record{At: w.K.Now(), Rank: -1, Kind: trace.Repair, Peer: r})
		}
		for _, d := range w.ranks {
			if !ct.dead[d.rank] {
				d.pushNotice(comm.Notice{Kind: comm.NoticeDeath, Rank: r})
			}
		}
	})
}

// ---- comm.FailStop implementation ----

var _ comm.FailStop = (*Comm)(nil)

// pushNotice appends a control-plane notice and wakes the rank.
func (c *Comm) pushNotice(n comm.Notice) { c.eng.PushNotice(n) }

// CrashesEnabled reports whether crash rules are armed in this world.
func (c *Comm) CrashesEnabled() bool { return c.w.crash != nil }

// ConfirmedDead returns a fresh detector-confirmed death mask.
func (c *Comm) ConfirmedDead() []bool {
	out := make([]bool, c.Size())
	if ct := c.w.crash; ct != nil {
		copy(out, ct.confirmed)
	}
	return out
}

// TakeNotices drains this rank's pending control-plane notices.
func (c *Comm) TakeNotices() []comm.Notice { return c.eng.TakeNotices() }

// WaitEvent blocks until a completion callback fires or a new notice
// arrives. Legal with no operation in flight (control-plane waits).
func (c *Comm) WaitEvent() { c.eng.WaitEvent() }

// CancelRecv retracts a posted, unmatched receive. Returns false when
// the receive already matched (its callback still fires).
func (c *Comm) CancelRecv(r comm.Request) bool { return c.eng.CancelRecv(r) }

// Commit fans a NoticeCommit for (seq, survivors) out to every live rank
// over the control plane. The fan-out counts as a send initiation, so a
// crash scheduled at the root's commit point fires here.
func (c *Comm) Commit(seq int, survivors []bool) {
	w := c.w
	w.noteSend(c)
	mask := append([]bool(nil), survivors...)
	for _, d := range w.ranks {
		if d == c || w.deadRank(d.rank) {
			continue
		}
		d := d
		w.K.Schedule(w.Net.ControlLatency(c.rank, d.rank), func() {
			if !w.deadRank(d.rank) {
				d.pushNotice(comm.Notice{Kind: comm.NoticeCommit, Seq: seq, Survivors: mask})
			}
		})
	}
}
