package simmpi_test

import (
	"bytes"
	"testing"
	"time"

	"adapt/internal/comm"
	"adapt/internal/core"
	"adapt/internal/faults"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
	"adapt/internal/sim"
	"adapt/internal/simmpi"
	"adapt/internal/trees"
)

// The flat-mode contract: for noise-free workloads, the flat
// (goroutine-free) rank driver produces the same collective results and
// the same virtual-time makespan as the goroutine-per-rank proc mode.
// (Noise is excluded from the parity claim only because the two modes
// poll the per-rank noise stream at different points, drawing different
// pseudo-random freezes — each mode is still deterministic.)

type flatRun struct {
	makespan time.Duration
	results  [][]byte
	sizes    []int
}

// runProc executes one collective scenario in proc mode.
func runProc(t *testing.T, p *netmodel.Platform, body func(c *simmpi.Comm) comm.Msg) flatRun {
	t.Helper()
	k := sim.New()
	w := simmpi.NewWorld(k, p, noise.None)
	out := flatRun{results: make([][]byte, w.Size()), sizes: make([]int, w.Size())}
	w.Spawn(func(c *simmpi.Comm) {
		msg := body(c)
		out.results[c.Rank()] = append([]byte(nil), msg.Data...)
		out.sizes[c.Rank()] = msg.Size
	})
	out.makespan = k.MustRun()
	return out
}

// runFlat executes a chain of nonblocking phases in flat mode. Each
// rank starts phase 0 from its body and advances to the next phase from
// OnIdle when the current one completes; each phase sees the previous
// phase's result, and the last phase's result is recorded.
func runFlat(t *testing.T, p *netmodel.Platform, phases []func(c *simmpi.Comm, prev comm.Msg) *core.Op) flatRun {
	t.Helper()
	k := sim.New()
	w := simmpi.NewWorld(k, p, noise.None)
	out := flatRun{results: make([][]byte, w.Size()), sizes: make([]int, w.Size())}
	w.SpawnFlat(func(c *simmpi.Comm) {
		phase := 0
		op := phases[0](c, comm.Msg{})
		c.OnIdle(func() {
			for phase < len(phases) && op.Done() {
				// Done + idle: Wait returns without blocking.
				msg := op.Wait()
				if phase++; phase == len(phases) {
					out.results[c.Rank()] = append([]byte(nil), msg.Data...)
					out.sizes[c.Rank()] = msg.Size
					return
				}
				op = phases[phase](c, msg)
			}
		})
	})
	out.makespan = k.MustRun()
	return out
}

func payload(rank, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte((rank*131 + i*7) % 251)
	}
	return b
}

// TestFlatMatchesProcMode: same platform, same tree, same collectives —
// flat and proc mode must agree on every rank's result bytes and on the
// run's virtual makespan. Covers eager and rendezvous sizes, compute
// charges (reduce/allreduce fold costs exercise the busy-clock lag),
// and the fused allreduce's overlapping phases.
func TestFlatMatchesProcMode(t *testing.T) {
	p := netmodel.Cori(2) // 64 ranks, inter-node + QPI + shm lanes
	n := p.Topo.Size()
	tree := trees.Binomial(n, 0)
	opt := core.DefaultOptions()
	opt.SegSize = 4 << 10 // several segments even at the small sizes

	scenarios := []struct {
		name string
		size int
	}{
		{"eager", 4 << 10},       // under the 8KB eager limit
		{"rendezvous", 64 << 10}, // rendezvous protocol, 16 segments
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run("bcast/"+sc.name, func(t *testing.T) {
			root := payload(0, sc.size)
			proc := runProc(t, p, func(c *simmpi.Comm) comm.Msg {
				msg := comm.Msg{Size: sc.size, Space: comm.MemHost}
				if c.Rank() == 0 {
					msg.Data = append([]byte(nil), root...)
				}
				return core.Bcast(c, tree, msg, opt)
			})
			flat := runFlat(t, p, []func(c *simmpi.Comm, prev comm.Msg) *core.Op{
				func(c *simmpi.Comm, _ comm.Msg) *core.Op {
					msg := comm.Msg{Size: sc.size, Space: comm.MemHost}
					if c.Rank() == 0 {
						msg.Data = append([]byte(nil), root...)
					}
					return core.StartBcast(c, tree, msg, opt)
				},
			})
			compareRuns(t, proc, flat, n)
			for r := 0; r < n; r++ {
				if !bytes.Equal(flat.results[r], root) {
					t.Fatalf("rank %d: flat bcast delivered wrong bytes", r)
				}
			}
		})
		t.Run("reduce/"+sc.name, func(t *testing.T) {
			proc := runProc(t, p, func(c *simmpi.Comm) comm.Msg {
				return core.Reduce(c, tree, contrib(c.Rank(), sc.size), opt)
			})
			flat := runFlat(t, p, []func(c *simmpi.Comm, prev comm.Msg) *core.Op{
				func(c *simmpi.Comm, _ comm.Msg) *core.Op {
					return core.StartReduce(c, tree, contrib(c.Rank(), sc.size), opt)
				},
			})
			compareRuns(t, proc, flat, n)
		})
		t.Run("allreduce/"+sc.name, func(t *testing.T) {
			proc := runProc(t, p, func(c *simmpi.Comm) comm.Msg {
				return core.Allreduce(c, tree, contrib(c.Rank(), sc.size), opt)
			})
			flat := runFlat(t, p, []func(c *simmpi.Comm, prev comm.Msg) *core.Op{
				func(c *simmpi.Comm, _ comm.Msg) *core.Op {
					return core.StartAllreduce(c, tree, contrib(c.Rank(), sc.size), opt)
				},
			})
			compareRuns(t, proc, flat, n)
		})
	}

	// Phase chaining through OnIdle: reduce-then-bcast must match the
	// proc mode's sequential calls — the idle hook must not fire the
	// next phase early or late.
	t.Run("reduce-then-bcast", func(t *testing.T) {
		const size = 32 << 10
		proc := runProc(t, p, func(c *simmpi.Comm) comm.Msg {
			red := core.Reduce(c, tree, contrib(c.Rank(), size), opt)
			msg := comm.Msg{Size: size, Space: comm.MemHost}
			if c.Rank() == 0 {
				msg.Data = red.Data
			}
			return core.Bcast(c, tree, msg, opt)
		})
		flat := runFlat(t, p, []func(c *simmpi.Comm, prev comm.Msg) *core.Op{
			func(c *simmpi.Comm, _ comm.Msg) *core.Op {
				return core.StartReduce(c, tree, contrib(c.Rank(), size), opt)
			},
			func(c *simmpi.Comm, prev comm.Msg) *core.Op {
				msg := comm.Msg{Size: size, Space: comm.MemHost}
				if c.Rank() == 0 {
					msg.Data = prev.Data // the folded reduction result
				}
				return core.StartBcast(c, tree, msg, opt)
			},
		})
		compareRuns(t, proc, flat, n)
	})
}

// contrib builds rank r's reduction contribution.
func contrib(rank, size int) comm.Msg {
	return comm.Msg{Data: payload(rank, size), Size: size, Space: comm.MemHost}
}

func compareRuns(t *testing.T, proc, flat flatRun, n int) {
	t.Helper()
	if proc.makespan != flat.makespan {
		t.Fatalf("makespan diverged: proc %v, flat %v", proc.makespan, flat.makespan)
	}
	for r := 0; r < n; r++ {
		if proc.sizes[r] != flat.sizes[r] {
			t.Fatalf("rank %d: result size proc %d, flat %d", r, proc.sizes[r], flat.sizes[r])
		}
		if !bytes.Equal(proc.results[r], flat.results[r]) {
			t.Fatalf("rank %d: result bytes diverged between proc and flat mode", r)
		}
	}
}

// TestFlatAggregatePlatform: flat mode composed with aggregated
// facilities — the million-rank bench configuration — still delivers
// byte-correct collectives deterministically. (No makespan parity claim
// vs the exact facility model; aggregation is a fluid approximation.)
func TestFlatAggregatePlatform(t *testing.T) {
	p := netmodel.Cori(2)
	p.Aggregate = true
	n := p.Topo.Size()
	tree := trees.Binomial(n, 0)
	root := payload(0, 32<<10)
	run := func() flatRun {
		return runFlat(t, p, []func(c *simmpi.Comm, prev comm.Msg) *core.Op{
			func(c *simmpi.Comm, _ comm.Msg) *core.Op {
				msg := comm.Msg{Size: len(root), Space: comm.MemHost}
				if c.Rank() == 0 {
					msg.Data = append([]byte(nil), root...)
				}
				return core.StartBcast(c, tree, msg, core.DefaultOptions())
			},
		})
	}
	a, b := run(), run()
	if a.makespan != b.makespan {
		t.Fatalf("aggregate flat bcast nondeterministic: %v vs %v", a.makespan, b.makespan)
	}
	for r := 0; r < n; r++ {
		if !bytes.Equal(a.results[r], root) {
			t.Fatalf("rank %d: wrong bytes under aggregate facilities", r)
		}
	}
}

// TestFlatBlockingPanics: any blocking call from a flat rank must panic
// with a diagnostic instead of deadlocking the (goroutine-free) kernel.
func TestFlatBlockingPanics(t *testing.T) {
	k := sim.New()
	w := simmpi.NewWorld(k, netmodel.Cori(1), noise.None)
	var got interface{}
	w.SpawnFlat(func(c *simmpi.Comm) {
		if c.Rank() != 0 {
			return
		}
		defer func() { got = recover() }()
		c.Recv(1, comm.Tag(0)) // blocking: must panic, not park
	})
	k.Run()
	if got == nil {
		t.Fatal("blocking Recv on a flat rank did not panic")
	}
}

// TestFlatRejectsFaultInjection: the crash/chaos machinery requires
// rank goroutines; arming faults and then spawning flat must refuse.
func TestFlatRejectsFaultInjection(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SpawnFlat with faults armed did not panic")
		}
	}()
	k := sim.New()
	w := simmpi.NewWorld(k, netmodel.Cori(1), noise.None)
	w.InstallFaults(faults.MustParsePlan("seed=1; all: drop=0.1"), faults.DefaultRecovery())
	w.SpawnFlat(func(c *simmpi.Comm) {})
}
