package simmpi

import (
	"bytes"
	"errors"
	"testing"

	"adapt/internal/comm"
	"adapt/internal/faults"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
	"adapt/internal/sim"
)

// runChaos spins up a 2-node world with the plan installed.
func runChaos(t *testing.T, plan string, rec faults.Recovery, body func(c *Comm)) (*World, error) {
	t.Helper()
	k := sim.New()
	w := NewWorld(k, netmodel.Cori(2), noise.None)
	w.InstallFaults(faults.MustParsePlan(plan), rec)
	w.Spawn(body)
	_, err := k.Run()
	return w, err
}

func TestChaosEagerRecoversFromDrops(t *testing.T) {
	payload := []byte("survives a lossy link")
	var got []byte
	w, err := runChaos(t, "seed=9; all: drop=0.4", faults.DefaultRecovery(), func(c *Comm) {
		switch c.Rank() {
		case 0:
			for i := 0; i < 20; i++ {
				c.Send(1, tag(i), comm.Bytes(payload))
			}
		case 1:
			for i := 0; i < 20; i++ {
				st := c.Recv(0, tag(i))
				if !bytes.Equal(st.Msg.Data, payload) {
					t.Errorf("segment %d corrupted: %q", i, st.Msg.Data)
				}
				got = st.Msg.Data
			}
		}
	})
	if err != nil {
		t.Fatalf("simulation failed: %v", err)
	}
	if got == nil {
		t.Fatal("nothing received")
	}
	st := w.FaultStats()
	if st.Drops == 0 || st.Retries == 0 {
		t.Fatalf("40%% drop plan injected nothing: %v", st)
	}
	if len(w.Failures()) != 0 {
		t.Fatalf("unrecovered loss under DefaultRecovery: %v", w.Failures()[0])
	}
}

func TestChaosRendezvousRecoversFromDrops(t *testing.T) {
	// 1 MB forces RTS/CTS/data, each leg reliable on its own.
	w, err := runChaos(t, "seed=4; all: drop=0.3", faults.DefaultRecovery(), func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, tag(0), comm.Sized(1*netmodel.MB))
		case 1:
			st := c.Recv(0, tag(0))
			if st.Msg.Size != 1*netmodel.MB {
				t.Errorf("received %d bytes", st.Msg.Size)
			}
			if st.Err != nil {
				t.Errorf("receive completed with error: %v", st.Err)
			}
		}
	})
	if err != nil {
		t.Fatalf("simulation failed: %v", err)
	}
	if w.FaultStats().Drops == 0 {
		t.Fatal("30% drop plan never dropped")
	}
}

func TestChaosDuplicatesSuppressed(t *testing.T) {
	payload := []byte("exactly once")
	received := 0
	w, err := runChaos(t, "seed=2; all: dup=1", faults.DefaultRecovery(), func(c *Comm) {
		switch c.Rank() {
		case 0:
			for i := 0; i < 10; i++ {
				c.Send(1, tag(i), comm.Bytes(payload))
			}
		case 1:
			for i := 0; i < 10; i++ {
				st := c.Recv(0, tag(i))
				if !bytes.Equal(st.Msg.Data, payload) {
					t.Errorf("segment %d corrupted", i)
				}
				received++
			}
			// A duplicate that slipped past dedup would sit in the
			// unexpected queue and match this wildcard probe.
			if _, leaked := c.Iprobe(comm.AnySource, comm.AnyTag); leaked {
				t.Error("duplicate copy leaked into the unexpected queue")
			}
		}
	})
	if err != nil {
		t.Fatalf("simulation failed: %v", err)
	}
	if received != 10 {
		t.Fatalf("received %d of 10", received)
	}
	st := w.FaultStats()
	if st.Dups == 0 || st.Suppressed == 0 {
		t.Fatalf("dup=1 plan: %v", st)
	}
}

func TestChaosEagerSendFailsStructured(t *testing.T) {
	var sendStatus comm.Status
	w, err := runChaos(t, "seed=1; link 0->1: drop=1", faults.NoRecovery(), func(c *Comm) {
		if c.Rank() == 0 {
			sendStatus = c.Wait(c.Isend(1, tag(7), comm.Bytes([]byte("into the void"))))
		}
	})
	if err != nil {
		t.Fatalf("simulation failed: %v", err)
	}
	if sendStatus.Err == nil {
		t.Fatal("black-holed send completed without error")
	}
	var te *faults.TimeoutError
	if !errors.As(sendStatus.Err, &te) {
		t.Fatalf("error is %T, want *faults.TimeoutError", sendStatus.Err)
	}
	if te.Rank != 0 || te.Peer != 1 || te.Tag != tag(7) || te.Attempts != 1 {
		t.Fatalf("timeout error misdescribes the loss: %+v", te)
	}
	if len(w.Failures()) != 1 {
		t.Fatalf("world records %d failures, want 1", len(w.Failures()))
	}
}

// A lost ack must trigger retransmission, and the retransmitted copy must
// be absorbed by dedup — the sender can time out even though the payload
// arrived, but with retries enabled it must eventually see an ack.
func TestChaosAckLossCausesSpuriousRetransmit(t *testing.T) {
	w, err := runChaos(t, "seed=14; link 1->0: drop=0.6", faults.DefaultRecovery(), func(c *Comm) {
		// Faults only on the 1→0 reverse link: data 0→1 is clean, acks are
		// lossy.
		switch c.Rank() {
		case 0:
			for i := 0; i < 30; i++ {
				c.Send(1, tag(i), comm.Bytes([]byte("payload")))
			}
		case 1:
			for i := 0; i < 30; i++ {
				c.Recv(0, tag(i))
			}
		}
	})
	if err != nil {
		t.Fatalf("simulation failed: %v", err)
	}
	st := w.FaultStats()
	if st.Retries == 0 || st.Suppressed == 0 {
		t.Fatalf("lossy ack link produced no spurious retransmits: %v", st)
	}
	if len(w.Failures()) != 0 {
		t.Fatalf("ack loss escalated to failure: %v", w.Failures()[0])
	}
}

func TestChaosSsendRecovers(t *testing.T) {
	_, err := runChaos(t, "seed=6; all: drop=0.3, dup=0.2", faults.DefaultRecovery(), func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Ssend(1, tag(0), comm.Bytes([]byte("sync")))
		case 1:
			st := c.Recv(0, tag(0))
			if string(st.Msg.Data) != "sync" {
				t.Errorf("got %q", st.Msg.Data)
			}
		}
	})
	if err != nil {
		t.Fatalf("simulation failed: %v", err)
	}
}

// The no-fault engine must be untouched when a plan is installed but
// cannot inject anything (Enabled() == false is the caller's check; an
// all-zero rule plan still routes through chaos paths and must behave
// identically).
func TestChaosNoopPlanDeliversIdentically(t *testing.T) {
	payload := []byte("unchanged")
	w, err := runChaos(t, "seed=0; all: drop=0", faults.DefaultRecovery(), func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, tag(0), comm.Bytes(payload))
		case 1:
			st := c.Recv(0, tag(0))
			if !bytes.Equal(st.Msg.Data, payload) {
				t.Errorf("got %q", st.Msg.Data)
			}
		}
	})
	if err != nil {
		t.Fatalf("simulation failed: %v", err)
	}
	if st := w.FaultStats(); st.Total() != 0 {
		t.Fatalf("no-op plan injected: %v", st)
	}
}
