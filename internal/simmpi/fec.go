package simmpi

import (
	"fmt"

	"adapt/internal/comm"
	"adapt/internal/fec"
	"adapt/internal/perf"
	"adapt/internal/trace"
)

// Forward error correction over the chaos transport's eager segment
// stream. Every eager transmission on a faulted world with FEC enabled
// is shadowed by a per-link group framer: the framer keeps its own copy
// of the payload, and once a group closes (K members, or the idle-flush
// timer) it encodes M parity shards and flies each across the fabric as
// a single unacknowledged attempt under a KindFec tag — parity is pure
// redundancy, it is never retransmitted. When the group's fates are all
// known (every member delivered, lost, or failed; every parity shard
// arrived or lost) and the erasures are within the surviving parity, the
// receiver-side reconstruction decodes the missing payloads and
// completes each lost transmission through xmit.repair: the segment is
// delivered exactly as if its wire copy had arrived (same envelope path,
// duplicate-suppressed against a late retransmit), and the repair-ack
// stops the sender's retransmit timer before it fires — loss within the
// parity budget costs no retransmit round trip.
//
// FEC composes with, never replaces, the Recovery machinery: the RTO
// timers stay armed throughout, so a group whose erasures outrun its
// parity (or whose parity is itself lost) falls back to per-message
// retransmission and, past the attempt budget, the structured
// TimeoutError path. The simulator is one address space, so sender
// framer and receiver reconstructor share one group object; the parity
// still crosses the simulated fabric and draws real fault verdicts.

// fecCtl is the world's FEC layer: per-link open groups, the adaptive
// redundancy controller, and world-local counters. Kernel-serialized
// like everything else in the simulator — no locks.
type fecCtl struct {
	w     *World
	cfg   fec.Config
	ctl   *fec.Controller
	open  map[uint64]*fecGroup // directed link -> group being filled
	gid   uint64
	stats fec.Stats
}

// EnableFEC arms erasure coding over the eager segment stream. Must be
// called after InstallFaults (FEC shadows the chaos transport) and
// before Spawn.
func (w *World) EnableFEC(cfg fec.Config) {
	if w.inj == nil {
		panic("simmpi: EnableFEC before InstallFaults")
	}
	cfg = cfg.Normalized()
	if !cfg.Enabled() {
		return
	}
	w.fec = &fecCtl{w: w, cfg: cfg, ctl: fec.NewController(cfg),
		open: make(map[uint64]*fecGroup)}
}

// FECStats returns what the FEC layer did; zero when not enabled.
func (w *World) FECStats() fec.Stats {
	if w.fec == nil {
		return fec.Stats{}
	}
	return w.fec.stats
}

// fecGroup is one erasure-coding group on a directed link. One object
// serves both ends: the sender side fills members and launches parity,
// the receiver side resolves arrivals and reconstructs.
type fecGroup struct {
	f        *fecCtl
	src, dst int
	id       uint64
	members  []*fecMember
	params   fec.Params
	closed   bool
	resolved bool
	// parity[j] is parity shard j's bytes once its copy arrived, nil
	// while in flight or lost; decided marks settled shards and
	// parityLeft counts the rest.
	parity     [][]byte
	decided    []bool
	parityLeft int
}

// fecMember is one eager transmission enrolled in a group.
type fecMember struct {
	g     *fecGroup
	x     *xmit
	tag   comm.Tag
	msg   comm.Msg // original metadata (logical size, memory space)
	shard []byte   // framer-owned payload copy; nil for elided payloads
	d     *Comm
	post  uint64 // sender's PostID, for the causal trace edge
}

// newMember snapshots one eager transmission for its link's open group.
// retained is the chaos transport's transmission buffer (nil for elided
// payloads); the framer takes its own copy, since retained is released
// the moment the transmission acks.
func (f *fecCtl) newMember(c *Comm, d *Comm, tag comm.Tag, msg comm.Msg, postID uint64, retained []byte) *fecMember {
	mem := &fecMember{tag: tag, msg: msg, d: d, post: postID}
	if retained != nil {
		mem.shard = comm.GetBuf(len(retained))
		copy(mem.shard, retained)
	}
	return mem
}

// enroll adds the member (now carrying its transmission handle) to the
// link's open group, opening one if needed and closing it at K members.
func (f *fecCtl) enroll(mem *fecMember, x *xmit) {
	mem.x = x
	key := uint64(uint32(x.src))<<32 | uint64(uint32(x.dst))
	g := f.open[key]
	if g == nil {
		f.gid++
		g = &fecGroup{f: f, src: x.src, dst: x.dst, id: f.gid}
		f.open[key] = g
		// Idle flush: a trickling stream must not hold a group open past a
		// fraction of the RTO, or the parity could lose the race against
		// the first member's retransmit timer.
		f.w.K.Schedule(f.w.rec.RTO/4, func() {
			if f.open[key] == g {
				delete(f.open, key)
				f.close(g)
			}
		})
	}
	mem.g = g
	g.members = append(g.members, mem)
	if len(g.members) >= f.cfg.K {
		delete(f.open, key)
		f.close(g)
	}
}

// close seals a group: encode parity over the member shards and fly each
// shard as one unacknowledged attempt under a KindFec tag.
func (f *fecCtl) close(g *fecGroup) {
	w := f.w
	k := len(g.members)
	m := f.ctl.ChooseM(g.src, g.dst, k)
	g.params = fec.Params{K: k, M: m}
	data := make([][]byte, k)
	for i, mem := range g.members {
		if mem.shard != nil {
			data[i] = mem.shard
		} else {
			data[i] = []byte{}
		}
	}
	parity := fec.EncodeParity(g.params, data)
	f.stats.ParityEncoded += uint64(m)
	perf.RecordFecEncoded(m)
	g.closed = true
	g.parity = make([][]byte, m)
	g.decided = make([]bool, m)
	g.parityLeft = m
	for j := range parity {
		j, buf := j, parity[j]
		ptag := comm.MakeTag(comm.KindFec, int(g.id%comm.SeqWrap), j)
		w.xmitSeq++
		pid := w.xmitSeq
		v := w.inj.Message(g.src, g.dst, ptag, pid, 0, w.K.Now(), len(buf))
		if v.Drop {
			w.traceFault(trace.FaultDrop, g.src, g.dst, ptag, len(buf), pid)
			comm.PutBuf(buf)
			g.parityFate(j, nil)
			continue
		}
		w.K.Schedule(v.Extra, func() {
			w.Net.StartTransfer(g.src, g.dst, len(buf), comm.MemDefault, nil, func() {
				if v.Corrupt || w.deadRank(g.src) || w.deadRank(g.dst) {
					// Damaged (checksum-caught) or annihilated: a lost shard.
					comm.PutBuf(buf)
					g.parityFate(j, nil)
					return
				}
				g.parityFate(j, buf)
			})
		})
	}
	g.tryResolve()
}

// parityFate records parity shard j's outcome (bytes, or nil = lost).
func (g *fecGroup) parityFate(j int, bytes []byte) {
	if g.decided[j] {
		panic(fmt.Sprintf("simmpi: fec group %d parity %d resolved twice", g.id, j))
	}
	g.decided[j] = true
	g.parity[j] = bytes
	g.parityLeft--
	g.tryResolve()
}

// arrived notes that the member's wire copy was delivered.
func (mem *fecMember) arrived() {
	if mem.g != nil {
		mem.g.tryResolve()
	}
}

// settled reports whether the member's first-attempt fate is known:
// delivered, failed, or lost in flight (verdict known at send time).
func (mem *fecMember) settled() bool {
	return mem.x.st.delivered || mem.x.st.failed || mem.x.firstLost
}

// tryResolve fires once every fate in the group is known: members
// delivered/lost/failed, parity shards arrived/lost. Within-parity
// erasures reconstruct and repair; beyond it the group is lost to the
// ARQ backstop (whose timers have been running all along).
func (g *fecGroup) tryResolve() {
	if g.resolved || !g.closed || g.parityLeft > 0 {
		return
	}
	for _, mem := range g.members {
		if !mem.settled() {
			return
		}
	}
	g.resolved = true
	f := g.f
	var missing []int
	lost := 0
	for i, mem := range g.members {
		if mem.x.firstLost {
			lost++
		}
		if !mem.x.st.delivered && !mem.x.st.failed {
			missing = append(missing, i)
		}
	}
	have := 0
	for _, p := range g.parity {
		if p != nil {
			have++
		}
	}
	f.ctl.Observe(g.src, g.dst, len(g.members)+g.params.M, lost+g.params.M-have)
	defer g.release()
	if len(missing) == 0 {
		return
	}
	if !fec.Recoverable(len(missing), have) {
		f.stats.GroupsLost++
		perf.RecordFecGroupLost()
		return
	}
	data := make([][]byte, len(g.members))
	sizes := make([]int, len(g.members))
	miss := make(map[int]bool, len(missing))
	for _, i := range missing {
		miss[i] = true
	}
	for i, mem := range g.members {
		sizes[i] = len(mem.shard)
		if !miss[i] {
			if mem.shard != nil {
				data[i] = mem.shard
			} else {
				data[i] = []byte{}
			}
		}
	}
	if err := fec.Reconstruct(g.params, data, g.parity, sizes); err != nil {
		// Unreachable (Recoverable held); treat as a lost group.
		f.stats.GroupsLost++
		perf.RecordFecGroupLost()
		return
	}
	for _, i := range missing {
		mem, decoded := g.members[i], data[i]
		mem.x.repair(func() {
			del := mem.msg
			if mem.msg.Data != nil {
				del.Data = decoded // pooled; owned by the receiver from here
			}
			env := mem.d.eng.NewEnv(g.src, mem.tag, del, nil)
			env.PostID = mem.post
			mem.d.arrive(env)
		})
		f.stats.Reconstructed++
		perf.RecordFecReconstructed()
	}
}

// release returns the group's framer-owned buffers to the pool. Repaired
// payloads are separate decode buffers already handed to receivers.
func (g *fecGroup) release() {
	for _, mem := range g.members {
		if mem.shard != nil {
			comm.PutBuf(mem.shard)
			mem.shard = nil
		}
	}
	for _, p := range g.parity {
		if p != nil {
			comm.PutBuf(p)
		}
	}
	g.parity = nil
}
