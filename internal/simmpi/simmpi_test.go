package simmpi

import (
	"testing"
	"time"

	"adapt/internal/comm"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
	"adapt/internal/sim"
	"adapt/internal/trace"
)

// run spins up a world on Cori(nodes) and runs body on every rank.
func run(t *testing.T, p *netmodel.Platform, spec noise.Spec, body func(c *Comm)) time.Duration {
	t.Helper()
	k := sim.New()
	w := NewWorld(k, p, spec)
	w.Spawn(body)
	end, err := k.Run()
	if err != nil {
		t.Fatalf("simulation deadlocked: %v", err)
	}
	return end
}

func tag(seg int) comm.Tag { return comm.MakeTag(comm.KindP2P, 0, seg) }

func TestEagerSendRecv(t *testing.T) {
	payload := []byte("hello, rank one")
	var got []byte
	run(t, netmodel.Cori(1), noise.None, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, tag(0), comm.Bytes(payload))
		case 1:
			st := c.Recv(0, tag(0))
			got = st.Msg.Data
			if st.Source != 0 || st.Tag != tag(0) {
				t.Errorf("status = %+v", st)
			}
		}
	})
	if string(got) != string(payload) {
		t.Fatalf("got %q, want %q", got, payload)
	}
}

func TestRendezvousSendRecv(t *testing.T) {
	// 1 MB > eager limit → rendezvous path.
	var got comm.Status
	end := run(t, netmodel.Cori(1), noise.None, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, tag(0), comm.Sized(1*netmodel.MB))
		case 1:
			got = c.Recv(0, tag(0))
		}
	})
	if got.Msg.Size != 1*netmodel.MB {
		t.Fatalf("received %d bytes", got.Msg.Size)
	}
	p := netmodel.Cori(1)
	min := p.ShmBw.Over(1 * netmodel.MB) // at least the serialization time
	if end < min {
		t.Fatalf("end %v < pure serialization %v", end, min)
	}
}

// A blocking rendezvous send must not complete before the receiver posts.
func TestRendezvousCouplesSenderToReceiver(t *testing.T) {
	var sendDone, recvPosted time.Duration
	run(t, netmodel.Cori(1), noise.None, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, tag(0), comm.Sized(1*netmodel.MB))
			sendDone = c.Now()
		case 1:
			c.ComputeFor(5 * time.Millisecond) // receiver is late
			recvPosted = c.Now()
			c.Recv(0, tag(0))
		}
	})
	if sendDone < recvPosted {
		t.Fatalf("blocking send completed at %v before receiver posted at %v", sendDone, recvPosted)
	}
}

// An eager send completes regardless of the receiver being late.
func TestEagerDecouplesSender(t *testing.T) {
	var sendDone time.Duration
	run(t, netmodel.Cori(1), noise.None, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, tag(0), comm.Sized(4*netmodel.KB))
			sendDone = c.Now()
		case 1:
			c.ComputeFor(5 * time.Millisecond)
			c.Recv(0, tag(0))
		}
	})
	if sendDone >= 5*time.Millisecond {
		t.Fatalf("eager send stalled until receiver: %v", sendDone)
	}
}

// An unexpected eager message costs extra at match time.
func TestUnexpectedMessagePenalty(t *testing.T) {
	// Compare wait time from Irecv post to completion with and without
	// the message landing in the unexpected queue first.
	var expected, unexpected time.Duration
	run(t, netmodel.Cori(1), noise.None, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, tag(0), comm.Sized(8*netmodel.KB))
		case 1:
			c.ComputeFor(2 * time.Millisecond) // message lands while busy
			post := c.Now()
			c.Wait(c.Irecv(0, tag(0)))
			unexpected = c.Now() - post
		}
	})
	run(t, netmodel.Cori(1), noise.None, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.ComputeFor(2 * time.Millisecond)
			c.Send(1, tag(0), comm.Sized(8*netmodel.KB))
		case 1:
			post := c.Now()
			c.Wait(c.Irecv(0, tag(0)))
			expected = c.Now() - post - 2*time.Millisecond // sender started late
		}
	})
	if unexpected <= expected {
		t.Fatalf("unexpected path (%v) must cost more than pre-posted path (%v)", unexpected, expected)
	}
}

func TestWildcardRecv(t *testing.T) {
	var from int
	run(t, netmodel.Cori(1), noise.None, func(c *Comm) {
		switch c.Rank() {
		case 3:
			c.Send(0, tag(7), comm.Bytes([]byte{42}))
		case 0:
			st := c.Recv(comm.AnySource, comm.AnyTag)
			from = st.Source
			if st.Tag != tag(7) {
				t.Errorf("tag = %v", st.Tag)
			}
		}
	})
	if from != 3 {
		t.Fatalf("source = %d, want 3", from)
	}
}

func TestTagSelectivity(t *testing.T) {
	// Messages match by tag, not arrival order.
	var order []int
	run(t, netmodel.Cori(1), noise.None, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, tag(1), comm.Bytes([]byte{1}))
			c.Send(1, tag(2), comm.Bytes([]byte{2}))
		case 1:
			st2 := c.Recv(0, tag(2))
			st1 := c.Recv(0, tag(1))
			order = append(order, int(st2.Msg.Data[0]), int(st1.Msg.Data[0]))
		}
	})
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("order = %v", order)
	}
}

func TestWaitAnyAndWaitAll(t *testing.T) {
	run(t, netmodel.Cori(1), noise.None, func(c *Comm) {
		switch c.Rank() {
		case 0:
			rs := []comm.Request{
				c.Irecv(1, tag(0)),
				c.Irecv(2, tag(0)),
				c.Irecv(3, tag(0)),
			}
			got := map[int]bool{}
			for n := 0; n < len(rs); n++ {
				i, st := c.WaitAny(rs)
				if got[i] {
					t.Errorf("WaitAny returned index %d twice", i)
				}
				if st.Source != i+1 {
					t.Errorf("request %d completed from source %d", i, st.Source)
				}
				got[i] = true
				rs[i] = nil // deactivate, MPI_REQUEST_NULL style
			}
		case 1, 2, 3:
			c.ComputeFor(time.Duration(c.Rank()) * time.Millisecond)
			c.Send(0, tag(0), comm.Bytes([]byte{byte(c.Rank())}))
		default:
			// idle ranks
		}
	})
	run(t, netmodel.Cori(1), noise.None, func(c *Comm) {
		switch c.Rank() {
		case 0:
			var rs []comm.Request
			for p := 1; p <= 3; p++ {
				rs = append(rs, c.Isend(p, tag(0), comm.Sized(64*netmodel.KB)))
			}
			c.WaitAll(rs)
		case 1, 2, 3:
			c.Recv(0, tag(0))
		}
	})
}

func TestOnCompleteCallbackChain(t *testing.T) {
	// Root streams 5 segments to rank 1 keeping 2 in flight, re-posting
	// from the completion callback — the ADAPT building block (Alg. 3).
	const segs = 5
	var recvd int
	run(t, netmodel.Cori(1), noise.None, func(c *Comm) {
		switch c.Rank() {
		case 0:
			next := 2
			inflight := 2
			var post func(st comm.Status)
			post = func(st comm.Status) {
				inflight--
				if next < segs {
					r := c.Isend(1, tag(next), comm.Sized(64*netmodel.KB))
					next++
					inflight++
					c.OnComplete(r, post)
				}
			}
			for i := 0; i < 2; i++ {
				r := c.Isend(1, tag(i), comm.Sized(64*netmodel.KB))
				c.OnComplete(r, post)
			}
			for inflight > 0 {
				c.Progress()
			}
		case 1:
			for i := 0; i < segs; i++ {
				c.Recv(0, tag(i))
				recvd++
			}
		}
	})
	if recvd != segs {
		t.Fatalf("received %d segments, want %d", recvd, segs)
	}
}

func TestSelfSend(t *testing.T) {
	run(t, netmodel.Cori(1), noise.None, func(c *Comm) {
		if c.Rank() != 0 {
			return
		}
		r := c.Irecv(0, tag(0))
		c.Send(0, tag(0), comm.Bytes([]byte{9}))
		st := c.Wait(r)
		if st.Msg.Data[0] != 9 {
			t.Errorf("self-send payload %v", st.Msg.Data)
		}
	})
}

func TestNoiseSlowsExecution(t *testing.T) {
	body := func(c *Comm) {
		if c.Rank() >= 2 {
			return
		}
		peer := 1 - c.Rank()
		for i := 0; i < 50; i++ {
			if c.Rank() == 0 {
				c.Send(peer, tag(i), comm.Sized(64*netmodel.KB))
				c.Recv(peer, tag(i))
			} else {
				c.Recv(peer, tag(i))
				c.Send(peer, tag(i), comm.Sized(64*netmodel.KB))
			}
		}
	}
	quiet := run(t, netmodel.Cori(1), noise.None, body)
	// The ping-pong lasts ~1.6ms, so use a high-frequency law (avg 25%)
	// to guarantee several freezes land inside the run.
	noisy := run(t, netmodel.Cori(1), noise.Uniform(5000, 100*time.Microsecond), body)
	if noisy <= quiet {
		t.Fatalf("noise did not slow the ping-pong: %v vs %v", noisy, quiet)
	}
}

func TestDeterministicEndToEnd(t *testing.T) {
	body := func(c *Comm) {
		if c.Rank() == 0 {
			for p := 1; p < c.Size(); p++ {
				c.Send(p, tag(0), comm.Sized(256*netmodel.KB))
			}
		} else {
			c.Recv(0, tag(0))
		}
	}
	t1 := run(t, netmodel.Cori(1), noise.Percent(5), body)
	t2 := run(t, netmodel.Cori(1), noise.Percent(5), body)
	if t1 != t2 {
		t.Fatalf("non-deterministic: %v vs %v", t1, t2)
	}
}

func TestDeviceCommOnGPU(t *testing.T) {
	run(t, netmodel.PSG(1), noise.None, func(c *Comm) {
		if c.DefaultSpace() != comm.MemDevice {
			t.Errorf("rank %d default space %v", c.Rank(), c.DefaultSpace())
		}
		if c.Rank() != 0 {
			return
		}
		r1 := c.DeviceReduce(1 * netmodel.MB)
		r2 := c.AsyncCopy(1*netmodel.MB, comm.MemHost, comm.MemDevice)
		c.WaitAll([]comm.Request{r1, r2})
	})
}

// GPU staging: receiving into host space must complete strictly earlier
// than receiving into device space (skips the PCIe delivery hop).
func TestHostSpaceRecvSkipsPCIe(t *testing.T) {
	recvEnd := func(space comm.MemSpace) time.Duration {
		var end time.Duration
		run(t, netmodel.PSG(2), noise.None, func(c *Comm) {
			switch c.Rank() {
			case 0:
				c.Send(4, tag(0), comm.Sized(8*netmodel.MB)) // cross-node
			case 4:
				c.Wait(c.IrecvIn(0, tag(0), space))
				end = c.Now()
			}
		})
		return end
	}
	host := recvEnd(comm.MemHost)
	dev := recvEnd(comm.MemDevice)
	if host >= dev {
		t.Fatalf("host-space recv (%v) must beat device-space recv (%v)", host, dev)
	}
}

func TestManyRanksBroadcastChainScale(t *testing.T) {
	// 128 ranks hand a 256KB message down a chain; smoke-tests scale and
	// that virtual time stays plausible.
	p := netmodel.Cori(4) // 128 ranks
	end := run(t, p, noise.None, func(c *Comm) {
		r, n := c.Rank(), c.Size()
		if r > 0 {
			c.Recv(r-1, tag(0))
		}
		if r < n-1 {
			c.Send(r+1, tag(0), comm.Sized(256*netmodel.KB))
		}
	})
	if end <= 0 || end > time.Second {
		t.Fatalf("implausible chain time %v", end)
	}
}

func TestTraceCapture(t *testing.T) {
	k := sim.New()
	w := NewWorld(k, netmodel.Cori(1), noise.None)
	w.Trace = &trace.Buffer{}
	w.Spawn(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, tag(0), comm.Sized(64*netmodel.KB))
			c.ComputeFor(time.Millisecond)
		case 1:
			c.Recv(0, tag(0))
		}
	})
	k.MustRun()
	s := w.Trace.Summarize()
	if s.ByKind[trace.SendPost] != 1 || s.ByKind[trace.SendDone] != 1 ||
		s.ByKind[trace.RecvPost] != 1 || s.ByKind[trace.RecvDone] != 1 ||
		s.ByKind[trace.Compute] != 1 {
		t.Fatalf("unexpected event mix: %+v", s.ByKind)
	}
	if s.BytesSent[0] != 64*netmodel.KB {
		t.Fatalf("bytes sent = %d", s.BytesSent[0])
	}
}

func TestTryProgressSim(t *testing.T) {
	run(t, netmodel.Cori(1), noise.None, func(c *Comm) {
		switch c.Rank() {
		case 0:
			if c.TryProgress() {
				t.Error("TryProgress with nothing pending should report false")
			}
			r := c.Isend(1, tag(0), comm.Sized(1*netmodel.KB))
			fired := false
			c.OnComplete(r, func(comm.Status) { fired = true })
			// Completion needs virtual time to pass; alternate compute
			// slices with pokes, the application-driven-progress pattern.
			for i := 0; i < 100 && !fired; i++ {
				c.ComputeFor(10 * time.Microsecond)
				c.TryProgress()
			}
			if !fired {
				c.Progress() // fall back; must fire now or panic usefully
			}
			if !fired {
				t.Error("callback never fired")
			}
		case 1:
			c.Recv(0, tag(0))
		}
	})
}

func TestSsendSynchronizesSim(t *testing.T) {
	var sendDone, recvPosted time.Duration
	run(t, netmodel.Cori(1), noise.None, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Ssend(1, tag(0), comm.Sized(64)) // eager-sized, still synchronous
			sendDone = c.Now()
		case 1:
			c.ComputeFor(3 * time.Millisecond)
			recvPosted = c.Now()
			c.Recv(0, tag(0))
		}
	})
	if sendDone < recvPosted {
		t.Fatalf("Ssend done at %v before recv posted at %v", sendDone, recvPosted)
	}
}

func TestProbeSim(t *testing.T) {
	run(t, netmodel.Cori(1), noise.None, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.ComputeFor(time.Millisecond)
			c.Send(1, tag(5), comm.Sized(4*netmodel.KB))
		case 1:
			st := c.Probe(comm.AnySource, comm.AnyTag)
			if st.Source != 0 || st.Tag != tag(5) || st.Msg.Size != 4*netmodel.KB {
				t.Errorf("probe = %+v", st)
			}
			c.Recv(0, tag(5))
		}
	})
}
