package netmodel

import (
	"fmt"
	"io"
	"sort"
	"time"

	"adapt/internal/sim"
)

// Usage summarizes one facility's occupancy over a simulation.
type Usage struct {
	Name     string
	Busy     time.Duration
	Uses     uint64
	Fraction float64 // Busy / elapsed
}

// Utilization reports every facility's occupancy relative to the elapsed
// virtual time, busiest first. It is the tool for diagnosing which lane
// bottlenecks a collective — e.g. the node leader's gpu-out link before
// the §4.1 staging optimization.
func (n *Net) Utilization(elapsed time.Duration) []Usage {
	var all []*sim.Resource
	all = append(all, n.nicTx...)
	all = append(all, n.nicRx...)
	all = append(all, n.qpi...)
	all = append(all, n.cpu...)
	all = append(all, n.gpuOut...)
	all = append(all, n.gpuIn...)
	all = append(all, n.gpuCalc...)
	all = append(all, n.nvlOut...)
	all = append(all, n.nvlIn...)
	out := make([]Usage, 0, len(all))
	for _, r := range all {
		u := Usage{Name: r.Name, Busy: r.Busy(), Uses: r.Uses()}
		if elapsed > 0 {
			u.Fraction = float64(r.Busy()) / float64(elapsed)
		}
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Busy != out[j].Busy {
			return out[i].Busy > out[j].Busy
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// FprintUtilization writes the top-k facilities as an aligned table.
func (n *Net) FprintUtilization(w io.Writer, elapsed time.Duration, k int) {
	us := n.Utilization(elapsed)
	if k > 0 && len(us) > k {
		us = us[:k]
	}
	fmt.Fprintf(w, "facility utilization over %v:\n", elapsed)
	for _, u := range us {
		fmt.Fprintf(w, "  %-14s %8.1f%%  busy %-12v uses %d\n",
			u.Name, 100*u.Fraction, u.Busy.Round(time.Microsecond), u.Uses)
	}
}
