// Package netmodel turns the simulator's abstract events into hardware
// costs. It implements the Hockney model the paper uses for its own
// analysis (§5.2.1): sending m bytes costs T = α + βm on the lane between
// the two ranks, reduction arithmetic costs γm, and contended facilities
// (NIC queues, PCIe directions, QPI links, socket memory buses) are FIFO
// resources, so concurrent transfers over one lane serialize while
// transfers over different lanes overlap — the physical fact ADAPT's
// topology-aware tree exploits.
package netmodel

import (
	"fmt"
	"time"

	"adapt/internal/hwloc"
)

// Rate is a bandwidth in bytes per second.
type Rate float64

// Over returns the serialization time of n bytes at rate r.
func (r Rate) Over(n int) time.Duration {
	if r <= 0 {
		panic("netmodel: non-positive rate")
	}
	return time.Duration(float64(n) / float64(r) * float64(time.Second))
}

const (
	// KB/MB/GB in the binary sense used throughout the paper.
	KB = 1 << 10
	MB = 1 << 20
	GB = 1 << 30
)

// Params holds a platform's Hockney parameters per hardware lane.
type Params struct {
	// Intra-socket shared-memory lane.
	ShmAlpha time.Duration
	ShmBw    Rate
	// Inter-socket (QPI/UPI) lane.
	QpiAlpha time.Duration
	QpiBw    Rate
	// Inter-node (NIC + fabric) lane.
	NetAlpha time.Duration
	NetBw    Rate

	// PCIe lane (GPU platforms only).
	PCIeAlpha time.Duration
	PCIeBw    Rate

	// NVLink peer lane between GPUs on one socket (0 = absent; PCIe peer
	// transfers are used instead). The paper's intro names NVLink as the
	// emerging GPU-GPU lane; the PSGNVLink profile models a cluster that
	// has it.
	NVLinkAlpha time.Duration
	NVLinkBw    Rate

	// γ rates: local work throughput.
	ReduceCPUBw Rate // CPU reduction arithmetic
	ReduceGPUBw Rate // GPU reduction kernel
	CopyBw      Rate // host memcpy (unexpected-message drain etc.)

	// EagerLimit: messages at or below this size use the eager protocol;
	// larger ones use rendezvous (sender waits for the matching receive).
	EagerLimit int
	// RndvAlpha: extra control-message latency of a rendezvous handshake.
	RndvAlpha time.Duration
	// UnexpectedAlpha: fixed overhead of an unexpected-message buffering
	// + later copy-out (plus size/CopyBw charged at match time).
	UnexpectedAlpha time.Duration

	// Aggregate collapses each facility class (NIC queues, QPI links,
	// copy engines, PCIe/NVLink ports, GPU compute) into ONE shared
	// resource whose bandwidth is the class's per-unit rate times the
	// unit count, instead of one resource per node/rank. Latency (α)
	// terms are untouched. This is a fluid-flow approximation: aggregate
	// throughput is preserved when many ranks drive the fabric at once,
	// but a single stream can transiently run at the class's aggregate
	// rate, so per-facility contention fidelity is lost. Use it for
	// million-rank kernel-scaling runs where O(ranks) resources (and
	// their names) dominate memory; leave it off for model-accuracy work.
	Aggregate bool
}

// Platform couples a machine topology with its cost parameters.
type Platform struct {
	Name string
	Topo *hwloc.Topology
	Params
}

func (p *Platform) String() string {
	return fmt.Sprintf("%s [%s]", p.Name, p.Topo)
}

// WithTopo returns a copy of the platform on a different machine shape
// (e.g. a strong-scaling subset).
func (p *Platform) WithTopo(t *hwloc.Topology) *Platform {
	cp := *p
	cp.Topo = t
	return &cp
}

// Cori models NERSC Cori's Haswell partition as used in the paper:
// 2 × 16-core Xeon E5-2698v3-class sockets per node, Cray Aries fabric.
// nodes=32 gives the paper's 1024-rank runs.
func Cori(nodes int) *Platform {
	return &Platform{
		Name: "cori",
		Topo: hwloc.New(nodes, 2, 16),
		Params: Params{
			ShmAlpha: 400 * time.Nanosecond,
			ShmBw:    5 * GB,
			QpiAlpha: 700 * time.Nanosecond,
			QpiBw:    7 * GB,
			NetAlpha: 1500 * time.Nanosecond,
			NetBw:    8 * GB,

			ReduceCPUBw: 2.5 * GB, // paper: "no vectorization optimizations"
			CopyBw:      8 * GB,

			EagerLimit:      8 * KB,
			RndvAlpha:       1200 * time.Nanosecond,
			UnexpectedAlpha: 1 * time.Microsecond,
		},
	}
}

// Stampede2 models TACC Stampede2's Skylake partition: 2 × 24-core Xeon
// 8160 sockets per node, Intel Omni-Path fabric. nodes=32 gives the
// paper's 1536-rank runs.
func Stampede2(nodes int) *Platform {
	return &Platform{
		Name: "stampede2",
		Topo: hwloc.New(nodes, 2, 24),
		Params: Params{
			ShmAlpha: 350 * time.Nanosecond,
			ShmBw:    6 * GB,
			QpiAlpha: 600 * time.Nanosecond,
			QpiBw:    8 * GB,
			NetAlpha: 1100 * time.Nanosecond,
			NetBw:    11 * GB,

			ReduceCPUBw: 3 * GB,
			CopyBw:      9 * GB,

			EagerLimit:      8 * KB,
			RndvAlpha:       1000 * time.Nanosecond,
			UnexpectedAlpha: 1 * time.Microsecond,
		},
	}
}

// PSG models the NVIDIA PSG K40 cluster: per node 2 deca-core Ivy Bridge
// sockets, 2 K40 GPUs per socket (4 per node, one rank per GPU), FDR
// InfiniBand (40 Gb/s ≈ 5 GB/s). nodes=8 gives the paper's 32-GPU runs.
func PSG(nodes int) *Platform {
	return &Platform{
		Name: "psg",
		Topo: hwloc.NewGPU(nodes, 2, 2),
		Params: Params{
			ShmAlpha: 400 * time.Nanosecond,
			ShmBw:    5 * GB,
			QpiAlpha: 700 * time.Nanosecond,
			QpiBw:    6 * GB,
			NetAlpha: 1900 * time.Nanosecond,
			NetBw:    5 * GB, // FDR IB

			PCIeAlpha: 8 * time.Microsecond, // cudaMemcpy launch latency
			PCIeBw:    10 * GB,              // PCIe gen3 x16 effective

			ReduceCPUBw: 2.5 * GB,
			ReduceGPUBw: 90 * GB, // K40: ~288 GB/s HBM, 3 accesses/element
			CopyBw:      8 * GB,

			EagerLimit:      8 * KB,
			RndvAlpha:       1500 * time.Nanosecond,
			UnexpectedAlpha: 1 * time.Microsecond,
		},
	}
}

// PSGNVLink is the PSG machine upgraded with NVLink between same-socket
// GPUs: peer traffic bypasses the PCIe switch entirely, which shrinks the
// benefit of the §4.1 staging buffer for intra-socket hops while leaving
// the inter-node PCIe story untouched.
func PSGNVLink(nodes int) *Platform {
	p := PSG(nodes)
	p.Name = "psg-nvlink"
	p.NVLinkAlpha = 2 * time.Microsecond
	p.NVLinkBw = 40 * GB
	return p
}

// ByName returns a named platform profile for CLI use.
func ByName(name string, nodes int) (*Platform, error) {
	switch name {
	case "cori":
		return Cori(nodes), nil
	case "stampede2":
		return Stampede2(nodes), nil
	case "psg":
		return PSG(nodes), nil
	case "psg-nvlink":
		return PSGNVLink(nodes), nil
	default:
		return nil, fmt.Errorf("netmodel: unknown platform %q", name)
	}
}
