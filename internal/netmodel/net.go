package netmodel

import (
	"fmt"
	"time"

	"adapt/internal/comm"
	"adapt/internal/hwloc"
	"adapt/internal/sim"
)

// Net instantiates a platform's contended facilities on a simulation
// kernel and moves messages across them.
//
// Facility inventory:
//   - nicTx/nicRx: one injection and one delivery queue per node (the
//     InfiniBand/Aries/Omni-Path adapter, paper §4: "both approaches
//     occupy NICs").
//   - qpi: one inter-socket link per node.
//   - cpu: one shared-memory copy engine per rank (the sending core does
//     the memcpy; distinct core pairs copy concurrently, while one core
//     streaming to several peers serializes on its own engine).
//   - gpuOut/gpuIn: each GPU's PCIe x16 link, per direction. Every byte
//     leaving a rank's GPU crosses gpuOut[rank]; every byte entering
//     crosses gpuIn[rank]. This is the lane the paper's node leader
//     saturates in Figure 6a and relieves with the explicit CPU staging
//     buffer in Figure 6c.
//   - gpuCalc: each GPU's compute engine for offloaded reductions (§4.2).
//
// A transfer runs in two phases so the receiver's buffer location can
// differ from the sender's guess (the staging optimization receives
// GPU-bound traffic into host memory):
//
//	StartTransfer: source-side + fabric hops → arrival at the destination
//	               rank's host boundary.
//	Deliver:       destination-side PCIe hop if the receive buffer is in
//	               device memory.
type Net struct {
	K *sim.Kernel
	P *Platform

	// Effective facility rates: the Params per-unit rates in exact mode,
	// multiplied by the class's unit count when Params.Aggregate is set.
	shmBw, qpiBw, netBw, pcieBw, nvlBw, gpuCalcBw Rate

	nicTx, nicRx []*sim.Resource
	qpi          []*sim.Resource
	cpu          []*sim.Resource
	gpuOut       []*sim.Resource
	gpuIn        []*sim.Resource
	gpuCalc      []*sim.Resource
	nvlOut       []*sim.Resource
	nvlIn        []*sim.Resource
}

// at returns facility i of class s. An aggregated class holds a single
// shared facility that every index maps to.
func at(s []*sim.Resource, i int) *sim.Resource {
	if len(s) == 1 {
		return s[0]
	}
	return s[i]
}

// NewNet builds the facility set for platform p on kernel k: one
// resource per node/rank per class, or — with p.Aggregate — one shared
// resource per class at the class's aggregate bandwidth (see
// Params.Aggregate for the fidelity tradeoff).
func NewNet(k *sim.Kernel, p *Platform) *Net {
	t := p.Topo
	n := &Net{K: k, P: p,
		shmBw: p.ShmBw, qpiBw: p.QpiBw, netBw: p.NetBw,
		pcieBw: p.PCIeBw, nvlBw: p.NVLinkBw, gpuCalcBw: p.ReduceGPUBw,
	}
	if p.Aggregate {
		nodes, ranks := Rate(t.Nodes), Rate(t.Size())
		n.netBw *= nodes
		n.qpiBw *= nodes
		n.shmBw *= ranks
		n.pcieBw *= ranks
		n.nvlBw *= ranks
		n.gpuCalcBw *= ranks
		one := func(name string) []*sim.Resource {
			return []*sim.Resource{k.NewResource(name)}
		}
		n.nicTx, n.nicRx, n.qpi = one("nic-tx/*"), one("nic-rx/*"), one("qpi/*")
		n.cpu = one("cpu/*")
		if t.HasGPUs() {
			n.gpuOut, n.gpuIn, n.gpuCalc = one("gpu-out/*"), one("gpu-in/*"), one("gpu-calc/*")
			if p.NVLinkBw > 0 {
				n.nvlOut, n.nvlIn = one("nvl-out/*"), one("nvl-in/*")
			}
		}
		return n
	}
	for node := 0; node < t.Nodes; node++ {
		n.nicTx = append(n.nicTx, k.NewResource(fmt.Sprintf("nic-tx/%d", node)))
		n.nicRx = append(n.nicRx, k.NewResource(fmt.Sprintf("nic-rx/%d", node)))
		n.qpi = append(n.qpi, k.NewResource(fmt.Sprintf("qpi/%d", node)))
	}
	for r := 0; r < t.Size(); r++ {
		n.cpu = append(n.cpu, k.NewResource(fmt.Sprintf("cpu/%d", r)))
	}
	if t.HasGPUs() {
		for r := 0; r < t.Size(); r++ {
			n.gpuOut = append(n.gpuOut, k.NewResource(fmt.Sprintf("gpu-out/%d", r)))
			n.gpuIn = append(n.gpuIn, k.NewResource(fmt.Sprintf("gpu-in/%d", r)))
			n.gpuCalc = append(n.gpuCalc, k.NewResource(fmt.Sprintf("gpu-calc/%d", r)))
			if p.NVLinkBw > 0 {
				n.nvlOut = append(n.nvlOut, k.NewResource(fmt.Sprintf("nvl-out/%d", r)))
				n.nvlIn = append(n.nvlIn, k.NewResource(fmt.Sprintf("nvl-in/%d", r)))
			}
		}
	}
	return n
}

// Facilities reports the number of contended resources backing the net
// (O(classes) in aggregate mode, O(nodes+ranks) otherwise).
func (n *Net) Facilities() int {
	return len(n.nicTx) + len(n.nicRx) + len(n.qpi) + len(n.cpu) +
		len(n.gpuOut) + len(n.gpuIn) + len(n.gpuCalc) + len(n.nvlOut) + len(n.nvlIn)
}

// ResolveSpace maps MemDefault to the platform's payload home.
func (n *Net) ResolveSpace(s comm.MemSpace) comm.MemSpace {
	if s != comm.MemDefault {
		return s
	}
	if n.P.Topo.HasGPUs() {
		return comm.MemDevice
	}
	return comm.MemHost
}

type hop struct {
	r  *sim.Resource
	bw Rate
}

// nvlinkPeer reports whether src→dst traffic may ride NVLink (same
// socket, NVLink present).
func (n *Net) nvlinkPeer(src, dst int) bool {
	return n.P.NVLinkBw > 0 && src != dst &&
		n.P.Topo.LevelBetween(src, dst) == hwloc.LevelCore
}

// sendRoute returns the latency and hop list from src's buffer to dst's
// host boundary.
func (n *Net) sendRoute(src, dst int, srcSpace comm.MemSpace) (time.Duration, []hop) {
	t := n.P.Topo
	level := t.LevelBetween(src, dst)
	var alpha time.Duration
	var hops []hop
	if n.ResolveSpace(srcSpace) == comm.MemDevice {
		if n.nvlinkPeer(src, dst) {
			// Peer traffic leaves over the GPU's NVLink port.
			return n.P.NVLinkAlpha, []hop{{at(n.nvlOut, src), n.nvlBw}}
		}
		alpha += n.P.PCIeAlpha
		hops = append(hops, hop{at(n.gpuOut, src), n.pcieBw})
	}
	switch level {
	case hwloc.LevelSelf: // local copy, no fabric
		alpha += n.P.ShmAlpha
	case hwloc.LevelCore: // intra-socket
		alpha += n.P.ShmAlpha
		if len(hops) == 0 { // host→…: the sender core's copy engine
			hops = append(hops, hop{at(n.cpu, src), n.shmBw})
		}
	case hwloc.LevelSocket: // inter-socket
		alpha += n.P.QpiAlpha
		hops = append(hops, hop{at(n.qpi, t.NodeOf(src)), n.qpiBw})
	default: // inter-node
		alpha += n.P.NetAlpha
		hops = append(hops,
			hop{at(n.nicTx, t.NodeOf(src)), n.netBw},
			hop{at(n.nicRx, t.NodeOf(dst)), n.netBw})
	}
	return alpha, hops
}

// runHops executes hops as chained events starting after `alpha` from now,
// invoking afterFirst at the end of the first hop (or after alpha when
// there are none) and afterLast at the end of the last.
func (n *Net) runHops(alpha time.Duration, hops []hop, size int, afterFirst, afterLast func()) {
	n.K.Schedule(alpha, func() { n.step(hops, size, afterFirst, afterLast) })
}

func (n *Net) step(hops []hop, size int, afterFirst, afterLast func()) {
	if len(hops) == 0 {
		if afterFirst != nil {
			afterFirst()
		}
		if afterLast != nil {
			afterLast()
		}
		return
	}
	end := hops[0].r.Use(hops[0].bw.Over(size))
	rest := hops[1:]
	n.K.At(end, func() {
		if afterFirst != nil {
			afterFirst()
		}
		n.step(rest, size, nil, afterLast)
	})
}

// StartTransfer moves size bytes from src toward dst starting now.
// onSent fires when the source-side buffer is reusable (end of the first
// hop); onArrive fires when the payload reaches dst's host boundary.
func (n *Net) StartTransfer(src, dst, size int, srcSpace comm.MemSpace, onSent, onArrive func()) {
	alpha, hops := n.sendRoute(src, dst, srcSpace)
	n.runHops(alpha, hops, size, onSent, onArrive)
}

// Deliver lands an arrived payload in dst's receive buffer, crossing the
// destination GPU's PCIe link when the buffer lives in device memory.
// done fires when the payload is in place.
func (n *Net) Deliver(dst, size int, dstSpace comm.MemSpace, done func()) {
	n.DeliverFrom(-1, dst, size, dstSpace, done)
}

// DeliverFrom is Deliver with the source rank known, so NVLink peer
// traffic can ride the NVLink ingress port instead of PCIe. src may be
// -1 when unknown (forces the PCIe path).
func (n *Net) DeliverFrom(src, dst, size int, dstSpace comm.MemSpace, done func()) {
	if n.ResolveSpace(dstSpace) == comm.MemDevice {
		if src >= 0 && n.nvlinkPeer(src, dst) {
			n.runHops(0, []hop{{at(n.nvlIn, dst), n.nvlBw}}, size, nil, done)
			return
		}
		n.runHops(n.P.PCIeAlpha, []hop{{at(n.gpuIn, dst), n.pcieBw}}, size, nil, done)
		return
	}
	n.K.Schedule(0, done)
}

// ControlLatency returns the one-way latency of a zero-byte control
// message between two ranks (rendezvous RTS/CTS).
func (n *Net) ControlLatency(src, dst int) time.Duration {
	switch n.P.Topo.LevelBetween(src, dst) {
	case hwloc.LevelSelf, hwloc.LevelCore:
		return n.P.ShmAlpha
	case hwloc.LevelSocket:
		return n.P.QpiAlpha
	default:
		return n.P.NetAlpha
	}
}

// GPUReduce runs an offloaded reduction of n bytes on rank's GPU compute
// engine; done fires at kernel completion (paper §4.2).
func (n *Net) GPUReduce(rank, size int, done func()) {
	if n.gpuCalc == nil {
		panic("netmodel: GPUReduce on a CPU platform")
	}
	end := at(n.gpuCalc, rank).Use(n.gpuCalcBw.Over(size))
	n.K.At(end, done)
}

// AsyncCopy runs an asynchronous host↔device copy of n bytes over rank's
// PCIe link; done fires at completion (the §4.1 staging flush).
func (n *Net) AsyncCopy(rank, size int, from, to comm.MemSpace, done func()) {
	if n.gpuIn == nil {
		panic("netmodel: AsyncCopy on a CPU platform")
	}
	var r *sim.Resource
	switch {
	case from == comm.MemHost && to == comm.MemDevice:
		r = at(n.gpuIn, rank)
	case from == comm.MemDevice && to == comm.MemHost:
		r = at(n.gpuOut, rank)
	default:
		panic(fmt.Sprintf("netmodel: AsyncCopy %v→%v", from, to))
	}
	n.K.Schedule(n.P.PCIeAlpha, func() {
		end := r.Use(n.pcieBw.Over(size))
		n.K.At(end, done)
	})
}

// CPUCost returns the blocking local-work duration for kind over n bytes.
func (n *Net) CPUCost(size int, kind comm.ComputeKind) time.Duration {
	switch kind {
	case comm.ComputeReduce:
		return n.P.ReduceCPUBw.Over(size)
	case comm.ComputeCopy:
		return n.P.CopyBw.Over(size)
	case comm.ComputeApp:
		return n.P.ReduceCPUBw.Over(size)
	default:
		panic("netmodel: unknown compute kind")
	}
}
