package netmodel

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"adapt/internal/comm"
	"adapt/internal/sim"
)

func TestConfigRoundTrip(t *testing.T) {
	for _, p := range []*Platform{Cori(4), Stampede2(2), PSG(2)} {
		var buf bytes.Buffer
		if err := p.SaveConfig(&buf); err != nil {
			t.Fatalf("%s: save: %v", p.Name, err)
		}
		back, err := LoadPlatform(&buf)
		if err != nil {
			t.Fatalf("%s: load: %v", p.Name, err)
		}
		if back.Name != p.Name || back.Topo.Size() != p.Topo.Size() {
			t.Fatalf("%s: round-trip mangled identity: %v", p.Name, back)
		}
		if back.NetBw != p.NetBw || back.ShmAlpha != p.ShmAlpha || back.EagerLimit != p.EagerLimit {
			t.Fatalf("%s: round-trip mangled parameters", p.Name)
		}
		if back.Topo.HasGPUs() != p.Topo.HasGPUs() {
			t.Fatalf("%s: GPU-ness lost", p.Name)
		}
	}
}

func TestLoadPlatformCustom(t *testing.T) {
	js := `{
	  "name": "minicluster",
	  "nodes": 2, "socketsPerNode": 1, "coresPerSocket": 4,
	  "shmAlpha": "300ns", "qpiAlpha": "500ns", "netAlpha": "2us",
	  "rndvAlpha": "1us", "unexpectedAlpha": "800ns",
	  "shmBwGB": 4, "qpiBwGB": 6, "netBwGB": 10,
	  "reduceCpuBwGB": 2, "copyBwGB": 6,
	  "eagerLimitKB": 16
	}`
	p, err := LoadPlatform(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	if p.Topo.Size() != 8 || p.NetAlpha != 2*time.Microsecond || p.EagerLimit != 16*KB {
		t.Fatalf("loaded platform wrong: %+v", p)
	}
	// The loaded platform must actually drive transfers.
	k := sim.New()
	n := NewNet(k, p)
	var done bool
	k.Schedule(0, func() {
		n.StartTransfer(0, 4, 1*MB, comm.MemHost, nil, func() { done = true })
	})
	k.MustRun()
	if !done {
		t.Fatal("transfer on loaded platform never completed")
	}
}

func TestLoadPlatformRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"name":"x","nodes":1,"socketsPerNode":1,"coresPerSocket":1,"bogus":1}`,
		"zero shape":    `{"name":"x","nodes":0,"socketsPerNode":1,"coresPerSocket":1,"shmAlpha":"1ns","qpiAlpha":"1ns","netAlpha":"1ns","rndvAlpha":"1ns","unexpectedAlpha":"1ns","shmBwGB":1,"qpiBwGB":1,"netBwGB":1,"reduceCpuBwGB":1,"copyBwGB":1,"eagerLimitKB":8}`,
		"bad duration":  `{"name":"x","nodes":1,"socketsPerNode":1,"coresPerSocket":1,"shmAlpha":"fast","qpiAlpha":"1ns","netAlpha":"1ns","rndvAlpha":"1ns","unexpectedAlpha":"1ns","shmBwGB":1,"qpiBwGB":1,"netBwGB":1,"reduceCpuBwGB":1,"copyBwGB":1,"eagerLimitKB":8}`,
		"zero bw":       `{"name":"x","nodes":1,"socketsPerNode":1,"coresPerSocket":1,"shmAlpha":"1ns","qpiAlpha":"1ns","netAlpha":"1ns","rndvAlpha":"1ns","unexpectedAlpha":"1ns","shmBwGB":0,"qpiBwGB":1,"netBwGB":1,"reduceCpuBwGB":1,"copyBwGB":1,"eagerLimitKB":8}`,
		"gpu mismatch":  `{"name":"x","nodes":1,"socketsPerNode":1,"coresPerSocket":4,"gpusPerSocket":2,"shmAlpha":"1ns","qpiAlpha":"1ns","netAlpha":"1ns","rndvAlpha":"1ns","unexpectedAlpha":"1ns","shmBwGB":1,"qpiBwGB":1,"netBwGB":1,"reduceCpuBwGB":1,"copyBwGB":1,"pcieBwGB":1,"reduceGpuBwGB":1,"eagerLimitKB":8}`,
	}
	for name, js := range cases {
		if _, err := LoadPlatform(strings.NewReader(js)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestUtilizationReport(t *testing.T) {
	k := sim.New()
	p := Cori(2)
	n := NewNet(k, p)
	k.Schedule(0, func() {
		// Saturate node 0's NIC with two transfers; shm lane once.
		n.StartTransfer(0, 32, 4*MB, comm.MemHost, nil, nil)
		n.StartTransfer(1, 33, 4*MB, comm.MemHost, nil, nil)
		n.StartTransfer(0, 2, 1*MB, comm.MemHost, nil, nil)
	})
	end := k.MustRun()
	us := n.Utilization(end)
	if len(us) == 0 {
		t.Fatal("no facilities reported")
	}
	// nic-tx/0 and nic-rx/1 both carried 8MB; either may sort first.
	if us[0].Name != "nic-tx/0" && us[0].Name != "nic-rx/1" {
		t.Fatalf("busiest facility = %s, want a node-0→1 NIC queue", us[0].Name)
	}
	if us[0].Fraction <= 0 || us[0].Fraction > 1.0001 {
		t.Fatalf("fraction %v out of range", us[0].Fraction)
	}
	var buf bytes.Buffer
	n.FprintUtilization(&buf, end, 5)
	if !strings.Contains(buf.String(), "nic-tx/0") {
		t.Fatalf("report missing busiest facility:\n%s", buf.String())
	}
}
