package netmodel

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"adapt/internal/hwloc"
)

// PlatformConfig is the JSON schema for user-defined platform profiles,
// so experiments can model machines beyond the three built-ins. Latencies
// are Go duration strings ("400ns", "1.5us"); bandwidths are GB/s (binary
// GB, matching the built-in profiles).
type PlatformConfig struct {
	Name           string `json:"name"`
	Nodes          int    `json:"nodes"`
	SocketsPerNode int    `json:"socketsPerNode"`
	CoresPerSocket int    `json:"coresPerSocket"`
	GPUsPerSocket  int    `json:"gpusPerSocket,omitempty"`

	ShmAlpha        string `json:"shmAlpha"`
	QpiAlpha        string `json:"qpiAlpha"`
	NetAlpha        string `json:"netAlpha"`
	PCIeAlpha       string `json:"pcieAlpha,omitempty"`
	RndvAlpha       string `json:"rndvAlpha"`
	UnexpectedAlpha string `json:"unexpectedAlpha"`

	ShmBwGB       float64 `json:"shmBwGB"`
	QpiBwGB       float64 `json:"qpiBwGB"`
	NetBwGB       float64 `json:"netBwGB"`
	PCIeBwGB      float64 `json:"pcieBwGB,omitempty"`
	ReduceCPUBwGB float64 `json:"reduceCpuBwGB"`
	ReduceGPUBwGB float64 `json:"reduceGpuBwGB,omitempty"`
	CopyBwGB      float64 `json:"copyBwGB"`

	EagerLimitKB int `json:"eagerLimitKB"`

	// Aggregate collapses each facility class into one shared resource
	// at the class's aggregate bandwidth (see Params.Aggregate).
	Aggregate bool `json:"aggregate,omitempty"`
}

func parseDur(field, s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("netmodel: field %s: %w", field, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("netmodel: field %s: negative duration %v", field, d)
	}
	return d, nil
}

// Platform materializes the config into a usable platform.
func (c *PlatformConfig) Platform() (*Platform, error) {
	if c.Nodes <= 0 || c.SocketsPerNode <= 0 || c.CoresPerSocket <= 0 {
		return nil, fmt.Errorf("netmodel: invalid machine shape %d×%d×%d",
			c.Nodes, c.SocketsPerNode, c.CoresPerSocket)
	}
	for _, bw := range []struct {
		name string
		v    float64
	}{{"shmBwGB", c.ShmBwGB}, {"qpiBwGB", c.QpiBwGB}, {"netBwGB", c.NetBwGB},
		{"reduceCpuBwGB", c.ReduceCPUBwGB}, {"copyBwGB", c.CopyBwGB}} {
		if bw.v <= 0 {
			return nil, fmt.Errorf("netmodel: field %s must be positive", bw.name)
		}
	}
	if c.EagerLimitKB <= 0 {
		return nil, fmt.Errorf("netmodel: eagerLimitKB must be positive")
	}
	var topo *hwloc.Topology
	if c.GPUsPerSocket > 0 {
		if c.GPUsPerSocket != c.CoresPerSocket {
			return nil, fmt.Errorf("netmodel: GPU platforms bind one rank per GPU (gpusPerSocket must equal coresPerSocket)")
		}
		if c.PCIeBwGB <= 0 || c.ReduceGPUBwGB <= 0 {
			return nil, fmt.Errorf("netmodel: GPU platforms need pcieBwGB and reduceGpuBwGB")
		}
		topo = hwloc.NewGPU(c.Nodes, c.SocketsPerNode, c.GPUsPerSocket)
	} else {
		topo = hwloc.New(c.Nodes, c.SocketsPerNode, c.CoresPerSocket)
	}
	p := &Platform{Name: c.Name, Topo: topo}
	var err error
	if p.ShmAlpha, err = parseDur("shmAlpha", c.ShmAlpha); err != nil {
		return nil, err
	}
	if p.QpiAlpha, err = parseDur("qpiAlpha", c.QpiAlpha); err != nil {
		return nil, err
	}
	if p.NetAlpha, err = parseDur("netAlpha", c.NetAlpha); err != nil {
		return nil, err
	}
	if p.PCIeAlpha, err = parseDur("pcieAlpha", c.PCIeAlpha); err != nil {
		return nil, err
	}
	if p.RndvAlpha, err = parseDur("rndvAlpha", c.RndvAlpha); err != nil {
		return nil, err
	}
	if p.UnexpectedAlpha, err = parseDur("unexpectedAlpha", c.UnexpectedAlpha); err != nil {
		return nil, err
	}
	p.ShmBw = Rate(c.ShmBwGB * GB)
	p.QpiBw = Rate(c.QpiBwGB * GB)
	p.NetBw = Rate(c.NetBwGB * GB)
	p.PCIeBw = Rate(c.PCIeBwGB * GB)
	p.ReduceCPUBw = Rate(c.ReduceCPUBwGB * GB)
	p.ReduceGPUBw = Rate(c.ReduceGPUBwGB * GB)
	p.CopyBw = Rate(c.CopyBwGB * GB)
	p.EagerLimit = c.EagerLimitKB * KB
	p.Aggregate = c.Aggregate
	return p, nil
}

// LoadPlatform reads a JSON platform profile.
func LoadPlatform(r io.Reader) (*Platform, error) {
	var cfg PlatformConfig
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("netmodel: decoding platform config: %w", err)
	}
	return cfg.Platform()
}

// Config exports a platform back to the JSON schema (round-trippable).
func (p *Platform) Config() PlatformConfig {
	return PlatformConfig{
		Name:           p.Name,
		Nodes:          p.Topo.Nodes,
		SocketsPerNode: p.Topo.SocketsPerNode,
		CoresPerSocket: p.Topo.CoresPerSocket,
		GPUsPerSocket:  p.Topo.GPUsPerSocket,

		ShmAlpha:        p.ShmAlpha.String(),
		QpiAlpha:        p.QpiAlpha.String(),
		NetAlpha:        p.NetAlpha.String(),
		PCIeAlpha:       p.PCIeAlpha.String(),
		RndvAlpha:       p.RndvAlpha.String(),
		UnexpectedAlpha: p.UnexpectedAlpha.String(),

		ShmBwGB:       float64(p.ShmBw) / GB,
		QpiBwGB:       float64(p.QpiBw) / GB,
		NetBwGB:       float64(p.NetBw) / GB,
		PCIeBwGB:      float64(p.PCIeBw) / GB,
		ReduceCPUBwGB: float64(p.ReduceCPUBw) / GB,
		ReduceGPUBwGB: float64(p.ReduceGPUBw) / GB,
		CopyBwGB:      float64(p.CopyBw) / GB,

		EagerLimitKB: p.EagerLimit / KB,
		Aggregate:    p.Aggregate,
	}
}

// SaveConfig writes the platform's JSON profile.
func (p *Platform) SaveConfig(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p.Config())
}
