package netmodel

import (
	"testing"
	"time"

	"adapt/internal/comm"
	"adapt/internal/sim"
)

func TestRateOver(t *testing.T) {
	r := Rate(1 * GB)
	if got := r.Over(1 * GB); got != time.Second {
		t.Fatalf("1GB over 1GB/s = %v, want 1s", got)
	}
	if got := r.Over(0); got != 0 {
		t.Fatalf("0 bytes must cost 0, got %v", got)
	}
}

func TestProfilesSane(t *testing.T) {
	for _, p := range []*Platform{Cori(32), Stampede2(32), PSG(8)} {
		if p.NetBw <= 0 || p.ShmBw <= 0 || p.QpiBw <= 0 || p.ReduceCPUBw <= 0 {
			t.Errorf("%s: non-positive bandwidth", p.Name)
		}
		if p.NetAlpha < p.ShmAlpha {
			t.Errorf("%s: inter-node latency below shared-memory latency", p.Name)
		}
		if p.EagerLimit <= 0 {
			t.Errorf("%s: eager limit %d", p.Name, p.EagerLimit)
		}
	}
	if Cori(32).Topo.Size() != 1024 {
		t.Errorf("Cori(32) = %d ranks, want 1024", Cori(32).Topo.Size())
	}
	if Stampede2(32).Topo.Size() != 1536 {
		t.Errorf("Stampede2(32) = %d ranks, want 1536", Stampede2(32).Topo.Size())
	}
	if PSG(8).Topo.Size() != 32 || !PSG(8).Topo.HasGPUs() {
		t.Errorf("PSG(8) = %v", PSG(8).Topo)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"cori", "stampede2", "psg"} {
		if _, err := ByName(name, 2); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := ByName("bogus", 2); err == nil {
		t.Error("expected error for unknown platform")
	}
}

// A single intra-socket transfer must cost α_shm + m/β_shm.
func TestTransferIntraSocketCost(t *testing.T) {
	k := sim.New()
	p := Cori(1)
	n := NewNet(k, p)
	var sent, arrived time.Duration
	done := false
	k.Schedule(0, func() {
		n.StartTransfer(0, 1, 1*MB, comm.MemHost,
			func() { sent = k.Now() },
			func() {
				arrived = k.Now()
				n.Deliver(1, 1*MB, comm.MemHost, func() { done = true })
			})
	})
	k.MustRun()
	want := p.ShmAlpha + p.ShmBw.Over(1*MB)
	if arrived != want {
		t.Fatalf("arrival = %v, want %v", arrived, want)
	}
	if sent != arrived { // single hop: buffer free when transfer done
		t.Fatalf("sent = %v, arrived = %v", sent, arrived)
	}
	if !done {
		t.Fatal("Deliver callback never fired")
	}
}

// An inter-node transfer crosses two NIC queues store-and-forward.
func TestTransferInterNodeCost(t *testing.T) {
	k := sim.New()
	p := Cori(2)
	n := NewNet(k, p)
	var sent, arrived time.Duration
	k.Schedule(0, func() {
		n.StartTransfer(0, 32, 4*MB, comm.MemHost,
			func() { sent = k.Now() },
			func() { arrived = k.Now() })
	})
	k.MustRun()
	ser := p.NetBw.Over(4 * MB)
	if want := p.NetAlpha + 2*ser; arrived != want {
		t.Fatalf("arrival = %v, want %v", arrived, want)
	}
	if want := p.NetAlpha + ser; sent != want {
		t.Fatalf("sent = %v, want %v", sent, want)
	}
}

// Two transfers out of the same node serialize on the NIC; transfers on
// different lanes overlap.
func TestNICSerializesButLanesOverlap(t *testing.T) {
	k := sim.New()
	p := Cori(2)
	n := NewNet(k, p)
	var tNet1, tNet2, tShm time.Duration
	k.Schedule(0, func() {
		n.StartTransfer(0, 32, 1*MB, comm.MemHost, nil, func() { tNet1 = k.Now() })
		n.StartTransfer(1, 33, 1*MB, comm.MemHost, nil, func() { tNet2 = k.Now() })
		n.StartTransfer(0, 2, 1*MB, comm.MemHost, nil, func() { tShm = k.Now() })
	})
	k.MustRun()
	if tNet2 <= tNet1 {
		t.Fatalf("second NIC transfer (%v) must finish after first (%v)", tNet2, tNet1)
	}
	// The shm transfer is independent of NIC congestion.
	if want := p.ShmAlpha + p.ShmBw.Over(1*MB); tShm != want {
		t.Fatalf("shm arrival = %v, want %v (no NIC interference)", tShm, want)
	}
	// NIC serialization: second transfer waits a full service time at tx.
	if tNet2-tNet1 < p.NetBw.Over(1*MB)/2 {
		t.Fatalf("NIC transfers overlapped too much: %v vs %v", tNet1, tNet2)
	}
}

// GPU transfers cross the source GPU's PCIe out-link; host-space sends
// from the same rank do not.
func TestGPURouteUsesPCIe(t *testing.T) {
	k := sim.New()
	p := PSG(2)
	n := NewNet(k, p)
	var devT, hostT time.Duration
	k.Schedule(0, func() {
		// Device → device across nodes: PCIe out + 2×NIC + PCIe in.
		n.StartTransfer(0, 4, 8*MB, comm.MemDefault, nil, func() {
			n.Deliver(4, 8*MB, comm.MemDefault, func() { devT = k.Now() })
		})
	})
	k.Schedule(0, func() {
		// Host → host same path length minus PCIe.
		n.StartTransfer(1, 5, 8*MB, comm.MemHost, nil, func() {
			n.Deliver(5, 8*MB, comm.MemHost, func() { hostT = k.Now() })
		})
	})
	k.MustRun()
	if devT <= hostT {
		t.Fatalf("device transfer (%v) must cost more than host transfer (%v)", devT, hostT)
	}
	pcie := 2*p.PCIeAlpha + 2*p.PCIeBw.Over(8*MB)
	if diff := devT - hostT; diff < pcie/2 || diff > pcie*2 {
		t.Fatalf("PCIe overhead %v implausible (expect around %v)", diff, pcie)
	}
}

// Same-socket device→device peers bypass NIC and QPI entirely.
func TestGPUPeerTransfer(t *testing.T) {
	k := sim.New()
	p := PSG(1)
	n := NewNet(k, p)
	var at time.Duration
	k.Schedule(0, func() {
		n.StartTransfer(0, 1, 4*MB, comm.MemDefault, nil, func() {
			n.Deliver(1, 4*MB, comm.MemDefault, func() { at = k.Now() })
		})
	})
	k.MustRun()
	want := 2*p.PCIeAlpha + p.ShmAlpha + 2*p.PCIeBw.Over(4*MB)
	if at != want {
		t.Fatalf("peer transfer = %v, want %v", at, want)
	}
}

func TestGPUReduceAndAsyncCopy(t *testing.T) {
	k := sim.New()
	p := PSG(1)
	n := NewNet(k, p)
	var reduceEnd, copyEnd time.Duration
	k.Schedule(0, func() {
		n.GPUReduce(0, 32*MB, func() { reduceEnd = k.Now() })
		n.AsyncCopy(0, 32*MB, comm.MemHost, comm.MemDevice, func() { copyEnd = k.Now() })
	})
	k.MustRun()
	if want := p.ReduceGPUBw.Over(32 * MB); reduceEnd != want {
		t.Fatalf("GPU reduce = %v, want %v", reduceEnd, want)
	}
	if want := p.PCIeAlpha + p.PCIeBw.Over(32*MB); copyEnd != want {
		t.Fatalf("async copy = %v, want %v", copyEnd, want)
	}
}

func TestCPUCost(t *testing.T) {
	n := NewNet(sim.New(), Cori(1))
	if n.CPUCost(1*MB, comm.ComputeReduce) <= 0 {
		t.Fatal("reduce cost must be positive")
	}
	if n.CPUCost(1*MB, comm.ComputeCopy) >= n.CPUCost(1*MB, comm.ComputeReduce) {
		t.Fatal("memcpy should beat reduction arithmetic")
	}
}

func TestWithTopoSubset(t *testing.T) {
	p := Cori(32)
	sub := p.WithTopo(p.Topo.Subset(256))
	if sub.Topo.Size() != 256 || sub.NetBw != p.NetBw {
		t.Fatalf("WithTopo broken: %v", sub)
	}
}

// NVLink peer transfers bypass PCIe and run at NVLink bandwidth.
func TestNVLinkPeerTransfer(t *testing.T) {
	k := sim.New()
	p := PSGNVLink(1)
	n := NewNet(k, p)
	var at time.Duration
	k.Schedule(0, func() {
		n.StartTransfer(0, 1, 4*MB, comm.MemDefault, nil, func() {
			n.DeliverFrom(0, 1, 4*MB, comm.MemDefault, func() { at = k.Now() })
		})
	})
	k.MustRun()
	want := p.NVLinkAlpha + 2*p.NVLinkBw.Over(4*MB)
	if at != want {
		t.Fatalf("NVLink peer transfer = %v, want %v", at, want)
	}
	// Much faster than the PCIe peer path on plain PSG.
	pcie := 2*PSG(1).PCIeAlpha + PSG(1).ShmAlpha + 2*PSG(1).PCIeBw.Over(4*MB)
	if at >= pcie {
		t.Fatalf("NVLink (%v) should beat PCIe peer path (%v)", at, pcie)
	}
}

// Cross-socket and cross-node GPU traffic still uses PCIe on the NVLink
// platform.
func TestNVLinkOnlyIntraSocket(t *testing.T) {
	k := sim.New()
	p := PSGNVLink(2)
	n := NewNet(k, p)
	var crossSock, crossNode time.Duration
	k.Schedule(0, func() {
		n.StartTransfer(0, 2, 4*MB, comm.MemDefault, nil, func() {
			n.DeliverFrom(0, 2, 4*MB, comm.MemDefault, func() { crossSock = k.Now() })
		})
	})
	k.MustRun()
	k2 := sim.New()
	n2 := NewNet(k2, p)
	k2.Schedule(0, func() {
		n2.StartTransfer(0, 4, 4*MB, comm.MemDefault, nil, func() {
			n2.DeliverFrom(0, 4, 4*MB, comm.MemDefault, func() { crossNode = k2.Now() })
		})
	})
	k2.MustRun()
	minPCIe := 2 * p.PCIeBw.Over(4*MB)
	if crossSock < minPCIe || crossNode < minPCIe {
		t.Fatalf("cross-socket (%v) / cross-node (%v) must still pay PCIe (≥%v)",
			crossSock, crossNode, minPCIe)
	}
}
