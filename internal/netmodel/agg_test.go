package netmodel

import (
	"testing"
	"time"

	"adapt/internal/comm"
	"adapt/internal/sim"
)

// Aggregate mode must build O(classes) facilities regardless of machine
// size — that is its entire point (million-rank kernel runs can't afford
// O(ranks) resource structs and their formatted names).
func TestAggregateFacilityCount(t *testing.T) {
	exact := NewNet(sim.New(), Cori(32))
	if got := exact.Facilities(); got < 1024 {
		t.Fatalf("exact Cori(32) facilities = %d, want ≥ ranks (1024)", got)
	}
	big := Cori(32)
	big.Aggregate = true
	agg := NewNet(sim.New(), big)
	if got := agg.Facilities(); got != 4 {
		t.Fatalf("aggregate CPU platform facilities = %d, want 4 (nicTx nicRx qpi cpu)", got)
	}
	gpu := PSGNVLink(8)
	gpu.Aggregate = true
	if got := NewNet(sim.New(), gpu).Facilities(); got != 9 {
		t.Fatalf("aggregate NVLink platform facilities = %d, want 9", got)
	}
}

// Full uniform load on a single-hop class: every rank exchanges with
// its XOR partner over the shared-memory copy engines (one hop, one
// stream per engine). The shared aggregate facility at ranks× bandwidth
// must finish the batch at the same virtual time as the per-rank
// facilities — aggregate throughput is preserved — and the run must be
// deterministic. (Multi-hop routes do NOT keep batch makespans equal:
// queued streams pipeline across store-and-forward hops differently
// than parallel per-unit streams do; only throughput is preserved.)
func TestAggregateThroughputMatchesExact(t *testing.T) {
	const size = 1 * MB
	run := func(agg bool) time.Duration {
		p := Cori(1) // 32 ranks, XOR partners share a socket
		p.Aggregate = agg
		k := sim.New()
		n := NewNet(k, p)
		k.Schedule(0, func() {
			for r := 0; r < p.Topo.Size(); r++ {
				n.StartTransfer(r, r^1, size, comm.MemHost, nil, nil)
			}
		})
		return k.MustRun()
	}
	exact := run(false)
	agg1, agg2 := run(true), run(true)
	if agg1 != agg2 {
		t.Fatalf("aggregate mode nondeterministic: %v vs %v", agg1, agg2)
	}
	// Exact: 32 engines, one stream each → α + ser. Aggregate: one
	// engine at 32× serving 32 queued streams of ser/32 → α + ser,
	// up to sub-µs per-stream duration rounding.
	if diff := exact - agg1; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("batch makespan: exact %v, aggregate %v", exact, agg1)
	}
	if want := Cori(1).ShmAlpha + Cori(1).ShmBw.Over(size); exact != want {
		t.Fatalf("exact batch makespan = %v, want %v", exact, want)
	}
}

// A lone stream in aggregate mode runs at the class aggregate rate —
// the documented fidelity loss. Pin it so nobody mistakes the fluid
// approximation for the contention model.
func TestAggregateSingleStreamRunsAtAggregateRate(t *testing.T) {
	p := Cori(4)
	p.Aggregate = true
	k := sim.New()
	n := NewNet(k, p)
	var arrived time.Duration
	k.Schedule(0, func() {
		n.StartTransfer(0, p.Topo.Size()-1, 4*MB, comm.MemHost, nil,
			func() { arrived = k.Now() })
	})
	k.MustRun()
	want := p.NetAlpha + 2*(p.NetBw*4).Over(4*MB)
	if arrived != want {
		t.Fatalf("aggregate single stream = %v, want %v (4× NIC rate)", arrived, want)
	}
}

// The config knob round-trips through the JSON schema.
func TestAggregateConfigRoundTrip(t *testing.T) {
	p := Cori(2)
	p.Aggregate = true
	cfg := p.Config()
	q, err := cfg.Platform()
	if err != nil {
		t.Fatal(err)
	}
	if !q.Aggregate {
		t.Fatal("Aggregate lost in config round-trip")
	}
}
