// Package trace captures per-rank communication events from the
// simulated runtime and renders summaries and text timelines — the
// debugging lens for questions like "which lane stalls the pipeline" or
// "how much do the levels of the topology-aware tree actually overlap"
// (paper §3.2.2).
package trace

import (
	"fmt"
	"io"
	"sort"
	"time"

	"adapt/internal/comm"
)

// Kind classifies a traced event.
type Kind uint8

const (
	// SendPost: a non-blocking send was posted.
	SendPost Kind = iota
	// SendDone: a send completed (buffer reusable).
	SendDone
	// RecvPost: a non-blocking receive was posted.
	RecvPost
	// RecvDone: a receive completed (payload delivered).
	RecvDone
	// Compute: blocking local work was charged (At..At+Dur).
	Compute
)

func (k Kind) String() string {
	switch k {
	case SendPost:
		return "send-post"
	case SendDone:
		return "send-done"
	case RecvPost:
		return "recv-post"
	case RecvDone:
		return "recv-done"
	case Compute:
		return "compute"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Record is one traced event.
type Record struct {
	At   time.Duration
	Dur  time.Duration // Compute only
	Rank int
	Kind Kind
	Peer int // counterpart rank; -1 for Compute
	Tag  comm.Tag
	Size int
}

// Buffer accumulates events. It is single-writer by construction (the
// simulator is single-threaded); Cap bounds memory for long runs (0 = no
// bound; when full, further events are dropped and counted).
type Buffer struct {
	Cap     int
	Records []Record
	Dropped int
}

// Add appends one event.
func (b *Buffer) Add(r Record) {
	if b.Cap > 0 && len(b.Records) >= b.Cap {
		b.Dropped++
		return
	}
	b.Records = append(b.Records, r)
}

// Rank filters the buffer down to one rank's events (in time order —
// the simulator emits them ordered).
func (b *Buffer) Rank(rank int) []Record {
	var out []Record
	for _, r := range b.Records {
		if r.Rank == rank {
			out = append(out, r)
		}
	}
	return out
}

// Summary aggregates the buffer.
type Summary struct {
	Events      int
	ByKind      map[Kind]int
	BytesSent   map[int]int // per rank, at SendPost
	ComputeTime map[int]time.Duration
	Span        time.Duration // last event time
}

// Summarize computes aggregate statistics.
func (b *Buffer) Summarize() Summary {
	s := Summary{
		ByKind:      map[Kind]int{},
		BytesSent:   map[int]int{},
		ComputeTime: map[int]time.Duration{},
	}
	for _, r := range b.Records {
		s.Events++
		s.ByKind[r.Kind]++
		if r.Kind == SendPost {
			s.BytesSent[r.Rank] += r.Size
		}
		if r.Kind == Compute {
			s.ComputeTime[r.Rank] += r.Dur
		}
		if end := r.At + r.Dur; end > s.Span {
			s.Span = end
		}
	}
	return s
}

// Fprint writes the summary as text.
func (s Summary) Fprint(w io.Writer) {
	fmt.Fprintf(w, "trace: %d events over %v\n", s.Events, s.Span.Round(time.Microsecond))
	kinds := make([]Kind, 0, len(s.ByKind))
	for k := range s.ByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-10s %d\n", k, s.ByKind[k])
	}
}

// Timeline renders a per-rank activity strip: the time axis is split
// into `cols` buckets; each cell shows the dominant activity in that
// bucket — 'S' send completions, 'R' receive completions, 'C' compute,
// '·' idle. A quick visual answer to "do the lanes overlap?".
func (b *Buffer) Timeline(w io.Writer, ranks []int, cols int) {
	if cols <= 0 || len(b.Records) == 0 {
		return
	}
	span := b.Summarize().Span
	if span == 0 {
		return
	}
	bucket := func(at time.Duration) int {
		i := int(int64(at) * int64(cols) / int64(span))
		if i >= cols {
			i = cols - 1
		}
		return i
	}
	for _, rank := range ranks {
		cells := make([]byte, cols)
		for i := range cells {
			cells[i] = '.'
		}
		score := make([]int, cols) // precedence: compute < recv < send
		for _, r := range b.Records {
			if r.Rank != rank {
				continue
			}
			var ch byte
			var pr int
			switch r.Kind {
			case Compute:
				ch, pr = 'C', 1
			case RecvDone:
				ch, pr = 'R', 2
			case SendDone:
				ch, pr = 'S', 3
			default:
				continue
			}
			lo := bucket(r.At)
			hi := lo
			if r.Dur > 0 {
				hi = bucket(r.At + r.Dur)
			}
			for i := lo; i <= hi && i < cols; i++ {
				if pr > score[i] {
					score[i] = pr
					cells[i] = ch
				}
			}
		}
		fmt.Fprintf(w, "rank %4d |%s|\n", rank, cells)
	}
}
