// Package trace captures per-rank communication events from both
// substrates and renders summaries, text timelines, and causal traces —
// the debugging lens for questions like "which lane stalls the pipeline"
// or "how much do the levels of the topology-aware tree actually
// overlap" (paper §3.2.2).
//
// Beyond flat per-rank event lists, every record carries span identity
// (the collective op and segment ride in the tag, the reliable-
// transmission id in Xid) and two causal edges:
//
//   - Parent: the same-rank predecessor — a completion links back to the
//     operation it completes, and an operation posted inside a completion
//     callback links back to the completion that posted it (the paper's
//     event-driven chain: callback → posted op).
//   - Link: the cross-rank data edge — a receive completion links to the
//     send-post whose payload it matched.
//
// Together these edges reconstruct the data-dependency DAG that §2 argues
// is all that remains once synchronization is gone; internal/trace/analyze
// computes critical paths and overlap ratios over it, and chrome.go
// exports it as Perfetto-loadable Chrome trace-event JSON.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"adapt/internal/comm"
)

// Kind classifies a traced event.
type Kind uint8

const (
	// SendPost: a non-blocking send was posted.
	SendPost Kind = iota
	// SendDone: a send completed (buffer reusable).
	SendDone
	// RecvPost: a non-blocking receive was posted.
	RecvPost
	// RecvDone: a receive completed (payload delivered).
	RecvDone
	// Compute: blocking local work was charged (At..At+Dur).
	Compute
	// CollStart: a collective state machine was entered on this rank
	// (Peer = root, Tag carries the collective kind and sequence).
	CollStart
	// CollEnd: the rank's share of the collective completed (Link = the
	// matching CollStart).
	CollEnd
	// Redrive: an FT orphan sent a re-drive request to its new parent
	// (Peer = the new parent).
	Redrive
	// Epoch: the FT reduce restarted its fold as a new epoch (Size = the
	// epoch number).
	Epoch
	// Crash: this rank halted (fail-stop).
	Crash
	// Suspect: the failure detector's suspicion lease expired for Peer.
	Suspect
	// Confirm: the failure detector confirmed Peer dead.
	Confirm
	// Repair: the spanning tree was healed around Peer's death.
	Repair
	// FaultDrop: fault injection lost one message copy in flight.
	FaultDrop
	// FaultRetry: the reliable transport retransmitted.
	FaultRetry
	// FaultTimeout: an operation failed after exhausting its attempts.
	FaultTimeout
)

func (k Kind) String() string {
	switch k {
	case SendPost:
		return "send-post"
	case SendDone:
		return "send-done"
	case RecvPost:
		return "recv-post"
	case RecvDone:
		return "recv-done"
	case Compute:
		return "compute"
	case CollStart:
		return "coll-start"
	case CollEnd:
		return "coll-end"
	case Redrive:
		return "redrive"
	case Epoch:
		return "epoch"
	case Crash:
		return "crash"
	case Suspect:
		return "suspect"
	case Confirm:
		return "confirm"
	case Repair:
		return "repair"
	case FaultDrop:
		return "drop"
	case FaultRetry:
		return "retry"
	case FaultTimeout:
		return "timeout"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Record is one traced event. ID/Parent/Link are buffer-local record ids
// (1-based; 0 = none): Parent is the same-rank causal predecessor, Link
// the cross-event edge (a completion's post, a matched receive's
// send-post, a CollEnd's CollStart).
type Record struct {
	ID     uint64
	Parent uint64
	Link   uint64
	At     time.Duration
	Dur    time.Duration // Compute only
	Rank   int
	Kind   Kind
	Peer   int // counterpart rank; -1 when not applicable
	Tag    comm.Tag
	Size   int
	Xid    uint64 // reliable-transmission id (fault paths; 0 otherwise)
}

// End is the record's completion time (At except for Compute spans).
func (r Record) End() time.Duration { return r.At + r.Dur }

// Buffer accumulates events. Add is safe for concurrent writers (the
// live runtime completes requests from peer goroutines); the simulator
// is single-threaded, so its appends are uncontended and keep kernel
// dispatch order. Cap bounds memory for long runs (0 = no bound; when
// full, further events are dropped and counted).
type Buffer struct {
	Cap     int
	Records []Record
	Dropped int

	mu sync.Mutex
}

// Add assigns the record its id, appends it, and returns the id (0 when
// the record was dropped because the buffer is at Cap). Caller-set ID
// values are overwritten.
func (b *Buffer) Add(r Record) uint64 {
	b.mu.Lock()
	if b.Cap > 0 && len(b.Records) >= b.Cap {
		b.Dropped++
		b.mu.Unlock()
		return 0
	}
	r.ID = uint64(len(b.Records)) + 1
	b.Records = append(b.Records, r)
	b.mu.Unlock()
	return r.ID
}

// Len returns the number of retained records.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.Records)
}

// DroppedCount returns how many records were dropped at Cap.
func (b *Buffer) DroppedCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.Dropped
}

// Rank filters the buffer down to one rank's events (in append order —
// the simulator emits them in dispatch order).
func (b *Buffer) Rank(rank int) []Record {
	var out []Record
	for _, r := range b.Records {
		if r.Rank == rank {
			out = append(out, r)
		}
	}
	return out
}

// Run is an immutable snapshot of one traced execution, the unit the
// Chrome exporter and the analyzer consume.
type Run struct {
	Name    string
	Records []Record
	Dropped int
}

// Snapshot copies the buffer out as a named run.
func (b *Buffer) Snapshot(name string) Run {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Run{
		Name:    name,
		Records: append([]Record(nil), b.Records...),
		Dropped: b.Dropped,
	}
}

// Summary aggregates the buffer.
type Summary struct {
	Events      int
	Dropped     int // records lost at Cap — the summary under-counts by this
	ByKind      map[Kind]int
	BytesSent   map[int]int // per rank, at SendPost
	ComputeTime map[int]time.Duration
	Span        time.Duration // last event time
}

// Summarize computes aggregate statistics.
func (b *Buffer) Summarize() Summary {
	s := Summary{
		Dropped:     b.Dropped,
		ByKind:      map[Kind]int{},
		BytesSent:   map[int]int{},
		ComputeTime: map[int]time.Duration{},
	}
	for _, r := range b.Records {
		s.Events++
		s.ByKind[r.Kind]++
		if r.Kind == SendPost {
			s.BytesSent[r.Rank] += r.Size
		}
		if r.Kind == Compute {
			s.ComputeTime[r.Rank] += r.Dur
		}
		if end := r.End(); end > s.Span {
			s.Span = end
		}
	}
	return s
}

// Fprint writes the summary as text.
func (s Summary) Fprint(w io.Writer) {
	fmt.Fprintf(w, "trace: %d events over %v\n", s.Events, s.Span.Round(time.Microsecond))
	if s.Dropped > 0 {
		fmt.Fprintf(w, "  DROPPED %d events at the buffer cap — totals below under-count\n", s.Dropped)
	}
	kinds := make([]Kind, 0, len(s.ByKind))
	for k := range s.ByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-10s %d\n", k, s.ByKind[k])
	}
}

// Timeline renders a per-rank activity strip: the time axis is split
// into `cols` buckets; each cell shows the dominant activity in that
// bucket — 'S' send completions, 'R' receive completions, 'C' compute,
// '·' idle. A quick visual answer to "do the lanes overlap?".
func (b *Buffer) Timeline(w io.Writer, ranks []int, cols int) {
	if cols <= 0 || len(b.Records) == 0 {
		return
	}
	span := b.Summarize().Span
	if span == 0 {
		return
	}
	bucket := func(at time.Duration) int {
		i := int(int64(at) * int64(cols) / int64(span))
		if i >= cols {
			i = cols - 1
		}
		return i
	}
	for _, rank := range ranks {
		cells := make([]byte, cols)
		for i := range cells {
			cells[i] = '.'
		}
		score := make([]int, cols) // precedence: compute < recv < send
		for _, r := range b.Records {
			if r.Rank != rank {
				continue
			}
			var ch byte
			var pr int
			switch r.Kind {
			case Compute:
				ch, pr = 'C', 1
			case RecvDone:
				ch, pr = 'R', 2
			case SendDone:
				ch, pr = 'S', 3
			default:
				continue
			}
			lo := bucket(r.At)
			hi := lo
			if r.Dur > 0 {
				hi = bucket(r.At + r.Dur)
			}
			for i := lo; i <= hi && i < cols; i++ {
				if pr > score[i] {
					score[i] = pr
					cells[i] = ch
				}
			}
		}
		fmt.Fprintf(w, "rank %4d |%s|\n", rank, cells)
	}
}
