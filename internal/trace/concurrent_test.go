package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// The live runtime completes requests from peer ranks' goroutines, so the
// buffer must take concurrent Adds without losing records or ids (run
// under -race by `make race` / `make trace`).
func TestBufferConcurrentWriters(t *testing.T) {
	const writers = 8
	const perWriter = 500
	b := &Buffer{}
	var wg sync.WaitGroup
	ids := make([][]uint64, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := b.Add(Record{At: time.Duration(i), Rank: w, Kind: SendPost, Peer: -1})
				ids[w] = append(ids[w], id)
			}
		}(w)
	}
	wg.Wait()
	if got := b.Len(); got != writers*perWriter {
		t.Fatalf("lost records: %d, want %d", got, writers*perWriter)
	}
	if b.DroppedCount() != 0 {
		t.Fatalf("unexpected drops: %d", b.DroppedCount())
	}
	// Every id unique, 1..N, and matching the record stored at that slot.
	seen := make(map[uint64]bool)
	for w := range ids {
		for _, id := range ids[w] {
			if id == 0 || seen[id] {
				t.Fatalf("id %d duplicated or zero", id)
			}
			seen[id] = true
		}
	}
	for i, r := range b.Records {
		if r.ID != uint64(i)+1 {
			t.Fatalf("record %d has id %d", i, r.ID)
		}
	}
}

// Concurrent writers racing past Cap: retained + dropped must account for
// every Add, and only dropped Adds may return id 0.
func TestBufferConcurrentCapDrops(t *testing.T) {
	const writers = 8
	const perWriter = 300
	const cap = 1000
	b := &Buffer{Cap: cap}
	var wg sync.WaitGroup
	zero := make([]int, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if b.Add(Record{Rank: w, Kind: RecvPost, Peer: -1}) == 0 {
					zero[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := writers * perWriter
	if b.Len() != cap {
		t.Fatalf("retained %d, want cap %d", b.Len(), cap)
	}
	if got := b.DroppedCount(); got != total-cap {
		t.Fatalf("dropped %d, want %d", got, total-cap)
	}
	var zeros int
	for _, z := range zero {
		zeros += z
	}
	if zeros != total-cap {
		t.Fatalf("%d zero ids, want %d (one per drop)", zeros, total-cap)
	}
	// Drop reporting surfaces in the summary text.
	s := b.Summarize()
	if s.Dropped != total-cap {
		t.Fatalf("summary.Dropped = %d, want %d", s.Dropped, total-cap)
	}
	var out bytes.Buffer
	s.Fprint(&out)
	if !strings.Contains(out.String(), "DROPPED") {
		t.Fatalf("summary print must report drops:\n%s", out.String())
	}
	// No-drop summaries stay quiet.
	out.Reset()
	(&Buffer{}).Summarize().Fprint(&out)
	if strings.Contains(out.String(), "DROPPED") {
		t.Fatalf("clean summary should not mention drops:\n%s", out.String())
	}
}

func TestSnapshotIsolation(t *testing.T) {
	b := &Buffer{}
	b.Add(Record{Rank: 0, Kind: SendPost, Peer: 1})
	snap := b.Snapshot("run-a")
	b.Add(Record{Rank: 1, Kind: RecvPost, Peer: 0})
	if len(snap.Records) != 1 || snap.Name != "run-a" {
		t.Fatalf("snapshot not isolated: %+v", snap)
	}
	if b.Len() != 2 {
		t.Fatalf("buffer len %d", b.Len())
	}
}
