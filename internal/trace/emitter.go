package trace

// Emitter is implemented by communicators that can record causal trace
// events (both substrates' Comm types). Emit returns the assigned record
// id, or 0 when tracing is off or the record was dropped — callers thread
// the id into later records' Parent/Link fields, and 0 degrades cleanly
// to "no edge".
type Emitter interface {
	TraceEmit(r Record) uint64
}

// Emit records through c if it traces, else no-op. This keeps the
// collectives in internal/core substrate-agnostic: they hold a comm.Comm
// and probe for the optional tracing capability here.
func Emit(c any, r Record) uint64 {
	if e, ok := c.(Emitter); ok {
		return e.TraceEmit(r)
	}
	return 0
}

// CauseSetter is the optional second half of the tracing capability: a
// communicator that tracks a per-rank causal context (the record every
// subsequently posted operation gets as its Parent).
type CauseSetter interface {
	TraceSetCause(id uint64) (prev uint64)
}

// SetCause installs id as c's causal context and returns the previous
// context (0 when c does not trace). Callers restore the previous value
// when their causal scope ends:
//
//	prev := trace.SetCause(c, startID)
//	... post the initial operation wave ...
//	trace.SetCause(c, prev)
func SetCause(c any, id uint64) uint64 {
	if s, ok := c.(CauseSetter); ok {
		return s.TraceSetCause(id)
	}
	return 0
}
