package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"adapt/internal/comm"
)

func sampleRun(name string) Run {
	tag := comm.MakeTag(comm.KindBcast, 3, 2)
	us := func(n int) time.Duration { return time.Duration(n) * time.Microsecond }
	return Run{
		Name:    name,
		Dropped: 1,
		Records: []Record{
			{ID: 1, At: us(0), Rank: 0, Kind: CollStart, Peer: 0, Tag: comm.MakeTag(comm.KindBcast, 3, 0), Size: 1024},
			{ID: 2, Parent: 1, At: us(1), Rank: 0, Kind: SendPost, Peer: 1, Tag: tag, Size: 512},
			{ID: 3, At: us(1), Rank: 1, Kind: RecvPost, Peer: 0, Tag: tag, Size: 512},
			{ID: 4, Parent: 2, At: us(9), Rank: 0, Kind: SendDone, Peer: 1, Tag: tag, Size: 512},
			{ID: 5, Parent: 3, Link: 2, At: us(10), Rank: 1, Kind: RecvDone, Peer: 0, Tag: tag, Size: 512},
			{ID: 6, Parent: 5, At: us(10), Dur: us(4), Rank: 1, Kind: Compute, Peer: -1, Size: 512},
			{ID: 7, Parent: 6, At: us(14), Rank: 1, Kind: FaultRetry, Peer: 0, Tag: tag, Xid: 77},
			{ID: 8, Parent: 6, Link: 1, At: us(15), Rank: 0, Kind: CollEnd, Peer: 0, Tag: comm.MakeTag(comm.KindBcast, 3, 0), Size: 1024},
		},
	}
}

func TestChromeRoundTrip(t *testing.T) {
	runs := []Run{sampleRun("alpha"), sampleRun("beta")}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, runs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChrome(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("%d runs back, want 2", len(got))
	}
	for i := range runs {
		if got[i].Name != runs[i].Name || got[i].Dropped != runs[i].Dropped {
			t.Fatalf("run %d meta mismatch: %+v", i, got[i])
		}
		if len(got[i].Records) != len(runs[i].Records) {
			t.Fatalf("run %d: %d records, want %d", i, len(got[i].Records), len(runs[i].Records))
		}
		for j := range runs[i].Records {
			if got[i].Records[j] != runs[i].Records[j] {
				t.Fatalf("run %d record %d: %+v != %+v", i, j, got[i].Records[j], runs[i].Records[j])
			}
		}
	}
}

// The file must be valid JSON with the structure Perfetto expects:
// a traceEvents array of objects each carrying a legal "ph".
func TestChromeWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, []Run{sampleRun("r")}); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	events, ok := doc["traceEvents"].([]any)
	if !ok || len(events) == 0 {
		t.Fatalf("traceEvents missing or empty")
	}
	legal := map[string]bool{"X": true, "i": true, "s": true, "f": true, "M": true}
	phases := map[string]int{}
	for _, e := range events {
		obj, ok := e.(map[string]any)
		if !ok {
			t.Fatalf("event not an object: %v", e)
		}
		ph, _ := obj["ph"].(string)
		if !legal[ph] {
			t.Fatalf("illegal phase %q in %v", ph, obj)
		}
		phases[ph]++
		if _, ok := obj["pid"].(float64); !ok {
			t.Fatalf("event missing pid: %v", obj)
		}
	}
	// The sample has paired spans, a matched recv (flow pair), a fault
	// instant, and per-run metadata.
	if phases["X"] < 3 || phases["s"] != 1 || phases["f"] != 1 || phases["i"] < 1 || phases["M"] < 2 {
		t.Fatalf("phase census wrong: %v", phases)
	}
}

// Byte-identical output for identical input — the determinism gates diff
// trace files directly.
func TestChromeDeterministicBytes(t *testing.T) {
	var a, b bytes.Buffer
	runs := []Run{sampleRun("alpha")}
	if err := WriteChrome(&a, runs); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b, runs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two writes of the same runs differ")
	}
}

func TestReadChromeRejectsForeignJSON(t *testing.T) {
	if _, err := ReadChrome(strings.NewReader(`{"traceEvents":[]}`)); err == nil {
		t.Fatal("want error for a file without adaptRuns")
	}
	if _, err := ReadChrome(strings.NewReader(`{"adaptRuns":[{"name":"x","records":[[1,2]]}]}`)); err == nil {
		t.Fatal("want error for short record tuples")
	}
	if _, err := ReadChrome(strings.NewReader(`not json`)); err == nil {
		t.Fatal("want error for garbage")
	}
}
