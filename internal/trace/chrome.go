package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"adapt/internal/comm"
)

// Chrome trace-event export (the "JSON Array Format" with a top-level
// object), loadable in Perfetto / chrome://tracing:
//
//   - one process per run (pid = run index + 1), one thread per rank,
//   - paired post/done records become "X" complete slices,
//   - matched receives become "s"/"f" flow arrows send→recv,
//   - everything unpaired (faults, crashes, detector verdicts, redrives,
//     epochs, orphan posts) becomes an "i" instant,
//   - ts/dur are microseconds with nanosecond precision (fixed 3 decimals).
//
// The writer is hand-rolled and append-ordered, so a given []Run always
// produces byte-identical output — the determinism gates diff these files
// directly. A top-level "adaptRuns" key (ignored by Perfetto) carries the
// raw records as integer tuples so adapttrace can reload a file without
// loss; ReadChrome is its inverse.

// RecordFields is the arity of one encoded record tuple in "adaptRuns".
const RecordFields = 11

// WriteChrome writes the runs as one Chrome trace-event JSON document.
func WriteChrome(w io.Writer, runs []Run) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	bw.WriteString("{\n\"traceEvents\": [\n")
	first := true
	ev := func(s string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(s)
	}
	for i, run := range runs {
		pid := i + 1
		ev(fmt.Sprintf(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":%s}}`,
			pid, strconv.Quote(run.Name)))
		for _, rank := range runRanks(run) {
			ev(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"rank %d"}}`,
				pid, rank, rank))
		}
		emitRunEvents(ev, pid, run)
	}
	bw.WriteString("\n],\n\"displayTimeUnit\": \"ns\",\n\"adaptRuns\": [\n")
	for i, run := range runs {
		if i > 0 {
			bw.WriteString(",\n")
		}
		fmt.Fprintf(bw, "{\"name\":%s,\"dropped\":%d,\"records\":[", strconv.Quote(run.Name), run.Dropped)
		for j, r := range run.Records {
			if j > 0 {
				bw.WriteByte(',')
			}
			fmt.Fprintf(bw, "[%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d]",
				r.ID, r.Parent, r.Link, int64(r.At), int64(r.Dur),
				r.Rank, r.Kind, r.Peer, int64(r.Tag), r.Size, r.Xid)
		}
		bw.WriteString("]}")
	}
	bw.WriteString("\n]\n}\n")
	return bw.Flush()
}

func runRanks(run Run) []int {
	seen := map[int]bool{}
	var ranks []int
	for _, r := range run.Records {
		if !seen[r.Rank] {
			seen[r.Rank] = true
			ranks = append(ranks, r.Rank)
		}
	}
	sort.Ints(ranks)
	return ranks
}

// usec renders a nanosecond duration as fixed-point microseconds. The
// fixed 3-decimal form keeps output byte-stable and gives Perfetto full
// nanosecond resolution.
func usec(d time.Duration) string {
	ns := int64(d)
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

func spanName(post Record) string {
	switch post.Kind {
	case SendPost:
		return fmt.Sprintf("send %s → %d", post.Tag, post.Peer)
	case RecvPost:
		return fmt.Sprintf("recv %s ← %d", post.Tag, post.Peer)
	case CollStart:
		return fmt.Sprintf("%s/%d root=%d", post.Tag.Kind(), post.Tag.Seq(), post.Peer)
	case Compute:
		return "compute"
	}
	return post.Kind.String()
}

func instantName(r Record) string {
	switch r.Kind {
	case Epoch:
		return fmt.Sprintf("epoch %d %s", r.Size, r.Tag.Kind())
	case Redrive, Suspect, Confirm, Repair:
		return fmt.Sprintf("%s peer=%d", r.Kind, r.Peer)
	case FaultDrop, FaultRetry, FaultTimeout:
		return fmt.Sprintf("%s %s xid=%d", r.Kind, r.Tag, r.Xid)
	}
	return r.Kind.String()
}

// emitRunEvents renders one run. Pairing: a completion record points at
// its post via Parent (SendDone→SendPost, RecvDone→RecvPost) or Link
// (CollEnd→CollStart); the pair renders as one slice spanning post→done.
func emitRunEvents(ev func(string), pid int, run Run) {
	byID := make(map[uint64]Record, len(run.Records))
	doneOf := make(map[uint64]Record) // post id → completion record
	for _, r := range run.Records {
		byID[r.ID] = r
		switch r.Kind {
		case SendDone, RecvDone:
			if r.Parent != 0 {
				doneOf[r.Parent] = r
			}
		case CollEnd:
			if r.Link != 0 {
				doneOf[r.Link] = r
			}
		}
	}
	for _, r := range run.Records {
		switch r.Kind {
		case SendPost, RecvPost, CollStart:
			if done, ok := doneOf[r.ID]; ok {
				ev(fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"name":%s,"args":{"id":%d,"size":%d}}`,
					pid, r.Rank, usec(r.At), usec(done.At-r.At), strconv.Quote(spanName(r)), r.ID, r.Size))
			} else {
				ev(fmt.Sprintf(`{"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%s,"name":%s,"args":{"id":%d}}`,
					pid, r.Rank, usec(r.At), strconv.Quote("unfinished "+spanName(r)), r.ID))
			}
		case Compute:
			ev(fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"name":"compute","args":{"id":%d,"size":%d}}`,
				pid, r.Rank, usec(r.At), usec(r.Dur), r.ID, r.Size))
		case SendDone, CollEnd:
			// rendered as part of the paired slice
		case RecvDone:
			// Flow arrow from the matched send's slice to the recv slice.
			if sp, ok := byID[r.Link]; ok && sp.Kind == SendPost {
				ev(fmt.Sprintf(`{"ph":"s","cat":"msg","id":%d,"pid":%d,"tid":%d,"ts":%s,"name":%s}`,
					r.ID, pid, sp.Rank, usec(sp.At), strconv.Quote(sp.Tag.String())))
				ev(fmt.Sprintf(`{"ph":"f","bp":"e","cat":"msg","id":%d,"pid":%d,"tid":%d,"ts":%s,"name":%s}`,
					r.ID, pid, r.Rank, usec(r.At), strconv.Quote(sp.Tag.String())))
			}
		default:
			ev(fmt.Sprintf(`{"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%s,"name":%s,"args":{"id":%d}}`,
				pid, r.Rank, usec(r.At), strconv.Quote(instantName(r)), r.ID))
		}
	}
}

// chromeDoc mirrors only the sections ReadChrome needs.
type chromeDoc struct {
	AdaptRuns []chromeRun `json:"adaptRuns"`
}

type chromeRun struct {
	Name    string    `json:"name"`
	Dropped int       `json:"dropped"`
	Records [][]int64 `json:"records"`
}

// ReadChrome reloads runs from a file written by WriteChrome via its
// lossless "adaptRuns" section.
func ReadChrome(r io.Reader) ([]Run, error) {
	var doc chromeDoc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("trace: parse chrome file: %w", err)
	}
	if doc.AdaptRuns == nil {
		return nil, fmt.Errorf("trace: no adaptRuns section (not written by this tool?)")
	}
	runs := make([]Run, 0, len(doc.AdaptRuns))
	for _, cr := range doc.AdaptRuns {
		run := Run{Name: cr.Name, Dropped: cr.Dropped}
		run.Records = make([]Record, 0, len(cr.Records))
		for i, t := range cr.Records {
			if len(t) != RecordFields {
				return nil, fmt.Errorf("trace: run %q record %d has %d fields, want %d", cr.Name, i, len(t), RecordFields)
			}
			run.Records = append(run.Records, Record{
				ID:     uint64(t[0]),
				Parent: uint64(t[1]),
				Link:   uint64(t[2]),
				At:     time.Duration(t[3]),
				Dur:    time.Duration(t[4]),
				Rank:   int(t[5]),
				Kind:   Kind(t[6]),
				Peer:   int(t[7]),
				Tag:    comm.Tag(t[8]),
				Size:   int(t[9]),
				Xid:    uint64(t[10]),
			})
		}
		runs = append(runs, run)
	}
	return runs, nil
}
