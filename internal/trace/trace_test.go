package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func rec(at int, rank int, k Kind, size int) Record {
	return Record{At: time.Duration(at) * time.Microsecond, Rank: rank, Kind: k, Size: size}
}

func TestBufferCapAndDrops(t *testing.T) {
	b := &Buffer{Cap: 2}
	b.Add(rec(1, 0, SendPost, 10))
	b.Add(rec(2, 0, SendDone, 10))
	b.Add(rec(3, 0, RecvPost, 0))
	if len(b.Records) != 2 || b.Dropped != 1 {
		t.Fatalf("cap not enforced: %d records, %d dropped", len(b.Records), b.Dropped)
	}
}

func TestSummarize(t *testing.T) {
	b := &Buffer{}
	b.Add(rec(1, 0, SendPost, 100))
	b.Add(rec(2, 0, SendDone, 100))
	b.Add(rec(3, 1, RecvDone, 100))
	b.Add(Record{At: 4 * time.Microsecond, Rank: 1, Kind: Compute, Dur: 6 * time.Microsecond, Peer: -1})
	s := b.Summarize()
	if s.Events != 4 || s.ByKind[SendPost] != 1 || s.BytesSent[0] != 100 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if s.ComputeTime[1] != 6*time.Microsecond {
		t.Fatalf("compute time %v", s.ComputeTime[1])
	}
	if s.Span != 10*time.Microsecond {
		t.Fatalf("span %v, want 10µs (compute end)", s.Span)
	}
	var buf bytes.Buffer
	s.Fprint(&buf)
	if !strings.Contains(buf.String(), "send-post") {
		t.Fatalf("summary print missing kinds:\n%s", buf.String())
	}
}

func TestRankFilter(t *testing.T) {
	b := &Buffer{}
	for r := 0; r < 3; r++ {
		for i := 0; i < r+1; i++ {
			b.Add(rec(i, r, SendDone, 1))
		}
	}
	if got := len(b.Rank(2)); got != 3 {
		t.Fatalf("rank 2 has %d records, want 3", got)
	}
	if got := len(b.Rank(9)); got != 0 {
		t.Fatalf("rank 9 has %d records, want 0", got)
	}
}

func TestTimelineRendering(t *testing.T) {
	b := &Buffer{}
	b.Add(rec(0, 0, SendDone, 1))
	b.Add(rec(99, 0, RecvDone, 1))
	b.Add(Record{At: 50 * time.Microsecond, Rank: 1, Kind: Compute, Dur: 49 * time.Microsecond, Peer: -1})
	var buf bytes.Buffer
	b.Timeline(&buf, []int{0, 1}, 10)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("timeline lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "rank    0 |S") {
		t.Fatalf("rank 0 strip should start with a send: %q", lines[0])
	}
	if !strings.Contains(lines[0], "R|") {
		t.Fatalf("rank 0 strip should end with a recv: %q", lines[0])
	}
	if !strings.Contains(lines[1], "C") {
		t.Fatalf("rank 1 strip should show compute: %q", lines[1])
	}
	// Empty/degenerate calls must not panic.
	(&Buffer{}).Timeline(&buf, []int{0}, 10)
	b.Timeline(&buf, nil, 0)
}
