package analyze_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"adapt/internal/comm"
	"adapt/internal/core"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
	"adapt/internal/sim"
	"adapt/internal/simmpi"
	"adapt/internal/trace"
	"adapt/internal/trace/analyze"
	"adapt/internal/trees"
)

// handRun builds a two-rank, one-transfer causal chain:
//
//	rank 0: CollStart(1) → SendPost(2) → SendDone(4)
//	rank 1: RecvPost(3) → RecvDone(5, Link=2) → Compute(6) → CollEnd(7)
func handRun() trace.Run {
	tag := comm.MakeTag(comm.KindBcast, 0, 0)
	ms := time.Millisecond
	return trace.Run{
		Name: "hand",
		Records: []trace.Record{
			{ID: 1, Kind: trace.CollStart, Rank: 0, At: 0, Peer: 0, Tag: tag, Size: 64},
			{ID: 2, Kind: trace.SendPost, Rank: 0, At: 0, Parent: 1, Peer: 1, Tag: tag, Size: 64},
			{ID: 3, Kind: trace.RecvPost, Rank: 1, At: 0, Peer: 0, Tag: tag},
			{ID: 4, Kind: trace.SendDone, Rank: 0, At: 10 * ms, Parent: 2, Peer: 1, Tag: tag, Size: 64},
			{ID: 5, Kind: trace.RecvDone, Rank: 1, At: 12 * ms, Parent: 3, Link: 2, Peer: 0, Tag: tag, Size: 64},
			{ID: 6, Kind: trace.Compute, Rank: 1, At: 12 * ms, Dur: 3 * ms, Parent: 5, Peer: -1, Size: 64},
			{ID: 7, Kind: trace.CollEnd, Rank: 1, At: 15 * ms, Parent: 6, Link: 1, Peer: 0, Tag: tag, Size: 64},
		},
	}
}

func TestCriticalPathHandGraph(t *testing.T) {
	g := analyze.New(handRun())
	ms := time.Millisecond
	if got := g.Makespan(); got != 15*ms {
		t.Fatalf("makespan = %v, want 15ms", got)
	}
	p := g.CriticalPath()
	if p.End() != p.Makespan {
		t.Fatalf("path end %v != makespan %v", p.End(), p.Makespan)
	}
	// Makespan ties (Compute id 6 and CollEnd id 7 both end at 15ms) go to
	// the lower id; the backward walk prefers the later-finishing
	// predecessor and, on ties, the cross-rank Link edge.
	var ids []uint64
	for _, st := range p.Steps {
		ids = append(ids, st.Rec.ID)
	}
	want := []uint64{1, 2, 5, 6}
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("path ids = %v, want %v", ids, want)
	}
	if p.Link != 12*ms || p.Compute != 3*ms || p.Stall != 0 {
		t.Fatalf("attribution link=%v compute=%v stall=%v, want 12ms/3ms/0",
			p.Link, p.Compute, p.Stall)
	}
	if p.Link+p.Compute+p.Stall != p.Makespan {
		t.Fatalf("attribution does not telescope to makespan")
	}
}

func TestOverlapByLevelHandGraph(t *testing.T) {
	tag := comm.MakeTag(comm.KindBcast, 0, 0)
	ms := time.Millisecond
	// Chain 0 → 1 → 2, rank 1's send starting halfway through rank 0's.
	run := trace.Run{Records: []trace.Record{
		{ID: 1, Kind: trace.SendPost, Rank: 0, At: 0, Peer: 1, Tag: tag},
		{ID: 2, Kind: trace.SendDone, Rank: 0, At: 10 * ms, Parent: 1, Peer: 1, Tag: tag},
		{ID: 3, Kind: trace.SendPost, Rank: 1, At: 5 * ms, Peer: 2, Tag: tag},
		{ID: 4, Kind: trace.SendDone, Rank: 1, At: 15 * ms, Parent: 3, Peer: 2, Tag: tag},
		{ID: 5, Kind: trace.RecvDone, Rank: 2, At: 15 * ms, Peer: 1, Tag: tag},
	}}
	levels := analyze.New(run).OverlapByLevel()
	if len(levels) != 3 {
		t.Fatalf("levels = %d, want 3", len(levels))
	}
	if !reflect.DeepEqual(levels[0].Ranks, []int{0}) || !reflect.DeepEqual(levels[1].Ranks, []int{1}) {
		t.Fatalf("level ranks = %v / %v", levels[0].Ranks, levels[1].Ranks)
	}
	if levels[0].Busy != 10*ms || levels[0].OverlapNext != 5*ms {
		t.Fatalf("level 0 busy=%v overlap=%v, want 10ms/5ms", levels[0].Busy, levels[0].OverlapNext)
	}
	if levels[0].Ratio != 0.5 {
		t.Fatalf("level 0 ratio = %v, want 0.5", levels[0].Ratio)
	}
}

func TestSegmentLanes(t *testing.T) {
	mk := func(seg int) comm.Tag { return comm.MakeTag(comm.KindBcast, 0, seg) }
	ms := time.Millisecond
	run := trace.Run{Records: []trace.Record{
		{ID: 1, Kind: trace.SendPost, Rank: 0, At: 0, Peer: 1, Tag: mk(1)},
		{ID: 2, Kind: trace.SendDone, Rank: 0, At: 4 * ms, Parent: 1, Peer: 1, Tag: mk(1)},
		{ID: 3, Kind: trace.SendPost, Rank: 0, At: 2 * ms, Peer: 1, Tag: mk(0)},
		{ID: 4, Kind: trace.SendDone, Rank: 0, At: 6 * ms, Parent: 3, Peer: 1, Tag: mk(0)},
	}}
	lanes := analyze.New(run).SegmentLanes()
	if len(lanes) != 2 || lanes[0].Seg != 0 || lanes[1].Seg != 1 {
		t.Fatalf("lanes = %+v, want segs [0 1]", lanes)
	}
	if lanes[0].Spans[0] != (analyze.Interval{Start: 2 * ms, End: 6 * ms}) {
		t.Fatalf("seg 0 span = %+v", lanes[0].Spans[0])
	}
}

// simBcast runs one traced broadcast on the simulator and returns the
// snapshot plus the kernel's makespan.
func simBcast(t *testing.T) (trace.Run, time.Duration) {
	t.Helper()
	k := sim.New()
	w := simmpi.NewWorld(k, netmodel.Cori(1), noise.None)
	w.Trace = &trace.Buffer{}
	n := w.Size()
	tree := trees.Binomial(n, 0)
	w.Spawn(func(c *simmpi.Comm) {
		opt := core.DefaultOptions()
		opt.SegSize = 64 << 10
		core.Bcast(c, tree, comm.Sized(256<<10), opt)
	})
	end, err := k.Run()
	if err != nil {
		t.Fatalf("deadlock: %v", err)
	}
	return w.Trace.Snapshot("bcast"), end
}

// The acceptance gate: the analyzer's critical path must end exactly at
// the simulation's makespan — the path it reconstructs from Parent/Link
// edges is the chain of events that determined the run's length.
func TestCriticalPathEndEqualsSimMakespan(t *testing.T) {
	run, end := simBcast(t)
	if len(run.Records) == 0 {
		t.Fatal("no trace records captured")
	}
	g := analyze.New(run)
	if got := g.Makespan(); got != end {
		t.Fatalf("trace makespan %v != kernel makespan %v", got, end)
	}
	p := g.CriticalPath()
	if p.End() != end {
		t.Fatalf("critical path ends at %v, want kernel makespan %v", p.End(), end)
	}
	if len(p.Steps) < 3 {
		t.Fatalf("critical path suspiciously short: %d steps", len(p.Steps))
	}
	if p.Link+p.Compute+p.Stall != p.Makespan {
		t.Fatalf("attribution %v+%v+%v does not telescope to %v",
			p.Link, p.Compute, p.Stall, p.Makespan)
	}
}

func TestSimBcastOverlapAndDeterminism(t *testing.T) {
	run1, _ := simBcast(t)
	run2, _ := simBcast(t)
	run2.Name = run1.Name
	if !reflect.DeepEqual(run1, run2) {
		t.Fatal("identical sim runs produced different traces")
	}

	g := analyze.New(run1)
	levels := g.OverlapByLevel()
	if len(levels) == 0 {
		t.Fatal("no tree levels recovered from broadcast flow graph")
	}
	if !reflect.DeepEqual(levels[0].Ranks, []int{0}) {
		t.Fatalf("level 0 = %v, want just the root", levels[0].Ranks)
	}
	maxRatio := 0.0
	for _, lv := range levels {
		if lv.Ratio > maxRatio {
			maxRatio = lv.Ratio
		}
		if lv.Ratio < 0 || lv.Ratio > 1+1e-9 {
			t.Fatalf("level %d ratio %v out of [0,1]", lv.Level, lv.Ratio)
		}
	}
	if maxRatio == 0 {
		t.Fatal("pipelined broadcast shows zero inter-level overlap")
	}
	if lanes := g.SegmentLanes(); len(lanes) != 4 {
		t.Fatalf("lanes = %d, want 4 (256KB / 64KB segments)", len(lanes))
	}
}

func TestReportSmoke(t *testing.T) {
	run, _ := simBcast(t)
	var buf bytes.Buffer
	analyze.New(run).Report(&buf)
	out := buf.String()
	for _, want := range []string{"critical path:", "attribution:", "level", "seg "} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
