// Package analyze reconstructs the data-dependency DAG from a captured
// trace run and answers the paper's performance questions over it: what
// chain of events determines the makespan (critical path, §2's claim
// that only data dependencies remain once synchronization is gone), how
// much of the wait is wire time versus compute versus pipeline stall,
// and how much the levels of a topology-aware tree actually overlap in
// time (§3.2.2).
//
// The graph's edges come straight from the Record fields: Parent is the
// same-rank causal predecessor (completion → its post, posted op → the
// completion callback that posted it) and Link is the cross-event data
// edge (matched receive → send-post, CollEnd → CollStart). Every
// computation here is deterministic: ties are broken by record id, and
// all iteration is over sorted slices, never map order.
package analyze

import (
	"sort"
	"time"

	"adapt/internal/trace"
)

// Graph is the dependency DAG of one traced run.
type Graph struct {
	Run  trace.Run
	byID map[uint64]int // record id → index into Run.Records
}

// New indexes a run for analysis.
func New(run trace.Run) *Graph {
	g := &Graph{Run: run, byID: make(map[uint64]int, len(run.Records))}
	for i, r := range run.Records {
		g.byID[r.ID] = i
	}
	return g
}

// lookup returns the record with the given id, if present. Dangling ids
// (edges into records dropped at the buffer cap) resolve to ok=false.
func (g *Graph) lookup(id uint64) (trace.Record, bool) {
	if id == 0 {
		return trace.Record{}, false
	}
	i, ok := g.byID[id]
	if !ok {
		return trace.Record{}, false
	}
	return g.Run.Records[i], true
}

// Makespan returns the latest event completion time in the run.
func (g *Graph) Makespan() time.Duration {
	_, end := g.last()
	return end
}

// last returns the record with the latest End (ties → lowest id) and
// that End. ok=false on an empty run is signalled by a zero record.
func (g *Graph) last() (trace.Record, time.Duration) {
	var best trace.Record
	var bestEnd time.Duration
	found := false
	for _, r := range g.Run.Records {
		end := r.End()
		if !found || end > bestEnd || (end == bestEnd && r.ID < best.ID) {
			best, bestEnd, found = r, end, true
		}
	}
	return best, bestEnd
}

// EdgeClass attributes one critical-path step's wait.
type EdgeClass uint8

const (
	// EdgeLink: wire time — the step is a transfer completion, so the
	// wait since its predecessor was spent in the network model (link
	// serialization, latency, a slow sender).
	EdgeLink EdgeClass = iota
	// EdgeCompute: local work (reduction arithmetic, copies, app code).
	EdgeCompute
	// EdgeStall: pipeline stall — the step is a post or control event
	// that sat waiting for its turn (window full, callback chain,
	// protocol round) rather than for bytes or flops.
	EdgeStall
)

func (e EdgeClass) String() string {
	switch e {
	case EdgeLink:
		return "link wait"
	case EdgeCompute:
		return "compute"
	case EdgeStall:
		return "pipeline stall"
	}
	return "?"
}

// Step is one node on the critical path.
type Step struct {
	Rec   trace.Record
	Class EdgeClass
	// Wait is this step's contribution to the makespan: End(Rec) minus
	// the predecessor's End (or minus zero for the first step), clamped
	// at 0. Along a well-formed trace the Waits telescope to Makespan.
	Wait time.Duration
}

// Path is the critical path: the causal chain ending at the run's last
// event, in chronological order.
type Path struct {
	Steps    []Step
	Makespan time.Duration
	// Attribution totals over Steps (Link+Compute+Stall == sum of Waits).
	Link    time.Duration
	Compute time.Duration
	Stall   time.Duration
}

// classOf attributes a step by what its record represents: transfer
// completions are wire time, compute spans are compute, everything else
// (posts, collective markers, FT control) is pipeline stall.
func classOf(r trace.Record) EdgeClass {
	switch r.Kind {
	case trace.SendDone, trace.RecvDone:
		return EdgeLink
	case trace.Compute:
		return EdgeCompute
	}
	return EdgeStall
}

// CriticalPath walks causal edges backwards from the latest event,
// always following the predecessor that finished later (ties: the data
// edge Link over the same-rank Parent, then the lower id), and
// attributes each hop's wait. The path's final End equals Makespan.
func (g *Graph) CriticalPath() Path {
	p := Path{}
	if len(g.Run.Records) == 0 {
		return p
	}
	cur, end := g.last()
	p.Makespan = end

	var rev []trace.Record
	seen := make(map[uint64]bool)
	for !seen[cur.ID] {
		seen[cur.ID] = true
		rev = append(rev, cur)
		parent, pok := g.lookup(cur.Parent)
		link, lok := g.lookup(cur.Link)
		switch {
		case pok && lok:
			// Prefer the later-finishing predecessor: that is the one the
			// current event actually waited for. Tie → the data edge.
			if parent.End() > link.End() {
				cur = parent
			} else {
				cur = link
			}
		case pok:
			cur = parent
		case lok:
			cur = link
		default:
			rev = append(rev, trace.Record{}) // sentinel: no predecessor
		}
		if rev[len(rev)-1].ID == 0 {
			rev = rev[:len(rev)-1]
			break
		}
	}

	prevEnd := time.Duration(0)
	p.Steps = make([]Step, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		r := rev[i]
		wait := r.End() - prevEnd
		if wait < 0 {
			wait = 0
		}
		st := Step{Rec: r, Class: classOf(r), Wait: wait}
		p.Steps = append(p.Steps, st)
		switch st.Class {
		case EdgeLink:
			p.Link += wait
		case EdgeCompute:
			p.Compute += wait
		case EdgeStall:
			p.Stall += wait
		}
		prevEnd = r.End()
	}
	return p
}

// End returns the completion time of the path's last step (equals
// Makespan for a path produced by CriticalPath).
func (p Path) End() time.Duration {
	if len(p.Steps) == 0 {
		return 0
	}
	return p.Steps[len(p.Steps)-1].Rec.End()
}

// ranksOf returns the sorted set of real ranks (≥ 0) in the run.
func (g *Graph) ranksOf() []int {
	set := map[int]bool{}
	for _, r := range g.Run.Records {
		if r.Rank >= 0 {
			set[r.Rank] = true
		}
	}
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}
