package analyze

import (
	"fmt"
	"io"
	"time"

	"adapt/internal/trace"
)

// pct renders a share of the makespan.
func pct(part, whole time.Duration) string {
	if whole <= 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(whole))
}

// stepLabel renders one critical-path record compactly.
func stepLabel(r trace.Record) string {
	switch r.Kind {
	case trace.SendPost, trace.SendDone:
		return fmt.Sprintf("%s %s → %d", r.Kind, r.Tag, r.Peer)
	case trace.RecvPost, trace.RecvDone:
		return fmt.Sprintf("%s %s ← %d", r.Kind, r.Tag, r.Peer)
	case trace.CollStart, trace.CollEnd:
		return fmt.Sprintf("%s %s root=%d", r.Kind, r.Tag, r.Peer)
	case trace.Compute:
		return fmt.Sprintf("compute %dB", r.Size)
	}
	return r.Kind.String()
}

// FprintPath writes the critical path: one line per step with its wait
// attribution, then the class totals. The last step's end time is the
// run's makespan.
func FprintPath(w io.Writer, p Path) {
	fmt.Fprintf(w, "critical path: %d steps, makespan %v\n",
		len(p.Steps), p.Makespan.Round(time.Nanosecond))
	const headTail = 15
	elide := len(p.Steps) > 2*headTail+5
	for i, st := range p.Steps {
		if elide && i == headTail {
			fmt.Fprintf(w, "  … %d steps elided …\n", len(p.Steps)-2*headTail)
		}
		if elide && i >= headTail && i < len(p.Steps)-headTail {
			continue
		}
		fmt.Fprintf(w, "  %9v  rank %-3d +%-9v %-14s %s\n",
			st.Rec.End().Round(time.Nanosecond), st.Rec.Rank,
			st.Wait.Round(time.Nanosecond), st.Class, stepLabel(st.Rec))
	}
	fmt.Fprintf(w, "attribution: link wait %v (%s), compute %v (%s), pipeline stall %v (%s)\n",
		p.Link.Round(time.Nanosecond), pct(p.Link, p.Makespan),
		p.Compute.Round(time.Nanosecond), pct(p.Compute, p.Makespan),
		p.Stall.Round(time.Nanosecond), pct(p.Stall, p.Makespan))
}

// FprintOverlap writes the per-level overlap table.
func FprintOverlap(w io.Writer, levels []LevelOverlap) {
	if len(levels) == 0 {
		fmt.Fprintln(w, "level overlap: no tree structure in the flow graph")
		return
	}
	fmt.Fprintln(w, "level  ranks  busy        overlap(next)  ratio")
	for _, lv := range levels {
		ratio := "-"
		over := "-"
		if lv.Level < len(levels)-1 {
			ratio = fmt.Sprintf("%.2f", lv.Ratio)
			over = lv.OverlapNext.Round(time.Nanosecond).String()
		}
		fmt.Fprintf(w, "%-6d %-6d %-11v %-14s %s\n",
			lv.Level, len(lv.Ranks), lv.Busy.Round(time.Nanosecond), over, ratio)
	}
}

// FprintLanes renders per-segment transfer activity as text strips:
// one row per pipeline segment, '#' where some copy of the segment is
// on the wire. Rows beyond maxLanes are elided.
func FprintLanes(w io.Writer, lanes []Lane, span time.Duration, cols, maxLanes int) {
	if len(lanes) == 0 || span <= 0 || cols <= 0 {
		fmt.Fprintln(w, "lanes: no segment transfers recorded")
		return
	}
	shown := lanes
	if maxLanes > 0 && len(shown) > maxLanes {
		shown = shown[:maxLanes]
	}
	bucket := func(at time.Duration) int {
		i := int(int64(at) * int64(cols) / int64(span))
		if i >= cols {
			i = cols - 1
		}
		return i
	}
	for _, ln := range shown {
		cells := make([]byte, cols)
		for i := range cells {
			cells[i] = '.'
		}
		for _, sp := range ln.Spans {
			for i := bucket(sp.Start); i <= bucket(sp.End-1) && i < cols; i++ {
				cells[i] = '#'
			}
		}
		fmt.Fprintf(w, "seg %4d |%s|\n", ln.Seg, cells)
	}
	if len(shown) < len(lanes) {
		fmt.Fprintf(w, "… %d more segments elided\n", len(lanes)-len(shown))
	}
}

// Report writes the compact all-in-one text report for a run: event
// census, critical path with attribution, level overlap, and segment
// lanes.
func (g *Graph) Report(w io.Writer) {
	fmt.Fprintf(w, "run %q: %d events", g.Run.Name, len(g.Run.Records))
	if g.Run.Dropped > 0 {
		fmt.Fprintf(w, " (+%d DROPPED at the buffer cap — analysis under-counts)", g.Run.Dropped)
	}
	fmt.Fprintln(w)
	p := g.CriticalPath()
	FprintPath(w, p)
	fmt.Fprintln(w)
	FprintOverlap(w, g.OverlapByLevel())
	fmt.Fprintln(w)
	FprintLanes(w, g.SegmentLanes(), p.Makespan, 64, 32)
}
