package analyze

import (
	"sort"
	"time"

	"adapt/internal/comm"
	"adapt/internal/trace"
)

// Interval is a half-open busy span [Start, End).
type Interval struct {
	Start, End time.Duration
}

// mergeIntervals sorts and unions overlapping intervals in place.
func mergeIntervals(iv []Interval) []Interval {
	if len(iv) == 0 {
		return iv
	}
	sort.Slice(iv, func(i, j int) bool {
		if iv[i].Start != iv[j].Start {
			return iv[i].Start < iv[j].Start
		}
		return iv[i].End < iv[j].End
	})
	out := iv[:1]
	for _, v := range iv[1:] {
		last := &out[len(out)-1]
		if v.Start <= last.End {
			if v.End > last.End {
				last.End = v.End
			}
			continue
		}
		out = append(out, v)
	}
	return out
}

// totalOf sums the lengths of merged intervals.
func totalOf(iv []Interval) time.Duration {
	var t time.Duration
	for _, v := range iv {
		t += v.End - v.Start
	}
	return t
}

// intersectTotal returns the total overlap between two merged interval
// sets (two-pointer sweep).
func intersectTotal(a, b []Interval) time.Duration {
	var t time.Duration
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := a[i].Start
		if b[j].Start > lo {
			lo = b[j].Start
		}
		hi := a[i].End
		if b[j].End < hi {
			hi = b[j].End
		}
		if hi > lo {
			t += hi - lo
		}
		if a[i].End < b[j].End {
			i++
		} else {
			j++
		}
	}
	return t
}

// dataKind reports whether a tag belongs to payload traffic of a
// collective (as opposed to rendezvous control, FT notifications, or
// raw point-to-point).
func dataKind(t comm.Tag) bool {
	switch t.Kind() {
	case comm.KindBcast, comm.KindReduce, comm.KindScatter, comm.KindGather,
		comm.KindAllgather, comm.KindAllreduce, comm.KindAlltoall:
		return true
	}
	return false
}

// sendSpan pairs a SendPost with its SendDone (SendDone.Parent = the
// post's id) and returns the transfer's in-flight interval.
func (g *Graph) sendSpans() map[uint64]Interval {
	spans := map[uint64]Interval{}
	for _, r := range g.Run.Records {
		if r.Kind != trace.SendDone {
			continue
		}
		if post, ok := g.lookup(r.Parent); ok && post.Kind == trace.SendPost {
			spans[post.ID] = Interval{Start: post.At, End: r.End()}
		}
	}
	return spans
}

// LevelOverlap describes one tree level's send activity and how much of
// it runs concurrently with the next level down — the §3.2.2 pipelining
// claim made measurable. Ratio is overlap ÷ the shorter of the two
// levels' busy times (1.0 = the faster level is fully hidden).
type LevelOverlap struct {
	Level       int
	Ranks       []int
	Busy        time.Duration // union of this level's send intervals
	OverlapNext time.Duration // intersection with level+1's busy time
	Ratio       float64
}

// OverlapByLevel reconstructs tree levels from the message-flow graph
// (SendPost edges of payload traffic; level = BFS distance from the
// ranks nobody sends to) and measures per-level send activity overlap.
// Runs whose flow graph has no source rank (e.g. a ring allgather)
// return nil.
func (g *Graph) OverlapByLevel() []LevelOverlap {
	ranks := g.ranksOf()
	if len(ranks) == 0 {
		return nil
	}
	indeg := map[int]int{}
	succ := map[int][]int{}
	for _, r := range ranks {
		indeg[r] = 0
	}
	for _, r := range g.Run.Records {
		if r.Kind != trace.SendPost || !dataKind(r.Tag) || r.Rank < 0 || r.Peer < 0 {
			continue
		}
		if r.Rank == r.Peer {
			continue
		}
		succ[r.Rank] = append(succ[r.Rank], r.Peer)
		indeg[r.Peer]++
	}

	level := map[int]int{}
	var frontier []int
	for _, r := range ranks {
		if indeg[r] == 0 {
			level[r] = 0
			frontier = append(frontier, r)
		}
	}
	if len(frontier) == 0 {
		return nil // cyclic flow (ring/pairwise): no tree levels to speak of
	}
	sort.Ints(frontier)
	maxLevel := 0
	for len(frontier) > 0 {
		next := map[int]bool{}
		for _, u := range frontier {
			for _, v := range succ[u] {
				if _, seen := level[v]; !seen {
					level[v] = level[u] + 1
					if level[v] > maxLevel {
						maxLevel = level[v]
					}
					next[v] = true
				}
			}
		}
		frontier = frontier[:0]
		for v := range next {
			frontier = append(frontier, v)
		}
		sort.Ints(frontier)
	}

	// Per-level busy intervals from paired send spans.
	spans := g.sendSpans()
	busy := make([][]Interval, maxLevel+1)
	levelRanks := make([][]int, maxLevel+1)
	for _, rk := range ranks {
		if lv, ok := level[rk]; ok {
			levelRanks[lv] = append(levelRanks[lv], rk)
		}
	}
	for _, r := range g.Run.Records {
		if r.Kind != trace.SendPost || !dataKind(r.Tag) {
			continue
		}
		lv, ok := level[r.Rank]
		if !ok {
			continue
		}
		if sp, ok := spans[r.ID]; ok && sp.End > sp.Start {
			busy[lv] = append(busy[lv], sp)
		}
	}
	for i := range busy {
		busy[i] = mergeIntervals(busy[i])
	}

	out := make([]LevelOverlap, 0, maxLevel+1)
	for lv := 0; lv <= maxLevel; lv++ {
		lo := LevelOverlap{Level: lv, Ranks: levelRanks[lv], Busy: totalOf(busy[lv])}
		if lv < maxLevel {
			lo.OverlapNext = intersectTotal(busy[lv], busy[lv+1])
			shorter := lo.Busy
			if b := totalOf(busy[lv+1]); b < shorter {
				shorter = b
			}
			if shorter > 0 {
				lo.Ratio = float64(lo.OverlapNext) / float64(shorter)
			}
		}
		out = append(out, lo)
	}
	return out
}

// Lane is one pipeline segment's transfer timeline across all ranks:
// every interval during which some copy of segment Seg was on the wire.
type Lane struct {
	Seg   int
	Spans []Interval
}

// SegmentLanes groups payload transfers by pipeline segment index —
// the per-lane view of ADAPT's segment independence. Sorted by segment.
func (g *Graph) SegmentLanes() []Lane {
	spans := g.sendSpans()
	bySeg := map[int][]Interval{}
	for _, r := range g.Run.Records {
		if r.Kind != trace.SendPost || !dataKind(r.Tag) {
			continue
		}
		if sp, ok := spans[r.ID]; ok && sp.End > sp.Start {
			seg := r.Tag.Seg()
			bySeg[seg] = append(bySeg[seg], sp)
		}
	}
	segs := make([]int, 0, len(bySeg))
	for s := range bySeg {
		segs = append(segs, s)
	}
	sort.Ints(segs)
	out := make([]Lane, 0, len(segs))
	for _, s := range segs {
		out = append(out, Lane{Seg: s, Spans: mergeIntervals(bySeg[s])})
	}
	return out
}
