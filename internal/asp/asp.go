// Package asp implements ASP — the all-pairs shortest-path application
// the paper uses for its end-to-end evaluation (§5.3, Table 1). ASP runs
// the parallel Floyd–Warshall algorithm: the N×N weight matrix is
// distributed by row blocks; in iteration k the owner of row k broadcasts
// it and every rank relaxes its local rows through vertex k. The
// broadcast dominates the runtime, which is why the paper uses ASP to
// showcase collective performance.
package asp

import (
	"math"
	"time"

	"adapt/internal/comm"
)

// BcastFunc broadcasts msg from root (the libmodel.Library.Bcast shape).
type BcastFunc func(c comm.Comm, root int, msg comm.Msg, seq int) comm.Msg

// Config sets up one ASP run.
type Config struct {
	N        int  // matrix dimension (vertices)
	Iters    int  // iterations to execute (≤ N; results scale by N/Iters)
	ElemSize int  // bytes per matrix element on the wire
	WithData bool // carry and relax real float64 distances (live runs)
	Bcast    BcastFunc
}

// Result is the timing breakdown of the executed iterations.
type Result struct {
	Comm  time.Duration // time rank 0 spent inside broadcasts
	Total time.Duration // wall/virtual time of the executed iterations
	Iters int
}

// Scaled extrapolates the executed iterations to the full N-iteration
// algorithm (iterations are statistically identical in cost).
func (r Result) Scaled(n int) Result {
	f := float64(n) / float64(r.Iters)
	return Result{
		Comm:  time.Duration(float64(r.Comm) * f),
		Total: time.Duration(float64(r.Total) * f),
		Iters: n,
	}
}

// rowsOf returns the half-open row range owned by rank r.
func rowsOf(n, p, r int) (lo, hi int) {
	base := n / p
	extra := n % p
	lo = r*base + min(r, extra)
	hi = lo + base
	if r < extra {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ownerOf returns the rank owning row k.
func ownerOf(n, p, k int) int {
	for r := 0; r < p; r++ {
		lo, hi := rowsOf(n, p, r)
		if k >= lo && k < hi {
			return r
		}
	}
	panic("asp: row out of range")
}

// Run executes cfg.Iters Floyd–Warshall iterations on rank c. When
// cfg.WithData is set, dist must hold this rank's rows (row-major,
// [hi-lo][N] float64) and is relaxed in place; otherwise dist may be nil
// and only costs are modelled. It returns the timing breakdown (rank 0's
// view; other ranks get their local accounting).
func Run(c comm.Comm, cfg Config, dist [][]float64) Result {
	p := c.Size()
	me := c.Rank()
	lo, _ := rowsOf(cfg.N, p, me)
	rowBytes := cfg.N * cfg.ElemSize
	nl := localRows(cfg.N, p, me)

	start := c.Now()
	var commTime time.Duration
	for it := 0; it < cfg.Iters; it++ {
		k := it // iterate over the first Iters vertices
		root := ownerOf(cfg.N, p, k)
		var msg comm.Msg
		if me == root {
			if cfg.WithData {
				msg = comm.Bytes(comm.EncodeFloat64s(dist[k-lo]))
			} else {
				msg = comm.Sized(rowBytes)
			}
		} else {
			msg = comm.Sized(rowBytes)
		}
		t0 := c.Now()
		out := cfg.Bcast(c, root, msg, it)
		commTime += c.Now() - t0

		if cfg.WithData {
			rowK := comm.DecodeFloat64s(out.Data)
			for i := range dist {
				dik := dist[i][k]
				if math.IsInf(dik, 1) {
					continue
				}
				row := dist[i]
				for j := range row {
					if v := dik + rowK[j]; v < row[j] {
						row[j] = v
					}
				}
			}
		}
		// Charge the relaxation sweep (live: performed above for real and
		// Compute is a no-op; simulated: γ·(local rows × row bytes)).
		c.Compute(nl*rowBytes, comm.ComputeApp)
	}
	return Result{Comm: commTime, Total: c.Now() - start, Iters: cfg.Iters}
}

func localRows(n, p, r int) int {
	lo, hi := rowsOf(n, p, r)
	return hi - lo
}

// Sequential solves all-pairs shortest paths by plain Floyd–Warshall,
// the reference for correctness tests. dist is modified in place.
func Sequential(dist [][]float64) {
	n := len(dist)
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := dist[i][k]
			if math.IsInf(dik, 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if v := dik + dist[k][j]; v < dist[i][j] {
					dist[i][j] = v
				}
			}
		}
	}
}
