package asp

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"adapt/internal/comm"
	"adapt/internal/core"
	"adapt/internal/libmodel"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
	"adapt/internal/runtime"
	"adapt/internal/sim"
	"adapt/internal/simmpi"
	"adapt/internal/trees"
)

// randGraph builds a random weighted digraph adjacency matrix.
func randGraph(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			switch {
			case i == j:
				d[i][j] = 0
			case rng.Float64() < 0.3:
				d[i][j] = 1 + 9*rng.Float64()
			default:
				d[i][j] = math.Inf(1)
			}
		}
	}
	return d
}

func copyMatrix(d [][]float64) [][]float64 {
	out := make([][]float64, len(d))
	for i := range d {
		out[i] = append([]float64(nil), d[i]...)
	}
	return out
}

// liveBcast is an ADAPT broadcast usable from the live runtime.
func liveBcast(c comm.Comm, root int, msg comm.Msg, seq int) comm.Msg {
	opt := core.DefaultOptions()
	opt.Seq = seq
	opt.SegSize = 4 << 10
	return core.Bcast(c, trees.Binomial(c.Size(), root), msg, opt)
}

// TestDistributedMatchesSequential runs full ASP (Iters = N) on the live
// runtime with real data and compares every distance to the sequential
// Floyd–Warshall.
func TestDistributedMatchesSequential(t *testing.T) {
	const n, p = 48, 6
	graph := randGraph(n, 7)
	want := copyMatrix(graph)
	Sequential(want)

	w := runtime.NewWorld(p)
	var mu sync.Mutex
	got := make([][]float64, n)
	w.Run(func(c *runtime.Comm) {
		lo, hi := rowsOf(n, p, c.Rank())
		local := copyMatrix(graph[lo:hi])
		Run(c, Config{N: n, Iters: n, ElemSize: 8, WithData: true, Bcast: liveBcast}, local)
		mu.Lock()
		for i := lo; i < hi; i++ {
			got[i] = local[i-lo]
		}
		mu.Unlock()
	})
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if got[i][j] != want[i][j] {
				t.Fatalf("dist[%d][%d] = %v, want %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestRowsPartition(t *testing.T) {
	for _, c := range []struct{ n, p int }{{48, 6}, {100, 7}, {5, 5}, {16384, 1024}} {
		total := 0
		for r := 0; r < c.p; r++ {
			lo, hi := rowsOf(c.n, c.p, r)
			if hi < lo {
				t.Fatalf("rowsOf(%d,%d,%d) inverted", c.n, c.p, r)
			}
			total += hi - lo
			for k := lo; k < hi; k++ {
				if ownerOf(c.n, c.p, k) != r {
					t.Fatalf("ownerOf(%d) != %d", k, r)
				}
			}
		}
		if total != c.n {
			t.Fatalf("(%d,%d): rows sum to %d", c.n, c.p, total)
		}
	}
}

func TestScaled(t *testing.T) {
	r := Result{Comm: 100, Total: 400, Iters: 10}
	s := r.Scaled(100)
	if s.Comm != 1000 || s.Total != 4000 || s.Iters != 100 {
		t.Fatalf("scaled = %+v", s)
	}
}

// TestSimulatedASPCommFraction runs the Table-1 workload at reduced scale
// and checks the headline property: ADAPT's communication share of the
// runtime is far below the tuned module's.
func TestSimulatedASPCommFraction(t *testing.T) {
	p := netmodel.Cori(4) // 128 ranks
	frac := func(lib libmodel.Library) float64 {
		k := sim.New()
		w := simmpi.NewWorld(k, p, noise.None)
		var res Result
		w.Spawn(func(c *simmpi.Comm) {
			r := Run(c, Config{N: 4096, Iters: 32, ElemSize: 8, Bcast: lib.Bcast}, nil)
			if c.Rank() == 0 {
				res = r
			}
		})
		k.MustRun()
		return float64(res.Comm) / float64(res.Total)
	}
	adapt := frac(libmodel.OMPIAdapt(p))
	tuned := frac(libmodel.OMPIDefault(p))
	if adapt >= tuned {
		t.Fatalf("ADAPT comm fraction (%.2f) must be below tuned (%.2f)", adapt, tuned)
	}
	t.Logf("comm fraction: adapt %.2f, tuned %.2f", adapt, tuned)
}

func TestSequentialTriangle(t *testing.T) {
	inf := math.Inf(1)
	d := [][]float64{
		{0, 5, inf},
		{inf, 0, 2},
		{1, inf, 0},
	}
	Sequential(d)
	want := [][]float64{
		{0, 5, 7},
		{3, 0, 2},
		{1, 6, 0},
	}
	for i := range want {
		for j := range want[i] {
			if d[i][j] != want[i][j] {
				t.Fatalf("d[%d][%d] = %v, want %v", i, j, d[i][j], want[i][j])
			}
		}
	}
}
