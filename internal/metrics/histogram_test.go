package metrics

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// withTelemetry enables the plane for one test and restores the prior
// gate state afterwards, so tests compose regardless of order.
func withTelemetry(t *testing.T, on bool) {
	t.Helper()
	prev := Enabled()
	Enable(on)
	t.Cleanup(func() { Enable(prev) })
}

// TestBucketLayout pins the log-bucket geometry: round-tripping and
// monotonicity over exact values, octave boundaries, and random draws.
func TestBucketLayout(t *testing.T) {
	// Every bucket's upper bound maps back to that bucket, and bounds
	// strictly increase.
	for i := 0; i < numBuckets; i++ {
		if got := bucketOf(bucketUpper(i)); got != i {
			t.Fatalf("bucketOf(bucketUpper(%d)) = %d", i, got)
		}
		if i > 0 && bucketUpper(i) <= bucketUpper(i-1) {
			t.Fatalf("bucketUpper not increasing at %d: %d <= %d", i, bucketUpper(i), bucketUpper(i-1))
		}
	}
	check := func(v uint64) {
		b := bucketOf(v)
		if b < 0 || b >= numBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, b)
		}
		if up := bucketUpper(b); v > up {
			t.Fatalf("value %d above its bucket upper %d (bucket %d)", v, up, b)
		}
		if v < firstExact && bucketUpper(b) != v {
			t.Fatalf("exact range: value %d got upper %d", v, bucketUpper(b))
		}
	}
	for v := uint64(0); v < 4096; v++ {
		check(v)
	}
	for exp := 4; exp < 64; exp++ {
		p := uint64(1) << uint(exp)
		for _, v := range []uint64{p - 1, p, p + 1} {
			check(v)
		}
	}
	check(^uint64(0))
	rng := rand.New(rand.NewSource(42))
	prev := -1
	for v := uint64(0); v < 100000; v += uint64(rng.Intn(1000)) + 1 {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf not monotone at %d", v)
		}
		prev = b
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines —
// the -race build proves the lock-free claim, the totals prove no
// observation is lost or double-counted.
func TestHistogramConcurrent(t *testing.T) {
	withTelemetry(t, true)
	r := NewRegistry()
	h := r.NewHistogram("t_conc", "concurrent writers")
	const writers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(uint64(rng.Intn(1 << 20)))
			}
		}(int64(w))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != writers*per {
		t.Fatalf("count = %d, want %d", s.Count, writers*per)
	}
	var cum uint64
	for _, c := range s.Counts {
		cum += c
	}
	if cum != s.Count {
		t.Fatalf("bucket sum %d != count %d", cum, s.Count)
	}
}

// TestMergeAssociative pins the roll-up algebra: snapshots merge
// associatively and commutatively, with an empty snapshot as identity.
func TestMergeAssociative(t *testing.T) {
	withTelemetry(t, true)
	r := NewRegistry()
	mk := func(name string, seed int64, n int) HistSnapshot {
		h := r.NewHistogram(name, "merge test")
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			h.Observe(uint64(rng.Intn(1 << 24)))
		}
		return h.Snapshot()
	}
	a, b, c := mk("t_ma", 1, 300), mk("t_mb", 2, 500), mk("t_mc", 3, 700)
	left := a.Merge(b).Merge(c)
	right := a.Merge(b.Merge(c))
	if left != right {
		t.Fatal("merge is not associative")
	}
	if a.Merge(b) != b.Merge(a) {
		t.Fatal("merge is not commutative")
	}
	var zero HistSnapshot
	if a.Merge(zero) != a {
		t.Fatal("empty snapshot is not a merge identity")
	}
	if left.Count != a.Count+b.Count+c.Count {
		t.Fatalf("merged count = %d, want %d", left.Count, a.Count+b.Count+c.Count)
	}
}

// TestQuantileErrorBound checks every quantile read against an exact
// sorted reference: the histogram answer is never below the true order
// statistic and overshoots by at most the documented 12.5% bucket width
// (exactly equal below firstExact).
func TestQuantileErrorBound(t *testing.T) {
	withTelemetry(t, true)
	r := NewRegistry()
	dists := []struct {
		name string
		gen  func(rng *rand.Rand) uint64
	}{
		{"t_q_uniform", func(rng *rand.Rand) uint64 { return uint64(rng.Intn(1 << 22)) }},
		{"t_q_small", func(rng *rand.Rand) uint64 { return uint64(rng.Intn(12)) }},
		{"t_q_heavy", func(rng *rand.Rand) uint64 {
			// Log-uniform: exercises every octave.
			return uint64(1) << uint(rng.Intn(40))
		}},
	}
	for _, d := range dists {
		h := r.NewHistogram(d.name, "quantile bound test")
		rng := rand.New(rand.NewSource(7))
		const n = 20000
		vals := make([]uint64, n)
		for i := range vals {
			v := d.gen(rng)
			vals[i] = v
			h.Observe(v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		s := h.Snapshot()
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
			exact := vals[int(q*float64(n-1))]
			got := s.Quantile(q)
			if got < exact {
				t.Errorf("%s q=%v: histogram %d below exact %d", d.name, q, got, exact)
			}
			bound := float64(exact) * 1.125
			if exact < firstExact {
				bound = float64(exact) // exact unit buckets
			}
			if float64(got) > bound {
				t.Errorf("%s q=%v: histogram %d exceeds bound %.0f (exact %d)", d.name, q, got, bound, exact)
			}
		}
	}
	// Degenerate cases.
	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty snapshot quantile/mean must be 0")
	}
}

// TestObserveSinceGate pins the mid-flight enable contract: a bracket
// started while telemetry was off (start == 0) records nothing even if
// the gate flips on before the observation lands.
func TestObserveSinceGate(t *testing.T) {
	withTelemetry(t, false)
	r := NewRegistry()
	h := r.NewHistogram("t_gate", "gate test")
	start := Clock()
	if start != 0 {
		t.Fatalf("Clock() = %d with telemetry off, want 0", start)
	}
	Enable(true)
	h.ObserveSince(start)
	if n := h.Snapshot().Count; n != 0 {
		t.Fatalf("ObserveSince(0) recorded %d observations", n)
	}
	start = Clock()
	if start == 0 {
		t.Fatal("Clock() = 0 with telemetry on")
	}
	time.Sleep(time.Millisecond)
	h.ObserveSince(start)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum == 0 {
		t.Fatalf("enabled ObserveSince: count=%d sum=%d", s.Count, s.Sum)
	}
}

// TestMetricsZeroAlloc is the hot-path contract: with telemetry
// disabled every recording entry point is a single atomic load — zero
// allocations — and even enabled, the atomics-only paths stay
// allocation-free.
func TestMetricsZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("t_za_counter", "zero alloc")
	g := r.NewGauge("t_za_gauge", "zero alloc")
	h := r.NewHistogram("t_za_hist", "zero alloc")

	prev := Enabled()
	defer Enable(prev)

	for _, mode := range []bool{false, true} {
		Enable(mode)
		allocs := testing.AllocsPerRun(1000, func() {
			c.Inc()
			c.Add(3)
			g.Set(7)
			g.Add(-2)
			h.Observe(12345)
			h.ObserveSince(Clock())
		})
		if allocs != 0 {
			t.Errorf("enabled=%v: %v allocs/op on the recording hot path, want 0", mode, allocs)
		}
	}
}

func BenchmarkObserveDisabled(b *testing.B) {
	prev := Enabled()
	Enable(false)
	defer Enable(prev)
	r := NewRegistry()
	h := r.NewHistogram("b_obs_off", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

func BenchmarkObserveEnabled(b *testing.B) {
	prev := Enabled()
	Enable(true)
	defer Enable(prev)
	r := NewRegistry()
	h := r.NewHistogram("b_obs_on", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

func BenchmarkObserveEnabledParallel(b *testing.B) {
	prev := Enabled()
	Enable(true)
	defer Enable(prev)
	r := NewRegistry()
	h := r.NewHistogram("b_obs_par", "bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := uint64(0)
		for pb.Next() {
			v += 1023
			h.Observe(v)
		}
	})
}

func BenchmarkCounterDisabled(b *testing.B) {
	prev := Enabled()
	Enable(false)
	defer Enable(prev)
	r := NewRegistry()
	c := r.NewCounter("b_ctr_off", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkLatencyBracketDisabled(b *testing.B) {
	prev := Enabled()
	Enable(false)
	defer Enable(prev)
	r := NewRegistry()
	h := r.NewHistogram("b_brk_off", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveSince(Clock())
	}
}
