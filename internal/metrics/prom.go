package metrics

import (
	"fmt"
	"io"
	"strings"
)

// Prometheus text exposition (version 0.0.4): one # HELP and # TYPE
// pair per metric name, samples in stable (name, labels) order, label
// values quoted with the standard escapes. Histograms render as
// cumulative le-bucketed series over the log-bucket upper bounds —
// only non-empty buckets are listed (cumulative counts stay correct)
// plus the mandatory +Inf, _sum, and _count. The golden test in
// prom_test.go pins this surface byte-for-byte so a scrape consumer
// can't be broken silently.

// promQuote escapes a label value per the exposition format.
func promQuote(v string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// promHelp escapes a HELP line per the exposition format.
func promHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// promLabels renders {a="x",b="y"} (empty string for no labels).
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	return "{" + labelString(all) + "}"
}

// WritePrometheus renders every registered metric.
func (r *Registry) WritePrometheus(w io.Writer) error {
	lastName := ""
	for _, m := range r.sorted() {
		meta := m.meta()
		if meta.name != lastName {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
				meta.name, promHelp(meta.help), meta.name, meta.kind); err != nil {
				return err
			}
			lastName = meta.name
		}
		var err error
		switch v := m.(type) {
		case *Counter:
			_, err = fmt.Fprintf(w, "%s%s %d\n", meta.name, promLabels(meta.labels), v.Value())
		case *Gauge:
			_, err = fmt.Fprintf(w, "%s%s %d\n", meta.name, promLabels(meta.labels), v.Value())
		case *Histogram:
			err = writePromHistogram(w, meta, v.Snapshot())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, meta metricMeta, s HistSnapshot) error {
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		cum += c
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", meta.name,
			promLabels(meta.labels, Label{"le", fmt.Sprintf("%d", bucketUpper(i))}), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", meta.name,
		promLabels(meta.labels, Label{"le", "+Inf"}), s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", meta.name, promLabels(meta.labels), s.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", meta.name, promLabels(meta.labels), s.Count)
	return err
}
