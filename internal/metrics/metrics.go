// Package metrics is the live telemetry core: lock-free log-bucketed
// histograms, gauges, and labeled counters layered over the same
// atomics discipline as internal/perf, plus a Prometheus text
// exposition and an opt-in HTTP admin plane (admin.go) so a running
// adaptd can be scraped under load instead of only read at exit.
//
// Contract with the hot paths (the same deal the PR 5 trace gate
// makes): telemetry is FREE when disabled and cheap when enabled.
// Every recording entry point begins with one atomic load of the
// package enable gate and returns immediately when it is off — zero
// allocations, no time syscalls, no pointer chasing. TestMetricsZeroAlloc
// and the make-obs benchmarks pin both sides of that contract.
//
// Naming scheme (DESIGN.md §15): adapt_<layer>_<signal>[_<unit>], with
// _total suffix on monotonic counters and _ns on nanosecond-valued
// histograms. Metric identity is name plus a fixed label set chosen at
// construction; there is no dynamic label creation on the hot path.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the global telemetry gate. Off by default: a process that
// never calls Enable pays one atomic load per instrumentation site.
var enabled atomic.Bool

// Enable switches the telemetry plane on or off. Flip it once at
// startup (before traffic) — gauges balanced across an Inc/Dec pair
// assume the gate does not move between the two halves.
func Enable(on bool) { enabled.Store(on) }

// Enabled reports whether the telemetry plane is on.
func Enabled() bool { return enabled.Load() }

// Clock returns a start timestamp for latency measurement: the current
// time in nanoseconds when telemetry is enabled, 0 when disabled. Pair
// it with Histogram.ObserveSince, which treats 0 as "telemetry was off
// at the start — record nothing".
func Clock() int64 {
	if !enabled.Load() {
		return 0
	}
	return time.Now().UnixNano()
}

// Label is one fixed name="value" pair attached to a metric at
// construction time.
type Label struct {
	Name, Value string
}

// metric is anything a registry can snapshot and expose.
type metric interface {
	meta() metricMeta
}

type metricMeta struct {
	name   string
	help   string
	kind   string // "counter", "gauge", "histogram"
	labels []Label
}

// id renders the metric's full identity (name + sorted labels) for
// uniqueness checks and stable ordering.
func (m metricMeta) id() string {
	if len(m.labels) == 0 {
		return m.name
	}
	return m.name + "{" + labelString(m.labels) + "}"
}

func labelString(labels []Label) string {
	s := ""
	for i, l := range labels {
		if i > 0 {
			s += ","
		}
		s += l.Name + "=" + promQuote(l.Value)
	}
	return s
}

// Registry holds a set of named metrics. The package default registry
// backs the New* constructors; tests build private ones.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	byID    map[string]bool
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: map[string]bool{}}
}

// defaultRegistry backs the package-level constructors.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the admin plane exposes.
func Default() *Registry { return defaultRegistry }

// register adds m, panicking on duplicate identity — metric names are
// wired at package init time, so a collision is a programming error.
func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := m.meta().id()
	if r.byID[id] {
		panic(fmt.Sprintf("metrics: duplicate metric %s", id))
	}
	r.byID[id] = true
	r.metrics = append(r.metrics, m)
}

// sorted returns the metrics in stable (name, labels) order.
func (r *Registry) sorted() []metric {
	r.mu.Lock()
	out := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		mi, mj := out[i].meta(), out[j].meta()
		if mi.name != mj.name {
			return mi.name < mj.name
		}
		return labelString(mi.labels) < labelString(mj.labels)
	})
	return out
}

// Counter is a monotonically increasing count. Add/Inc are single
// atomic adds when enabled and a single atomic load when disabled.
type Counter struct {
	m metricMeta
	v atomic.Uint64
}

// NewCounterIn registers a counter in r.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	c := &Counter{m: metricMeta{name: name, help: help, kind: "counter", labels: labels}}
	r.register(c)
	return c
}

// NewCounter registers a counter in the default registry.
func NewCounter(name, help string, labels ...Label) *Counter {
	return defaultRegistry.NewCounter(name, help, labels...)
}

func (c *Counter) meta() metricMeta { return c.m }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous level (things currently in use). Set/Add
// are single atomics when enabled.
type Gauge struct {
	m metricMeta
	v atomic.Int64
}

// NewGauge registers a gauge in r.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{m: metricMeta{name: name, help: help, kind: "gauge", labels: labels}}
	r.register(g)
	return g
}

// NewGauge registers a gauge in the default registry.
func NewGauge(name, help string, labels ...Label) *Gauge {
	return defaultRegistry.NewGauge(name, help, labels...)
}

func (g *Gauge) meta() metricMeta { return g.m }

// Set stores the gauge level.
func (g *Gauge) Set(v int64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if !enabled.Load() {
		return
	}
	g.v.Add(delta)
}

// Inc raises the gauge by one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec lowers the gauge by one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value reads the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// LinkStat is one directed link's health as last reported by an
// adaptive FEC controller: the loss EWMA and the parity count chosen
// for the next group.
type LinkStat struct {
	Src  int     `json:"src"`
	Dst  int     `json:"dst"`
	Loss float64 `json:"loss"`
	M    int     `json:"m"`
}

// linkTable aggregates per-link health across every live world. Keyed
// by directed (src, dst); worlds sharing rank numbering merge, which is
// the operator view we want for one daemon's homogeneous backends.
var linkTable struct {
	mu    sync.RWMutex
	links map[uint64]LinkStat
}

func linkKey(src, dst int) uint64 {
	return uint64(uint32(src))<<32 | uint64(uint32(dst))
}

// RecordLink publishes one link's current loss estimate and chosen
// parity. Gated: free when telemetry is off.
func RecordLink(src, dst int, loss float64, m int) {
	if !enabled.Load() {
		return
	}
	k := linkKey(src, dst)
	linkTable.mu.Lock()
	if linkTable.links == nil {
		linkTable.links = map[uint64]LinkStat{}
	}
	linkTable.links[k] = LinkStat{Src: src, Dst: dst, Loss: loss, M: m}
	linkTable.mu.Unlock()
}

// Links snapshots the link-health table sorted by (src, dst).
func Links() []LinkStat {
	linkTable.mu.RLock()
	out := make([]LinkStat, 0, len(linkTable.links))
	for _, l := range linkTable.links {
		out = append(out, l)
	}
	linkTable.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// ResetLinks clears the link table (tests).
func ResetLinks() {
	linkTable.mu.Lock()
	linkTable.links = nil
	linkTable.mu.Unlock()
}
