package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Log-bucketed histogram layout. Values below firstExact land in exact
// unit buckets; above that each power-of-two octave splits into
// 2^subBits sub-buckets keyed by the top subBits bits after the leading
// bit. With subBits=3 a bucket's width is 1/8 of its lower bound, so
// any quantile read from bucket upper bounds overstates the true order
// statistic by at most 12.5% (and is exact below firstExact). 496
// buckets cover the full uint64 range; one histogram is ~4KiB of
// atomics, allocated once at construction.
const (
	subBits    = 3
	subCount   = 1 << subBits                       // 8 sub-buckets per octave
	firstExact = 2 * subCount                       // values 0..15 are exact
	numBuckets = firstExact + (63-subBits)*subCount // 496
)

// bucketOf maps a value to its bucket index.
func bucketOf(v uint64) int {
	if v < firstExact {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // >= subBits+1
	sub := (v >> (uint(exp) - subBits)) & (subCount - 1)
	return firstExact + (exp-subBits-1)*subCount + int(sub)
}

// bucketUpper returns the largest value that lands in bucket i.
func bucketUpper(i int) uint64 {
	if i < firstExact {
		return uint64(i)
	}
	g := i - firstExact
	exp := uint(g/subCount) + subBits + 1
	sub := uint64(g % subCount)
	lower := uint64(1)<<exp + sub<<(exp-subBits)
	return lower + 1<<(exp-subBits) - 1
}

// Histogram is a lock-free log-bucketed distribution: concurrent
// Observe calls are independent atomic adds, reads are snapshots.
type Histogram struct {
	m      metricMeta
	count  atomic.Uint64
	sum    atomic.Uint64
	counts [numBuckets]atomic.Uint64
}

// NewHistogram registers a histogram in r.
func (r *Registry) NewHistogram(name, help string, labels ...Label) *Histogram {
	h := &Histogram{m: metricMeta{name: name, help: help, kind: "histogram", labels: labels}}
	r.register(h)
	return h
}

// NewHistogram registers a histogram in the default registry.
func NewHistogram(name, help string, labels ...Label) *Histogram {
	return defaultRegistry.NewHistogram(name, help, labels...)
}

func (h *Histogram) meta() metricMeta { return h.m }

// Observe records one value: three atomic adds when enabled, one
// atomic load when disabled.
func (h *Histogram) Observe(v uint64) {
	if !enabled.Load() {
		return
	}
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// ObserveSince records the nanoseconds elapsed since a Clock() start.
// A zero start means telemetry was off when the measurement began —
// nothing is recorded, so enabling mid-flight never logs a bogus
// epoch-sized latency.
func (h *Histogram) ObserveSince(start int64) {
	if start == 0 || !enabled.Load() {
		return
	}
	d := time.Now().UnixNano() - start
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(uint64(d))].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(d))
}

// Snapshot captures a point-in-time view. Snapshots are mergeable:
// bucket-wise addition is associative and commutative, so per-shard
// histograms can roll up in any grouping order.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistSnapshot is an immutable histogram view.
type HistSnapshot struct {
	Count  uint64
	Sum    uint64
	Counts [numBuckets]uint64
}

// Merge folds other into s (bucket-wise addition).
func (s HistSnapshot) Merge(other HistSnapshot) HistSnapshot {
	s.Count += other.Count
	s.Sum += other.Sum
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) as the upper bound of
// the bucket holding that order statistic: never below the true value
// by construction, above it by at most the bucket's 12.5% relative
// width. Returns 0 on an empty snapshot.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count-1))
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum > rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(numBuckets - 1)
}

// Mean returns the arithmetic mean (0 on an empty snapshot).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// QuantileSummary is the standard operator view of one histogram.
type QuantileSummary struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Count  uint64  `json:"count"`
	MeanNS float64 `json:"mean"`
	P50    uint64  `json:"p50"`
	P90    uint64  `json:"p90"`
	P99    uint64  `json:"p99"`
	P999   uint64  `json:"p999"`
}

// Summary renders the snapshot's p50/p90/p99/p999 under the
// histogram's identity.
func (h *Histogram) Summary() QuantileSummary {
	s := h.Snapshot()
	return QuantileSummary{
		Name:   h.m.name,
		Labels: labelString(h.m.labels),
		Count:  s.Count,
		MeanNS: s.Mean(),
		P50:    s.Quantile(0.50),
		P90:    s.Quantile(0.90),
		P99:    s.Quantile(0.99),
		P999:   s.Quantile(0.999),
	}
}

// Summaries returns every registered histogram's quantile summary in
// stable order, skipping empty ones when skipEmpty is set.
func (r *Registry) Summaries(skipEmpty bool) []QuantileSummary {
	var out []QuantileSummary
	for _, m := range r.sorted() {
		h, ok := m.(*Histogram)
		if !ok {
			continue
		}
		sum := h.Summary()
		if skipEmpty && sum.Count == 0 {
			continue
		}
		out = append(out, sum)
	}
	return out
}
