package metrics

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"adapt/internal/perf"
)

// TestAdminEndpoint drives the whole admin plane over real HTTP: the
// Prometheus surface, the statusz document (app section, perf window
// delta between scrapes), and draining-aware health.
func TestAdminEndpoint(t *testing.T) {
	withTelemetry(t, false) // ServeAdmin must flip the gate on itself
	r := NewRegistry()
	h := r.NewHistogram("t_admin_latency_ns", "admin test latency")
	c := r.NewCounter("t_admin_reqs_total", "admin test requests")

	var healthy atomic.Bool
	healthy.Store(true)
	a, err := ServeAdmin("127.0.0.1:0", AdminOpts{
		Registry: r,
		Status:   func() any { return map[string]int{"sessions": 3} },
		Healthy:  healthy.Load,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if !Enabled() {
		t.Fatal("ServeAdmin did not enable the telemetry plane")
	}

	c.Add(11)
	for _, v := range []uint64{100, 200, 400, 800} {
		h.Observe(v)
	}
	perf.RecordNetDialRetry() // make the perf window move between scrapes

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + a.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE t_admin_latency_ns histogram",
		"t_admin_reqs_total 11",
		"t_admin_latency_ns_count 4",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}

	code, body = get("/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz status %d", code)
	}
	var st Statusz
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/statusz not JSON: %v\n%s", err, body)
	}
	if st.UptimeSecs < 0 || st.WindowSecs < 0 {
		t.Errorf("negative uptime/window: %+v", st)
	}
	app, ok := st.App.(map[string]any)
	if !ok || app["sessions"] != float64(3) {
		t.Errorf("app section = %#v, want sessions=3", st.App)
	}
	var found *QuantileSummary
	for i := range st.Histograms {
		if st.Histograms[i].Name == "t_admin_latency_ns" {
			found = &st.Histograms[i]
		}
	}
	if found == nil {
		t.Fatalf("statusz missing histogram summary: %+v", st.Histograms)
	}
	if found.Count != 4 || found.P50 == 0 || found.P999 < found.P50 {
		t.Errorf("bad quantile summary: %+v", found)
	}

	// The perf window is a delta between consecutive scrapes: after one
	// quiet rescrape the window's monotonic counters return to zero even
	// though the cumulative snapshot keeps them.
	perf.RecordNetDialRetry()
	_, body = get("/statusz")
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.PerfWindow.NetDialRetries == 0 {
		t.Error("perf window missed the dial retry recorded between scrapes")
	}
	_, body = get("/statusz")
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.PerfWindow.NetDialRetries != 0 {
		t.Errorf("quiet window reports %d dial retries, want 0", st.PerfWindow.NetDialRetries)
	}

	code, _ = get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d while healthy", code)
	}
	healthy.Store(false)
	code, _ = get("/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz status %d while draining, want 503", code)
	}

	code, _ = get("/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}

// TestLinkTable pins the FEC link-health aggregation: updates overwrite
// per directed link, the snapshot sorts by (src, dst), and the gate
// keeps RecordLink free when telemetry is off.
func TestLinkTable(t *testing.T) {
	withTelemetry(t, true)
	ResetLinks()
	t.Cleanup(ResetLinks)
	RecordLink(1, 0, 0.25, 3)
	RecordLink(0, 1, 0.10, 2)
	RecordLink(1, 0, 0.30, 4) // overwrite
	ls := Links()
	if len(ls) != 2 {
		t.Fatalf("got %d links, want 2: %+v", len(ls), ls)
	}
	if ls[0] != (LinkStat{Src: 0, Dst: 1, Loss: 0.10, M: 2}) {
		t.Errorf("link[0] = %+v", ls[0])
	}
	if ls[1] != (LinkStat{Src: 1, Dst: 0, Loss: 0.30, M: 4}) {
		t.Errorf("link[1] = %+v", ls[1])
	}
	Enable(false)
	RecordLink(5, 6, 0.5, 1)
	Enable(true)
	if len(Links()) != 2 {
		t.Error("RecordLink recorded while telemetry was off")
	}
}
