package metrics

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"adapt/internal/perf"
)

// The admin plane: an opt-in HTTP endpoint a running daemon exposes so
// operators can observe it under load. Four surfaces:
//
//	/metrics  Prometheus text exposition of the registry (golden-tested)
//	/statusz  one JSON document: histogram quantiles, counters, gauges,
//	          per-link FEC health, the perf counter snapshot plus its
//	          per-window delta (perf.Snapshot.Delta between scrapes),
//	          and an application section (adaptd: sessions + backends)
//	/healthz  draining-aware readiness: 200 while serving, 503 once
//	          shutdown/drain begins
//	/debug/pprof/  the standard Go profiling handlers
//
// ServeAdmin also flips the telemetry gate on — an admin endpoint with
// recording disabled would scrape empty histograms.

// AdminOpts configures the admin endpoint.
type AdminOpts struct {
	// Registry to expose; nil means the package default.
	Registry *Registry
	// Status, when non-nil, supplies the application section of
	// /statusz (must be JSON-marshalable).
	Status func() any
	// Healthy, when non-nil, gates /healthz; nil means always ready.
	Healthy func() bool
}

// Statusz is the /statusz JSON document.
type Statusz struct {
	Now        time.Time     `json:"now"`
	UptimeSecs float64       `json:"uptime_secs"`
	WindowSecs float64       `json:"window_secs"`
	Perf       perf.Snapshot `json:"perf"`
	PerfWindow perf.Snapshot `json:"perf_window"` // delta since the previous /statusz scrape

	Histograms []QuantileSummary `json:"histograms,omitempty"`
	Counters   []CounterValue    `json:"counters,omitempty"`
	Gauges     []GaugeValue      `json:"gauges,omitempty"`
	Links      []LinkStat        `json:"links,omitempty"`
	App        any               `json:"app,omitempty"`
}

// CounterValue is one counter's statusz sample.
type CounterValue struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Value  uint64 `json:"value"`
}

// GaugeValue is one gauge's statusz sample.
type GaugeValue struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Value  int64  `json:"value"`
}

// CounterValues returns every registered counter in stable order.
func (r *Registry) CounterValues() []CounterValue {
	var out []CounterValue
	for _, m := range r.sorted() {
		if c, ok := m.(*Counter); ok {
			out = append(out, CounterValue{Name: c.m.name, Labels: labelString(c.m.labels), Value: c.Value()})
		}
	}
	return out
}

// GaugeValues returns every registered gauge in stable order.
func (r *Registry) GaugeValues() []GaugeValue {
	var out []GaugeValue
	for _, m := range r.sorted() {
		if g, ok := m.(*Gauge); ok {
			out = append(out, GaugeValue{Name: g.m.name, Labels: labelString(g.m.labels), Value: g.Value()})
		}
	}
	return out
}

// Admin is a running admin endpoint.
type Admin struct {
	ln    net.Listener
	srv   *http.Server
	opts  AdminOpts
	reg   *Registry
	start time.Time

	mu       sync.Mutex
	lastPerf perf.Snapshot
	lastAt   time.Time
}

// ServeAdmin starts the admin endpoint on addr (e.g. "127.0.0.1:0")
// and enables the telemetry plane.
func ServeAdmin(addr string, opts AdminOpts) (*Admin, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: admin listen %s: %w", addr, err)
	}
	reg := opts.Registry
	if reg == nil {
		reg = Default()
	}
	a := &Admin{ln: ln, opts: opts, reg: reg, start: time.Now()}
	a.lastPerf = perf.Read()
	a.lastAt = a.start

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.HandleFunc("/statusz", a.handleStatusz)
	mux.HandleFunc("/healthz", a.handleHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	a.srv = &http.Server{Handler: mux}
	Enable(true)
	go a.srv.Serve(ln)
	return a, nil
}

// Addr returns the bound admin address.
func (a *Admin) Addr() string { return a.ln.Addr().String() }

// Close stops the endpoint (the telemetry gate stays on; recording is
// cheap and a restart should not lose history).
func (a *Admin) Close() error { return a.srv.Close() }

func (a *Admin) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	a.reg.WritePrometheus(w)
}

// Status assembles the /statusz document. The perf window is the delta
// since the previous Status call — one rolling window per endpoint,
// which matches the single-scraper deployments (adaptctl -watch, the
// bench gate) this plane serves.
func (a *Admin) Status() Statusz {
	now := time.Now()
	cur := perf.Read()
	a.mu.Lock()
	prev, prevAt := a.lastPerf, a.lastAt
	a.lastPerf, a.lastAt = cur, now
	a.mu.Unlock()

	return Statusz{
		Now:        now,
		UptimeSecs: now.Sub(a.start).Seconds(),
		WindowSecs: now.Sub(prevAt).Seconds(),
		Perf:       cur,
		PerfWindow: cur.Delta(prev),
		Histograms: a.reg.Summaries(true),
		Counters:   a.reg.CounterValues(),
		Gauges:     a.reg.GaugeValues(),
		Links:      Links(),
		App:        a.appStatus(),
	}
}

func (a *Admin) appStatus() any {
	if a.opts.Status == nil {
		return nil
	}
	return a.opts.Status()
}

func (a *Admin) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(a.Status())
}

func (a *Admin) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if a.opts.Healthy != nil && !a.opts.Healthy() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}
