package metrics

import (
	"regexp"
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exposition surface byte-for-byte:
// HELP/TYPE once per name, stable (name, labels) ordering, label and
// help escaping, cumulative le buckets with +Inf/_sum/_count.
func TestPrometheusGolden(t *testing.T) {
	withTelemetry(t, true)
	r := NewRegistry()

	ca := r.NewCounter("adapt_test_bytes_total", "bytes moved", Label{"kind", "a"})
	cb := r.NewCounter("adapt_test_bytes_total", "bytes moved", Label{"kind", "b"})
	r.NewCounter("adapt_test_escape_total", `help with \ backslash`,
		Label{"msg", "say \"hi\"\nC:\\x"})
	h := r.NewHistogram("adapt_test_latency_ns", "request latency")
	g := r.NewGauge("adapt_test_queue", "live queue depth")

	ca.Add(7)
	cb.Add(9)
	g.Set(5)
	for _, v := range []uint64{3, 3, 20, 300} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := "# HELP adapt_test_bytes_total bytes moved\n" +
		"# TYPE adapt_test_bytes_total counter\n" +
		"adapt_test_bytes_total{kind=\"a\"} 7\n" +
		"adapt_test_bytes_total{kind=\"b\"} 9\n" +
		"# HELP adapt_test_escape_total help with \\\\ backslash\n" +
		"# TYPE adapt_test_escape_total counter\n" +
		"adapt_test_escape_total{msg=\"say \\\"hi\\\"\\nC:\\\\x\"} 0\n" +
		"# HELP adapt_test_latency_ns request latency\n" +
		"# TYPE adapt_test_latency_ns histogram\n" +
		"adapt_test_latency_ns_bucket{le=\"3\"} 2\n" +
		"adapt_test_latency_ns_bucket{le=\"21\"} 3\n" +
		"adapt_test_latency_ns_bucket{le=\"319\"} 4\n" +
		"adapt_test_latency_ns_bucket{le=\"+Inf\"} 4\n" +
		"adapt_test_latency_ns_sum 326\n" +
		"adapt_test_latency_ns_count 4\n" +
		"# HELP adapt_test_queue live queue depth\n" +
		"# TYPE adapt_test_queue gauge\n" +
		"adapt_test_queue 5\n"
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// sampleLine matches one exposition sample: name, optional label set,
// integer value. The same shape ParseExposition (adaptctl) accepts.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9]+$`)

// TestPrometheusParses renders a registry with every metric kind under
// load and checks each line is well-formed and HELP appears exactly
// once per name. (The daemon's full default registry gets the same
// check end-to-end in the serve admin test and the bench obs gate.)
func TestPrometheusParses(t *testing.T) {
	withTelemetry(t, true)
	r := NewRegistry()
	for i, kind := range []string{"alpha", "beta", "gamma"} {
		r.NewCounter("t_parse_reqs_total", "requests", Label{"kind", kind}).Add(uint64(i * 3))
		h := r.NewHistogram("t_parse_lat_ns", "latency", Label{"kind", kind})
		for v := uint64(1); v < 1<<20; v *= 7 {
			h.Observe(v)
		}
	}
	r.NewGauge("t_parse_depth", "depth").Set(-4)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	helped := map[string]int{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			helped[strings.Fields(line)[2]]++
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("malformed sample line: %q", line)
		}
	}
	for name, n := range helped {
		if n != 1 {
			t.Errorf("HELP for %s appears %d times", name, n)
		}
	}
}

// TestDuplicateRegistrationPanics pins the identity check: two metrics
// with the same (name, labels) is a programming error, caught at init.
func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("t_dup", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewCounter("t_dup", "second")
}
