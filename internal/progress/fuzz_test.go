package progress

import (
	"testing"
	"time"

	"adapt/internal/comm"
	"adapt/internal/trace"
)

// FuzzMatch drives the matching core through random interleavings of
// recv posts (concrete and wildcard), eager and rendezvous arrivals,
// duplicate transmissions, and cancellations, then checks the invariants
// every substrate depends on:
//
//   - an accepted envelope is matched EXACTLY once — never zero times
//     (lost message), never twice (double delivery);
//   - with DedupXids, a replayed transmission id is always suppressed;
//   - the unexpected queue fully drains once enough wildcard receives
//     are posted — nothing parks forever;
//   - after the drain and cancellations, no operations remain in flight.
//
// The script is single-threaded (substrate-owner discipline), so Block
// must never fire.
func FuzzMatch(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 2, 3, 1, 0, 0, 3, 2, 1})          // post, arrive, wildcard, rdv
	f.Add([]byte{1, 2, 0, 0, 2, 1, 1, 4, 3, 3, 5, 0, 0})       // dedup mode with a replay
	f.Add([]byte{0, 5, 1, 1, 0, 0, 0, 2, 3, 3, 1, 2, 4, 0, 1}) // cancel racing a match
	// cancel-then-rendezvous-then-cancel: a retracted receive must read
	// back ErrCanceled, the freed slot must not swallow the later
	// rendezvous, and a second cancel after the match must lose.
	f.Add([]byte{0, 0, 1, 2, 5, 0, 0, 3, 1, 2, 1, 0, 2, 5, 1, 0, 2, 1, 2, 0, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		dedup := data[0]&1 == 1
		script := data[1:]

		matched := map[*Env]int{}
		onMatch := func(req *Req, env *Env, wasUnexpected bool) {
			matched[env]++
			if matched[env] > 1 {
				t.Fatalf("envelope %p matched %d times", env, matched[env])
			}
			if env.Rts != nil {
				env.Rts.Complete(comm.Status{Source: env.Src, Tag: env.Tag})
			}
			req.Complete(comm.Status{Source: env.Src, Tag: env.Tag, Msg: env.Msg})
		}
		eng := New(Backend{
			Prefix: "fuzz", Rank: 0,
			Now:       func() time.Duration { return 0 },
			Trace:     func() *trace.Buffer { return nil },
			Wake:      func() {},
			Block:     func() { t.Fatal("single-threaded script must never block") },
			OnMatch:   onMatch,
			DedupXids: dedup,
		})

		var recvs []*Req   // every posted receive
		var arrived []*Env // envelopes the engine accepted (not suppressed)
		var xid uint64

		for i := 0; i+2 < len(script); i += 3 {
			op, a, b := script[i], script[i+1], script[i+2]
			src := int(a % 4)
			tag := comm.Tag(b % 4)
			switch op % 6 {
			case 0: // concrete receive
				recvs = append(recvs, eng.PostRecv(src, tag, comm.MemDefault))
			case 1: // wildcard receive (any-source, maybe any-tag)
				tg := tag
				if a&1 == 0 {
					tg = comm.AnyTag
				}
				recvs = append(recvs, eng.PostRecv(comm.AnySource, tg, comm.MemDefault))
			case 2: // eager arrival, fresh transmission id
				xid++
				env := &Env{Src: src, Tag: tag, Msg: comm.Msg{Size: 16}, Xid: xid}
				switch eng.Arrive(env) {
				case ArriveMatched:
					if matched[env] != 1 {
						t.Fatal("ArriveMatched without OnMatch")
					}
					arrived = append(arrived, env)
				case ArriveParked:
					arrived = append(arrived, env)
				default:
					t.Fatal("fresh arrival neither matched nor parked")
				}
			case 3: // rendezvous arrival carrying its sender's request
				xid++
				send := eng.StartSend(0, tag, 1<<20)
				env := &Env{Src: src, Tag: tag, Msg: comm.Msg{Size: 1 << 20},
					Rts: send, Rdv: true, Xid: xid}
				if res := eng.Arrive(env); res == ArriveMatched || res == ArriveParked {
					arrived = append(arrived, env)
					if _, ok := send.Test(); res == ArriveMatched && !ok {
						t.Fatal("matched rendezvous left its send incomplete")
					}
				} else {
					t.Fatal("fresh rendezvous neither matched nor parked")
				}
			case 4: // duplicate: replay an already-used transmission id
				if xid == 0 {
					continue
				}
				old := uint64(a)%xid + 1
				env := &Env{Src: src, Tag: tag, Msg: comm.Msg{Size: 16}, Xid: old}
				res := eng.Arrive(env)
				if dedup {
					if res != ArriveDuplicate {
						t.Fatalf("replayed xid %d came back %v, want suppressed", old, res)
					}
				} else if res == ArriveMatched || res == ArriveParked {
					arrived = append(arrived, env) // without dedup it is a real message
				}
			case 5: // cancel a receive; both outcomes (retracted, too late) legal
				if len(recvs) == 0 {
					continue
				}
				r := recvs[int(a)%len(recvs)]
				retracted := eng.CancelRecv(r)
				st, settled := r.Test()
				if retracted && (!settled || st.Err != ErrCanceled) {
					t.Fatalf("retracted receive reads %+v settled=%v, want ErrCanceled", st, settled)
				}
			}
		}

		// Quiesce: wildcard receives must drain every parked envelope.
		for guard := 0; ; guard++ {
			_, _, unexpected := eng.Snapshot()
			if len(unexpected) == 0 {
				break
			}
			if guard > len(script)+8 {
				t.Fatalf("unexpected queue stuck at %d envelopes", len(unexpected))
			}
			if _, ok := eng.PostRecv(comm.AnySource, comm.AnyTag, comm.MemDefault).Test(); !ok {
				t.Fatal("wildcard receive failed to consume a parked envelope")
			}
		}
		for _, env := range arrived {
			if matched[env] != 1 {
				t.Fatalf("accepted envelope matched %d times, want exactly once", matched[env])
			}
		}
		// Retire unmatched receives; nothing may remain in flight.
		for _, r := range recvs {
			if _, ok := r.Test(); !ok {
				eng.CancelRecv(r)
			}
		}
		if p := eng.Pending(); p != 0 {
			t.Fatalf("quiesced engine reports %d operations in flight", p)
		}
	})
}
