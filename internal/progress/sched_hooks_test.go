package progress_test

import (
	"sync/atomic"
	"testing"
	"time"

	"adapt/internal/comm"
	"adapt/internal/core"
	"adapt/internal/progress"
	"adapt/internal/runtime"
	"adapt/internal/trees"
)

// TestSchedulerAdmissionHooks pins the serving-layer contract on the
// scheduler: Live counts unfinished operations (the admission signal),
// Compact releases completed items so a persistent scheduler stays
// bounded, and Poke wakes a blocked driver from a foreign goroutine so
// newly queued work is noticed without a completion event.
func TestSchedulerAdmissionHooks(t *testing.T) {
	const (
		mOps = 3
		size = 64_000 // rendezvous-sized: root ops stay pending until the peer receives
	)
	w := runtime.NewWorld(2)
	tree := trees.Flat(2, 0)
	root := w.Rank(0)

	sched := progress.NewScheduler()
	if got := sched.Live(); got != 0 {
		t.Fatalf("empty scheduler Live = %d, want 0", got)
	}
	if got := sched.Compact(); got != 0 {
		t.Fatalf("empty scheduler Compact = %d, want 0", got)
	}

	for m := 0; m < mOps; m++ {
		opt := core.DefaultOptions()
		opt.Seq = m
		op := core.StartBcast(root, tree, comm.Bytes(pattern(size, byte(m))), opt)
		sched.Add(&progress.Scheduled{C: root, Op: op})
	}
	if got := sched.Live(); got != mOps {
		t.Fatalf("Live = %d after enrolling %d pending ops", got, mOps)
	}

	// The driver parks: nothing can advance until rank 1 receives. Poke
	// from this goroutine must get it past the notifier wait so it
	// re-checks its predicate.
	released := make(chan struct{})
	var stop atomic.Bool
	go func() {
		defer close(released)
		sched.DriveUntil(func() bool { return stop.Load() })
	}()
	time.Sleep(20 * time.Millisecond) // let the driver reach the blocked state
	stop.Store(true)
	sched.Poke()
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("Poke did not release a parked DriveUntil")
	}

	// Let rank 1 receive everything, then finish the drive and compact.
	peerDone := make(chan struct{})
	go func() {
		defer close(peerDone)
		c := w.Rank(1)
		for m := 0; m < mOps; m++ {
			opt := core.DefaultOptions()
			opt.Seq = m
			core.Bcast(c, tree, comm.Sized(size), opt)
		}
	}()
	sched.Drive()
	<-peerDone
	if got := sched.Live(); got != 0 {
		t.Fatalf("Live = %d after Drive, want 0", got)
	}
	if got := sched.Compact(); got != mOps {
		t.Fatalf("Compact released %d items, want %d", got, mOps)
	}
	if got := len(sched.Items()); got != 0 {
		t.Fatalf("Items() holds %d entries after Compact, want 0", got)
	}
}
