package progress

import (
	"adapt/internal/comm"
	"adapt/internal/metrics"
)

// Scheduler health telemetry (DESIGN.md §15), aggregated across every
// scheduler instance in the process: per-rank executors in the serving
// layer all feed the same counters, which is the operator view — "is
// the progress plane spinning, stalling, or parked". Every site is
// gated: one atomic load per tick when telemetry is off.
var (
	mSchedTicks = metrics.NewCounter("adapt_progress_sched_ticks_total",
		"fair round-robin scheduling rounds executed")
	mSchedStalls = metrics.NewCounter("adapt_progress_sched_stalls_total",
		"rounds that advanced no operation (the starvation-gate trip signal)")
	mSchedParks = metrics.NewCounter("adapt_progress_sched_parks_total",
		"times a driver blocked on the shared notifier with work in flight")
	mSchedDepth = metrics.NewHistogram("adapt_progress_sched_depth",
		"live operations enrolled on a scheduler, observed at each Add")
)

// Notifier is a one-token wake channel shared across engines: each
// wake-worthy event (completion, parked arrival, notice) on any attached
// engine deposits the token, and a scheduler blocked in Wait consumes
// it. The token coalesces bursts — one wake may cover many events, so
// consumers must re-scan their work after every Wait.
type Notifier struct {
	ch chan struct{}
}

// NewNotifier builds an unarmed notifier.
func NewNotifier() *Notifier {
	return &Notifier{ch: make(chan struct{}, 1)}
}

// Signal deposits the wake token; never blocks.
func (n *Notifier) Signal() {
	select {
	case n.ch <- struct{}{}:
	default:
	}
}

// Wait blocks until a Signal lands (or consumes one already deposited).
func (n *Notifier) Wait() { <-n.ch }

// Op is a driveable operation: anything with completion detection. The
// non-blocking collectives in internal/core satisfy it.
type Op interface {
	Done() bool
}

// notifierAttacher is the optional substrate hook the scheduler uses to
// block across many communicators at once. Every substrate Comm in this
// repository implements it; foreign comm.Comm implementations fall back
// to single-comm blocking.
type notifierAttacher interface {
	AttachProgressNotifier(*Notifier)
}

// Scheduled is one operation under a scheduler's care, with the
// communicator whose progress loop advances it.
type Scheduled struct {
	C  comm.Comm
	Op Op

	// DoneTick records the Drive tick on which the operation was first
	// observed complete (0 until then) — the fairness tests pin the
	// round-robin contract with it.
	DoneTick int
}

// Scheduler drives many concurrent operations — on one communicator or
// across several — with fair round-robin service: every tick visits
// every unfinished operation once, starting one position later than the
// previous tick, so a long rendezvous transfer on one communicator
// cannot starve small collectives on another. When a full round makes no
// progress the scheduler blocks on a shared Notifier (or, for
// communicators without one, on the first unfinished operation's
// blocking Progress) instead of spinning.
type Scheduler struct {
	items    []*Scheduled
	notifier *Notifier
	allWired bool // every communicator accepted the notifier
	rr       int  // rotating round-robin start index

	// Ticks counts scheduling rounds; monotone across Drive calls.
	Ticks int
}

// NewScheduler adopts the given operations. Communicators that support
// notifier attachment (all three substrates here) are wired to a shared
// Notifier so Drive can block across all of them at once.
func NewScheduler(items ...*Scheduled) *Scheduler {
	s := &Scheduler{items: items, notifier: NewNotifier(), allWired: true}
	seen := make(map[comm.Comm]bool)
	for _, it := range items {
		if seen[it.C] {
			continue
		}
		seen[it.C] = true
		if na, ok := it.C.(notifierAttacher); ok {
			na.AttachProgressNotifier(s.notifier)
		} else {
			s.allWired = false
		}
	}
	return s
}

// Add enrolls another operation mid-flight.
func (s *Scheduler) Add(it *Scheduled) {
	if na, ok := it.C.(notifierAttacher); ok {
		na.AttachProgressNotifier(s.notifier)
	} else {
		s.allWired = false
	}
	s.items = append(s.items, it)
	if metrics.Enabled() {
		mSchedDepth.Observe(uint64(s.Live()))
	}
}

// Items exposes the scheduled operations (completion ticks included).
func (s *Scheduler) Items() []*Scheduled { return s.items }

// Live returns the number of enrolled operations not yet observed
// complete — the admission-control signal a serving layer bounds its
// in-flight work with.
func (s *Scheduler) Live() int {
	n := 0
	for _, it := range s.items {
		if it.Op != nil && it.DoneTick == 0 {
			n++
		}
	}
	return n
}

// Poke deposits the wake token so a Drive/DriveUntil blocked in the
// notifier re-checks its predicate. Unlike every other method it is safe
// from any goroutine — producers use it to hand new work to a driver
// parked with nothing in flight advancing.
func (s *Scheduler) Poke() { s.notifier.Signal() }

// Compact drops completed operations so a long-lived scheduler serving
// an endless request stream does not grow without bound. Returns how
// many items were released. Owner-goroutine only, like Drive.
func (s *Scheduler) Compact() int {
	kept := s.items[:0]
	for _, it := range s.items {
		if it.Op != nil && it.DoneTick == 0 {
			kept = append(kept, it)
		}
	}
	removed := len(s.items) - len(kept)
	for i := len(kept); i < len(s.items); i++ {
		s.items[i] = nil
	}
	s.items = kept
	if len(s.items) == 0 {
		s.rr = 0
	}
	return removed
}

// step runs one fair round: visit every unfinished operation once,
// rotating the start index, firing each communicator's ready callbacks.
// Returns how many operations remain and whether any completed.
func (s *Scheduler) step() (remaining int, advanced bool) {
	n := len(s.items)
	s.Ticks++
	mSchedTicks.Inc()
	start := s.rr
	s.rr++
	for k := 0; k < n; k++ {
		it := s.items[(start+k)%n]
		if it.Op == nil || it.DoneTick != 0 {
			continue
		}
		it.C.TryProgress()
		if it.Op.Done() {
			it.DoneTick = s.Ticks
			advanced = true
			continue
		}
		remaining++
	}
	return remaining, advanced
}

// Drive runs the scheduler until every operation completes.
func (s *Scheduler) Drive() {
	for {
		remaining, advanced := s.step()
		if remaining == 0 {
			return
		}
		if advanced {
			continue
		}
		mSchedStalls.Inc()
		if s.allWired {
			mSchedParks.Inc()
			s.notifier.Wait()
			continue
		}
		// Fallback: block on one unfinished operation's communicator. Its
		// Progress both parks correctly on every substrate (including the
		// simulator, whose procs cannot block on channels) and fires that
		// communicator's callbacks; the next round rescans the rest.
		for _, it := range s.items {
			if it.Op != nil && it.DoneTick == 0 {
				it.C.Progress()
				break
			}
		}
	}
}

// DriveUntil runs the scheduler until pred returns true (checked once
// per tick) or every operation completes.
func (s *Scheduler) DriveUntil(pred func() bool) {
	for !pred() {
		remaining, advanced := s.step()
		if remaining == 0 {
			return
		}
		if advanced {
			continue
		}
		mSchedStalls.Inc()
		if s.allWired {
			mSchedParks.Inc()
			s.notifier.Wait()
			continue
		}
		for _, it := range s.items {
			if it.Op != nil && it.DoneTick == 0 {
				it.C.Progress()
				break
			}
		}
	}
}
