package progress_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"adapt/internal/comm"
	"adapt/internal/core"
	"adapt/internal/progress"
	"adapt/internal/runtime"
	"adapt/internal/trees"
)

// BenchmarkMultiCollective is the shared-progress-engine gate: one rank-0
// scheduler drives N communicators × M concurrent broadcasts per
// iteration while the other ranks run blocking waits. It reports
// throughput ("ops/s": collective completions per wall second) and tail
// latency ("p99-ns": 99th-percentile per-operation completion time),
// which scripts/bench.sh captures into BENCH_progress.json.
func BenchmarkMultiCollective(b *testing.B) {
	for _, cfg := range []struct{ comms, ops int }{
		{1, 4},
		{4, 4},
		{8, 8},
	} {
		b.Run(fmt.Sprintf("c%dxm%d", cfg.comms, cfg.ops), func(b *testing.B) {
			benchMultiCollective(b, cfg.comms, cfg.ops)
		})
	}
}

func benchMultiCollective(b *testing.B, nComms, mOps int) {
	const (
		ranks = 4
		size  = 32 << 10 // rendezvous-size: exercises RTS/CTS under load
	)
	tree := trees.Binomial(ranks, 0)
	worlds := make([]*runtime.World, nComms)
	for i := range worlds {
		worlds[i] = runtime.NewWorld(ranks)
	}

	// Non-root ranks: plain blocking participants, one goroutine each.
	var wg sync.WaitGroup
	for wi := 0; wi < nComms; wi++ {
		for r := 1; r < ranks; r++ {
			wg.Add(1)
			go func(wi, r int) {
				defer wg.Done()
				c := worlds[wi].Rank(r)
				ops := make([]*core.Op, mOps)
				for iter := 0; iter < b.N; iter++ {
					for m := 0; m < mOps; m++ {
						opt := core.DefaultOptions()
						opt.Seq = iter*mOps + m
						ops[m] = core.StartBcast(c, tree, comm.Sized(size), opt)
					}
					for _, op := range ops {
						op.Wait()
					}
				}
			}(wi, r)
		}
	}

	lat := make([]time.Duration, 0, b.N*nComms*mOps)
	b.ResetTimer()
	start := time.Now()
	for iter := 0; iter < b.N; iter++ {
		items := make([]*progress.Scheduled, 0, nComms*mOps)
		for wi := 0; wi < nComms; wi++ {
			c := worlds[wi].Rank(0)
			for m := 0; m < mOps; m++ {
				opt := core.DefaultOptions()
				opt.Seq = iter*mOps + m
				items = append(items, &progress.Scheduled{
					C:  c,
					Op: core.StartBcast(c, tree, comm.Sized(size), opt),
				})
			}
		}
		sched := progress.NewScheduler(items...)
		t0 := time.Now()
		times := make([]time.Duration, len(items))
		done := 0
		sched.DriveUntil(func() bool {
			for i, it := range items {
				if times[i] == 0 && it.DoneTick != 0 {
					times[i] = time.Since(t0)
					done++
				}
			}
			return done == len(items)
		})
		now := time.Since(t0)
		for i := range times {
			if times[i] == 0 {
				times[i] = now
			}
		}
		lat = append(lat, times...)
	}
	elapsed := time.Since(start)
	b.StopTimer()
	wg.Wait()

	total := b.N * nComms * mOps
	b.ReportMetric(float64(total)/elapsed.Seconds(), "ops/s")
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[len(lat)*99/100]
	b.ReportMetric(float64(p99.Nanoseconds()), "p99-ns")
}
