package progress

import (
	"sync"
	"testing"
	"time"

	"adapt/internal/comm"
)

// eagerEngine builds a minimal eager-delivery engine: OnMatch completes
// the receive immediately, like a substrate delivering a buffered
// payload.
func eagerEngine(t *testing.T, blockFatal bool) *Engine {
	t.Helper()
	block := func() {}
	if blockFatal {
		block = func() { t.Fatal("test script must never block") }
	}
	return New(Backend{
		Prefix: "canceltest", Rank: 0,
		Now:   func() time.Duration { return 0 },
		Wake:  func() {},
		Block: block,
		OnMatch: func(req *Req, env *Env, wasUnexpected bool) {
			req.Complete(comm.Status{Source: env.Src, Tag: env.Tag, Msg: env.Msg})
		},
	})
}

// TestCancelStatusDistinguishable pins the ErrCanceled contract: a
// retracted receive reads back done with a typed error, not a status
// identical to a successful zero-byte receive from rank 0.
func TestCancelStatusDistinguishable(t *testing.T) {
	eng := eagerEngine(t, true)
	req := eng.PostRecv(comm.AnySource, comm.AnyTag, comm.MemDefault)
	if !eng.CancelRecv(req) {
		t.Fatal("cancel of an unmatched posted receive must succeed")
	}
	st, done := req.Test()
	if !done {
		t.Fatal("canceled receive must read back done")
	}
	if st.Err != ErrCanceled {
		t.Fatalf("canceled receive status error = %v, want ErrCanceled", st.Err)
	}
	if p := eng.Pending(); p != 0 {
		t.Fatalf("pending ops after cancel = %d, want 0", p)
	}
}

// TestCancelAfterMatchTooLate: the envelope wins, the late cancel
// reports false, and the delivered status is untouched.
func TestCancelAfterMatchTooLate(t *testing.T) {
	eng := eagerEngine(t, true)
	req := eng.PostRecv(3, comm.Tag(7), comm.MemDefault)
	if res := eng.Arrive(&Env{Src: 3, Tag: comm.Tag(7), Msg: comm.Msg{Size: 16}}); res != ArriveMatched {
		t.Fatalf("arrival = %v, want ArriveMatched", res)
	}
	if eng.CancelRecv(req) {
		t.Fatal("cancel after match must report false")
	}
	st, done := req.Test()
	if !done || st.Err != nil || st.Source != 3 {
		t.Fatalf("matched receive status = %+v done=%v, want clean completion from rank 3", st, done)
	}
}

// TestCancelWhileMatching pins the mid-match window directly: a
// substrate whose OnMatch completes asynchronously (wire rendezvous —
// the payload is still across the socket) leaves the receive neither
// posted nor done. A Cancel landing in that window must lose to the
// match, and the deferred completion must then land exactly once.
func TestCancelWhileMatching(t *testing.T) {
	var deferred *Req
	eng := New(Backend{
		Prefix: "canceltest", Rank: 0,
		Now:   func() time.Duration { return 0 },
		Wake:  func() {},
		Block: func() { t.Fatal("test script must never block") },
		OnMatch: func(req *Req, env *Env, wasUnexpected bool) {
			deferred = req // delivery completes later, like a CTS/data exchange
		},
	})
	req := eng.PostRecv(1, comm.Tag(5), comm.MemDefault)
	if res := eng.Arrive(&Env{Src: 1, Tag: comm.Tag(5), Msg: comm.Msg{Size: 1 << 20}, Rdv: true}); res != ArriveMatched {
		t.Fatalf("arrival = %v, want ArriveMatched", res)
	}
	if deferred != req {
		t.Fatal("OnMatch did not receive the posted request")
	}
	if _, done := req.Test(); done {
		t.Fatal("mid-match request must not be done yet")
	}
	if eng.CancelRecv(req) {
		t.Fatal("cancel inside the mid-match window must lose to the match")
	}
	deferred.Complete(comm.Status{Source: 1, Tag: comm.Tag(5), Msg: comm.Msg{Size: 1 << 20}})
	st, done := req.Test()
	if !done || st.Err != nil {
		t.Fatalf("deferred completion after refused cancel: status %+v done=%v", st, done)
	}
	if p := eng.Pending(); p != 0 {
		t.Fatalf("pending ops = %d, want 0", p)
	}
}

// TestCancelVsArriveExactlyOnce races a concurrent Cancel against an
// arriving envelope, many rounds, and asserts the exactly-once
// settlement contract: either the cancel wins (typed ErrCanceled, the
// envelope parks unexpected) or the match wins (clean delivery, cancel
// reports false) — never both, never neither, never a double
// completion (Complete panics on one).
func TestCancelVsArriveExactlyOnce(t *testing.T) {
	rounds := 3000
	if testing.Short() {
		rounds = 500
	}
	for i := 0; i < rounds; i++ {
		eng := eagerEngine(t, false)
		req := eng.PostRecv(1, comm.Tag(9), comm.MemDefault)
		var (
			wg       sync.WaitGroup
			canceled bool
			arrive   ArriveResult
		)
		wg.Add(2)
		go func() {
			defer wg.Done()
			arrive = eng.Arrive(&Env{Src: 1, Tag: comm.Tag(9), Msg: comm.Msg{Size: 8}})
		}()
		go func() {
			defer wg.Done()
			canceled = eng.CancelRecv(req)
		}()
		wg.Wait()

		st, done := req.Test()
		if !done {
			t.Fatal("request neither completed nor canceled")
		}
		if canceled {
			if st.Err != ErrCanceled {
				t.Fatalf("round %d: cancel won but status error = %v", i, st.Err)
			}
			if arrive != ArriveParked {
				t.Fatalf("round %d: cancel won but arrival = %v, want ArriveParked", i, arrive)
			}
			// Drain the parked envelope so the engine quiesces.
			if _, ok := eng.PostRecv(comm.AnySource, comm.AnyTag, comm.MemDefault).Test(); !ok {
				t.Fatalf("round %d: parked envelope not consumed by wildcard", i)
			}
		} else {
			if st.Err != nil {
				t.Fatalf("round %d: match won but status error = %v", i, st.Err)
			}
			if arrive != ArriveMatched {
				t.Fatalf("round %d: match won but arrival = %v, want ArriveMatched", i, arrive)
			}
		}
		if p := eng.Pending(); p != 0 {
			t.Fatalf("round %d: pending ops = %d, want 0", i, p)
		}
	}
}
