package progress_test

import (
	"bytes"
	"sync"
	"testing"

	"adapt/internal/comm"
	"adapt/internal/core"
	"adapt/internal/progress"
	"adapt/internal/runtime"
	"adapt/internal/trees"
)

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i*7)
	}
	return b
}

// TestSchedulerManyCommunicators drives N communicators × M concurrent
// broadcasts from a single scheduler on rank 0 while the other ranks run
// ordinary blocking Waits. Every operation must complete and every child
// must see the root's bytes — the "one engine, many collectives, many
// communicators" contract end to end.
func TestSchedulerManyCommunicators(t *testing.T) {
	const (
		nComms = 4
		mOps   = 4
		ranks  = 3
		size   = 40_000
	)
	tree := trees.Flat(ranks, 0)
	worlds := make([]*runtime.World, nComms)
	for i := range worlds {
		worlds[i] = runtime.NewWorld(ranks)
	}
	want := pattern(size, 3)

	// Non-root ranks: one goroutine per (world, rank) waiting its ops.
	var wg sync.WaitGroup
	var mu sync.Mutex
	got := map[[3]int][]byte{} // (world, rank, op) -> received bytes
	for wi := range worlds {
		for r := 1; r < ranks; r++ {
			wg.Add(1)
			go func(wi, r int) {
				defer wg.Done()
				c := worlds[wi].Rank(r)
				ops := make([]*core.Op, mOps)
				for m := 0; m < mOps; m++ {
					opt := core.DefaultOptions()
					opt.Seq = m
					ops[m] = core.StartBcast(c, tree, comm.Sized(size), opt)
				}
				for m, op := range ops {
					out := op.Wait()
					mu.Lock()
					got[[3]int{wi, r, m}] = out.Data
					mu.Unlock()
				}
			}(wi, r)
		}
	}

	// Rank 0 everywhere: every root share under ONE scheduler.
	var items []*progress.Scheduled
	for wi := range worlds {
		c := worlds[wi].Rank(0)
		for m := 0; m < mOps; m++ {
			opt := core.DefaultOptions()
			opt.Seq = m
			op := core.StartBcast(c, tree, comm.Bytes(append([]byte(nil), want...)), opt)
			items = append(items, &progress.Scheduled{C: c, Op: op})
		}
	}
	sched := progress.NewScheduler(items...)
	sched.Drive()
	wg.Wait()

	for i, it := range items {
		if it.DoneTick == 0 {
			t.Fatalf("item %d never completed", i)
		}
	}
	for wi := 0; wi < nComms; wi++ {
		for r := 1; r < ranks; r++ {
			for m := 0; m < mOps; m++ {
				if !bytes.Equal(got[[3]int{wi, r, m}], want) {
					t.Fatalf("world %d rank %d op %d: payload corrupted", wi, r, m)
				}
			}
		}
	}
}

// TestSchedulerNoStarvation is the fairness gate: a large rendezvous
// broadcast is parked in flight (its receiver is deliberately withheld
// behind a gate, so it CANNOT complete), and small broadcasts on a
// different communicator must still complete within a bounded number of
// scheduler ticks. A scheduler that waited on the big transfer before
// servicing anything else would hang here; one that spun without fair
// rotation would blow the tick budget.
func TestSchedulerNoStarvation(t *testing.T) {
	const (
		mSmall    = 6
		smallSize = 1 << 10
		bigSize   = 1 << 20
	)
	wA := runtime.NewWorld(2) // big rendezvous world, root 0
	wB := runtime.NewWorld(2) // small bcast world, root 1 (rank 0 receives)
	treeA := trees.Flat(2, 0)
	treeB := trees.Flat(2, 1)
	smallWant := pattern(smallSize, 11)
	bigWant := pattern(bigSize, 29)

	gate := make(chan struct{}) // holds back the big transfer's receiver
	var wg sync.WaitGroup
	var bigGot []byte
	wg.Add(1)
	go func() { // rank 1 on both worlds
		defer wg.Done()
		for i := 0; i < mSmall; i++ {
			opt := core.DefaultOptions()
			opt.Seq = i
			core.StartBcast(wB.Rank(1), treeB, comm.Bytes(append([]byte(nil), smallWant...)), opt).Wait()
		}
		<-gate
		bigGot = core.StartBcast(wA.Rank(1), treeA, comm.Sized(bigSize), core.DefaultOptions()).Wait().Data
	}()

	big := &progress.Scheduled{
		C:  wA.Rank(0),
		Op: core.StartBcast(wA.Rank(0), treeA, comm.Bytes(append([]byte(nil), bigWant...)), core.DefaultOptions()),
	}
	items := []*progress.Scheduled{big}
	for i := 0; i < mSmall; i++ {
		opt := core.DefaultOptions()
		opt.Seq = i
		items = append(items, &progress.Scheduled{
			C:  wB.Rank(0),
			Op: core.StartBcast(wB.Rank(0), treeB, comm.Sized(smallSize), opt),
		})
	}
	sched := progress.NewScheduler(items...)
	smalls := items[1:]
	sched.DriveUntil(func() bool {
		for _, it := range smalls {
			if it.DoneTick == 0 {
				return false
			}
		}
		return true
	})

	// Every small completed while the big transfer was provably parked.
	if big.DoneTick != 0 {
		t.Fatal("gated rendezvous reported complete — the gate is broken, test proves nothing")
	}
	const tickBudget = 8*mSmall + 16
	for i, it := range smalls {
		if it.DoneTick == 0 {
			t.Fatalf("small op %d starved: not complete when DriveUntil returned", i)
		}
		if it.DoneTick > tickBudget {
			t.Errorf("small op %d took %d ticks (budget %d): rendezvous starved it", i, it.DoneTick, tickBudget)
		}
	}

	// Release the receiver; the big transfer must now finish normally.
	close(gate)
	sched.Drive()
	wg.Wait()
	if big.DoneTick == 0 {
		t.Fatal("big transfer never completed after gate release")
	}
	if !bytes.Equal(bigGot, bigWant) {
		t.Fatal("big transfer payload corrupted")
	}
}

// TestSchedulerAddMidFlight enrolls a new operation while the scheduler
// is already blocked-capable and checks it completes too.
func TestSchedulerAddMidFlight(t *testing.T) {
	const size = 2 << 10
	w := runtime.NewWorld(2)
	tree := trees.Flat(2, 0)
	want := pattern(size, 5)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2; i++ {
			opt := core.DefaultOptions()
			opt.Seq = i
			core.StartBcast(w.Rank(1), tree, comm.Sized(size), opt).Wait()
		}
	}()

	c := w.Rank(0)
	opt0 := core.DefaultOptions()
	first := &progress.Scheduled{C: c, Op: core.StartBcast(c, tree, comm.Bytes(append([]byte(nil), want...)), opt0)}
	sched := progress.NewScheduler(first)
	sched.DriveUntil(func() bool { return first.DoneTick != 0 })

	opt1 := core.DefaultOptions()
	opt1.Seq = 1
	second := &progress.Scheduled{C: c, Op: core.StartBcast(c, tree, comm.Bytes(append([]byte(nil), want...)), opt1)}
	sched.Add(second)
	sched.Drive()
	wg.Wait()
	if first.DoneTick == 0 || second.DoneTick == 0 {
		t.Fatalf("DoneTicks: first=%d second=%d, want both nonzero", first.DoneTick, second.DoneTick)
	}
	if second.DoneTick < first.DoneTick {
		t.Fatalf("mid-flight op finished (tick %d) before the op it was added after (tick %d)",
			second.DoneTick, first.DoneTick)
	}
}
