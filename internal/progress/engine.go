// Package progress is the one matching core shared by every substrate:
// the posted-receive queue, unexpected-message queue, tag matching,
// xid-based duplicate suppression, completion-callback delivery, and the
// blocking wait loops behind comm.Comm. The simulator (internal/simmpi),
// the live goroutine runtime (internal/runtime), and the TCP transport
// (internal/nettransport) each wrap one Engine per endpoint and supply a
// Backend describing how that substrate parks, wakes, and consumes a
// matched pair — eager payload hand-off, rendezvous grant, or simulated
// transfer scheduling. The MPI matching semantics live here, exactly
// once.
//
// Lock discipline: the Engine owns one mutex. Backend hooks divide into
// two classes. Wake may be invoked from any goroutine after the lock is
// released and must not block. OnMatch and Block are always invoked
// WITHOUT the engine lock held, so they may call back into the engine
// (complete a request, post a notice) and may take substrate locks of
// their own — a substrate lock may be held around engine calls, never
// the reverse.
package progress

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"adapt/internal/comm"
	"adapt/internal/trace"
)

// ErrCanceled is the status error of a receive retracted by CancelRecv.
// Before it existed a canceled request's Status was indistinguishable
// from a successful zero-byte receive from rank 0 — callers that kept a
// handle after canceling could mistake retraction for delivery.
var ErrCanceled = errors.New("progress: receive canceled")

// Env is a message (or its rendezvous announcement) at the receiver
// side. Substrates populate the fields they use: the simulator and the
// live runtime park the sender's request in Rts, the TCP transport marks
// Rdv and pairs grant/data frames by Xid.
type Env struct {
	Src int
	Tag comm.Tag
	Msg comm.Msg

	// Rts, when non-nil, is the sender's request for an in-address-space
	// rendezvous: the payload still lives in the sender's buffer and the
	// request completes when the receiver pulls it.
	Rts *Req

	// Rdv marks a wire rendezvous announcement (nettransport): the
	// payload is still across the socket and arrives as a data frame
	// pairing this envelope's Xid.
	Rdv bool

	// HasData records whether the transfer carries real bytes (a
	// payload-elided comm.Msg travels with only its logical size).
	HasData bool

	// Xid is the transmission id: duplicate-delivery suppression when the
	// Backend enables dedup, grant/data pairing on the wire.
	Xid uint64

	// Seq is the arrival order stamped by Arrive, for deterministic
	// diagnostics.
	Seq uint64

	// PostID carries the sender's SendPost trace record id for the
	// matched-receive Link edge. Zero when tracing is off.
	PostID uint64

	// Err, when non-nil, turns the envelope into a structured failure
	// notification: the transfer it announces is unrecoverable (e.g. an
	// erasure-coded group exhausted both its parity and its NACK-resend
	// budget), and the matching receive must complete with this error
	// instead of data. Failure envelopes flow through the same matching
	// core as data so ordering, wildcards and dedup apply uniformly.
	Err error
}

// Req implements comm.Request for every substrate.
type Req struct {
	eng    *Engine
	isSend bool
	done   bool

	// matching marks the window between an envelope being matched to
	// this receive (popped off a queue under the lock) and the match's
	// completion landing — OnMatch may deliver asynchronously, so the
	// request is neither posted nor done meanwhile. CancelRecv refuses
	// requests in this state explicitly: the match already won.
	matching bool

	status comm.Status
	cb     func(comm.Status)

	// Receive-side matching state.
	Src   int
	Tag   comm.Tag
	Space comm.MemSpace

	// Send-side state the substrates thread through the protocol.
	Dst int
	Msg comm.Msg // rendezvous send payload (referenced until granted)
	Xid uint64   // rendezvous transfer id (nettransport)

	// Causal trace ids (0 when tracing is off).
	PostID  uint64
	MatchID uint64
	DoneID  uint64
}

// Test reports the request's status without blocking.
func (r *Req) Test() (comm.Status, bool) {
	r.eng.mu.Lock()
	defer r.eng.mu.Unlock()
	return r.status, r.done
}

// IsSend reports whether this is a send-side request.
func (r *Req) IsSend() bool { return r.isSend }

// Done reports completion (lock-taking; used by substrate teardown).
func (r *Req) Done() bool {
	r.eng.mu.Lock()
	defer r.eng.mu.Unlock()
	return r.done
}

// Status returns the completion status; only meaningful once done.
func (r *Req) Status() comm.Status {
	r.eng.mu.Lock()
	defer r.eng.mu.Unlock()
	return r.status
}

// ArriveResult tells the substrate what Arrive did with an envelope, so
// crash/chaos wrappers can dispose of refused or duplicate copies.
type ArriveResult int

const (
	// ArriveMatched: a posted receive consumed the envelope (OnMatch ran).
	ArriveMatched ArriveResult = iota
	// ArriveParked: no posted receive matched; the envelope sits in the
	// unexpected queue.
	ArriveParked
	// ArriveDuplicate: an envelope with this Xid was already delivered.
	ArriveDuplicate
	// ArriveHalted: this endpoint crashed (fail-stop); the envelope was
	// not enqueued.
	ArriveHalted
)

// Backend is the substrate personality an Engine drives.
type Backend struct {
	// Prefix names the substrate in panic messages ("simmpi", "runtime",
	// "nettransport") so diagnostics keep their historical shape.
	Prefix string
	// Rank is this endpoint's rank, stamped on trace records.
	Rank int
	// Now supplies the substrate clock (virtual or wall).
	Now func() time.Duration
	// Trace returns the causal trace buffer, or nil when tracing is off.
	// Fetched per event: worlds attach buffers after construction.
	Trace func() *trace.Buffer
	// Wake unblocks the owner if it is parked in a wait loop. May run on
	// any goroutine, with or without the engine lock held; must not block.
	Wake func()
	// Block parks the owner until Wake. Called on the owner goroutine
	// without the engine lock held.
	Block func()
	// OnMatch consumes a matched (receive, envelope) pair: deliver the
	// payload, grant the rendezvous, or schedule the simulated transfer.
	// Called without the engine lock; must complete req exactly once
	// (possibly later, asynchronously). wasUnexpected reports that the
	// envelope waited in the unexpected queue (the simulator charges the
	// buffered-copy penalty for that).
	OnMatch func(req *Req, env *Env, wasUnexpected bool)
	// CauseOnComplete, when set, installs a completion record as the
	// causal context at completion time (the simulator's single-threaded
	// kernel completes in event context, which the owner observes
	// immediately). Otherwise the context advances when the owner
	// observes the completion — a fired callback or a returning Wait.
	CauseOnComplete bool
	// DedupXids enables receiver-side duplicate suppression for nonzero
	// envelope Xids (the live runtime's chaos transport). The TCP
	// transport leaves this off: its stream never duplicates, and its
	// Xids pair rendezvous frames instead.
	DedupXids bool
}

// Engine is one endpoint's matching core.
type Engine struct {
	b Backend

	mu             sync.Mutex
	posted         []*Req
	unexpected     []*Env
	cbQueue        []*Req
	completedCount uint64
	pendingOps     int
	arrivalSeq     uint64
	seen           map[uint64]struct{} // delivered xids (DedupXids)
	halted         bool                // fail-stop: this endpoint crashed

	// Control-plane notice queue (comm.FailStop).
	notices   []comm.Notice
	noticeSeq uint64

	// curCause is the rank's causal context: the record id of the latest
	// event the rank has observed. Owner-goroutine only, except under
	// CauseOnComplete where completion (same thread) writes it.
	curCause uint64

	// envFree recycles envelopes for the single-threaded simulator, whose
	// collectives push one envelope per segment per hop.
	envFree []*Env

	// notifier, when attached, is signalled alongside every Wake so a
	// Scheduler can multiplex wait loops across engines. Atomic because
	// wake reads it outside the engine lock while a scheduler on another
	// goroutine attaches.
	notifier atomic.Pointer[Notifier]
}

// New builds an engine around the given substrate personality.
func New(b Backend) *Engine {
	if b.Trace == nil {
		b.Trace = func() *trace.Buffer { return nil }
	}
	return &Engine{b: b}
}

// wake unparks the owner and pokes an attached scheduler notifier.
// Called after the engine lock is released.
func (e *Engine) wake() {
	e.b.Wake()
	if n := e.notifier.Load(); n != nil {
		n.Signal()
	}
}

// AttachNotifier registers n to be signalled on every wake-worthy event
// (completion, parked arrival, notice). Safe against concurrent wakes;
// the newly attached notifier is signalled once so a scheduler that
// attaches mid-flight never misses an event that just fired.
func (e *Engine) AttachNotifier(n *Notifier) {
	e.notifier.Store(n)
	n.Signal()
}

// Pending returns the number of operations in flight.
func (e *Engine) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pendingOps
}

// Snapshot copies the in-flight state for watchdog dumps: pending-op
// count, posted receives, parked unexpected envelopes.
func (e *Engine) Snapshot() (pending int, posted []*Req, unexpected []*Env) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pendingOps,
		append([]*Req(nil), e.posted...),
		append([]*Env(nil), e.unexpected...)
}

// NewEnv draws an envelope from the free-list (single-threaded
// substrates recycle envelopes through FreeEnv; concurrent ones build
// their own and never call this pair).
func (e *Engine) NewEnv(src int, tag comm.Tag, msg comm.Msg, rts *Req) *Env {
	if n := len(e.envFree); n > 0 {
		env := e.envFree[n-1]
		e.envFree = e.envFree[:n-1]
		*env = Env{Src: src, Tag: tag, Msg: msg, Rts: rts}
		return env
	}
	return &Env{Src: src, Tag: tag, Msg: msg, Rts: rts}
}

// FreeEnv returns a matched envelope to the free-list. Callers must have
// copied out every field they still need.
func (e *Engine) FreeEnv(env *Env) {
	*env = Env{}
	e.envFree = append(e.envFree, env)
}

// StartOp registers an anonymous send-side operation (device reductions,
// async copies): one operation in flight, no trace record.
func (e *Engine) StartOp() *Req {
	req := &Req{eng: e, isSend: true}
	e.mu.Lock()
	e.pendingOps++
	e.mu.Unlock()
	return req
}

// StartSend registers a send-side request: one operation in flight, a
// SendPost trace record, the destination recorded for the protocol.
func (e *Engine) StartSend(dst int, tag comm.Tag, size int) *Req {
	req := &Req{eng: e, isSend: true, Dst: dst, Tag: tag}
	if tb := e.b.Trace(); tb != nil {
		req.PostID = tb.Add(trace.Record{At: e.b.Now(), Rank: e.b.Rank, Kind: trace.SendPost,
			Peer: dst, Tag: tag, Size: size, Parent: e.curCause})
	}
	e.mu.Lock()
	e.pendingOps++
	e.mu.Unlock()
	return req
}

// PostRecv posts a receive matching (src, tag) into the given memory
// space. The unexpected queue is scanned first (MPI matching order); on
// a hit the envelope is consumed through OnMatch before PostRecv
// returns.
func (e *Engine) PostRecv(src int, tag comm.Tag, space comm.MemSpace) *Req {
	req := &Req{eng: e, Src: src, Tag: tag, Space: space}
	if tb := e.b.Trace(); tb != nil {
		req.PostID = tb.Add(trace.Record{At: e.b.Now(), Rank: e.b.Rank, Kind: trace.RecvPost,
			Peer: src, Tag: tag, Parent: e.curCause})
	}
	e.mu.Lock()
	e.pendingOps++
	for i, env := range e.unexpected {
		if req.matches(env) {
			e.unexpected = append(e.unexpected[:i:i], e.unexpected[i+1:]...)
			req.MatchID = env.PostID
			req.matching = true
			e.mu.Unlock()
			e.b.OnMatch(req, env, true)
			return req
		}
	}
	e.posted = append(e.posted, req)
	e.mu.Unlock()
	return req
}

func (r *Req) matches(env *Env) bool {
	return (r.Src == comm.AnySource || r.Src == env.Src) && r.Tag.Matches(env.Tag)
}

// Arrive processes an envelope reaching this endpoint: suppressed if a
// duplicate, refused if the endpoint crashed, matched against the posted
// queue (OnMatch runs before Arrive returns), or parked unexpected. The
// caller disposes of refused and duplicate envelopes.
func (e *Engine) Arrive(env *Env) ArriveResult {
	e.mu.Lock()
	if e.halted {
		e.mu.Unlock()
		return ArriveHalted
	}
	if e.b.DedupXids && env.Xid != 0 {
		if _, dup := e.seen[env.Xid]; dup {
			e.mu.Unlock()
			return ArriveDuplicate
		}
		if e.seen == nil {
			e.seen = make(map[uint64]struct{})
		}
		e.seen[env.Xid] = struct{}{}
	}
	e.arrivalSeq++
	env.Seq = e.arrivalSeq
	for i, req := range e.posted {
		if req.matches(env) {
			e.posted = append(e.posted[:i:i], e.posted[i+1:]...)
			req.MatchID = env.PostID
			req.matching = true
			e.mu.Unlock()
			e.b.OnMatch(req, env, false)
			return ArriveMatched
		}
	}
	e.unexpected = append(e.unexpected, env)
	e.mu.Unlock()
	e.wake() // wake a blocked Probe
	return ArriveParked
}

// completeLocked finishes req under the engine lock.
func (e *Engine) completeLocked(req *Req, st comm.Status) {
	req.done = true
	req.matching = false
	req.status = st
	if tb := e.b.Trace(); tb != nil {
		kind := trace.RecvDone
		if req.isSend {
			kind = trace.SendDone
		}
		req.DoneID = tb.Add(trace.Record{At: e.b.Now(), Rank: e.b.Rank, Kind: kind,
			Peer: st.Source, Tag: st.Tag, Size: st.Msg.Size,
			Parent: req.PostID, Link: req.MatchID})
		if e.b.CauseOnComplete && req.DoneID != 0 {
			// Single-threaded substrate: the rank cannot act on anything
			// older once this completion lands.
			e.curCause = req.DoneID
		}
	}
	e.completedCount++
	e.pendingOps--
	if req.cb != nil {
		e.cbQueue = append(e.cbQueue, req)
	}
}

// Complete finishes req and wakes the owner. Callable from any
// goroutine; panics on double completion.
func (r *Req) Complete(st comm.Status) {
	e := r.eng
	e.mu.Lock()
	if r.done {
		e.mu.Unlock()
		panic(e.b.Prefix + ": request completed twice")
	}
	e.completeLocked(r, st)
	e.mu.Unlock()
	e.wake()
}

// CompleteIfLive completes r unless it already finished — under chaos a
// late success can race a timeout failure (or vice versa); first wins.
func (r *Req) CompleteIfLive(st comm.Status) bool {
	e := r.eng
	e.mu.Lock()
	if r.done {
		e.mu.Unlock()
		return false
	}
	e.completeLocked(r, st)
	e.mu.Unlock()
	e.wake()
	return true
}

// drain fires queued callbacks on the owner goroutine until none remain.
// The completion a callback reacts to becomes the rank's causal context
// while it runs and persists afterwards, so both callback-posted
// operations and straight-line code after a Wait link back to the
// completion that released them.
func (e *Engine) drain() int {
	n := 0
	for {
		e.mu.Lock()
		batch := e.cbQueue
		e.cbQueue = nil
		e.mu.Unlock()
		if len(batch) == 0 {
			return n
		}
		for _, req := range batch {
			cb := req.cb
			req.cb = nil
			if req.DoneID != 0 {
				e.curCause = req.DoneID
			}
			cb(req.status)
		}
		n += len(batch)
	}
}

// DrainWhile fires queued callbacks one at a time while ok() holds,
// leaving the remainder queued, and returns how many fired. It exists
// for the flat (goroutine-free) rank driver: callbacks run in kernel
// event context at one virtual instant, but a callback may advance the
// rank's busy clock (a Compute charge), after which the REST of the
// queue must not fire until that clock — the flat driver re-arms a
// drain event there. The gate is re-evaluated before every callback
// because each one can change the verdict.
func (e *Engine) DrainWhile(ok func() bool) int {
	n := 0
	for ok() {
		e.mu.Lock()
		if len(e.cbQueue) == 0 {
			e.mu.Unlock()
			break
		}
		req := e.cbQueue[0]
		e.cbQueue = e.cbQueue[1:]
		e.mu.Unlock()
		cb := req.cb
		req.cb = nil
		if req.DoneID != 0 {
			e.curCause = req.DoneID
		}
		cb(req.status)
		n++
	}
	return n
}

// PendingCallbacks reports how many completion callbacks are queued but
// not yet fired (the flat driver re-arms a drain when nonzero).
func (e *Engine) PendingCallbacks() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cbQueue)
}

// observe installs a completion the owner just acted on as the causal
// context (no-op for CauseOnComplete substrates, which already did).
func (e *Engine) observe(doneID uint64) {
	if !e.b.CauseOnComplete && doneID != 0 {
		e.curCause = doneID
	}
}

// Wait blocks until r completes, firing ready callbacks meanwhile.
func (e *Engine) Wait(r comm.Request) comm.Status {
	req := r.(*Req)
	for {
		e.drain()
		e.mu.Lock()
		if req.done {
			st, doneID := req.status, req.DoneID
			e.mu.Unlock()
			e.observe(doneID)
			return st
		}
		e.mu.Unlock()
		e.b.Block()
	}
}

// WaitAll blocks until every request completes. nil entries (inactive
// handles, as with MPI_REQUEST_NULL) are skipped.
func (e *Engine) WaitAll(rs []comm.Request) {
	for {
		e.drain()
		alldone := true
		for _, r := range rs {
			if r == nil {
				continue
			}
			if _, ok := r.Test(); !ok {
				alldone = false
				break
			}
		}
		if alldone {
			// The rank proceeds only once every request has landed: the
			// latest completion (largest record id) is its causal context.
			var last uint64
			for _, r := range rs {
				if req, ok := r.(*Req); ok && req != nil && req.DoneID > last {
					last = req.DoneID
				}
			}
			e.observe(last)
			return
		}
		e.b.Block()
	}
}

// WaitAny blocks until some request completes and returns its index.
// nil entries are inactive and skipped; at least one entry must be live.
func (e *Engine) WaitAny(rs []comm.Request) (int, comm.Status) {
	live := false
	for _, r := range rs {
		if r != nil {
			live = true
			break
		}
	}
	if !live {
		panic(e.b.Prefix + ": WaitAny with no live request")
	}
	for {
		e.drain()
		for i, r := range rs {
			if r == nil {
				continue
			}
			if st, ok := r.Test(); ok {
				if req, ok := r.(*Req); ok {
					e.observe(req.DoneID)
				}
				return i, st
			}
		}
		e.b.Block()
	}
}

// OnComplete attaches fn to r; it fires on the owner goroutine from
// inside Progress or a Wait variant.
func (e *Engine) OnComplete(r comm.Request, fn func(comm.Status)) {
	req, ok := r.(*Req)
	if !ok || req.eng != e {
		panic(e.b.Prefix + ": OnComplete on foreign request")
	}
	e.mu.Lock()
	if req.cb != nil {
		e.mu.Unlock()
		panic(e.b.Prefix + ": request already has a callback")
	}
	req.cb = fn
	if req.done {
		// Already complete: queue the callback for the owner's next drain.
		// No wake — the owner is the caller, and every wait loop drains
		// before parking.
		e.cbQueue = append(e.cbQueue, req)
	}
	e.mu.Unlock()
}

// Progress blocks until at least one completion is processed, fires
// ready callbacks, and returns.
func (e *Engine) Progress() {
	e.mu.Lock()
	start := e.completedCount
	e.mu.Unlock()
	for {
		fired := e.drain()
		e.mu.Lock()
		advanced := e.completedCount > start
		pending := e.pendingOps
		e.mu.Unlock()
		if fired > 0 || advanced {
			return
		}
		if pending == 0 {
			panic(fmt.Sprintf("%s: rank %d progressing with no operation in flight", e.b.Prefix, e.b.Rank))
		}
		e.b.Block()
	}
}

// TryProgress fires ready callbacks without blocking.
func (e *Engine) TryProgress() bool {
	return e.drain() > 0
}

// Iprobe reports whether a matching message (or rendezvous
// announcement) has arrived without consuming it.
func (e *Engine) Iprobe(src int, tag comm.Tag) (comm.Status, bool) {
	probe := &Req{eng: e, Src: src, Tag: tag}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, env := range e.unexpected {
		if probe.matches(env) {
			return comm.Status{Source: env.Src, Tag: env.Tag,
				Msg: comm.Msg{Size: env.Msg.Size, Space: env.Msg.Space}}, true
		}
	}
	return comm.Status{}, false
}

// Probe blocks until a matching message is available, leaving it queued.
func (e *Engine) Probe(src int, tag comm.Tag) comm.Status {
	for {
		if st, ok := e.Iprobe(src, tag); ok {
			return st
		}
		e.b.Block()
	}
}

// CancelRecv retracts a posted, unmatched receive. Returns false when
// the receive already matched or completed (its callback still fires) —
// in particular when a Cancel races an arriving envelope: the arrival
// pops the receive off the posted queue and marks it mid-match under
// the engine lock, so exactly one of the two wins. A retracted request
// reads back done with status error ErrCanceled, distinguishing it from
// any delivered message.
func (e *Engine) CancelRecv(r comm.Request) bool {
	req, ok := r.(*Req)
	if !ok || req.eng != e || req.isSend {
		panic(e.b.Prefix + ": CancelRecv on foreign or send request")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if req.done || req.matching {
		return false
	}
	for i, q := range e.posted {
		if q == req {
			e.posted = append(e.posted[:i:i], e.posted[i+1:]...)
			req.done = true
			req.cb = nil
			req.status = comm.Status{Source: req.Src, Tag: req.Tag, Err: ErrCanceled}
			e.pendingOps--
			return true
		}
	}
	return false
}

// Halt tears the matching engine down at this endpoint's fail-stop crash
// point: posted receives die with the rank, queued callbacks never fire,
// and later arrivals are refused. The swept queues come back so the
// substrate can dispose of them — live rendezvous senders parked in the
// unexpected queue must fail instead of waiting forever for a grant.
func (e *Engine) Halt() (posted []*Req, unexpected []*Env) {
	e.mu.Lock()
	e.halted = true
	posted, unexpected = e.posted, e.unexpected
	e.posted, e.unexpected, e.cbQueue = nil, nil, nil
	e.mu.Unlock()
	return posted, unexpected
}

// DropUnexpected removes parked envelopes matching pred (a confirmed-
// dead sender's rendezvous announcements can never be granted) and
// returns them for disposal.
func (e *Engine) DropUnexpected(pred func(*Env) bool) []*Env {
	e.mu.Lock()
	defer e.mu.Unlock()
	var dropped []*Env
	keep := e.unexpected[:0]
	for _, env := range e.unexpected {
		if pred(env) {
			dropped = append(dropped, env)
		} else {
			keep = append(keep, env)
		}
	}
	e.unexpected = keep
	return dropped
}

// PushNotice appends a control-plane notice and wakes the owner.
func (e *Engine) PushNotice(n comm.Notice) {
	e.mu.Lock()
	e.notices = append(e.notices, n)
	e.noticeSeq++
	e.mu.Unlock()
	e.wake()
}

// TakeNotices drains the pending control-plane notices.
func (e *Engine) TakeNotices() []comm.Notice {
	e.mu.Lock()
	out := e.notices
	e.notices = nil
	e.mu.Unlock()
	return out
}

// WaitEvent blocks until a completion callback fires or a new notice
// arrives. Legal with no operation in flight (control-plane waits).
func (e *Engine) WaitEvent() {
	e.mu.Lock()
	start := e.noticeSeq
	e.mu.Unlock()
	for {
		if e.drain() > 0 {
			return
		}
		e.mu.Lock()
		advanced := e.noticeSeq > start
		e.mu.Unlock()
		if advanced {
			return
		}
		e.b.Block()
	}
}

// TraceEmit implements trace.Emitter: it stamps the record with the
// endpoint's identity and clock, defaults its Parent to the current
// causal context, and appends it. Returns 0 (and stays allocation-free)
// when tracing is off.
func (e *Engine) TraceEmit(r trace.Record) uint64 {
	tb := e.b.Trace()
	if tb == nil {
		return 0
	}
	r.At = e.b.Now()
	r.Rank = e.b.Rank
	if r.Parent == 0 {
		r.Parent = e.curCause
	}
	return tb.Add(r)
}

// TraceSetCause installs id as the rank's causal context and returns the
// previous one; collectives bracket their entry with it so the initial
// wave of posts links back to the CollStart record.
func (e *Engine) TraceSetCause(id uint64) uint64 {
	prev := e.curCause
	e.curCause = id
	return prev
}
