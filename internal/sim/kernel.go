// Package sim is a deterministic discrete-event simulation kernel with
// coroutine-style processes. It underpins the simulated MPI substrate
// (internal/simmpi) used to reproduce the paper's experiments — from the
// 1000+-rank figures up to million-rank topology sweeps — on a single
// machine.
//
// Determinism: the kernel runs exactly one goroutine at a time — either
// the event dispatcher or a single resumed process — with strict handoff,
// and orders simultaneous events by insertion sequence. Two runs of the
// same workload produce identical virtual-time trajectories.
//
// The event queue is a two-tier bucketed calendar ("ladder") queue with a
// monomorphic 4-ary heap as its front tier (see queue.go): amortized O(1)
// schedule and dispatch with zero per-event allocations, preserving the
// exact (at, seq) dispatch order of a single flat heap.
package sim

import (
	"fmt"
	"sort"
	"time"

	"adapt/internal/perf"
)

// Kernel is a discrete-event simulator instance.
type Kernel struct {
	now   time.Duration
	queue eventQueue
	seq   uint64

	yield chan struct{} // process → kernel control handoff
	procs []*Proc
	live  int

	// Stats (see Stats); reported* track what Run already published to
	// the process-wide perf counters, so repeated Runs publish deltas.
	// queuePeak is the kernel-lifetime high-water mark; runPeak is the
	// high-water mark since the previous Run returned, which is what Run
	// publishes — republishing the lifetime peak made every later Run
	// re-report run 1's burst (see TestKernelRunStatsAreDeltas).
	dispatched         uint64
	scheduled          uint64
	queuePeak          int
	runPeak            int
	reportedDispatched uint64
	reportedScheduled  uint64

	// onDispatch, when non-nil, observes every dispatched event (seq,
	// virtual time) before its handler runs. The nil fast path is a single
	// predictable branch and adds zero allocations to the dispatch loop
	// (gated by BenchmarkKernelDispatchObserved/TestObserverNilZeroAlloc).
	onDispatch func(seq uint64, at time.Duration)
}

// New creates an empty kernel at virtual time zero with the default
// (ladder) event queue.
func New() *Kernel { return NewWithQueue(QueueLadder) }

// NewWithQueue creates an empty kernel using the given event-queue
// implementation. Both kinds dispatch in the identical (at, seq) order;
// QueueHeap is the flat-heap reference for differential testing.
func NewWithQueue(kind QueueKind) *Kernel {
	k := &Kernel{yield: make(chan struct{})}
	k.queue.heapOnly = kind == QueueHeap
	return k
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Dispatched returns the number of events executed so far.
func (k *Kernel) Dispatched() uint64 { return k.dispatched }

// Stats is a kernel's event-loop counter snapshot.
type Stats struct {
	Dispatched   uint64 // events executed
	Scheduled    uint64 // events inserted
	QueuePeak    int    // kernel-lifetime maximum simultaneous pending events
	QueuePeakRun int    // maximum pending events since the previous Run returned
	QueueLen     int    // pending events right now
}

// Stats returns the kernel's counters. QueuePeak is the lifetime
// high-water mark; QueuePeakRun covers only the window since the last
// completed Run (it is what Run publishes to the process-wide counters).
func (k *Kernel) Stats() Stats {
	return Stats{
		Dispatched:   k.dispatched,
		Scheduled:    k.scheduled,
		QueuePeak:    k.queuePeak,
		QueuePeakRun: k.runPeak,
		QueueLen:     k.queue.len(),
	}
}

// Schedule runs fn after delay ≥ 0 of virtual time. This is the single
// validation and insertion site for events: At funnels through it, so an
// event placed in the past always fails here with the same diagnostic.
func (k *Kernel) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: event in the past: %v < %v", k.now+delay, k.now))
	}
	k.seq++
	k.scheduled++
	k.queue.push(event{at: k.now + delay, seq: k.seq, fn: fn})
	if n := k.queue.len(); n > k.runPeak {
		k.runPeak = n
		if n > k.queuePeak {
			k.queuePeak = n
		}
	}
}

// SetDispatchObserver installs (or, with nil, removes) a hook that sees
// every dispatched event's insertion sequence and virtual time before its
// handler runs — enough to attribute trace records to dispatch order
// without touching the handlers. The observer must not schedule events.
func (k *Kernel) SetDispatchObserver(fn func(seq uint64, at time.Duration)) {
	k.onDispatch = fn
}

// At runs fn at absolute virtual time t ≥ Now().
func (k *Kernel) At(t time.Duration, fn func()) {
	k.Schedule(t-k.now, fn)
}

// deadlockReportCap bounds how many stuck-process names a deadlock error
// spells out; at 100k+ ranks sorting and printing every name would cost
// more than the simulation that deadlocked (see TestDeadlockReportCapped).
const deadlockReportCap = 16

// Run dispatches events until the queue drains. If processes are still
// alive when the queue is empty, the simulation is deadlocked and Run
// returns an error naming the first deadlockReportCap stuck processes
// (plus a total). On success it returns the final virtual time.
func (k *Kernel) Run() (time.Duration, error) {
	for k.queue.len() > 0 {
		e := k.queue.pop()
		k.now = e.at
		k.dispatched++
		if k.onDispatch != nil {
			k.onDispatch(e.seq, e.at)
		}
		e.fn()
	}
	perf.RecordKernelRun(k.dispatched-k.reportedDispatched,
		k.scheduled-k.reportedScheduled, k.runPeak)
	k.reportedDispatched = k.dispatched
	k.reportedScheduled = k.scheduled
	k.runPeak = k.queue.len() // 0: the queue just drained
	if k.live > 0 {
		var stuck []string
		for _, p := range k.procs {
			if !p.done {
				stuck = append(stuck, p.Name)
			}
		}
		sort.Strings(stuck)
		more := ""
		if len(stuck) > deadlockReportCap {
			more = fmt.Sprintf(" (+%d more)", len(stuck)-deadlockReportCap)
			stuck = stuck[:deadlockReportCap]
		}
		return k.now, fmt.Errorf("sim: deadlock at %v: %d processes stuck: %v%s", k.now, k.live, stuck, more)
	}
	return k.now, nil
}

// MustRun is Run that panics on deadlock, for tests and benchmarks.
func (k *Kernel) MustRun() time.Duration {
	t, err := k.Run()
	if err != nil {
		panic(err)
	}
	return t
}
