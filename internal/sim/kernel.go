// Package sim is a deterministic discrete-event simulation kernel with
// coroutine-style processes. It underpins the simulated MPI substrate
// (internal/simmpi) used to reproduce the paper's 1000+-rank experiments
// on a single machine.
//
// Determinism: the kernel runs exactly one goroutine at a time — either
// the event dispatcher or a single resumed process — with strict handoff,
// and orders simultaneous events by insertion sequence. Two runs of the
// same workload produce identical virtual-time trajectories.
//
// The event queue is a monomorphic 4-ary min-heap over a concrete event
// slice: no container/heap, no interface{} boxing, so the schedule →
// dispatch round-trip performs zero per-event allocations (the paper's
// figures push tens of millions of events through this loop). The 4-ary
// layout halves the tree depth of a binary heap and keeps the children of
// a node on one cache line.
package sim

import (
	"fmt"
	"sort"
	"time"

	"adapt/internal/perf"
)

// Kernel is a discrete-event simulator instance.
type Kernel struct {
	now   time.Duration
	queue eventQueue
	seq   uint64

	yield chan struct{} // process → kernel control handoff
	procs []*Proc
	live  int

	// Stats (see Stats); reported* track what Run already published to
	// the process-wide perf counters, so repeated Runs publish deltas.
	dispatched         uint64
	scheduled          uint64
	queuePeak          int
	reportedDispatched uint64
	reportedScheduled  uint64

	// onDispatch, when non-nil, observes every dispatched event (seq,
	// virtual time) before its handler runs. The nil fast path is a single
	// predictable branch and adds zero allocations to the dispatch loop
	// (gated by BenchmarkKernelDispatchObserved/TestObserverNilZeroAlloc).
	onDispatch func(seq uint64, at time.Duration)
}

// New creates an empty kernel at virtual time zero.
func New() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Dispatched returns the number of events executed so far.
func (k *Kernel) Dispatched() uint64 { return k.dispatched }

// Stats is a kernel's event-loop counter snapshot.
type Stats struct {
	Dispatched uint64 // events executed
	Scheduled  uint64 // events inserted
	QueuePeak  int    // maximum simultaneous pending events
	QueueLen   int    // pending events right now
}

// Stats returns the kernel's counters.
func (k *Kernel) Stats() Stats {
	return Stats{
		Dispatched: k.dispatched,
		Scheduled:  k.scheduled,
		QueuePeak:  k.queuePeak,
		QueueLen:   k.queue.len(),
	}
}

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

// before is the dispatch order: time, then insertion sequence — the
// tie-break that makes simultaneous events run in schedule order.
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventQueue is a monomorphic 4-ary min-heap ordered by event.before.
// Push and pop touch concrete events only — no interface{} crossings.
type eventQueue struct {
	a []event
}

func (q *eventQueue) len() int { return len(q.a) }

func (q *eventQueue) push(e event) {
	q.a = append(q.a, e)
	i := len(q.a) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !e.before(q.a[p]) {
			break
		}
		q.a[i] = q.a[p]
		i = p
	}
	q.a[i] = e
}

func (q *eventQueue) pop() event {
	root := q.a[0]
	n := len(q.a) - 1
	last := q.a[n]
	q.a[n] = event{} // drop the fn reference so the GC can reclaim it
	q.a = q.a[:n]
	if n > 0 {
		q.siftDown(last)
	}
	return root
}

// siftDown re-inserts e from the root, walking the hole down toward the
// smallest child until e fits.
func (q *eventQueue) siftDown(e event) {
	a := q.a
	n := len(a)
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		m := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if a[c].before(a[m]) {
				m = c
			}
		}
		if !a[m].before(e) {
			break
		}
		a[i] = a[m]
		i = m
	}
	a[i] = e
}

// Schedule runs fn after delay ≥ 0 of virtual time. This is the single
// validation and insertion site for events: At funnels through it, so an
// event placed in the past always fails here with the same diagnostic.
func (k *Kernel) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: event in the past: %v < %v", k.now+delay, k.now))
	}
	k.seq++
	k.scheduled++
	k.queue.push(event{at: k.now + delay, seq: k.seq, fn: fn})
	if n := k.queue.len(); n > k.queuePeak {
		k.queuePeak = n
	}
}

// SetDispatchObserver installs (or, with nil, removes) a hook that sees
// every dispatched event's insertion sequence and virtual time before its
// handler runs — enough to attribute trace records to dispatch order
// without touching the handlers. The observer must not schedule events.
func (k *Kernel) SetDispatchObserver(fn func(seq uint64, at time.Duration)) {
	k.onDispatch = fn
}

// At runs fn at absolute virtual time t ≥ Now().
func (k *Kernel) At(t time.Duration, fn func()) {
	k.Schedule(t-k.now, fn)
}

// Run dispatches events until the queue drains. If processes are still
// alive when the queue is empty, the simulation is deadlocked and Run
// returns an error naming the stuck processes. On success it returns the
// final virtual time.
func (k *Kernel) Run() (time.Duration, error) {
	for k.queue.len() > 0 {
		e := k.queue.pop()
		k.now = e.at
		k.dispatched++
		if k.onDispatch != nil {
			k.onDispatch(e.seq, e.at)
		}
		e.fn()
	}
	perf.RecordKernelRun(k.dispatched-k.reportedDispatched,
		k.scheduled-k.reportedScheduled, k.queuePeak)
	k.reportedDispatched = k.dispatched
	k.reportedScheduled = k.scheduled
	if k.live > 0 {
		var stuck []string
		for _, p := range k.procs {
			if !p.done {
				stuck = append(stuck, p.Name)
			}
		}
		sort.Strings(stuck)
		return k.now, fmt.Errorf("sim: deadlock at %v: %d processes stuck: %v", k.now, k.live, stuck)
	}
	return k.now, nil
}

// MustRun is Run that panics on deadlock, for tests and benchmarks.
func (k *Kernel) MustRun() time.Duration {
	t, err := k.Run()
	if err != nil {
		panic(err)
	}
	return t
}
