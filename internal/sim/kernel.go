// Package sim is a deterministic discrete-event simulation kernel with
// coroutine-style processes. It underpins the simulated MPI substrate
// (internal/simmpi) used to reproduce the paper's 1000+-rank experiments
// on a single machine.
//
// Determinism: the kernel runs exactly one goroutine at a time — either
// the event dispatcher or a single resumed process — with strict handoff,
// and orders simultaneous events by insertion sequence. Two runs of the
// same workload produce identical virtual-time trajectories.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// Kernel is a discrete-event simulator instance.
type Kernel struct {
	now   time.Duration
	queue eventHeap
	seq   uint64

	yield chan struct{} // process → kernel control handoff
	procs []*Proc
	live  int

	// Stats
	dispatched uint64
}

// New creates an empty kernel at virtual time zero.
func New() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Dispatched returns the number of events executed so far.
func (k *Kernel) Dispatched() uint64 { return k.dispatched }

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Schedule runs fn after delay ≥ 0 of virtual time.
func (k *Kernel) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	k.At(k.now+delay, fn)
}

// At runs fn at absolute virtual time t ≥ Now().
func (k *Kernel) At(t time.Duration, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: event in the past: %v < %v", t, k.now))
	}
	k.seq++
	heap.Push(&k.queue, event{at: t, seq: k.seq, fn: fn})
}

// Run dispatches events until the queue drains. If processes are still
// alive when the queue is empty, the simulation is deadlocked and Run
// returns an error naming the stuck processes. On success it returns the
// final virtual time.
func (k *Kernel) Run() (time.Duration, error) {
	for len(k.queue) > 0 {
		e := heap.Pop(&k.queue).(event)
		k.now = e.at
		k.dispatched++
		e.fn()
	}
	if k.live > 0 {
		var stuck []string
		for _, p := range k.procs {
			if !p.done {
				stuck = append(stuck, p.Name)
			}
		}
		sort.Strings(stuck)
		return k.now, fmt.Errorf("sim: deadlock at %v: %d processes stuck: %v", k.now, k.live, stuck)
	}
	return k.now, nil
}

// MustRun is Run that panics on deadlock, for tests and benchmarks.
func (k *Kernel) MustRun() time.Duration {
	t, err := k.Run()
	if err != nil {
		panic(err)
	}
	return t
}
