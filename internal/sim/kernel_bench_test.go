package sim

import (
	"testing"
	"time"
)

// BenchmarkKernelDispatch measures the cost of one schedule+dispatch
// round-trip through the event queue, the innermost loop of every
// simulated experiment. Events are scheduled in batches with colliding
// and distinct timestamps so both heap paths (sift-up on push, sift-down
// on pop) are exercised.
func BenchmarkKernelDispatch(b *testing.B) {
	b.ReportAllocs()
	fn := func() {}
	const batch = 1024
	k := New()
	b.ResetTimer()
	for n := b.N; n > 0; n -= batch {
		m := batch
		if m > n {
			m = n
		}
		for j := 0; j < m; j++ {
			k.Schedule(time.Duration(j&127)*time.Microsecond, fn)
		}
		k.MustRun()
	}
}

// BenchmarkKernelSelfSchedule measures a self-rescheduling event chain —
// the progress-engine pattern (timers, noise injection, resource
// completions) where the same continuation re-enters the queue over and
// over.
func BenchmarkKernelSelfSchedule(b *testing.B) {
	b.ReportAllocs()
	k := New()
	left := b.N
	var tick func()
	tick = func() {
		if left > 0 {
			left--
			k.Schedule(time.Microsecond, tick)
		}
	}
	b.ResetTimer()
	k.Schedule(0, tick)
	k.MustRun()
}
