package sim

import (
	"fmt"
	"time"
)

// Resource is a FIFO-serialized facility (a NIC queue, a PCIe direction, a
// QPI link, a socket's memory bus). Concurrent transfers through one
// Resource queue behind each other, which over time is equivalent to the
// bandwidth sharing the paper describes for congested PCI-Express lanes
// (§4.1: three concurrent flows each see one third of the bandwidth).
type Resource struct {
	k      *Kernel
	Name   string
	freeAt time.Duration
	busy   time.Duration // cumulative service time, for utilization
	uses   uint64
}

// NewResource creates a named resource on the kernel.
func (k *Kernel) NewResource(name string) *Resource {
	return &Resource{k: k, Name: name}
}

// Use reserves the resource for `service` starting no earlier than the
// current virtual time, and returns when the reservation ends. Callers
// are served in call order, which — because hops schedule their Use at
// actual arrival instants — is arrival order.
func (r *Resource) Use(service time.Duration) (end time.Duration) {
	if service < 0 {
		panic(fmt.Sprintf("sim: negative service %v on %s", service, r.Name))
	}
	start := r.k.now
	if r.freeAt > start {
		start = r.freeAt
	}
	end = start + service
	r.freeAt = end
	r.busy += service
	r.uses++
	return end
}

// FreeAt returns the earliest time a new reservation could start.
func (r *Resource) FreeAt() time.Duration { return r.freeAt }

// Busy returns the cumulative service time charged to this resource.
func (r *Resource) Busy() time.Duration { return r.busy }

// Uses returns the number of reservations made.
func (r *Resource) Uses() uint64 { return r.uses }
