package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"adapt/internal/perf"
)

// dispatchRecord captures one dispatched event as the observer saw it.
type dispatchRecord struct {
	seq uint64
	at  time.Duration
}

// runAdversarialWorkload drives a kernel through a seeded workload that
// exercises every ladder tier and transition: zero-delay ties, sub-width
// near-future bursts, cross-horizon far-future jumps, nested scheduling
// from inside handlers, and drain-to-empty refill cycles. It returns the
// full dispatch sequence.
func runAdversarialWorkload(k *Kernel, seed int64) []dispatchRecord {
	rng := rand.New(rand.NewSource(seed))
	var got []dispatchRecord
	k.SetDispatchObserver(func(seq uint64, at time.Duration) {
		got = append(got, dispatchRecord{seq, at})
	})
	spawned := 0
	var handler func()
	handler = func() {
		// Each event spawns a few more until the budget runs out, with
		// deltas drawn from four scales so events land in the front heap
		// (0), the near buckets (ns/µs), and the far overflow (ms/s).
		for n := rng.Intn(4); n > 0 && spawned < 60000; n-- {
			spawned++
			var d time.Duration
			switch rng.Intn(5) {
			case 0:
				d = 0 // same-instant: exercises the seq tie-break
			case 1:
				d = time.Duration(rng.Intn(500)) * time.Nanosecond
			case 2:
				d = time.Duration(rng.Intn(50)) * time.Microsecond
			case 3:
				d = time.Duration(rng.Intn(20)) * time.Millisecond
			default:
				d = time.Duration(rng.Intn(3)) * time.Second
			}
			k.Schedule(d, handler)
		}
	}
	// A spread of roots so the first reseed sees a wide span.
	for i := 0; i < 64; i++ {
		spawned++
		k.Schedule(time.Duration(rng.Intn(1000))*time.Millisecond, handler)
	}
	k.MustRun()
	k.SetDispatchObserver(nil)
	return got
}

// TestQueueKindsIdenticalOrder is the differential gate for the ladder
// queue: the exact (seq, at) dispatch sequence of QueueLadder must be
// byte-identical to the QueueHeap reference on adversarial workloads.
// This is the kernel-level half of the "replay stays byte-identical"
// contract; the conformance registry + replay goldens are the end-to-end
// half.
func TestQueueKindsIdenticalOrder(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		heap := runAdversarialWorkload(NewWithQueue(QueueHeap), seed)
		ladder := runAdversarialWorkload(NewWithQueue(QueueLadder), seed)
		if len(heap) != len(ladder) {
			t.Fatalf("seed %d: heap dispatched %d events, ladder %d", seed, len(heap), len(ladder))
		}
		if len(heap) < 10000 {
			t.Fatalf("seed %d: workload too small (%d events) to be a meaningful diff", seed, len(heap))
		}
		for i := range heap {
			if heap[i] != ladder[i] {
				t.Fatalf("seed %d: dispatch %d diverged: heap %+v, ladder %+v",
					seed, i, heap[i], ladder[i])
			}
		}
	}
}

// TestLadderOverflowNotOvertaken pins the exact bug class a sliding
// horizon admits: an event parked in the far-future overflow must not be
// out-dispatched by a later-scheduled event with a LATER timestamp that
// the near tier happens to bucket. The geometry is therefore fixed per
// epoch (see eventQueue docs); this regression test drives that scenario
// directly.
func TestLadderOverflowNotOvertaken(t *testing.T) {
	k := NewWithQueue(QueueLadder)
	var order []string
	// Force a reseed with a tiny span so the horizon lands close.
	for i := 0; i < 4; i++ {
		i := i
		k.Schedule(time.Duration(i)*time.Microsecond, func() {
			order = append(order, fmt.Sprintf("seed%d", i))
		})
	}
	// Far beyond that horizon: overflow.
	k.Schedule(10*time.Second, func() {
		order = append(order, "far")
		// Scheduled later in wall order but EARLIER than nothing — this one
		// lands after "far" in time; a sliding horizon could have bucketed
		// it next to the near tier and dispatched it first.
	})
	k.Schedule(2*time.Microsecond, func() {
		// Mid-run, schedule an event between the first horizon and the far
		// event: with a sliding horizon this could enter a bucket while
		// "far" sits in overflow, then be swept ahead of an even-earlier
		// overflow event on the next epoch.
		k.Schedule(9*time.Second+999*time.Millisecond, func() {
			order = append(order, "late-near")
		})
	})
	k.MustRun()
	want := "seed0,seed1,seed2,seed3,late-near,far"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("dispatch order = %s, want %s", got, want)
	}
}

// TestKernelRunStatsAreDeltas pins the satellite bugfix: Run publishes
// per-run deltas for dispatched/scheduled AND a per-run queue peak. The
// old code republished the kernel-lifetime peak on every Run, so a large
// first run inflated the reported peak of every later small run.
func TestKernelRunStatsAreDeltas(t *testing.T) {
	perf.Reset()
	k := New()
	// Run 1: a 512-event burst, all pending at once.
	for i := 0; i < 512; i++ {
		k.Schedule(ms(i%7), func() {})
	}
	k.MustRun()
	s1 := perf.Read()
	if s1.EventsDispatched != 512 || s1.HeapPeak != 512 {
		t.Fatalf("run 1 published dispatched=%d peak=%d, want 512/512",
			s1.EventsDispatched, s1.HeapPeak)
	}
	if st := k.Stats(); st.QueuePeakRun != 0 || st.QueuePeak != 512 {
		t.Fatalf("post-run stats = %+v, want QueuePeakRun 0, QueuePeak 512", st)
	}

	// Run 2: three events. The published delta must be 3, and the run's
	// peak must be 3 — not run 1's 512.
	perf.Reset()
	for i := 0; i < 3; i++ {
		k.Schedule(ms(i), func() {})
	}
	if st := k.Stats(); st.QueuePeakRun != 3 {
		t.Fatalf("pre-run-2 QueuePeakRun = %d, want 3", st.QueuePeakRun)
	}
	k.MustRun()
	s2 := perf.Read()
	if s2.EventsDispatched != 3 || s2.EventsScheduled != 3 {
		t.Fatalf("run 2 published dispatched=%d scheduled=%d, want 3/3 (lifetime leaked into the delta)",
			s2.EventsDispatched, s2.EventsScheduled)
	}
	if s2.HeapPeak != 3 {
		t.Fatalf("run 2 published queue peak %d, want 3 (lifetime high-water republished)", s2.HeapPeak)
	}
	// The lifetime view is still the lifetime view.
	if st := k.Stats(); st.QueuePeak != 512 || st.Dispatched != 515 {
		t.Fatalf("lifetime stats = %+v, want QueuePeak 512, Dispatched 515", st)
	}
	perf.Reset()
}

// TestHeapShrinkOnDrain pins the satellite bugfix: one large burst must
// not pin its backing array for the kernel's lifetime. After draining a
// burst far above the floor, the heap's capacity must have been released
// (and the dispatch order must be unaffected — checked by popping in
// order).
func TestHeapShrinkOnDrain(t *testing.T) {
	var q eventQueue
	q.heapOnly = true
	const n = 1 << 17 // 131072, well above shrinkFloor
	for i := 0; i < n; i++ {
		q.push(event{at: time.Duration(i % 977), seq: uint64(i)})
	}
	burst := cap(q.front.a)
	if burst < n {
		t.Fatalf("burst capacity %d < %d", burst, n)
	}
	var prev event
	for i := 0; i < n; i++ {
		e := q.pop()
		if i > 0 && e.before(prev) {
			t.Fatalf("pop %d out of order: %v after %v", i, e, prev)
		}
		prev = e
	}
	if got := cap(q.front.a); got > burst/32 {
		t.Fatalf("drained heap still holds cap %d of burst %d — shrink-on-drain failed", got, burst)
	}
	// Steady state below the floor must NOT shrink (no allocator thrash):
	// interleaved push/pop at small occupancy keeps one stable backing.
	for i := 0; i < 100; i++ {
		q.push(event{at: time.Duration(i), seq: uint64(n + i)})
	}
	stable := cap(q.front.a)
	for i := 0; i < 100; i++ {
		q.pop()
		q.push(event{at: time.Duration(1000 + i), seq: uint64(2*n + i)})
	}
	if cap(q.front.a) != stable {
		t.Fatalf("steady-state backing reallocated: cap %d → %d", stable, cap(q.front.a))
	}
}

// TestLadderReleasesBurstBackings: the ladder's bucket and overflow
// backings obey the same shrink-on-drain policy — a backing inflated past
// the floor is dropped for the GC instead of pooled.
func TestLadderReleasesBurstBackings(t *testing.T) {
	var q eventQueue
	// Establish a geometry, then overflow a burst far beyond the floor.
	q.push(event{at: 0, seq: 1})
	q.push(event{at: time.Microsecond, seq: 2})
	const n = 8192
	for i := 0; i < n; i++ {
		q.push(event{at: time.Second + time.Duration(i), seq: uint64(3 + i)})
	}
	for q.len() > 0 {
		q.pop()
	}
	if q.spare != nil && cap(q.spare) > shrinkFloor {
		t.Fatalf("overflow burst backing (cap %d) retained past the shrink floor", cap(q.spare))
	}
	for _, b := range q.pool {
		if cap(b) > shrinkFloor {
			t.Fatalf("bucket burst backing (cap %d) pooled past the shrink floor", cap(b))
		}
	}
}

// TestSleepZeroDoesNotYield pins the documented Sleep(0) semantics: it
// returns inline WITHOUT passing through the event queue, so the process
// keeps running ahead of already-queued same-instant events — unlike
// Schedule(0), which queues behind them. The all-substrate conformance
// grid and replay goldens were recorded under these semantics; changing
// Sleep(0) to yield would reorder every golden, so the behavior is
// documented and pinned rather than "fixed".
func TestSleepZeroDoesNotYield(t *testing.T) {
	k := New()
	var order []string
	k.Go("p", func(p *Proc) {
		p.Sleep(ms(1))
		// Queued before the Sleep(0): would run first if Sleep(0) yielded.
		k.Schedule(0, func() { order = append(order, "queued") })
		p.Sleep(0)
		order = append(order, "after-sleep0")
	})
	k.MustRun()
	want := "after-sleep0,queued"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("order = %s, want %s (Sleep(0) must not yield)", got, want)
	}
}

// TestDeadlockReportCapped: a deadlocked 100k-proc simulation must fail
// fast with a bounded report — the first deadlockReportCap names plus a
// total — instead of sorting and printing every stuck name.
func TestDeadlockReportCapped(t *testing.T) {
	k := New()
	const n = 100000
	for i := 0; i < n; i++ {
		k.Go(fmt.Sprintf("rank-%06d", i), func(p *Proc) { p.Park() })
	}
	start := time.Now()
	_, err := k.Run()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	msg := err.Error()
	if !strings.Contains(msg, fmt.Sprintf("%d processes stuck", n)) {
		t.Fatalf("error lacks the total count: %s", msg)
	}
	if !strings.Contains(msg, fmt.Sprintf("(+%d more)", n-deadlockReportCap)) {
		t.Fatalf("error lacks the truncation suffix: %s", msg)
	}
	if got := strings.Count(msg, "rank-"); got != deadlockReportCap {
		t.Fatalf("error names %d procs, want %d: %s", got, deadlockReportCap, msg)
	}
	if len(msg) > 1024 {
		t.Fatalf("deadlock report is %d bytes — not capped", len(msg))
	}
	if elapsed > 30*time.Second {
		t.Fatalf("deadlock report took %v — not failing fast", elapsed)
	}
}
