package sim

import (
	"errors"
	"fmt"
	"time"
)

// ErrKilled is the sentinel a process body panics with to terminate
// itself mid-execution (fail-stop crash injection). The Go wrapper
// recovers it and retires the process as if its body had returned: the
// kernel keeps running the other processes and does not count the killed
// one as deadlocked. Any other panic value propagates unchanged.
var ErrKilled = errors.New("sim: process killed")

type procState uint8

const (
	stateRunning  procState = iota
	stateSleeping           // blocked in Sleep; only the sleep timer wakes it
	stateParked             // blocked in Park; only Unpark wakes it
)

// Proc is a simulated process: a goroutine that runs cooperatively under
// the kernel, blocking in virtual time via Sleep and Park. All Proc
// methods except Unpark must be called from the process's own goroutine.
type Proc struct {
	k    *Kernel
	Name string

	wake    chan struct{}
	state   procState
	pending bool // an Unpark arrived while not parked; next Park returns at once
	done    bool

	// Recurring event closures, allocated once per process instead of once
	// per Sleep/Unpark: these are the highest-frequency events the MPI
	// substrate schedules (every wait, every completion wake-up, every
	// resource hand-back goes through one of them).
	resumeFn func()
	unparkFn func()
}

// Go spawns a simulated process. Its body starts at the current virtual
// time (after already-queued events at this instant).
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, Name: name, wake: make(chan struct{})}
	p.resumeFn = func() { k.resume(p) }
	p.unparkFn = func() {
		if p.done {
			return
		}
		if p.state == stateParked {
			k.resume(p)
		} else {
			p.pending = true
		}
	}
	k.procs = append(k.procs, p)
	k.live++
	k.Schedule(0, func() {
		go func() {
			<-p.wake
			func() {
				defer func() {
					if r := recover(); r != nil && r != ErrKilled {
						panic(r)
					}
				}()
				fn(p)
			}()
			// Reached on normal return AND on an ErrKilled unwind: either
			// way the process retires cleanly and yields to the kernel.
			p.done = true
			k.live--
			k.yield <- struct{}{}
		}()
		k.resume(p)
	})
	return p
}

// resume hands control to p and blocks the caller (kernel event context)
// until p blocks again, finishes, or otherwise yields.
func (k *Kernel) resume(p *Proc) {
	p.state = stateRunning
	p.wake <- struct{}{}
	<-k.yield
}

// block returns control to the kernel until the process is resumed.
func (p *Proc) block(s procState) {
	p.state = s
	p.k.yield <- struct{}{}
	<-p.wake
}

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.k.now }

// Sleep blocks the process for d of virtual time. An Unpark delivered
// while sleeping does not shorten the sleep; it is remembered and makes
// the next Park return immediately.
//
// Sleep(0) is a no-op: it returns inline WITHOUT passing through the
// event queue, so — unlike Schedule(0) — it does not yield to
// already-queued same-instant events. Every replay golden and the
// all-substrate conformance grid were recorded under these semantics
// (a zero-duration compute phase costs nothing, including scheduling
// position), so this is a documented contract, pinned by
// TestSleepZeroDoesNotYield, not an oversight.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v", d))
	}
	if d == 0 {
		return
	}
	p.k.Schedule(d, p.resumeFn)
	p.block(stateSleeping)
}

// SleepUntil blocks the process until absolute virtual time t (no-op if t
// is in the past).
func (p *Proc) SleepUntil(t time.Duration) {
	if t > p.k.now {
		p.Sleep(t - p.k.now)
	}
}

// Park blocks until Unpark is called. Wakes are binary-semaphore style:
// an Unpark delivered while the process is running or sleeping makes the
// next Park return immediately, and multiple buffered wakes collapse into
// one — callers must re-check their own condition after Park returns.
func (p *Proc) Park() {
	if p.pending {
		p.pending = false
		return
	}
	p.block(stateParked)
}

// Unpark wakes p if it is blocked in Park, or buffers the wake otherwise.
// It may be called from any simulation context (an event callback or
// another process); the wake is delivered through the event queue,
// preserving determinism. Unparking a finished process is a no-op.
func (p *Proc) Unpark() {
	p.k.Schedule(0, p.unparkFn)
}

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.done }
