package sim

import (
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestEventOrdering(t *testing.T) {
	k := New()
	var order []int
	k.Schedule(ms(5), func() { order = append(order, 2) })
	k.Schedule(ms(1), func() { order = append(order, 1) })
	k.Schedule(ms(5), func() { order = append(order, 3) }) // same time: insertion order
	k.Schedule(ms(9), func() { order = append(order, 4) })
	end := k.MustRun()
	if end != ms(9) {
		t.Fatalf("end = %v, want 9ms", end)
	}
	want := []int{1, 2, 3, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	k := New()
	var at []time.Duration
	k.Schedule(ms(1), func() {
		at = append(at, k.Now())
		k.Schedule(ms(2), func() { at = append(at, k.Now()) })
	})
	k.MustRun()
	if len(at) != 2 || at[0] != ms(1) || at[1] != ms(3) {
		t.Fatalf("times = %v", at)
	}
}

// TestZeroDelayTieBreak: events landing at the same instant — whether via
// Schedule(0, …) or At(Now(), …) — run strictly in insertion order, after
// the handler that inserted them.
func TestZeroDelayTieBreak(t *testing.T) {
	k := New()
	var order []string
	k.Schedule(ms(2), func() {
		order = append(order, "outer")
		k.Schedule(0, func() { order = append(order, "s0") })
		k.At(k.Now(), func() { order = append(order, "at-now") })
		k.Schedule(0, func() { order = append(order, "s1") })
	})
	// A pre-existing event at the same instant, inserted earlier, runs first.
	k.At(ms(2), func() { order = append(order, "pre") })
	k.MustRun()
	want := []string{"outer", "pre", "s0", "at-now", "s1"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestAtSharesScheduleValidation: At and Schedule reject past insertions
// through the same panic site with the same diagnostic text.
func TestAtSharesScheduleValidation(t *testing.T) {
	texts := make([]string, 2)
	capture := func(i int, insert func(k *Kernel)) {
		k := New()
		k.Schedule(ms(5), func() {
			defer func() {
				p := recover()
				if p == nil {
					t.Fatalf("case %d: expected panic", i)
				}
				texts[i] = p.(string)
			}()
			insert(k)
		})
		k.MustRun()
	}
	capture(0, func(k *Kernel) { k.At(ms(1), func() {}) })
	capture(1, func(k *Kernel) { k.Schedule(ms(1)-ms(5), func() {}) })
	if texts[0] != texts[1] || texts[0] == "" {
		t.Fatalf("inconsistent panic text: %q vs %q", texts[0], texts[1])
	}
}

func TestKernelStats(t *testing.T) {
	k := New()
	for i := 0; i < 10; i++ {
		k.Schedule(ms(i), func() {})
	}
	if st := k.Stats(); st.Scheduled != 10 || st.QueueLen != 10 || st.QueuePeak != 10 {
		t.Fatalf("pre-run stats = %+v", st)
	}
	k.MustRun()
	st := k.Stats()
	if st.Dispatched != 10 || st.QueueLen != 0 || st.QueuePeak != 10 {
		t.Fatalf("post-run stats = %+v", st)
	}
}

// TestHeapStress drives the 4-ary heap through a large adversarial
// schedule (colliding timestamps, interleaved nested inserts) and checks
// dispatch order against the (at, seq) contract.
func TestHeapStress(t *testing.T) {
	k := New()
	type stamp struct {
		at  time.Duration
		seq int
	}
	var got []stamp
	seq := 0
	var add func(depth int)
	add = func(depth int) {
		base := k.Now()
		for j := 0; j < 7; j++ {
			d := time.Duration((j*31)%5) * time.Millisecond
			s := seq
			seq++
			k.Schedule(d, func() {
				got = append(got, stamp{base + d, s})
				if depth < 3 {
					add(depth + 1)
				}
			})
		}
	}
	add(0)
	k.MustRun()
	for i := 1; i < len(got); i++ {
		if got[i].at < got[i-1].at {
			t.Fatalf("time went backwards at %d: %v after %v", i, got[i], got[i-1])
		}
		if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
			t.Fatalf("tie-break violated at %d: seq %d after %d", i, got[i].seq, got[i-1].seq)
		}
	}
	if len(got) < 7*7*7 {
		t.Fatalf("only %d events dispatched", len(got))
	}
}

func TestPastEventPanics(t *testing.T) {
	k := New()
	k.Schedule(ms(5), func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling into the past")
			}
		}()
		k.At(ms(1), func() {})
	})
	k.MustRun()
}

func TestProcSleep(t *testing.T) {
	k := New()
	var wake []time.Duration
	k.Go("sleeper", func(p *Proc) {
		p.Sleep(ms(10))
		wake = append(wake, p.Now())
		p.Sleep(ms(5))
		wake = append(wake, p.Now())
	})
	end := k.MustRun()
	if len(wake) != 2 || wake[0] != ms(10) || wake[1] != ms(15) {
		t.Fatalf("wakes = %v", wake)
	}
	if end != ms(15) {
		t.Fatalf("end = %v", end)
	}
}

func TestTwoProcsInterleave(t *testing.T) {
	k := New()
	var trace []string
	k.Go("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(ms(2))
		trace = append(trace, "a2")
		p.Sleep(ms(2))
		trace = append(trace, "a4")
	})
	k.Go("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(ms(3))
		trace = append(trace, "b3")
	})
	k.MustRun()
	want := []string{"a0", "b0", "a2", "b3", "a4"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestParkUnpark(t *testing.T) {
	k := New()
	var got time.Duration
	var waiter *Proc
	waiter = k.Go("waiter", func(p *Proc) {
		p.Park()
		got = p.Now()
	})
	k.Go("waker", func(p *Proc) {
		p.Sleep(ms(7))
		waiter.Unpark()
	})
	k.MustRun()
	if got != ms(7) {
		t.Fatalf("waiter woke at %v, want 7ms", got)
	}
}

func TestUnparkBeforePark(t *testing.T) {
	// A wake delivered while the process is running must not be lost.
	k := New()
	done := false
	var p1 *Proc
	p1 = k.Go("p1", func(p *Proc) {
		p.Sleep(ms(5)) // the wake arrives during this sleep? No: at 1ms the
		// proc is sleeping (parked via Sleep's resume-event)... use Park.
		p.Park() // pending wake from t=1ms... must be consumed
		done = true
	})
	k.Go("p2", func(p *Proc) {
		p.Sleep(ms(1))
		p1.Unpark()
	})
	if _, err := k.Run(); err != nil {
		t.Fatalf("deadlock: %v", err)
	}
	if !done {
		t.Fatal("p1 never finished")
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := New()
	k.Go("stuck", func(p *Proc) { p.Park() })
	_, err := k.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestUnparkFinishedProcIsNoop(t *testing.T) {
	k := New()
	p1 := k.Go("quick", func(p *Proc) {})
	k.Go("late", func(p *Proc) {
		p.Sleep(ms(1))
		p1.Unpark()
	})
	k.MustRun()
}

func TestResourceFIFO(t *testing.T) {
	k := New()
	var ends []time.Duration
	r := k.NewResource("nic")
	// Two transfers requested at t=0 serialize: 0–4ms and 4–8ms.
	k.Schedule(0, func() { ends = append(ends, r.Use(ms(4))) })
	k.Schedule(0, func() { ends = append(ends, r.Use(ms(4))) })
	// A transfer at t=10ms finds the resource free.
	k.Schedule(ms(10), func() { ends = append(ends, r.Use(ms(4))) })
	k.MustRun()
	if ends[0] != ms(4) || ends[1] != ms(8) || ends[2] != ms(14) {
		t.Fatalf("ends = %v", ends)
	}
	if r.Busy() != ms(12) || r.Uses() != 3 {
		t.Fatalf("busy=%v uses=%d", r.Busy(), r.Uses())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (time.Duration, uint64) {
		k := New()
		procs := make([]*Proc, 8)
		r := k.NewResource("shared")
		for i := range procs {
			i := i
			procs[i] = k.Go("p", func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(time.Duration(i+1) * time.Millisecond)
					end := r.Use(ms(1))
					p.SleepUntil(end)
					if i > 0 {
						procs[i-1].Unpark()
					}
				}
				if i > 0 {
					procs[i-1].Unpark()
				}
			})
		}
		// Proc 0..6 additionally park once; they're woken by neighbours.
		end := k.MustRun()
		return end, k.Dispatched()
	}
	e1, d1 := run()
	e2, d2 := run()
	if e1 != e2 || d1 != d2 {
		t.Fatalf("non-deterministic: (%v,%d) vs (%v,%d)", e1, d1, e2, d2)
	}
}

func TestManyProcsScale(t *testing.T) {
	// 2000 processes ping-ponging sleeps: sanity-check kernel throughput
	// and absence of goroutine leaks at the scale the experiments need.
	k := New()
	const n = 2000
	for i := 0; i < n; i++ {
		i := i
		k.Go("p", func(p *Proc) {
			for j := 0; j < 10; j++ {
				p.Sleep(time.Duration(i%7+1) * time.Microsecond)
			}
		})
	}
	k.MustRun()
	if k.Dispatched() < n*10 {
		t.Fatalf("dispatched only %d events", k.Dispatched())
	}
}
