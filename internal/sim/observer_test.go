package sim

import (
	"testing"
	"time"
)

func TestDispatchObserver(t *testing.T) {
	k := New()
	var seqs []uint64
	var ats []time.Duration
	k.SetDispatchObserver(func(seq uint64, at time.Duration) {
		seqs = append(seqs, seq)
		ats = append(ats, at)
	})
	fired := 0
	k.Schedule(2*time.Microsecond, func() { fired++ })
	k.Schedule(time.Microsecond, func() { fired++ })
	k.Schedule(time.Microsecond, func() { fired++ })
	k.MustRun()
	if fired != 3 || len(seqs) != 3 {
		t.Fatalf("fired=%d observed=%d", fired, len(seqs))
	}
	// Dispatch order: time then insertion sequence.
	if seqs[0] != 2 || seqs[1] != 3 || seqs[2] != 1 {
		t.Fatalf("observed seqs %v", seqs)
	}
	if ats[2] != 2*time.Microsecond {
		t.Fatalf("observed ats %v", ats)
	}
	// Removable.
	k.SetDispatchObserver(nil)
	k.Schedule(0, func() {})
	k.MustRun()
	if len(seqs) != 3 {
		t.Fatalf("observer fired after removal")
	}
}

// The nil-observer dispatch loop must stay allocation-free — the tracing
// layer's zero-overhead guarantee for untraced runs.
func TestObserverNilZeroAlloc(t *testing.T) {
	k := New()
	fn := func() {}
	allocs := testing.AllocsPerRun(100, func() {
		for j := 0; j < 64; j++ {
			k.Schedule(time.Duration(j&7)*time.Microsecond, fn)
		}
		k.MustRun()
	})
	if allocs > 0 {
		t.Fatalf("nil-observer dispatch allocates %.1f/run, want 0", allocs)
	}
}

// BenchmarkKernelDispatchObserved is BenchmarkKernelDispatch with an
// observer installed — the incremental cost of the tracing hook when it
// IS active (compare against BenchmarkKernelDispatch for the delta; the
// nil path is covered by TestObserverNilZeroAlloc).
func BenchmarkKernelDispatchObserved(b *testing.B) {
	b.ReportAllocs()
	fn := func() {}
	const batch = 1024
	k := New()
	var count uint64
	k.SetDispatchObserver(func(seq uint64, at time.Duration) { count++ })
	b.ResetTimer()
	for n := b.N; n > 0; n -= batch {
		m := batch
		if m > n {
			m = n
		}
		for j := 0; j < m; j++ {
			k.Schedule(time.Duration(j&127)*time.Microsecond, fn)
		}
		k.MustRun()
	}
	_ = count
}
