package sim

import "time"

// The event queue is two-tier (a calendar/ladder queue):
//
//   - A "front" tier: the monomorphic 4-ary min-heap over a concrete
//     event slice (no container/heap, no interface{} boxing). It holds
//     exactly the events with at < frontEnd, and is the only structure
//     pops ever touch, so the (at, seq) total order is enforced by one
//     comparator in one place.
//   - A "near" tier: a ring of ladderBuckets unsorted buckets, bucket i
//     covering the half-open window [frontEnd + i·width, frontEnd +
//     (i+1)·width). Scheduling into the near future is an O(1) append.
//   - A "far" tier: one unsorted overflow slice for events at or beyond
//     the horizon (frontEnd + ladderBuckets·width).
//
// When the front heap drains, the next nonempty bucket is swept into it
// wholesale (heap pushes, O(m log m) for a bucket of m — m is small when
// width matches the event density). When the near tier drains too, the
// far tier is reseeded: width is recalibrated from the overflow's actual
// time span and its events are redistributed. Because Schedule refuses
// events in the past, nothing can land inside a window the front tier has
// already passed, so the dispatch order is byte-identical to running the
// plain heap — TestQueueKindsIdenticalOrder pins that, and the full
// conformance registry + replay goldens exercise it end to end.
//
// Amortized cost: O(1) schedule, O(1) dispatch when width tracks density
// (each event is appended once, swept into the heap once, and heap
// residency is bounded by one bucket's population instead of the whole
// queue). A 100k–1M-rank simulation keeps millions of pending events; a
// single flat heap pays O(log n) with cache-hostile strides on every one
// of them, which is exactly the ceiling this structure removes.

const (
	// ladderBuckets is the near-tier ring size. 256 windows keeps the
	// sweep granularity fine enough that the front heap stays small while
	// bounding the worst-case empty-bucket scan.
	ladderBuckets = 256

	// shrinkFloor is the capacity below which drained event slices are
	// never reallocated: steady-state small queues keep their storage,
	// while a burst's capacity is released once occupancy falls under a
	// quarter (see eventHeap.pop and eventQueue.fill).
	shrinkFloor = 1024
)

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

// before is the dispatch order: time, then insertion sequence — the
// tie-break that makes simultaneous events run in schedule order.
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventHeap is a monomorphic 4-ary min-heap ordered by event.before.
// Push and pop touch concrete events only — no interface{} crossings.
// The 4-ary layout halves the tree depth of a binary heap and keeps the
// children of a node on one cache line.
type eventHeap struct {
	a []event
}

func (q *eventHeap) len() int { return len(q.a) }

func (q *eventHeap) push(e event) {
	q.a = append(q.a, e)
	i := len(q.a) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !e.before(q.a[p]) {
			break
		}
		q.a[i] = q.a[p]
		i = p
	}
	q.a[i] = e
}

func (q *eventHeap) pop() event {
	root := q.a[0]
	n := len(q.a) - 1
	last := q.a[n]
	q.a[n] = event{} // drop the fn reference so the GC can reclaim it
	q.a = q.a[:n]
	if n > 0 {
		q.siftDown(last)
	}
	// Shrink-on-drain: a burst (one 10⁷-event spike) must not pin its
	// backing array for the kernel's lifetime. Halving when occupancy
	// falls under a quarter keeps the amortized cost O(1) and leaves
	// hysteresis so steady-state push/pop never thrashes the allocator.
	if c := cap(q.a); c > shrinkFloor && n < c/4 {
		q.a = append(make([]event, 0, c/2), q.a...)
	}
	return root
}

// siftDown re-inserts e from the root, walking the hole down toward the
// smallest child until e fits.
func (q *eventHeap) siftDown(e event) {
	a := q.a
	n := len(a)
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		m := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if a[c].before(a[m]) {
				m = c
			}
		}
		if !a[m].before(e) {
			break
		}
		a[i] = a[m]
		i = m
	}
	a[i] = e
}

// QueueKind selects the kernel's event-queue implementation.
type QueueKind uint8

const (
	// QueueLadder is the default two-tier bucketed calendar queue:
	// O(1) amortized schedule/dispatch, same dispatch order as the heap.
	QueueLadder QueueKind = iota
	// QueueHeap is the flat 4-ary min-heap, kept as the reference
	// implementation for differential tests and as an escape hatch.
	QueueHeap
)

// eventQueue is the kernel's pending-event set. With heapOnly set it
// degenerates to the plain front heap (QueueHeap); otherwise it is the
// full ladder described above (QueueLadder).
type eventQueue struct {
	heapOnly bool
	front    eventHeap

	// The near-tier geometry (width, horizon) is FIXED for a whole epoch:
	// it is set only by reseed, which runs when the front heap and every
	// bucket are empty. frontEnd advances through the epoch's windows as
	// buckets drain, but the horizon never slides — that is what makes
	// the tier ordering provable (front < frontEnd ≤ buckets < horizon ≤
	// overflow): an epoch's overflow events can never be out-dispatched
	// by a bucket event, because no bucket event at or past the horizon
	// exists. A sliding horizon would admit exactly that violation.
	buckets  [ladderBuckets][]event
	bhead    int           // ring index of the bucket starting at frontEnd
	bcount   int           // events across all buckets
	frontEnd time.Duration // exclusive upper bound of the front tier
	width    time.Duration // bucket window; 0 until the first reseed
	horizon  time.Duration // epoch upper bound: reseed-time frontEnd + ladderBuckets·width

	overflow []event   // far tier: events at or beyond the horizon
	spare    []event   // drained overflow backing kept for reuse (≤ shrinkFloor)
	pool     [][]event // drained bucket backings kept for reuse (≤ shrinkFloor)
	total    int
}

func (q *eventQueue) len() int { return q.total }

func (q *eventQueue) push(e event) {
	q.total++
	if q.heapOnly {
		q.front.push(e)
		return
	}
	q.place(e)
}

// place routes an event to its tier. Events inside the front window go
// straight to the heap (this is where same-instant Schedule(0) events
// land, preserving the insertion-order tie-break); near-future events are
// an O(1) bucket append; the rest overflow to the far tier.
func (q *eventQueue) place(e event) {
	if e.at < q.frontEnd {
		q.front.push(e)
		return
	}
	if q.width > 0 && e.at < q.horizon {
		i := (q.bhead + int((e.at-q.frontEnd)/q.width)) % ladderBuckets
		b := q.buckets[i]
		if b == nil && len(q.pool) > 0 {
			// First event in this window: reuse a drained bucket's backing
			// so the steady-state ring rotation stays allocation-free.
			b = q.pool[len(q.pool)-1]
			q.pool = q.pool[:len(q.pool)-1]
		}
		q.buckets[i] = append(b, e)
		q.bcount++
		return
	}
	q.overflow = append(q.overflow, e)
}

func (q *eventQueue) pop() event {
	if q.front.len() == 0 {
		q.fill()
	}
	q.total--
	return q.front.pop()
}

// fill advances the ladder until the front heap holds the next time
// slice. Caller guarantees the queue is nonempty.
func (q *eventQueue) fill() {
	for {
		if q.bcount == 0 {
			if len(q.overflow) == 0 {
				panic("sim: pop from empty event queue")
			}
			q.reseed()
		}
		for q.bcount > 0 {
			b := q.buckets[q.bhead]
			q.buckets[q.bhead] = nil
			q.bhead = (q.bhead + 1) % ladderBuckets
			q.frontEnd += q.width
			if len(b) > 0 {
				q.bcount -= len(b)
				for i := range b {
					q.front.push(b[i])
					b[i] = event{} // drop the fn reference
				}
				// Pool the drained backing for reuse, unless a burst
				// inflated it past the shrink floor — then let the GC
				// reclaim it (shrink-on-drain).
				if cap(b) <= shrinkFloor {
					q.pool = append(q.pool, b[:0])
				}
				return
			}
		}
	}
}

// reseed recalibrates the ladder from the far tier: the new front window
// starts at the overflow's earliest event and the bucket width is fitted
// to its span, so the redistribution spreads events one-bucket-deep on
// average regardless of the workload's time scale.
func (q *eventQueue) reseed() {
	old := q.overflow
	q.overflow = q.spare // zeroed, length 0 (or nil on the first reseed)
	q.spare = nil
	minAt, maxAt := old[0].at, old[0].at
	for _, e := range old[1:] {
		if e.at < minAt {
			minAt = e.at
		}
		if e.at > maxAt {
			maxAt = e.at
		}
	}
	q.width = (maxAt-minAt)/ladderBuckets + 1
	q.frontEnd = minAt
	q.bhead = 0
	q.horizon = q.frontEnd + ladderBuckets*q.width
	if q.horizon < q.frontEnd { // duration overflow: clamp to the far edge
		q.horizon = 1<<63 - 1
	}
	for i := range old {
		q.place(old[i])
		old[i] = event{} // drop the fn reference before recycling
	}
	// Recycle the drained backing for the next overflow cycle so a
	// steady-state reseed rhythm stays allocation-free — but release it
	// when a burst inflated it past the shrink floor.
	if cap(old) <= shrinkFloor {
		q.spare = old[:0]
	}
}
