package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"adapt/internal/comm"
	"adapt/internal/metrics"
	"adapt/internal/perf"
)

// Stats is a snapshot of the server's lifetime counters.
type Stats struct {
	Sessions       uint64 // sessions accepted
	SessionsClosed uint64 // sessions fully torn down
	Requests       uint64 // collective requests admitted
	Responses      uint64 // responses delivered (results + typed errors)
	ProxyOps       uint64 // point-to-point proxy operations applied
	Overloads      uint64 // typed Overloaded rejections
	Backends       uint64 // backend worlds ever built
}

// Server is the collective-as-a-service daemon core.
type Server struct {
	cfg Config
	ln  net.Listener

	mu       sync.Mutex
	backends map[backendKey]*backend
	genNext  map[backendKey]uint64
	all      []*backend // every backend ever built, for shutdown
	sessions map[uint64]*session
	sessNext uint64
	closed   bool

	sessWG sync.WaitGroup

	stSessions       atomic.Uint64
	stSessionsClosed atomic.Uint64
	stRequests       atomic.Uint64
	stResponses      atomic.Uint64
	stProxyOps       atomic.Uint64
	stOverloads      atomic.Uint64
	stBackends       atomic.Uint64
}

// New builds a Server listening on cfg.Addr and starts accepting.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{
		cfg:      cfg,
		ln:       ln,
		backends: map[backendKey]*backend{},
		genNext:  map[backendKey]uint64{},
		sessions: map[uint64]*session{},
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats snapshots the lifetime counters.
func (s *Server) Stats() Stats {
	return Stats{
		Sessions:       s.stSessions.Load(),
		SessionsClosed: s.stSessionsClosed.Load(),
		Requests:       s.stRequests.Load(),
		Responses:      s.stResponses.Load(),
		ProxyOps:       s.stProxyOps.Load(),
		Overloads:      s.stOverloads.Load(),
		Backends:       s.stBackends.Load(),
	}
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		if len(s.sessions) >= s.cfg.MaxSessions {
			s.mu.Unlock()
			s.stOverloads.Add(1)
			perf.RecordServeOverload()
			conn.Write(encodeErr(errMsg{ID: 0, Code: CodeOverloaded, Msg: "session limit reached"}))
			conn.Close()
			continue
		}
		s.sessNext++
		sess := newSession(s, s.sessNext, conn)
		s.sessions[sess.id] = sess
		s.sessWG.Add(1)
		s.mu.Unlock()
		s.stSessions.Add(1)
		perf.RecordServeSession()
		mSessionsLive.Inc()
		go sess.run()
	}
}

// backendFor returns (creating if needed) the cached backend for key.
func (s *Server) backendFor(key backendKey) (*backend, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrShutdown
	}
	if key.world > s.cfg.MaxWorld {
		return nil, &RequestError{Code: CodeBadRequest,
			Msg: fmt.Sprintf("world %d exceeds server cap %d", key.world, s.cfg.MaxWorld)}
	}
	if b := s.backends[key]; b != nil {
		b.mu.Lock()
		b.refs++
		b.mu.Unlock()
		return b, nil
	}
	s.genNext[key]++
	b, err := newBackend(s, key, s.genNext[key])
	if err != nil {
		return nil, err
	}
	b.refs = 1
	s.backends[key] = b
	s.all = append(s.all, b)
	s.stBackends.Add(1)
	return b, nil
}

// evictBackend removes a degraded backend from the cache: live sessions
// keep it (their FT collectives heal around the dead rank); the next
// Hello for its key builds a fresh generation.
func (s *Server) evictBackend(b *backend) {
	s.mu.Lock()
	if s.backends[b.key] == b {
		delete(s.backends, b.key)
	}
	s.mu.Unlock()
	b.mu.Lock()
	b.evicted = true
	idle := b.refs == 0
	b.mu.Unlock()
	if idle {
		// Never tear down from an executor goroutine (shutdown waits on
		// the executor WaitGroup).
		go b.shutdown()
	}
}

// releaseBackend drops one session's reference. Cached backends outlive
// their sessions — that is the communicator-caching point — but a
// degraded, evicted backend is torn down at zero references.
func (s *Server) releaseBackend(b *backend) {
	b.mu.Lock()
	b.refs--
	idle := b.refs == 0 && b.evicted
	b.mu.Unlock()
	if idle {
		go b.shutdown()
	}
}

// Close drains and stops the server: stop accepting, give live sessions
// DrainTimeout to finish (then cut them), stop every backend world.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	backends := append([]*backend(nil), s.all...)
	s.mu.Unlock()

	s.ln.Close()
	drainT0 := metrics.Clock()
	for _, sess := range sessions {
		sess.beginShutdown()
	}
	done := make(chan struct{})
	go func() { s.sessWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		for _, sess := range sessions {
			sess.conn.Close()
		}
		<-done
	}
	mDrainServer.ObserveSince(drainT0)
	for _, b := range backends {
		b.shutdown()
	}
	return nil
}

func (s *Server) dropSession(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess.id)
	s.mu.Unlock()
	s.stSessionsClosed.Add(1)
	mSessionsLive.Dec()
}

// session is one client connection's server-side state.
type session struct {
	id   uint64
	srv  *Server
	conn net.Conn

	be        *backend
	proxyRank int

	out        chan []byte // encoded frames for the writer goroutine
	gone       chan struct{}
	goneOnce   sync.Once
	pending    atomic.Int32
	draining   atomic.Bool
	shutdown   atomic.Bool
	drained    chan struct{}
	drainOnce  sync.Once
	sessErrRaw atomic.Bool
}

func newSession(s *Server, id uint64, conn net.Conn) *session {
	outCap := s.cfg.SessionPending + 8
	if outCap < 1024 {
		outCap = 1024 // proxy sessions stream many op completions
	}
	return &session{
		id:        id,
		srv:       s,
		conn:      conn,
		proxyRank: -1,
		out:       make(chan []byte, outCap),
		gone:      make(chan struct{}),
		drained:   make(chan struct{}),
	}
}

// send hands an encoded frame to the writer; drops it if the session is
// already gone (the client vanished mid-flight).
func (s *session) send(frame []byte) {
	select {
	case s.out <- frame:
	case <-s.gone:
	}
}

// sessionError pushes a session-fatal typed error (request id 0): the
// client fails all pending and future calls with it.
func (s *session) sessionError(e *RequestError) {
	s.sessErrRaw.Store(true)
	s.send(encodeErr(errMsg{ID: 0, Code: e.Code, Msg: e.Msg}))
}

// beginShutdown (Server.Close) rejects new requests with CodeShutdown,
// lets in-flight work drain, then completes the Bye handshake and cuts
// the connection.
func (s *session) beginShutdown() {
	s.shutdown.Store(true)
	s.draining.Store(true)
	go func() {
		select {
		case <-s.drained:
			s.send(encodeBye())
			s.send(nil)
		case <-s.gone:
		}
	}()
	s.maybeDrained()
}

func (s *session) maybeDrained() {
	if s.draining.Load() && s.pending.Load() == 0 {
		s.drainOnce.Do(func() { close(s.drained) })
	}
}

func (s *session) markGone() {
	s.goneOnce.Do(func() { close(s.gone) })
}

// run is the session lifecycle: writer goroutine + reader loop, then
// teardown (unbind, release backend, unregister).
func (s *session) run() {
	defer s.srv.sessWG.Done()
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for {
			select {
			case frame := <-s.out:
				if frame == nil {
					// Sentinel: everything queued before it has flushed;
					// cut the connection to unblock the reader.
					s.conn.Close()
					return
				}
				if _, err := s.conn.Write(frame); err != nil {
					return
				}
			case <-s.gone:
				// Flush anything queued before teardown — a session-fatal
				// rejection must reach the client, not race the close.
				for {
					select {
					case frame := <-s.out:
						if frame == nil {
							s.conn.Close()
							return
						}
						if _, err := s.conn.Write(frame); err != nil {
							return
						}
					default:
						return
					}
				}
			}
		}
	}()

	s.reader()

	s.markGone()
	<-writerDone
	s.conn.Close()
	if s.be != nil {
		if s.proxyRank >= 0 {
			s.be.unbindProxy(s.proxyRank, s)
		}
		s.srv.releaseBackend(s.be)
	}
	s.srv.dropSession(s)
}

// reader consumes client frames until Close handshake, EOF, or a fatal
// protocol violation.
func (s *session) reader() {
	br := bufio.NewReaderSize(s.conn, 64*1024)
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			var pe *ProtoError
			if errors.As(err, &pe) {
				s.send(encodeErr(errMsg{ID: 0, Code: CodeBadRequest, Msg: pe.Reason}))
			}
			return // EOF/teardown: abrupt close, in-flight work completes into the void
		}
		msg, err := parseClientFrame(typ, payload)
		if err != nil {
			s.send(encodeErr(errMsg{ID: 0, Code: CodeBadRequest, Msg: err.Error()}))
			return
		}
		if s.be == nil {
			// First frame must be Hello.
			hello, ok := msg.(helloMsg)
			if !ok {
				s.send(encodeErr(errMsg{ID: 0, Code: CodeBadRequest, Msg: "first frame must be hello"}))
				return
			}
			if !s.handleHello(hello) {
				return
			}
			continue
		}
		switch typ {
		case cfHello:
			s.send(encodeErr(errMsg{ID: 0, Code: CodeBadRequest, Msg: "duplicate hello"}))
			return
		case cfAllreduce:
			s.handleReduce(msg.(reduceMsg), false)
		case cfReduceFT:
			s.handleReduce(msg.(reduceMsg), true)
		case cfIsend:
			m := msg.(isendMsg)
			if !s.handleProxyOp(m.ID, &job{
				kind: jobIsend, sess: s, opID: m.ID, peer: m.Dst, tag: m.Tag,
				msg: comm.Msg{Data: append([]byte(nil), m.Data...), Size: m.Size},
			}) {
				continue
			}
		case cfIrecv:
			m := msg.(irecvMsg)
			if !s.handleProxyOp(m.ID, &job{
				kind: jobIrecv, sess: s, opID: m.ID, peer: m.Src, tag: m.Tag,
			}) {
				continue
			}
		case cfClose:
			s.handleClose()
			return
		}
	}
}

// handleHello binds the session to its (possibly cached) backend.
func (s *session) handleHello(m helloMsg) bool {
	key := backendKey{world: m.World, group: m.Group, tagspace: m.TagSpace, proxy: m.ProxyRank >= 0}
	b, err := s.srv.backendFor(key)
	if err != nil {
		s.send(encodeErr(errMsg{ID: 0, Code: codeOf(err), Msg: err.Error()}))
		return false
	}
	if m.ProxyRank >= 0 {
		if err := b.bindProxy(m.ProxyRank, s); err != nil {
			s.srv.releaseBackend(b)
			s.send(encodeErr(errMsg{ID: 0, Code: codeOf(err), Msg: err.Error()}))
			return false
		}
		s.proxyRank = m.ProxyRank
	}
	s.be = b
	s.send(encodeWelcome(welcomeMsg{Session: s.id, Gen: b.gen}))
	return true
}

// admit performs session-level admission for one request; on rejection
// the typed error frame is already sent.
func (s *session) admit(id uint64) bool {
	if s.shutdown.Load() || s.draining.Load() {
		s.send(encodeErr(errMsg{ID: id, Code: CodeShutdown, Msg: "session draining"}))
		return false
	}
	if int(s.pending.Load()) >= s.srv.cfg.SessionPending {
		s.srv.stOverloads.Add(1)
		perf.RecordServeOverload()
		s.send(encodeErr(errMsg{ID: id, Code: CodeOverloaded, Msg: "session in-flight cap reached"}))
		return false
	}
	mSessPending.Observe(uint64(s.pending.Add(1)))
	// Re-check after the increment: beginShutdown stores draining and
	// then consults pending, so a pre-increment check alone lets Close
	// land in the gap, see pending==0, and declare the session drained
	// with this request still in flight. With both sides writing before
	// reading, either this re-check sees draining or maybeDrained sees
	// the increment — the request is rejected or counted, never dropped.
	if s.draining.Load() {
		s.pending.Add(-1)
		s.maybeDrained()
		s.send(encodeErr(errMsg{ID: id, Code: CodeShutdown, Msg: "session draining"}))
		return false
	}
	return true
}

// respond delivers one request's outcome and credits the session's
// in-flight budget.
func (s *session) respond(id uint64, out []byte, mask []bool, err error) {
	if err != nil {
		s.send(encodeErr(errMsg{ID: id, Code: codeOf(err), Msg: err.Error()}))
	} else {
		s.send(encodeResult(resultMsg{ID: id, Mask: mask, Data: out}))
	}
	s.srv.stResponses.Add(1)
	s.pending.Add(-1)
	s.maybeDrained()
}

func (s *session) handleReduce(m reduceMsg, ft bool) {
	if s.be.key.proxy {
		s.send(encodeErr(errMsg{ID: m.ID, Code: CodeBadRequest, Msg: "proxy session serves point-to-point ops only"}))
		return
	}
	if len(m.Vals)%s.be.n != 0 {
		s.send(encodeErr(errMsg{ID: m.ID, Code: CodeBadRequest,
			Msg: fmt.Sprintf("%d values not divisible by world %d", len(m.Vals), s.be.n)}))
		return
	}
	if s.be.armed && !ft {
		s.send(encodeErr(errMsg{ID: m.ID, Code: CodeBadRequest, Msg: "crash-armed group serves FT requests only"}))
		return
	}
	if !s.admit(m.ID) {
		return
	}
	s.srv.stRequests.Add(1)
	perf.RecordServeRequest()
	mReqBytes.Add(uint64(len(m.Vals)) * 8)
	elems := len(m.Vals) / s.be.n
	id := m.ID
	deliver := func(out []byte, mask []bool, err error) { s.respond(id, out, mask, err) }
	// Latency brackets only exist while telemetry is on: a zero Clock
	// start means no closure, no timestamp, nothing recorded.
	if t0 := metrics.Clock(); t0 != 0 {
		h := mLatAllreduce
		if ft {
			h = mLatReduceFT
		}
		inner := deliver
		deliver = func(out []byte, mask []bool, err error) {
			h.ObserveSince(t0)
			inner(out, mask, err)
		}
	}
	if ft {
		s.be.submitFT(m.Vals, elems, deliver)
	} else {
		s.be.fuse.add(m.Vals, elems, deliver)
	}
}

// handleProxyOp queues one point-to-point op on the bound rank.
func (s *session) handleProxyOp(id uint64, j *job) bool {
	if s.proxyRank < 0 {
		s.send(encodeErr(errMsg{ID: id, Code: CodeBadRequest, Msg: "session is not rank-bound"}))
		return false
	}
	if s.shutdown.Load() || s.draining.Load() {
		s.send(encodeErr(errMsg{ID: id, Code: CodeShutdown, Msg: "session draining"}))
		return false
	}
	s.pending.Add(1)
	// Same increment-then-re-check as admit: beginShutdown racing this
	// admission must either be observed here or observe the increment.
	if s.draining.Load() {
		s.pending.Add(-1)
		s.maybeDrained()
		s.send(encodeErr(errMsg{ID: id, Code: CodeShutdown, Msg: "session draining"}))
		return false
	}
	s.srv.stProxyOps.Add(1)
	j.t0 = metrics.Clock()
	if err := s.be.submitProxy(s.proxyRank, j); err != nil {
		s.pending.Add(-1)
		s.maybeDrained()
		s.send(encodeErr(errMsg{ID: id, Code: codeOf(err), Msg: err.Error()}))
		return false
	}
	return true
}

// opDone reports a finished proxy op back to the client. Failed ops
// (e.g. a send timing out under chaos) travel as a typed error frame
// carrying the op id, which the client folds back into the Status.
func (s *session) opDone(id uint64, st comm.Status) {
	if st.Err != nil {
		s.send(encodeErr(errMsg{ID: id, Code: codeOf(st.Err), Msg: st.Err.Error()}))
		s.srv.stResponses.Add(1)
		s.pending.Add(-1)
		s.maybeDrained()
		return
	}
	m := opDoneMsg{ID: id, Source: st.Source, Tag: st.Tag, Size: st.Msg.Size}
	if st.Msg.Data != nil {
		m.HasData = true
		m.Data = st.Msg.Data
	}
	s.send(encodeOpDone(m))
	s.srv.stResponses.Add(1)
	s.pending.Add(-1)
	s.maybeDrained()
}

// handleClose drains in-flight work, then completes the Bye handshake.
func (s *session) handleClose() {
	drainT0 := metrics.Clock()
	s.draining.Store(true)
	s.maybeDrained()
	defer mDrainSession.ObserveSince(drainT0)
	select {
	case <-s.drained:
	case <-time.After(s.srv.cfg.DrainTimeout):
	case <-s.gone:
		return
	}
	s.send(encodeBye())
	// Let the writer flush the tail before run() tears the conn down.
	s.send(nil)
}

func encodeBye() []byte { return appendFrame(nil, sfBye, nil) }

// codeOf extracts the wire code from a typed error (Internal otherwise).
func codeOf(err error) Code {
	var re *RequestError
	if errors.As(err, &re) {
		return re.Code
	}
	return CodeInternal
}
