package serve

import (
	"sync"
	"time"

	"adapt/internal/comm"
)

// RemoteComm is the daemon-backed comm.Comm adapter: a rank-bound proxy
// session whose point-to-point operations ship to adaptd as cfIsend /
// cfIrecv frames, execute on the bound backend rank's executor, and
// complete back over sfOpDone notifications. Collectives built from
// comm.Comm primitives — the whole conformance grid — therefore run
// through the daemon unchanged.
//
// The usual single-goroutine owner discipline applies: all methods must
// be called from one goroutine; callbacks fire on it from inside
// Progress/Wait. The session reader goroutine only deposits completions
// into a mailbox the owner drains.
type RemoteComm struct {
	sess  *Session
	rank  int
	size  int
	start time.Time

	mu       sync.Mutex
	ops      map[uint64]*rreq
	readyQ   []*rreq // completed, callback/processing not yet credited
	nextID   uint64
	dead     error
	wake     chan struct{} // one-token completion notifier
	inflight int
}

// rreq is one in-flight remote operation.
type rreq struct {
	c      *RemoteComm
	id     uint64
	isSend bool
	done   bool
	st     comm.Status
	cb     func(comm.Status)
}

// Test synchronizes against the session reader depositing completions.
func (r *rreq) Test() (comm.Status, bool) {
	r.c.mu.Lock()
	defer r.c.mu.Unlock()
	return r.st, r.done
}

func (r *rreq) IsSend() bool { return r.isSend }

func newRemoteComm(s *Session, rank, size int) *RemoteComm {
	return &RemoteComm{
		sess: s, rank: rank, size: size, start: time.Now(),
		ops: map[uint64]*rreq{}, wake: make(chan struct{}, 1),
	}
}

// Rank returns the bound backend rank.
func (c *RemoteComm) Rank() int { return c.rank }

// Size returns the backend world size.
func (c *RemoteComm) Size() int { return c.size }

// complete lands one sfOpDone from the session reader goroutine.
func (c *RemoteComm) complete(id uint64, st comm.Status) {
	c.mu.Lock()
	r := c.ops[id]
	if r == nil || r.done {
		c.mu.Unlock()
		return
	}
	delete(c.ops, id)
	r.done = true
	r.st = st
	c.inflight--
	c.readyQ = append(c.readyQ, r)
	c.mu.Unlock()
	c.signal()
}

// fail lands the sticky session error on every current op; later ops
// are born failed.
func (c *RemoteComm) fail(err error) {
	c.mu.Lock()
	if c.dead == nil {
		c.dead = err
	}
	for id, r := range c.ops {
		delete(c.ops, id)
		r.done = true
		r.st = comm.Status{Source: comm.AnySource, Err: c.dead}
		c.inflight--
		c.readyQ = append(c.readyQ, r)
	}
	c.mu.Unlock()
	c.signal()
}

func (c *RemoteComm) signal() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// startOp registers a new remote op and ships its frame.
func (c *RemoteComm) startOp(isSend bool, frame func(id uint64) []byte) *rreq {
	c.mu.Lock()
	c.nextID++
	r := &rreq{c: c, id: c.nextID, isSend: isSend}
	if c.dead != nil {
		r.done = true
		r.st = comm.Status{Source: comm.AnySource, Err: c.dead}
		c.readyQ = append(c.readyQ, r)
		c.mu.Unlock()
		c.signal()
		return r
	}
	c.ops[r.id] = r
	c.inflight++
	c.mu.Unlock()
	if err := c.sess.writeFrame(frame(r.id)); err != nil {
		c.fail(err)
	}
	return r
}

// Isend starts a non-blocking remote send.
func (c *RemoteComm) Isend(dst int, tag comm.Tag, msg comm.Msg) comm.Request {
	return c.startOp(true, func(id uint64) []byte {
		return encodeIsend(isendMsg{
			ID: id, Dst: dst, Tag: tag, Size: msg.Size,
			HasData: msg.Data != nil, Data: msg.Data,
		})
	})
}

// Irecv posts a non-blocking remote receive.
func (c *RemoteComm) Irecv(src int, tag comm.Tag) comm.Request {
	return c.startOp(false, func(id uint64) []byte {
		return encodeIrecv(irecvMsg{ID: id, Src: src, Tag: tag})
	})
}

// Send is the blocking send.
func (c *RemoteComm) Send(dst int, tag comm.Tag, msg comm.Msg) {
	c.Wait(c.Isend(dst, tag, msg))
}

// Recv is the blocking receive.
func (c *RemoteComm) Recv(src int, tag comm.Tag) comm.Status {
	return c.Wait(c.Irecv(src, tag))
}

// drain fires ready callbacks on the owner goroutine and reports how
// many completions it processed.
func (c *RemoteComm) drain() int {
	c.mu.Lock()
	q := c.readyQ
	c.readyQ = nil
	c.mu.Unlock()
	for _, r := range q {
		if r.cb != nil {
			cb := r.cb
			r.cb = nil
			cb(r.st)
		}
	}
	return len(q)
}

// Wait blocks until r completes, firing ready callbacks meanwhile.
func (c *RemoteComm) Wait(r comm.Request) comm.Status {
	for {
		c.drain()
		if st, ok := r.Test(); ok {
			return st
		}
		<-c.wake
	}
}

// WaitAll blocks until every request completes.
func (c *RemoteComm) WaitAll(rs []comm.Request) {
	for _, r := range rs {
		c.Wait(r)
	}
}

// WaitAny blocks until at least one request completes and returns its
// index and status. As with MPI_Waitany's inactive handles, an
// already-completed request (ours or not) returns immediately.
func (c *RemoteComm) WaitAny(rs []comm.Request) (int, comm.Status) {
	for {
		c.drain()
		for i, r := range rs {
			if st, ok := r.Test(); ok {
				return i, st
			}
		}
		<-c.wake
	}
}

// OnComplete attaches a completion callback; it fires on the owner
// goroutine during the next Progress/Wait if r already completed.
func (c *RemoteComm) OnComplete(r comm.Request, fn func(comm.Status)) {
	req := r.(*rreq)
	c.mu.Lock()
	if req.done {
		req.cb = fn
		c.readyQ = append(c.readyQ, req)
		c.mu.Unlock()
		c.signal()
		return
	}
	req.cb = fn
	c.mu.Unlock()
}

// Progress blocks until at least one pending completion is processed,
// fires ready callbacks, and returns. It panics when nothing is in
// flight — a stuck progress loop is a bug.
func (c *RemoteComm) Progress() {
	for {
		if c.drain() > 0 {
			return
		}
		c.mu.Lock()
		idle := c.inflight == 0 && len(c.readyQ) == 0
		c.mu.Unlock()
		if idle {
			panic("serve: RemoteComm.Progress with no operation in flight")
		}
		<-c.wake
	}
}

// TryProgress fires ready callbacks without blocking and reports
// whether it processed anything.
func (c *RemoteComm) TryProgress() bool { return c.drain() > 0 }

// Compute is local work: the client performs it for real (no-op here —
// callers do their arithmetic inline, as with the live runtime).
func (c *RemoteComm) Compute(n int, kind comm.ComputeKind) {}

// Now returns wall time elapsed on this client's clock.
func (c *RemoteComm) Now() time.Duration { return time.Since(c.start) }
