package serve

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"adapt/internal/comm"
)

// TestProxyPingPong drives the daemon-backed comm.Comm adapter with raw
// point-to-point traffic: eager and rendezvous-sized messages both ways,
// with data, sources, and tags intact.
func TestProxyPingPong(t *testing.T) {
	srv := newTestServer(t, Config{DrainTimeout: 2 * time.Second})
	const world = 2
	opts := func(r int) SessionOpts {
		return SessionOpts{World: world, Group: "pp", ProxyRank: r}
	}
	s0, err := Dial(srv.Addr(), opts(0))
	if err != nil {
		t.Fatalf("Dial rank 0: %v", err)
	}
	defer s0.Close()
	s1, err := Dial(srv.Addr(), opts(1))
	if err != nil {
		t.Fatalf("Dial rank 1: %v", err)
	}
	defer s1.Close()
	c0, c1 := s0.Comm(), s1.Comm()
	if c0.Rank() != 0 || c0.Size() != world || c1.Rank() != 1 {
		t.Fatalf("adapter identity: rank %d size %d / rank %d", c0.Rank(), c0.Size(), c1.Rank())
	}

	for _, size := range []int{64, 64 * 1024} { // eager and rendezvous
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i * 31)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			c0.Send(1, comm.Tag(7), comm.Bytes(payload))
		}()
		st := c1.Recv(0, comm.Tag(7))
		wg.Wait()
		if st.Err != nil {
			t.Fatalf("size %d: recv error: %v", size, st.Err)
		}
		if st.Source != 0 || st.Tag != comm.Tag(7) {
			t.Fatalf("size %d: status source %d tag %d", size, st.Source, st.Tag)
		}
		if !bytes.Equal(st.Msg.Data, payload) {
			t.Fatalf("size %d: payload corrupted in transit", size)
		}
		// Reply the other way with a transformed payload.
		reply := append([]byte(nil), st.Msg.Data...)
		for i := range reply {
			reply[i] ^= 0xff
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			c1.Send(0, comm.Tag(9), comm.Bytes(reply))
		}()
		back := c0.Recv(1, comm.Tag(9))
		wg.Wait()
		if back.Err != nil || !bytes.Equal(back.Msg.Data, reply) {
			t.Fatalf("size %d: reply corrupted (err %v)", size, back.Err)
		}
	}
}

// TestProxyNonBlockingAndCallbacks covers Isend/Irecv/WaitAny/OnComplete
// semantics of the adapter: callbacks fire on the owner goroutine from
// inside Wait/Progress, wildcard receives resolve sources.
func TestProxyNonBlockingAndCallbacks(t *testing.T) {
	srv := newTestServer(t, Config{DrainTimeout: 2 * time.Second})
	const world = 3
	sessions := make([]*Session, world)
	for r := 0; r < world; r++ {
		s, err := Dial(srv.Addr(), SessionOpts{World: world, Group: "nb", ProxyRank: r})
		if err != nil {
			t.Fatalf("Dial rank %d: %v", r, err)
		}
		defer s.Close()
		sessions[r] = s
	}
	var wg sync.WaitGroup
	for r := 1; r < world; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := sessions[r].Comm()
			c.Send(0, comm.Tag(int64(r)), comm.Bytes([]byte{byte(r)}))
		}()
	}
	c0 := sessions[0].Comm()
	rs := []comm.Request{
		c0.Irecv(comm.AnySource, comm.Tag(1)),
		c0.Irecv(2, comm.AnyTag),
	}
	fired := 0
	c0.OnComplete(rs[0], func(st comm.Status) {
		if st.Source != 1 {
			t.Errorf("wildcard-source recv matched source %d, want 1", st.Source)
		}
		fired++
	})
	idx := []int{0, 1} // original identity of each live handle
	for len(rs) > 0 {
		i, st := c0.WaitAny(rs)
		if st.Err != nil {
			t.Fatalf("request %d: %v", idx[i], st.Err)
		}
		if idx[i] == 1 && st.Source != 2 {
			t.Fatalf("recv from rank 2 matched source %d", st.Source)
		}
		// Remove the completed handle, as the WaitAny contract requires.
		rs = append(rs[:i], rs[i+1:]...)
		idx = append(idx[:i], idx[i+1:]...)
	}
	wg.Wait()
	if fired != 1 {
		t.Fatalf("OnComplete fired %d times, want 1", fired)
	}
}

// TestProxyRankExclusivity: one live proxy session per rank; rebinding a
// bound rank is a typed BadRequest, and the slot frees on close.
func TestProxyRankExclusivity(t *testing.T) {
	srv := newTestServer(t, Config{DrainTimeout: 2 * time.Second})
	opts := SessionOpts{World: 2, Group: "x", ProxyRank: 0}
	s1, err := Dial(srv.Addr(), opts)
	if err != nil {
		t.Fatalf("Dial 1: %v", err)
	}
	if _, err := Dial(srv.Addr(), opts); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("double bind: got %v, want typed BadRequest", err)
	}
	s1.Close()
	s2, err := Dial(srv.Addr(), opts)
	if err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	s2.Close()
}
