package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"adapt/internal/comm"
)

// SessionOpts names the backend a client session binds to.
type SessionOpts struct {
	// World is the backend world size (required, ≥1).
	World int
	// Group isolates backends sharing a world size (tenant label).
	Group string
	// TagSpace isolates tag namespaces within a group.
	TagSpace int
	// ProxyRank, when ≥0, rank-binds the session for point-to-point
	// proxy operations (the RemoteComm adapter). -1 (default via
	// NewSessionOpts) requests a service session.
	ProxyRank int
}

// Session is a client connection to an adaptd daemon.
type Session struct {
	conn net.Conn
	id   uint64
	gen  uint64

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	calls   map[uint64]chan callRes // collective requests in flight
	nextID  uint64
	sessErr error // sticky session-fatal error
	closed  bool

	byeCh    chan struct{}
	byeOnce  sync.Once
	deadCh   chan struct{}
	deadOnce sync.Once

	rc *RemoteComm // non-nil on proxy sessions
}

type callRes struct {
	data []byte
	mask []bool
	err  error
}

// Call is one in-flight asynchronous collective request.
type Call struct {
	s  *Session
	id uint64
	ch chan callRes
}

// Dial connects a new client session and completes the Hello/Welcome
// handshake.
func Dial(addr string, opts SessionOpts) (*Session, error) {
	if opts.World < 1 {
		return nil, fmt.Errorf("serve: dial: world %d < 1", opts.World)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	s := &Session{
		conn:   conn,
		calls:  map[uint64]chan callRes{},
		byeCh:  make(chan struct{}),
		deadCh: make(chan struct{}),
	}
	hello := encodeHello(helloMsg{
		Proto: protoVersion, World: opts.World, TagSpace: uint32(opts.TagSpace),
		ProxyRank: opts.ProxyRank, Group: opts.Group,
	})
	if _, err := conn.Write(hello); err != nil {
		conn.Close()
		return nil, err
	}
	// The Welcome (or the rejection) arrives before anything else.
	br := bufio.NewReaderSize(conn, 64*1024)
	typ, payload, err := readFrame(br)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: dial handshake: %w", err)
	}
	switch typ {
	case sfWelcome:
		w, err := parseWelcome(payload)
		if err != nil {
			conn.Close()
			return nil, err
		}
		s.id, s.gen = w.Session, w.Gen
	case sfErr:
		m, err := parseErr(payload)
		conn.Close()
		if err != nil {
			return nil, err
		}
		return nil, &RequestError{Code: m.Code, Msg: m.Msg}
	default:
		conn.Close()
		return nil, protoErrf("handshake reply type 0x%02x", typ)
	}
	if opts.ProxyRank >= 0 {
		s.rc = newRemoteComm(s, opts.ProxyRank, opts.World)
	}
	go s.readLoop(br)
	return s, nil
}

// ID returns the server-assigned session id.
func (s *Session) ID() uint64 { return s.id }

// Gen returns the backend generation the session bound to; it changes
// when a degraded backend was evicted and rebuilt.
func (s *Session) Gen() uint64 { return s.gen }

// Err returns the sticky session-fatal error, if any.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessErr
}

func (s *Session) readLoop(br *bufio.Reader) {
	var fatal error
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			select {
			case <-s.byeCh:
				// Clean shutdown: the daemon said Bye before hanging up.
			default:
				if !errors.Is(err, net.ErrClosed) {
					fatal = fmt.Errorf("serve: connection lost: %w", err)
				}
			}
			break
		}
		switch typ {
		case sfResult:
			m, err := parseResult(payload)
			if err != nil {
				fatal = err
				break
			}
			s.complete(m.ID, callRes{data: m.Data, mask: m.Mask})
		case sfErr:
			m, err := parseErr(payload)
			if err != nil {
				fatal = err
				break
			}
			re := &RequestError{Code: m.Code, Msg: m.Msg}
			if m.ID == 0 {
				fatal = re // session-fatal: fail everything
			} else if !s.tryComplete(m.ID, callRes{err: re}) && s.rc != nil {
				// Proxy ops report failures as typed error frames too.
				s.rc.complete(m.ID, comm.Status{Source: comm.AnySource, Err: re})
			}
		case sfOpDone:
			m, err := parseOpDone(payload)
			if err != nil {
				fatal = err
				break
			}
			if s.rc == nil {
				fatal = protoErrf("op-done on service session")
				break
			}
			st := comm.Status{Source: m.Source, Tag: m.Tag}
			if m.HasData {
				st.Msg = comm.Bytes(m.Data)
				st.Msg.Size = m.Size
			} else {
				st.Msg = comm.Sized(m.Size)
			}
			s.rc.complete(m.ID, st)
		case sfBye:
			s.byeOnce.Do(func() { close(s.byeCh) })
		default:
			fatal = protoErrf("unexpected server frame type 0x%02x", typ)
		}
		if fatal != nil {
			break
		}
	}
	s.fail(fatal)
}

// fail marks the session dead and fails every pending call.
func (s *Session) fail(err error) {
	if err == nil {
		err = ErrSessionClosed
	}
	s.mu.Lock()
	if s.sessErr == nil {
		s.sessErr = err
	}
	err = s.sessErr
	pending := s.calls
	s.calls = map[uint64]chan callRes{}
	s.mu.Unlock()
	for _, ch := range pending {
		ch <- callRes{err: err}
	}
	if s.rc != nil {
		s.rc.fail(err)
	}
	s.deadOnce.Do(func() { close(s.deadCh) })
}

func (s *Session) complete(id uint64, res callRes) {
	s.tryComplete(id, res)
}

// tryComplete resolves one registered call, reporting whether id was
// known (proxy op ids live in the RemoteComm, not here).
func (s *Session) tryComplete(id uint64, res callRes) bool {
	s.mu.Lock()
	ch := s.calls[id]
	delete(s.calls, id)
	s.mu.Unlock()
	if ch != nil {
		ch <- res
	}
	return ch != nil
}

func (s *Session) writeFrame(frame []byte) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	_, err := s.conn.Write(frame)
	return err
}

// register allocates a request id and its result channel.
func (s *Session) register() (uint64, chan callRes, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sessErr != nil {
		return 0, nil, s.sessErr
	}
	if s.closed {
		return 0, nil, ErrSessionClosed
	}
	s.nextID++
	id := s.nextID
	ch := make(chan callRes, 1)
	s.calls[id] = ch
	return id, ch, nil
}

// StartAllreduce submits one sum-allreduce of the session's
// world*elems contribution vector (rank-major) and returns without
// waiting — pipelining many calls is how clients generate load.
func (s *Session) StartAllreduce(vals []float64) (*Call, error) {
	return s.start(cfAllreduce, vals)
}

// StartReduceFT submits one fault-tolerant reduce; the result mask
// reports the survivor set.
func (s *Session) StartReduceFT(vals []float64) (*Call, error) {
	return s.start(cfReduceFT, vals)
}

func (s *Session) start(typ byte, vals []float64) (*Call, error) {
	id, ch, err := s.register()
	if err != nil {
		return nil, err
	}
	frame := encodeReduce(typ, id, vals)
	if err := s.writeFrame(frame); err != nil {
		s.complete(id, callRes{}) // retract registration
		return nil, err
	}
	return &Call{s: s, id: id, ch: ch}, nil
}

// Wait blocks for the call's outcome: summed elems float64s (and for FT
// calls the survivor mask).
func (c *Call) Wait() ([]float64, []bool, error) {
	res := <-c.ch
	if res.err != nil {
		return nil, nil, res.err
	}
	return bytesToFloats(res.data), res.mask, nil
}

// Allreduce is the blocking convenience wrapper.
func (s *Session) Allreduce(vals []float64) ([]float64, error) {
	call, err := s.StartAllreduce(vals)
	if err != nil {
		return nil, err
	}
	out, _, err := call.Wait()
	return out, err
}

// ReduceFT is the blocking fault-tolerant wrapper.
func (s *Session) ReduceFT(vals []float64) ([]float64, []bool, error) {
	call, err := s.StartReduceFT(vals)
	if err != nil {
		return nil, nil, err
	}
	return call.Wait()
}

// Comm returns the daemon-backed comm.Comm adapter of a rank-bound
// proxy session (nil on service sessions).
func (s *Session) Comm() *RemoteComm { return s.rc }

// Close drains the session with the Close/Bye handshake, then tears
// down the connection.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	dead := s.sessErr != nil
	s.mu.Unlock()
	if !dead {
		if err := s.writeFrame(encodeClose()); err == nil {
			select {
			case <-s.byeCh:
			case <-s.deadCh:
			case <-time.After(30 * time.Second):
			}
		}
	}
	err := s.conn.Close()
	<-s.deadCh // reader exits and fails any stragglers
	return err
}
