// Package serve is the collective-as-a-service layer: a persistent
// daemon (cmd/adaptd) that accepts streams of collective requests from
// many concurrent client sessions over a length-prefixed framed
// protocol and executes them on cached backend worlds — the in-process
// goroutine runtime or real TCP-loopback nettransport endpoints.
//
// Architecture:
//
//   - Sessions. Each client connection is one session. Its Hello frame
//     names a backend key (world size, group, tag space, optional proxy
//     rank); repeat clients with the same key share one cached backend
//     world and skip all setup.
//   - Backends. A backend owns one world plus one long-lived executor
//     goroutine per rank. Service backends run allreduce jobs as
//     non-blocking collectives under a progress.Scheduler (many jobs in
//     flight, fair round-robin); crash-armed backends run survivor-set
//     FT collectives serially. Proxy backends apply raw point-to-point
//     operations for a daemon-backed comm.Comm adapter (RemoteComm), so
//     the conformance grid runs its collectives through the daemon.
//   - Fusing. Same-shape allreduces arriving within a fuse window merge
//     into one collective over a concatenated vector and the result is
//     demultiplexed by offset. Element positions never mix, and the
//     per-element fold order over ranks is the tree order either way,
//     so fused execution is byte-identical to unfused execution.
//   - Admission. Per-session in-flight caps and a per-backend admission
//     token pool reject excess load with a typed Overloaded error
//     instead of queueing without bound; sessions drain in-flight work
//     before close (Bye handshake). The scheduler's Live/Poke/Compact
//     hooks bound per-rank concurrency and keep a persistent scheduler
//     from growing forever.
//   - Membership. A crashing rank trips the existing failure detector;
//     in-flight FT collectives heal their trees and complete on the
//     survivor set, dead-root requests fail with a typed RankFailed
//     error, and the degraded backend is evicted from the cache so new
//     sessions get a fresh generation while live sessions keep their
//     healed world.
package serve

import (
	"errors"
	"fmt"
	"time"

	"adapt/internal/faults"
)

// Code classifies a request-level failure on the wire.
type Code uint8

const (
	// CodeOK is never sent; the zero value marks success internally.
	CodeOK Code = iota
	// CodeOverloaded: admission control rejected the request — the
	// session's in-flight cap or the backend's queue depth is exhausted.
	CodeOverloaded
	// CodeBadRequest: the request is malformed or illegal for the
	// session's backend (wrong shape, wrong mode, bad binding).
	CodeBadRequest
	// CodeRankFailed: a backend rank died and the operation could not
	// complete on the survivor set (dead root), or the session was bound
	// to the dead rank.
	CodeRankFailed
	// CodeShutdown: the daemon is draining and accepts no new work.
	CodeShutdown
	// CodeInternal: unexpected server-side failure.
	CodeInternal
)

func (c Code) String() string {
	switch c {
	case CodeOK:
		return "ok"
	case CodeOverloaded:
		return "overloaded"
	case CodeBadRequest:
		return "bad-request"
	case CodeRankFailed:
		return "rank-failed"
	case CodeShutdown:
		return "shutdown"
	default:
		return "internal"
	}
}

// RequestError is the typed request-level failure clients receive.
// errors.Is matches on Code, so errors.Is(err, ErrOverloaded) holds for
// any overload rejection regardless of message text.
type RequestError struct {
	Code Code
	Msg  string
}

func (e *RequestError) Error() string {
	if e.Msg == "" {
		return "serve: " + e.Code.String()
	}
	return fmt.Sprintf("serve: %s: %s", e.Code, e.Msg)
}

// Is matches any RequestError with the same code.
func (e *RequestError) Is(target error) bool {
	t, ok := target.(*RequestError)
	return ok && t.Code == e.Code
}

// Sentinels for errors.Is checks.
var (
	ErrOverloaded = &RequestError{Code: CodeOverloaded}
	ErrBadRequest = &RequestError{Code: CodeBadRequest}
	ErrRankFailed = &RequestError{Code: CodeRankFailed}
	ErrShutdown   = &RequestError{Code: CodeShutdown}
)

// ErrSessionClosed reports an operation on a session whose connection
// already closed.
var ErrSessionClosed = errors.New("serve: session closed")

// Config tunes a Server. Zero values take the documented defaults.
type Config struct {
	// Addr is the TCP listen address; default "127.0.0.1:0".
	Addr string

	// Backend selects the substrate for service worlds: "runtime"
	// (default; in-process goroutine endpoints, supports chaos plans) or
	// "net" (TCP-loopback nettransport endpoints, supports fail-stop
	// crash plans and the live failure detector).
	Backend string

	// FuseWindow is how long a same-shape allreduce waits for companions
	// to merge with. Zero disables fusing.
	FuseWindow time.Duration
	// FuseMaxReqs caps one fused batch; default 16.
	FuseMaxReqs int

	// QueueDepth is the per-backend admission token pool: at most this
	// many jobs queued or running per backend; default 64.
	QueueDepth int
	// SessionPending caps in-flight requests per session; default 32.
	SessionPending int
	// MaxConcurrent bounds concurrently scheduled collectives per
	// backend rank; default 8.
	MaxConcurrent int
	// MaxSessions caps concurrent sessions; default 4096.
	MaxSessions int
	// MaxWorld caps the per-session backend world size; default 64.
	MaxWorld int

	// DrainTimeout bounds Close's wait for live sessions; default 10s.
	DrainTimeout time.Duration

	// Chaos, when non-nil, is installed into every runtime-backend world
	// (seeded drops/dups/delays with Recovery-driven retries).
	Chaos    *faults.Plan
	Recovery faults.Recovery

	// Crashes arms fail-stop crash rules on net-backend worlds whose
	// group equals CrashGroup — the membership-churn path.
	Crashes    []faults.Crash
	CrashGroup string

	// EagerLimit overrides the backend eager/rendezvous switch-over.
	EagerLimit int
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Backend == "" {
		c.Backend = "runtime"
	}
	if c.FuseMaxReqs <= 0 {
		c.FuseMaxReqs = 16
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.SessionPending <= 0 {
		c.SessionPending = 32
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 4096
	}
	if c.MaxWorld <= 0 {
		c.MaxWorld = 64
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	return c
}
