package serve

import (
	"errors"
	"testing"
	"time"

	"adapt/internal/faults"
	"adapt/internal/perf"
)

// maskSum is the survivor-set reference: the FT fold ranges over exactly
// the masked-in ranks.
func maskSum(vals []float64, elems int, mask []bool) []float64 {
	out := make([]float64, elems)
	for r, alive := range mask {
		if !alive {
			continue
		}
		for e := 0; e < elems; e++ {
			out[e] += vals[r*elems+e]
		}
	}
	return out
}

// TestMembershipChurn kills a mid-tree worker during a live request
// stream: the in-flight session survives, its collectives complete on
// the healed survivor set, the degraded backend is evicted, and a new
// session for the same key is admitted against a fresh full-strength
// world (the "re-admitted" worker).
func TestMembershipChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("membership churn (live TCP mesh + failure detector) skipped in -short")
	}
	before := perf.Read()
	srv := newTestServer(t, Config{
		Backend:      "net",
		Crashes:      []faults.Crash{{Rank: 2, AfterSends: 0}}, // dies at its first send
		CrashGroup:   "churn",
		DrainTimeout: 10 * time.Second,
	})
	const world, elems = 4, 16
	sess, err := Dial(srv.Addr(), SessionOpts{World: world, Group: "churn", ProxyRank: -1})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer sess.Close()
	if sess.Gen() != 1 {
		t.Fatalf("first session got generation %d, want 1", sess.Gen())
	}

	// A crash-armed group serves FT collectives only; the plain path is a
	// typed rejection, not a silent downgrade.
	if _, err := sess.Allreduce(contrib(world, elems, 0)); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("non-FT request on armed group: got %v, want typed BadRequest", err)
	}

	// Request 1 triggers the crash mid-collective; the survivors heal the
	// tree and the fold ranges over exactly the survivor set.
	vals := contrib(world, elems, 1)
	out, mask, err := sess.ReduceFT(vals)
	if err != nil {
		t.Fatalf("ReduceFT during crash: %v", err)
	}
	if len(mask) != world || mask[2] {
		t.Fatalf("survivor mask %v still counts the dead rank", mask)
	}
	alive := 0
	for _, a := range mask {
		if a {
			alive++
		}
	}
	if alive != world-1 {
		t.Fatalf("survivor mask %v, want exactly one dead rank", mask)
	}
	want := maskSum(vals, elems, mask)
	for e, v := range out {
		if v != want[e] {
			t.Fatalf("element %d: got %v, want survivor-set sum %v", e, v, want[e])
		}
	}

	// The session stays live on its degraded world: later requests skip
	// the dead rank and keep completing.
	vals2 := contrib(world, elems, 2)
	out2, mask2, err := sess.ReduceFT(vals2)
	if err != nil {
		t.Fatalf("ReduceFT after crash: %v", err)
	}
	if mask2[2] {
		t.Fatalf("post-crash mask %v resurrected the dead rank", mask2)
	}
	want2 := maskSum(vals2, elems, mask2)
	for e, v := range out2 {
		if v != want2[e] {
			t.Fatalf("post-crash element %d: got %v, want %v", e, v, want2[e])
		}
	}

	// The degraded backend was evicted: a new session for the same key is
	// admitted against a fresh generation with all ranks re-admitted (and
	// the armed crash rule fires again on its first FT request).
	fresh, err := Dial(srv.Addr(), SessionOpts{World: world, Group: "churn", ProxyRank: -1})
	if err != nil {
		t.Fatalf("Dial after churn: %v", err)
	}
	defer fresh.Close()
	if fresh.Gen() != 2 {
		t.Fatalf("post-churn session got generation %d, want 2 (fresh world)", fresh.Gen())
	}
	vals3 := contrib(world, elems, 3)
	out3, mask3, err := fresh.ReduceFT(vals3)
	if err != nil {
		t.Fatalf("ReduceFT on fresh generation: %v", err)
	}
	want3 := maskSum(vals3, elems, mask3)
	for e, v := range out3 {
		if v != want3[e] {
			t.Fatalf("fresh-generation element %d: got %v, want %v", e, v, want3[e])
		}
	}

	// The detector observed the deaths as structured state, not hangs:
	// one rank death per generation that ran an FT request.
	d := perf.Read()
	if deaths := d.ServeRankDeaths - before.ServeRankDeaths; deaths < 2 {
		t.Errorf("recorded %d rank deaths, want >= 2 (one per crashed generation)", deaths)
	}
	if confirms := d.DetectorConfirms - before.DetectorConfirms; confirms == 0 {
		t.Error("failure detector confirmed no deaths during churn")
	}
}

// TestDeadRootTypedError: when the root itself dies, survivors cannot
// commit a result — the request must fail with the typed RankFailed
// error, and the session must stay usable.
func TestDeadRootTypedError(t *testing.T) {
	if testing.Short() {
		t.Skip("dead-root churn (live TCP mesh + failure detector) skipped in -short")
	}
	before := perf.Read()
	srv := newTestServer(t, Config{
		Backend:      "net",
		Crashes:      []faults.Crash{{Rank: 0, AfterSends: 0}}, // the root dies
		CrashGroup:   "churn",
		DrainTimeout: 10 * time.Second,
	})
	const world, elems = 4, 8
	sess, err := Dial(srv.Addr(), SessionOpts{World: world, Group: "churn", ProxyRank: -1})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer sess.Close()
	_, _, err = sess.ReduceFT(contrib(world, elems, 1))
	if !errors.Is(err, ErrRankFailed) {
		t.Fatalf("dead-root ReduceFT: got %v, want typed RankFailed", err)
	}
	if fails := perf.Read().ServeRankFails - before.ServeRankFails; fails == 0 {
		t.Error("no RankFailed outcome recorded")
	}
	// The session itself survived the failed request.
	if sess.Err() != nil {
		t.Fatalf("request-level failure escalated to session error: %v", sess.Err())
	}
}
