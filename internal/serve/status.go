package serve

import "sort"

// StatusReport is the daemon's /statusz application section: the live
// session set and every backend world with its generation and
// membership state — the operator view of "what is this daemon doing
// right now" that process-exit aggregates cannot give.
type StatusReport struct {
	Draining      bool            `json:"draining"`
	Sessions      int             `json:"sessions"`
	SessionsTotal uint64          `json:"sessions_total"`
	Requests      uint64          `json:"requests_total"`
	Responses     uint64          `json:"responses_total"`
	ProxyOps      uint64          `json:"proxy_ops_total"`
	SessionList   []SessionStatus `json:"session_list,omitempty"`
	Backends      []BackendStatus `json:"backends,omitempty"`
}

// SessionStatus is one live session's row.
type SessionStatus struct {
	ID        uint64 `json:"id"`
	Pending   int32  `json:"pending"`
	ProxyRank int    `json:"proxy_rank"` // -1 for service sessions
	Backend   string `json:"backend,omitempty"`
	Draining  bool   `json:"draining,omitempty"`
}

// BackendStatus is one cached (or evicted-but-referenced) world's row.
type BackendStatus struct {
	Key          string `json:"key"`
	Gen          uint64 `json:"gen"`
	World        int    `json:"world"`
	Refs         int    `json:"refs"`
	Evicted      bool   `json:"evicted,omitempty"`
	DeadRanks    []int  `json:"dead_ranks,omitempty"`
	TokensInUse  int    `json:"tokens_in_use"`
	TokenPool    int    `json:"token_pool"`
	FuseBatches  uint64 `json:"fuse_batches,omitempty"`
	ProxySession int    `json:"proxy_sessions,omitempty"`
}

// Draining reports whether Close has begun — the /healthz readiness
// signal: a draining daemon still answers scrapes but must not receive
// new traffic.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// StatusReport snapshots the live session and backend tables.
func (s *Server) StatusReport() StatusReport {
	s.mu.Lock()
	closed := s.closed
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	backends := append([]*backend(nil), s.all...)
	s.mu.Unlock()

	rep := StatusReport{
		Draining:      closed,
		Sessions:      len(sessions),
		SessionsTotal: s.stSessions.Load(),
		Requests:      s.stRequests.Load(),
		Responses:     s.stResponses.Load(),
		ProxyOps:      s.stProxyOps.Load(),
	}
	for _, sess := range sessions {
		row := SessionStatus{
			ID:        sess.id,
			Pending:   sess.pending.Load(),
			ProxyRank: sess.proxyRank,
			Draining:  sess.draining.Load(),
		}
		if sess.be != nil {
			row.Backend = sess.be.key.String()
		}
		rep.SessionList = append(rep.SessionList, row)
	}
	for _, b := range backends {
		b.mu.Lock()
		row := BackendStatus{
			Key:         b.key.String(),
			Gen:         b.gen,
			World:       b.n,
			Refs:        b.refs,
			Evicted:     b.evicted,
			TokensInUse: len(b.admit),
			TokenPool:   cap(b.admit),
		}
		for r, dead := range b.dead {
			if dead {
				row.DeadRanks = append(row.DeadRanks, r)
			}
		}
		for _, ps := range b.proxySess {
			if ps != nil {
				row.ProxySession++
			}
		}
		b.mu.Unlock()
		rep.Backends = append(rep.Backends, row)
	}
	// Stable row order for watchers diffing consecutive scrapes.
	sort.Slice(rep.SessionList, func(i, j int) bool {
		return rep.SessionList[i].ID < rep.SessionList[j].ID
	})
	sort.Slice(rep.Backends, func(i, j int) bool {
		bi, bj := rep.Backends[i], rep.Backends[j]
		if bi.Key != bj.Key {
			return bi.Key < bj.Key
		}
		return bi.Gen < bj.Gen
	})
	return rep
}
