package serve

import (
	"encoding/binary"
	"math"
	"sync"
	"time"

	"adapt/internal/perf"
)

// fuser merges same-shape allreduce requests arriving within the fuse
// window into one collective over a concatenated vector. Request i's
// result is the fused result's bytes at offset i*elems — element
// positions never mix and each element's fold order over ranks is the
// tree order either way, so fused execution is byte-identical to
// running every request alone.
type fuser struct {
	b       *backend
	window  time.Duration
	maxReqs int

	mu      sync.Mutex
	batches map[int]*fuseBatch // per-rank element count → open batch
}

type fusePart struct {
	vals    []float64 // world*elems contributions, rank-major
	deliver func(out []byte, mask []bool, err error)
}

type fuseBatch struct {
	elems int
	parts []fusePart
	timer *time.Timer
}

func newFuser(b *backend, window time.Duration, maxReqs int) *fuser {
	return &fuser{b: b, window: window, maxReqs: maxReqs, batches: map[int]*fuseBatch{}}
}

// add enqueues one allreduce of elems float64s per rank. With fusing
// off (or on a crash-armed backend, whose jobs serialize) the request
// submits immediately as a batch of one.
func (f *fuser) add(vals []float64, elems int, deliver func(out []byte, mask []bool, err error)) {
	if f.window <= 0 || f.b.armed {
		f.b.submitFused(&fuseBatch{elems: elems, parts: []fusePart{{vals: vals, deliver: deliver}}})
		return
	}
	f.mu.Lock()
	bt := f.batches[elems]
	if bt == nil {
		bt = &fuseBatch{elems: elems}
		f.batches[elems] = bt
		bt.timer = time.AfterFunc(f.window, func() { f.flush(elems) })
	}
	bt.parts = append(bt.parts, fusePart{vals: vals, deliver: deliver})
	if len(bt.parts) >= f.maxReqs {
		delete(f.batches, elems)
		bt.timer.Stop()
		f.mu.Unlock()
		f.b.submitFused(bt)
		return
	}
	f.mu.Unlock()
}

// flush closes the open batch for elems when its window expires.
func (f *fuser) flush(elems int) {
	f.mu.Lock()
	bt := f.batches[elems]
	delete(f.batches, elems)
	f.mu.Unlock()
	if bt != nil {
		f.b.submitFused(bt)
	}
}

// submitFused turns a batch into one service job. Rank r's contribution
// is the concatenation of every part's rank-r slice; delivery
// demultiplexes the fused result back by offset. An admission rejection
// fails every part in the batch with the typed Overloaded error.
func (b *backend) submitFused(bt *fuseBatch) {
	k := len(bt.parts)
	elems := bt.elems
	mFuseBatch.Observe(uint64(k))
	if k > 1 {
		perf.RecordServeFused(k)
	}
	in := make([][]byte, b.n)
	for r := 0; r < b.n; r++ {
		buf := make([]byte, k*elems*8)
		for i, part := range bt.parts {
			slice := part.vals[r*elems : (r+1)*elems]
			for e, v := range slice {
				binary.LittleEndian.PutUint64(buf[(i*elems+e)*8:], math.Float64bits(v))
			}
		}
		in[r] = buf
	}
	j := &job{
		kind: jobAllreduce,
		in:   in,
		deliver: func(out []byte, mask []bool, err error) {
			for i, part := range bt.parts {
				if err != nil {
					part.deliver(nil, nil, err)
					continue
				}
				part.deliver(out[i*elems*8:(i+1)*elems*8], mask, nil)
			}
		},
	}
	if err := b.submitService(j); err != nil {
		for _, part := range bt.parts {
			part.deliver(nil, nil, err)
		}
	}
}
