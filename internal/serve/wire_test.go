package serve

import (
	"bytes"
	"testing"
)

// TestResultFrameWideMask pins the survivor-mask length field at 32
// bits: worlds up to maxWireWorld are legal, so an FT result's mask can
// be far longer than 255 entries and must round-trip rather than wrap
// into a length the parser rejects.
func TestResultFrameWideMask(t *testing.T) {
	data := floatsToBytes([]float64{1.5, -2.25, 1e9})
	for _, n := range []int{0, 1, 255, 256, 300, maxWireWorld} {
		var mask []bool
		if n > 0 {
			mask = make([]bool, n)
			for i := range mask {
				mask[i] = i%3 != 0
			}
		}
		frame := encodeResult(resultMsg{ID: 7, Mask: mask, Data: data})
		typ, payload, err := readFrame(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("mask %d: readFrame: %v", n, err)
		}
		if typ != sfResult {
			t.Fatalf("mask %d: frame type %#x, want result", n, typ)
		}
		m, err := parseResult(payload)
		if err != nil {
			t.Fatalf("mask %d: parseResult: %v", n, err)
		}
		if m.ID != 7 {
			t.Fatalf("mask %d: id %d, want 7", n, m.ID)
		}
		if len(m.Mask) != n {
			t.Fatalf("mask %d: round-tripped to %d entries", n, len(m.Mask))
		}
		for i, alive := range m.Mask {
			if alive != mask[i] {
				t.Fatalf("mask %d: entry %d flipped", n, i)
			}
		}
		if !bytes.Equal(m.Data, data) {
			t.Fatalf("mask %d: payload corrupted", n)
		}
	}
}
