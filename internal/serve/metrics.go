package serve

import "adapt/internal/metrics"

// Live telemetry for the serving layer (DESIGN.md §15). All recording
// is gated on the process telemetry switch: with -admin off every site
// costs one atomic load, and the latency sites skip even the timestamp
// capture (metrics.Clock returns 0, ObserveSince records nothing).
var (
	mLatAllreduce = metrics.NewHistogram("adapt_serve_request_latency_ns",
		"collective request latency, admission to response", metrics.Label{Name: "kind", Value: "allreduce"})
	mLatReduceFT = metrics.NewHistogram("adapt_serve_request_latency_ns",
		"collective request latency, admission to response", metrics.Label{Name: "kind", Value: "reduceft"})
	mLatProxy = metrics.NewHistogram("adapt_serve_request_latency_ns",
		"collective request latency, admission to response", metrics.Label{Name: "kind", Value: "proxy"})

	mReqBytes = metrics.NewCounter("adapt_serve_request_bytes_total",
		"payload bytes carried by admitted collective requests")

	mSessionsLive = metrics.NewGauge("adapt_serve_sessions_live",
		"client sessions currently open")
	mTokensInUse = metrics.NewGauge("adapt_serve_admission_tokens_in_use",
		"backend admission tokens held by live service jobs")

	mSessPending = metrics.NewHistogram("adapt_serve_session_pending",
		"per-session in-flight requests observed at each admission")
	mFuseBatch = metrics.NewHistogram("adapt_serve_fuse_batch_size",
		"requests per submitted allreduce batch (1 = unfused)")

	mDrainServer = metrics.NewHistogram("adapt_serve_drain_ns",
		"drain-before-close wait", metrics.Label{Name: "scope", Value: "server"})
	mDrainSession = metrics.NewHistogram("adapt_serve_drain_ns",
		"drain-before-close wait", metrics.Label{Name: "scope", Value: "session"})
)
