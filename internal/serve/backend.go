package serve

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"adapt/internal/comm"
	"adapt/internal/core"
	"adapt/internal/nettransport"
	"adapt/internal/perf"
	"adapt/internal/progress"
	"adapt/internal/runtime"
	"adapt/internal/trees"
)

// backendKey identifies a cached communicator world: sessions with the
// same (world size, group, tag space, mode) share one backend and skip
// all mesh setup.
type backendKey struct {
	world    int
	group    string
	tagspace uint32
	proxy    bool
}

func (k backendKey) String() string {
	mode := "service"
	if k.proxy {
		mode = "proxy"
	}
	return fmt.Sprintf("%s/world=%d/ts=%d/%s", k.group, k.world, k.tagspace, mode)
}

// backendWorld abstracts the two substrates a backend can own.
type backendWorld interface {
	rankComm(r int) comm.Comm
	close()
}

type rtWorld struct{ w *runtime.World }

func (x rtWorld) rankComm(r int) comm.Comm { return x.w.Rank(r) }
func (x rtWorld) close()                   {}

type netWorld struct{ w *nettransport.LocalWorld }

func (x netWorld) rankComm(r int) comm.Comm { return x.w.Rank(r) }
func (x netWorld) close()                   { x.w.Close() }

type jobKind uint8

const (
	jobAllreduce jobKind = iota
	jobReduceFT
	jobIsend
	jobIrecv
)

// job is one unit of backend work. Service jobs (allreduce, FT reduce)
// are fanned to every rank's executor; proxy jobs (isend/irecv) go to
// one bound rank only.
type job struct {
	kind jobKind
	seq  int
	in   [][]byte // per-rank private contribution (service jobs)

	// Proxy fields.
	sess *session
	opID uint64
	peer int
	tag  comm.Tag
	msg  comm.Msg
	t0   int64 // metrics.Clock() at admission (0 = telemetry off)

	remaining atomic.Int32
	once      sync.Once
	mu        sync.Mutex
	out       []byte
	deliver   func(out []byte, mask []bool, err error)
}

// opts builds the collective options for a service job; the centrally
// assigned seq keeps concurrent jobs' tags disjoint on every rank.
func (j *job) opts() core.Options {
	opt := core.DefaultOptions()
	opt.Seq = j.seq
	return opt
}

// rankDone retires a scheduled allreduce on one rank; the last rank
// fires delivery with rank 0's result (all ranks hold identical bytes).
func (j *job) rankDone(rank int, out comm.Msg) {
	if rank == 0 {
		j.mu.Lock()
		j.out = append([]byte(nil), out.Data...)
		j.mu.Unlock()
	}
	if j.remaining.Add(-1) == 0 {
		j.mu.Lock()
		out := j.out
		j.mu.Unlock()
		j.once.Do(func() { j.deliver(out, nil, nil) })
	}
}

// ftDone settles an FT job from whichever rank reaches a decisive
// outcome first: the root's committed result, or any survivor's typed
// failure (which covers a dead root, whose own executor is gone).
func (j *job) ftDone(rank int, res core.FTResult) {
	if res.Err != nil {
		perf.RecordServeRankFail()
		j.once.Do(func() {
			j.deliver(nil, nil, &RequestError{Code: CodeRankFailed, Msg: res.Err.Error()})
		})
		return
	}
	if rank == 0 {
		out := append([]byte(nil), res.Msg.Data...)
		mask := append([]bool(nil), res.Survivors...)
		j.once.Do(func() { j.deliver(out, mask, nil) })
	}
}

// backend is one cached world: per-rank executor goroutines, an
// admission token pool, a fuser, and membership state.
type backend struct {
	srv   *Server
	key   backendKey
	gen   uint64
	n     int
	w     backendWorld
	armed bool // fail-stop crash rules armed: serialized FT execution
	tree  *trees.Tree

	jobCh  []chan *job
	scheds []*progress.Scheduler
	admit  chan struct{}
	stopCh chan struct{}
	wg     sync.WaitGroup
	fuse   *fuser

	stopOnce  sync.Once
	closeOnce sync.Once

	mu        sync.Mutex
	refs      int
	evicted   bool
	dead      []bool
	seqNext   int
	proxySess []*session // per-rank proxy binding
}

// newBackend builds the world for key and starts its executors.
func newBackend(s *Server, key backendKey, gen uint64) (*backend, error) {
	b := &backend{
		srv:       s,
		key:       key,
		gen:       gen,
		n:         key.world,
		stopCh:    make(chan struct{}),
		admit:     make(chan struct{}, s.cfg.QueueDepth),
		dead:      make([]bool, key.world),
		tree:      trees.Binomial(key.world, 0),
		proxySess: make([]*session, key.world),
	}
	b.armed = !key.proxy && s.cfg.Backend == "net" &&
		len(s.cfg.Crashes) > 0 && key.group == s.cfg.CrashGroup

	switch s.cfg.Backend {
	case "runtime":
		var opts []runtime.Option
		if s.cfg.EagerLimit > 0 {
			opts = append(opts, runtime.WithEagerLimit(s.cfg.EagerLimit))
		}
		if s.cfg.Chaos != nil {
			opts = append(opts, runtime.WithFaults(*s.cfg.Chaos, s.cfg.Recovery))
		}
		b.w = rtWorld{w: runtime.NewWorld(key.world, opts...)}
	case "net":
		var opts []nettransport.Option
		if s.cfg.EagerLimit > 0 {
			opts = append(opts, nettransport.WithEagerLimit(s.cfg.EagerLimit))
		}
		if b.armed {
			opts = append(opts, nettransport.WithCrashes(s.cfg.Crashes))
		}
		opts = append(opts, nettransport.WithDeathHook(func(rank int) {
			b.noteDead(rank)
		}))
		w, err := nettransport.NewLocalWorld(key.world, opts...)
		if err != nil {
			return nil, fmt.Errorf("serve: backend %s: %w", key, err)
		}
		b.w = netWorld{w: w}
	default:
		return nil, fmt.Errorf("serve: unknown backend substrate %q", s.cfg.Backend)
	}

	b.fuse = newFuser(b, s.cfg.FuseWindow, s.cfg.FuseMaxReqs)
	b.jobCh = make([]chan *job, b.n)
	b.scheds = make([]*progress.Scheduler, b.n)
	depth := s.cfg.QueueDepth + 64 // slack: tokens release at delivery, slots at retirement
	if key.proxy {
		depth = 4096 // proxy ops are flow-controlled by TCP, not tokens
	}
	for r := 0; r < b.n; r++ {
		b.jobCh[r] = make(chan *job, depth)
		b.scheds[r] = progress.NewScheduler()
	}
	for r := 0; r < b.n; r++ {
		b.wg.Add(1)
		go b.executor(r)
	}
	return b, nil
}

func (b *backend) stopped() bool {
	select {
	case <-b.stopCh:
		return true
	default:
		return false
	}
}

// shutdown stops the executors and closes the world. Safe to call from
// several goroutines; every caller returns once teardown finished. Must
// not run on an executor goroutine (wg.Wait would self-deadlock) — the
// eviction path defers to a fresh goroutine for that reason.
func (b *backend) shutdown() {
	b.stopOnce.Do(func() {
		close(b.stopCh)
		for _, s := range b.scheds {
			s.Poke()
		}
	})
	b.wg.Wait()
	b.closeOnce.Do(func() { b.w.close() })
}

// noteDead records a confirmed rank death (detector hook or the rank's
// own executor exiting at its crash point): the backend degrades and is
// evicted from the cache so new sessions get a fresh generation, and
// proxy sessions bound to the dead rank get a structured session error.
func (b *backend) noteDead(rank int) {
	b.mu.Lock()
	if rank < 0 || rank >= b.n || b.dead[rank] {
		b.mu.Unlock()
		return
	}
	b.dead[rank] = true
	bound := b.proxySess[rank]
	b.mu.Unlock()
	perf.RecordServeRankDeath()
	b.sweepDead(rank)
	if bound != nil {
		bound.sessionError(&RequestError{
			Code: CodeRankFailed,
			Msg:  fmt.Sprintf("backend rank %d confirmed dead", rank),
		})
	}
	b.srv.evictBackend(b)
}

// sweepDead retires jobs already queued on a dead rank's channel: its
// executor is gone, so nothing else will ever drain them, and a leaked
// job pins its admission token forever. Safe to drain without the lock:
// dead[rank] is set under b.mu before this runs, so submitService will
// never enqueue here again, and a rank is only confirmed dead once its
// executor goroutine has exited (fail-stop crashes Goexit the executor
// itself), so there is no competing consumer.
//
// Plain allreduces cannot complete without the rank, so their queued
// copies fail with a typed error (releasing the token via the deliver
// wrapper). FT jobs are left to the surviving executors, which run the
// collective over the healed tree and settle delivery through ftDone.
// Proxy ops fail back onto their bound session.
func (b *backend) sweepDead(rank int) {
	for {
		select {
		case j := <-b.jobCh[rank]:
			switch j.kind {
			case jobAllreduce:
				j.once.Do(func() {
					j.deliver(nil, nil, &RequestError{Code: CodeRankFailed,
						Msg: fmt.Sprintf("backend rank %d died before allreduce ran", rank)})
				})
			case jobReduceFT:
				// Survivors deliver via ftDone.
			case jobIsend, jobIrecv:
				j.sess.opDone(j.opID, comm.Status{Source: comm.AnySource, Err: &RequestError{
					Code: CodeRankFailed,
					Msg:  fmt.Sprintf("backend rank %d died", rank),
				}})
			}
		default:
			return
		}
	}
}

// bindProxy claims rank r for sess; one live proxy session per rank.
func (b *backend) bindProxy(r int, sess *session) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dead[r] {
		return &RequestError{Code: CodeRankFailed, Msg: fmt.Sprintf("rank %d is dead", r)}
	}
	if b.proxySess[r] != nil {
		return &RequestError{Code: CodeBadRequest, Msg: fmt.Sprintf("rank %d already bound to session %d", r, b.proxySess[r].id)}
	}
	b.proxySess[r] = sess
	return nil
}

func (b *backend) unbindProxy(r int, sess *session) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if r >= 0 && r < b.n && b.proxySess[r] == sess {
		b.proxySess[r] = nil
	}
}

// submitService fans a service job out to every rank executor after
// taking an admission token; a full pool is a typed Overloaded error.
// The token releases at delivery, so queue depth bounds live work.
//
// Seq assignment and the whole per-rank fan-out happen atomically under
// b.mu. Blocking FT execution depends on every rank's channel carrying
// service jobs in one global order — each rank must reach the same
// barrier before the same blocking collective, and two concurrent
// submitters interleaving their fan-out loops would leave ranks blocked
// in different collectives with disjoint tags, deadlocked. The same
// lock keeps the dead[] check coherent with noteDead, whose queue sweep
// only runs after dead[r] is set under b.mu.
func (b *backend) submitService(j *job) error {
	select {
	case b.admit <- struct{}{}:
	default:
		perf.RecordServeOverload()
		return ErrOverloaded
	}
	mTokensInUse.Inc()
	inner := j.deliver
	j.deliver = func(out []byte, mask []bool, err error) {
		<-b.admit
		mTokensInUse.Dec()
		inner(out, mask, err)
	}
	b.mu.Lock()
	// A channel send must not block while b.mu is held (the failure
	// detector's death hook takes the lock in noteDead), so check every
	// live rank has a free slot up front. Executors only drain, and b.mu
	// serializes all service enqueues, so the check cannot go stale
	// before the sends below. Early-delivered FT failures release their
	// token while copies are still queued, which is how occupancy can
	// outrun the token pool into the slack.
	alive := 0
	for r := range b.jobCh {
		if b.dead[r] {
			continue
		}
		alive++
		if len(b.jobCh[r]) == cap(b.jobCh[r]) {
			b.mu.Unlock()
			<-b.admit
			mTokensInUse.Dec()
			perf.RecordServeOverload()
			return ErrOverloaded
		}
	}
	if alive == 0 {
		b.mu.Unlock()
		<-b.admit
		mTokensInUse.Dec()
		return &RequestError{Code: CodeRankFailed, Msg: "all backend ranks dead"}
	}
	b.seqNext++
	j.seq = b.seqNext
	j.remaining.Store(int32(alive))
	// Dead ranks' executors are gone; their channels drain nothing, so a
	// fan-out there would eventually wedge the whole backend.
	for r := range b.jobCh {
		if !b.dead[r] {
			b.jobCh[r] <- j
		}
	}
	b.mu.Unlock()
	for _, sched := range b.scheds {
		sched.Poke()
	}
	return nil
}

// submitProxy queues a point-to-point op on the bound rank's executor.
// The channel preserves issue order (MPI non-overtaking).
func (b *backend) submitProxy(rank int, j *job) error {
	b.mu.Lock()
	deadRank := b.dead[rank]
	b.mu.Unlock()
	if deadRank {
		return &RequestError{Code: CodeRankFailed, Msg: fmt.Sprintf("rank %d is dead", rank)}
	}
	select {
	case b.jobCh[rank] <- j:
	case <-b.stopCh:
		return ErrShutdown
	}
	b.scheds[rank].Poke()
	return nil
}

// submitFT fans one survivor-set FT reduction out as a service job.
func (b *backend) submitFT(vals []float64, elems int, deliver func(out []byte, mask []bool, err error)) {
	in := make([][]byte, b.n)
	for r := 0; r < b.n; r++ {
		buf := make([]byte, elems*8)
		for e, v := range vals[r*elems : (r+1)*elems] {
			binary.LittleEndian.PutUint64(buf[e*8:], math.Float64bits(v))
		}
		in[r] = buf
	}
	j := &job{kind: jobReduceFT, in: in, deliver: deliver}
	if err := b.submitService(j); err != nil {
		deliver(nil, nil, err)
	}
}

// executor is rank r's long-lived owner goroutine. A fail-stop crash
// exits it via Goexit; the deferred rankExited keeps membership honest.
func (b *backend) executor(r int) {
	defer b.wg.Done()
	defer b.rankExited(r)
	c := b.w.rankComm(r)
	if b.armed {
		b.runBlocking(r, c)
		return
	}
	b.runScheduled(r, c)
}

// rankExited distinguishes an orderly stop from a rank dying mid-work.
func (b *backend) rankExited(r int) {
	if b.stopped() {
		return
	}
	b.noteDead(r)
}

// take dequeues the next job, draining queued work before honoring a
// stop signal so drain-before-close retires everything already admitted.
func (b *backend) take(r int) (*job, bool) {
	select {
	case j := <-b.jobCh[r]:
		return j, true
	default:
	}
	select {
	case j := <-b.jobCh[r]:
		return j, true
	case <-b.stopCh:
		return nil, false
	}
}

// runBlocking serializes FT collectives — the crash-armed path, where a
// rank may fail-stop mid-collective and the survivor set heals its tree.
func (b *backend) runBlocking(r int, c comm.Comm) {
	for {
		j, ok := b.take(r)
		if !ok {
			return
		}
		switch j.kind {
		case jobReduceFT:
			res := core.ReduceFT(c, b.tree, comm.Bytes(j.in[r]), j.opts())
			j.ftDone(r, res)
		default:
			j.once.Do(func() {
				j.deliver(nil, nil, &RequestError{Code: CodeBadRequest,
					Msg: "crash-armed group serves FT requests only"})
			})
		}
	}
}

// flight is one in-progress operation on a scheduled executor.
type flight struct {
	j   *job
	op  *core.Op     // service collectives
	req comm.Request // proxy point-to-point ops
}

func (f flight) done() bool {
	if f.op != nil {
		return f.op.Done()
	}
	_, ok := f.req.Test()
	return ok
}

// runScheduled drives many concurrent jobs per rank under the fair
// scheduler: admit up to MaxConcurrent collectives, drive until one
// completes or new work arrives (Poke), harvest, compact, repeat.
func (b *backend) runScheduled(r int, c comm.Comm) {
	sched := b.scheds[r]
	maxConc := b.srv.cfg.MaxConcurrent
	if b.key.proxy {
		// A collective's own state machine bounds proxy ops; an external
		// cap could park half its posts and deadlock it.
		maxConc = 1 << 30
	}
	var live []flight
	for {
		// Fill without blocking while below the concurrency bound.
		for len(live) < maxConc {
			var j *job
			select {
			case j = <-b.jobCh[r]:
			default:
			}
			if j == nil {
				break
			}
			live = b.startJob(sched, c, r, j, live)
		}
		if len(live) == 0 {
			if b.stopped() {
				return
			}
			j, ok := b.take(r)
			if !ok {
				return
			}
			live = b.startJob(sched, c, r, j, live)
			continue
		}
		sched.DriveUntil(func() bool {
			if b.stopped() {
				return true
			}
			for _, f := range live {
				if f.done() {
					return true
				}
			}
			return len(b.jobCh[r]) > 0 && len(live) < maxConc
		})
		kept := live[:0]
		for _, f := range live {
			if f.done() {
				b.retire(r, f)
			} else {
				kept = append(kept, f)
			}
		}
		live = kept
		sched.Compact()
		if b.stopped() && len(live) > 0 {
			// Stop with undeliverable work (a peer executor died during
			// forced shutdown): abandon rather than spin.
			return
		}
	}
}

// startJob launches j on rank r. Blocking kinds drain the scheduled
// work first; every rank sees the same channel order, so every rank
// reaches the same barrier before the same blocking collective.
func (b *backend) startJob(sched *progress.Scheduler, c comm.Comm, r int, j *job, live []flight) []flight {
	switch j.kind {
	case jobAllreduce:
		op := core.StartAllreduce(c, b.tree, comm.Bytes(j.in[r]), j.opts())
		sched.Add(&progress.Scheduled{C: c, Op: op})
		return append(live, flight{j: j, op: op})
	case jobReduceFT:
		for len(live) > 0 {
			sched.DriveUntil(func() bool {
				for _, f := range live {
					if f.done() {
						return true
					}
				}
				return b.stopped()
			})
			kept := live[:0]
			for _, f := range live {
				if f.done() {
					b.retire(r, f)
				} else {
					kept = append(kept, f)
				}
			}
			live = kept
			if b.stopped() && len(live) > 0 {
				return live
			}
		}
		sched.Compact()
		res := core.ReduceFT(c, b.tree, comm.Bytes(j.in[r]), j.opts())
		j.ftDone(r, res)
		return live
	case jobIsend:
		req := c.Isend(j.peer, j.tag, j.msg)
		sched.Add(&progress.Scheduled{C: c, Op: reqOp{req}})
		return append(live, flight{j: j, req: req})
	case jobIrecv:
		req := c.Irecv(j.peer, j.tag)
		sched.Add(&progress.Scheduled{C: c, Op: reqOp{req}})
		return append(live, flight{j: j, req: req})
	default:
		j.once.Do(func() {
			j.deliver(nil, nil, &RequestError{Code: CodeInternal, Msg: "unknown job kind"})
		})
		return live
	}
}

// retire reports a completed flight back to its job or session.
func (b *backend) retire(r int, f flight) {
	if f.op != nil {
		f.j.rankDone(r, f.op.Wait())
		return
	}
	mLatProxy.ObserveSince(f.j.t0)
	st, _ := f.req.Test()
	if f.j.kind == jobIsend {
		// A send's status echoes the posted message; don't ship the
		// payload back to the client that sent it.
		st.Msg.Data = nil
	}
	f.j.sess.opDone(f.j.opID, st)
}

// reqOp adapts a comm.Request to the scheduler's Op interface.
type reqOp struct{ r comm.Request }

func (o reqOp) Done() bool {
	_, ok := o.r.Test()
	return ok
}
