package serve

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"adapt/internal/comm"
)

// Wire format: every frame is a 4-byte little-endian body length
// followed by the body; body byte 0 is the frame type, the rest is the
// typed payload. The codec is a set of pure encode/parse functions so
// the fuzz harness can drive the exact bytes a hostile or truncated
// client could send — every malformation must come back as a typed
// *ProtoError, never a panic or a hang.
const (
	// Client → server.
	cfHello     byte = 0x01
	cfAllreduce byte = 0x02
	cfReduceFT  byte = 0x03
	cfIsend     byte = 0x04
	cfIrecv     byte = 0x05
	cfClose     byte = 0x06

	// Server → client.
	sfWelcome byte = 0x81
	sfResult  byte = 0x82
	sfErr     byte = 0x83
	sfOpDone  byte = 0x84
	sfBye     byte = 0x85
)

const (
	protoVersion = 1
	// maxFrameBody bounds one frame body (type byte + payload): 64 MiB.
	maxFrameBody = 1 << 26
	// maxWireWorld bounds the world size a frame may claim, independent
	// of the server's configured cap.
	maxWireWorld = 1 << 16
)

// ProtoError is a typed wire-protocol violation: bad framing, a
// truncated payload, an unknown type, an out-of-range field.
type ProtoError struct {
	Reason string
}

func (e *ProtoError) Error() string { return "serve: protocol error: " + e.Reason }

func protoErrf(format string, args ...any) error {
	return &ProtoError{Reason: fmt.Sprintf(format, args...)}
}

// readFrame reads one frame. Transport failures come back as the raw
// io error (io.EOF on a clean end-of-stream between frames); framing
// violations come back as *ProtoError.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var pfx [4]byte
	if _, err := io.ReadFull(r, pfx[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.LittleEndian.Uint32(pfx[:]))
	if n < 1 {
		return 0, nil, protoErrf("frame body %d bytes, want >= 1", n)
	}
	if n > maxFrameBody {
		return 0, nil, protoErrf("frame body %d bytes exceeds limit %d", n, maxFrameBody)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return body[0], body[1:], nil
}

// appendFrame frames (typ, payload) onto dst.
func appendFrame(dst []byte, typ byte, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(1+len(payload)))
	dst = append(dst, typ)
	return append(dst, payload...)
}

type helloMsg struct {
	Proto     uint32
	World     int
	TagSpace  uint32
	ProxyRank int // -1 for service sessions
	Group     string
}

func encodeHello(m helloMsg) []byte {
	p := make([]byte, 0, 17+len(m.Group))
	p = binary.LittleEndian.AppendUint32(p, m.Proto)
	p = binary.LittleEndian.AppendUint32(p, uint32(m.World))
	p = binary.LittleEndian.AppendUint32(p, m.TagSpace)
	p = binary.LittleEndian.AppendUint32(p, uint32(int32(m.ProxyRank)))
	p = append(p, byte(len(m.Group)))
	p = append(p, m.Group...)
	return appendFrame(nil, cfHello, p)
}

func parseHello(p []byte) (helloMsg, error) {
	if len(p) < 17 {
		return helloMsg{}, protoErrf("hello body %d bytes, want >= 17", len(p))
	}
	m := helloMsg{
		Proto:     binary.LittleEndian.Uint32(p[0:4]),
		World:     int(binary.LittleEndian.Uint32(p[4:8])),
		TagSpace:  binary.LittleEndian.Uint32(p[8:12]),
		ProxyRank: int(int32(binary.LittleEndian.Uint32(p[12:16]))),
	}
	gl := int(p[16])
	if len(p) != 17+gl {
		return helloMsg{}, protoErrf("hello group length %d does not fit body %d", gl, len(p))
	}
	m.Group = string(p[17 : 17+gl])
	if m.Proto != protoVersion {
		return helloMsg{}, protoErrf("protocol version %d, want %d", m.Proto, protoVersion)
	}
	if m.World < 1 || m.World > maxWireWorld {
		return helloMsg{}, protoErrf("world size %d out of range", m.World)
	}
	if m.ProxyRank < -1 || m.ProxyRank >= m.World {
		return helloMsg{}, protoErrf("proxy rank %d out of range for world %d", m.ProxyRank, m.World)
	}
	return m, nil
}

type reduceMsg struct {
	ID   uint64
	Vals []float64
}

func encodeReduce(typ byte, id uint64, vals []float64) []byte {
	p := make([]byte, 0, 12+8*len(vals))
	p = binary.LittleEndian.AppendUint64(p, id)
	p = binary.LittleEndian.AppendUint32(p, uint32(len(vals)))
	for _, v := range vals {
		p = binary.LittleEndian.AppendUint64(p, math.Float64bits(v))
	}
	return appendFrame(nil, typ, p)
}

func parseReduce(p []byte) (reduceMsg, error) {
	if len(p) < 12 {
		return reduceMsg{}, protoErrf("reduce body %d bytes, want >= 12", len(p))
	}
	m := reduceMsg{ID: binary.LittleEndian.Uint64(p[0:8])}
	count := int(binary.LittleEndian.Uint32(p[8:12]))
	if count < 1 || count > (maxFrameBody-13)/8 {
		return reduceMsg{}, protoErrf("reduce element count %d out of range", count)
	}
	if len(p) != 12+8*count {
		return reduceMsg{}, protoErrf("reduce payload %d bytes for %d elements", len(p)-12, count)
	}
	m.Vals = make([]float64, count)
	for i := range m.Vals {
		m.Vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[12+8*i:]))
	}
	return m, nil
}

type isendMsg struct {
	ID      uint64
	Dst     int
	Tag     comm.Tag
	Size    int
	HasData bool
	Data    []byte
}

func encodeIsend(m isendMsg) []byte {
	p := make([]byte, 0, 25+len(m.Data))
	p = binary.LittleEndian.AppendUint64(p, m.ID)
	p = binary.LittleEndian.AppendUint32(p, uint32(int32(m.Dst)))
	p = binary.LittleEndian.AppendUint64(p, uint64(m.Tag))
	p = binary.LittleEndian.AppendUint32(p, uint32(m.Size))
	if m.HasData {
		p = append(p, 1)
		p = append(p, m.Data...)
	} else {
		p = append(p, 0)
	}
	return appendFrame(nil, cfIsend, p)
}

func parseIsend(p []byte) (isendMsg, error) {
	if len(p) < 25 {
		return isendMsg{}, protoErrf("isend body %d bytes, want >= 25", len(p))
	}
	m := isendMsg{
		ID:   binary.LittleEndian.Uint64(p[0:8]),
		Dst:  int(int32(binary.LittleEndian.Uint32(p[8:12]))),
		Tag:  comm.Tag(binary.LittleEndian.Uint64(p[12:20])),
		Size: int(binary.LittleEndian.Uint32(p[20:24])),
	}
	switch p[24] {
	case 0:
		if len(p) != 25 {
			return isendMsg{}, protoErrf("payload-elided isend carries %d extra bytes", len(p)-25)
		}
	case 1:
		m.HasData = true
		if len(p) != 25+m.Size {
			return isendMsg{}, protoErrf("isend data %d bytes, declared size %d", len(p)-25, m.Size)
		}
		m.Data = p[25:]
	default:
		return isendMsg{}, protoErrf("isend hasData flag %d", p[24])
	}
	if m.Size < 0 || m.Size > maxFrameBody {
		return isendMsg{}, protoErrf("isend size %d out of range", m.Size)
	}
	if m.Dst < 0 || m.Dst >= maxWireWorld {
		return isendMsg{}, protoErrf("isend destination %d out of range", m.Dst)
	}
	return m, nil
}

type irecvMsg struct {
	ID  uint64
	Src int
	Tag comm.Tag
}

func encodeIrecv(m irecvMsg) []byte {
	p := make([]byte, 0, 20)
	p = binary.LittleEndian.AppendUint64(p, m.ID)
	p = binary.LittleEndian.AppendUint32(p, uint32(int32(m.Src)))
	p = binary.LittleEndian.AppendUint64(p, uint64(m.Tag))
	return appendFrame(nil, cfIrecv, p)
}

func parseIrecv(p []byte) (irecvMsg, error) {
	if len(p) != 20 {
		return irecvMsg{}, protoErrf("irecv body %d bytes, want 20", len(p))
	}
	m := irecvMsg{
		ID:  binary.LittleEndian.Uint64(p[0:8]),
		Src: int(int32(binary.LittleEndian.Uint32(p[8:12]))),
		Tag: comm.Tag(binary.LittleEndian.Uint64(p[12:20])),
	}
	if m.Src != comm.AnySource && (m.Src < 0 || m.Src >= maxWireWorld) {
		return irecvMsg{}, protoErrf("irecv source %d out of range", m.Src)
	}
	return m, nil
}

type welcomeMsg struct {
	Session uint64
	Gen     uint64
}

func encodeWelcome(m welcomeMsg) []byte {
	p := make([]byte, 0, 16)
	p = binary.LittleEndian.AppendUint64(p, m.Session)
	p = binary.LittleEndian.AppendUint64(p, m.Gen)
	return appendFrame(nil, sfWelcome, p)
}

func parseWelcome(p []byte) (welcomeMsg, error) {
	if len(p) != 16 {
		return welcomeMsg{}, protoErrf("welcome body %d bytes, want 16", len(p))
	}
	return welcomeMsg{
		Session: binary.LittleEndian.Uint64(p[0:8]),
		Gen:     binary.LittleEndian.Uint64(p[8:16]),
	}, nil
}

type resultMsg struct {
	ID   uint64
	Mask []bool // survivor mask, nil for non-FT results
	Data []byte // raw little-endian float64 payload
}

func encodeResult(m resultMsg) []byte {
	// The mask length is a uint32: survivor masks are world-sized and
	// worlds may be as large as maxWireWorld, which outgrows a byte.
	p := make([]byte, 0, 16+len(m.Mask)+len(m.Data))
	p = binary.LittleEndian.AppendUint64(p, m.ID)
	p = binary.LittleEndian.AppendUint32(p, uint32(len(m.Mask)))
	for _, alive := range m.Mask {
		if alive {
			p = append(p, 1)
		} else {
			p = append(p, 0)
		}
	}
	p = binary.LittleEndian.AppendUint32(p, uint32(len(m.Data)))
	p = append(p, m.Data...)
	return appendFrame(nil, sfResult, p)
}

func parseResult(p []byte) (resultMsg, error) {
	if len(p) < 16 {
		return resultMsg{}, protoErrf("result body %d bytes, want >= 16", len(p))
	}
	m := resultMsg{ID: binary.LittleEndian.Uint64(p[0:8])}
	ml := int(binary.LittleEndian.Uint32(p[8:12]))
	if ml > maxWireWorld {
		return resultMsg{}, protoErrf("result mask %d entries exceeds world cap %d", ml, maxWireWorld)
	}
	if len(p) < 16+ml {
		return resultMsg{}, protoErrf("result mask %d bytes does not fit body %d", ml, len(p))
	}
	if ml > 0 {
		m.Mask = make([]bool, ml)
		for i := 0; i < ml; i++ {
			m.Mask[i] = p[12+i] != 0
		}
	}
	dl := int(binary.LittleEndian.Uint32(p[12+ml : 16+ml]))
	if dl%8 != 0 || len(p) != 16+ml+dl {
		return resultMsg{}, protoErrf("result payload %d bytes for declared %d", len(p)-16-ml, dl)
	}
	m.Data = p[16+ml:]
	return m, nil
}

type errMsg struct {
	ID   uint64
	Code Code
	Msg  string
}

func encodeErr(m errMsg) []byte {
	if len(m.Msg) > 1024 {
		m.Msg = m.Msg[:1024]
	}
	p := make([]byte, 0, 11+len(m.Msg))
	p = binary.LittleEndian.AppendUint64(p, m.ID)
	p = append(p, byte(m.Code))
	p = binary.LittleEndian.AppendUint16(p, uint16(len(m.Msg)))
	p = append(p, m.Msg...)
	return appendFrame(nil, sfErr, p)
}

func parseErr(p []byte) (errMsg, error) {
	if len(p) < 11 {
		return errMsg{}, protoErrf("err body %d bytes, want >= 11", len(p))
	}
	m := errMsg{ID: binary.LittleEndian.Uint64(p[0:8]), Code: Code(p[8])}
	ml := int(binary.LittleEndian.Uint16(p[9:11]))
	if len(p) != 11+ml {
		return errMsg{}, protoErrf("err message %d bytes, declared %d", len(p)-11, ml)
	}
	m.Msg = string(p[11:])
	if m.Code == CodeOK || m.Code > CodeInternal {
		return errMsg{}, protoErrf("err code %d out of range", m.Code)
	}
	return m, nil
}

type opDoneMsg struct {
	ID      uint64
	Source  int
	Tag     comm.Tag
	Size    int
	HasData bool
	Data    []byte
}

func encodeOpDone(m opDoneMsg) []byte {
	p := make([]byte, 0, 25+len(m.Data))
	p = binary.LittleEndian.AppendUint64(p, m.ID)
	p = binary.LittleEndian.AppendUint32(p, uint32(int32(m.Source)))
	p = binary.LittleEndian.AppendUint64(p, uint64(m.Tag))
	p = binary.LittleEndian.AppendUint32(p, uint32(m.Size))
	if m.HasData {
		p = append(p, 1)
		p = append(p, m.Data...)
	} else {
		p = append(p, 0)
	}
	return appendFrame(nil, sfOpDone, p)
}

func parseOpDone(p []byte) (opDoneMsg, error) {
	if len(p) < 25 {
		return opDoneMsg{}, protoErrf("opdone body %d bytes, want >= 25", len(p))
	}
	m := opDoneMsg{
		ID:     binary.LittleEndian.Uint64(p[0:8]),
		Source: int(int32(binary.LittleEndian.Uint32(p[8:12]))),
		Tag:    comm.Tag(binary.LittleEndian.Uint64(p[12:20])),
		Size:   int(binary.LittleEndian.Uint32(p[20:24])),
	}
	switch p[24] {
	case 0:
		if len(p) != 25 {
			return opDoneMsg{}, protoErrf("payload-elided opdone carries %d extra bytes", len(p)-25)
		}
	case 1:
		m.HasData = true
		if len(p) != 25+m.Size {
			return opDoneMsg{}, protoErrf("opdone data %d bytes, declared size %d", len(p)-25, m.Size)
		}
		m.Data = p[25:]
	default:
		return opDoneMsg{}, protoErrf("opdone hasData flag %d", p[24])
	}
	return m, nil
}

func encodeClose() []byte { return appendFrame(nil, cfClose, nil) }

// parseClientFrame decodes any client-side frame into its typed message
// — the single entry point the server reader and the fuzz harness
// share. Unknown types and malformed payloads are *ProtoError.
func parseClientFrame(typ byte, payload []byte) (any, error) {
	switch typ {
	case cfHello:
		return parseHello(payload)
	case cfAllreduce, cfReduceFT:
		return parseReduce(payload)
	case cfIsend:
		return parseIsend(payload)
	case cfIrecv:
		return parseIrecv(payload)
	case cfClose:
		if len(payload) != 0 {
			return nil, protoErrf("close frame carries %d bytes", len(payload))
		}
		return nil, nil
	default:
		return nil, protoErrf("unknown client frame type %#x", typ)
	}
}

// floatsToBytes renders vals as the wire's little-endian float64 bytes.
func floatsToBytes(vals []float64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return b
}

// bytesToFloats decodes little-endian float64 bytes; len(b) must be a
// multiple of 8.
func bytesToFloats(b []byte) []float64 {
	vals := make([]float64, len(b)/8)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return vals
}
