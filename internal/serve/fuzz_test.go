package serve

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"adapt/internal/comm"
)

// FuzzRequestFrame throws arbitrary byte streams at the framed request
// codec exactly the way the session reader consumes them: frame by
// frame, parse by type. The contract under attack: every malformation —
// truncated prefix, short body, duplicated or reordered fields, wild
// lengths — must surface as a typed *ProtoError or a plain io error,
// never a panic, a hang, or an unbounded allocation. Well-formed frames
// must round-trip through their encoders bit-exactly.
func FuzzRequestFrame(f *testing.F) {
	// Valid traffic, one of each kind.
	f.Add(encodeHello(helloMsg{Proto: protoVersion, World: 4, TagSpace: 7, ProxyRank: -1, Group: "g"}))
	f.Add(encodeHello(helloMsg{Proto: protoVersion, World: 2, ProxyRank: 1}))
	f.Add(encodeReduce(cfAllreduce, 3, []float64{1, 2, 3, 4}))
	f.Add(encodeReduce(cfReduceFT, 9, []float64{0.5, -0.5}))
	f.Add(encodeIsend(isendMsg{ID: 5, Dst: 1, Tag: 42, Size: 3, HasData: true, Data: []byte{1, 2, 3}}))
	f.Add(encodeIsend(isendMsg{ID: 6, Dst: 0, Tag: -1, Size: 4096}))
	f.Add(encodeIrecv(irecvMsg{ID: 7, Src: comm.AnySource, Tag: comm.AnyTag}))
	f.Add(encodeClose())
	// Back-to-back stream (a whole session's opening volley).
	f.Add(bytes.Join([][]byte{
		encodeHello(helloMsg{Proto: protoVersion, World: 2, ProxyRank: -1}),
		encodeReduce(cfAllreduce, 1, []float64{1, 2}),
		encodeClose(),
	}, nil))
	// Malformations: truncated prefix, truncated body, zero-length body,
	// oversized declared length, unknown type, trailing garbage.
	f.Add([]byte{3, 0, 0})
	f.Add([]byte{10, 0, 0, 0, byte(cfAllreduce), 1, 2})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 255, 255, 255, 1})
	f.Add([]byte{1, 0, 0, 0, 0x77})
	f.Add(append(encodeClose(), 0xde, 0xad))

	f.Fuzz(func(t *testing.T, stream []byte) {
		r := bytes.NewReader(stream)
		for frames := 0; frames < 64; frames++ {
			typ, payload, err := readFrame(r)
			if err != nil {
				var pe *ProtoError
				if !errors.As(err, &pe) && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("readFrame returned untyped error %T: %v", err, err)
				}
				return
			}
			msg, err := parseClientFrame(typ, payload)
			if err != nil {
				var pe *ProtoError
				if !errors.As(err, &pe) {
					t.Fatalf("parseClientFrame(%#x) returned untyped error %T: %v", typ, err, err)
				}
				continue
			}
			reencodeRoundTrip(t, typ, payload, msg)
			// The same bytes must also never panic the server-frame
			// parsers (a hostile peer can impersonate either side).
			parseWelcome(payload)
			parseResult(payload)
			parseErr(payload)
			parseOpDone(payload)
		}
	})
}

// reencodeRoundTrip asserts that a successfully parsed frame re-encodes
// to the identical wire bytes — the codec has one canonical form.
func reencodeRoundTrip(t *testing.T, typ byte, payload []byte, msg any) {
	t.Helper()
	var frame []byte
	switch m := msg.(type) {
	case helloMsg:
		frame = encodeHello(m)
	case reduceMsg:
		frame = encodeReduce(typ, m.ID, m.Vals)
	case isendMsg:
		frame = encodeIsend(m)
	case irecvMsg:
		frame = encodeIrecv(m)
	case nil: // close
		frame = encodeClose()
	default:
		t.Fatalf("parseClientFrame returned unknown message type %T", msg)
	}
	want := appendFrame(nil, typ, payload)
	if !bytes.Equal(frame, want) {
		t.Fatalf("frame %#x does not round-trip: parsed %+v re-encodes to %d bytes, original %d",
			typ, msg, len(frame), len(want))
	}
}
