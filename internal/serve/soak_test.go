package serve

import (
	"fmt"
	"math/rand"
	goruntime "runtime"
	"sync"
	"testing"
	"time"

	"adapt/internal/faults"
)

// The soak battery: many concurrent sessions stream many requests each
// at a daemon whose backend worlds run under a seeded chaos plan
// (drops, dups, jitter — the recovery machinery retries underneath).
// Every result is verified, every session drains cleanly, and at the
// end the daemon must give back every goroutine it ever started: no
// leaked executors, no stuck sessions, no orphaned fuse timers.
//
// Short mode runs a scaled-down variant so the tier-1 suite exercises
// the same lifecycle; the full shape runs in the default (long) mode
// used by make soak / the CI battery.

func soakShape() (sessions, requests int) {
	if testing.Short() {
		return 8, 6
	}
	return 48, 12
}

func TestSoakSessions(t *testing.T) {
	base := goruntime.NumGoroutine()
	chaos, err := faults.ParsePlan("seed=11; all: drop=0.05, dup=0.05, jitter=20us")
	if err != nil {
		t.Fatalf("chaos plan: %v", err)
	}
	srv, err := New(Config{
		FuseWindow:   200 * time.Microsecond,
		FuseMaxReqs:  8,
		QueueDepth:   256,
		MaxSessions:  256,
		Chaos:        &chaos,
		Recovery:     faults.DefaultRecovery(),
		DrainTimeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	nSess, nReq := soakShape()
	worlds := []int{2, 4} // two backend keys, exercised concurrently
	var wg sync.WaitGroup
	errs := make(chan error, nSess)
	for s := 0; s < nSess; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + s)))
			world := worlds[s%len(worlds)]
			sess, err := Dial(srv.Addr(), SessionOpts{
				World: world, Group: fmt.Sprintf("soak-%d", s%3), ProxyRank: -1,
			})
			if err != nil {
				errs <- fmt.Errorf("session %d dial: %w", s, err)
				return
			}
			defer sess.Close()
			// Pipeline a few calls at a time, verify every result.
			for i := 0; i < nReq; {
				burst := 1 + rng.Intn(4)
				if burst > nReq-i {
					burst = nReq - i
				}
				calls := make([]*Call, burst)
				salts := make([]int, burst)
				elems := 4 << rng.Intn(3) // 4, 8, or 16 per rank
				for b := 0; b < burst; b++ {
					salt := s*1000 + i + b
					c, err := sess.StartAllreduce(contrib(world, elems, salt))
					if err != nil {
						errs <- fmt.Errorf("session %d req %d: %w", s, i+b, err)
						return
					}
					calls[b], salts[b] = c, salt
				}
				for b, c := range calls {
					out, _, err := c.Wait()
					if err != nil {
						errs <- fmt.Errorf("session %d req %d wait: %w", s, i+b, err)
						return
					}
					for e, v := range out {
						if want := wantSum(world, e, salts[b]); v != want {
							errs <- fmt.Errorf("session %d req %d element %d: got %v, want %v",
								s, i+b, e, v, want)
							return
						}
					}
				}
				i += burst
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		srv.Close()
		t.FailNow()
	}

	st := srv.Stats()
	if st.Sessions != uint64(nSess) {
		t.Errorf("accepted %d sessions, want %d", st.Sessions, nSess)
	}
	if st.SessionsClosed != uint64(nSess) {
		t.Errorf("%d sessions fully drained, want %d (stuck sessions at close)",
			st.SessionsClosed, nSess)
	}
	if want := uint64(nSess * nReq); st.Requests != want {
		t.Errorf("admitted %d requests, want %d", st.Requests, want)
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Everything the daemon started — executors, session readers and
	// writers, fuse timers, accept loop — must be gone.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if got := goruntime.NumGoroutine(); got <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:goruntime.Stack(buf, true)]
			t.Fatalf("goroutines leaked after soak drain: %d > baseline %d\n%s",
				goruntime.NumGoroutine(), base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
