package serve

import (
	"math"
	"testing"
	"time"

	"adapt/internal/perf"
)

// TestFusedByteIdentity is the fusing conformance check: k same-shape
// requests merged into one fused collective must demux to results
// byte-identical to running each request through an unfused daemon.
// Lattice inputs keep every fold order exact, so any bit difference
// is a real demux defect (offset slip, scaling, precision loss) —
// element positions never mix and the data path must be exact.
func TestFusedByteIdentity(t *testing.T) {
	const world, elems, k = 4, 8, 6

	// Reference: unfused daemon, one collective per request.
	plain := newTestServer(t, Config{DrainTimeout: 2 * time.Second})
	ref, err := Dial(plain.Addr(), SessionOpts{World: world, ProxyRank: -1})
	if err != nil {
		t.Fatalf("Dial unfused: %v", err)
	}
	defer ref.Close()
	want := make([][]uint64, k)
	for i := 0; i < k; i++ {
		out, err := ref.Allreduce(contrib(world, elems, i))
		if err != nil {
			t.Fatalf("unfused request %d: %v", i, err)
		}
		want[i] = floatBitsOf(out)
	}

	// Fused daemon: a long window parks the batch until the k-th request
	// closes it, so all k requests ride one collective deterministically.
	fused := newTestServer(t, Config{
		FuseWindow:   500 * time.Millisecond,
		FuseMaxReqs:  k,
		DrainTimeout: 2 * time.Second,
	})
	before := perf.Read()
	sess, err := Dial(fused.Addr(), SessionOpts{World: world, ProxyRank: -1})
	if err != nil {
		t.Fatalf("Dial fused: %v", err)
	}
	defer sess.Close()
	calls := make([]*Call, k)
	for i := range calls {
		c, err := sess.StartAllreduce(contrib(world, elems, i))
		if err != nil {
			t.Fatalf("fused request %d: %v", i, err)
		}
		calls[i] = c
	}
	for i, c := range calls {
		out, _, err := c.Wait()
		if err != nil {
			t.Fatalf("fused request %d: %v", i, err)
		}
		got := floatBitsOf(out)
		if len(got) != len(want[i]) {
			t.Fatalf("fused request %d: %d elements, want %d", i, len(got), len(want[i]))
		}
		for e := range got {
			if got[e] != want[i][e] {
				t.Fatalf("fused request %d element %d: bits %#x, want %#x (values %v vs %v)",
					i, e, got[e], want[i][e],
					math.Float64frombits(got[e]), math.Float64frombits(want[i][e]))
			}
		}
	}
	after := perf.Read()
	if batches := after.ServeFusedBatch - before.ServeFusedBatch; batches == 0 {
		t.Fatal("no fused batch executed — the byte-identity run never exercised fusing")
	}
	if fusedReqs := after.ServeFusedReqs - before.ServeFusedReqs; fusedReqs < k {
		t.Fatalf("only %d requests rode fused batches, want >= %d", fusedReqs, k)
	}
}

// TestFuseMixedShapes interleaves two request shapes: same-shape
// requests fuse with each other only, and both shapes demux correctly.
func TestFuseMixedShapes(t *testing.T) {
	const world = 2
	srv := newTestServer(t, Config{
		FuseWindow:   20 * time.Millisecond,
		FuseMaxReqs:  64,
		DrainTimeout: 2 * time.Second,
	})
	sess, err := Dial(srv.Addr(), SessionOpts{World: world, ProxyRank: -1})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer sess.Close()

	shapes := []int{4, 16, 4, 16, 4, 16}
	calls := make([]*Call, len(shapes))
	for i, elems := range shapes {
		c, err := sess.StartAllreduce(contrib(world, elems, i))
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		calls[i] = c
	}
	for i, c := range calls {
		out, _, err := c.Wait()
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if len(out) != shapes[i] {
			t.Fatalf("request %d: %d elements, want %d", i, len(out), shapes[i])
		}
		for e, v := range out {
			if want := wantSum(world, e, i); v != want {
				t.Fatalf("request %d element %d: got %v, want %v", i, e, v, want)
			}
		}
	}
}

// TestFuseWindowFlush: a partial batch (below FuseMaxReqs) must still
// flush when its window expires.
func TestFuseWindowFlush(t *testing.T) {
	const world, elems = 2, 8
	srv := newTestServer(t, Config{
		FuseWindow:   15 * time.Millisecond,
		FuseMaxReqs:  64,
		DrainTimeout: 2 * time.Second,
	})
	sess, err := Dial(srv.Addr(), SessionOpts{World: world, ProxyRank: -1})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer sess.Close()
	c1, err := sess.StartAllreduce(contrib(world, elems, 1))
	if err != nil {
		t.Fatalf("request 1: %v", err)
	}
	c2, err := sess.StartAllreduce(contrib(world, elems, 2))
	if err != nil {
		t.Fatalf("request 2: %v", err)
	}
	for i, c := range []*Call{c1, c2} {
		out, _, err := c.Wait()
		if err != nil {
			t.Fatalf("request %d: %v", i+1, err)
		}
		for e, v := range out {
			if want := wantSum(world, e, i+1); v != want {
				t.Fatalf("request %d element %d: got %v, want %v", i+1, e, v, want)
			}
		}
	}
}

func floatBitsOf(vals []float64) []uint64 {
	bits := make([]uint64, len(vals))
	for i, v := range vals {
		bits[i] = math.Float64bits(v)
	}
	return bits
}
