package serve

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// contrib builds a world*elems rank-major lattice contribution whose
// per-element sums are exact small integers (order-independent folds).
func contrib(world, elems, salt int) []float64 {
	vals := make([]float64, world*elems)
	for r := 0; r < world; r++ {
		for e := 0; e < elems; e++ {
			vals[r*elems+e] = float64((r+1)*(e+3) + salt)
		}
	}
	return vals
}

// wantSum is the expected allreduce of contrib's element e.
func wantSum(world, e, salt int) float64 {
	s := 0.0
	for r := 0; r < world; r++ {
		s += float64((r+1)*(e+3) + salt)
	}
	return s
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestAllreduceRoundTrip(t *testing.T) {
	srv := newTestServer(t, Config{DrainTimeout: 2 * time.Second})
	const world, elems = 4, 16
	sess, err := Dial(srv.Addr(), SessionOpts{World: world, ProxyRank: -1})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer sess.Close()

	for salt := 0; salt < 5; salt++ {
		out, err := sess.Allreduce(contrib(world, elems, salt))
		if err != nil {
			t.Fatalf("Allreduce salt %d: %v", salt, err)
		}
		if len(out) != elems {
			t.Fatalf("salt %d: got %d elements, want %d", salt, len(out), elems)
		}
		for e, v := range out {
			if want := wantSum(world, e, salt); v != want {
				t.Fatalf("salt %d element %d: got %v, want %v", salt, e, v, want)
			}
		}
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestPipelinedCalls(t *testing.T) {
	srv := newTestServer(t, Config{DrainTimeout: 2 * time.Second})
	const world, elems, inflight = 2, 8, 24
	sess, err := Dial(srv.Addr(), SessionOpts{World: world, ProxyRank: -1})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer sess.Close()

	calls := make([]*Call, inflight)
	for i := range calls {
		c, err := sess.StartAllreduce(contrib(world, elems, i))
		if err != nil {
			t.Fatalf("StartAllreduce %d: %v", i, err)
		}
		calls[i] = c
	}
	for i, c := range calls {
		out, _, err := c.Wait()
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		for e, v := range out {
			if want := wantSum(world, e, i); v != want {
				t.Fatalf("call %d element %d: got %v, want %v", i, e, v, want)
			}
		}
	}
}

func TestBackendCachingAndGenerations(t *testing.T) {
	srv := newTestServer(t, Config{DrainTimeout: 2 * time.Second})
	opts := SessionOpts{World: 2, Group: "tenant-a", ProxyRank: -1}

	s1, err := Dial(srv.Addr(), opts)
	if err != nil {
		t.Fatalf("Dial 1: %v", err)
	}
	s2, err := Dial(srv.Addr(), opts)
	if err != nil {
		t.Fatalf("Dial 2: %v", err)
	}
	if s1.Gen() != 1 || s2.Gen() != 1 {
		t.Fatalf("same-key sessions got generations %d and %d, want 1 and 1", s1.Gen(), s2.Gen())
	}
	if got := srv.Stats().Backends; got != 1 {
		t.Fatalf("two same-key sessions built %d backends, want 1 (cached)", got)
	}
	// A different key is a different backend, not a cache hit.
	s3, err := Dial(srv.Addr(), SessionOpts{World: 2, Group: "tenant-b", ProxyRank: -1})
	if err != nil {
		t.Fatalf("Dial 3: %v", err)
	}
	if got := srv.Stats().Backends; got != 2 {
		t.Fatalf("distinct-key session reused a backend: %d built, want 2", got)
	}
	// Cached backends survive their sessions: reconnecting still hits.
	s1.Close()
	s2.Close()
	s3.Close()
	s4, err := Dial(srv.Addr(), opts)
	if err != nil {
		t.Fatalf("Dial 4: %v", err)
	}
	defer s4.Close()
	if got := srv.Stats().Backends; got != 2 {
		t.Fatalf("reconnect built a new backend: %d, want 2", got)
	}
	if s4.Gen() != 1 {
		t.Fatalf("reconnect got generation %d, want cached generation 1", s4.Gen())
	}
}

func TestSessionPendingOverload(t *testing.T) {
	// A long fuse window parks requests server-side, so the session's
	// in-flight cap fills deterministically.
	srv := newTestServer(t, Config{
		SessionPending: 4,
		FuseWindow:     300 * time.Millisecond,
		FuseMaxReqs:    64,
		DrainTimeout:   3 * time.Second,
	})
	const world, elems = 2, 4
	sess, err := Dial(srv.Addr(), SessionOpts{World: world, ProxyRank: -1})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer sess.Close()

	var ok []*Call
	for i := 0; i < 4; i++ {
		c, err := sess.StartAllreduce(contrib(world, elems, i))
		if err != nil {
			t.Fatalf("StartAllreduce %d: %v", i, err)
		}
		ok = append(ok, c)
	}
	over, err := sess.StartAllreduce(contrib(world, elems, 99))
	if err != nil {
		t.Fatalf("StartAllreduce overflow: %v", err)
	}
	if _, _, err := over.Wait(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("5th in-flight request: got %v, want typed Overloaded", err)
	}
	// The parked four complete once the fuse window flushes.
	for i, c := range ok {
		out, _, err := c.Wait()
		if err != nil {
			t.Fatalf("parked call %d: %v", i, err)
		}
		for e, v := range out {
			if want := wantSum(world, e, i); v != want {
				t.Fatalf("parked call %d element %d: got %v, want %v", i, e, v, want)
			}
		}
	}
}

func TestMaxSessionsRejected(t *testing.T) {
	srv := newTestServer(t, Config{MaxSessions: 2, DrainTimeout: 2 * time.Second})
	opts := SessionOpts{World: 2, ProxyRank: -1}
	s1, err := Dial(srv.Addr(), opts)
	if err != nil {
		t.Fatalf("Dial 1: %v", err)
	}
	defer s1.Close()
	s2, err := Dial(srv.Addr(), opts)
	if err != nil {
		t.Fatalf("Dial 2: %v", err)
	}
	defer s2.Close()
	if _, err := Dial(srv.Addr(), opts); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("3rd session: got %v, want typed Overloaded", err)
	}
}

func TestBadRequestShapes(t *testing.T) {
	srv := newTestServer(t, Config{DrainTimeout: 2 * time.Second})
	sess, err := Dial(srv.Addr(), SessionOpts{World: 3, ProxyRank: -1})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer sess.Close()
	// 8 values do not divide by world 3.
	if _, err := sess.Allreduce(make([]float64, 8)); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("indivisible shape: got %v, want typed BadRequest", err)
	}
	// The session survives a rejected request.
	if _, err := sess.Allreduce(contrib(3, 2, 0)); err != nil {
		t.Fatalf("request after rejection: %v", err)
	}
	// Oversized worlds are refused at Hello.
	if _, err := Dial(srv.Addr(), SessionOpts{World: 1000, ProxyRank: -1}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("oversized world: got %v, want typed BadRequest", err)
	}
}

func TestDrainBeforeClose(t *testing.T) {
	srv := newTestServer(t, Config{
		FuseWindow:   50 * time.Millisecond,
		FuseMaxReqs:  64,
		DrainTimeout: 5 * time.Second,
	})
	const world, elems, n = 2, 8, 12
	sess, err := Dial(srv.Addr(), SessionOpts{World: world, ProxyRank: -1})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	calls := make([]*Call, n)
	for i := range calls {
		c, err := sess.StartAllreduce(contrib(world, elems, i))
		if err != nil {
			t.Fatalf("StartAllreduce %d: %v", i, err)
		}
		calls[i] = c
	}
	// Close immediately: the daemon must retire every admitted request
	// before completing the Bye handshake.
	if err := sess.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i, c := range calls {
		out, _, err := c.Wait()
		if err != nil {
			t.Fatalf("in-flight call %d after drain: %v", i, err)
		}
		for e, v := range out {
			if want := wantSum(world, e, i); v != want {
				t.Fatalf("drained call %d element %d: got %v, want %v", i, e, v, want)
			}
		}
	}
}

func TestServerCloseDrainsSessions(t *testing.T) {
	srv, err := New(Config{DrainTimeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const world, elems = 2, 8
	var sessions []*Session
	for i := 0; i < 3; i++ {
		sess, err := Dial(srv.Addr(), SessionOpts{World: world, ProxyRank: -1})
		if err != nil {
			t.Fatalf("Dial %d: %v", i, err)
		}
		sessions = append(sessions, sess)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(4 * time.Second):
		t.Fatal("Server.Close did not finish with idle sessions open")
	}
	// Every client observed a clean shutdown and fails new work typed.
	for i, sess := range sessions {
		if _, err := sess.Allreduce(contrib(world, elems, 0)); err == nil {
			t.Fatalf("session %d accepted work after server close", i)
		}
		sess.Close()
	}
}

// TestConcurrentFTSubmissions pins the submit-ordering guarantee:
// blocking FT collectives from many sessions racing into one shared
// non-armed backend must land on every rank's queue in the same global
// order. An unserialized fan-out can enqueue two jobs in opposite
// orders on two ranks, leaving each rank blocked in a different
// collective with disjoint tags — a permanent deadlock this test turns
// into a timeout failure.
func TestConcurrentFTSubmissions(t *testing.T) {
	srv := newTestServer(t, Config{DrainTimeout: 5 * time.Second})
	const world, elems, nSess, nReq = 4, 8, 6, 8
	done := make(chan struct{})
	errs := make(chan error, nSess)
	var wg sync.WaitGroup
	for s := 0; s < nSess; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sess, err := Dial(srv.Addr(), SessionOpts{World: world, ProxyRank: -1})
			if err != nil {
				errs <- fmt.Errorf("session %d dial: %w", s, err)
				return
			}
			defer sess.Close()
			for i := 0; i < nReq; i++ {
				salt := s*nReq + i
				vals := contrib(world, elems, salt)
				// Interleave a plain allreduce so FT jobs hit the
				// drain-then-block barrier with scheduled work in flight.
				if i%2 == 0 {
					if _, err := sess.Allreduce(vals); err != nil {
						errs <- fmt.Errorf("session %d allreduce %d: %w", s, i, err)
						return
					}
				}
				out, mask, err := sess.ReduceFT(vals)
				if err != nil {
					errs <- fmt.Errorf("session %d FT %d: %w", s, i, err)
					return
				}
				for r, alive := range mask {
					if !alive {
						errs <- fmt.Errorf("session %d FT %d: rank %d dead in a crash-free world", s, i, r)
						return
					}
				}
				for e, v := range out {
					if want := wantSum(world, e, salt); v != want {
						errs <- fmt.Errorf("session %d FT %d element %d: got %v, want %v", s, i, e, v, want)
						return
					}
				}
			}
		}(s)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent FT submissions deadlocked (per-rank queue orders diverged)")
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestManySessionsConcurrent(t *testing.T) {
	srv := newTestServer(t, Config{
		FuseWindow:   time.Millisecond,
		DrainTimeout: 5 * time.Second,
	})
	const world, elems, nSess, nReq = 4, 8, 8, 6
	var wg sync.WaitGroup
	errs := make(chan error, nSess)
	for s := 0; s < nSess; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sess, err := Dial(srv.Addr(), SessionOpts{World: world, ProxyRank: -1})
			if err != nil {
				errs <- fmt.Errorf("session %d dial: %w", s, err)
				return
			}
			defer sess.Close()
			for i := 0; i < nReq; i++ {
				salt := s*nReq + i
				out, err := sess.Allreduce(contrib(world, elems, salt))
				if err != nil {
					errs <- fmt.Errorf("session %d req %d: %w", s, i, err)
					return
				}
				for e, v := range out {
					if want := wantSum(world, e, salt); v != want {
						errs <- fmt.Errorf("session %d req %d element %d: got %v, want %v", s, i, e, v, want)
						return
					}
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := srv.Stats()
	if st.Sessions != nSess || st.Requests != nSess*nReq {
		t.Fatalf("stats: %d sessions / %d requests, want %d / %d",
			st.Sessions, st.Requests, nSess, nSess*nReq)
	}
}
