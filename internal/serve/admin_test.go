package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"adapt/internal/metrics"
)

// TestAdminAgainstLiveServer is the telemetry plane's end-to-end test:
// a real daemon serving real collectives with the admin endpoint
// attached, scraped over HTTP mid-run. Pins that the serving layer's
// instrumentation actually fires (latency histograms fill, the session
// gauge tracks, the app section reflects live sessions) and that
// /healthz flips to 503 once drain begins.
func TestAdminAgainstLiveServer(t *testing.T) {
	srv := newTestServer(t, Config{DrainTimeout: 2 * time.Second})
	admin, err := metrics.ServeAdmin("127.0.0.1:0", metrics.AdminOpts{
		Status:  func() any { return srv.StatusReport() },
		Healthy: func() bool { return !srv.Draining() },
	})
	if err != nil {
		t.Fatalf("ServeAdmin: %v", err)
	}
	defer admin.Close()

	const world, elems = 3, 8
	sess, err := Dial(srv.Addr(), SessionOpts{World: world, ProxyRank: -1})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer sess.Close()
	for salt := 0; salt < 4; salt++ {
		if _, err := sess.Allreduce(contrib(world, elems, salt)); err != nil {
			t.Fatalf("Allreduce: %v", err)
		}
	}

	get := func(path string) (int, []byte) {
		resp, err := http.Get("http://" + admin.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	code, body := get("/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz status %d", code)
	}
	var st metrics.Statusz
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("/statusz JSON: %v", err)
	}
	appJSON, _ := json.Marshal(st.App)
	var rep StatusReport
	if err := json.Unmarshal(appJSON, &rep); err != nil {
		t.Fatalf("app section is not a StatusReport: %v\n%s", err, appJSON)
	}
	if rep.Sessions != 1 || len(rep.SessionList) != 1 {
		t.Errorf("app sessions = %d (%d rows), want 1", rep.Sessions, len(rep.SessionList))
	}
	if rep.Requests < 4 || rep.Responses < 4 {
		t.Errorf("app requests/responses = %d/%d, want >= 4", rep.Requests, rep.Responses)
	}
	if len(rep.Backends) != 1 || rep.Backends[0].World != world {
		t.Errorf("app backends = %+v, want one world=%d row", rep.Backends, world)
	}
	var lat *metrics.QuantileSummary
	for i := range st.Histograms {
		h := &st.Histograms[i]
		if h.Name == "adapt_serve_request_latency_ns" && strings.Contains(h.Labels, "allreduce") {
			lat = h
		}
	}
	if lat == nil || lat.Count < 4 || lat.P50 == 0 {
		t.Errorf("allreduce latency summary missing or empty: %+v", lat)
	}

	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE adapt_serve_request_latency_ns histogram",
		`adapt_serve_request_latency_ns_count{kind="allreduce"}`,
		"adapt_serve_sessions_live 1",
		"adapt_serve_request_bytes_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d while serving", code)
	}
	sess.Close()
	srv.Close()
	if code, _ := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz = %d after Close, want 503", code)
	}
}
