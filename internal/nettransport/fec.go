package nettransport

import (
	"hash/crc32"
	"sync"
	"time"

	"adapt/internal/comm"
	"adapt/internal/faults"
	"adapt/internal/fec"
	"adapt/internal/perf"
	"adapt/internal/progress"
)

// Forward error correction over the socket transport's eager frame
// stream — the only substrate where sender and receiver genuinely share
// nothing but the wire. The sender-side framer (fecSender) groups eager
// segments per destination, keeps its own snapshot of every payload,
// and when a group closes (K members or the idle-flush timer) encodes M
// parity shards and ships each as a fecpar frame carrying the group
// roster. The receiver-side reconstructor (fecTracker) retains a copy
// of every delivered eager payload, and on each parity arrival greedily
// checks the group: erasures within the surviving parity are decoded
// and delivered through the normal envelope path (duplicate-suppressed
// by the per-sender xid set), then the group is acknowledged.
//
// The ARQ backstop is the sender's per-group timer: a group not acked
// within the retransmit timeout is resent whole — every member and
// parity shard drawing fresh chaos verdicts — with full-jitter backoff,
// and after the attempt budget the sender tombstones the group
// (fecdead), which fails still-missing members at the receiver with a
// structured *faults.TimeoutError. Loss within the parity budget
// therefore costs no retransmit round trip (the ack beats the timer),
// and loss beyond it degrades to exactly the retry/timeout semantics
// the other substrates implement.
//
// Scope: chaos verdicts and FEC cover eager frames only. Rendezvous
// legs (RTS/CTS/DATA) and the control plane ride clean TCP — the
// protocol-level loss story for multi-frame transfers is future work.

// ---------------------------------------------------------------------
// Sender
// ---------------------------------------------------------------------

// fecSender is one endpoint's group framer. Isend runs on the owner
// goroutine but flush/retransmit timers and acks (I/O loop) need the
// mutex.
type fecSender struct {
	c   *Comm
	cfg fec.Config
	ctl *fec.Controller
	rec faults.Recovery

	mu     sync.Mutex
	open   map[int]*txGroup    // dst -> group being filled
	sent   map[uint64]*txGroup // gid -> awaiting ack
	gid    uint64
	closed bool

	encoded uint64 // parity shards shipped
	lost    uint64 // groups that needed the resend path
}

// txMember is one eager segment retained by its group: roster metadata
// plus the framer-owned true-bytes snapshot (nil for elided payloads).
type txMember struct {
	meta    fecMeta
	payload []byte
}

type txGroup struct {
	id       uint64
	dst      int
	members  []*txMember
	metas    []fecMeta
	parity   [][]byte
	m        int
	attempts int  // transmissions spent (initial send is attempt 0)
	fellBack bool // timer fired at least once: the ARQ path ran
	timer    *time.Timer
}

func newFecSender(c *Comm) *fecSender {
	rec := c.cfg.chaosRec
	if rec.MaxAttempts == 0 {
		rec = faults.DefaultRecovery()
	}
	return &fecSender{c: c, cfg: c.cfg.fecCfg, ctl: fec.NewController(c.cfg.fecCfg),
		rec: rec, open: make(map[int]*txGroup), sent: make(map[uint64]*txGroup)}
}

// send carries one eager segment under FEC: transmit it now (under this
// attempt's verdict), enroll it in the destination's open group. Takes
// ownership of payload. Owner goroutine.
func (f *fecSender) send(dst int, meta fecMeta, payload []byte) {
	f.c.transmitEager(dst, meta, payload, 0)
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		comm.PutBuf(payload)
		return
	}
	g := f.open[dst]
	if g == nil {
		f.gid++
		g = &txGroup{id: f.gid, dst: dst}
		f.open[dst] = g
		gg := g
		// Idle flush: a trickling stream must not park its losses past a
		// fraction of the RTO — unrepaired members wait on the group's
		// parity before any resend can help them.
		time.AfterFunc(f.rec.RTO/4, func() { f.flush(dst, gg) })
	}
	g.members = append(g.members, &txMember{meta: meta, payload: payload})
	if len(g.members) >= f.cfg.K {
		delete(f.open, dst)
		f.sealLocked(g)
	}
	f.mu.Unlock()
}

// flush seals a group the idle timer caught still open.
func (f *fecSender) flush(dst int, g *txGroup) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed || f.open[dst] != g {
		return
	}
	delete(f.open, dst)
	f.sealLocked(g)
}

// sealLocked encodes and ships the group's parity, then parks the group
// awaiting the receiver's ack under the retransmit timer.
func (f *fecSender) sealLocked(g *txGroup) {
	k := len(g.members)
	g.metas = make([]fecMeta, k)
	data := make([][]byte, k)
	for i, mem := range g.members {
		g.metas[i] = mem.meta
		if mem.payload != nil {
			data[i] = mem.payload
		} else {
			data[i] = []byte{}
		}
	}
	g.m = f.ctl.ChooseM(f.c.rank, g.dst, k)
	g.parity = fec.EncodeParity(fec.Params{K: k, M: g.m}, data)
	f.encoded += uint64(g.m)
	perf.RecordFecEncoded(g.m)
	f.sent[g.id] = g
	f.transmitParityLocked(g, 0)
	g.timer = time.AfterFunc(f.rec.RetryDelay(0, g.id), func() { f.expire(g) })
}

// transmitParityLocked ships each parity shard as one fecpar frame under
// this attempt's chaos verdict (parity is redundancy: a dropped shard is
// simply absent until the next whole-group resend).
func (f *fecSender) transmitParityLocked(g *txGroup, attempt int) {
	c := f.c
	roster := make([]byte, 0, len(g.metas)*fecMetaLen)
	for _, m := range g.metas {
		roster = appendFecMeta(roster, m)
	}
	for j, shard := range g.parity {
		// The verdict needs a message identity; parity has no tag or xid of
		// its own, so it borrows a KindFec tag and a group-derived id.
		ptag := comm.MakeTag(comm.KindFec, int(g.id%uint64(comm.SeqWrap)), j)
		pxid := g.id<<6 | uint64(j)
		v := c.inj.Message(c.rank, g.dst, ptag, pxid, attempt, c.Now(), len(shard))
		if v.Drop {
			continue
		}
		body := comm.GetBuf(len(roster) + len(shard))
		copy(body, roster)
		copy(body[len(roster):], shard)
		crc := crc32.ChecksumIEEE(body)
		if v.Corrupt {
			body[int(pxid)%len(body)] ^= 0xa5
		}
		hdr := encodeFecParityHdr(g.id, len(g.metas), g.m, j, crc, len(body))
		fr := outFrame{hdr: hdr, payload: body, pooled: true}
		if v.Extra > 0 {
			time.AfterFunc(v.Extra, func() { c.sched.enqueue(g.dst, fr) })
		} else {
			c.sched.enqueue(g.dst, fr)
		}
	}
}

// expire is the group's retransmit timer: resend everything, or give up
// past the attempt budget and tombstone so the receiver can fail the
// missing members structurally.
func (f *fecSender) expire(g *txGroup) {
	c := f.c
	f.mu.Lock()
	if f.closed || f.sent[g.id] != g {
		f.mu.Unlock()
		return
	}
	if !g.fellBack {
		// First fire: this group's losses outran (or lost) its parity and
		// the ARQ path is now paying round trips for it.
		g.fellBack = true
		f.lost++
		perf.RecordFecGroupLost()
	}
	g.attempts++
	if g.attempts >= f.rec.MaxAttempts {
		delete(f.sent, g.id)
		metas, attempts := g.metas, g.attempts
		f.releaseLocked(g)
		f.mu.Unlock()
		c.inj.NoteTimeout()
		// The tombstone is the sender's final word — group control
		// traffic, not subject to injection.
		c.sched.enqueue(g.dst, outFrame{hdr: encodeFecDead(g.id, attempts, metas)})
		return
	}
	for _, mem := range g.members {
		c.inj.NoteRetry()
		c.transmitEager(g.dst, mem.meta, mem.payload, g.attempts)
	}
	f.transmitParityLocked(g, g.attempts)
	g.timer = time.AfterFunc(f.rec.RetryDelay(g.attempts, g.id), func() { f.expire(g) })
	f.mu.Unlock()
}

// onAck releases a group the receiver has fully delivered. I/O loop
// goroutine.
func (f *fecSender) onAck(gid uint64) {
	f.mu.Lock()
	g := f.sent[gid]
	if g != nil {
		delete(f.sent, gid)
		if g.timer != nil {
			g.timer.Stop()
		}
		f.releaseLocked(g)
	}
	f.mu.Unlock()
}

func (f *fecSender) releaseLocked(g *txGroup) {
	for _, mem := range g.members {
		if mem.payload != nil {
			comm.PutBuf(mem.payload)
			mem.payload = nil
		}
	}
	for _, p := range g.parity {
		comm.PutBuf(p)
	}
	g.parity = nil
}

// shutdown stops every timer and releases retained buffers (endpoint
// teardown; in-flight groups are abandoned, like any other frame cut off
// by Close).
func (f *fecSender) shutdown() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	for dst, g := range f.open {
		delete(f.open, dst)
		f.releaseLocked(g)
	}
	for gid, g := range f.sent {
		delete(f.sent, gid)
		if g.timer != nil {
			g.timer.Stop()
		}
		f.releaseLocked(g)
	}
}

// transmitEager puts one wire copy of an eager segment on dst's queue
// per the chaos verdict for this attempt: drops never enqueue, corrupt
// copies fly with damaged bytes (the CRC still describes the true
// payload, so the receiver discards them), duplicates enqueue twice.
// data is borrowed, never retained.
func (c *Comm) transmitEager(dst int, meta fecMeta, data []byte, attempt int) {
	v := c.inj.Message(c.rank, dst, meta.tag, meta.xid, attempt, c.Now(), meta.size)
	if v.Drop {
		return
	}
	crc := crc32.ChecksumIEEE(data)
	wire := func() []byte {
		if data == nil {
			return nil
		}
		b := comm.GetBuf(len(data))
		copy(b, data)
		return b
	}
	hdr := encodeEagerHdr(frameEager, meta.tag, meta.xid, meta.size, len(data), meta.hasData, crc)
	first := wire()
	if v.Corrupt {
		if len(first) > 0 {
			first[int(meta.xid)%len(first)] ^= 0xa5
		} else {
			// Nothing to flip in the payload: damage the checksum field.
			hdr[len(hdr)-4] ^= 0xa5
		}
	}
	enq := func(fr outFrame) {
		if v.Extra > 0 {
			time.AfterFunc(v.Extra, func() { c.sched.enqueue(dst, fr) })
			return
		}
		c.sched.enqueue(dst, fr)
	}
	enq(outFrame{hdr: hdr, payload: first, pooled: true})
	if v.Dup {
		enq(outFrame{hdr: hdr, payload: wire(), pooled: true})
	}
}

// ---------------------------------------------------------------------
// Receiver
// ---------------------------------------------------------------------

// fecTracker is one endpoint's receive-side chaos state: per-sender
// duplicate suppression (resends and dup verdicts mean a frame can
// arrive twice) and, with FEC armed, retained payload copies plus group
// reconstruction. Frames arrive on the I/O loop; the mutex covers the
// goroutine-per-conn fallback driver and Close races.
type fecTracker struct {
	c      *Comm
	retain bool // FEC armed: keep copies for reconstruction

	mu     sync.Mutex
	seen   []map[uint64]bool      // per src: xids delivered (or failed)
	recent []map[uint64][]byte    // per src: payload copies awaiting group resolution
	groups []map[uint64]*rxGroup  // per src: gid -> partially-arrived group
	done   []map[uint64]bool      // per src: resolved gids (late parity discarded)

	reconstructed uint64
}

// rxGroup is a group known from at least one parity arrival.
type rxGroup struct {
	metas  []fecMeta
	parity [][]byte // arrived shards by index, pooled
	got    int
	m      int
}

func newFecTracker(c *Comm, retain bool) *fecTracker {
	t := &fecTracker{c: c, retain: retain,
		seen:   make([]map[uint64]bool, c.size),
		recent: make([]map[uint64][]byte, c.size),
		groups: make([]map[uint64]*rxGroup, c.size),
		done:   make([]map[uint64]bool, c.size)}
	for r := 0; r < c.size; r++ {
		t.seen[r] = make(map[uint64]bool)
		t.recent[r] = make(map[uint64][]byte)
		t.groups[r] = make(map[uint64]*rxGroup)
		t.done[r] = make(map[uint64]bool)
	}
	return t
}

// onEager delivers one CRC-clean eager frame: suppress duplicates,
// retain a copy for the group machinery, hand the envelope to the
// engine. Owns payload.
func (t *fecTracker) onEager(src int, tag comm.Tag, xid uint64, size int, hasData bool, payload []byte) {
	t.mu.Lock()
	if t.seen[src][xid] {
		t.mu.Unlock()
		if t.c.inj != nil {
			t.c.inj.NoteSuppressed()
		}
		if payload != nil {
			comm.PutBuf(payload)
		}
		return
	}
	t.seen[src][xid] = true
	var acks []uint64
	var envs []*progress.Env
	if t.retain {
		cp := []byte{}
		if len(payload) > 0 {
			cp = comm.GetBuf(len(payload))
			copy(cp, payload)
		}
		t.recent[src][xid] = cp
		// A parked group waiting on exactly this member (a delayed or
		// resent copy arriving after its parity) may now be resolvable.
		for gid, g := range t.groups[src] {
			if groupHas(g, xid) {
				acks, envs = t.evaluateLocked(src, gid, g, acks, envs)
			}
		}
	}
	t.mu.Unlock()
	msg := comm.Msg{Size: size}
	if hasData {
		if payload == nil {
			payload = []byte{}
		}
		msg.Data = payload
		if len(msg.Data) != size {
			msg.Data = msg.Data[:size]
		}
	} else if payload != nil {
		comm.PutBuf(payload)
	}
	t.c.eng.Arrive(&progress.Env{Src: src, Tag: tag, Msg: msg, HasData: hasData, Xid: xid})
	t.dispatch(src, acks, envs)
}

func groupHas(g *rxGroup, xid uint64) bool {
	for _, m := range g.metas {
		if m.xid == xid {
			return true
		}
	}
	return false
}

// onParity registers one CRC-clean parity shard and greedily evaluates
// its group. body (pooled) is the roster followed by the shard bytes.
func (t *fecTracker) onParity(src int, gid uint64, k, m, idx int, body []byte) {
	t.mu.Lock()
	if t.done[src][gid] {
		t.mu.Unlock()
		comm.PutBuf(body)
		return
	}
	g := t.groups[src][gid]
	if g == nil {
		g = &rxGroup{metas: make([]fecMeta, k), parity: make([][]byte, m), m: m}
		for i := 0; i < k; i++ {
			g.metas[i] = parseFecMeta(body[i*fecMetaLen:])
		}
		t.groups[src][gid] = g
	}
	if g.parity[idx] == nil {
		shard := body[k*fecMetaLen:]
		cp := []byte{}
		if len(shard) > 0 {
			cp = comm.GetBuf(len(shard))
			copy(cp, shard)
		}
		g.parity[idx] = cp
		g.got++
	}
	comm.PutBuf(body)
	acks, envs := t.evaluateLocked(src, gid, g, nil, nil)
	t.mu.Unlock()
	t.dispatch(src, acks, envs)
}

// evaluateLocked resolves a group if it can: all members present → ack;
// erasures within arrived parity → reconstruct, deliver, ack. Appends
// work for the caller to dispatch outside the lock.
func (t *fecTracker) evaluateLocked(src int, gid uint64, g *rxGroup, acks []uint64, envs []*progress.Env) ([]uint64, []*progress.Env) {
	var missing []int
	for i, mt := range g.metas {
		if _, ok := t.recent[src][mt.xid]; !ok {
			missing = append(missing, i)
		}
	}
	if len(missing) > len(g.parity) {
		return acks, envs
	}
	if len(missing) > 0 {
		if g.got < len(missing) {
			return acks, envs // not enough parity yet; more may arrive, or the resend will
		}
		k := len(g.metas)
		data := make([][]byte, k)
		sizes := make([]int, k)
		for i, mt := range g.metas {
			sizes[i] = mt.plen
			if b, ok := t.recent[src][mt.xid]; ok {
				data[i] = b
			}
		}
		if err := fec.Reconstruct(fec.Params{K: k, M: g.m}, data, g.parity, sizes); err != nil {
			return acks, envs
		}
		for _, i := range missing {
			mt := g.metas[i]
			if t.seen[src][mt.xid] {
				if data[i] != nil {
					comm.PutBuf(data[i])
				}
				continue
			}
			t.seen[src][mt.xid] = true
			msg := comm.Msg{Size: mt.size}
			if mt.hasData {
				d := data[i]
				if d == nil {
					d = []byte{}
				}
				msg.Data = d
				if len(msg.Data) != mt.size {
					msg.Data = msg.Data[:mt.size]
				}
			} else if data[i] != nil {
				comm.PutBuf(data[i])
			}
			envs = append(envs, &progress.Env{Src: src, Tag: mt.tag, Msg: msg,
				HasData: mt.hasData, Xid: mt.xid})
			t.reconstructed++
			perf.RecordFecReconstructed()
		}
	}
	t.finishLocked(src, gid, g)
	return append(acks, gid), envs
}

// finishLocked retires a resolved group: evict retained member copies,
// release parity, remember the gid so late shards are discarded.
func (t *fecTracker) finishLocked(src int, gid uint64, g *rxGroup) {
	for _, mt := range g.metas {
		if b, ok := t.recent[src][mt.xid]; ok {
			comm.PutBuf(b)
			delete(t.recent[src], mt.xid)
		}
	}
	for _, p := range g.parity {
		if p != nil {
			comm.PutBuf(p)
		}
	}
	delete(t.groups[src], gid)
	t.done[src][gid] = true
}

// onDead handles a sender's give-up tombstone: every member the
// receiver never saw fails its matched (or future) receive with the
// structured timeout. roster is the frame's non-pooled meta block.
func (t *fecTracker) onDead(src int, gid uint64, attempts int, roster []byte) {
	t.mu.Lock()
	if t.done[src][gid] {
		t.mu.Unlock()
		return
	}
	var envs []*progress.Env
	k := len(roster) / fecMetaLen
	metas := make([]fecMeta, k)
	for i := 0; i < k; i++ {
		metas[i] = parseFecMeta(roster[i*fecMetaLen:])
	}
	for _, mt := range metas {
		if t.seen[src][mt.xid] {
			continue
		}
		t.seen[src][mt.xid] = true
		envs = append(envs, &progress.Env{Src: src, Tag: mt.tag,
			Msg: comm.Msg{Size: mt.size}, HasData: mt.hasData, Xid: mt.xid,
			Err: &faults.TimeoutError{Rank: src, Peer: t.c.rank, Tag: mt.tag,
				Attempts: attempts}})
	}
	if g := t.groups[src][gid]; g != nil {
		t.finishLocked(src, gid, g)
	} else {
		t.done[src][gid] = true
		for _, mt := range metas {
			if b, ok := t.recent[src][mt.xid]; ok {
				comm.PutBuf(b)
				delete(t.recent[src], mt.xid)
			}
		}
	}
	t.mu.Unlock()
	for _, env := range envs {
		t.c.eng.Arrive(env)
	}
}

// dispatch performs deferred deliveries and acks outside the tracker
// lock (Arrive takes the engine lock; the ack draws an injector verdict
// and enqueues on the scheduler).
func (t *fecTracker) dispatch(src int, acks []uint64, envs []*progress.Env) {
	for _, env := range envs {
		t.c.eng.Arrive(env)
	}
	for _, gid := range acks {
		if t.c.inj != nil &&
			t.c.inj.AckDrop(t.c.rank, src, comm.MakeTag(comm.KindFec, int(gid%uint64(comm.SeqWrap)), 0), gid, 0, t.c.Now()) {
			continue // lost ack: the sender's timer will resend the group
		}
		t.c.sched.enqueue(src, outFrame{hdr: encodeFecAck(gid)})
	}
}

// ---------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------

// FaultStats returns this endpoint's injector counters (zero without
// WithChaos).
func (c *Comm) FaultStats() faults.Stats {
	if c.inj == nil {
		return faults.Stats{}
	}
	return c.inj.Stats()
}

// FECStats returns this endpoint's FEC counters: parity and lost groups
// from its sender half, reconstructions from its receiver half.
func (c *Comm) FECStats() fec.Stats {
	var s fec.Stats
	if c.fecTx != nil {
		c.fecTx.mu.Lock()
		s.ParityEncoded = c.fecTx.encoded
		s.GroupsLost = c.fecTx.lost
		c.fecTx.mu.Unlock()
	}
	if c.fecRx != nil {
		c.fecRx.mu.Lock()
		s.Reconstructed = c.fecRx.reconstructed
		c.fecRx.mu.Unlock()
	}
	return s
}
