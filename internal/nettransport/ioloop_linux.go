//go:build linux

package nettransport

import (
	"fmt"
	"net"
	"sync/atomic"
	"syscall"
)

// epollLoop is the Linux readiness driver: ONE goroutine multiplexing
// every peer connection with level-triggered epoll and non-blocking
// reads. Go sockets are already O_NONBLOCK at the OS level (the runtime
// netpoller supplies the Go-visible blocking semantics), so a dup of the
// connection — sharing the same file description and therefore the same
// O_NONBLOCK flag — can be read with raw syscalls while the original
// conn keeps its Go-blocking Write for the send scheduler.
//
// Fairness: each readable connection is pumped with a bounded read
// budget per wake-up, so one peer firehosing eager traffic cannot starve
// frames (CTS grants, death-relevant EOFs) from the others; level
// triggering re-arms anything left unread.
type epollLoop struct {
	c      *Comm
	epfd   int
	rpipe  int // wake pipe read end (in the epoll set)
	wpipe  int
	byFd   map[int]*connState
	stopfl atomic.Bool
	done   chan struct{}
}

// readBudget bounds how many reads one connection gets per readiness
// event before the loop moves on to the next peer.
const readBudget = 16

// startIO dups every peer socket for raw reads and launches the loop.
func startIO(c *Comm) (ioLoop, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, fmt.Errorf("nettransport: epoll_create1: %w", err)
	}
	var pfd [2]int
	if err := syscall.Pipe2(pfd[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(epfd)
		return nil, fmt.Errorf("nettransport: pipe2: %w", err)
	}
	l := &epollLoop{c: c, epfd: epfd, rpipe: pfd[0], wpipe: pfd[1],
		byFd: make(map[int]*connState), done: make(chan struct{})}
	add := func(fd int) error {
		ev := syscall.EpollEvent{Events: syscall.EPOLLIN, Fd: int32(fd)}
		return syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, fd, &ev)
	}
	fail := func(err error) (ioLoop, error) {
		l.closeFds()
		return nil, err
	}
	if err := add(l.rpipe); err != nil {
		return fail(fmt.Errorf("nettransport: epoll_ctl wake pipe: %w", err))
	}
	for _, cs := range c.conns {
		if cs == nil {
			continue
		}
		fd, file, err := dupConnFd(cs.conn)
		if err != nil {
			return fail(err)
		}
		cs.fd, cs.file = fd, file
		if err := add(fd); err != nil {
			return fail(fmt.Errorf("nettransport: epoll_ctl conn: %w", err))
		}
		l.byFd[fd] = cs
	}
	go l.run()
	return l, nil
}

// dupConnFd duplicates the connection's descriptor for raw reads. The
// returned closer is the *os.File keeping the dup alive — it must stay
// referenced (a finalizer would otherwise close the fd under us) and be
// closed together with the conn at teardown. The fd is extracted via
// SyscallConn, NOT File.Fd(): Fd() flips the descriptor to blocking
// mode, and O_NONBLOCK lives on the file description shared with the
// original socket.
func dupConnFd(conn net.Conn) (int, interface{ Close() error }, error) {
	tc, ok := conn.(*net.TCPConn)
	if !ok {
		return -1, nil, fmt.Errorf("nettransport: cannot dup %T for readiness I/O", conn)
	}
	f, err := tc.File()
	if err != nil {
		return -1, nil, fmt.Errorf("nettransport: dup conn: %w", err)
	}
	rc, err := f.SyscallConn()
	if err != nil {
		f.Close()
		return -1, nil, fmt.Errorf("nettransport: raw conn: %w", err)
	}
	fd := -1
	if err := rc.Control(func(rawfd uintptr) { fd = int(rawfd) }); err != nil {
		f.Close()
		return -1, nil, fmt.Errorf("nettransport: raw fd: %w", err)
	}
	return fd, f, nil
}

// run is the readiness loop.
func (l *epollLoop) run() {
	defer close(l.done)
	events := make([]syscall.EpollEvent, 64)
	for {
		n, err := syscall.EpollWait(l.epfd, events, -1)
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			l.closeFds()
			return
		}
		for i := 0; i < n; i++ {
			fd := int(events[i].Fd)
			if fd == l.rpipe {
				if l.stopfl.Load() {
					l.closeFds()
					return
				}
				var scratch [16]byte
				syscall.Read(l.rpipe, scratch[:])
				continue
			}
			cs := l.byFd[fd]
			if cs == nil || cs.dead {
				continue
			}
			l.pump(cs)
		}
	}
}

// pump services one readable connection: up to readBudget non-blocking
// reads, each either landing directly in an armed payload buffer or in
// the staging buffer (then parsed).
func (l *epollLoop) pump(cs *connState) {
	c := l.c
	for budget := 0; budget < readBudget; budget++ {
		var dst []byte
		direct := cs.wantDirect()
		switch {
		case direct:
			dst = cs.directDst()
		case cs.draining:
			dst = cs.buf
		default:
			cs.compact()
			dst = cs.buf[cs.w:]
		}
		n, err := syscall.Read(cs.fd, dst)
		if err == syscall.EAGAIN {
			return
		}
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			l.drop(cs, err)
			return
		}
		if n == 0 { // EOF
			if cs.draining {
				l.deregister(cs) // clean Bye shutdown
				return
			}
			l.drop(cs, cs.eofError())
			return
		}
		var perr error
		switch {
		case direct:
			perr = c.advanceDirect(cs, n)
		case cs.draining:
			// discard
		default:
			cs.w += n
			perr = c.drainStaged(cs)
		}
		if perr != nil {
			l.drop(cs, perr)
			return
		}
	}
}

// drop deregisters a broken connection and hands the cause to the
// failure detector (unless local teardown explains it).
func (l *epollLoop) drop(cs *connState, err error) {
	l.deregister(cs)
	l.c.ioError(cs, err)
}

// deregister removes the connection from the epoll set and releases
// decoder resources. The fd itself stays open — teardown owns closing.
func (l *epollLoop) deregister(cs *connState) {
	syscall.EpollCtl(l.epfd, syscall.EPOLL_CTL_DEL, cs.fd, nil)
	cs.abort()
}

// stop terminates the loop via the wake pipe and waits for it to exit;
// the loop closes the epoll and pipe descriptors on its way out.
func (l *epollLoop) stop() {
	if l.stopfl.Swap(true) {
		<-l.done
		return
	}
	var one = [1]byte{1}
	syscall.Write(l.wpipe, one[:])
	<-l.done
}

// closeFds releases the loop's own descriptors (not the conn dups).
func (l *epollLoop) closeFds() {
	syscall.Close(l.epfd)
	syscall.Close(l.rpipe)
	syscall.Close(l.wpipe)
}
