package nettransport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"

	"adapt/internal/faults"
	"adapt/internal/perf"
)

// Mesh construction. Every pair of ranks shares one bidirectional TCP
// connection; the higher rank dials the lower rank's listener (so rank 0
// only accepts) and announces itself with an ident frame. Dials retry
// with the faults.Recovery exponential backoff — worker processes in a
// cluster start at different times, and the address map reaches them
// before every listener's accept loop is necessarily draining.

// dialPeer dials addr with exponential backoff and performs the ident
// handshake.
func dialPeer(addr string, selfRank int, rec faults.Recovery) (net.Conn, error) {
	var lastErr error
	for attempt := 0; attempt < rec.MaxAttempts; attempt++ {
		if attempt > 0 {
			perf.RecordNetDialRetry()
			time.Sleep(rec.Timeout(attempt - 1))
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			lastErr = err
			continue
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		if _, err := conn.Write(encodeIdent(selfRank)); err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		return conn, nil
	}
	return nil, fmt.Errorf("nettransport: dial %s: %d attempts exhausted: %w", addr, rec.MaxAttempts, lastErr)
}

// readIdent consumes exactly the ident frame from a freshly accepted
// connection — no over-read, so the conn can be handed to the readiness
// loop with nothing buffered in user space.
func readIdent(conn net.Conn) (int, error) {
	var pfx [4]byte
	if _, err := io.ReadFull(conn, pfx[:]); err != nil {
		return -1, err
	}
	n := int(binary.LittleEndian.Uint32(pfx[:]))
	if n != 5 {
		return -1, fmt.Errorf("nettransport: ident frame body %d bytes, want 5", n)
	}
	var body [5]byte
	if _, err := io.ReadFull(conn, body[:]); err != nil {
		return -1, err
	}
	if body[0] != frameIdent {
		return -1, fmt.Errorf("nettransport: first frame type %d, want ident", body[0])
	}
	return int(binary.LittleEndian.Uint32(body[1:5])), nil
}

// joinMesh wires c to every peer given the full address map (indexed by
// rank). c's own listener must already be bound at addrs[c.rank]. On
// return every peer connection is established and the endpoint's send
// scheduler and readiness loop are running.
func (c *Comm) joinMesh(addrs []string) error {
	if len(addrs) != c.size {
		return fmt.Errorf("nettransport: address map has %d entries for a %d-rank world", len(addrs), c.size)
	}
	type dialed struct {
		rank int
		conn net.Conn
		err  error
	}
	results := make(chan dialed, c.size)
	// Dial every lower rank concurrently.
	for r := 0; r < c.rank; r++ {
		go func(r int) {
			conn, err := dialPeer(addrs[r], c.rank, c.cfg.dialRecovery)
			results <- dialed{rank: r, conn: conn, err: err}
		}(r)
	}
	// Accept every higher rank; the ident frame says who dialed.
	expect := c.size - 1 - c.rank
	go func() {
		for i := 0; i < expect; i++ {
			conn, err := c.ln.Accept()
			if err != nil {
				results <- dialed{rank: -1, err: err}
				return
			}
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
			go func(conn net.Conn) {
				rank, err := readIdent(conn)
				if err != nil {
					conn.Close()
					results <- dialed{rank: -1, err: fmt.Errorf("nettransport: bad ident handshake: %v", err)}
					return
				}
				if rank <= c.rank || rank >= c.size {
					conn.Close()
					results <- dialed{rank: -1, err: fmt.Errorf("nettransport: ident from unexpected rank %d", rank)}
					return
				}
				results <- dialed{rank: rank, conn: conn}
			}(conn)
		}
	}()
	for i := 0; i < c.size-1; i++ {
		d := <-results
		if d.err != nil {
			return d.err
		}
		if c.conns[d.rank] != nil {
			return fmt.Errorf("nettransport: duplicate connection for rank %d", d.rank)
		}
		c.conns[d.rank] = newConnState(d.rank, d.conn)
	}
	c.sched = newSendSched(c)
	go c.sched.run()
	io, err := startIO(c)
	if err != nil {
		return err
	}
	c.io = io
	return nil
}
