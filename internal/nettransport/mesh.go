package nettransport

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"adapt/internal/faults"
	"adapt/internal/perf"
)

// Mesh construction. Every pair of ranks shares one bidirectional TCP
// connection; the higher rank dials the lower rank's listener (so rank 0
// only accepts) and announces itself with an ident frame. Dials retry
// with the faults.Recovery exponential backoff — worker processes in a
// cluster start at different times, and the address map reaches them
// before every listener's accept loop is necessarily draining.

// dialPeer dials addr with exponential backoff and performs the ident
// handshake.
func dialPeer(addr string, selfRank int, rec faults.Recovery) (net.Conn, error) {
	var lastErr error
	for attempt := 0; attempt < rec.MaxAttempts; attempt++ {
		if attempt > 0 {
			perf.RecordNetDialRetry()
			time.Sleep(rec.Timeout(attempt - 1))
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			lastErr = err
			continue
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		if _, err := conn.Write(encodeIdent(selfRank)); err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		return conn, nil
	}
	return nil, fmt.Errorf("nettransport: dial %s: %d attempts exhausted: %w", addr, rec.MaxAttempts, lastErr)
}

// joinMesh wires c to every peer given the full address map (indexed by
// rank). c's own listener must already be bound at addrs[c.rank]. On
// return every peer connection is established and its reader/writer
// goroutines are running.
func (c *Comm) joinMesh(addrs []string) error {
	if len(addrs) != c.size {
		return fmt.Errorf("nettransport: address map has %d entries for a %d-rank world", len(addrs), c.size)
	}
	type dialed struct {
		rank int
		conn net.Conn
		err  error
	}
	results := make(chan dialed, c.size)
	// Dial every lower rank concurrently.
	for r := 0; r < c.rank; r++ {
		go func(r int) {
			conn, err := dialPeer(addrs[r], c.rank, c.cfg.dialRecovery)
			results <- dialed{rank: r, conn: conn, err: err}
		}(r)
	}
	// Accept every higher rank; the ident frame says who dialed.
	expect := c.size - 1 - c.rank
	go func() {
		for i := 0; i < expect; i++ {
			conn, err := c.ln.Accept()
			if err != nil {
				results <- dialed{rank: -1, err: err}
				return
			}
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
			go func(conn net.Conn) {
				br := bufio.NewReaderSize(conn, 64*1024)
				m, err := readFrame(br)
				if err != nil || m.ftype != frameIdent {
					conn.Close()
					results <- dialed{rank: -1, err: fmt.Errorf("nettransport: bad ident handshake: %v", err)}
					return
				}
				if m.rank <= c.rank || m.rank >= c.size {
					conn.Close()
					results <- dialed{rank: -1, err: fmt.Errorf("nettransport: ident from unexpected rank %d", m.rank)}
					return
				}
				if n := br.Buffered(); n > 0 {
					// Frames already behind the ident must not be lost when we
					// hand the raw conn to the peer's own buffered reader.
					conn = &bufferedConn{Conn: conn, head: br}
				}
				results <- dialed{rank: m.rank, conn: conn}
			}(conn)
		}
	}()
	for i := 0; i < c.size-1; i++ {
		d := <-results
		if d.err != nil {
			return d.err
		}
		if c.peers[d.rank] != nil {
			return fmt.Errorf("nettransport: duplicate connection for rank %d", d.rank)
		}
		c.peers[d.rank] = newPeer(c, d.rank, d.conn)
	}
	for _, p := range c.peers {
		if p != nil {
			p.start()
		}
	}
	return nil
}

// bufferedConn replays bytes the ident handshake over-read before
// falling through to the socket.
type bufferedConn struct {
	net.Conn
	head *bufio.Reader
}

func (b *bufferedConn) Read(p []byte) (int, error) {
	if b.head != nil {
		if n := b.head.Buffered(); n > 0 {
			return b.head.Read(p[:min(len(p), n)])
		}
		b.head = nil
	}
	return b.Conn.Read(p)
}
