package nettransport

import (
	goruntime "runtime"
	"time"

	"adapt/internal/comm"
	"adapt/internal/faults"
	"adapt/internal/metrics"
	"adapt/internal/perf"
	"adapt/internal/progress"
	"adapt/internal/trace"
)

// mDetectLatency brackets the failure detector: from the moment a
// connection loss is observed (peerLost) to the lease-confirmed death
// commit. The spread is dominated by ConfirmAfter, so the histogram is
// the operator's view of effective detection latency under the
// configured recovery leases.
var mDetectLatency = metrics.NewHistogram("adapt_detector_confirm_latency_ns",
	"suspicion-to-confirmation latency of the lease failure detector")

// Lease-based failure detection over sockets. The trigger is observed
// teardown — a connection that errors or hits EOF without the Bye
// handshake — rather than inferred silence: TCP resets and FINs from a
// dying process arrive promptly on loopback, and a lease on top of the
// observation keeps a transient glitch from instantly committing a
// death. Mirrors the runtime substrate's detector (runtime/crash.go):
// suspicion is counters-only, confirmation fans a death Notice to the
// owner's control plane and fails every pending operation that depended
// on the dead peer.

// peerLost records a connection loss without the clean handshake and
// arms the suspicion/confirmation leases. Callable from any goroutine;
// idempotent per peer.
func (c *Comm) peerLost(rank int, cause error) {
	c.mu.Lock()
	if c.closed || c.peerDown[rank] {
		c.mu.Unlock()
		return
	}
	c.peerDown[rank] = true
	c.lostAt[rank] = metrics.Clock()
	c.mu.Unlock()
	perf.RecordNetPeerDown()
	if tb := c.cfg.traceBuf; tb != nil {
		tb.Add(trace.Record{At: c.Now(), Rank: c.rank, Kind: trace.Crash, Peer: rank})
	}
	c.sched.markDead(rank, cause)
	time.AfterFunc(c.cfg.rec.SuspectAfter, func() {
		if c.isClosed() {
			return
		}
		perf.RecordDetectorSuspect()
		if tb := c.cfg.traceBuf; tb != nil {
			tb.Add(trace.Record{At: c.Now(), Rank: c.rank, Kind: trace.Suspect, Peer: rank})
		}
	})
	time.AfterFunc(c.cfg.rec.ConfirmAfter, func() { c.confirmDeath(rank) })
}

// confirmDeath commits a suspected death: mask it, notify the owner, and
// fail every pending operation waiting on the dead peer.
func (c *Comm) confirmDeath(rank int) {
	c.mu.Lock()
	if c.closed || c.confirmed[rank] {
		c.mu.Unlock()
		return
	}
	c.confirmed[rank] = true
	lostAt := c.lostAt[rank]

	// Rendezvous sends parked on a grant that will never come.
	for xid, req := range c.sendPend {
		if req.Dst != rank {
			continue
		}
		delete(c.sendPend, xid)
		req.Complete(comm.Status{Source: c.rank, Tag: req.Tag,
			Err: &faults.TimeoutError{Rank: c.rank, Peer: rank, Tag: req.Tag, Attempts: 1}})
	}
	// Matched receives parked on a payload that will never stream.
	for xid, pl := range c.pulls {
		if pl.src == rank {
			c.failPullLocked(xid)
		}
	}
	c.mu.Unlock()

	// Rendezvous announcements from the dead peer still sitting unexpected
	// can never be granted; drop them so a later Irecv does not park
	// forever on a dead sender.
	c.eng.DropUnexpected(func(env *progress.Env) bool {
		return env.Src == rank && env.Rdv
	})

	c.eng.PushNotice(comm.Notice{Kind: comm.NoticeDeath, Rank: rank})
	perf.RecordDetectorConfirm()
	perf.RecordTreeRepair()
	mDetectLatency.ObserveSince(lostAt)
	if tb := c.cfg.traceBuf; tb != nil {
		tb.Add(trace.Record{At: c.Now(), Rank: c.rank, Kind: trace.Confirm, Peer: rank})
		tb.Add(trace.Record{At: c.Now(), Rank: c.rank, Kind: trace.Repair, Peer: rank})
	}
	if f := c.cfg.onPeerDeath; f != nil {
		f(rank)
	}
	c.signal()
}

// isClosed reports whether clean shutdown has begun.
func (c *Comm) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// noteSend counts one send initiation; at the rank's crash point it
// tears the process's connections down abruptly — no Bye — and leaves
// via the configured exit hook. Owner-goroutine only.
func (c *Comm) noteSend() {
	if c.crashAfter < 0 || c.deadSelf {
		return
	}
	n := c.sendsSeen
	c.sendsSeen++
	if n < c.crashAfter {
		return
	}
	c.deadSelf = true
	if tb := c.cfg.traceBuf; tb != nil {
		tb.Add(trace.Record{At: c.Now(), Rank: c.rank, Kind: trace.Crash, Peer: -1})
	}
	c.die()
	if c.cfg.crashExit != nil {
		c.cfg.crashExit()
	}
	// Fail-stop means the rank stops: no configured exit hook leaves via
	// Goexit so the rank's goroutine never executes another instruction.
	goruntime.Goexit()
}

// die is the fail-stop half of a crash: every connection is cut without
// the Bye handshake, so peers observe exactly what a killed process
// leaves behind. The dying endpoint marks itself closed first so its own
// I/O loop observing the teardown never feeds the (now moot) detector.
func (c *Comm) die() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	if c.fecTx != nil {
		c.fecTx.shutdown()
	}
	// Kill every send queue (backlogs dispose, the writer drains and
	// exits), stop the readiness loop, then cut the sockets. The loop must
	// stop before the raw fds close.
	c.sched.markAllDead(errCrashed{})
	c.sched.closeAll()
	if c.io != nil {
		c.io.stop()
	}
	for _, cs := range c.conns {
		if cs == nil {
			continue
		}
		cs.conn.Close()
		if cs.file != nil {
			cs.file.Close()
		}
	}
	if c.ln != nil {
		c.ln.Close()
	}
}

type errCrashed struct{}

func (errCrashed) Error() string { return "nettransport: rank crashed (fail-stop)" }

// Close performs the clean shutdown handshake: a Bye frame to every live
// peer, the send scheduler drained, the readiness loop stopped, sockets
// closed. After Close the endpoint must not be used. Losses observed
// during teardown never count as deaths.
func (c *Comm) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	if c.fecTx != nil {
		c.fecTx.shutdown()
	}
	for r, cs := range c.conns {
		if cs == nil {
			continue
		}
		c.sched.enqueue(r, outFrame{hdr: encodeBye()})
	}
	c.sched.closeAll()
	<-c.sched.done // writer flushed (or gave up); the Byes are on the wire
	if c.io != nil {
		c.io.stop()
	}
	for _, cs := range c.conns {
		if cs == nil {
			continue
		}
		cs.conn.Close()
		if cs.file != nil {
			cs.file.Close()
		}
	}
	if c.ln != nil {
		c.ln.Close()
	}
}

// ---- comm.FailStop implementation ----

// pushNotice appends a control-plane notice and wakes the rank.
func (c *Comm) pushNotice(n comm.Notice) { c.eng.PushNotice(n) }

// CrashesEnabled reports whether crash rules are armed anywhere in this
// world — every rank must agree so the FT collectives pick one path.
func (c *Comm) CrashesEnabled() bool { return c.cfg.crashArmed }

// ConfirmedDead returns a fresh detector-confirmed death mask.
func (c *Comm) ConfirmedDead() []bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]bool, c.size)
	copy(out, c.confirmed)
	return out
}

// TakeNotices drains this rank's pending control-plane notices.
func (c *Comm) TakeNotices() []comm.Notice { return c.eng.TakeNotices() }

// WaitEvent blocks until a completion callback fires or a new notice
// arrives. Legal with no operation in flight.
func (c *Comm) WaitEvent() { c.eng.WaitEvent() }

// CancelRecv retracts a posted, unmatched receive. Returns false when
// the receive already matched (its callback still fires — with the
// payload, or with the structured error its sender's death produces).
func (c *Comm) CancelRecv(r comm.Request) bool { return c.eng.CancelRecv(r) }

// Commit fans a NoticeCommit out to every live rank. Counts as a send
// initiation, so a crash scheduled at the root's commit point fires here.
func (c *Comm) Commit(seq int, survivors []bool) {
	c.noteSend()
	frame := encodeCommit(seq, survivors)
	c.mu.Lock()
	down := append([]bool(nil), c.peerDown...)
	c.mu.Unlock()
	for r, cs := range c.conns {
		if cs == nil || down[r] {
			continue
		}
		c.sched.enqueue(r, outFrame{hdr: append([]byte(nil), frame...)})
	}
}
