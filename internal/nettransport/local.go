package nettransport

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adapt/internal/faults"
	"adapt/internal/fec"
)

// LocalWorld is an n-rank communicator whose endpoints live in one
// process but talk over real TCP loopback sockets — every byte crosses
// the kernel, every protocol leg (eager, RTS/CTS, Bye) is the real wire
// exchange. It exists for tests and benchmarks: the conformance grid
// exercises the full socket path without paying a process spawn per
// case, while cmd/adaptrun runs the same endpoints as true OS processes.
type LocalWorld struct {
	comms         []*Comm
	runTimeout    time.Duration
	watchdogFired atomic.Bool
	closed        bool
}

// NewLocalWorld creates n endpoints on loopback listeners and wires the
// full mesh. The world must be Closed to release the sockets.
func NewLocalWorld(n int, opts ...Option) (*LocalWorld, error) {
	if n <= 0 {
		panic(fmt.Sprintf("nettransport: world size %d", n))
	}
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	w := &LocalWorld{}
	addrs := make([]string, n)
	for r := 0; r < n; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			w.Close()
			return nil, err
		}
		c := newComm(r, n, ln, cfg)
		w.comms = append(w.comms, c)
		addrs[r] = ln.Addr().String()
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = w.comms[r].joinMesh(addrs)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			w.Close()
			return nil, err
		}
	}
	return w, nil
}

// WithRunTimeout bounds every Run call: if the ranks have not all
// returned within d, Run panics with a per-rank dump of pending
// operations instead of hanging the caller.
func (w *LocalWorld) WithRunTimeout(d time.Duration) *LocalWorld {
	w.runTimeout = d
	return w
}

// Size returns the number of ranks.
func (w *LocalWorld) Size() int { return len(w.comms) }

// Rank returns rank r's endpoint.
func (w *LocalWorld) Rank(r int) *Comm { return w.comms[r] }

// Run executes body once per rank, each on its own goroutine, and blocks
// until all return. Panics aggregate across ranks like runtime.World.Run;
// a rank that hits its crash point exits silently (fail-stop) and is
// skipped by every later Run — a dead process does not come back.
func (w *LocalWorld) Run(body func(c *Comm)) {
	var wg sync.WaitGroup
	panics := make(chan string, len(w.comms))
	for _, c := range w.comms {
		c := c
		if c.deadSelf {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics <- fmt.Sprintf("rank %d: %v", c.rank, p)
				}
			}()
			body(c)
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	if w.runTimeout > 0 {
		t := time.NewTimer(w.runTimeout)
		defer t.Stop()
		select {
		case <-done:
		case <-t.C:
			if w.watchdogFired.CompareAndSwap(false, true) {
				panic(fmt.Sprintf("nettransport: Run still incomplete after %v\n%s", w.runTimeout, w.pendingDump()))
			}
			panic(fmt.Sprintf("nettransport: Run still incomplete after %v (pending-op dump already emitted)", w.runTimeout))
		}
	} else {
		<-done
	}
	close(panics)
	var msgs []string
	for p := range panics {
		msgs = append(msgs, p)
	}
	switch len(msgs) {
	case 0:
	case 1:
		panic(msgs[0])
	default:
		sort.Strings(msgs)
		panic(fmt.Sprintf("nettransport: %d ranks panicked:\n%s", len(msgs), strings.Join(msgs, "\n")))
	}
}

// pendingDump renders each rank's unfinished operations for the watchdog.
func (w *LocalWorld) pendingDump() string {
	var b strings.Builder
	for _, c := range w.comms {
		pending, posted, unexpected := c.eng.Snapshot()
		c.mu.Lock()
		sendPend, pulls := len(c.sendPend), len(c.pulls)
		c.mu.Unlock()
		fmt.Fprintf(&b, "rank %d: %d pending ops, %d posted recvs, %d unexpected, %d rdv sends, %d rdv pulls\n",
			c.rank, pending, len(posted), len(unexpected), sendPend, pulls)
		for _, req := range posted {
			fmt.Fprintf(&b, "  posted recv src=%d tag=%v\n", req.Src, req.Tag)
		}
		for _, env := range unexpected {
			fmt.Fprintf(&b, "  unexpected src=%d tag=%v rdv=%v\n", env.Src, env.Tag, env.Rdv)
		}
	}
	return b.String()
}

// FaultStats aggregates the injector counters across every endpoint
// (each rank draws and counts its own verdicts).
func (w *LocalWorld) FaultStats() faults.Stats {
	var s faults.Stats
	for _, c := range w.comms {
		cs := c.FaultStats()
		s.Drops += cs.Drops
		s.Dups += cs.Dups
		s.Corrupts += cs.Corrupts
		s.Delays += cs.Delays
		s.Retries += cs.Retries
		s.Timeouts += cs.Timeouts
		s.Suppressed += cs.Suppressed
	}
	return s
}

// FECStats aggregates the erasure-coding counters across every endpoint.
func (w *LocalWorld) FECStats() fec.Stats {
	var s fec.Stats
	for _, c := range w.comms {
		cs := c.FECStats()
		s.ParityEncoded += cs.ParityEncoded
		s.Reconstructed += cs.Reconstructed
		s.GroupsLost += cs.GroupsLost
	}
	return s
}

// Crashed returns the per-rank self-death mask (ranks that hit their
// crash point during a Run).
func (w *LocalWorld) Crashed() []bool {
	out := make([]bool, len(w.comms))
	for r, c := range w.comms {
		out[r] = c.deadSelf
	}
	return out
}

// Close shuts every endpoint down cleanly (Bye handshakes first, then
// sockets). Ranks that crashed already cut their connections.
func (w *LocalWorld) Close() {
	if w.closed {
		return
	}
	w.closed = true
	for _, c := range w.comms {
		if c != nil && !c.deadSelf {
			c.Close()
		}
	}
}
