// Package nettransport is the multi-process message-passing substrate:
// each rank is its own OS process (or, in tests, its own endpoint inside
// one process) and point-to-point traffic travels over TCP as
// length-prefixed frames carrying (tag, xid, payload).
//
// It implements comm.Comm with the same matching-engine semantics as
// internal/runtime — posted-receive queue, unexpected-message queue,
// eager and rendezvous (RTS/CTS) protocols, completion callbacks fired
// from the owner's progress loop — so every collective in internal/coll
// and internal/core runs on it unchanged. Where the runtime moves
// payloads between goroutines, this substrate serializes them through
// sockets: eager messages ship their bytes with the announcement, large
// messages announce first (RTS) and stream the payload only after the
// receiver matches and grants (CTS), which keeps unexpected-queue memory
// bounded by announcements rather than payloads.
//
// Fail-stop semantics come from the sockets themselves: a peer that
// vanishes without the clean Bye handshake trips a lease-based failure
// detector (suspicion then confirmation, timing from faults.Recovery)
// and surfaces as a death Notice on the comm.FailStop control plane —
// exactly the contract the FT collectives in internal/core consume, so a
// killed worker process yields a structured *faults.RankFailedError
// instead of a hang.
package nettransport

import (
	"fmt"
	"net"
	"sync"
	"time"

	"adapt/internal/comm"
	"adapt/internal/faults"
	"adapt/internal/trace"
)

// DefaultEagerLimit is the eager/rendezvous protocol switch-over: a
// message of exactly this many bytes still travels eagerly, one byte more
// announces first. All three substrates share the same inclusive
// boundary (see the cross-substrate parity test in internal/conform).
const DefaultEagerLimit = 8 * 1024

// config carries the tuning every endpoint needs, shared by the
// in-process LocalWorld and the multi-process cluster bootstrap.
type config struct {
	eagerLimit   int
	rec          faults.Recovery // detector leases + dial backoff
	crashPlan    []faults.Crash
	crashArmed   bool // any rank anywhere has a crash rule (FT path on)
	traceBuf     *trace.Buffer
	start        time.Time
	crashExit    func() // how a dying rank leaves (Goexit in-process, Exit(3) in a worker)
	onPeerDeath  func(rank int)
	dialRecovery faults.Recovery
}

func defaultConfig() config {
	rec := faults.DefaultRecovery()
	// Socket teardown is observed, not inferred from silence, so the
	// simulator's microsecond leases would race scheduler jitter on a
	// loaded host; stretch them to solid wall-clock margins.
	rec.SuspectAfter = 2 * time.Millisecond
	rec.ConfirmAfter = 5 * time.Millisecond
	return config{
		eagerLimit: DefaultEagerLimit,
		rec:        rec,
		start:      time.Now(),
		// Mesh dials race worker start-up: retry for a few seconds with
		// exponential backoff before declaring the peer unreachable.
		dialRecovery: faults.Recovery{RTO: 2 * time.Millisecond, Backoff: 2, MaxAttempts: 14}.Normalized(),
	}
}

// Option configures a LocalWorld or a cluster worker endpoint.
type Option func(*config)

// WithEagerLimit overrides the eager protocol threshold.
func WithEagerLimit(n int) Option {
	return func(c *config) { c.eagerLimit = n }
}

// WithRecovery overrides the detector-lease and dial-backoff tuning.
func WithRecovery(r faults.Recovery) Option {
	return func(c *config) { c.rec = r.Normalized(); c.dialRecovery = r.Normalized() }
}

// WithCrashes arms a fail-stop crash schedule (the plan's Crashes only;
// message-level chaos rules are the other substrates' business).
func WithCrashes(crashes []faults.Crash) Option {
	return func(c *config) {
		c.crashPlan = append([]faults.Crash(nil), crashes...)
		c.crashArmed = c.crashArmed || len(crashes) > 0
	}
}

// WithCrashesArmed marks the world as crash-enabled even on ranks without
// a rule of their own — every process in a cluster must agree on whether
// the FT collectives take their crash-tolerant path.
func WithCrashesArmed() Option {
	return func(c *config) { c.crashArmed = true }
}

// WithTrace attaches a causal trace buffer. Timestamps are wall-clock
// offsets from the endpoint's creation; across processes each worker
// records into its own buffer.
func WithTrace(tb *trace.Buffer) Option {
	return func(c *config) { c.traceBuf = tb }
}

// WithCrashExit overrides how a rank that hits its crash point leaves.
// In-process worlds default to exiting the rank's goroutine; a worker
// process passes os.Exit so the whole process dies like a real crash.
func WithCrashExit(f func()) Option {
	return func(c *config) { c.crashExit = f }
}

// WithDeathHook registers a callback fired (off the owner goroutine)
// when the detector confirms a peer death — launcher-side bookkeeping.
func WithDeathHook(f func(rank int)) Option {
	return func(c *config) { c.onPeerDeath = f }
}

// envelope is a message announcement at the receiver: an eager envelope
// already owns its payload copy, a rendezvous envelope holds only the
// header until the payload is granted and streamed.
type envelope struct {
	src     int
	tag     comm.Tag
	msg     comm.Msg
	rdv     bool // rendezvous: payload still at the sender
	hasData bool // the transfer carries real bytes (vs payload-elided)
	xid     uint64
}

// request implements comm.Request. All mutable state is guarded by the
// owner rank's mutex.
type request struct {
	c      *Comm
	isSend bool
	done   bool
	status comm.Status
	cb     func(comm.Status)

	src int // posted-receive source (AnySource ok)
	tag comm.Tag

	dst int      // rendezvous send destination
	msg comm.Msg // rendezvous send payload (referenced until granted)
	xid uint64   // rendezvous transfer id

	postID  uint64 // causal trace ids; 0 when tracing is off
	matchID uint64
	doneID  uint64
}

func (r *request) Test() (comm.Status, bool) {
	r.c.mu.Lock()
	defer r.c.mu.Unlock()
	return r.status, r.done
}

func (r *request) IsSend() bool { return r.isSend }

// rdvPull is a matched rendezvous receive parked until the payload frame
// arrives (or the sender's death fails it).
type rdvPull struct {
	req     *request
	src     int
	tag     comm.Tag
	size    int
	hasData bool
}

// Comm is one rank's endpoint. Its blocking methods must be called from
// the rank's own goroutine; frame delivery runs on per-connection reader
// goroutines.
type Comm struct {
	rank, size int
	cfg        config
	ln         net.Listener
	peers      []*peer // peers[rank] == nil

	mu             sync.Mutex
	posted         []*request
	unexpected     []*envelope
	cbQueue        []*request
	completedCount uint64
	pendingOps     int
	notices        []comm.Notice
	noticeSeq      uint64
	sendPend       map[uint64]*request // xid → rendezvous send awaiting CTS
	pulls          map[uint64]*rdvPull // xid → matched recv awaiting DATA
	peerDown       []bool              // connection lost (death suspected)
	confirmed      []bool              // detector-confirmed deaths
	closed         bool                // clean shutdown begun; losses are expected

	xidNext uint64 // owner-goroutine only

	// Fail-stop self-crash schedule (owner-goroutine only).
	crashAfter int // send initiations before this rank dies; -1 = never
	sendsSeen  int
	deadSelf   bool

	// curCause is the rank's causal trace context; owner-goroutine only.
	curCause uint64

	wake chan struct{}
}

var (
	_ comm.Comm     = (*Comm)(nil)
	_ comm.FailStop = (*Comm)(nil)
)

// newComm builds an endpoint around an already-listening socket; the
// peers are wired afterwards by joinMesh.
func newComm(rank, size int, ln net.Listener, cfg config) *Comm {
	c := &Comm{
		rank: rank, size: size, cfg: cfg, ln: ln,
		peers:      make([]*peer, size),
		sendPend:   make(map[uint64]*request),
		pulls:      make(map[uint64]*rdvPull),
		peerDown:   make([]bool, size),
		confirmed:  make([]bool, size),
		crashAfter: -1,
		wake:       make(chan struct{}, 1),
	}
	for _, cr := range cfg.crashPlan {
		if cr.Rank == rank {
			c.crashAfter = cr.AfterSends
		}
		if cr.Rank >= size {
			panic(fmt.Sprintf("nettransport: crash rule for rank %d in a %d-rank world", cr.Rank, size))
		}
	}
	return c
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.size }

// Addr returns the endpoint's data-plane listen address.
func (c *Comm) Addr() string { return c.ln.Addr().String() }

// Now returns wall time since the endpoint was created.
func (c *Comm) Now() time.Duration { return time.Since(c.cfg.start) }

// Compute is a no-op: like the live runtime, real work is performed for
// real by the caller.
func (c *Comm) Compute(n int, kind comm.ComputeKind) {}

// TraceEmit implements trace.Emitter: wall-clock offsets, rank identity,
// Parent defaulted to the causal context. Returns 0 when tracing is off.
func (c *Comm) TraceEmit(r trace.Record) uint64 {
	tb := c.cfg.traceBuf
	if tb == nil {
		return 0
	}
	r.At = c.Now()
	r.Rank = c.rank
	if r.Parent == 0 {
		r.Parent = c.curCause
	}
	return tb.Add(r)
}

// TraceSetCause installs id as the rank's causal context and returns the
// previous one. Owner-goroutine only.
func (c *Comm) TraceSetCause(id uint64) uint64 {
	prev := c.curCause
	c.curCause = id
	return prev
}

// signal wakes the owner if it is blocked in a wait loop.
func (c *Comm) signal() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// complete finishes req. Callable from any goroutine; takes the owner's
// lock.
func (req *request) complete(st comm.Status) {
	c := req.c
	c.mu.Lock()
	if req.done {
		c.mu.Unlock()
		panic("nettransport: request completed twice")
	}
	req.done = true
	req.status = st
	if tb := c.cfg.traceBuf; tb != nil {
		kind := trace.RecvDone
		if req.isSend {
			kind = trace.SendDone
		}
		req.doneID = tb.Add(trace.Record{At: c.Now(), Rank: c.rank, Kind: kind,
			Peer: st.Source, Tag: st.Tag, Size: st.Msg.Size,
			Parent: req.postID, Link: req.matchID})
	}
	c.completedCount++
	c.pendingOps--
	if req.cb != nil {
		c.cbQueue = append(c.cbQueue, req)
	}
	c.mu.Unlock()
	c.signal()
}

// popCallbacks atomically takes the ready-callback batch.
func (c *Comm) popCallbacks() []*request {
	c.mu.Lock()
	batch := c.cbQueue
	c.cbQueue = nil
	c.mu.Unlock()
	return batch
}

// fireCallbacks runs a batch on the owner goroutine; the completion a
// callback reacts to becomes the rank's causal context (see runtime).
func (c *Comm) fireCallbacks(batch []*request) int {
	for _, req := range batch {
		cb := req.cb
		req.cb = nil
		if req.doneID != 0 {
			c.curCause = req.doneID
		}
		cb(req.status)
	}
	return len(batch)
}

// Isend starts a non-blocking send. Messages at or below the eager limit
// ship their payload with the announcement and complete immediately;
// larger ones announce (RTS) and complete only after the receiver's grant
// pulls the payload across.
func (c *Comm) Isend(dst int, tag comm.Tag, msg comm.Msg) comm.Request {
	if dst < 0 || dst >= c.size {
		panic(fmt.Sprintf("nettransport: send to rank %d of %d", dst, c.size))
	}
	c.noteSend() // crash point: the rank may die initiating this send
	req := &request{c: c, isSend: true, dst: dst}
	if tb := c.cfg.traceBuf; tb != nil {
		req.postID = tb.Add(trace.Record{At: c.Now(), Rank: c.rank, Kind: trace.SendPost,
			Peer: dst, Tag: tag, Size: msg.Size, Parent: c.curCause})
	}
	c.mu.Lock()
	c.pendingOps++
	c.mu.Unlock()
	st := comm.Status{Source: c.rank, Tag: tag, Msg: msg}
	if dst == c.rank {
		panic("nettransport: self-send (collectives never send to self)")
	}
	p := c.peers[dst]
	c.xidNext++
	xid := c.xidNext
	if msg.Size <= c.cfg.eagerLimit {
		// Eager: snapshot the payload (the sender may reuse its buffer as
		// soon as we return) into a pooled buffer the writer releases after
		// the frame hits the socket, and complete immediately. A dead peer
		// swallows the frame — eager sends never fail, mirroring runtime.
		var payload []byte
		if msg.Data != nil {
			payload = comm.GetBuf(len(msg.Data))
			copy(payload, msg.Data)
		}
		hdr := encodeEagerHdr(frameEager, tag, xid, msg.Size, len(payload), msg.Data != nil)
		p.enqueue(outFrame{hdr: hdr, payload: payload, pooled: true})
		req.complete(st)
		return req
	}
	// Rendezvous: register the transfer, announce, and wait for the grant.
	// The user buffer is referenced — not copied — until the payload frame
	// has been written, which is exactly when the request completes.
	req.msg = msg
	req.xid = xid
	req.tag = tag
	c.mu.Lock()
	if c.confirmed[dst] {
		// The detector already declared the peer dead: fail fast with the
		// same structured error an exhausted retry chain produces.
		c.mu.Unlock()
		req.complete(comm.Status{Source: c.rank, Tag: tag,
			Err: &faults.TimeoutError{Rank: c.rank, Peer: dst, Tag: tag, Attempts: 1}})
		return req
	}
	c.sendPend[xid] = req
	c.mu.Unlock()
	hdr := encodeEagerHdr(frameRTS, tag, xid, msg.Size, 0, msg.Data != nil)
	p.enqueue(outFrame{hdr: hdr})
	return req
}

// Irecv posts a non-blocking receive.
func (c *Comm) Irecv(src int, tag comm.Tag) comm.Request {
	req := &request{c: c, src: src, tag: tag}
	if tb := c.cfg.traceBuf; tb != nil {
		req.postID = tb.Add(trace.Record{At: c.Now(), Rank: c.rank, Kind: trace.RecvPost,
			Peer: src, Tag: tag, Parent: c.curCause})
	}
	c.mu.Lock()
	c.pendingOps++
	for i, env := range c.unexpected {
		if req.matches(env) {
			c.unexpected = append(c.unexpected[:i:i], c.unexpected[i+1:]...)
			c.consumeLocked(req, env)
			c.mu.Unlock()
			return req
		}
	}
	c.posted = append(c.posted, req)
	c.mu.Unlock()
	return req
}

func (req *request) matches(env *envelope) bool {
	return (req.src == comm.AnySource || req.src == env.src) && req.tag.Matches(env.tag)
}

// deliver matches an incoming envelope against posted receives or parks
// it in the unexpected queue. Runs on the connection's reader goroutine.
func (c *Comm) deliver(env *envelope) {
	c.mu.Lock()
	for i, req := range c.posted {
		if req.matches(env) {
			c.posted = append(c.posted[:i:i], c.posted[i+1:]...)
			c.consumeLocked(req, env)
			c.mu.Unlock()
			return
		}
	}
	c.unexpected = append(c.unexpected, env)
	c.mu.Unlock()
	c.signal() // wake a blocked Probe
}

// consumeLocked pairs a receive with a matched envelope; c.mu is held.
// Eager envelopes complete the receive immediately (they own their
// payload); rendezvous envelopes park the receive and grant the sender.
func (c *Comm) consumeLocked(req *request, env *envelope) {
	if !env.rdv {
		req.done = true
		req.status = comm.Status{Source: env.src, Tag: env.tag, Msg: env.msg}
		c.finishLocked(req)
		return
	}
	c.pulls[env.xid] = &rdvPull{req: req, src: env.src, tag: env.tag,
		size: env.msg.Size, hasData: env.hasData}
	if c.confirmed[env.src] || c.peerDown[env.src] {
		// The sender is already gone; the grant would go nowhere. Fail the
		// receive through the same path its death notice would take.
		c.failPullLocked(env.xid)
		return
	}
	c.peers[env.src].enqueue(outFrame{hdr: encodeCTS(env.xid)})
}

// finishLocked completes req under c.mu (deliver-path completions hold
// the lock through matching; complete() is for lock-free callers).
func (c *Comm) finishLocked(req *request) {
	if tb := c.cfg.traceBuf; tb != nil {
		kind := trace.RecvDone
		if req.isSend {
			kind = trace.SendDone
		}
		req.doneID = tb.Add(trace.Record{At: c.Now(), Rank: c.rank, Kind: kind,
			Peer: req.status.Source, Tag: req.status.Tag, Size: req.status.Msg.Size,
			Parent: req.postID, Link: req.matchID})
	}
	c.completedCount++
	c.pendingOps--
	if req.cb != nil {
		c.cbQueue = append(c.cbQueue, req)
	}
	c.signal()
}

// failPullLocked fails a parked rendezvous receive whose sender died;
// c.mu is held.
func (c *Comm) failPullLocked(xid uint64) {
	pl := c.pulls[xid]
	if pl == nil {
		return
	}
	delete(c.pulls, xid)
	pl.req.done = true
	pl.req.status = comm.Status{Source: pl.src, Tag: pl.tag,
		Err: &faults.TimeoutError{Rank: c.rank, Peer: pl.src, Tag: pl.tag, Attempts: 1}}
	c.finishLocked(pl.req)
}

// onCTS resolves a clear-to-send grant: stream the payload. Runs on the
// granting peer's reader goroutine.
func (c *Comm) onCTS(p *peer, xid uint64) {
	c.mu.Lock()
	req := c.sendPend[xid]
	if req == nil {
		c.mu.Unlock()
		return // the send was already failed by the detector
	}
	delete(c.sendPend, xid)
	c.mu.Unlock()
	var payload []byte
	if req.msg.Data != nil {
		payload = req.msg.Data
	}
	st := comm.Status{Source: c.rank, Tag: req.tag, Msg: req.msg}
	p.enqueue(outFrame{hdr: encodeDataHdr(xid, len(payload)), payload: payload,
		done: func(err error) {
			if err != nil {
				st = comm.Status{Source: c.rank, Tag: st.Tag,
					Err: &faults.TimeoutError{Rank: c.rank, Peer: p.rank, Tag: st.Tag, Attempts: 1}}
			}
			req.complete(st)
		}})
}

// onData resolves a rendezvous payload frame. Runs on the sending peer's
// reader goroutine; the payload buffer is pooled and owned by the
// receiver from here on.
func (c *Comm) onData(src int, xid uint64, payload []byte) {
	c.mu.Lock()
	pl := c.pulls[xid]
	if pl == nil {
		c.mu.Unlock()
		if payload != nil {
			comm.PutBuf(payload)
		}
		return
	}
	delete(c.pulls, xid)
	msg := comm.Msg{Size: pl.size}
	if pl.hasData {
		if payload == nil {
			payload = []byte{} // zero-byte payload, not elided
		}
		msg.Data = payload
	} else if payload != nil {
		comm.PutBuf(payload)
	}
	pl.req.done = true
	pl.req.status = comm.Status{Source: pl.src, Tag: pl.tag, Msg: msg}
	c.finishLocked(pl.req)
	c.mu.Unlock()
}

// Send performs a blocking send: for rendezvous-size messages it returns
// only once the receiver has matched and the payload is on the wire.
func (c *Comm) Send(dst int, tag comm.Tag, msg comm.Msg) {
	c.Wait(c.Isend(dst, tag, msg))
}

// Iprobe reports whether a message matching (src, tag) has arrived
// without consuming it. src may be AnySource, tag AnyTag.
func (c *Comm) Iprobe(src int, tag comm.Tag) (comm.Status, bool) {
	probe := &request{c: c, src: src, tag: tag}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, env := range c.unexpected {
		if probe.matches(env) {
			return comm.Status{Source: env.src, Tag: env.tag,
				Msg: comm.Msg{Size: env.msg.Size, Space: env.msg.Space}}, true
		}
	}
	return comm.Status{}, false
}

// Probe blocks until a matching message is available, leaving it in the
// unexpected queue for a later Recv.
func (c *Comm) Probe(src int, tag comm.Tag) comm.Status {
	for {
		if st, ok := c.Iprobe(src, tag); ok {
			return st
		}
		<-c.wake
	}
}

// Recv performs a blocking receive.
func (c *Comm) Recv(src int, tag comm.Tag) comm.Status {
	return c.Wait(c.Irecv(src, tag))
}

// Wait blocks until r completes, firing ready callbacks meanwhile.
func (c *Comm) Wait(r comm.Request) comm.Status {
	req := r.(*request)
	for {
		c.fireCallbacks(c.popCallbacks())
		if st, ok := req.Test(); ok {
			if req.doneID != 0 {
				c.curCause = req.doneID
			}
			return st
		}
		<-c.wake
	}
}

// WaitAll blocks until every request completes; nil entries are skipped.
func (c *Comm) WaitAll(rs []comm.Request) {
	for {
		c.fireCallbacks(c.popCallbacks())
		alldone := true
		for _, r := range rs {
			if r == nil {
				continue
			}
			if _, ok := r.Test(); !ok {
				alldone = false
				break
			}
		}
		if alldone {
			var last uint64
			for _, r := range rs {
				if req, ok := r.(*request); ok && req != nil && req.doneID > last {
					last = req.doneID
				}
			}
			if last != 0 {
				c.curCause = last
			}
			return
		}
		<-c.wake
	}
}

// WaitAny blocks until some live request completes and returns its index;
// nil entries are skipped.
func (c *Comm) WaitAny(rs []comm.Request) (int, comm.Status) {
	live := false
	for _, r := range rs {
		if r != nil {
			live = true
			break
		}
	}
	if !live {
		panic("nettransport: WaitAny with no live request")
	}
	for {
		c.fireCallbacks(c.popCallbacks())
		for i, r := range rs {
			if r == nil {
				continue
			}
			if st, ok := r.Test(); ok {
				if req, ok := r.(*request); ok && req.doneID != 0 {
					c.curCause = req.doneID
				}
				return i, st
			}
		}
		<-c.wake
	}
}

// OnComplete attaches fn to r; it fires on this rank's goroutine from
// inside Progress or a Wait variant.
func (c *Comm) OnComplete(r comm.Request, fn func(comm.Status)) {
	req := r.(*request)
	if req.c != c {
		panic("nettransport: OnComplete on foreign request")
	}
	c.mu.Lock()
	if req.cb != nil {
		c.mu.Unlock()
		panic("nettransport: request already has a callback")
	}
	req.cb = fn
	if req.done {
		c.cbQueue = append(c.cbQueue, req)
		c.mu.Unlock()
		c.signal()
		return
	}
	c.mu.Unlock()
}

// TryProgress fires ready callbacks without blocking.
func (c *Comm) TryProgress() bool {
	return c.fireCallbacks(c.popCallbacks()) > 0
}

// Progress blocks until at least one completion is processed, fires the
// ready callbacks, and returns.
func (c *Comm) Progress() {
	c.mu.Lock()
	start := c.completedCount
	c.mu.Unlock()
	for {
		fired := c.fireCallbacks(c.popCallbacks())
		c.mu.Lock()
		advanced := c.completedCount > start
		pending := c.pendingOps
		c.mu.Unlock()
		if fired > 0 || advanced {
			return
		}
		if pending == 0 {
			panic(fmt.Sprintf("nettransport: rank %d progressing with no operation in flight", c.rank))
		}
		<-c.wake
	}
}
