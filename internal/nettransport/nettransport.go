// Package nettransport is the multi-process message-passing substrate:
// each rank is its own OS process (or, in tests, its own endpoint inside
// one process) and point-to-point traffic travels over TCP as
// length-prefixed frames carrying (tag, xid, payload).
//
// It implements comm.Comm through the shared matching core in
// internal/progress — the same posted-receive queue, unexpected-message
// queue, eager and rendezvous (RTS/CTS) protocols, and completion
// callbacks as the other substrates — so every collective in
// internal/coll and internal/core runs on it unchanged. Where the
// runtime moves payloads between goroutines, this substrate serializes
// them through sockets: eager messages ship their bytes with the
// announcement, large messages announce first (RTS) and stream the
// payload only after the receiver matches and grants (CTS), which keeps
// unexpected-queue memory bounded by announcements rather than payloads.
//
// I/O is readiness-driven, not goroutine-per-peer: each endpoint runs
// ONE reader (an epoll loop multiplexing every peer connection with
// non-blocking reads, see ioloop_linux.go) and ONE writer (a send
// scheduler draining per-peer queues round-robin with writev-coalesced
// batches, see sendsched.go), so the goroutine count is O(1) per
// endpoint regardless of world size.
//
// Fail-stop semantics come from the sockets themselves: a peer that
// vanishes without the clean Bye handshake trips a lease-based failure
// detector (suspicion then confirmation, timing from faults.Recovery)
// and surfaces as a death Notice on the comm.FailStop control plane —
// exactly the contract the FT collectives in internal/core consume, so a
// killed worker process yields a structured *faults.RankFailedError
// instead of a hang.
package nettransport

import (
	"fmt"
	"hash/crc32"
	"net"
	"sync"
	"time"

	"adapt/internal/comm"
	"adapt/internal/faults"
	"adapt/internal/fec"
	"adapt/internal/progress"
	"adapt/internal/trace"
)

// DefaultEagerLimit is the eager/rendezvous protocol switch-over: a
// message of exactly this many bytes still travels eagerly, one byte more
// announces first. All three substrates share the same inclusive
// boundary (see the cross-substrate parity test in internal/conform).
const DefaultEagerLimit = 8 * 1024

// config carries the tuning every endpoint needs, shared by the
// in-process LocalWorld and the multi-process cluster bootstrap.
type config struct {
	eagerLimit   int
	rec          faults.Recovery // detector leases + dial backoff
	crashPlan    []faults.Crash
	crashArmed   bool // any rank anywhere has a crash rule (FT path on)
	traceBuf     *trace.Buffer
	start        time.Time
	crashExit    func() // how a dying rank leaves (Goexit in-process, Exit(3) in a worker)
	onPeerDeath  func(rank int)
	dialRecovery faults.Recovery

	// Message-level chaos + erasure coding (LocalWorld testing surface;
	// cluster workers stay chaos-free). See fec.go.
	chaosOn   bool
	chaosPlan faults.Plan
	chaosRec  faults.Recovery
	fecCfg    fec.Config
}

func defaultConfig() config {
	rec := faults.DefaultRecovery()
	// Socket teardown is observed, not inferred from silence, so the
	// simulator's microsecond leases would race scheduler jitter on a
	// loaded host; stretch them to solid wall-clock margins.
	rec.SuspectAfter = 2 * time.Millisecond
	rec.ConfirmAfter = 5 * time.Millisecond
	return config{
		eagerLimit: DefaultEagerLimit,
		rec:        rec,
		start:      time.Now(),
		// Mesh dials race worker start-up: retry for a few seconds with
		// exponential backoff before declaring the peer unreachable.
		dialRecovery: faults.Recovery{RTO: 2 * time.Millisecond, Backoff: 2, MaxAttempts: 14}.Normalized(),
	}
}

// Option configures a LocalWorld or a cluster worker endpoint.
type Option func(*config)

// WithEagerLimit overrides the eager protocol threshold.
func WithEagerLimit(n int) Option {
	return func(c *config) { c.eagerLimit = n }
}

// WithRecovery overrides the detector-lease and dial-backoff tuning.
func WithRecovery(r faults.Recovery) Option {
	return func(c *config) { c.rec = r.Normalized(); c.dialRecovery = r.Normalized() }
}

// WithCrashes arms a fail-stop crash schedule (the plan's Crashes only;
// message-level chaos rules are the other substrates' business).
func WithCrashes(crashes []faults.Crash) Option {
	return func(c *config) {
		c.crashPlan = append([]faults.Crash(nil), crashes...)
		c.crashArmed = c.crashArmed || len(crashes) > 0
	}
}

// WithCrashesArmed marks the world as crash-enabled even on ranks without
// a rule of their own — every process in a cluster must agree on whether
// the FT collectives take their crash-tolerant path.
func WithCrashesArmed() Option {
	return func(c *config) { c.crashArmed = true }
}

// WithTrace attaches a causal trace buffer. Timestamps are wall-clock
// offsets from the endpoint's creation; across processes each worker
// records into its own buffer.
func WithTrace(tb *trace.Buffer) Option {
	return func(c *config) { c.traceBuf = tb }
}

// WithCrashExit overrides how a rank that hits its crash point leaves.
// In-process worlds default to exiting the rank's goroutine; a worker
// process passes os.Exit so the whole process dies like a real crash.
func WithCrashExit(f func()) Option {
	return func(c *config) { c.crashExit = f }
}

// WithDeathHook registers a callback fired (off the owner goroutine)
// when the detector confirms a peer death — launcher-side bookkeeping.
func WithDeathHook(f func(rank int)) Option {
	return func(c *config) { c.onPeerDeath = f }
}

// WithChaos arms message-level fault injection on the eager frame
// stream: each eager transmission draws a deterministic verdict from the
// plan — dropped frames never reach the socket, corrupted ones fly with
// damaged bytes and die at the receiver's CRC, duplicates are enqueued
// twice. rec tunes the FEC layer's group-resend backstop; use wall-clock
// RTOs (tens of milliseconds), not the simulator's microsecond defaults.
// Recovery from loss is the FEC machinery's job (WithFEC): without it,
// a dropped eager frame is lost for good, exactly like the runtime's
// exhausted-retry path.
func WithChaos(plan faults.Plan, rec faults.Recovery) Option {
	return func(c *config) {
		c.chaosOn = true
		c.chaosPlan = plan
		c.chaosRec = rec.Normalized()
	}
}

// WithFEC arms erasure coding over the eager segment stream: senders
// group segments per destination, encode parity, and resend whole groups
// on an un-acked timer; receivers reconstruct within-parity erasures
// with no retransmit round trip. See fec.go.
func WithFEC(cfg fec.Config) Option {
	return func(c *config) { c.fecCfg = cfg.Normalized() }
}

// rdvPull is a matched rendezvous receive parked until the payload frame
// arrives (or the sender's death fails it).
type rdvPull struct {
	req     *progress.Req
	src     int
	tag     comm.Tag
	size    int
	hasData bool
}

// Comm is one rank's endpoint. Its blocking methods must be called from
// the rank's own goroutine; frame delivery runs on the endpoint's single
// I/O loop goroutine.
type Comm struct {
	rank, size int
	cfg        config
	ln         net.Listener
	conns      []*connState // conns[rank] == nil
	sched      *sendSched
	io         ioLoop // platform readiness loop (see ioloop_*.go)

	eng *progress.Engine

	// mu guards the wire-protocol state below. Lock order: c.mu may be
	// held around engine calls (substrate lock → engine lock), never the
	// reverse.
	mu        sync.Mutex
	sendPend  map[uint64]*progress.Req // xid → rendezvous send awaiting CTS
	pulls     map[uint64]*rdvPull      // xid → matched recv awaiting DATA
	peerDown  []bool                   // connection lost (death suspected)
	confirmed []bool                   // detector-confirmed deaths
	lostAt    []int64                  // metrics.Clock() at loss observation (telemetry)
	closed    bool                     // clean shutdown begun; losses are expected

	xidNext uint64 // owner-goroutine only

	// Chaos + FEC (nil without WithChaos/WithFEC; see fec.go).
	inj   *faults.Injector
	fecTx *fecSender
	fecRx *fecTracker

	// Fail-stop self-crash schedule (owner-goroutine only).
	crashAfter int // send initiations before this rank dies; -1 = never
	sendsSeen  int
	deadSelf   bool

	wake chan struct{}
}

var (
	_ comm.Comm     = (*Comm)(nil)
	_ comm.FailStop = (*Comm)(nil)
)

// newComm builds an endpoint around an already-listening socket; the
// peers are wired afterwards by joinMesh.
func newComm(rank, size int, ln net.Listener, cfg config) *Comm {
	c := &Comm{
		rank: rank, size: size, cfg: cfg, ln: ln,
		conns:      make([]*connState, size),
		sendPend:   make(map[uint64]*progress.Req),
		pulls:      make(map[uint64]*rdvPull),
		peerDown:   make([]bool, size),
		confirmed:  make([]bool, size),
		lostAt:     make([]int64, size),
		crashAfter: -1,
		wake:       make(chan struct{}, 1),
	}
	c.eng = progress.New(progress.Backend{
		Prefix:  "nettransport",
		Rank:    rank,
		Now:     c.Now,
		Trace:   func() *trace.Buffer { return c.cfg.traceBuf },
		Wake:    c.signal,
		Block:   func() { <-c.wake },
		OnMatch: c.onMatch,
	})
	for _, cr := range cfg.crashPlan {
		if cr.Rank == rank {
			c.crashAfter = cr.AfterSends
		}
		if cr.Rank >= size {
			panic(fmt.Sprintf("nettransport: crash rule for rank %d in a %d-rank world", cr.Rank, size))
		}
	}
	if cfg.chaosOn {
		// Every endpoint builds its own injector from the shared plan:
		// verdicts are keyed by message identity, so the streams agree
		// across endpoints; only the counters are endpoint-local
		// (LocalWorld.FaultStats aggregates them).
		c.inj = faults.NewInjector(cfg.chaosPlan)
	}
	if cfg.fecCfg.Enabled() {
		c.fecTx = newFecSender(c)
	}
	if cfg.fecCfg.Enabled() || c.inj != nil {
		c.fecRx = newFecTracker(c, cfg.fecCfg.Enabled())
	}
	return c
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.size }

// Addr returns the endpoint's data-plane listen address.
func (c *Comm) Addr() string { return c.ln.Addr().String() }

// Now returns wall time since the endpoint was created.
func (c *Comm) Now() time.Duration { return time.Since(c.cfg.start) }

// Compute is a no-op: like the live runtime, real work is performed for
// real by the caller.
func (c *Comm) Compute(n int, kind comm.ComputeKind) {}

// AttachProgressNotifier wires a scheduler notifier to this endpoint's
// engine (see progress.Scheduler).
func (c *Comm) AttachProgressNotifier(n *progress.Notifier) { c.eng.AttachNotifier(n) }

// TraceEmit implements trace.Emitter: wall-clock offsets, rank identity,
// Parent defaulted to the causal context. Returns 0 when tracing is off.
func (c *Comm) TraceEmit(r trace.Record) uint64 { return c.eng.TraceEmit(r) }

// TraceSetCause installs id as the rank's causal context and returns the
// previous one. Owner-goroutine only.
func (c *Comm) TraceSetCause(id uint64) uint64 { return c.eng.TraceSetCause(id) }

// signal wakes the owner if it is blocked in a wait loop.
func (c *Comm) signal() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// Isend starts a non-blocking send. Messages at or below the eager limit
// ship their payload with the announcement and complete immediately;
// larger ones announce (RTS) and complete only after the receiver's grant
// pulls the payload across.
func (c *Comm) Isend(dst int, tag comm.Tag, msg comm.Msg) comm.Request {
	if dst < 0 || dst >= c.size {
		panic(fmt.Sprintf("nettransport: send to rank %d of %d", dst, c.size))
	}
	c.noteSend() // crash point: the rank may die initiating this send
	req := c.eng.StartSend(dst, tag, msg.Size)
	st := comm.Status{Source: c.rank, Tag: tag, Msg: msg}
	if dst == c.rank {
		panic("nettransport: self-send (collectives never send to self)")
	}
	c.xidNext++
	xid := c.xidNext
	if msg.Size <= c.cfg.eagerLimit {
		// Eager: snapshot the payload (the sender may reuse its buffer as
		// soon as we return) into a pooled buffer the scheduler releases
		// after the frame hits the socket, and complete immediately. A dead
		// peer swallows the frame — eager sends never fail, mirroring
		// runtime.
		var payload []byte
		if msg.Data != nil {
			payload = comm.GetBuf(len(msg.Data))
			copy(payload, msg.Data)
		}
		meta := fecMeta{tag: tag, xid: xid, size: msg.Size, plen: len(payload),
			hasData: msg.Data != nil}
		switch {
		case c.fecTx != nil:
			// FEC framer owns the snapshot until the group resolves; each
			// transmission (including resends) ships its own wire copy.
			c.fecTx.send(dst, meta, payload)
		case c.inj != nil:
			c.transmitEager(dst, meta, payload, 0)
			comm.PutBuf(payload)
		default:
			hdr := encodeEagerHdr(frameEager, tag, xid, msg.Size, len(payload),
				msg.Data != nil, crc32.ChecksumIEEE(payload))
			c.sched.enqueue(dst, outFrame{hdr: hdr, payload: payload, pooled: true})
		}
		req.Complete(st)
		return req
	}
	// Rendezvous: register the transfer, announce, and wait for the grant.
	// The user buffer is referenced — not copied — until the payload frame
	// has been written, which is exactly when the request completes.
	req.Msg = msg
	req.Xid = xid
	req.Tag = tag
	c.mu.Lock()
	if c.confirmed[dst] {
		// The detector already declared the peer dead: fail fast with the
		// same structured error an exhausted retry chain produces.
		c.mu.Unlock()
		req.Complete(comm.Status{Source: c.rank, Tag: tag,
			Err: &faults.TimeoutError{Rank: c.rank, Peer: dst, Tag: tag, Attempts: 1}})
		return req
	}
	c.sendPend[xid] = req
	c.mu.Unlock()
	hdr := encodeEagerHdr(frameRTS, tag, xid, msg.Size, 0, msg.Data != nil, 0)
	c.sched.enqueue(dst, outFrame{hdr: hdr})
	return req
}

// Irecv posts a non-blocking receive.
func (c *Comm) Irecv(src int, tag comm.Tag) comm.Request {
	return c.eng.PostRecv(src, tag, comm.MemDefault)
}

// onMatch pairs a receive with a matched envelope. Eager envelopes
// complete the receive immediately (they own their payload, delivered
// pooled straight off the read path); rendezvous envelopes park the
// receive as a pull and grant the sender.
func (c *Comm) onMatch(req *progress.Req, env *progress.Env, wasUnexpected bool) {
	if env.Err != nil {
		// A tombstoned FEC group member: the sender exhausted its resend
		// budget, so the matched receive fails with the structured loss.
		req.Complete(comm.Status{Source: env.Src, Tag: env.Tag, Err: env.Err})
		return
	}
	if !env.Rdv {
		req.Complete(comm.Status{Source: env.Src, Tag: env.Tag, Msg: env.Msg})
		return
	}
	c.mu.Lock()
	c.pulls[env.Xid] = &rdvPull{req: req, src: env.Src, tag: env.Tag,
		size: env.Msg.Size, hasData: env.HasData}
	if c.confirmed[env.Src] || c.peerDown[env.Src] {
		// The sender is already gone; the grant would go nowhere. Fail the
		// receive through the same path its death notice would take.
		c.failPullLocked(env.Xid)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	// A death confirmed between the unlock and this enqueue is still safe:
	// the confirm sweep saw the registered pull and failed it; the dead
	// queue drops the grant on the floor.
	c.sched.enqueue(env.Src, outFrame{hdr: encodeCTS(env.Xid)})
}

// failPullLocked fails a parked rendezvous receive whose sender died;
// c.mu is held (completion takes the engine lock underneath it).
func (c *Comm) failPullLocked(xid uint64) {
	pl := c.pulls[xid]
	if pl == nil {
		return
	}
	delete(c.pulls, xid)
	pl.req.Complete(comm.Status{Source: pl.src, Tag: pl.tag,
		Err: &faults.TimeoutError{Rank: c.rank, Peer: pl.src, Tag: pl.tag, Attempts: 1}})
}

// onCTS resolves a clear-to-send grant: stream the payload. Runs on the
// I/O loop goroutine.
func (c *Comm) onCTS(src int, xid uint64) {
	c.mu.Lock()
	req := c.sendPend[xid]
	if req == nil {
		c.mu.Unlock()
		return // the send was already failed by the detector
	}
	delete(c.sendPend, xid)
	c.mu.Unlock()
	var payload []byte
	if req.Msg.Data != nil {
		payload = req.Msg.Data
	}
	st := comm.Status{Source: c.rank, Tag: req.Tag, Msg: req.Msg}
	c.sched.enqueue(src, outFrame{hdr: encodeDataHdr(xid, len(payload)), payload: payload,
		done: func(err error) {
			if err != nil {
				st = comm.Status{Source: c.rank, Tag: st.Tag,
					Err: &faults.TimeoutError{Rank: c.rank, Peer: src, Tag: st.Tag, Attempts: 1}}
			}
			req.Complete(st)
		}})
}

// onData resolves a rendezvous payload frame. Runs on the I/O loop
// goroutine; the payload buffer is pooled and owned by the receiver from
// here on.
func (c *Comm) onData(src int, xid uint64, payload []byte) {
	c.mu.Lock()
	pl := c.pulls[xid]
	if pl == nil {
		c.mu.Unlock()
		if payload != nil {
			comm.PutBuf(payload)
		}
		return
	}
	delete(c.pulls, xid)
	c.mu.Unlock()
	msg := comm.Msg{Size: pl.size}
	if pl.hasData {
		if payload == nil {
			payload = []byte{} // zero-byte payload, not elided
		}
		msg.Data = payload
	} else if payload != nil {
		comm.PutBuf(payload)
	}
	pl.req.Complete(comm.Status{Source: pl.src, Tag: pl.tag, Msg: msg})
}

// Send performs a blocking send: for rendezvous-size messages it returns
// only once the receiver has matched and the payload is on the wire.
func (c *Comm) Send(dst int, tag comm.Tag, msg comm.Msg) {
	c.Wait(c.Isend(dst, tag, msg))
}

// Iprobe reports whether a message matching (src, tag) has arrived
// without consuming it. src may be AnySource, tag AnyTag.
func (c *Comm) Iprobe(src int, tag comm.Tag) (comm.Status, bool) {
	return c.eng.Iprobe(src, tag)
}

// Probe blocks until a matching message is available, leaving it in the
// unexpected queue for a later Recv.
func (c *Comm) Probe(src int, tag comm.Tag) comm.Status {
	return c.eng.Probe(src, tag)
}

// Recv performs a blocking receive.
func (c *Comm) Recv(src int, tag comm.Tag) comm.Status {
	return c.Wait(c.Irecv(src, tag))
}

// Wait blocks until r completes, firing ready callbacks meanwhile.
func (c *Comm) Wait(r comm.Request) comm.Status { return c.eng.Wait(r) }

// WaitAll blocks until every request completes; nil entries are skipped.
func (c *Comm) WaitAll(rs []comm.Request) { c.eng.WaitAll(rs) }

// WaitAny blocks until some live request completes and returns its index;
// nil entries are skipped.
func (c *Comm) WaitAny(rs []comm.Request) (int, comm.Status) { return c.eng.WaitAny(rs) }

// OnComplete attaches fn to r; it fires on this rank's goroutine from
// inside Progress or a Wait variant.
func (c *Comm) OnComplete(r comm.Request, fn func(comm.Status)) { c.eng.OnComplete(r, fn) }

// TryProgress fires ready callbacks without blocking.
func (c *Comm) TryProgress() bool { return c.eng.TryProgress() }

// Progress blocks until at least one completion is processed, fires the
// ready callbacks, and returns.
func (c *Comm) Progress() { c.eng.Progress() }
