package nettransport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"adapt/internal/comm"
	"adapt/internal/perf"
)

// Wire format: every frame is a 4-byte little-endian length prefix (the
// byte count of everything after the prefix) followed by a 1-byte frame
// type and a type-specific body. Fixed-width fields are little-endian.
//
//	ident   u32 rank                                  — first frame on a dialed conn
//	eager   i64 tag, u64 xid, u32 size, u8 flags, payload
//	rts     i64 tag, u64 xid, u32 size, u8 flags      — rendezvous announcement
//	cts     u64 xid                                   — clear-to-send grant
//	data    u64 xid, payload                          — rendezvous payload
//	commit  i64 seq, u32 n, n×u8 survivors            — control-plane commit fan-out
//	bye     (empty)                                   — clean shutdown; EOF after it is not a death
//
// The xid is a sender-local transfer id: it pairs a data frame (or grant)
// with the announcement that created it, bypassing tag matching for the
// second half of a rendezvous. flags bit 0 records whether the message
// carries real bytes — a payload-elided comm.Msg travels as a zero-byte
// payload with the logical size in the header, and must come back out as
// an elided Msg on the receiver.
const (
	frameIdent = byte(iota)
	frameEager
	frameRTS
	frameCTS
	frameData
	frameCommit
	frameBye
)

const (
	flagHasData = 1 << 0

	// eagerHdrLen is the fixed body length of eager/rts frames before the
	// payload: tag(8) + xid(8) + size(4) + flags(1).
	eagerHdrLen = 21

	// maxFrameBody bounds a frame body read from the wire; anything larger
	// is a corrupt or hostile stream, not a legal message (the pool's
	// largest class is 64 MB and collectives segment well below that).
	maxFrameBody = 1 << 30
)

// wireMsg is a decoded data-plane frame.
type wireMsg struct {
	ftype     byte
	tag       comm.Tag
	xid       uint64
	size      int    // logical message size (eager/rts)
	hasData   bool   // the transfer carries real bytes
	payload   []byte // pooled; owned by the receiver (eager/data)
	rank      int    // ident
	seq       int    // commit
	survivors []bool // commit
}

// appendHeader writes the length prefix and type for a body of n bytes.
func appendHeader(dst []byte, ftype byte, n int) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n+1))
	return append(dst, ftype)
}

// encodeIdent builds the mesh handshake frame announcing the dialer's rank.
func encodeIdent(rank int) []byte {
	b := appendHeader(make([]byte, 0, 9), frameIdent, 4)
	return binary.LittleEndian.AppendUint32(b, uint32(rank))
}

// encodeEagerHdr builds the header of an eager or rts frame; payloadLen is
// the byte count that will follow (always 0 for rts).
func encodeEagerHdr(ftype byte, tag comm.Tag, xid uint64, size, payloadLen int, hasData bool) []byte {
	b := appendHeader(make([]byte, 0, 5+eagerHdrLen), ftype, eagerHdrLen+payloadLen)
	b = binary.LittleEndian.AppendUint64(b, uint64(tag))
	b = binary.LittleEndian.AppendUint64(b, xid)
	b = binary.LittleEndian.AppendUint32(b, uint32(size))
	var flags byte
	if hasData {
		flags |= flagHasData
	}
	return append(b, flags)
}

// encodeCTS builds a clear-to-send grant for the given transfer.
func encodeCTS(xid uint64) []byte {
	b := appendHeader(make([]byte, 0, 13), frameCTS, 8)
	return binary.LittleEndian.AppendUint64(b, xid)
}

// encodeDataHdr builds the header of a rendezvous payload frame.
func encodeDataHdr(xid uint64, payloadLen int) []byte {
	b := appendHeader(make([]byte, 0, 13), frameData, 8+payloadLen)
	return binary.LittleEndian.AppendUint64(b, xid)
}

// encodeCommit builds a control-plane commit notice.
func encodeCommit(seq int, survivors []bool) []byte {
	b := appendHeader(make([]byte, 0, 5+12+len(survivors)), frameCommit, 12+len(survivors))
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(seq)))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(survivors)))
	for _, s := range survivors {
		if s {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

// encodeBye builds the clean-shutdown frame.
func encodeBye() []byte {
	return appendHeader(make([]byte, 0, 5), frameBye, 0)
}

// readFrame reads and decodes one frame. Payload bytes land in a pooled
// buffer owned by the caller. An io.EOF at a frame boundary comes back
// verbatim; a mid-frame EOF is an io.ErrUnexpectedEOF.
func readFrame(br *bufio.Reader) (wireMsg, error) {
	var m wireMsg
	var pfx [4]byte
	if _, err := io.ReadFull(br, pfx[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF // a cut connection, not a truncated frame
		}
		return m, err
	}
	n := int(binary.LittleEndian.Uint32(pfx[:]))
	if n < 1 || n > maxFrameBody {
		return m, fmt.Errorf("nettransport: frame body %d bytes out of range", n)
	}
	ft, err := br.ReadByte()
	if err != nil {
		return m, unexpectedEOF(err)
	}
	m.ftype = ft
	body := n - 1
	perf.RecordNetFrameIn(4 + n)
	switch ft {
	case frameIdent:
		var fix [4]byte
		if err := readFixed(br, fix[:], body, 4); err != nil {
			return m, err
		}
		m.rank = int(binary.LittleEndian.Uint32(fix[:]))
		return m, nil
	case frameEager, frameRTS:
		var fix [eagerHdrLen]byte
		if body < eagerHdrLen {
			return m, fmt.Errorf("nettransport: short %d-byte eager/rts frame", body)
		}
		if _, err := io.ReadFull(br, fix[:]); err != nil {
			return m, unexpectedEOF(err)
		}
		m.tag = comm.Tag(int64(binary.LittleEndian.Uint64(fix[0:])))
		m.xid = binary.LittleEndian.Uint64(fix[8:])
		m.size = int(binary.LittleEndian.Uint32(fix[16:]))
		m.hasData = fix[20]&flagHasData != 0
		plen := body - eagerHdrLen
		if ft == frameRTS && plen != 0 {
			return m, fmt.Errorf("nettransport: rts frame with %d payload bytes", plen)
		}
		if plen > 0 {
			m.payload = comm.GetBuf(plen)
			if _, err := io.ReadFull(br, m.payload); err != nil {
				comm.PutBuf(m.payload)
				m.payload = nil
				return m, unexpectedEOF(err)
			}
		}
		return m, nil
	case frameCTS:
		var fix [8]byte
		if err := readFixed(br, fix[:], body, 8); err != nil {
			return m, err
		}
		m.xid = binary.LittleEndian.Uint64(fix[:])
		return m, nil
	case frameData:
		var fix [8]byte
		if body < 8 {
			return m, fmt.Errorf("nettransport: short %d-byte data frame", body)
		}
		if _, err := io.ReadFull(br, fix[:]); err != nil {
			return m, unexpectedEOF(err)
		}
		m.xid = binary.LittleEndian.Uint64(fix[:])
		if plen := body - 8; plen > 0 {
			m.payload = comm.GetBuf(plen)
			if _, err := io.ReadFull(br, m.payload); err != nil {
				comm.PutBuf(m.payload)
				m.payload = nil
				return m, unexpectedEOF(err)
			}
		}
		return m, nil
	case frameCommit:
		if body < 12 {
			return m, fmt.Errorf("nettransport: short %d-byte commit frame", body)
		}
		var fix [12]byte
		if _, err := io.ReadFull(br, fix[:]); err != nil {
			return m, unexpectedEOF(err)
		}
		m.seq = int(int64(binary.LittleEndian.Uint64(fix[0:])))
		cnt := int(binary.LittleEndian.Uint32(fix[8:]))
		if cnt != body-12 {
			return m, fmt.Errorf("nettransport: commit mask %d entries in %d-byte body", cnt, body)
		}
		raw := make([]byte, cnt)
		if _, err := io.ReadFull(br, raw); err != nil {
			return m, unexpectedEOF(err)
		}
		m.survivors = make([]bool, cnt)
		for i, v := range raw {
			m.survivors[i] = v != 0
		}
		return m, nil
	case frameBye:
		if body != 0 {
			return m, fmt.Errorf("nettransport: bye frame with %d-byte body", body)
		}
		return m, nil
	}
	return m, fmt.Errorf("nettransport: unknown frame type %d", ft)
}

// readFixed reads a fixed-size body and rejects length mismatches.
func readFixed(br *bufio.Reader, dst []byte, body, want int) error {
	if body != want {
		return fmt.Errorf("nettransport: frame body %d bytes, want %d", body, want)
	}
	_, err := io.ReadFull(br, dst)
	return unexpectedEOF(err)
}

// unexpectedEOF normalizes a mid-frame EOF so the caller can distinguish
// "connection cut between frames" (io.EOF) from "cut inside a frame".
func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
