package nettransport

import (
	"encoding/binary"

	"adapt/internal/comm"
)

// Wire format: every frame is a 4-byte little-endian length prefix (the
// byte count of everything after the prefix) followed by a 1-byte frame
// type and a type-specific body. Fixed-width fields are little-endian.
//
//	ident   u32 rank                                  — first frame on a dialed conn
//	eager   i64 tag, u64 xid, u32 size, u8 flags, u32 crc, payload
//	rts     i64 tag, u64 xid, u32 size, u8 flags, u32 crc — rendezvous announcement (crc 0)
//	cts     u64 xid                                   — clear-to-send grant
//	data    u64 xid, payload                          — rendezvous payload
//	commit  i64 seq, u32 n, n×u8 survivors            — control-plane commit fan-out
//	bye     (empty)                                   — clean shutdown; EOF after it is not a death
//	fecpar  u64 gid, u8 k, u8 m, u8 idx, u32 crc, k×meta, parity — one parity shard
//	fecack  u64 gid                                   — receiver: group fully delivered
//	fecdead u64 gid, u32 attempts, u8 k, k×meta       — sender gave the group up
//
// The xid is a sender-local transfer id: it pairs a data frame (or grant)
// with the announcement that created it, bypassing tag matching for the
// second half of a rendezvous. flags bit 0 records whether the message
// carries real bytes — a payload-elided comm.Msg travels as a zero-byte
// payload with the logical size in the header, and must come back out as
// an elided Msg on the receiver.
//
// The eager crc is an IEEE CRC-32 over the payload bytes: a frame whose
// payload arrives damaged (the chaos injector's corrupt rule flips wire
// bits) is discarded at the checksum, turning corruption into detected
// loss — which the FEC layer (fec.go) then repairs from parity. A fecpar
// frame carries its group's roster (one 25-byte meta per member: tag,
// xid, size, payload length, flags) so the receiver can identify the
// erasures; its crc covers everything after the fixed fields. fecdead is
// the sender's tombstone after the retransmit budget: the receiver fails
// the group's unseen members with a structured timeout.
const (
	frameIdent = byte(iota)
	frameEager
	frameRTS
	frameCTS
	frameData
	frameCommit
	frameBye
	frameFecParity
	frameFecAck
	frameFecDead
)

const (
	flagHasData = 1 << 0

	// eagerHdrLen is the fixed body length of eager/rts frames before the
	// payload: tag(8) + xid(8) + size(4) + flags(1) + crc(4).
	eagerHdrLen = 25

	// fecMetaLen is one group-member roster entry in fecpar/fecdead
	// frames: tag(8) + xid(8) + size(4) + plen(4) + flags(1).
	fecMetaLen = 25

	// fecParityFixed is the fecpar fixed prefix: gid(8) + k(1) + m(1) +
	// idx(1) + crc(4).
	fecParityFixed = 15

	// fecDeadFixed is the fecdead fixed prefix: gid(8) + attempts(4) + k(1).
	fecDeadFixed = 13

	// maxFrameBody bounds a frame body read from the wire; anything larger
	// is a corrupt or hostile stream, not a legal message (the pool's
	// largest class is 64 MB and collectives segment well below that).
	maxFrameBody = 1 << 30
)

// appendHeader writes the length prefix and type for a body of n bytes.
func appendHeader(dst []byte, ftype byte, n int) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n+1))
	return append(dst, ftype)
}

// encodeIdent builds the mesh handshake frame announcing the dialer's rank.
func encodeIdent(rank int) []byte {
	b := appendHeader(make([]byte, 0, 9), frameIdent, 4)
	return binary.LittleEndian.AppendUint32(b, uint32(rank))
}

// encodeEagerHdr builds the header of an eager or rts frame; payloadLen
// is the byte count that will follow (always 0 for rts) and crc its
// IEEE CRC-32 (0 for rts).
func encodeEagerHdr(ftype byte, tag comm.Tag, xid uint64, size, payloadLen int, hasData bool, crc uint32) []byte {
	b := appendHeader(make([]byte, 0, 5+eagerHdrLen), ftype, eagerHdrLen+payloadLen)
	b = binary.LittleEndian.AppendUint64(b, uint64(tag))
	b = binary.LittleEndian.AppendUint64(b, xid)
	b = binary.LittleEndian.AppendUint32(b, uint32(size))
	var flags byte
	if hasData {
		flags |= flagHasData
	}
	b = append(b, flags)
	return binary.LittleEndian.AppendUint32(b, crc)
}

// fecMeta is one group member's roster entry as carried on the wire.
type fecMeta struct {
	tag     comm.Tag
	xid     uint64
	size    int // logical message size
	plen    int // payload (shard) byte count
	hasData bool
}

// appendFecMeta serializes one roster entry.
func appendFecMeta(b []byte, m fecMeta) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(m.tag))
	b = binary.LittleEndian.AppendUint64(b, m.xid)
	b = binary.LittleEndian.AppendUint32(b, uint32(m.size))
	b = binary.LittleEndian.AppendUint32(b, uint32(m.plen))
	var flags byte
	if m.hasData {
		flags |= flagHasData
	}
	return append(b, flags)
}

// parseFecMeta decodes one roster entry from b.
func parseFecMeta(b []byte) fecMeta {
	return fecMeta{
		tag:     comm.Tag(int64(binary.LittleEndian.Uint64(b[0:]))),
		xid:     binary.LittleEndian.Uint64(b[8:]),
		size:    int(binary.LittleEndian.Uint32(b[16:])),
		plen:    int(binary.LittleEndian.Uint32(b[20:])),
		hasData: b[24]&flagHasData != 0,
	}
}

// encodeFecParityHdr builds the fixed prefix of a parity frame whose
// variable part (roster + parity bytes) totals payloadLen bytes.
func encodeFecParityHdr(gid uint64, k, m, idx int, crc uint32, payloadLen int) []byte {
	b := appendHeader(make([]byte, 0, 5+fecParityFixed), frameFecParity, fecParityFixed+payloadLen)
	b = binary.LittleEndian.AppendUint64(b, gid)
	b = append(b, byte(k), byte(m), byte(idx))
	return binary.LittleEndian.AppendUint32(b, crc)
}

// encodeFecAck builds the group-delivered acknowledgement.
func encodeFecAck(gid uint64) []byte {
	b := appendHeader(make([]byte, 0, 13), frameFecAck, 8)
	return binary.LittleEndian.AppendUint64(b, gid)
}

// encodeFecDead builds the sender's give-up tombstone with the group
// roster so the receiver can fail members it never saw.
func encodeFecDead(gid uint64, attempts int, metas []fecMeta) []byte {
	n := fecDeadFixed + len(metas)*fecMetaLen
	b := appendHeader(make([]byte, 0, 5+n), frameFecDead, n)
	b = binary.LittleEndian.AppendUint64(b, gid)
	b = binary.LittleEndian.AppendUint32(b, uint32(attempts))
	b = append(b, byte(len(metas)))
	for _, m := range metas {
		b = appendFecMeta(b, m)
	}
	return b
}

// encodeCTS builds a clear-to-send grant for the given transfer.
func encodeCTS(xid uint64) []byte {
	b := appendHeader(make([]byte, 0, 13), frameCTS, 8)
	return binary.LittleEndian.AppendUint64(b, xid)
}

// encodeDataHdr builds the header of a rendezvous payload frame.
func encodeDataHdr(xid uint64, payloadLen int) []byte {
	b := appendHeader(make([]byte, 0, 13), frameData, 8+payloadLen)
	return binary.LittleEndian.AppendUint64(b, xid)
}

// encodeCommit builds a control-plane commit notice.
func encodeCommit(seq int, survivors []bool) []byte {
	b := appendHeader(make([]byte, 0, 5+12+len(survivors)), frameCommit, 12+len(survivors))
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(seq)))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(survivors)))
	for _, s := range survivors {
		if s {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

// encodeBye builds the clean-shutdown frame.
func encodeBye() []byte {
	return appendHeader(make([]byte, 0, 5), frameBye, 0)
}
