package nettransport

import (
	"encoding/binary"

	"adapt/internal/comm"
)

// Wire format: every frame is a 4-byte little-endian length prefix (the
// byte count of everything after the prefix) followed by a 1-byte frame
// type and a type-specific body. Fixed-width fields are little-endian.
//
//	ident   u32 rank                                  — first frame on a dialed conn
//	eager   i64 tag, u64 xid, u32 size, u8 flags, payload
//	rts     i64 tag, u64 xid, u32 size, u8 flags      — rendezvous announcement
//	cts     u64 xid                                   — clear-to-send grant
//	data    u64 xid, payload                          — rendezvous payload
//	commit  i64 seq, u32 n, n×u8 survivors            — control-plane commit fan-out
//	bye     (empty)                                   — clean shutdown; EOF after it is not a death
//
// The xid is a sender-local transfer id: it pairs a data frame (or grant)
// with the announcement that created it, bypassing tag matching for the
// second half of a rendezvous. flags bit 0 records whether the message
// carries real bytes — a payload-elided comm.Msg travels as a zero-byte
// payload with the logical size in the header, and must come back out as
// an elided Msg on the receiver.
const (
	frameIdent = byte(iota)
	frameEager
	frameRTS
	frameCTS
	frameData
	frameCommit
	frameBye
)

const (
	flagHasData = 1 << 0

	// eagerHdrLen is the fixed body length of eager/rts frames before the
	// payload: tag(8) + xid(8) + size(4) + flags(1).
	eagerHdrLen = 21

	// maxFrameBody bounds a frame body read from the wire; anything larger
	// is a corrupt or hostile stream, not a legal message (the pool's
	// largest class is 64 MB and collectives segment well below that).
	maxFrameBody = 1 << 30
)

// appendHeader writes the length prefix and type for a body of n bytes.
func appendHeader(dst []byte, ftype byte, n int) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n+1))
	return append(dst, ftype)
}

// encodeIdent builds the mesh handshake frame announcing the dialer's rank.
func encodeIdent(rank int) []byte {
	b := appendHeader(make([]byte, 0, 9), frameIdent, 4)
	return binary.LittleEndian.AppendUint32(b, uint32(rank))
}

// encodeEagerHdr builds the header of an eager or rts frame; payloadLen is
// the byte count that will follow (always 0 for rts).
func encodeEagerHdr(ftype byte, tag comm.Tag, xid uint64, size, payloadLen int, hasData bool) []byte {
	b := appendHeader(make([]byte, 0, 5+eagerHdrLen), ftype, eagerHdrLen+payloadLen)
	b = binary.LittleEndian.AppendUint64(b, uint64(tag))
	b = binary.LittleEndian.AppendUint64(b, xid)
	b = binary.LittleEndian.AppendUint32(b, uint32(size))
	var flags byte
	if hasData {
		flags |= flagHasData
	}
	return append(b, flags)
}

// encodeCTS builds a clear-to-send grant for the given transfer.
func encodeCTS(xid uint64) []byte {
	b := appendHeader(make([]byte, 0, 13), frameCTS, 8)
	return binary.LittleEndian.AppendUint64(b, xid)
}

// encodeDataHdr builds the header of a rendezvous payload frame.
func encodeDataHdr(xid uint64, payloadLen int) []byte {
	b := appendHeader(make([]byte, 0, 13), frameData, 8+payloadLen)
	return binary.LittleEndian.AppendUint64(b, xid)
}

// encodeCommit builds a control-plane commit notice.
func encodeCommit(seq int, survivors []bool) []byte {
	b := appendHeader(make([]byte, 0, 5+12+len(survivors)), frameCommit, 12+len(survivors))
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(seq)))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(survivors)))
	for _, s := range survivors {
		if s {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

// encodeBye builds the clean-shutdown frame.
func encodeBye() []byte {
	return appendHeader(make([]byte, 0, 5), frameBye, 0)
}
