package nettransport

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"

	"adapt/internal/comm"
	"adapt/internal/perf"
	"adapt/internal/progress"
)

// Readiness-driven frame decoding. Instead of a blocking reader
// goroutine per peer, every connection carries an incremental decoder
// (connState) that a single I/O loop feeds whenever the socket is
// readable — epoll on Linux (ioloop_linux.go), a goroutine-per-conn
// fallback elsewhere (ioloop_other.go). The decoder is a resumable state
// machine over a small staging buffer:
//
//	stageHdr     waiting for the 4-byte length prefix + 1-byte type
//	stageFixed   waiting for the frame type's fixed fields
//	stagePayload waiting for the variable payload
//
// The payload stage is where the zero-copy eager path lives: once the
// fixed header names the payload length, the pooled destination buffer is
// allocated immediately, whatever bytes are already staged are copied
// once, and every subsequent socket read for that frame lands DIRECTLY in
// the pooled buffer — the very buffer a matched receive gets as its
// Msg.Data. Payload bytes therefore cross from kernel to receiver with at
// most one copy (the staged prefix), and none at match time.

// ioLoop is the platform readiness driver; see ioloop_linux.go and
// ioloop_other.go for the two implementations.
type ioLoop interface {
	// stop terminates the loop and waits for it to exit. After stop
	// returns no connection is being read, so the caller may close the
	// underlying descriptors.
	stop()
}

// Decoder stages.
const (
	stageHdr = iota
	stageFixed
	stagePayload
)

// connState is one peer connection plus its resumable decoder state.
// All decoder fields are owned by the I/O loop goroutine.
type connState struct {
	rank int
	conn net.Conn

	// Linux readiness loop only: a dup of the socket (sharing the file
	// description, which is non-blocking at OS level) used for raw epoll
	// reads while conn keeps its Go-blocking write semantics. The *os.File
	// must stay referenced or its finalizer closes the fd.
	file interface{ Close() error }
	fd   int

	buf  []byte // staging buffer
	r, w int    // unparsed staged bytes live in buf[r:w]

	stage   int
	ftype   byte
	body    int // total body bytes (everything after the length prefix)
	fixed   int // fixed-field byte count for ftype
	tag     comm.Tag
	xid     uint64
	msize   int
	hasData bool
	seq     int
	crc     uint32 // eager/fecpar payload checksum as claimed by the sender
	gid     uint64 // fec group id (fecpar/fecack/fecdead)
	gk      int    // fec group size k
	gm      int    // fec parity count m
	gidx    int    // fec parity shard index
	gatt    int    // fecdead: attempts spent before the give-up

	payload  []byte // destination for stagePayload; pooled for eager/data
	pooledPl bool
	plen     int
	got      int

	draining bool // Bye seen: discard everything until EOF
	dead     bool // deregistered from the loop
}

func newConnState(rank int, conn net.Conn) *connState {
	return &connState{rank: rank, conn: conn, fd: -1, buf: make([]byte, 64*1024)}
}

// midFrame reports whether the decoder is inside a frame — the
// distinction between a connection cut between frames (io.EOF) and one
// cut inside a frame (io.ErrUnexpectedEOF).
func (cs *connState) midFrame() bool {
	return cs.stage != stageHdr || cs.r < cs.w
}

// wantDirect reports whether the next socket read should land straight
// in the payload buffer (staging drained, payload incomplete).
func (cs *connState) wantDirect() bool {
	return cs.stage == stagePayload && cs.r == cs.w && cs.got < cs.plen
}

// directDst returns the remaining payload window for a direct read.
func (cs *connState) directDst() []byte { return cs.payload[cs.got:cs.plen] }

// advanceDirect accounts n bytes read directly into the payload and
// finishes the frame when it completes.
func (c *Comm) advanceDirect(cs *connState, n int) error {
	cs.got += n
	if cs.got < cs.plen {
		return nil
	}
	return c.finishFrame(cs)
}

// drainStaged parses as many complete frames as the staging buffer
// holds, dispatching each. Returns a protocol error that must kill the
// connection, or nil to wait for more bytes.
func (c *Comm) drainStaged(cs *connState) error {
	for {
		if cs.draining {
			cs.r, cs.w = 0, 0
			return nil
		}
		switch cs.stage {
		case stageHdr:
			if cs.w-cs.r < 5 {
				cs.compact()
				return nil
			}
			n := int(binary.LittleEndian.Uint32(cs.buf[cs.r:]))
			if n < 1 || n > maxFrameBody {
				return fmt.Errorf("nettransport: frame body %d bytes out of range", n)
			}
			cs.ftype = cs.buf[cs.r+4]
			cs.r += 5
			cs.body = n - 1
			perf.RecordNetFrameIn(4 + n)
			if err := cs.classify(); err != nil {
				return err
			}
			cs.stage = stageFixed
		case stageFixed:
			if cs.w-cs.r < cs.fixed {
				cs.compact()
				return nil
			}
			if err := c.parseFixed(cs); err != nil {
				return err
			}
			if cs.stage == stagePayload {
				// Copy whatever payload is already staged; the rest arrives by
				// direct reads into the pooled buffer.
				n := copy(cs.payload[cs.got:cs.plen], cs.buf[cs.r:cs.w])
				cs.r += n
				cs.got += n
				if cs.got < cs.plen {
					cs.compact()
					return nil
				}
				if err := c.finishFrame(cs); err != nil {
					return err
				}
			}
		default: // stagePayload with staged bytes (next frames behind a direct read)
			n := copy(cs.payload[cs.got:cs.plen], cs.buf[cs.r:cs.w])
			cs.r += n
			cs.got += n
			if cs.got < cs.plen {
				cs.compact()
				return nil
			}
			if err := c.finishFrame(cs); err != nil {
				return err
			}
		}
	}
}

// compact slides unparsed staged bytes to the buffer's front so the next
// read has room; the fixed decoder stages are all far smaller than the
// buffer, so a frame header can never fail to fit.
func (cs *connState) compact() {
	if cs.r == 0 {
		return
	}
	copy(cs.buf, cs.buf[cs.r:cs.w])
	cs.w -= cs.r
	cs.r = 0
}

// classify validates the frame type against its body length and sets the
// fixed-field byte count.
func (cs *connState) classify() error {
	switch cs.ftype {
	case frameIdent:
		if cs.body != 4 {
			return fmt.Errorf("nettransport: frame body %d bytes, want %d", cs.body, 4)
		}
		cs.fixed = 4
	case frameEager, frameRTS:
		if cs.body < eagerHdrLen {
			return fmt.Errorf("nettransport: short %d-byte eager/rts frame", cs.body)
		}
		cs.fixed = eagerHdrLen
	case frameCTS:
		if cs.body != 8 {
			return fmt.Errorf("nettransport: frame body %d bytes, want %d", cs.body, 8)
		}
		cs.fixed = 8
	case frameData:
		if cs.body < 8 {
			return fmt.Errorf("nettransport: short %d-byte data frame", cs.body)
		}
		cs.fixed = 8
	case frameCommit:
		if cs.body < 12 {
			return fmt.Errorf("nettransport: short %d-byte commit frame", cs.body)
		}
		cs.fixed = 12
	case frameBye:
		if cs.body != 0 {
			return fmt.Errorf("nettransport: bye frame with %d-byte body", cs.body)
		}
		cs.fixed = 0
	case frameFecParity:
		if cs.body < fecParityFixed {
			return fmt.Errorf("nettransport: short %d-byte fec parity frame", cs.body)
		}
		cs.fixed = fecParityFixed
	case frameFecAck:
		if cs.body != 8 {
			return fmt.Errorf("nettransport: frame body %d bytes, want %d", cs.body, 8)
		}
		cs.fixed = 8
	case frameFecDead:
		if cs.body < fecDeadFixed {
			return fmt.Errorf("nettransport: short %d-byte fec tombstone", cs.body)
		}
		cs.fixed = fecDeadFixed
	default:
		return fmt.Errorf("nettransport: unknown frame type %d", cs.ftype)
	}
	return nil
}

// parseFixed decodes the staged fixed fields and either finishes the
// frame (no payload) or arms the payload stage.
func (c *Comm) parseFixed(cs *connState) error {
	fix := cs.buf[cs.r : cs.r+cs.fixed]
	cs.r += cs.fixed
	plen := cs.body - cs.fixed
	switch cs.ftype {
	case frameIdent:
		// Legal only as a connection's first frame, which the mesh
		// bootstrap consumes before the loop starts.
		return io.ErrUnexpectedEOF
	case frameEager, frameRTS:
		cs.tag = comm.Tag(int64(binary.LittleEndian.Uint64(fix[0:])))
		cs.xid = binary.LittleEndian.Uint64(fix[8:])
		cs.msize = int(binary.LittleEndian.Uint32(fix[16:]))
		cs.hasData = fix[20]&flagHasData != 0
		cs.crc = binary.LittleEndian.Uint32(fix[21:])
		if cs.ftype == frameRTS && plen != 0 {
			return fmt.Errorf("nettransport: rts frame with %d payload bytes", plen)
		}
		if plen > 0 {
			cs.armPayload(comm.GetBuf(plen), true, plen)
			return nil
		}
		return c.finishFrame(cs)
	case frameFecParity:
		cs.gid = binary.LittleEndian.Uint64(fix[0:])
		cs.gk = int(fix[8])
		cs.gm = int(fix[9])
		cs.gidx = int(fix[10])
		cs.crc = binary.LittleEndian.Uint32(fix[11:])
		if plen < cs.gk*fecMetaLen || cs.gidx >= cs.gm {
			return fmt.Errorf("nettransport: malformed fec parity frame (k=%d m=%d idx=%d body=%d)",
				cs.gk, cs.gm, cs.gidx, cs.body)
		}
		if plen > 0 {
			cs.armPayload(comm.GetBuf(plen), true, plen)
			return nil
		}
		return c.finishFrame(cs)
	case frameFecAck:
		cs.gid = binary.LittleEndian.Uint64(fix[0:])
		return c.finishFrame(cs)
	case frameFecDead:
		cs.gid = binary.LittleEndian.Uint64(fix[0:])
		cs.gatt = int(binary.LittleEndian.Uint32(fix[8:]))
		cs.gk = int(fix[12])
		if plen != cs.gk*fecMetaLen {
			return fmt.Errorf("nettransport: fec tombstone roster %d bytes for k=%d", plen, cs.gk)
		}
		if plen > 0 {
			cs.armPayload(make([]byte, plen), false, plen)
			return nil
		}
		return c.finishFrame(cs)
	case frameCTS:
		cs.xid = binary.LittleEndian.Uint64(fix[:])
		return c.finishFrame(cs)
	case frameData:
		cs.xid = binary.LittleEndian.Uint64(fix[:])
		if plen > 0 {
			cs.armPayload(comm.GetBuf(plen), true, plen)
			return nil
		}
		return c.finishFrame(cs)
	case frameCommit:
		cs.seq = int(int64(binary.LittleEndian.Uint64(fix[0:])))
		cnt := int(binary.LittleEndian.Uint32(fix[8:]))
		if cnt != plen {
			return fmt.Errorf("nettransport: commit mask %d entries in %d-byte body", cnt, plen+12)
		}
		if plen > 0 {
			cs.armPayload(make([]byte, plen), false, plen)
			return nil
		}
		return c.finishFrame(cs)
	default: // frameBye
		return c.finishFrame(cs)
	}
}

func (cs *connState) armPayload(dst []byte, pooled bool, plen int) {
	cs.payload, cs.pooledPl, cs.plen, cs.got = dst, pooled, plen, 0
	cs.stage = stagePayload
}

// finishFrame dispatches a fully decoded frame to the matching engine
// (or the rendezvous/control handlers) and resets the decoder. Runs on
// the I/O loop goroutine; payload ownership transfers here.
func (c *Comm) finishFrame(cs *connState) error {
	ftype := cs.ftype
	payload := cs.payload
	cs.payload, cs.pooledPl, cs.plen, cs.got = nil, false, 0, 0
	cs.stage = stageHdr
	switch ftype {
	case frameEager:
		if crc32.ChecksumIEEE(payload) != cs.crc {
			// Damaged in flight: discard at the checksum. Corruption becomes
			// detected loss — repaired by the FEC layer's parity (or the
			// sender's group-resend timer), never delivered.
			if payload != nil {
				comm.PutBuf(payload)
			}
			perf.RecordFaultCorrupt()
			return nil
		}
		if c.fecRx != nil {
			c.fecRx.onEager(cs.rank, cs.tag, cs.xid, cs.msize, cs.hasData, payload)
			return nil
		}
		msg := comm.Msg{Size: cs.msize}
		if cs.hasData {
			if payload == nil {
				payload = []byte{} // zero-byte payload, not elided
			}
			msg.Data = payload
			if len(msg.Data) != cs.msize {
				msg.Data = msg.Data[:cs.msize]
			}
		} else if payload != nil {
			comm.PutBuf(payload)
		}
		c.eng.Arrive(&progress.Env{Src: cs.rank, Tag: cs.tag, Msg: msg,
			HasData: cs.hasData, Xid: cs.xid})
	case frameRTS:
		c.eng.Arrive(&progress.Env{Src: cs.rank, Tag: cs.tag,
			Msg: comm.Msg{Size: cs.msize}, Rdv: true, HasData: cs.hasData, Xid: cs.xid})
	case frameCTS:
		c.onCTS(cs.rank, cs.xid)
	case frameData:
		c.onData(cs.rank, cs.xid, payload)
	case frameCommit:
		survivors := make([]bool, len(payload))
		for i, v := range payload {
			survivors[i] = v != 0
		}
		c.pushNotice(comm.Notice{Kind: comm.NoticeCommit, Seq: cs.seq, Survivors: survivors})
	case frameFecParity:
		if c.fecRx == nil || crc32.ChecksumIEEE(payload) != cs.crc {
			// No FEC armed here, or the parity itself arrived damaged: a
			// lost shard, same as a dropped one.
			if payload != nil {
				comm.PutBuf(payload)
				if c.fecRx != nil {
					perf.RecordFaultCorrupt()
				}
			}
			return nil
		}
		c.fecRx.onParity(cs.rank, cs.gid, cs.gk, cs.gm, cs.gidx, payload)
	case frameFecAck:
		if c.fecTx != nil {
			c.fecTx.onAck(cs.gid)
		}
	case frameFecDead:
		if c.fecRx != nil {
			c.fecRx.onDead(cs.rank, cs.gid, cs.gatt, payload)
		}
	case frameBye:
		// Clean shutdown: keep reading to EOF so the kernel can reclaim the
		// socket, but never treat what follows as a death.
		cs.draining = true
		cs.r, cs.w = 0, 0
	}
	return nil
}

// abort releases decoder resources when the connection dies mid-frame
// and marks it deregistered.
func (cs *connState) abort() {
	if cs.payload != nil && cs.pooledPl {
		comm.PutBuf(cs.payload)
	}
	cs.payload = nil
	cs.pooledPl = false
	cs.dead = true
}

// ioError surfaces a connection failure observed by the I/O loop. During
// local teardown losses are expected and silent; otherwise the failure
// detector takes over.
func (c *Comm) ioError(cs *connState, err error) {
	if c.isClosed() {
		return
	}
	c.peerLost(cs.rank, err)
}

// eofError classifies an EOF for the detector: clean boundary or
// truncated frame.
func (cs *connState) eofError() error {
	if cs.midFrame() {
		return io.ErrUnexpectedEOF
	}
	return io.EOF
}
