package nettransport

import (
	"bytes"
	"errors"
	"testing"

	"adapt/internal/comm"
	"adapt/internal/core"
	"adapt/internal/faults"
	"adapt/internal/trees"
)

// TestCrashNonRootHeals kills the mid-tree forwarder (rank 2 in Binomial(4,0)); the survivors must finish
// the FT broadcast with identical payloads and agree on the survivor set.
func TestCrashNonRootHeals(t *testing.T) {
	const n, size = 4, 48 * 1024
	w := newTestWorld(t, n, WithCrashes([]faults.Crash{{Rank: 2, AfterSends: 1}}))
	binom := trees.Binomial(n, 0)
	opt := core.Options{SegSize: 8 * 1024}
	src := fill(size, 77)
	outs := make([][]byte, n)
	masks := make([][]bool, n)
	errs := make([]error, n)
	w.Run(func(c *Comm) {
		in := comm.Sized(size)
		if c.Rank() == 0 {
			in = comm.Bytes(append([]byte(nil), src...))
		}
		res := core.BcastFT(c, binom, in, opt)
		errs[c.Rank()] = res.Err
		masks[c.Rank()] = res.Survivors
		if res.Msg.Data != nil {
			outs[c.Rank()] = append([]byte(nil), res.Msg.Data...)
		}
	})
	crashed := w.Crashed()
	if !crashed[2] {
		t.Fatal("rank 2 did not crash")
	}
	for r := 0; r < n; r++ {
		if r == 2 {
			continue
		}
		if errs[r] != nil {
			t.Fatalf("survivor %d: %v", r, errs[r])
		}
		if !bytes.Equal(outs[r], src) {
			t.Errorf("survivor %d: payload diverged", r)
		}
		if masks[r] == nil || masks[r][2] || !masks[r][0] {
			t.Errorf("survivor %d: mask %v", r, masks[r])
		}
	}
}

// TestCrashDeadRootStructuredError kills the root before it sends
// anything: every survivor must return a structured RankFailedError —
// no hang, no panic.
func TestCrashDeadRootStructuredError(t *testing.T) {
	const n, size = 4, 16 * 1024
	w := newTestWorld(t, n, WithCrashes([]faults.Crash{{Rank: 0, AfterSends: 0}}))
	binom := trees.Binomial(n, 0)
	opt := core.Options{SegSize: 8 * 1024}
	errs := make([]error, n)
	w.Run(func(c *Comm) {
		in := comm.Sized(size)
		if c.Rank() == 0 {
			in = comm.Bytes(fill(size, 5))
		}
		res := core.BcastFT(c, binom, in, opt)
		errs[c.Rank()] = res.Err
	})
	if !w.Crashed()[0] {
		t.Fatal("root did not crash")
	}
	for r := 1; r < n; r++ {
		var rf *faults.RankFailedError
		if !errors.As(errs[r], &rf) {
			t.Fatalf("survivor %d: got %v, want *faults.RankFailedError", r, errs[r])
		}
		if rf.Rank != 0 || rf.Kind != comm.KindBcast {
			t.Errorf("survivor %d: structured error names rank %d kind %v", r, rf.Rank, rf.Kind)
		}
	}
}

// TestCrashFailsPendingRendezvous: a live sender parked in a rendezvous
// handshake with a crashing peer must fail with a structured
// TimeoutError, not hang.
func TestCrashFailsPendingRendezvous(t *testing.T) {
	const n = 2
	// Rank 1 dies on its first send initiation; rank 0's rendezvous send
	// to it is already announced and waiting for a grant that never comes.
	w := newTestWorld(t, n, WithCrashes([]faults.Crash{{Rank: 1, AfterSends: 0}}))
	tag := comm.MakeTag(comm.KindP2P, 1, 0)
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			st := c.Wait(c.Isend(1, tag, comm.Bytes(fill(DefaultEagerLimit*2, 1))))
			var te *faults.TimeoutError
			if !errors.As(st.Err, &te) {
				t.Errorf("rendezvous to dead peer: got %v, want *faults.TimeoutError", st.Err)
			}
		case 1:
			// Crash point: this Isend initiation kills the rank before any
			// frame leaves. Rank 0's RTS is never granted.
			c.Isend(0, tag, comm.Bytes([]byte{1}))
			t.Error("rank 1 survived its crash point")
		}
	})
	if !w.Crashed()[1] {
		t.Fatal("rank 1 did not crash")
	}
}
