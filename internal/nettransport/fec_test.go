package nettransport

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"adapt/internal/comm"
	"adapt/internal/faults"
	"adapt/internal/fec"
)

func ptag(i int) comm.Tag { return comm.MakeTag(comm.KindP2P, 0, i) }

// netRec tunes the group-resend backstop for real loopback TCP: the ack
// must comfortably beat the first timer on a loaded CI host.
func netRec() faults.Recovery {
	return faults.Recovery{RTO: 100 * time.Millisecond, MaxAttempts: 10}.Normalized()
}

func netPayload(i int) []byte {
	b := make([]byte, 56+i%9)
	for j := range b {
		b[j] = byte(i*13 + j)
	}
	return b
}

func fecWorld(t *testing.T, plan string, rec faults.Recovery, cfg fec.Config) *LocalWorld {
	t.Helper()
	w, err := NewLocalWorld(2, WithChaos(faults.MustParsePlan(plan), rec), WithFEC(cfg))
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	return w.WithRunTimeout(30 * time.Second)
}

// Within-parity losses on the socket transport repair with zero
// retransmissions: the receiver reconstructs from parity and its ack
// beats the sender's group-resend timer. Drop and corrupt rules are
// equivalent detected losses (corrupt frames actually fly and die at
// the CRC).
func TestNetFECZeroRetransmitWithinParity(t *testing.T) {
	for _, tc := range []struct {
		name, plan string
	}{
		{"drop", "seed=%d; link 0->1: drop=0.12"},
		{"corrupt", "seed=%d; link 0->1: corrupt=0.12"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			exercised := false
			for seed := 1; seed <= 8; seed++ {
				plan := fmt.Sprintf(tc.plan, seed)
				w := fecWorld(t, plan, netRec(), fec.Config{K: 4, M: 2})
				var mu sync.Mutex
				received := 0
				w.Run(func(c *Comm) {
					switch c.Rank() {
					case 0:
						for i := 0; i < 32; i++ {
							c.Send(1, ptag(i), comm.Bytes(netPayload(i)))
						}
					case 1:
						for i := 0; i < 32; i++ {
							st := c.Recv(0, ptag(i))
							if st.Err != nil {
								t.Errorf("seed %d segment %d failed: %v", seed, i, st.Err)
								continue
							}
							if !bytes.Equal(st.Msg.Data, netPayload(i)) {
								t.Errorf("seed %d segment %d corrupted", seed, i)
							}
							mu.Lock()
							received++
							mu.Unlock()
						}
					}
				})
				st, fs := w.FaultStats(), w.FECStats()
				w.Close()
				if received != 32 {
					t.Fatalf("seed %d: received %d of 32", seed, received)
				}
				if fs.GroupsLost == 0 && st.Retries != 0 {
					t.Fatalf("seed %d: %d retries with every group repaired (faults %v, fec %+v)",
						seed, st.Retries, st, fs)
				}
				if st.Drops+st.Corrupts > 0 && fs.Reconstructed > 0 && st.Retries == 0 {
					exercised = true
				}
			}
			if !exercised {
				t.Fatal("no seed exercised the zero-retransmit repair path")
			}
		})
	}
}

// Loss beyond the parity budget falls back to the sender's group-resend
// timer: the stream still completes, paying retransmit round trips, and
// the lost-group counter shows the ARQ path ran.
func TestNetFECLossBeyondParityFallsBackToResend(t *testing.T) {
	w := fecWorld(t, "seed=4; link 0->1: drop=0.7",
		faults.Recovery{RTO: 30 * time.Millisecond, MaxAttempts: 12}.Normalized(),
		fec.Config{K: 4, M: 1})
	defer w.Close()
	var mu sync.Mutex
	received := 0
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			for i := 0; i < 16; i++ {
				c.Send(1, ptag(i), comm.Bytes(netPayload(i)))
			}
		case 1:
			for i := 0; i < 16; i++ {
				st := c.Recv(0, ptag(i))
				if st.Err != nil {
					t.Errorf("segment %d failed: %v", i, st.Err)
					continue
				}
				if !bytes.Equal(st.Msg.Data, netPayload(i)) {
					t.Errorf("segment %d corrupted", i)
				}
				mu.Lock()
				received++
				mu.Unlock()
			}
		}
	})
	if received != 16 {
		t.Fatalf("received %d of 16", received)
	}
	st, fs := w.FaultStats(), w.FECStats()
	if fs.GroupsLost == 0 {
		t.Fatalf("70%% drop with m=1 never outran the parity: %+v", fs)
	}
	if st.Retries == 0 {
		t.Fatalf("lost groups never resent: faults %v, fec %+v", st, fs)
	}
}

// A black-holed link exhausts the resend budget: the sender tombstones
// the group and the receiver's matched recv fails with the structured
// *faults.TimeoutError — no hang, no silent loss.
func TestNetFECExhaustedAttemptsFailStructured(t *testing.T) {
	w := fecWorld(t, "seed=1; link 0->1: drop=1",
		faults.Recovery{RTO: 5 * time.Millisecond, MaxAttempts: 3}.Normalized(),
		fec.Config{K: 2, M: 1})
	defer w.Close()
	var recvErr error
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, ptag(0), comm.Bytes(netPayload(0)))
			c.Send(1, ptag(1), comm.Bytes(netPayload(1)))
		case 1:
			st := c.Recv(0, ptag(0))
			recvErr = st.Err
			c.Recv(0, ptag(1))
		}
	})
	if recvErr == nil {
		t.Fatal("black-holed stream delivered (or hung) instead of failing")
	}
	var te *faults.TimeoutError
	if !errors.As(recvErr, &te) {
		t.Fatalf("error is %T, want *faults.TimeoutError", recvErr)
	}
	if te.Rank != 0 || te.Peer != 1 || te.Tag != ptag(0) {
		t.Fatalf("timeout misdescribes the loss: %+v", te)
	}
	if fs := w.FECStats(); fs.GroupsLost == 0 {
		t.Fatalf("total loss never recorded a lost group: %+v", fs)
	}
}

// Duplicated frames (dup verdicts and whole-group resends) must be
// invisible: the per-sender xid set suppresses second copies.
func TestNetFECDuplicatesSuppressed(t *testing.T) {
	w := fecWorld(t, "seed=7; link 0->1: drop=0.2, dup=0.4", netRec(),
		fec.Config{K: 4, M: 2})
	defer w.Close()
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			for i := 0; i < 24; i++ {
				c.Send(1, ptag(i), comm.Bytes(netPayload(i)))
			}
		case 1:
			for i := 0; i < 24; i++ {
				st := c.Recv(0, ptag(i))
				if st.Err != nil {
					t.Errorf("segment %d failed: %v", i, st.Err)
					continue
				}
				if !bytes.Equal(st.Msg.Data, netPayload(i)) {
					t.Errorf("segment %d corrupted", i)
				}
			}
			if _, leaked := c.Iprobe(comm.AnySource, comm.AnyTag); leaked {
				t.Error("duplicate copy leaked into the unexpected queue")
			}
		}
	})
	if w.FaultStats().Dups == 0 {
		t.Fatal("dup rule never fired")
	}
}

// Elided payloads (Sized messages) group, repair, and deliver with their
// logical size intact.
func TestNetFECElidedPayloads(t *testing.T) {
	w := fecWorld(t, "seed=9; link 0->1: drop=0.25", netRec(), fec.Config{K: 4, M: 2})
	defer w.Close()
	var mu sync.Mutex
	received := 0
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			for i := 0; i < 20; i++ {
				c.Send(1, ptag(i), comm.Sized(512))
			}
		case 1:
			for i := 0; i < 20; i++ {
				st := c.Recv(0, ptag(i))
				if st.Err != nil {
					t.Errorf("segment %d failed: %v", i, st.Err)
					continue
				}
				if st.Msg.Size != 512 || st.Msg.Data != nil {
					t.Errorf("segment %d: size %d data %v", i, st.Msg.Size, st.Msg.Data != nil)
				}
				mu.Lock()
				received++
				mu.Unlock()
			}
		}
	})
	if received != 20 {
		t.Fatalf("received %d of 20", received)
	}
}
