package nettransport

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"testing"
	"time"

	"adapt/internal/coll"
	"adapt/internal/comm"
	"adapt/internal/core"
	"adapt/internal/trees"
)

const testTimeout = 30 * time.Second

func newTestWorld(t *testing.T, n int, opts ...Option) *LocalWorld {
	t.Helper()
	w, err := NewLocalWorld(n, opts...)
	if err != nil {
		t.Fatalf("NewLocalWorld(%d): %v", n, err)
	}
	t.Cleanup(w.Close)
	return w.WithRunTimeout(testTimeout)
}

func fill(n int, salt byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*7 + salt
	}
	return b
}

// lattice mirrors internal/conform's reduction inputs: float64 small
// integers whose sums are exact, so byte comparison is well-defined.
func lattice(rank, size int) []byte {
	b := make([]byte, size)
	for i := 0; i < size/8; i++ {
		v := float64((rank*31 + i) % 17)
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
	return b
}

// latticeSum is the expected allreduce result over n rank lattices.
func latticeSum(n, size int) []byte {
	b := make([]byte, size)
	for i := 0; i < size/8; i++ {
		var s float64
		for r := 0; r < n; r++ {
			s += float64((r*31 + i) % 17)
		}
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(s))
	}
	return b
}

func TestEagerSendRecv(t *testing.T) {
	w := newTestWorld(t, 2)
	payload := fill(1024, 3)
	tag := comm.MakeTag(comm.KindP2P, 0, 0)
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, tag, comm.Bytes(payload))
		case 1:
			st := c.Recv(0, tag)
			if st.Err != nil {
				t.Errorf("recv: %v", st.Err)
			}
			if st.Source != 0 || st.Tag != tag {
				t.Errorf("recv status src=%d tag=%v", st.Source, st.Tag)
			}
			if !bytes.Equal(st.Msg.Data, payload) {
				t.Error("payload corrupted in flight")
			}
		}
	})
}

func TestRendezvousSendRecv(t *testing.T) {
	w := newTestWorld(t, 2)
	payload := fill(DefaultEagerLimit*4, 9) // well above the eager limit
	tag := comm.MakeTag(comm.KindP2P, 1, 0)
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			// Post the recv late so the RTS parks in the unexpected queue.
			time.Sleep(5 * time.Millisecond)
			st := c.Recv(1, tag)
			if !bytes.Equal(st.Msg.Data, payload) {
				t.Error("rendezvous payload corrupted")
			}
		case 1:
			buf := append([]byte(nil), payload...)
			c.Send(0, tag, comm.Bytes(buf))
			// The blocking send implies the receiver matched: scribbling on
			// the buffer now must not corrupt what was delivered.
			for i := range buf {
				buf[i] = 0xFF
			}
		}
	})
}

// TestEagerBoundary sends exactly DefaultEagerLimit bytes (the largest
// eager message) and one byte more (the smallest rendezvous message):
// both must arrive intact, whichever protocol carries them.
func TestEagerBoundary(t *testing.T) {
	for _, sz := range []int{DefaultEagerLimit, DefaultEagerLimit + 1} {
		sz := sz
		t.Run(fmt.Sprintf("size%d", sz), func(t *testing.T) {
			w := newTestWorld(t, 2)
			payload := fill(sz, byte(sz))
			tag := comm.MakeTag(comm.KindP2P, 2, 0)
			w.Run(func(c *Comm) {
				switch c.Rank() {
				case 0:
					c.Send(1, tag, comm.Bytes(payload))
				case 1:
					st := c.Recv(0, tag)
					if !bytes.Equal(st.Msg.Data, payload) {
						t.Errorf("size %d corrupted", sz)
					}
				}
			})
		})
	}
}

func TestZeroSizeAndElided(t *testing.T) {
	w := newTestWorld(t, 2)
	tagZ := comm.MakeTag(comm.KindP2P, 3, 0)
	tagE := comm.MakeTag(comm.KindP2P, 3, 1)
	tagR := comm.MakeTag(comm.KindP2P, 3, 2)
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, tagZ, comm.Msg{})                      // zero-size
			c.Send(1, tagE, comm.Sized(4096))                // elided eager
			c.Send(1, tagR, comm.Sized(DefaultEagerLimit*2)) // elided rendezvous
		case 1:
			if st := c.Recv(0, tagZ); st.Msg.Size != 0 || st.Msg.Elided() {
				t.Errorf("zero-size came back %v", st.Msg)
			}
			if st := c.Recv(0, tagE); !st.Msg.Elided() || st.Msg.Size != 4096 {
				t.Errorf("elided eager came back %v", st.Msg)
			}
			if st := c.Recv(0, tagR); !st.Msg.Elided() || st.Msg.Size != DefaultEagerLimit*2 {
				t.Errorf("elided rendezvous came back %v", st.Msg)
			}
		}
	})
}

func TestAnySourceAndProbe(t *testing.T) {
	w := newTestWorld(t, 3)
	tag := comm.MakeTag(comm.KindP2P, 4, 0)
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			seen := map[int]bool{}
			for i := 0; i < 2; i++ {
				st := c.Recv(comm.AnySource, tag)
				seen[st.Source] = true
			}
			if !seen[1] || !seen[2] {
				t.Errorf("AnySource saw %v", seen)
			}
		default:
			c.Send(0, tag, comm.Bytes([]byte{byte(c.Rank())}))
		}
	})
}

func TestCallbacksAndWaitAny(t *testing.T) {
	w := newTestWorld(t, 2)
	tag := func(seg int) comm.Tag { return comm.MakeTag(comm.KindP2P, 5, seg) }
	const k = 8
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			fired := 0
			var reqs []comm.Request
			for i := 0; i < k; i++ {
				r := c.Irecv(1, tag(i))
				c.OnComplete(r, func(comm.Status) { fired++ })
				reqs = append(reqs, r)
			}
			c.WaitAll(reqs)
			if fired != k {
				t.Errorf("callbacks fired %d of %d", fired, k)
			}
		case 1:
			var reqs []comm.Request
			for i := 0; i < k; i++ {
				reqs = append(reqs, c.Isend(0, tag(i), comm.Bytes(fill(512, byte(i)))))
			}
			for len(reqs) > 0 {
				i, _ := c.WaitAny(reqs)
				reqs = append(reqs[:i], reqs[i+1:]...)
			}
		}
	})
}

func TestCollectivesOnTCP(t *testing.T) {
	const n, size = 4, 64 * 1024
	w := newTestWorld(t, n)
	binom := trees.Binomial(n, 0)
	opt := core.Options{SegSize: 8 * 1024, Seq: 7}

	src := fill(size, 42)
	t.Run("bcast", func(t *testing.T) {
		w.Run(func(c *Comm) {
			in := comm.Sized(size)
			if c.Rank() == 0 {
				in = comm.Bytes(append([]byte(nil), src...))
			}
			out := core.Bcast(c, binom, in, opt)
			if !bytes.Equal(out.Data, src) {
				t.Errorf("rank %d: bcast diverged", c.Rank())
			}
		})
	})

	opt.Seq = 8
	t.Run("allreduce", func(t *testing.T) {
		w.Run(func(c *Comm) {
			in := lattice(c.Rank(), size)
			want := latticeSum(n, size)
			out := core.Allreduce(c, binom, comm.Bytes(in), opt)
			if !bytes.Equal(out.Data, want) {
				t.Errorf("rank %d: allreduce diverged", c.Rank())
			}
		})
	})

	opt.Seq = 9
	t.Run("barrier", func(t *testing.T) {
		w.Run(func(c *Comm) {
			coll.Barrier(c, opt.Seq)
		})
	})
}

func TestManySmallMessagesStress(t *testing.T) {
	const n, rounds = 3, 200
	w := newTestWorld(t, n)
	w.Run(func(c *Comm) {
		next := (c.Rank() + 1) % n
		prev := (c.Rank() + n - 1) % n
		for i := 0; i < rounds; i++ {
			tag := comm.MakeTag(comm.KindP2P, 6, i)
			r := c.Irecv(prev, tag)
			c.Send(next, tag, comm.Bytes([]byte{byte(i), byte(c.Rank())}))
			st := c.Wait(r)
			if st.Msg.Data[0] != byte(i) || st.Msg.Data[1] != byte(prev) {
				t.Errorf("rank %d round %d: got %v", c.Rank(), i, st.Msg.Data)
			}
		}
	})
}
