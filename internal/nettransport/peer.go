package nettransport

import (
	"bufio"
	"io"
	"net"
	"sync"

	"adapt/internal/comm"
	"adapt/internal/perf"
)

// outFrame is one queued wire frame: a pre-encoded header plus an
// optional payload written right behind it. pooled payloads are returned
// to the buffer pool after the write; done (if set) observes the write's
// outcome — it is how a rendezvous send completes only once its payload
// is actually on the wire.
type outFrame struct {
	hdr     []byte
	payload []byte
	pooled  bool
	done    func(error)
}

// peer is one bidirectional TCP connection to another rank. A dedicated
// writer goroutine drains an unbounded queue so that reader goroutines
// (which enqueue CTS grants and DATA frames) never block on a socket
// write — bounded per-peer queues could deadlock two ranks bulk-sending
// to each other in full duplex.
type peer struct {
	rank int
	c    *Comm
	conn net.Conn
	bw   *bufio.Writer

	qmu    sync.Mutex
	qcond  *sync.Cond
	queue  []outFrame
	closed bool  // writer drains what is queued, then stops
	dead   bool  // drop new frames: peer is gone or being torn down
	werr   error // first write error

	done chan struct{} // writer goroutine exited
}

func newPeer(c *Comm, rank int, conn net.Conn) *peer {
	p := &peer{rank: rank, c: c, conn: conn,
		bw: bufio.NewWriterSize(conn, 64*1024), done: make(chan struct{})}
	p.qcond = sync.NewCond(&p.qmu)
	return p
}

// start launches the writer and reader goroutines.
func (p *peer) start() {
	go p.writeLoop()
	go p.readLoop()
}

// enqueue hands a frame to the writer. Frames offered after the peer is
// dead or closing are dropped — their done hooks still run (with the
// recorded error) so a rendezvous send never silently leaks its request.
func (p *peer) enqueue(f outFrame) {
	p.qmu.Lock()
	if p.closed || p.dead {
		err := p.werr
		if err == nil {
			err = net.ErrClosed
		}
		p.qmu.Unlock()
		if f.pooled && f.payload != nil {
			comm.PutBuf(f.payload)
		}
		if f.done != nil {
			f.done(err)
		}
		return
	}
	p.queue = append(p.queue, f)
	p.qcond.Signal()
	p.qmu.Unlock()
}

// markDead flips the drop-frames switch (detector-confirmed death or
// abrupt local teardown) and wakes the writer so it can notice.
func (p *peer) markDead(err error) {
	p.qmu.Lock()
	p.dead = true
	if p.werr == nil {
		p.werr = err
	}
	p.qcond.Signal()
	p.qmu.Unlock()
}

// closeQueue asks the writer to drain what is queued and stop.
func (p *peer) closeQueue() {
	p.qmu.Lock()
	p.closed = true
	p.qcond.Signal()
	p.qmu.Unlock()
}

// writeLoop is the peer's single socket writer. It batches whatever is
// queued, writes it, flushes once the queue runs dry, and reports the
// first write error to the failure detector.
func (p *peer) writeLoop() {
	defer close(p.done)
	for {
		p.qmu.Lock()
		for len(p.queue) == 0 && !p.closed && !p.dead {
			p.qcond.Wait()
		}
		batch := p.queue
		p.queue = nil
		closing := p.closed
		dead := p.dead
		err := p.werr
		p.qmu.Unlock()

		for _, f := range batch {
			if err == nil && !dead {
				err = p.writeFrame(f)
				if err != nil {
					p.qmu.Lock()
					p.dead, dead = true, true
					if p.werr == nil {
						p.werr = err
					}
					p.qmu.Unlock()
					if !closing {
						p.c.peerLost(p.rank, err)
					}
				}
			} else {
				if f.pooled && f.payload != nil {
					comm.PutBuf(f.payload)
				}
				if f.done != nil {
					f.done(errOr(err, net.ErrClosed))
				}
			}
		}
		if err == nil && !dead {
			if ferr := p.bw.Flush(); ferr != nil {
				p.qmu.Lock()
				p.dead = true
				if p.werr == nil {
					p.werr = ferr
				}
				p.qmu.Unlock()
				if !closing {
					p.c.peerLost(p.rank, ferr)
				}
			}
		}
		if closing || dead {
			if err == nil && !dead {
				p.bw.Flush()
			}
			return
		}
	}
}

func errOr(err, fallback error) error {
	if err != nil {
		return err
	}
	return fallback
}

// writeFrame writes one frame and runs its completion hook.
func (p *peer) writeFrame(f outFrame) error {
	_, err := p.bw.Write(f.hdr)
	if err == nil && len(f.payload) > 0 {
		_, err = p.bw.Write(f.payload)
	}
	if err == nil {
		perf.RecordNetFrameOut(len(f.hdr) + len(f.payload))
	}
	if f.pooled && f.payload != nil {
		comm.PutBuf(f.payload)
	}
	if f.done != nil {
		f.done(err)
	}
	return err
}

// readLoop drains the connection, feeding the matching engine. It exits
// on a Bye (clean shutdown), on local teardown, or on a connection error
// — the last of which arms the failure detector.
func (p *peer) readLoop() {
	br := bufio.NewReaderSize(p.conn, 64*1024)
	for {
		m, err := readFrame(br)
		if err != nil {
			if p.c.isClosed() {
				return // local teardown raced the read; not a peer death
			}
			p.c.peerLost(p.rank, err)
			return
		}
		switch m.ftype {
		case frameEager:
			msg := comm.Msg{Size: m.size}
			if m.hasData {
				if m.payload == nil {
					m.payload = []byte{} // zero-byte payload, not elided
				}
				msg.Data = m.payload
				if len(msg.Data) != m.size {
					msg.Data = msg.Data[:m.size]
				}
			} else if m.payload != nil {
				comm.PutBuf(m.payload)
			}
			p.c.deliver(&envelope{src: p.rank, tag: m.tag, msg: msg,
				hasData: m.hasData, xid: m.xid})
		case frameRTS:
			p.c.deliver(&envelope{src: p.rank, tag: m.tag,
				msg: comm.Msg{Size: m.size}, rdv: true, hasData: m.hasData, xid: m.xid})
		case frameCTS:
			p.c.onCTS(p, m.xid)
		case frameData:
			p.c.onData(p.rank, m.xid, m.payload)
		case frameCommit:
			p.c.pushNotice(comm.Notice{Kind: comm.NoticeCommit, Seq: m.seq, Survivors: m.survivors})
		case frameBye:
			// Clean shutdown: drain to EOF so the kernel can reclaim the
			// socket, but never treat what follows as a death.
			for {
				if _, err := br.Discard(1); err != nil {
					return
				}
			}
		case frameIdent:
			// Legal only as a connection's first frame, which the mesh
			// bootstrap consumes before readLoop starts.
			p.c.peerLost(p.rank, io.ErrUnexpectedEOF)
			return
		}
	}
}
