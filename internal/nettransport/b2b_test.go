package nettransport

import (
	"testing"
	"time"

	"adapt/internal/comm"
	"adapt/internal/core"
	"adapt/internal/faults"
	"adapt/internal/trees"
)

func TestBackToBackFTAfterCrash(t *testing.T) {
	const n, size = 4, 512
	w := newTestWorld(t, n, WithCrashes([]faults.Crash{{Rank: 2, AfterSends: 1}}))
	w.WithRunTimeout(10 * time.Second)
	binom := trees.Binomial(n, 0)
	errs1 := make([]error, n)
	w.Run(func(c *Comm) {
		opt := core.Options{SegSize: 256, Seq: 1}
		in := comm.Sized(size)
		if c.Rank() == 0 {
			in = comm.Bytes(fill(size, 1))
		}
		errs1[c.Rank()] = core.BcastFT(c, binom, in, opt).Err
	})
	for r := 0; r < n; r++ {
		if r != 2 && errs1[r] != nil {
			t.Fatalf("case1 survivor %d: %v", r, errs1[r])
		}
	}
	w.Run(func(c *Comm) {
		opt := core.Options{SegSize: 256, Seq: 2}
		res := core.ReduceFT(c, binom, comm.Bytes(lattice(c.Rank(), size)), opt)
		if res.Err != nil {
			t.Errorf("case2 survivor %d: %v", c.Rank(), res.Err)
		}
	})
}
