package nettransport

import (
	"net"
	"sync"

	"adapt/internal/comm"
	"adapt/internal/perf"
)

// outFrame is one queued wire frame: a pre-encoded header plus an
// optional payload written right behind it. pooled payloads are returned
// to the buffer pool after the write; done (if set) observes the write's
// outcome — it is how a rendezvous send completes only once its payload
// is actually on the wire.
type outFrame struct {
	hdr     []byte
	payload []byte
	pooled  bool
	done    func(error)
}

// sendSched is the endpoint's single socket writer: one goroutine
// draining per-peer queues round-robin. Each service takes a whole
// queue's backlog and writes it as one writev (net.Buffers) batch, so
// frames that pile up while another peer is being served coalesce into
// one syscall. Queues are unbounded so that the I/O loop (which enqueues
// CTS grants and DATA frames) never blocks on a socket write — bounded
// per-peer queues could deadlock two ranks bulk-sending to each other in
// full duplex.
type sendSched struct {
	c *Comm

	mu      sync.Mutex
	cond    *sync.Cond
	qs      []schedQ
	closing bool // drain what is queued, then stop
	rr      int  // next queue to service (fairness cursor)

	done chan struct{} // writer goroutine exited

	bufs net.Buffers // writev scratch, writer-goroutine only
}

// schedQ is one peer's outbound queue.
type schedQ struct {
	frames []outFrame
	dead   bool  // drop new frames: peer is gone or being torn down
	closed bool  // no new frames accepted (clean shutdown)
	werr   error // first write error
}

func newSendSched(c *Comm) *sendSched {
	s := &sendSched{c: c, qs: make([]schedQ, c.size), done: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// enqueue hands a frame to the writer. Frames offered after the peer is
// dead or closing are dropped — their done hooks still run (with the
// recorded error) so a rendezvous send never silently leaks its request.
func (s *sendSched) enqueue(rank int, f outFrame) {
	s.mu.Lock()
	q := &s.qs[rank]
	if q.closed || q.dead {
		err := errOr(q.werr, net.ErrClosed)
		s.mu.Unlock()
		disposeFrame(f, err)
		return
	}
	q.frames = append(q.frames, f)
	s.cond.Signal()
	s.mu.Unlock()
}

// markDead flips one queue's drop-frames switch (detector-confirmed
// death or abrupt local teardown) and disposes its backlog.
func (s *sendSched) markDead(rank int, err error) {
	s.mu.Lock()
	q := &s.qs[rank]
	q.dead = true
	if q.werr == nil {
		q.werr = err
	}
	backlog := q.frames
	q.frames = nil
	werr := q.werr
	s.mu.Unlock()
	for _, f := range backlog {
		disposeFrame(f, werr)
	}
}

// markAllDead kills every queue (fail-stop self-crash).
func (s *sendSched) markAllDead(err error) {
	for r := range s.qs {
		s.markDead(r, err)
	}
}

// closeAll stops accepting frames everywhere and asks the writer to
// drain what is queued and exit.
func (s *sendSched) closeAll() {
	s.mu.Lock()
	for r := range s.qs {
		s.qs[r].closed = true
	}
	s.closing = true
	s.cond.Signal()
	s.mu.Unlock()
}

// disposeFrame releases a frame that will never reach the wire.
func disposeFrame(f outFrame, err error) {
	if f.pooled && f.payload != nil {
		comm.PutBuf(f.payload)
	}
	if f.done != nil {
		f.done(err)
	}
}

func errOr(err, fallback error) error {
	if err != nil {
		return err
	}
	return fallback
}

// run is the writer goroutine: pick the next non-empty queue round-robin,
// take its whole backlog, write it as one batch, repeat. Exits once
// closing is set and every queue has drained.
func (s *sendSched) run() {
	defer close(s.done)
	for {
		s.mu.Lock()
		idx := -1
		for {
			for i := 0; i < len(s.qs); i++ {
				r := (s.rr + i) % len(s.qs)
				if len(s.qs[r].frames) > 0 {
					idx = r
					break
				}
			}
			if idx >= 0 || s.closing {
				break
			}
			s.cond.Wait()
		}
		if idx < 0 {
			s.mu.Unlock()
			return
		}
		q := &s.qs[idx]
		batch := q.frames
		q.frames = nil
		dead := q.dead
		werr := q.werr
		s.rr = idx + 1
		s.mu.Unlock()

		if dead {
			for _, f := range batch {
				disposeFrame(f, errOr(werr, net.ErrClosed))
			}
			continue
		}
		s.writeBatch(idx, batch)
	}
}

// writeBatch coalesces a queue's backlog into one writev and settles
// every frame's buffers and hooks against the outcome. A write error
// kills the queue and (outside clean shutdown) arms the failure
// detector.
func (s *sendSched) writeBatch(rank int, batch []outFrame) {
	cs := s.c.conns[rank]
	s.bufs = s.bufs[:0]
	for _, f := range batch {
		s.bufs = append(s.bufs, f.hdr)
		if len(f.payload) > 0 {
			s.bufs = append(s.bufs, f.payload)
		}
	}
	// WriteTo consumes the slice header it is called on; hand it a copy so
	// the scratch backing array survives for the next batch.
	bufs := s.bufs
	_, err := bufs.WriteTo(cs.conn)
	for _, f := range batch {
		if err == nil {
			perf.RecordNetFrameOut(len(f.hdr) + len(f.payload))
		}
		if f.pooled && f.payload != nil {
			comm.PutBuf(f.payload)
		}
		if f.done != nil {
			f.done(err)
		}
	}
	if err != nil {
		s.mu.Lock()
		q := &s.qs[rank]
		q.dead = true
		if q.werr == nil {
			q.werr = err
		}
		closing := s.closing
		s.mu.Unlock()
		if !closing && !s.c.isClosed() {
			s.c.peerLost(rank, err)
		}
	}
}
