package nettransport

import (
	goruntime "runtime"
	"testing"
	"time"

	"adapt/internal/comm"
)

// TestGoroutineFootprint gates the readiness-loop architecture: a live
// n-rank world must run on O(1) I/O goroutines per endpoint (one send
// scheduler plus, on Linux, one epoll loop — NOT a reader/writer pair
// per peer connection), and tearing the world down must release every
// goroutine it started.
func TestGoroutineFootprint(t *testing.T) {
	base := goruntime.NumGoroutine()
	const n = 6
	w, err := NewLocalWorld(n)
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	defer func() {
		if !closed {
			w.Close()
		}
	}()

	// Traffic over both protocols so every loop is demonstrably live.
	tagE, tagR := comm.Tag(1), comm.Tag(2)
	w.WithRunTimeout(20 * time.Second).Run(func(c *Comm) {
		next, prev := (c.Rank()+1)%n, (c.Rank()+n-1)%n
		se := c.Isend(next, tagE, comm.Sized(512))
		sr := c.Isend(next, tagR, comm.Sized(DefaultEagerLimit*4))
		c.Recv(prev, tagE)
		c.Recv(prev, tagR)
		c.WaitAll([]comm.Request{se, sr})
	})

	if goruntime.GOOS == "linux" {
		// Steady state: per endpoint one sendSched.run plus one epoll loop.
		// Everything else (mesh dial/accept helpers, Run bodies) has exited.
		budget := base + 2*n + 4 // slack for runtime-internal goroutines
		if got := goruntime.NumGoroutine(); got > budget {
			t.Errorf("world of %d ranks holds %d goroutines (baseline %d, budget %d): I/O is not O(1) per endpoint",
				n, got, base, budget)
		}
	}

	w.Close()
	closed = true
	// Teardown releases the schedulers and I/O loops; give the runtime a
	// moment to retire them before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := goruntime.NumGoroutine(); got <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:goruntime.Stack(buf, true)]
			t.Fatalf("goroutines leaked after Close: %d > baseline %d\n%s",
				goruntime.NumGoroutine(), base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
