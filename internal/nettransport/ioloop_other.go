//go:build !linux

package nettransport

import (
	"errors"
	"io"
	"sync"
)

// threadLoop is the portable fallback readiness driver: one blocking
// reader goroutine per connection feeding the same incremental decoder
// as the Linux epoll loop. Correctness is identical; only the goroutine
// count differs (O(peers) instead of O(1)).
type threadLoop struct {
	c  *Comm
	wg sync.WaitGroup
}

// startIO launches one reader per live connection.
func startIO(c *Comm) (ioLoop, error) {
	l := &threadLoop{c: c}
	for _, cs := range c.conns {
		if cs == nil {
			continue
		}
		l.wg.Add(1)
		go l.read(cs)
	}
	return l, nil
}

// read drives one connection's decoder with blocking reads.
func (l *threadLoop) read(cs *connState) {
	defer l.wg.Done()
	c := l.c
	for {
		var dst []byte
		direct := cs.wantDirect()
		switch {
		case direct:
			dst = cs.directDst()
		case cs.draining:
			dst = cs.buf
		default:
			cs.compact()
			dst = cs.buf[cs.w:]
		}
		n, err := cs.conn.Read(dst)
		if n > 0 {
			var perr error
			switch {
			case direct:
				perr = c.advanceDirect(cs, n)
			case cs.draining:
				// discard
			default:
				cs.w += n
				perr = c.drainStaged(cs)
			}
			if perr != nil {
				cs.abort()
				c.ioError(cs, perr)
				return
			}
		}
		if err != nil {
			if cs.draining {
				cs.abort()
				return // clean Bye shutdown
			}
			if errors.Is(err, io.EOF) && cs.midFrame() {
				err = io.ErrUnexpectedEOF // cut inside a frame, not at a boundary
			}
			cs.abort()
			c.ioError(cs, err)
			return
		}
	}
}

// stop unblocks the readers by closing the connections, then waits for
// them to exit. The double close at teardown is harmless.
func (l *threadLoop) stop() {
	for _, cs := range l.c.conns {
		if cs != nil {
			cs.conn.Close()
		}
	}
	l.wg.Wait()
}
