package nettransport

import (
	"encoding/gob"
	"fmt"
	"net"
	"time"
)

// Multi-process bootstrap. A launcher (cmd/adaptrun) owns a Coordinator;
// each worker process calls JoinCluster with the coordinator's address
// and its env-assigned rank. The rendezvous:
//
//  1. worker binds its data-plane listener, dials the coordinator (with
//     the same exponential backoff as mesh dials) and sends a hello
//     carrying (rank, data address);
//  2. once all n hellos are in, the coordinator broadcasts the full
//     address map plus an opaque payload (the launcher's job spec);
//  3. workers build the peer mesh among themselves and run;
//  4. each worker reports an opaque result payload back on the same
//     connection; a connection that dies instead marks the worker lost.
//
// The control connection doubles as a liveness channel: the launcher
// learns about a killed worker from its broken gob stream even if the
// worker died before reporting.

type helloMsg struct {
	Rank int
	Addr string
}

type assignMsg struct {
	Addrs   []string
	Payload []byte
}

type resultMsg struct {
	Payload []byte
}

// WorkerResult is the launcher's view of one worker's outcome.
type WorkerResult struct {
	Rank    int
	Payload []byte // the worker's report; nil when lost
	Lost    bool   // control connection died before a report arrived
	Err     string // transport-level failure description
}

// Coordinator is the launcher-side rendezvous point.
type Coordinator struct {
	n     int
	ln    net.Listener
	conns []net.Conn
	encs  []*gob.Encoder
	decs  []*gob.Decoder
}

// NewCoordinator listens for n workers on loopback.
func NewCoordinator(n int) (*Coordinator, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	return &Coordinator{n: n, ln: ln,
		conns: make([]net.Conn, n),
		encs:  make([]*gob.Encoder, n),
		decs:  make([]*gob.Decoder, n)}, nil
}

// Addr is the address workers dial (ADAPT_NET_COORD).
func (co *Coordinator) Addr() string { return co.ln.Addr().String() }

// Rendezvous accepts all n hellos and broadcasts the address map; the
// payload function builds each rank's opaque job spec. deadline bounds
// the whole exchange.
func (co *Coordinator) Rendezvous(payload func(rank int) []byte, deadline time.Duration) error {
	type hello struct {
		conn net.Conn
		msg  helloMsg
		err  error
	}
	hellos := make(chan hello, co.n)
	stop := time.AfterFunc(deadline, func() { co.ln.Close() })
	defer stop.Stop()
	for i := 0; i < co.n; i++ {
		conn, err := co.ln.Accept()
		if err != nil {
			return fmt.Errorf("nettransport: coordinator accept: %w (%d/%d workers arrived)", err, i, co.n)
		}
		go func(conn net.Conn) {
			var h helloMsg
			conn.SetReadDeadline(time.Now().Add(deadline))
			err := gob.NewDecoder(conn).Decode(&h)
			conn.SetReadDeadline(time.Time{})
			hellos <- hello{conn: conn, msg: h, err: err}
		}(conn)
	}
	addrs := make([]string, co.n)
	for i := 0; i < co.n; i++ {
		h := <-hellos
		if h.err != nil {
			return fmt.Errorf("nettransport: coordinator hello: %w", h.err)
		}
		r := h.msg.Rank
		if r < 0 || r >= co.n {
			return fmt.Errorf("nettransport: hello from out-of-range rank %d", r)
		}
		if co.conns[r] != nil {
			return fmt.Errorf("nettransport: two workers claim rank %d", r)
		}
		co.conns[r] = h.conn
		co.encs[r] = gob.NewEncoder(h.conn)
		co.decs[r] = gob.NewDecoder(h.conn)
		addrs[r] = h.msg.Addr
	}
	for r := 0; r < co.n; r++ {
		var p []byte
		if payload != nil {
			p = payload(r)
		}
		if err := co.encs[r].Encode(assignMsg{Addrs: addrs, Payload: p}); err != nil {
			return fmt.Errorf("nettransport: coordinator assign rank %d: %w", r, err)
		}
	}
	return nil
}

// Gather reads one result per worker (bounded by deadline). A worker
// whose connection breaks — a crashed process — comes back Lost rather
// than failing the whole gather.
func (co *Coordinator) Gather(deadline time.Duration) []WorkerResult {
	out := make([]WorkerResult, co.n)
	done := make(chan WorkerResult, co.n)
	for r := 0; r < co.n; r++ {
		go func(r int) {
			res := WorkerResult{Rank: r}
			if co.conns[r] == nil {
				res.Lost, res.Err = true, "never joined"
				done <- res
				return
			}
			var m resultMsg
			co.conns[r].SetReadDeadline(time.Now().Add(deadline))
			if err := co.decs[r].Decode(&m); err != nil {
				res.Lost, res.Err = true, err.Error()
			} else {
				res.Payload = m.Payload
			}
			done <- res
		}(r)
	}
	for i := 0; i < co.n; i++ {
		res := <-done
		out[res.Rank] = res
	}
	return out
}

// Close releases the coordinator's sockets.
func (co *Coordinator) Close() {
	co.ln.Close()
	for _, c := range co.conns {
		if c != nil {
			c.Close()
		}
	}
}

// ClusterConn is a worker's control connection back to the launcher.
type ClusterConn struct {
	conn net.Conn
	enc  *gob.Encoder
}

// Report sends the worker's opaque result payload to the launcher.
func (cc *ClusterConn) Report(payload []byte) error {
	return cc.enc.Encode(resultMsg{Payload: payload})
}

// Close tears the control connection down (after Report).
func (cc *ClusterConn) Close() { cc.conn.Close() }

// abruptClose exposes the raw close for crash simulation: a dying worker
// cuts the control plane exactly like its data plane.
func (cc *ClusterConn) abruptClose() { cc.conn.Close() }

// JoinCluster is the worker-process entry point: bind a data listener,
// rendezvous through the coordinator, build the mesh. It returns the
// wired endpoint, the control connection for reporting, and the
// launcher's opaque job payload.
func JoinCluster(coordAddr string, rank, n int, opts ...Option) (*Comm, *ClusterConn, []byte, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, nil, err
	}
	var conn net.Conn
	var lastErr error
	for attempt := 0; attempt < cfg.dialRecovery.MaxAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(cfg.dialRecovery.Timeout(attempt - 1))
		}
		conn, lastErr = net.Dial("tcp", coordAddr)
		if lastErr == nil {
			break
		}
	}
	if lastErr != nil {
		ln.Close()
		return nil, nil, nil, fmt.Errorf("nettransport: join coordinator %s: %w", coordAddr, lastErr)
	}
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
	if err := enc.Encode(helloMsg{Rank: rank, Addr: ln.Addr().String()}); err != nil {
		conn.Close()
		ln.Close()
		return nil, nil, nil, err
	}
	var assign assignMsg
	if err := dec.Decode(&assign); err != nil {
		conn.Close()
		ln.Close()
		return nil, nil, nil, fmt.Errorf("nettransport: rank %d awaiting assignment: %w", rank, err)
	}
	c := newComm(rank, n, ln, cfg)
	cc := &ClusterConn{conn: conn, enc: enc}
	// A worker that hits its crash point must also cut the control plane
	// so the launcher's gather sees the loss.
	prevExit := c.cfg.crashExit
	c.cfg.crashExit = func() {
		cc.abruptClose()
		if prevExit != nil {
			prevExit()
		}
	}
	if err := c.joinMesh(assign.Addrs); err != nil {
		conn.Close()
		ln.Close()
		return nil, nil, nil, err
	}
	return c, cc, assign.Payload, nil
}
