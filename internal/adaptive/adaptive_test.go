package adaptive

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"adapt/internal/comm"
	"adapt/internal/core"
	"adapt/internal/hwloc"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
	"adapt/internal/runtime"
	"adapt/internal/sim"
	"adapt/internal/simmpi"
	"adapt/internal/trees"
)

func TestDecideRegimes(t *testing.T) {
	topo := hwloc.New(4, 2, 8)
	small := Decide(topo, comm.KindBcast, 4<<10, Balanced)
	if small.SegSize <= 4<<10 {
		t.Error("small messages must not be segmented")
	}
	if small.Tree.IntraSocket.Name != "binomial" {
		t.Errorf("small messages should use shallow trees, got %s", small.Tree.IntraSocket.Name)
	}
	large := Decide(topo, comm.KindBcast, 4<<20, Balanced)
	if large.SegSize != 128<<10 {
		t.Errorf("4MB segment size = %d", large.SegSize)
	}
	if large.Tree.IntraSocket.Name != "chain" {
		t.Error("large messages should pipeline chains inside nodes")
	}
	if large.Tree.InterNode.Name != "binomial" {
		t.Errorf("large bcast inter-node should be binomial, got %s", large.Tree.InterNode.Name)
	}
	reduce := Decide(topo, comm.KindReduce, 4<<20, Balanced)
	if reduce.Tree.InterNode.Name != "binary" {
		t.Errorf("large reduce inter-node should be binary, got %s", reduce.Tree.InterNode.Name)
	}
	huge := Decide(topo, comm.KindBcast, 32<<20, Balanced)
	if huge.SegSize != 512<<10 || huge.SendWindow != 4 {
		t.Errorf("huge choice = %+v", huge)
	}
}

func TestDecideGoals(t *testing.T) {
	topo := hwloc.New(4, 2, 8)
	bw := Decide(topo, comm.KindBcast, 4<<20, MaxBandwidth)
	if bw.Tree.InterNode.Name != "chain" {
		t.Error("MaxBandwidth must pick the chain inter-node tree")
	}
	lat := Decide(topo, comm.KindBcast, 256<<10, MinLatency)
	if lat.SegSize <= 256<<10 {
		t.Error("MinLatency at 256KB should stay unsegmented")
	}
}

func TestDecideWindowsValid(t *testing.T) {
	topo := hwloc.New(2, 2, 4)
	for _, size := range []int{1, 1 << 10, 64 << 10, 1 << 20, 64 << 20} {
		for _, kind := range []comm.CollKind{comm.KindBcast, comm.KindReduce, comm.KindAllreduce} {
			for _, goal := range []Goal{Balanced, MaxBandwidth, MinLatency} {
				ch := Decide(topo, kind, size, goal)
				if ch.SendWindow < 1 || ch.RecvWindow < ch.SendWindow {
					t.Fatalf("invalid windows for size=%d kind=%v goal=%v: %+v", size, kind, goal, ch)
				}
				if ch.SegSize <= 0 {
					t.Fatalf("invalid segsize: %+v", ch)
				}
				// Options must pass the engine's validation.
				_ = ch.Options(0)
				tree := trees.Topology(topo, 0, ch.Tree)
				if err := tree.Validate(); err != nil {
					t.Fatalf("tree invalid: %v", err)
				}
			}
		}
	}
}

// The adaptive entry points must be correct end-to-end on the live
// runtime across the size regimes.
func TestAdaptiveBcastReduceLive(t *testing.T) {
	topo := hwloc.New(2, 2, 3) // 12 ranks
	for _, sz := range []int{100, 40_000, 900_000} {
		sz := sz
		w := runtime.NewWorld(topo.Size())
		want := payload(sz, int64(sz))
		var mu sync.Mutex
		results := map[int][]byte{}
		var red []int64
		w.Run(func(c *runtime.Comm) {
			var msg comm.Msg
			if c.Rank() == 0 {
				msg = comm.Bytes(append([]byte(nil), want...))
			} else {
				msg = comm.Sized(sz)
			}
			out := Bcast(c, topo, 0, msg, 0, Balanced)
			mu.Lock()
			results[c.Rank()] = out.Data
			mu.Unlock()

			vals := []int64{int64(c.Rank()), 5}
			r := Reduce(c, topo, 0, comm.Bytes(comm.EncodeInt64s(vals)), 1, Balanced)
			if c.Rank() == 0 {
				mu.Lock()
				red = comm.DecodeInt64s(r.Data)
				mu.Unlock()
			}
		})
		for r := 0; r < topo.Size(); r++ {
			if !bytes.Equal(results[r], want) {
				t.Fatalf("size %d rank %d: bcast mismatch", sz, r)
			}
		}
		n := topo.Size()
		if red[0] != int64(n*(n-1)/2) || red[1] != int64(5*n) {
			t.Fatalf("size %d: reduce = %v", sz, red)
		}
	}
}

func TestAdaptiveAllreduceLive(t *testing.T) {
	topo := hwloc.New(2, 2, 2)
	w := runtime.NewWorld(topo.Size())
	var mu sync.Mutex
	results := map[int]int64{}
	w.Run(func(c *runtime.Comm) {
		out := Allreduce(c, topo, comm.Bytes(comm.EncodeInt64s([]int64{int64(c.Rank() + 1)})), 0, Balanced)
		mu.Lock()
		results[c.Rank()] = comm.DecodeInt64s(out.Data)[0]
		mu.Unlock()
	})
	n := topo.Size()
	want := int64(n * (n + 1) / 2)
	for r := 0; r < n; r++ {
		if results[r] != want {
			t.Fatalf("rank %d: %d != %d", r, results[r], want)
		}
	}
}

// The adaptive choice must beat a deliberately wrong fixed configuration
// on the simulator at both ends of the size spectrum.
func TestAdaptiveBeatsWrongFixedConfig(t *testing.T) {
	p := netmodel.Cori(4)
	run := func(size int, fixed *core.Options) time.Duration {
		k := sim.New()
		w := simmpi.NewWorld(k, p, noise.None)
		w.Spawn(func(c *simmpi.Comm) {
			if fixed != nil {
				tree := trees.Topology(p.Topo, 0, trees.ChainConfig())
				core.Bcast(c, tree, comm.Sized(size), *fixed)
				return
			}
			Bcast(c, p.Topo, 0, comm.Sized(size), 0, Balanced)
		})
		return k.MustRun()
	}
	// Small message: a deep chain pipeline is latency-poison.
	small := 8 << 10
	fixedOpt := core.DefaultOptions()
	if a, b := run(small, nil), run(small, &fixedOpt); a >= b {
		t.Fatalf("adaptive small-message choice (%v) should beat chain pipeline (%v)", a, b)
	}
	// Large message: the unsegmented small-message config is bandwidth-poison.
	large := 8 << 20
	latOpt := core.DefaultOptions()
	latOpt.SegSize = large + 1
	latOpt.SendWindow, latOpt.RecvWindow = 1, 2
	if a, b := run(large, nil), run(large, &latOpt); a >= b {
		t.Fatalf("adaptive large-message choice (%v) should beat unsegmented config (%v)", a, b)
	}
}

func payload(n int, seed int64) []byte {
	b := make([]byte, n)
	x := uint64(seed)*2654435761 + 1
	for i := range b {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		b[i] = byte(x)
	}
	return b
}

func TestGoalStrings(t *testing.T) {
	for _, g := range []Goal{Balanced, MaxBandwidth, MinLatency} {
		if g.String() == "" {
			t.Errorf("goal %d has empty name", g)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown builder name must panic")
		}
	}()
	builder("nonesuch")
}
