// Package adaptive is the decision layer that makes ADAPT adaptive: given
// the machine topology, the collective kind and the message size, it
// picks the communication tree for each hardware level, the pipeline
// segment size and the in-flight windows — the role Open MPI's tuned
// decision tables play, but topology- and operation-aware (paper §2.2.4:
// "it is easy to adapt the trees based on network topology", §7: per-level
// algorithm selection by "number of processes, message size, available
// bandwidth").
//
// The rules are the ones calibrated in this repository's experiments (see
// DESIGN.md "Calibration decisions"):
//
//   - Latency regime (small messages): unsegmented binomial trees
//     everywhere — log-depth minimizes the α terms; pipelining has
//     nothing to pipeline.
//   - Bandwidth regime (large messages): pipelined chains inside nodes
//     (homogeneous lanes, minimal per-rank work), log-depth trees across
//     node leaders: binomial for broadcast; binary for reductions, whose
//     γ·m fold runs once per child per segment, so bounded fan-in avoids
//     a root pile-up.
//   - Resilience: log-depth inter-node trees keep few ranks on any
//     dependency path, bounding noise exposure (Figure 7). The all-chain
//     configuration is only chosen when the caller asks for maximum
//     bandwidth explicitly (Goal == MaxBandwidth), e.g. the strong-scaling
//     study (Figure 10).
package adaptive

import (
	"fmt"

	"adapt/internal/comm"
	"adapt/internal/core"
	"adapt/internal/hwloc"
	"adapt/internal/trees"
)

// Goal biases tie-breaking decisions.
type Goal int

const (
	// Balanced is the default: bandwidth with bounded noise exposure.
	Balanced Goal = iota
	// MaxBandwidth prefers the deepest pipelines (all-chain trees).
	MaxBandwidth
	// MinLatency prefers the shallowest trees even for larger payloads.
	MinLatency
)

func (g Goal) String() string {
	switch g {
	case Balanced:
		return "balanced"
	case MaxBandwidth:
		return "max-bandwidth"
	case MinLatency:
		return "min-latency"
	}
	return fmt.Sprintf("Goal(%d)", int(g))
}

// Choice is a complete collective configuration.
type Choice struct {
	Tree    trees.TopoConfig
	SegSize int
	// Windows: N concurrent sends per child, M posted receives (M ≥ N).
	SendWindow int
	RecvWindow int
}

// Options converts the choice into engine options.
func (ch Choice) Options(seq int) core.Options {
	opt := core.DefaultOptions()
	opt.SegSize = ch.SegSize
	opt.SendWindow = ch.SendWindow
	opt.RecvWindow = ch.RecvWindow
	opt.Seq = seq
	return opt
}

// Size regime boundaries (bytes).
const (
	latencyBound = 16 << 10  // ≤ 16 KB: latency regime
	mediumBound  = 512 << 10 // ≤ 512 KB: medium pipeline
	hugeBound    = 16 << 20  // ≥ 16 MB: coarse segments
)

func builder(name string) trees.Builder {
	b, err := trees.ByName(name)
	if err != nil {
		panic(err)
	}
	return b
}

// Decide returns the configuration for one collective call.
func Decide(topo *hwloc.Topology, kind comm.CollKind, size int, goal Goal) Choice {
	chain := builder("chain")
	binomial := builder("binomial")
	binary := builder("binary")

	// Latency regime: shallow trees, one segment, minimal windows.
	if size <= latencyBound || goal == MinLatency && size <= mediumBound {
		return Choice{
			Tree:       trees.TopoConfig{InterNode: binomial, InterSocket: binomial, IntraSocket: binomial},
			SegSize:    size + 1,
			SendWindow: 1,
			RecvWindow: 2,
		}
	}

	// Bandwidth regimes: pipelined chains inside nodes.
	seg := 64 << 10
	switch {
	case size >= hugeBound:
		seg = 512 << 10
	case size > mediumBound:
		seg = 128 << 10
	}
	inter := binomial
	if kind == comm.KindReduce || kind == comm.KindAllreduce {
		inter = binary // bounded fan-in for the γ·m folds
	}
	if goal == MaxBandwidth {
		inter = chain
	}
	cfg := trees.TopoConfig{InterNode: inter, InterSocket: chain, IntraSocket: chain}

	// Window depth: enough in-flight segments to cover the pipeline, but
	// no deeper than the segment count.
	n := 2
	if size >= hugeBound {
		n = 4
	}
	m := 2 * n
	if ns := comm.NumSegments(size, seg); ns < m {
		m = ns
		if n > m {
			n = m
		}
	}
	if n < 1 {
		n = 1
	}
	if m < n {
		m = n
	}
	return Choice{Tree: cfg, SegSize: seg, SendWindow: n, RecvWindow: m}
}

// Bcast runs an ADAPT broadcast with an automatically decided
// configuration.
func Bcast(c comm.Comm, topo *hwloc.Topology, root int, msg comm.Msg, seq int, goal Goal) comm.Msg {
	ch := Decide(topo, comm.KindBcast, msg.Size, goal)
	return core.Bcast(c, trees.Topology(topo, root, ch.Tree), msg, ch.Options(seq))
}

// Reduce runs an ADAPT reduction with an automatically decided
// configuration. contrib.Data, when present, is folded in place.
func Reduce(c comm.Comm, topo *hwloc.Topology, root int, contrib comm.Msg, seq int, goal Goal) comm.Msg {
	ch := Decide(topo, comm.KindReduce, contrib.Size, goal)
	return core.Reduce(c, trees.Topology(topo, root, ch.Tree), contrib, ch.Options(seq))
}

// Allreduce runs the fused ADAPT allreduce with an automatically decided
// configuration (the tree must be rooted consistently; rank 0 is used).
func Allreduce(c comm.Comm, topo *hwloc.Topology, contrib comm.Msg, seq int, goal Goal) comm.Msg {
	ch := Decide(topo, comm.KindAllreduce, contrib.Size, goal)
	return core.Allreduce(c, trees.Topology(topo, 0, ch.Tree), contrib, ch.Options(seq))
}
