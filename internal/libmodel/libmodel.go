// Package libmodel models the MPI libraries the paper compares against as
// algorithmic proxies. Cray MPI, Intel MPI and MVAPICH2 are closed or
// unavailable here; what the paper attributes their behaviour to is their
// algorithm class and synchronization discipline (§2.1, §3.1, §5), so each
// proxy is exactly that:
//
//   - OMPI-adapt: topology-aware chain tree + the event-driven engine
//     (§2.2, §3.2); on GPU platforms additionally CPU staging (§4.1) and
//     GPU-offloaded reduction (§4.2).
//   - OMPI-default ("tuned"): rank-order trees with the Waitall
//     (Algorithm 2) discipline and the tuned module's size-based decision
//     (binomial for small, binary for medium, pipelined chain for large —
//     the algorithm switch visible in the paper's Figure 9a).
//   - OMPI-default-topo: the same topology-aware tree ADAPT uses, driven
//     by the Waitall discipline — the paper's control isolating the
//     event-driven engine from the tree (§5.1.2, ~20% gap).
//   - Intel MPI: the SHM-based multi-level scheme (§3.1): level-by-level
//     sub-collectives with no cross-level overlap. On Stampede2 (its own
//     Omni-Path fabric) the inter-node phase pipelines aggressively,
//     matching the paper's observation that Intel MPI is strong there;
//     on Cori it runs whole-message phases.
//   - Cray MPI (Cori only): multi-level with pipelined phases — better
//     than plain multi-level, still no cross-level overlap.
//   - MVAPICH2: the blocking (Algorithm 1) building block over a binomial
//     tree — the discipline whose synchronization amplifies noise
//     (the paper's 868% slowdown under 10% noise).
//
// Every proxy runs on the identical simulated fabric, so differences
// between them come only from dependency structure and tree shape — the
// paper's own explanatory variables.
package libmodel

import (
	"fmt"

	"adapt/internal/coll"
	"adapt/internal/comm"
	"adapt/internal/core"
	"adapt/internal/netmodel"
	"adapt/internal/trees"
)

// Library is one MPI library proxy bound to a platform.
type Library struct {
	Name string
	// Bcast broadcasts msg from root; seq disambiguates repetitions.
	Bcast func(c comm.Comm, root int, msg comm.Msg, seq int) comm.Msg
	// Reduce reduces contributions to root under OpSum/Float64.
	Reduce func(c comm.Comm, root int, contrib comm.Msg, seq int) comm.Msg
}

func baseOpt(seq, segSize int) coll.Options {
	opt := coll.DefaultOptions()
	opt.Seq = seq
	opt.SegSize = segSize
	return opt
}

// AdaptDefaultConfig is the tree configuration the OMPI-adapt proxy runs
// by default: a binomial tree across node leaders (log-depth, so few
// ranks sit on any dependency path — the noise-robust choice) with
// pipelined chains inside each node (maximum bandwidth on the homogeneous
// levels). The all-chain configuration the paper uses for its
// strong-scaling runs is trees.ChainConfig / OMPIAdaptChain.
func AdaptDefaultConfig() trees.TopoConfig {
	return trees.TopoConfig{
		InterNode:   trees.Builder{Name: "binomial", Build: trees.Binomial},
		InterSocket: trees.Builder{Name: "chain", Build: trees.Chain},
		IntraSocket: trees.Builder{Name: "chain", Build: trees.Chain},
	}
}

// AdaptReduceConfig is the reduce-side default: a binary tree across node
// leaders. Reduction arithmetic (γ·m) runs once per child per segment at
// every rank, so bounded fan-in beats the binomial root's pile-up while
// log depth keeps the noise exposure low.
func AdaptReduceConfig() trees.TopoConfig {
	return trees.TopoConfig{
		InterNode:   trees.Builder{Name: "binary", Build: trees.Binary},
		InterSocket: trees.Builder{Name: "chain", Build: trees.Chain},
		IntraSocket: trees.Builder{Name: "chain", Build: trees.Chain},
	}
}

// OMPIAdapt is the paper's system: event-driven engine on per-operation
// topology-aware trees; staging + offload on GPU platforms. GPU platforms
// use the all-chain tree: with one rank per GPU and few ranks per node,
// log-depth inter-node trees would push multiple full copies through the
// root's NIC, while the chain moves each byte across each NIC once — the
// same reason NCCL broadcasts over chains (paper §6.3).
func OMPIAdapt(p *netmodel.Platform) Library {
	if p.Topo.HasGPUs() {
		return OMPIAdaptWith(p, "OMPI-adapt", trees.ChainConfig(), trees.ChainConfig())
	}
	return OMPIAdaptWith(p, "OMPI-adapt", AdaptDefaultConfig(), AdaptReduceConfig())
}

// OMPIAdaptChain is OMPI-adapt with the all-chain topology-aware tree the
// paper's strong-scaling experiment uses (§5.2.1).
func OMPIAdaptChain(p *netmodel.Platform) Library {
	return OMPIAdaptWith(p, "OMPI-adapt", trees.ChainConfig(), trees.ChainConfig())
}

// OMPIAdaptWith builds the ADAPT proxy over explicit per-op tree configs.
func OMPIAdaptWith(p *netmodel.Platform, name string, bcastCfg, reduceCfg trees.TopoConfig) Library {
	gpu := p.Topo.HasGPUs()
	return Library{
		Name: name,
		Bcast: func(c comm.Comm, root int, msg comm.Msg, seq int) comm.Msg {
			opt := baseOpt(seq, core.DefaultSegSize)
			t := trees.Topology(p.Topo, root, bcastCfg)
			if gpu {
				if dc, ok := c.(comm.DeviceComm); ok {
					return core.BcastStaged(dc, p.Topo, t, msg, opt)
				}
			}
			return core.Bcast(c, t, msg, opt)
		},
		Reduce: func(c comm.Comm, root int, contrib comm.Msg, seq int) comm.Msg {
			opt := baseOpt(seq, core.DefaultSegSize)
			t := trees.Topology(p.Topo, root, reduceCfg)
			if gpu {
				if dc, ok := c.(comm.DeviceComm); ok {
					return core.ReduceOffload(dc, t, contrib, opt)
				}
			}
			return core.Reduce(c, t, contrib, opt)
		},
	}
}

// OMPIDefaultTopo drives ADAPT's topology-aware tree with the Waitall
// discipline — same data paths, old synchronization.
func OMPIDefaultTopo(p *netmodel.Platform) Library {
	return Library{
		Name: "OMPI-default-topo",
		Bcast: func(c comm.Comm, root int, msg comm.Msg, seq int) comm.Msg {
			t := trees.Topology(p.Topo, root, AdaptDefaultConfig())
			return coll.Bcast(c, t, msg, baseOpt(seq, core.DefaultSegSize), coll.NonBlocking)
		},
		Reduce: func(c comm.Comm, root int, contrib comm.Msg, seq int) comm.Msg {
			t := trees.Topology(p.Topo, root, AdaptReduceConfig())
			return coll.Reduce(c, t, contrib, baseOpt(seq, core.DefaultSegSize), coll.NonBlocking)
		},
	}
}

// tunedDecision returns (tree builder, segment size) following Open MPI's
// tuned module: binomial below 2 KB, binary with 32 KB segments up to
// 256 KB, pipelined chain with 128 KB segments above — all over rank-order
// trees, topology-blind.
func tunedDecision(size int) (func(int, int) *trees.Tree, int) {
	switch {
	case size <= 2<<10:
		return trees.Binomial, size + 1 // single segment
	case size <= 256<<10:
		return trees.Binary, 32 << 10
	default:
		return trees.Chain, 128 << 10
	}
}

// OMPIDefault is the Open MPI tuned module proxy. On GPU platforms its
// decision table was never tuned for device buffers (§5.2.2), which the
// paper identifies as picking a non-optimal algorithm: we model that by
// keeping the CPU decision table (binomial for "small" GPU messages where
// a chain would win) and device-direct transfers without staging.
func OMPIDefault(p *netmodel.Platform) Library {
	return Library{
		Name: "OMPI-default",
		Bcast: func(c comm.Comm, root int, msg comm.Msg, seq int) comm.Msg {
			build, seg := tunedDecision(msg.Size)
			return coll.Bcast(c, build(c.Size(), root), msg, baseOpt(seq, seg), coll.NonBlocking)
		},
		Reduce: func(c comm.Comm, root int, contrib comm.Msg, seq int) comm.Msg {
			build, seg := tunedDecision(contrib.Size)
			return coll.Reduce(c, build(c.Size(), root), contrib, baseOpt(seq, seg), coll.NonBlocking)
		},
	}
}

// MVAPICH is the blocking building-block proxy: binomial tree, blocking
// sends and receives per segment (Algorithm 1).
func MVAPICH(p *netmodel.Platform) Library {
	return Library{
		Name: "MVAPICH",
		Bcast: func(c comm.Comm, root int, msg comm.Msg, seq int) comm.Msg {
			return coll.Bcast(c, trees.Binomial(c.Size(), root), msg, baseOpt(seq, 64<<10), coll.Blocking)
		},
		Reduce: func(c comm.Comm, root int, contrib comm.Msg, seq int) comm.Msg {
			return coll.Reduce(c, trees.Binomial(c.Size(), root), contrib, baseOpt(seq, 64<<10), coll.Blocking)
		},
	}
}

// multiLevel builds a §3.1 multi-level proxy with the given phase trees.
func multiLevel(name string, p *netmodel.Platform, spec coll.MultiLevelSpec, segSize int) Library {
	return Library{
		Name: name,
		Bcast: func(c comm.Comm, root int, msg comm.Msg, seq int) comm.Msg {
			return coll.BcastMultiLevel(c, p.Topo, root, msg, baseOpt(seq, segSize), spec)
		},
		Reduce: func(c comm.Comm, root int, contrib comm.Msg, seq int) comm.Msg {
			return coll.ReduceMultiLevel(c, p.Topo, root, contrib, baseOpt(seq, segSize), spec)
		},
	}
}

// IntelMPI is the SHM-based multi-level proxy. On Stampede2 — Intel's own
// fabric — the inter-node phase uses a pipelined chain (well-tuned for
// Omni-Path); elsewhere it runs binomial whole-phase trees.
func IntelMPI(p *netmodel.Platform) Library {
	spec := coll.MultiLevelSpec{
		InterNode:   trees.Builder{Name: "binomial", Build: trees.Binomial},
		InterSocket: trees.Builder{Name: "binomial", Build: trees.Binomial},
		IntraSocket: trees.Builder{Name: "knomial4", Build: trees.Knomial(4)},
		Alg:         coll.NonBlocking,
	}
	seg := 64 << 10
	if p.Name == "stampede2" {
		spec.InterNode = trees.Builder{Name: "chain", Build: trees.Chain}
		seg = 128 << 10
	}
	return multiLevel("Intel MPI", p, spec, seg)
}

// CrayMPI is the Cori-native proxy: multi-level with a pipelined chain
// inter-node phase.
func CrayMPI(p *netmodel.Platform) Library {
	spec := coll.MultiLevelSpec{
		InterNode:   trees.Builder{Name: "chain", Build: trees.Chain},
		InterSocket: trees.Builder{Name: "chain", Build: trees.Chain},
		IntraSocket: trees.Builder{Name: "binomial", Build: trees.Binomial},
		Alg:         coll.NonBlocking,
	}
	return multiLevel("Cray MPI", p, spec, 128<<10)
}

// CPULibraries returns the paper's comparison set for a CPU platform
// (Figure 7/9: Cray on Cori, MVAPICH on Stampede2).
func CPULibraries(p *netmodel.Platform) []Library {
	libs := []Library{IntelMPI(p)}
	if p.Name == "cori" {
		libs = append(libs, CrayMPI(p))
	} else {
		libs = append(libs, MVAPICH(p))
	}
	return append(libs, OMPIDefault(p), OMPIAdapt(p))
}

// MVAPICHGPU proxies MVAPICH2's CUDA-aware path: unlike its host-side
// blocking building block, the GPU path pipelines device transfers
// (MVAPICH2-GPU, paper §6.3) — a nonblocking rank-order chain with 256 KB
// segments, device-direct (no staging, no offload).
func MVAPICHGPU(p *netmodel.Platform) Library {
	return Library{
		Name: "MVAPICH",
		Bcast: func(c comm.Comm, root int, msg comm.Msg, seq int) comm.Msg {
			return coll.Bcast(c, trees.Chain(c.Size(), root), msg, baseOpt(seq, 256<<10), coll.NonBlocking)
		},
		Reduce: func(c comm.Comm, root int, contrib comm.Msg, seq int) comm.Msg {
			return coll.Reduce(c, trees.Chain(c.Size(), root), contrib, baseOpt(seq, 256<<10), coll.NonBlocking)
		},
	}
}

// GPULibraries returns the Figure-11 comparison set.
func GPULibraries(p *netmodel.Platform) []Library {
	return []Library{MVAPICHGPU(p), OMPIDefault(p), OMPIAdapt(p)}
}

// ByName resolves a library proxy for CLI use.
func ByName(name string, p *netmodel.Platform) (Library, error) {
	switch name {
	case "ompi-adapt", "adapt":
		return OMPIAdapt(p), nil
	case "ompi-default", "tuned":
		return OMPIDefault(p), nil
	case "ompi-default-topo":
		return OMPIDefaultTopo(p), nil
	case "intel":
		return IntelMPI(p), nil
	case "cray":
		return CrayMPI(p), nil
	case "mvapich":
		return MVAPICH(p), nil
	default:
		return Library{}, fmt.Errorf("libmodel: unknown library %q", name)
	}
}

// intelVariant assembles one of Intel MPI's selectable topology-aware
// algorithms (the I_MPI_ADJUST_* table) as a proxy.
func intelVariant(name string, p *netmodel.Platform, whole trees.Builder, shm *coll.MultiLevelSpec, segSize int) Library {
	if shm != nil {
		return multiLevel(name, p, *shm, segSize)
	}
	return Library{
		Name: name,
		Bcast: func(c comm.Comm, root int, msg comm.Msg, seq int) comm.Msg {
			return coll.Bcast(c, whole.Build(c.Size(), root), msg, baseOpt(seq, segSize), coll.NonBlocking)
		},
		Reduce: func(c comm.Comm, root int, contrib comm.Msg, seq int) comm.Msg {
			return coll.Reduce(c, whole.Build(c.Size(), root), contrib, baseOpt(seq, segSize), coll.NonBlocking)
		},
	}
}

func shmSpec(intra trees.Builder) *coll.MultiLevelSpec {
	return &coll.MultiLevelSpec{
		InterNode:   trees.Builder{Name: "binomial", Build: trees.Binomial},
		InterSocket: trees.Builder{Name: "binomial", Build: trees.Binomial},
		IntraSocket: intra,
		Alg:         coll.NonBlocking,
	}
}

// IntelTopoBcastVariants reproduces Figure 8's Intel broadcast line-up.
func IntelTopoBcastVariants(p *netmodel.Platform) []Library {
	seg := 64 << 10
	return []Library{
		intelVariant("Intel-topo-binomial", p, trees.Builder{Name: "binomial", Build: trees.Binomial}, nil, seg),
		intelVariant("Intel-topo-recursive doubling", p, trees.Builder{Name: "binomial", Build: trees.Binomial}, nil, 1<<30), // unsegmented
		intelVariant("Intel-topo-ring", p, trees.Builder{Name: "chain", Build: trees.Chain}, nil, 128<<10),
		intelVariant("Intel-topo-SHM-based flat", p, trees.Builder{}, shmSpec(trees.Builder{Name: "flat", Build: trees.Flat}), seg),
		intelVariant("Intel-topo-SHM-based Knomial", p, trees.Builder{}, shmSpec(trees.Builder{Name: "knomial4", Build: trees.Knomial(4)}), seg),
		intelVariant("Intel-topo-SHM-based Knary", p, trees.Builder{}, shmSpec(trees.Builder{Name: "kary4", Build: trees.Kary(4)}), seg),
	}
}

// shumilin models Intel MPI's Shumilin reduce: a segmented multi-level
// pipeline. On Stampede2 — Intel's own Omni-Path fabric — it additionally
// gets a vectorized fold (VecWidth 2), which is how the paper explains it
// beating ADAPT's unvectorized reduction there (§5.1.2) while losing on
// Cori.
func shumilin(p *netmodel.Platform) Library {
	ch := trees.Builder{Name: "chain", Build: trees.Chain}
	spec := coll.MultiLevelSpec{InterNode: ch, InterSocket: ch, IntraSocket: ch, Alg: coll.NonBlocking}
	vec := 1
	if p.Name == "stampede2" {
		vec = 2
	}
	return Library{
		Name: "Intel-topo-Shumilin's",
		Reduce: func(c comm.Comm, root int, contrib comm.Msg, seq int) comm.Msg {
			opt := baseOpt(seq, 128<<10)
			opt.VecWidth = vec
			return coll.ReduceMultiLevel(c, p.Topo, root, contrib, opt, spec)
		},
	}
}

// IntelTopoReduceVariants reproduces Figure 8's Intel reduce line-up.
// Shumilin's algorithm is a segmented pipeline, the strongest Intel
// entry for large reductions in the paper.
func IntelTopoReduceVariants(p *netmodel.Platform) []Library {
	seg := 64 << 10
	return []Library{
		shumilin(p),
		intelVariant("Intel-topo-binomial", p, trees.Builder{Name: "binomial", Build: trees.Binomial}, nil, seg),
		intelVariant("Intel-topo-Rabenseifner's", p, trees.Builder{Name: "binary", Build: trees.Binary}, nil, seg),
		intelVariant("Intel-topo-SHM-based flat", p, trees.Builder{}, shmSpec(trees.Builder{Name: "flat", Build: trees.Flat}), seg),
		intelVariant("Intel-topo-SHM-based Knomial", p, trees.Builder{}, shmSpec(trees.Builder{Name: "knomial4", Build: trees.Knomial(4)}), seg),
		intelVariant("Intel-topo-SHM-based Knary", p, trees.Builder{}, shmSpec(trees.Builder{Name: "kary4", Build: trees.Kary(4)}), seg),
		intelVariant("Intel-topo-SHM-based binomial", p, trees.Builder{}, shmSpec(trees.Builder{Name: "binomial", Build: trees.Binomial}), seg),
	}
}

// TopoComparisonSet is Figure 8's full roster: the Intel variants plus
// OMPI-default-topo and OMPI-adapt.
func TopoComparisonSet(p *netmodel.Platform, reduce bool) []Library {
	var libs []Library
	if reduce {
		libs = IntelTopoReduceVariants(p)
	} else {
		libs = IntelTopoBcastVariants(p)
	}
	return append(libs, OMPIDefaultTopo(p), OMPIAdapt(p))
}
