package libmodel

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"adapt/internal/comm"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
	"adapt/internal/sim"
	"adapt/internal/simmpi"
)

func runSim(t *testing.T, p *netmodel.Platform, body func(c *simmpi.Comm)) time.Duration {
	t.Helper()
	k := sim.New()
	w := simmpi.NewWorld(k, p, noise.None)
	w.Spawn(body)
	end, err := k.Run()
	if err != nil {
		t.Fatalf("deadlock: %v", err)
	}
	return end
}

func payload(n int, seed int64) []byte {
	b := make([]byte, n)
	rng := rand.New(rand.NewSource(seed))
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

// Every CPU library proxy must deliver correct broadcast payloads.
func TestAllLibrariesBcastCorrect(t *testing.T) {
	p := netmodel.Cori(2) // 64 ranks
	libs := append(CPULibraries(p), OMPIDefaultTopo(p))
	libs = append(libs, TopoComparisonSet(p, false)...)
	seen := map[string]bool{}
	for _, lib := range libs {
		if seen[lib.Name] {
			continue
		}
		seen[lib.Name] = true
		lib := lib
		t.Run(lib.Name, func(t *testing.T) {
			want := payload(300_000, 3)
			results := map[int][]byte{}
			runSim(t, p, func(c *simmpi.Comm) {
				var msg comm.Msg
				if c.Rank() == 0 {
					msg = comm.Bytes(append([]byte(nil), want...))
				} else {
					msg = comm.Sized(len(want))
				}
				out := lib.Bcast(c, 0, msg, 0)
				results[c.Rank()] = out.Data
			})
			for r := 0; r < p.Topo.Size(); r++ {
				if !bytes.Equal(results[r], want) {
					t.Fatalf("rank %d: corrupted broadcast", r)
				}
			}
		})
	}
}

// Every CPU library proxy must compute correct reductions.
func TestAllLibrariesReduceCorrect(t *testing.T) {
	p := netmodel.Cori(1) // 32 ranks
	n := p.Topo.Size()
	libs := append(CPULibraries(p), OMPIDefaultTopo(p))
	libs = append(libs, TopoComparisonSet(p, true)...)
	seen := map[string]bool{}
	for _, lib := range libs {
		if seen[lib.Name] || lib.Reduce == nil {
			continue
		}
		seen[lib.Name] = true
		lib := lib
		t.Run(lib.Name, func(t *testing.T) {
			var got []float64
			runSim(t, p, func(c *simmpi.Comm) {
				vals := make([]float64, 1000)
				for i := range vals {
					vals[i] = float64(c.Rank() + i)
				}
				out := lib.Reduce(c, 0, comm.Bytes(comm.EncodeFloat64s(vals)), 0)
				if c.Rank() == 0 {
					got = comm.DecodeFloat64s(out.Data)
				}
			})
			for i := range got {
				want := float64(n*i) + float64(n*(n-1)/2)
				if got[i] != want {
					t.Fatalf("elem %d: got %v, want %v", i, got[i], want)
				}
			}
		})
	}
}

func TestGPULibrariesComplete(t *testing.T) {
	p := netmodel.PSG(2)
	for _, lib := range GPULibraries(p) {
		lib := lib
		t.Run(lib.Name, func(t *testing.T) {
			end := runSim(t, p, func(c *simmpi.Comm) {
				lib.Bcast(c, 0, comm.Sized(4*netmodel.MB), 0)
				lib.Reduce(c, 0, comm.Sized(4*netmodel.MB), 1)
			})
			if end <= 0 || end > time.Second {
				t.Fatalf("implausible makespan %v", end)
			}
		})
	}
}

func TestByName(t *testing.T) {
	p := netmodel.Cori(1)
	for _, name := range []string{"ompi-adapt", "ompi-default", "ompi-default-topo", "intel", "cray", "mvapich"} {
		lib, err := ByName(name, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if lib.Bcast == nil || lib.Reduce == nil {
			t.Fatalf("%s: incomplete library", name)
		}
	}
	if _, err := ByName("nccl", p); err == nil {
		t.Fatal("expected error for unknown library")
	}
}

func TestCPULibrariesPlatformSelection(t *testing.T) {
	cori := CPULibraries(netmodel.Cori(1))
	st2 := CPULibraries(netmodel.Stampede2(1))
	hasName := func(libs []Library, name string) bool {
		for _, l := range libs {
			if l.Name == name {
				return true
			}
		}
		return false
	}
	if !hasName(cori, "Cray MPI") || hasName(cori, "MVAPICH") {
		t.Error("Cori set must have Cray, not MVAPICH")
	}
	if hasName(st2, "Cray MPI") || !hasName(st2, "MVAPICH") {
		t.Error("Stampede2 set must have MVAPICH, not Cray")
	}
	for _, libs := range [][]Library{cori, st2} {
		if libs[len(libs)-1].Name != "OMPI-adapt" {
			t.Error("OMPI-adapt must close the comparison set")
		}
	}
}

// The tuned decision must switch algorithms with size (the kink in the
// paper's Figure 9a).
func TestTunedDecisionSwitches(t *testing.T) {
	small, segS := tunedDecision(1 << 10)
	mid, segM := tunedDecision(128 << 10)
	large, segL := tunedDecision(4 << 20)
	if segS <= 0 || segM != 32<<10 || segL != 128<<10 {
		t.Fatalf("segment sizes: %d %d %d", segS, segM, segL)
	}
	ts, tm, tl := small(64, 0), mid(64, 0), large(64, 0)
	if ts.Depth() != 6 { // binomial over 64
		t.Errorf("small tree depth %d, want 6", ts.Depth())
	}
	if tm.MaxDegree() != 2 { // binary
		t.Errorf("mid tree degree %d, want 2", tm.MaxDegree())
	}
	if tl.MaxDegree() != 1 { // chain
		t.Errorf("large tree degree %d, want 1", tl.MaxDegree())
	}
}
