package hwloc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPlacementDense(t *testing.T) {
	topo := New(2, 2, 4) // 16 ranks
	if topo.Size() != 16 {
		t.Fatalf("size = %d, want 16", topo.Size())
	}
	// Rank 0: node 0, socket 0, core 0. Rank 5: node 0, socket 1, core 1.
	// Rank 8: node 1, socket 0, core 0.
	cases := []struct {
		rank               int
		node, socket, core int
	}{
		{0, 0, 0, 0}, {3, 0, 0, 3}, {4, 0, 1, 0}, {5, 0, 1, 1},
		{7, 0, 1, 3}, {8, 1, 0, 0}, {15, 1, 1, 3},
	}
	for _, c := range cases {
		p := topo.PlaceOf(c.rank)
		if p.Node != c.node || p.Socket != c.socket || p.Core != c.core {
			t.Errorf("rank %d placed at %+v, want node=%d socket=%d core=%d",
				c.rank, p, c.node, c.socket, c.core)
		}
		if p.GPU != -1 {
			t.Errorf("CPU topology rank %d has GPU %d", c.rank, p.GPU)
		}
	}
}

func TestLevelBetween(t *testing.T) {
	topo := New(2, 2, 4)
	cases := []struct {
		a, b int
		want Level
	}{
		{0, 0, LevelSelf},
		{0, 1, LevelCore},
		{0, 3, LevelCore},
		{0, 4, LevelSocket},
		{5, 2, LevelSocket},
		{0, 8, LevelNode},
		{7, 15, LevelNode},
	}
	for _, c := range cases {
		if got := topo.LevelBetween(c.a, c.b); got != c.want {
			t.Errorf("LevelBetween(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLevelSymmetricQuick(t *testing.T) {
	topo := New(4, 2, 8)
	f := func(a, b uint8) bool {
		ra, rb := int(a)%topo.Size(), int(b)%topo.Size()
		return topo.LevelBetween(ra, rb) == topo.LevelBetween(rb, ra)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

func TestRanksOnNodePartition(t *testing.T) {
	topo := New(3, 2, 4)
	seen := map[int]bool{}
	for n := 0; n < topo.Nodes; n++ {
		ranks := topo.RanksOnNode(n)
		if len(ranks) != 8 {
			t.Fatalf("node %d has %d ranks, want 8", n, len(ranks))
		}
		for _, r := range ranks {
			if seen[r] {
				t.Fatalf("rank %d on two nodes", r)
			}
			seen[r] = true
			if topo.NodeOf(r) != n {
				t.Fatalf("rank %d reported on node %d but NodeOf says %d", r, n, topo.NodeOf(r))
			}
		}
	}
	if len(seen) != topo.Size() {
		t.Fatalf("nodes cover %d ranks, want %d", len(seen), topo.Size())
	}
}

func TestRanksOnSocket(t *testing.T) {
	topo := New(2, 2, 4)
	ranks := topo.RanksOnSocket(1, 1)
	want := []int{12, 13, 14, 15}
	if len(ranks) != len(want) {
		t.Fatalf("got %v, want %v", ranks, want)
	}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("got %v, want %v", ranks, want)
		}
	}
}

func TestGPUTopology(t *testing.T) {
	topo := NewGPU(8, 2, 2) // PSG: 8 nodes, 4 GPUs each, 32 ranks
	if topo.Size() != 32 {
		t.Fatalf("size = %d, want 32", topo.Size())
	}
	if !topo.HasGPUs() {
		t.Fatal("GPU topology must report HasGPUs")
	}
	// Rank 3 on node 0 socket 1 gpu-slot 1 → node-local GPU id 3.
	if p := topo.PlaceOf(3); p.GPU != 3 || p.Socket != 1 {
		t.Fatalf("rank 3 place %+v, want socket 1 GPU 3", p)
	}
	// Every rank on a node must have a distinct GPU.
	for n := 0; n < topo.Nodes; n++ {
		gpus := map[int]bool{}
		for _, r := range topo.RanksOnNode(n) {
			g := topo.PlaceOf(r).GPU
			if gpus[g] {
				t.Fatalf("node %d: GPU %d bound twice", n, g)
			}
			gpus[g] = true
		}
	}
}

func TestSubset(t *testing.T) {
	topo := New(32, 2, 16) // Cori 1024
	sub := topo.Subset(256)
	if sub.Nodes != 8 || sub.Size() != 256 {
		t.Fatalf("subset: %v", sub)
	}
	if sub.SocketsPerNode != 2 || sub.CoresPerSocket != 16 {
		t.Fatal("subset must preserve node shape")
	}
}

func TestSubsetPanicsOnPartialNode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for partial-node subset")
		}
	}()
	New(2, 2, 4).Subset(5)
}

func TestSocketOfUnique(t *testing.T) {
	topo := New(2, 2, 4)
	if topo.SocketOf(0) == topo.SocketOf(4) {
		t.Fatal("sockets on same node must differ")
	}
	if topo.SocketOf(0) == topo.SocketOf(8) {
		t.Fatal("sockets on different nodes must differ")
	}
	if topo.SocketOf(0) != topo.SocketOf(3) {
		t.Fatal("ranks on same socket must share SocketOf")
	}
}

func TestPlacementBySocket(t *testing.T) {
	topo := NewPlaced(2, 2, 4, PlaceBySocket)
	// Within node 0: ranks alternate sockets 0,1,0,1,…
	for r := 0; r < 8; r++ {
		p := topo.PlaceOf(r)
		if p.Node != 0 {
			t.Fatalf("rank %d on node %d, want 0", r, p.Node)
		}
		if p.Socket != r%2 {
			t.Fatalf("rank %d on socket %d, want %d", r, p.Socket, r%2)
		}
	}
	// Consecutive ranks are now inter-socket neighbours.
	if topo.LevelBetween(0, 1) != LevelSocket {
		t.Fatalf("by-socket: ranks 0,1 level %v", topo.LevelBetween(0, 1))
	}
}

func TestPlacementByNode(t *testing.T) {
	topo := NewPlaced(3, 2, 4, PlaceByNode)
	for r := 0; r < topo.Size(); r++ {
		if topo.NodeOf(r) != r%3 {
			t.Fatalf("rank %d on node %d, want %d", r, topo.NodeOf(r), r%3)
		}
	}
	// Consecutive ranks now talk over the network.
	if topo.LevelBetween(0, 1) != LevelNode {
		t.Fatalf("by-node: ranks 0,1 level %v", topo.LevelBetween(0, 1))
	}
}

func TestPlacementsArePermutations(t *testing.T) {
	// Every placement must assign each (node, socket, core) slot exactly
	// once.
	for _, pl := range []Placement{PlaceByCore, PlaceBySocket, PlaceByNode} {
		topo := NewPlaced(3, 2, 5, pl)
		seen := map[Place]bool{}
		for r := 0; r < topo.Size(); r++ {
			p := topo.PlaceOf(r)
			if seen[p] {
				t.Fatalf("%v: slot %+v assigned twice", pl, p)
			}
			seen[p] = true
			if p.Node >= 3 || p.Socket >= 2 || p.Core >= 5 {
				t.Fatalf("%v: slot %+v out of range", pl, p)
			}
		}
	}
}

func TestSubsetPreservesPlacement(t *testing.T) {
	topo := NewPlaced(4, 2, 4, PlaceBySocket)
	sub := topo.Subset(16)
	if sub.Mapping != PlaceBySocket {
		t.Fatal("subset dropped the placement strategy")
	}
	if sub.LevelBetween(0, 1) != LevelSocket {
		t.Fatal("subset placement semantics changed")
	}
}

func TestStringsAndBounds(t *testing.T) {
	for l := LevelSelf; l <= LevelNode; l++ {
		if l.String() == "" {
			t.Errorf("level %d has empty name", l)
		}
	}
	for _, pl := range []Placement{PlaceByCore, PlaceBySocket, PlaceByNode} {
		if pl.String() == "" {
			t.Errorf("placement %d has empty name", pl)
		}
	}
	cpu := New(2, 2, 4)
	if cpu.String() == "" {
		t.Error("topology string empty")
	}
	gpu := NewGPU(1, 2, 2)
	if gpu.String() == "" {
		t.Error("GPU topology string empty")
	}
	defer func() {
		if recover() == nil {
			t.Error("PlaceOf out of range must panic")
		}
	}()
	cpu.PlaceOf(99)
}
