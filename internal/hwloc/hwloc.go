// Package hwloc models hardware topology and process placement, playing
// the role Portable Hardware Locality (hwloc) + PMIx play for the real
// ADAPT (paper §3.2.1): every rank knows which node, socket and core every
// other rank occupies, and on GPU platforms which GPU it is bound to.
//
// The model is a three-level machine tree (node → socket → core) with an
// optional GPU per rank group, matching the clusters in the paper's
// evaluation (§5): Cori (2 sockets × 16 cores), Stampede2 (2 × 24) and the
// NVIDIA PSG cluster (2 sockets × 2 GPUs per node).
package hwloc

import "fmt"

// Level classifies the topological distance between two ranks. Smaller is
// closer. It names the data-movement lane a message between them uses.
type Level uint8

const (
	// LevelSelf is a rank talking to itself (loopback copy).
	LevelSelf Level = iota
	// LevelCore: same socket — shared-memory lane.
	LevelCore
	// LevelSocket: same node, different socket — QPI/UPI lane.
	LevelSocket
	// LevelNode: different nodes — NIC + switch fabric lane.
	LevelNode
)

func (l Level) String() string {
	switch l {
	case LevelSelf:
		return "self"
	case LevelCore:
		return "intra-socket"
	case LevelSocket:
		return "inter-socket"
	case LevelNode:
		return "inter-node"
	}
	return fmt.Sprintf("Level(%d)", uint8(l))
}

// Place is one rank's physical location.
type Place struct {
	Node   int
	Socket int // socket index within the node
	Core   int // core index within the socket
	GPU    int // GPU index within the node; -1 on CPU-only platforms
}

// Placement selects how consecutive ranks map onto the machine — the
// moral equivalent of mpirun's --map-by. Placement interacts with the
// topology-aware tree builder: a spread placement turns rank-neighbour
// edges into slow-lane edges, which is exactly what topology awareness
// exists to compensate for.
type Placement int

const (
	// PlaceByCore fills a socket, then the next socket, then the next
	// node (mpirun --map-by core, the dense default).
	PlaceByCore Placement = iota
	// PlaceBySocket round-robins sockets within each node before moving
	// to the next node (mpirun --map-by socket).
	PlaceBySocket
	// PlaceByNode round-robins nodes machine-wide (mpirun --map-by node).
	PlaceByNode
)

func (p Placement) String() string {
	switch p {
	case PlaceByCore:
		return "by-core"
	case PlaceBySocket:
		return "by-socket"
	case PlaceByNode:
		return "by-node"
	}
	return fmt.Sprintf("Placement(%d)", int(p))
}

// Topology describes a whole machine and a placement of ranks onto it.
type Topology struct {
	Nodes          int
	SocketsPerNode int
	CoresPerSocket int
	GPUsPerSocket  int // 0 on CPU platforms
	Mapping        Placement
	places         []Place
}

// New builds a dense by-core topology for nodes×sockets×cores ranks.
func New(nodes, socketsPerNode, coresPerSocket int) *Topology {
	return newTopo(nodes, socketsPerNode, coresPerSocket, 0, PlaceByCore)
}

// NewPlaced builds a CPU topology with an explicit placement strategy.
func NewPlaced(nodes, socketsPerNode, coresPerSocket int, pl Placement) *Topology {
	return newTopo(nodes, socketsPerNode, coresPerSocket, 0, pl)
}

// NewGPU builds a GPU platform where each rank is bound to one GPU, so
// coresPerSocket is gpusPerSocket (one rank per GPU, as in the paper §4:
// "most GPU-aware MPI implementations assume each MPI process is bound to
// one GPU").
func NewGPU(nodes, socketsPerNode, gpusPerSocket int) *Topology {
	return newTopo(nodes, socketsPerNode, gpusPerSocket, gpusPerSocket, PlaceByCore)
}

func newTopo(nodes, sockets, cores, gpus int, pl Placement) *Topology {
	if nodes <= 0 || sockets <= 0 || cores <= 0 {
		panic(fmt.Sprintf("hwloc: invalid topology %d×%d×%d", nodes, sockets, cores))
	}
	t := &Topology{
		Nodes:          nodes,
		SocketsPerNode: sockets,
		CoresPerSocket: cores,
		GPUsPerSocket:  gpus,
		Mapping:        pl,
	}
	t.places = make([]Place, t.Size())
	perNode := sockets * cores
	for r := range t.places {
		var node, socket, core int
		switch pl {
		case PlaceBySocket:
			node = r / perNode
			i := r % perNode
			socket = i % sockets
			core = i / sockets
		case PlaceByNode:
			node = r % nodes
			i := r / nodes
			socket = i / cores
			core = i % cores
		default: // PlaceByCore
			node = r / perNode
			socket = (r % perNode) / cores
			core = r % cores
		}
		gpu := -1
		if gpus > 0 {
			gpu = socket*gpus + core
		}
		t.places[r] = Place{Node: node, Socket: socket, Core: core, GPU: gpu}
	}
	return t
}

// Size returns the total number of ranks the machine hosts.
func (t *Topology) Size() int { return t.Nodes * t.SocketsPerNode * t.CoresPerSocket }

// PlaceOf returns rank r's physical location.
func (t *Topology) PlaceOf(r int) Place {
	if r < 0 || r >= len(t.places) {
		panic(fmt.Sprintf("hwloc: rank %d out of range [0,%d)", r, len(t.places)))
	}
	return t.places[r]
}

// LevelBetween classifies the lane between two ranks.
func (t *Topology) LevelBetween(a, b int) Level {
	if a == b {
		return LevelSelf
	}
	pa, pb := t.PlaceOf(a), t.PlaceOf(b)
	switch {
	case pa.Node != pb.Node:
		return LevelNode
	case pa.Socket != pb.Socket:
		return LevelSocket
	default:
		return LevelCore
	}
}

// NodeOf returns the node index of rank r.
func (t *Topology) NodeOf(r int) int { return t.PlaceOf(r).Node }

// SocketOf returns the global socket index (node*SocketsPerNode + socket)
// of rank r, unique across the machine.
func (t *Topology) SocketOf(r int) int {
	p := t.PlaceOf(r)
	return p.Node*t.SocketsPerNode + p.Socket
}

// RanksOnNode returns all ranks placed on the given node, ascending.
func (t *Topology) RanksOnNode(node int) []int {
	var out []int
	for r := 0; r < t.Size(); r++ {
		if t.places[r].Node == node {
			out = append(out, r)
		}
	}
	return out
}

// RanksOnSocket returns all ranks on (node, socket), ascending.
func (t *Topology) RanksOnSocket(node, socket int) []int {
	var out []int
	for r := 0; r < t.Size(); r++ {
		if t.places[r].Node == node && t.places[r].Socket == socket {
			out = append(out, r)
		}
	}
	return out
}

// HasGPUs reports whether ranks are bound to GPUs.
func (t *Topology) HasGPUs() bool { return t.GPUsPerSocket > 0 }

func (t *Topology) String() string {
	if t.HasGPUs() {
		return fmt.Sprintf("%d nodes × %d sockets × %d GPUs (%d ranks)",
			t.Nodes, t.SocketsPerNode, t.GPUsPerSocket, t.Size())
	}
	return fmt.Sprintf("%d nodes × %d sockets × %d cores (%d ranks)",
		t.Nodes, t.SocketsPerNode, t.CoresPerSocket, t.Size())
}

// Subset returns a topology restricted to the first n ranks, for strong-
// scaling sweeps that vary the process count on a fixed machine shape. n
// must fill whole nodes (the paper scales by node count).
func (t *Topology) Subset(n int) *Topology {
	perNode := t.SocketsPerNode * t.CoresPerSocket
	if n <= 0 || n%perNode != 0 || n > t.Size() {
		panic(fmt.Sprintf("hwloc: subset %d must be a positive multiple of ranks-per-node %d ≤ %d", n, perNode, t.Size()))
	}
	return newTopo(n/perNode, t.SocketsPerNode, t.CoresPerSocket, t.GPUsPerSocket, t.Mapping)
}
