package runtime

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"adapt/internal/comm"
	"adapt/internal/faults"
	"adapt/internal/progress"
	"adapt/internal/trace"
)

// Fault injection in the live runtime. The delivery path mirrors the
// simulator's chaos transport (internal/simmpi/chaos.go) with the
// simplifications a shared-address-space executor affords:
//
//   - Retries are resolved at send time: the sender walks the attempt
//     sequence (each drawing its own deterministic verdict), accumulates
//     the retransmit backoff of every dropped attempt into a wall-clock
//     delay, and delivers the first surviving copy after that delay. The
//     observable schedule — which attempt survives, how late it lands —
//     is identical to replaying the loss/retry exchange, without modeling
//     acks on live goroutines.
//   - Duplicates are real: a second copy (with its own payload buffer)
//     races the first through deliver, where per-transmission ids
//     deduplicate.
//   - A message whose every attempt drops is permanently lost. Rendezvous
//     sends then fail with a structured *faults.TimeoutError; eager sends
//     have already completed (buffer-reuse semantics), so the loss
//     surfaces at the stuck receiver — bound Run with WithRunTimeout to
//     turn that hang into a per-rank pending-operation dump.
//
// The injector's verdicts depend only on message identity, so a fixed
// plan seed yields the same drops/dups/losses regardless of goroutine
// interleaving; wall-clock arrival order of near-simultaneous copies is
// the only nondeterminism, and dedup makes it invisible to receivers.

// WithFaults installs a fault plan and the ack/retry tuning used to
// recover from it (zero Recovery fields take defaults).
func WithFaults(p faults.Plan, rec faults.Recovery) Option {
	return func(w *World) {
		w.inj = faults.NewInjector(p)
		w.rec = rec.Normalized()
		// Crash rules are armed once the rank slice exists (NewWorld runs
		// options before building ranks).
		w.crashPlan = p.Crashes
	}
}

// FaultStats returns what the injector did; zero when no plan installed.
func (w *World) FaultStats() faults.Stats {
	if w.inj == nil {
		return faults.Stats{}
	}
	return w.inj.Stats()
}

// Failures lists operations that exhausted their attempt budget.
func (w *World) Failures() []*faults.TimeoutError {
	w.failMu.Lock()
	defer w.failMu.Unlock()
	return append([]*faults.TimeoutError(nil), w.failures...)
}

// chaosDeliver carries env from c to d under the fault plan. Runs on the
// sender's goroutine; delayed copies hop to timer goroutines.
func (c *Comm) chaosDeliver(d *Comm, env *progress.Env, size int) {
	w := c.w
	env.Xid = w.xmitSeq.Add(1)
	if w.fec != nil && env.Rts == nil {
		// Eager segments route through the FEC framer (fec.go): a lost
		// first attempt waits for its group's parity before falling back
		// to the retry walk below.
		w.fec.send(c, d, env, size)
		return
	}
	c.chaosWalk(d, env, size, 0, 0)
}

// chaosWalk resolves the attempt sequence from startAttempt on, with
// wait already accumulated by earlier (consumed) attempts. A corrupt
// verdict is a detected loss — the damaged copy fails its checksum at
// the receiver — so it burns an attempt exactly like a drop.
func (c *Comm) chaosWalk(d *Comm, env *progress.Env, size int, startAttempt int, wait time.Duration) {
	w := c.w
	for attempt := startAttempt; attempt < w.rec.MaxAttempts; attempt++ {
		v := w.inj.Message(c.rank, d.rank, env.Tag, env.Xid, attempt, c.Now(), size)
		if v.Drop || v.Corrupt {
			c.traceFault(trace.FaultDrop, d.rank, env.Tag, size, env.Xid)
			wait += w.rec.RetryDelay(attempt, env.Xid)
			if attempt+1 < w.rec.MaxAttempts {
				w.inj.NoteRetry()
				c.traceFault(trace.FaultRetry, d.rank, env.Tag, size, env.Xid)
			}
			continue
		}
		if v.Dup {
			// The duplicate gets its own payload buffer (eager payloads are
			// pooled and freed independently) and trails the original.
			dup := *env
			if dup.Rts == nil && dup.Msg.Data != nil {
				buf := comm.GetBuf(len(dup.Msg.Data))
				copy(buf, dup.Msg.Data)
				dup.Msg.Data = buf
			}
			deliverAfter(d, &dup, wait+v.Extra+w.rec.RTO/2)
		}
		deliverAfter(d, env, wait+v.Extra)
		return
	}
	// Every attempt dropped: the message is lost for good.
	w.inj.NoteTimeout()
	c.traceFault(trace.FaultTimeout, d.rank, env.Tag, size, env.Xid)
	err := &faults.TimeoutError{
		Rank: c.rank, Peer: d.rank, Tag: env.Tag,
		Attempts: w.rec.MaxAttempts, Elapsed: wait,
	}
	w.failMu.Lock()
	w.failures = append(w.failures, err)
	w.failMu.Unlock()
	if env.Rts != nil {
		env.Rts.Complete(comm.Status{Source: c.rank, Tag: env.Tag, Err: err})
		return
	}
	if env.Msg.Data != nil {
		comm.PutBuf(env.Msg.Data) // the receiver will never own this copy
	}
}

// traceFault records one fault-path event; no-op when tracing is off.
func (c *Comm) traceFault(kind trace.Kind, peer int, tag comm.Tag, size int, xid uint64) {
	if tb := c.w.Trace; tb != nil {
		tb.Add(trace.Record{At: c.Now(), Rank: c.rank, Kind: kind,
			Peer: peer, Tag: tag, Size: size, Xid: xid})
	}
}

// deliverAfter lands env on d now or after a wall-clock delay.
func deliverAfter(d *Comm, env *progress.Env, delay time.Duration) {
	if delay <= 0 {
		d.deliver(env)
		return
	}
	time.AfterFunc(delay, func() { d.deliver(env) })
}

// suppress discards a duplicate delivery that lost the dedup race.
func (c *Comm) suppress(env *progress.Env) {
	c.w.inj.NoteSuppressed()
	if env.Rts == nil && env.Msg.Data != nil {
		comm.PutBuf(env.Msg.Data)
	}
}

// pendingDump renders every rank's in-flight state for the Run watchdog:
// operation counts, posted receives, and parked unexpected messages —
// enough to see which edge of which collective lost what.
func (w *World) pendingDump() string {
	var sb strings.Builder
	for _, c := range w.ranks {
		pending, posted, unexpected := c.eng.Snapshot()
		fmt.Fprintf(&sb, "  rank %d: %d ops in flight", c.rank, pending)
		for _, req := range posted {
			src := "any"
			if req.Src != comm.AnySource {
				src = fmt.Sprintf("%d", req.Src)
			}
			fmt.Fprintf(&sb, "; posted recv src=%s tag=%s", src, req.Tag)
		}
		for _, env := range unexpected {
			kind := "eager"
			if env.Rts != nil {
				kind = "rts"
			}
			fmt.Fprintf(&sb, "; unexpected %s from %d tag=%s", kind, env.Src, env.Tag)
		}
		sb.WriteByte('\n')
	}
	// Failures are recorded in completion order, which varies run to run
	// on live goroutines; sort their rendered forms so the dump is
	// deterministic for a given set of losses.
	lost := make([]string, 0)
	for _, f := range w.Failures() {
		lost = append(lost, f.Error())
	}
	sort.Strings(lost)
	for _, l := range lost {
		fmt.Fprintf(&sb, "  lost: %v\n", l)
	}
	return sb.String()
}
