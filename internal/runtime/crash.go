package runtime

import (
	"fmt"
	goruntime "runtime"
	"time"

	"adapt/internal/comm"
	"adapt/internal/faults"
	"adapt/internal/perf"
	"adapt/internal/progress"
	"adapt/internal/trace"
)

// Fail-stop crash model on the live substrate. Mirrors the simulator's
// (internal/simmpi/crash.go) with wall-clock detector leases:
//
//   - The crash point is the same pure function of the rank's program
//     order — the (AfterSends+1)-th send initiation — so a plan kills
//     the rank at the same protocol step as in the simulator.
//   - The dying rank marks itself halted, sweeps its unexpected queue
//     (live rendezvous senders parked there fail with a TimeoutError
//     instead of hanging), and exits its goroutine via runtime.Goexit —
//     its deferred Run bookkeeping still runs, so Run returns normally
//     when the survivors finish.
//   - deliver() refuses traffic addressed to a halted rank (rendezvous
//     announcements fail the sender, eager payloads are swallowed) and
//     annihilates in-flight copies from a dead sender.
//   - Detector leases are time.AfterFunc timers; confirmation fans death
//     notices out to every surviving rank's control-plane queue.
type crashCtl struct {
	// All fields are guarded by the owning World's crashMu, except the
	// schedule (after), which is immutable once armed.
	after     map[int]int
	sends     []int
	dead      []bool
	confirmed []bool
	suspects  uint64
	confirms  uint64
	repairs   uint64
}

// armCrashes builds the crash controller once the ranks exist (called at
// the end of NewWorld; options run before the rank slice is built).
func (w *World) armCrashes() {
	if len(w.crashPlan) == 0 {
		return
	}
	n := w.Size()
	ct := &crashCtl{
		after:     make(map[int]int, len(w.crashPlan)),
		sends:     make([]int, n),
		dead:      make([]bool, n),
		confirmed: make([]bool, n),
	}
	for _, cr := range w.crashPlan {
		if cr.Rank >= n {
			panic(fmt.Sprintf("runtime: crash rule for rank %d in a %d-rank world", cr.Rank, n))
		}
		ct.after[cr.Rank] = cr.AfterSends
	}
	w.crash = ct
}

// DetectorStats mirrors simmpi.DetectorStats for the live substrate.
type DetectorStats struct {
	Suspects uint64
	Confirms uint64
	Repairs  uint64
}

// DetectorStats returns the detector counters; zero when no crash rules
// are armed.
func (w *World) DetectorStats() DetectorStats {
	ct := w.crash
	if ct == nil {
		return DetectorStats{}
	}
	w.crashMu.Lock()
	defer w.crashMu.Unlock()
	return DetectorStats{Suspects: ct.suspects, Confirms: ct.confirms, Repairs: ct.repairs}
}

// Crashed returns the per-rank death mask.
func (w *World) Crashed() []bool {
	out := make([]bool, w.Size())
	if ct := w.crash; ct != nil {
		w.crashMu.Lock()
		copy(out, ct.dead)
		w.crashMu.Unlock()
	}
	return out
}

// rankDead reports whether r has halted.
func (w *World) rankDead(r int) bool {
	ct := w.crash
	if ct == nil {
		return false
	}
	w.crashMu.Lock()
	defer w.crashMu.Unlock()
	return ct.dead[r]
}

// noteSend counts one send initiation by c; at the rank's crash point it
// halts the rank and exits the calling goroutine (Goexit runs the Run
// deferrals, so the world keeps going without it).
func (w *World) noteSend(c *Comm) {
	ct := w.crash
	if ct == nil {
		return
	}
	w.crashMu.Lock()
	k, scheduled := ct.after[c.rank]
	if !scheduled || ct.dead[c.rank] {
		w.crashMu.Unlock()
		return
	}
	n := ct.sends[c.rank]
	ct.sends[c.rank]++
	if n < k {
		w.crashMu.Unlock()
		return
	}
	ct.dead[c.rank] = true
	w.crashMu.Unlock()
	if tb := w.Trace; tb != nil {
		tb.Add(trace.Record{At: c.Now(), Rank: c.rank, Kind: trace.Crash, Peer: -1})
	}
	c.halt()
	w.armDetector(c.rank)
	goruntime.Goexit()
}

// halt tears down the dying rank's matching engine and releases live
// senders parked in its unexpected queue.
func (c *Comm) halt() {
	_, une := c.eng.Halt()
	for _, env := range une {
		c.refuse(env)
	}
}

// refuse handles traffic addressed to a halted rank: a rendezvous
// announcement fails its (live) sender with the same structured error an
// exhausted retry chain produces; an eager payload is swallowed.
func (c *Comm) refuse(env *progress.Env) {
	if env.Rts != nil {
		err := &faults.TimeoutError{Rank: env.Src, Peer: c.rank, Tag: env.Tag, Attempts: 1}
		if c.w.inj != nil {
			c.w.inj.NoteTimeout()
		}
		c.w.failMu.Lock()
		c.w.failures = append(c.w.failures, err)
		c.w.failMu.Unlock()
		env.Rts.Complete(comm.Status{Source: env.Src, Tag: env.Tag, Err: err})
		return
	}
	if env.Msg.Data != nil {
		comm.PutBuf(env.Msg.Data)
	}
}

// annihilate swallows an in-flight copy from a crashed sender.
func (c *Comm) annihilate(env *progress.Env) {
	if env.Rts == nil && env.Msg.Data != nil {
		comm.PutBuf(env.Msg.Data)
	}
	// A rendezvous announcement from a dead sender simply vanishes: its
	// request will never be waited on again.
}

// armDetector starts the suspicion and confirmation leases for r.
func (w *World) armDetector(r int) {
	ct := w.crash
	time.AfterFunc(w.rec.SuspectAfter, func() {
		w.crashMu.Lock()
		ct.suspects++
		w.crashMu.Unlock()
		perf.RecordDetectorSuspect()
		if tb := w.Trace; tb != nil {
			tb.Add(trace.Record{At: time.Since(w.start), Rank: -1, Kind: trace.Suspect, Peer: r})
		}
	})
	time.AfterFunc(w.rec.ConfirmAfter, func() {
		w.crashMu.Lock()
		ct.confirmed[r] = true
		ct.confirms++
		ct.repairs++
		w.crashMu.Unlock()
		perf.RecordDetectorConfirm()
		perf.RecordTreeRepair()
		if tb := w.Trace; tb != nil {
			tb.Add(trace.Record{At: time.Since(w.start), Rank: -1, Kind: trace.Confirm, Peer: r})
			tb.Add(trace.Record{At: time.Since(w.start), Rank: -1, Kind: trace.Repair, Peer: r})
		}
		for _, d := range w.ranks {
			if d.rank != r && !w.rankDead(d.rank) {
				d.pushNotice(comm.Notice{Kind: comm.NoticeDeath, Rank: r})
			}
		}
	})
}

// ---- comm.FailStop implementation ----

var _ comm.FailStop = (*Comm)(nil)

// pushNotice appends a control-plane notice and wakes the rank.
func (c *Comm) pushNotice(n comm.Notice) { c.eng.PushNotice(n) }

// CrashesEnabled reports whether crash rules are armed in this world.
func (c *Comm) CrashesEnabled() bool { return c.w.crash != nil }

// ConfirmedDead returns a fresh detector-confirmed death mask.
func (c *Comm) ConfirmedDead() []bool {
	out := make([]bool, c.Size())
	if ct := c.w.crash; ct != nil {
		c.w.crashMu.Lock()
		copy(out, ct.confirmed)
		c.w.crashMu.Unlock()
	}
	return out
}

// TakeNotices drains this rank's pending control-plane notices.
func (c *Comm) TakeNotices() []comm.Notice { return c.eng.TakeNotices() }

// WaitEvent blocks until a completion callback fires or a new notice
// arrives. Legal with no operation in flight.
func (c *Comm) WaitEvent() { c.eng.WaitEvent() }

// CancelRecv retracts a posted, unmatched receive. Returns false when
// the receive already matched (its callback still fires).
func (c *Comm) CancelRecv(r comm.Request) bool { return c.eng.CancelRecv(r) }

// Commit fans a NoticeCommit out to every live rank. Counts as a send
// initiation, so a crash scheduled at the root's commit point fires here.
func (c *Comm) Commit(seq int, survivors []bool) {
	w := c.w
	w.noteSend(c)
	mask := append([]bool(nil), survivors...)
	for _, d := range w.ranks {
		if d != c && !w.rankDead(d.rank) {
			d.pushNotice(comm.Notice{Kind: comm.NoticeCommit, Seq: seq, Survivors: mask})
		}
	}
}
