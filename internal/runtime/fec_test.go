package runtime

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"adapt/internal/comm"
	"adapt/internal/faults"
	"adapt/internal/fec"
)

// liveRec gives group repair plenty of headroom on wall clock: the group
// flush runs at RTO/4 and reconstruction delivers synchronously at
// close, well inside the first retransmit timer.
func liveRec() faults.Recovery {
	return faults.Recovery{RTO: 50 * time.Millisecond}.Normalized()
}

func livePayload(i int) []byte {
	b := make([]byte, 48+i%5)
	for j := range b {
		b[j] = byte(i*17 + j)
	}
	return b
}

// Within-parity losses on a forward-lossy link repair with zero
// retransmissions on the live runtime too — the same invariant the
// simulator proves, on real goroutines and wall clock.
func TestLiveFECZeroRetransmitWithinParity(t *testing.T) {
	exercised := false
	for seed := 1; seed <= 12; seed++ {
		plan := faults.MustParsePlan(fmt.Sprintf("seed=%d; link 0->1: drop=0.12", seed))
		w := NewWorld(2, WithFaults(plan, liveRec()), WithFEC(fec.Config{K: 4, M: 2}),
			WithRunTimeout(30*time.Second))
		var mu sync.Mutex
		received := 0
		w.Run(func(c *Comm) {
			switch c.Rank() {
			case 0:
				for i := 0; i < 32; i++ {
					c.Send(1, ptag(i), comm.Bytes(livePayload(i)))
				}
			case 1:
				for i := 0; i < 32; i++ {
					st := c.Recv(0, ptag(i))
					if !bytes.Equal(st.Msg.Data, livePayload(i)) {
						t.Errorf("seed %d segment %d corrupted", seed, i)
					}
					mu.Lock()
					received++
					mu.Unlock()
				}
			}
		})
		if received != 32 {
			t.Fatalf("seed %d: received %d of 32", seed, received)
		}
		st, fs := w.FaultStats(), w.FECStats()
		if fs.GroupsLost == 0 && st.Retries != 0 {
			t.Fatalf("seed %d: %d retries with every group repaired (faults %v, fec %+v)",
				seed, st.Retries, st, fs)
		}
		if len(w.Failures()) != 0 {
			t.Fatalf("seed %d: unrecovered loss: %v", seed, w.Failures()[0])
		}
		if st.Drops > 0 && fs.Reconstructed > 0 && st.Retries == 0 {
			exercised = true
		}
	}
	if !exercised {
		t.Fatal("no seed exercised the zero-retransmit repair path")
	}
}

// Loss beyond the parity budget resumes the send-time retry walk: the
// stream completes via retransmission, and the lost-group counter shows
// the fallback actually ran.
func TestLiveFECLossBeyondParityFallsBackToARQ(t *testing.T) {
	plan := faults.MustParsePlan("seed=6; link 0->1: drop=0.7")
	w := NewWorld(2, WithFaults(plan, liveRec()), WithFEC(fec.Config{K: 4, M: 1}),
		WithRunTimeout(30*time.Second))
	var mu sync.Mutex
	received := 0
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			for i := 0; i < 16; i++ {
				c.Send(1, ptag(i), comm.Bytes(livePayload(i)))
			}
		case 1:
			for i := 0; i < 16; i++ {
				st := c.Recv(0, ptag(i))
				if !bytes.Equal(st.Msg.Data, livePayload(i)) {
					t.Errorf("segment %d corrupted", i)
				}
				mu.Lock()
				received++
				mu.Unlock()
			}
		}
	})
	if received != 16 {
		t.Fatalf("received %d of 16", received)
	}
	st, fs := w.FaultStats(), w.FECStats()
	if fs.GroupsLost == 0 {
		t.Fatalf("70%% drop with m=1 never outran the parity: %+v", fs)
	}
	if st.Retries == 0 {
		t.Fatalf("lost groups never retransmitted: faults %v, fec %+v", st, fs)
	}
	if len(w.Failures()) != 0 {
		t.Fatalf("ARQ backstop failed to recover: %v", w.Failures()[0])
	}
}

// A black-holed link under FEC still lands in the structured-failure
// path once the resumed walk exhausts its budget: the watchdog dump (not
// a hang) reports the loss, same as plain chaos.
func TestLiveFECExhaustedAttemptsRecorded(t *testing.T) {
	plan := faults.MustParsePlan("seed=2; link 0->1: drop=1")
	rec := faults.Recovery{RTO: time.Millisecond, MaxAttempts: 2}.Normalized()
	w := NewWorld(2, WithFaults(plan, rec), WithFEC(fec.Config{K: 2, M: 1}),
		WithRunTimeout(500*time.Millisecond))
	panicked := false
	func() {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		w.Run(func(c *Comm) {
			switch c.Rank() {
			case 0:
				c.Send(1, ptag(0), comm.Bytes(livePayload(0)))
				c.Send(1, ptag(1), comm.Bytes(livePayload(1)))
			case 1:
				c.Recv(0, ptag(0))
				c.Recv(0, ptag(1))
			}
		})
	}()
	if !panicked {
		t.Fatal("receiver of a black-holed stream did not hit the watchdog")
	}
	if fs := w.FECStats(); fs.GroupsLost == 0 {
		t.Fatalf("total loss never recorded a lost group: %+v", fs)
	}
	if len(w.Failures()) == 0 {
		t.Fatal("no structured failures recorded")
	}
}
