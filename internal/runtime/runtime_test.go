package runtime

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"adapt/internal/comm"
)

func tag(seg int) comm.Tag { return comm.MakeTag(comm.KindP2P, 0, seg) }

func TestEagerSendRecv(t *testing.T) {
	w := NewWorld(2)
	payload := []byte("eager payload")
	var got []byte
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, tag(0), comm.Bytes(payload))
		case 1:
			got = c.Recv(0, tag(0)).Msg.Data
		}
	})
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q", got)
	}
}

func TestEagerCopiesPayload(t *testing.T) {
	// The sender may scribble on its buffer right after an eager Send.
	w := NewWorld(2)
	var got []byte
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			buf := []byte{1, 2, 3, 4}
			c.Send(1, tag(0), comm.Bytes(buf))
			for i := range buf {
				buf[i] = 0xFF
			}
			c.Send(1, tag(1), comm.Bytes([]byte{9})) // unblock test ordering
		case 1:
			got = c.Recv(0, tag(0)).Msg.Data
			c.Recv(0, tag(1))
		}
	})
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatalf("eager payload corrupted: %v", got)
	}
}

func TestRendezvousLargeMessage(t *testing.T) {
	w := NewWorld(2)
	payload := make([]byte, 256*1024)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var got []byte
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, tag(0), comm.Bytes(payload))
		case 1:
			got = c.Recv(0, tag(0)).Msg.Data
		}
	})
	if !bytes.Equal(got, payload) {
		t.Fatal("rendezvous payload mismatch")
	}
}

func TestManyToOneWildcard(t *testing.T) {
	const n = 16
	w := NewWorld(n)
	var sum int64
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			for i := 1; i < n; i++ {
				st := c.Recv(comm.AnySource, comm.AnyTag)
				atomic.AddInt64(&sum, int64(st.Msg.Data[0]))
			}
		} else {
			c.Send(0, tag(c.Rank()), comm.Bytes([]byte{byte(c.Rank())}))
		}
	})
	want := int64(n * (n - 1) / 2)
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestTagSelectivityAcrossArrivalOrder(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			for i := 0; i < 8; i++ {
				c.Send(1, tag(i), comm.Bytes([]byte{byte(i)}))
			}
		case 1:
			for i := 7; i >= 0; i-- { // receive in reverse order
				st := c.Recv(0, tag(i))
				if st.Msg.Data[0] != byte(i) {
					t.Errorf("tag %d delivered payload %d", i, st.Msg.Data[0])
				}
			}
		}
	})
}

func TestIsendWaitAllPipeline(t *testing.T) {
	const n = 8
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			var rs []comm.Request
			for p := 1; p < n; p++ {
				for s := 0; s < 4; s++ {
					rs = append(rs, c.Isend(p, tag(s), comm.Bytes(make([]byte, 32*1024))))
				}
			}
			c.WaitAll(rs)
		} else {
			var rs []comm.Request
			for s := 0; s < 4; s++ {
				rs = append(rs, c.Irecv(0, tag(s)))
			}
			c.WaitAll(rs)
		}
	})
}

func TestWaitAny(t *testing.T) {
	const n = 5
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			rs := make([]comm.Request, n-1)
			for p := 1; p < n; p++ {
				rs[p-1] = c.Irecv(p, tag(0))
			}
			seen := 0
			for seen < n-1 {
				i, st := c.WaitAny(rs)
				if st.Source != i+1 {
					t.Errorf("slot %d completed from %d", i, st.Source)
				}
				rs[i] = nil
				seen++
			}
		} else {
			c.Send(0, tag(0), comm.Bytes([]byte{1}))
		}
	})
}

func TestOnCompleteEventDrivenWindow(t *testing.T) {
	// The ADAPT building block: keep 3 sends in flight to one peer,
	// repost from the completion callback, drive with Progress.
	const total = 20
	w := NewWorld(2)
	var received int32
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			next := 0
			inflight := 0
			var post func()
			post = func() {
				r := c.Isend(1, tag(next), comm.Bytes(make([]byte, 64*1024)))
				next++
				inflight++
				c.OnComplete(r, func(comm.Status) {
					inflight--
					if next < total {
						post()
					}
				})
			}
			for i := 0; i < 3 && next < total; i++ {
				post()
			}
			for inflight > 0 {
				c.Progress()
			}
		case 1:
			for i := 0; i < total; i++ {
				c.Recv(0, tag(i))
				atomic.AddInt32(&received, 1)
			}
		}
	})
	if received != total {
		t.Fatalf("received %d, want %d", received, total)
	}
}

func TestOnCompleteAfterCompletion(t *testing.T) {
	w := NewWorld(2)
	fired := false
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			r := c.Isend(1, tag(0), comm.Bytes([]byte{1})) // eager: completes inline
			if _, ok := r.Test(); !ok {
				t.Error("eager Isend should complete immediately")
			}
			c.OnComplete(r, func(comm.Status) { fired = true })
			c.Progress()
		case 1:
			c.Recv(0, tag(0))
		}
	})
	if !fired {
		t.Fatal("callback on already-completed request never fired")
	}
}

func TestRingPressure(t *testing.T) {
	// Every rank sends to its right neighbour concurrently, several laps;
	// exercises matching under contention (run with -race).
	const n, laps = 16, 10
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		right := (c.Rank() + 1) % n
		left := (c.Rank() + n - 1) % n
		for l := 0; l < laps; l++ {
			r := c.Irecv(left, tag(l))
			c.Send(right, tag(l), comm.Bytes([]byte{byte(l)}))
			st := c.Wait(r)
			if st.Msg.Data[0] != byte(l) {
				t.Errorf("lap %d: got %d", l, st.Msg.Data[0])
			}
		}
	})
}

func TestRankPanicPropagates(t *testing.T) {
	defer func() {
		if p := recover(); p == nil {
			t.Fatal("expected panic to propagate from rank goroutine")
		} else if s, ok := p.(string); !ok || s == "" {
			t.Fatalf("unexpected panic payload %v", p)
		}
	}()
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			panic("rank 1 exploded")
		}
	})
}

func TestAllRankPanicsReported(t *testing.T) {
	// When several ranks panic, Run must not swallow all but one: every
	// failed rank appears in the aggregated panic message.
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected panic to propagate from rank goroutines")
		}
		s, ok := p.(string)
		if !ok {
			t.Fatalf("unexpected panic payload %v", p)
		}
		for _, want := range []string{"3 ranks panicked", "rank 0:", "rank 2:", "rank 3:"} {
			if !strings.Contains(s, want) {
				t.Errorf("aggregated panic missing %q:\n%s", want, s)
			}
		}
		if strings.Contains(s, "rank 1:") {
			t.Errorf("rank 1 did not panic but appears in:\n%s", s)
		}
	}()
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		if c.Rank() != 1 {
			panic(fmt.Sprintf("boom from %d", c.Rank()))
		}
	})
}

func TestSelfSendRecv(t *testing.T) {
	w := NewWorld(1)
	w.Run(func(c *Comm) {
		r := c.Irecv(0, tag(0))
		c.Send(0, tag(0), comm.Bytes([]byte{5}))
		if st := c.Wait(r); st.Msg.Data[0] != 5 {
			t.Errorf("self-send got %v", st.Msg.Data)
		}
	})
}

func TestConcurrentCollectiveSequences(t *testing.T) {
	// Two back-to-back "collectives" with different sequence numbers must
	// not cross-match even when messages race.
	const n = 8
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		for seq := 0; seq < 6; seq++ {
			tg := comm.MakeTag(comm.KindBcast, seq, 0)
			if c.Rank() == 0 {
				for p := 1; p < n; p++ {
					c.Send(p, tg, comm.Bytes([]byte{byte(seq)}))
				}
			} else {
				st := c.Recv(0, tg)
				if st.Msg.Data[0] != byte(seq) {
					t.Errorf("seq %d: payload %d", seq, st.Msg.Data[0])
				}
			}
		}
	})
}

func TestNowMonotonic(t *testing.T) {
	w := NewWorld(1)
	w.Run(func(c *Comm) {
		a := c.Now()
		b := c.Now()
		if b < a {
			t.Errorf("clock went backwards: %v then %v", a, b)
		}
	})
}

func BenchmarkPingPongEager(b *testing.B) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		msg := comm.Bytes(make([]byte, 1024))
		for i := 0; i < b.N; i++ {
			tg := comm.MakeTag(comm.KindP2P, i%comm.SeqWrap, 0)
			if c.Rank() == 0 {
				c.Send(1, tg, msg)
				c.Recv(1, tg)
			} else {
				c.Recv(0, tg)
				c.Send(0, tg, msg)
			}
		}
	})
}

func ExampleWorld() {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, comm.MakeTag(comm.KindP2P, 0, 0), comm.Bytes([]byte("hi")))
		} else {
			st := c.Recv(0, comm.AnyTag)
			fmt.Println(string(st.Msg.Data))
		}
	})
	// Output: hi
}

func TestTryProgress(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			if c.TryProgress() {
				t.Error("TryProgress with nothing pending should report false")
			}
			r := c.Isend(1, tag(0), comm.Bytes([]byte{1})) // eager, completes inline
			fired := false
			c.OnComplete(r, func(comm.Status) { fired = true })
			for !fired {
				c.TryProgress()
			}
		case 1:
			c.Recv(0, tag(0))
		}
	})
}

func TestSsendSynchronizes(t *testing.T) {
	// A tiny (eager-sized) payload sent with Ssend must still block until
	// the receiver posts.
	w := NewWorld(2)
	var recvPosted, sendDone int64
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Ssend(1, tag(0), comm.Bytes([]byte{1}))
			atomic.StoreInt64(&sendDone, int64(c.Now()))
		case 1:
			time.Sleep(30 * time.Millisecond)
			atomic.StoreInt64(&recvPosted, int64(c.Now()))
			c.Recv(0, tag(0))
		}
	})
	if sendDone < recvPosted {
		t.Fatalf("Ssend completed at %v before receiver posted at %v",
			time.Duration(sendDone), time.Duration(recvPosted))
	}
}

func TestProbeThenRecv(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, tag(3), comm.Bytes([]byte{7, 7}))
		case 1:
			st := c.Probe(0, comm.AnyTag)
			if st.Tag != tag(3) || st.Msg.Size != 2 {
				t.Errorf("probe status = %+v", st)
			}
			if st.Msg.Data != nil {
				t.Error("probe must not expose payload bytes")
			}
			got := c.Recv(0, st.Tag)
			if got.Msg.Data[0] != 7 {
				t.Errorf("recv after probe got %v", got.Msg.Data)
			}
		}
	})
}

func TestIprobeNonBlocking(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			if _, ok := c.Iprobe(1, comm.AnyTag); ok {
				t.Error("Iprobe found a message before any was sent")
			}
			c.Send(1, tag(0), comm.Bytes([]byte{1})) // release peer
		case 1:
			c.Recv(0, tag(0))
		}
	})
}

// Property: a random storm of point-to-point messages — arbitrary sizes
// spanning both protocols, tags, and posting orders — delivers every
// payload to the right receiver with the right bytes.
func TestMessageStormQuick(t *testing.T) {
	f := func(sizesSeed []uint16, orderSeed uint8) bool {
		if len(sizesSeed) == 0 {
			return true
		}
		if len(sizesSeed) > 40 {
			sizesSeed = sizesSeed[:40]
		}
		const n = 4
		w := NewWorld(n)
		type parcel struct {
			src, dst int
			tg       comm.Tag
			data     []byte
		}
		var parcels []parcel
		for i, sz := range sizesSeed {
			size := int(sz) % 40000 // spans eager and rendezvous
			data := make([]byte, size)
			for j := range data {
				data[j] = byte(i * (j + 1))
			}
			parcels = append(parcels, parcel{
				src: i % n, dst: (i + 1 + int(orderSeed)) % n,
				tg:   comm.MakeTag(comm.KindP2P, 1, i),
				data: data,
			})
		}
		ok := int32(1)
		w.Run(func(c *Comm) {
			// Post all my receives first (some will be unexpected anyway
			// because senders race ahead).
			var rs []comm.Request
			var expect []parcel
			for _, p := range parcels {
				if p.dst == c.Rank() {
					rs = append(rs, c.Irecv(p.src, p.tg))
					expect = append(expect, p)
				}
			}
			for _, p := range parcels {
				if p.src == c.Rank() {
					c.Send(p.dst, p.tg, comm.Bytes(p.data))
				}
			}
			for i, r := range rs {
				st := c.Wait(r)
				if !bytes.Equal(st.Msg.Data, expect[i].data) {
					atomic.StoreInt32(&ok, 0)
				}
			}
		})
		return ok == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Fatal(err)
	}
}
