// Package runtime is the live, in-process message-passing substrate: one
// goroutine per rank, real payload movement, and the same matching-engine
// semantics as a real MPI point-to-point layer (posted-receive queue,
// unexpected-message queue, eager and rendezvous protocols, completion
// callbacks fired from the owner's progress loop).
//
// It implements comm.Comm, so every collective in internal/coll and
// internal/core — including ADAPT's event-driven state machines — runs on
// it unchanged, with real concurrency instead of simulated time. The
// simulator (internal/simmpi) reproduces the paper's scale; this runtime
// proves the algorithms against a genuinely parallel executor and backs
// the runnable examples.
//
// Matching itself — posted/unexpected queues, wait loops, callback
// delivery — is the shared core in internal/progress; this package
// supplies the live transport: goroutine-to-goroutine payload hand-off
// with real pooled copies at the protocol-mandated points.
package runtime

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adapt/internal/comm"
	"adapt/internal/faults"
	"adapt/internal/fec"
	"adapt/internal/progress"
	"adapt/internal/trace"
)

// DefaultEagerLimit is the eager/rendezvous protocol switch-over.
const DefaultEagerLimit = 8 * 1024

// World is a live communicator: n ranks sharing an address space.
type World struct {
	ranks      []*Comm
	start      time.Time
	eagerLimit int
	runTimeout time.Duration

	// Trace, when non-nil, receives every point-to-point event with causal
	// edges. Timestamps are wall-clock offsets from the world's creation,
	// so unlike the simulator's virtual-time traces they vary run to run.
	Trace *trace.Buffer

	// Fault injection (nil inj = fault-free fast paths; see chaos.go).
	inj     *faults.Injector
	rec     faults.Recovery
	xmitSeq atomic.Uint64

	// Erasure coding over the eager segment stream (nil = off; see fec.go).
	fec    *fecCtl
	fecCfg fec.Config

	failMu   sync.Mutex
	failures []*faults.TimeoutError

	// Fail-stop crash model (nil crash = no rules armed; see crash.go).
	crashPlan     []faults.Crash
	crashMu       sync.Mutex
	crash         *crashCtl
	watchdogFired atomic.Bool
}

// Option configures a World.
type Option func(*World)

// WithEagerLimit overrides the eager protocol threshold.
func WithEagerLimit(n int) Option {
	return func(w *World) { w.eagerLimit = n }
}

// WithRunTimeout bounds every Run call: if the ranks have not all returned
// within d, Run panics with a per-rank dump of pending operations instead
// of hanging the caller (and, under `go test`, the whole test binary).
func WithRunTimeout(d time.Duration) Option {
	return func(w *World) { w.runTimeout = d }
}

// WithTrace attaches a causal trace buffer to the world.
func WithTrace(tb *trace.Buffer) Option {
	return func(w *World) { w.Trace = tb }
}

// NewWorld creates a communicator with n ranks.
func NewWorld(n int, opts ...Option) *World {
	if n <= 0 {
		panic(fmt.Sprintf("runtime: world size %d", n))
	}
	w := &World{start: time.Now(), eagerLimit: DefaultEagerLimit}
	for _, o := range opts {
		o(w)
	}
	if w.fecCfg.Enabled() && w.inj != nil {
		w.fec = newFecCtl(w)
	}
	for r := 0; r < n; r++ {
		c := &Comm{w: w, rank: r, wake: make(chan struct{}, 1)}
		c.eng = progress.New(progress.Backend{
			Prefix:  "runtime",
			Rank:    r,
			Now:     c.Now,
			Trace:   func() *trace.Buffer { return w.Trace },
			Wake:    c.signal,
			Block:   func() { <-c.wake },
			OnMatch: c.onMatch,
			// Chaos duplicates are real second copies racing through
			// deliver; the engine suppresses them by transmission id.
			DedupXids: true,
		})
		w.ranks = append(w.ranks, c)
	}
	w.armCrashes()
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank r's endpoint.
func (w *World) Rank(r int) *Comm { return w.ranks[r] }

// Run executes body once per rank, each on its own goroutine, and blocks
// until all return. If any ranks panic, Run re-panics with every rank's
// failure (not just the first drained one) so a collective bug that kills
// several ranks at once is diagnosable from a single message.
func (w *World) Run(body func(c *Comm)) {
	var wg sync.WaitGroup
	panics := make(chan string, len(w.ranks))
	for _, c := range w.ranks {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics <- fmt.Sprintf("rank %d: %v", c.rank, p)
				}
			}()
			body(c)
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	if w.runTimeout > 0 {
		t := time.NewTimer(w.runTimeout)
		defer t.Stop()
		select {
		case <-done:
		case <-t.C:
			// Deliberately leak the stuck rank goroutines: the dump names the
			// culprits, and a clean panic beats a hung test binary. The dump
			// is emitted at most once per World — concurrent Run calls that
			// time out together must not interleave two dumps.
			if w.watchdogFired.CompareAndSwap(false, true) {
				panic(fmt.Sprintf("runtime: Run still incomplete after %v\n%s", w.runTimeout, w.pendingDump()))
			}
			panic(fmt.Sprintf("runtime: Run still incomplete after %v (pending-op dump already emitted by an earlier watchdog)", w.runTimeout))
		}
	} else {
		<-done
	}
	close(panics)
	var msgs []string
	for p := range panics {
		msgs = append(msgs, p)
	}
	switch len(msgs) {
	case 0:
	case 1:
		panic(msgs[0])
	default:
		sort.Strings(msgs) // goroutine finish order is nondeterministic
		panic(fmt.Sprintf("runtime: %d ranks panicked:\n%s", len(msgs), strings.Join(msgs, "\n")))
	}
}

// Comm is one rank's endpoint. Its blocking methods must be called from
// the rank's own goroutine; internal delivery may run on peer goroutines.
type Comm struct {
	w    *World
	rank int
	eng  *progress.Engine
	wake chan struct{}
}

var _ comm.Comm = (*Comm)(nil)

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return len(c.w.ranks) }

// Now returns wall time since the world was created.
func (c *Comm) Now() time.Duration { return time.Since(c.w.start) }

// Compute is a no-op in the live runtime: real work (reductions, copies)
// is performed for real by the caller; there is nothing to charge.
func (c *Comm) Compute(n int, kind comm.ComputeKind) {}

// AttachProgressNotifier wires a scheduler notifier to this endpoint's
// engine (see progress.Scheduler).
func (c *Comm) AttachProgressNotifier(n *progress.Notifier) { c.eng.AttachNotifier(n) }

// TraceEmit implements trace.Emitter: it stamps the record with this
// rank's identity and wall clock, defaults its Parent to the current
// causal context, and appends it. Returns 0 when tracing is off.
func (c *Comm) TraceEmit(r trace.Record) uint64 { return c.eng.TraceEmit(r) }

// TraceSetCause installs id as the rank's causal context and returns the
// previous one. Owner-goroutine only, like every blocking Comm method.
func (c *Comm) TraceSetCause(id uint64) uint64 { return c.eng.TraceSetCause(id) }

// signal wakes the owner if it is blocked in a wait loop.
func (c *Comm) signal() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// Isend starts a non-blocking send.
func (c *Comm) Isend(dst int, tag comm.Tag, msg comm.Msg) comm.Request {
	if dst < 0 || dst >= c.Size() {
		panic(fmt.Sprintf("runtime: send to rank %d of %d", dst, c.Size()))
	}
	c.w.noteSend(c) // crash point: the rank may die initiating this send
	req := c.eng.StartSend(dst, tag, msg.Size)
	d := c.w.ranks[dst]
	st := comm.Status{Source: c.rank, Tag: tag, Msg: msg}
	if msg.Size <= c.w.eagerLimit {
		// Eager: copy the payload out (the sender may reuse its buffer as
		// soon as we return) and deliver; the send completes immediately.
		// The copy is pooled and ownership passes to the receiver.
		delivered := msg
		if msg.Data != nil {
			buf := comm.GetBuf(len(msg.Data))
			copy(buf, msg.Data)
			delivered.Data = buf
		}
		env := &progress.Env{Src: c.rank, Tag: tag, Msg: delivered, PostID: req.PostID}
		if c.w.inj != nil {
			c.chaosDeliver(d, env, msg.Size)
		} else {
			d.deliver(env)
		}
		req.Complete(st)
		return req
	}
	// Rendezvous: announce; the payload is pulled zero-copy when matched,
	// completing this request only then.
	env := &progress.Env{Src: c.rank, Tag: tag, Msg: msg, Rts: req, PostID: req.PostID}
	if c.w.inj != nil {
		c.chaosDeliver(d, env, msg.Size)
	} else {
		d.deliver(env)
	}
	return req
}

// Irecv posts a non-blocking receive.
func (c *Comm) Irecv(src int, tag comm.Tag) comm.Request {
	return c.eng.PostRecv(src, tag, comm.MemDefault)
}

// deliver hands an incoming envelope to the matching engine. Runs on the
// sender's goroutine (or a timer goroutine for fault-delayed copies).
func (c *Comm) deliver(env *progress.Env) {
	if c.w.crash != nil && c.w.rankDead(env.Src) {
		// Annihilation: a copy in flight from a crashed rank vanishes at
		// arrival (timer-delayed chaos copies can outlive their sender).
		c.annihilate(env)
		return
	}
	switch c.eng.Arrive(env) {
	case progress.ArriveHalted:
		// Traffic addressed to a crashed rank: refuse it so a live
		// rendezvous sender fails instead of waiting forever for a grant.
		c.refuse(env)
	case progress.ArriveDuplicate:
		c.suppress(env)
	}
}

// onMatch completes a matched (receive, envelope) pair. For rendezvous
// envelopes it pulls the payload and releases the sender.
func (c *Comm) onMatch(req *progress.Req, env *progress.Env, wasUnexpected bool) {
	msg := env.Msg
	if env.Rts != nil {
		// Pull the payload out of the sender's buffer; after the sender's
		// request completes the sender may scribble on it. The pooled copy
		// is owned by the receiver.
		if msg.Data != nil {
			buf := comm.GetBuf(len(msg.Data))
			copy(buf, msg.Data)
			msg.Data = buf
		}
		env.Rts.Complete(comm.Status{Source: env.Src, Tag: env.Tag, Msg: env.Msg})
	}
	req.Complete(comm.Status{Source: env.Src, Tag: env.Tag, Msg: msg})
}

// Send performs a blocking send: for rendezvous-size messages it returns
// only once the receiver has matched (the paper's §2.1.1 handshake).
func (c *Comm) Send(dst int, tag comm.Tag, msg comm.Msg) {
	c.Wait(c.Isend(dst, tag, msg))
}

// Ssend performs a synchronous-mode send (MPI_Ssend): it returns only
// once the receiver has matched, regardless of message size — the
// rendezvous handshake is forced even for eager-sized payloads.
func (c *Comm) Ssend(dst int, tag comm.Tag, msg comm.Msg) {
	if dst < 0 || dst >= c.Size() {
		panic(fmt.Sprintf("runtime: ssend to rank %d of %d", dst, c.Size()))
	}
	c.w.noteSend(c) // crash point: the rank may die initiating this send
	req := c.eng.StartSend(dst, tag, msg.Size)
	d := c.w.ranks[dst]
	env := &progress.Env{Src: c.rank, Tag: tag, Msg: msg, Rts: req, PostID: req.PostID}
	if c.w.inj != nil {
		c.chaosDeliver(d, env, msg.Size)
	} else {
		d.deliver(env)
	}
	c.Wait(req)
}

// Iprobe reports whether a message matching (src, tag) has arrived
// without consuming it (MPI_Iprobe). src may be AnySource, tag AnyTag.
func (c *Comm) Iprobe(src int, tag comm.Tag) (comm.Status, bool) {
	return c.eng.Iprobe(src, tag)
}

// Probe blocks until a matching message is available (MPI_Probe), leaving
// it in the unexpected queue for a later Recv.
func (c *Comm) Probe(src int, tag comm.Tag) comm.Status {
	return c.eng.Probe(src, tag)
}

// Recv performs a blocking receive.
func (c *Comm) Recv(src int, tag comm.Tag) comm.Status {
	return c.Wait(c.Irecv(src, tag))
}

// Wait blocks until r completes, firing ready callbacks meanwhile.
func (c *Comm) Wait(r comm.Request) comm.Status { return c.eng.Wait(r) }

// WaitAll blocks until every request completes; nil entries are skipped.
func (c *Comm) WaitAll(rs []comm.Request) { c.eng.WaitAll(rs) }

// WaitAny blocks until some live request completes and returns its index;
// nil entries are skipped.
func (c *Comm) WaitAny(rs []comm.Request) (int, comm.Status) { return c.eng.WaitAny(rs) }

// OnComplete attaches fn to r; it fires on this rank's goroutine from
// inside Progress or a Wait variant.
func (c *Comm) OnComplete(r comm.Request, fn func(comm.Status)) { c.eng.OnComplete(r, fn) }

// TryProgress fires ready callbacks without blocking.
func (c *Comm) TryProgress() bool { return c.eng.TryProgress() }

// Progress blocks until at least one completion is processed, fires the
// ready callbacks, and returns.
func (c *Comm) Progress() { c.eng.Progress() }
